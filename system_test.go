package kset_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"kset"
)

func testParams() kset.Params { return kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1} }

func testCondition(t *testing.T, p kset.Params) kset.Condition {
	t.Helper()
	c, err := kset.NewMaxCondition(p.N, 4, p.X(), p.L)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testSystem(t *testing.T, opts ...kset.Option) *kset.System {
	t.Helper()
	sys, err := kset.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestNewValidation pins the construction-time validation of New and the
// sentinel classification of every error path.
func TestNewValidation(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	smaller := func() kset.Condition {
		c, err := kset.NewMaxCondition(5, 4, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}()

	cases := []struct {
		name string
		opts []kset.Option
		want error
	}{
		{"no params", []kset.Option{kset.WithCondition(cond)}, kset.ErrBadParams},
		{"bad n", []kset.Option{kset.WithParams(kset.Params{N: 1, T: 1, K: 1, L: 1}), kset.WithCondition(cond)}, kset.ErrBadParams},
		{"bad t", []kset.Option{kset.WithParams(kset.Params{N: 6, T: 6, K: 2, D: 1, L: 1}), kset.WithCondition(cond)}, kset.ErrBadParams},
		{"l above k", []kset.Option{kset.WithParams(kset.Params{N: 6, T: 3, K: 1, D: 1, L: 2}), kset.WithCondition(cond)}, kset.ErrBadParams},
		{"nil condition", []kset.Option{kset.WithParams(p)}, kset.ErrBadParams},
		{"condition size mismatch", []kset.Option{kset.WithParams(p), kset.WithCondition(smaller)}, kset.ErrBadParams},
		{"nil condition async", []kset.Option{kset.WithParams(p), kset.WithExecutor(kset.Asynchronous)}, kset.ErrBadParams},
		{"classical without condition", []kset.Option{kset.WithParams(p), kset.WithExecutor(kset.Classical)}, nil},
		{"figure2 ok", []kset.Option{kset.WithParams(p), kset.WithCondition(cond)}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := kset.New(tc.opts...)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("New error = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

// TestConditionConstructorSentinels pins the unified error handling of the
// condition constructors, including the previously panicking explicit one.
func TestConditionConstructorSentinels(t *testing.T) {
	if _, err := kset.NewMaxCondition(6, 100, 2, 1); !errors.Is(err, kset.ErrDomainTooLarge) {
		t.Errorf("NewMaxCondition m=100: %v, want ErrDomainTooLarge", err)
	}
	if _, err := kset.NewMinCondition(0, 4, 2, 1); !errors.Is(err, kset.ErrBadParams) {
		t.Errorf("NewMinCondition n=0: %v, want ErrBadParams", err)
	}
	if _, err := kset.NewExplicitCondition(4, 100, 1); !errors.Is(err, kset.ErrDomainTooLarge) {
		t.Errorf("NewExplicitCondition m=100: %v, want ErrDomainTooLarge", err)
	}
	if _, err := kset.NewExplicitCondition(4, 4, 0); !errors.Is(err, kset.ErrBadParams) {
		t.Errorf("NewExplicitCondition l=0: %v, want ErrBadParams", err)
	}
	if _, err := kset.ConditionSize(0, 1, 0, 1); !errors.Is(err, kset.ErrBadParams) {
		t.Errorf("ConditionSize n=0: %v, want ErrBadParams", err)
	}
}

// TestRunInputSentinels pins the per-run input validation of the hot path.
func TestRunInputSentinels(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)))
	ctx := context.Background()

	if _, err := sys.Run(ctx, kset.VectorOf(1, 2), kset.NoFailures()); !errors.Is(err, kset.ErrBadInput) {
		t.Errorf("short input: %v, want ErrBadInput", err)
	}
	if _, err := sys.Run(ctx, kset.VectorOf(1, 2, 0, 1, 2, 1), kset.NoFailures()); !errors.Is(err, kset.ErrBadInput) {
		t.Errorf("⊥ input: %v, want ErrBadInput", err)
	}
	if _, err := sys.Run(ctx, kset.VectorOf(1, 2, 3, 1, 2, 65), kset.NoFailures()); !errors.Is(err, kset.ErrDomainTooLarge) {
		t.Errorf("oversized value: %v, want ErrDomainTooLarge", err)
	}
}

// TestSystemMatchesDeprecatedWrappers checks that the System executors and
// the deprecated free functions produce identical executions.
func TestSystemMatchesDeprecatedWrappers(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	input := kset.VectorOf(4, 4, 4, 2, 1, 2)
	fp := kset.InitialCrashes(p.N, 2)
	ctx := context.Background()

	for _, tc := range []struct {
		exec kset.Executor
		free func() (*kset.Result, error)
	}{
		{kset.Figure2, func() (*kset.Result, error) { return kset.Agree(p, cond, input, fp) }},
		{kset.EarlyDeciding, func() (*kset.Result, error) { return kset.AgreeEarly(p, cond, input, fp) }},
		{kset.Classical, func() (*kset.Result, error) { return kset.AgreeClassical(p.N, p.T, p.K, input, fp) }},
	} {
		t.Run(tc.exec.Name(), func(t *testing.T) {
			sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond), kset.WithExecutor(tc.exec))
			got, err := sys.Run(ctx, input, fp)
			if err != nil {
				t.Fatal(err)
			}
			want, err := tc.free()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Decisions, want.Decisions) {
				t.Errorf("decisions %v, free function got %v", got.Decisions, want.Decisions)
			}
			if !reflect.DeepEqual(got.DecisionRound, want.DecisionRound) {
				t.Errorf("rounds %v, free function got %v", got.DecisionRound, want.DecisionRound)
			}
			if v := kset.Verify(input, fp, got, p.K); !v.OK() {
				t.Errorf("verdict: %v", v)
			}
		})
	}
}

// TestSystemRunCancelled checks the context gate of the hot path.
func TestSystemRunCancelled(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Run(ctx, kset.VectorOf(4, 4, 4, 2, 1, 2), kset.NoFailures()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestSystemConcurrentRun drives one System from many goroutines; run
// under -race it also proves the worker-pool isolation of the engines.
func TestSystemConcurrentRun(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond))
	ctx := context.Background()

	inputs := []kset.Vector{
		kset.VectorOf(4, 4, 4, 2, 1, 2),
		kset.VectorOf(1, 2, 3, 4, 1, 2),
		kset.VectorOf(4, 4, 4, 4, 4, 4),
	}
	fps := []kset.FailurePattern{
		kset.NoFailures(),
		kset.InitialCrashes(p.N, 2),
		kset.MidRoundCrashes(p.N, 1, 6),
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				input := inputs[(g+i)%len(inputs)]
				fp := fps[(g+2*i)%len(fps)]
				res, err := sys.Run(ctx, input, fp)
				if err != nil {
					errs <- err
					return
				}
				if v := kset.Verify(input, fp, res, p.K); !v.OK() {
					errs <- errors.New(v.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAsynchronousExecutor checks the async executor's Result adaptation:
// decisions land keyed by process, rounds stay zero, crash points map.
func TestAsynchronousExecutor(t *testing.T) {
	cond, err := kset.NewMaxCondition(5, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := testSystem(t,
		kset.WithParams(kset.Params{N: 5, T: 2, K: 2, D: 0, L: 2}),
		kset.WithCondition(cond),
		kset.WithExecutor(kset.Asynchronous),
	)
	res, err := sys.RunScenario(context.Background(), kset.Scenario{
		Input: kset.VectorOf(3, 3, 2, 1, 2),
		FP:    kset.InitialCrashes(5, 1), // maps to CrashBeforeWrite for p5
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Errorf("async result has Rounds=%d, want 0", res.Rounds)
	}
	if !res.Crashed[5] {
		t.Error("p5 should be marked crashed")
	}
	if _, decided := res.Decisions[5]; decided {
		t.Error("crashed p5 must not decide")
	}
	if len(res.Decisions) != 4 {
		t.Errorf("decisions %v, want all 4 correct processes", res.Decisions)
	}
	if d := res.DistinctDecisions(); d.Len() > 2 {
		t.Errorf("too many distinct values: %v", d)
	}
}

// TestFailureBuilders pins the new root-level failure-pattern builders.
func TestFailureBuilders(t *testing.T) {
	fp := kset.Crashes(
		kset.CrashSpec{ID: 6, Round: 1, AfterSends: 2},
		kset.CrashSpec{ID: 7, Round: 2},
	)
	if len(fp.Crashes) != 2 || fp.Crashes[6] != (kset.Crash{Round: 1, AfterSends: 2}) || fp.Crashes[7] != (kset.Crash{Round: 2}) {
		t.Errorf("Crashes built %+v", fp.Crashes)
	}

	mid := kset.MidRoundCrashes(9, 2, 1, 9)
	for _, id := range []kset.ProcessID{1, 9} {
		if mid.Crashes[id] != (kset.Crash{Round: 2, AfterSends: 5}) {
			t.Errorf("MidRoundCrashes[%d] = %+v", id, mid.Crashes[id])
		}
	}
}

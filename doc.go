// Package kset is a library for condition-based k-set agreement in
// synchronous (and asynchronous) crash-prone systems, reproducing Bonnet &
// Raynal, "Conditions for Set Agreement with an Application to Synchronous
// Systems" (IRISA PI 1870 / ICDCS 2008).
//
// # Background
//
// In the k-set agreement problem, n processes each propose a value and
// every non-faulty process must decide a proposed value such that at most k
// distinct values are decided. In a synchronous system with at most t
// crashes, ⌊t/k⌋+1 rounds are necessary in the worst case. The
// condition-based approach restricts the admissible input vectors to a
// condition C and decides faster whenever the actual input belongs to C.
//
// This package exposes:
//
//   - (x,ℓ)-legal conditions (Definition 2): max_ℓ-generated conditions for
//     realistic sizes, explicit conditions for hand-built sets — compiled
//     at System construction (or by CompileCondition) into an immutable
//     index with allocation-free O(1) membership — a legality checker and
//     a recognizing-function search;
//   - the synchronous condition-based k-set agreement algorithm (the
//     paper's Figure 2), deciding in max(2, ⌊(d+ℓ−1)/k⌋+1) rounds when the
//     input is in the condition and ⌊t/k⌋+1 otherwise, plus the classical
//     baseline and early-deciding variants (Section 8);
//   - the asynchronous condition-based ℓ-set agreement algorithm over an
//     atomic-snapshot memory (Section 4);
//   - the condition-size counting functions NB(x,ℓ) (Theorems 3 and 13);
//   - a scenario-generation subsystem (ScenarioSource, FailureFamily,
//     Sweep) that constructs the scenario spaces the paper's quantitative
//     claims are demonstrated on;
//   - a fault-injection plane that goes beyond the paper's reliable-link
//     model: deterministic seeded link adversaries (FaultPlan,
//     WithFaultPlan, Scenario.Faults) that drop, delay, duplicate and
//     reorder messages, with FaultFamily sweeps and undecided-run
//     accounting for measuring how the algorithms degrade off-model.
//
// # Paper → package map
//
// The root package is a facade; the machinery lives under internal/ and
// maps onto the paper as follows (ARCHITECTURE.md has the full tour):
//
//	internal/vector     §2.1  input vectors, views, containment, value sets
//	internal/condition  §2.2  (x,ℓ)-legality (Def. 2), recognizers, decoding (Def. 4)
//	internal/lattice    §3    the legality lattice (Fig. 1, Table 1)
//	internal/async      §4    asynchronous ℓ-set agreement over snapshots
//	internal/count      §5,7  NB(x,ℓ) condition sizes (Theorems 3 and 13)
//	internal/core       §6,8  the Figure-2 algorithm, baseline, early deciding
//	internal/rounds     §6.2  the synchronous round-based crash-prone model
//	internal/adversary  §6.2  failure-pattern construction and enumeration
//	internal/faultnet   —     the fault-injecting transport (beyond the model)
//
// # Quick start
//
// Construct a System once — parameters, condition and executor are
// validated there — then Run it as many times as the workload demands
// (Run is safe for concurrent use):
//
//	p := kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1}
//	c, _ := kset.NewMaxCondition(p.N, 4, p.X(), p.L) // C ∈ S^d_t[ℓ]
//	sys, _ := kset.New(kset.WithParams(p), kset.WithCondition(c))
//	input := kset.VectorOf(4, 4, 4, 2, 1, 2)
//	res, _ := sys.Run(context.Background(), input, kset.NoFailures())
//	fmt.Println(res.Decisions, res.MaxDecisionRound())
//
// The executors Figure2 (default), EarlyDeciding, Classical and
// Asynchronous select the algorithm; kset.WithExecutor picks the system
// default and Scenario.Executor overrides it per run.
//
// # Campaigns
//
// For the quantitative workloads the paper's results call for — sweeping
// millions of inputs × failure patterns × algorithms — a Campaign fans
// scenarios across a bounded worker pool that reuses per-worker engines
// and aggregates decision-round histograms, condition-hit rates and
// specification violations into a CampaignStats:
//
//	stats, _ := sys.RunCampaign(ctx, scenarios)
//	fmt.Println(stats.HitRate(), stats.MeanDecisionRound())
//
// # The results plane
//
// Behind CampaignStats sits one observability pipeline: every run emits
// a flat Observation (decision round, messages, crashes, condition hit,
// verdict), and every installed Collector folds it in a worker-local
// shard joined deterministically when the campaign completes. The
// campaign's own Accumulator — a bounded decision-round histogram,
// min/mean/max summaries and per-executor / per-crash-count / per-label
// breakdowns, exposed as CampaignStats.Metrics — is worker-count- and
// scheduling-invariant and JSON-marshalable; CollectInto attaches custom
// collectors to the same stream:
//
//	acc := kset.NewAccumulator()
//	stats, _ := sys.RunCampaign(ctx, scenarios, kset.CollectInto(acc))
//	fmt.Println(acc.ByExecutor["figure2"].Rounds.Mean())
//
// # Generators and sweeps
//
// Campaigns are fed best from scenario generators: a ScenarioSource
// streams a structured scenario family — every vector of {1..m}^n
// (ExhaustiveInputs), a condition's members (ConditionMembers), seeded
// random inputs (RandomInputs) — and combinators cross it with failure
// patterns (CrossFailures, FailureSchedules) and executors
// (CrossExecutors) without materializing anything:
//
//	src := kset.FailureSchedules(
//		kset.RandomInputs(seed, p.N, m, 10_000),
//		kset.RandomCrashFamily(seed+1, p.N, p.T, p.RMax(), 10),
//	)
//	stats, _ := sys.RunSource(ctx, src, kset.VerifyRuns())
//
// For trade-off curves across a parameter grid — the paper's d and f
// sweeps — RunSweep runs one campaign per SweepPoint and returns keyed
// stats; SweepDegrees, SweepFailures and SweepExecutors build the grids.
//
// # Fault injection
//
// The paper's model has reliable links: only processes fail, by
// crashing. The fault plane deliberately steps outside it. A FaultPlan
// describes a seeded link adversary — per-link loss, delay-by-rounds and
// duplication rates, a reorder rate, scheduled per-copy faults — that
// the synchronous executors inject between send and receive, composable
// with any crash FailurePattern:
//
//	sys, _ := kset.New(kset.WithParams(p), kset.WithCondition(c),
//		kset.WithFaultPlan(&kset.FaultPlan{Seed: 1, Default: kset.LinkFaults{Loss: 0.05}}))
//
// Scenario.Faults overrides the system plan per run; the asynchronous
// executor ignores both. Fault draws are seeded per scenario (plan seed
// × scenario seed × input), so lossy campaigns stay byte-reproducible at
// any worker count. Runs always terminate within the model's round
// bound: a process that loses every copy halts undecided, counted in
// CampaignStats.UndecidedRuns rather than hanging or deciding ⊥.
// FaultFamily sweeps (LossSweepFamily, DelaySweepFamily, StormFamily)
// and the CrossFaults / FaultSchedules / SweepFaults generators cross
// plans with scenario sources; see ExampleSweepFaults.
//
// The deeper machinery (exhaustive adversaries, the Section-3 lattice
// harness, proofs-by-enumeration) lives in the internal packages and is
// surfaced through cmd/experiments.
package kset

package kset_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"kset"
)

// checkpointSystem builds the system and source every checkpoint test
// shares: a 4-process condition system over a cross-product sweep large
// enough to cut at interesting places (5 inputs × 4 patterns × 2
// executors = 40 runs).
func checkpointSystem(t *testing.T) (*kset.System, kset.ScenarioSource) {
	t.Helper()
	p := kset.Params{N: 4, T: 2, K: 2, D: 1, L: 1}
	cond, err := kset.NewMaxCondition(p.N, 3, p.X(), p.L)
	if err != nil {
		t.Fatal(err)
	}
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond))
	src := kset.CrossExecutors(
		kset.FailureSchedules(
			kset.RandomInputs(21, p.N, 3, 5),
			kset.RandomCrashFamily(23, p.N, p.T, p.RMax(), 4),
		),
		kset.Figure2, kset.EarlyDeciding,
	)
	return sys, src
}

// marshal renders campaign stats as canonical JSON.
func marshal(t *testing.T, st *kset.CampaignStats) []byte {
	t.Helper()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunCheckpointedMatchesUninterrupted: chunked execution with
// checkpoint emission is invisible in the result — any chunk size yields
// stats JSON byte-identical to one straight RunSource.
func TestRunCheckpointedMatchesUninterrupted(t *testing.T) {
	sys, src := checkpointSystem(t)
	base, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, base)
	total, _ := src.Size()
	for _, every := range []int64{0, 1, 7, 16, total, total + 5} {
		emitted := 0
		st, err := sys.RunCheckpointed(context.Background(), src, nil, every,
			func(cp kset.Checkpoint) error {
				emitted++
				if err := cp.Validate(); err != nil {
					return err
				}
				if cp.Cursor.Len() != total {
					t.Fatalf("every=%d: checkpoint cursor %+v, want len %d", every, cp.Cursor, total)
				}
				return nil
			}, kset.VerifyRuns())
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if got := marshal(t, st); string(got) != string(want) {
			t.Fatalf("every=%d: chunked stats differ\n%s\nvs\n%s", every, got, want)
		}
		wantEmits := 1
		if every > 0 && every < total {
			wantEmits = int((total + every - 1) / every)
		}
		if emitted != wantEmits {
			t.Fatalf("every=%d: %d checkpoints emitted, want %d", every, emitted, wantEmits)
		}
	}
}

// TestCheckpointKillResume is the crash-tolerance contract: run to ~40%,
// "kill" the process there, carry only the checkpoint's serialized bytes
// into a freshly constructed system, resume, and get stats JSON
// byte-identical to the uninterrupted run.
func TestCheckpointKillResume(t *testing.T) {
	sys, src := checkpointSystem(t)
	base, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, base)
	total, _ := src.Size()
	every := total * 2 / 5 // first checkpoint lands at ~40%

	killed := errors.New("simulated crash")
	var persisted []byte
	_, err = sys.RunCheckpointed(context.Background(), src, nil, every,
		func(cp kset.Checkpoint) error {
			data, err := kset.EncodeCheckpoint(cp)
			if err != nil {
				return err
			}
			persisted = data
			return killed // die right after the first persist
		}, kset.VerifyRuns())
	if !errors.Is(err, killed) {
		t.Fatalf("kill run: err = %v, want the sink's error", err)
	}
	if persisted == nil {
		t.Fatal("no checkpoint persisted before the kill")
	}

	// "Fresh process": new system, new source value, only the bytes carry
	// over. The source is rebuilt from the same construction parameters,
	// exactly as a restarted worker would rebuild it.
	sys2, src2 := checkpointSystem(t)
	cp, err := kset.DecodeCheckpoint(persisted)
	if err != nil {
		t.Fatal(err)
	}
	if cp.RunsDone != every {
		t.Fatalf("resumed checkpoint covers %d runs, want %d", cp.RunsDone, every)
	}
	st, err := sys2.RunCheckpointed(context.Background(), src2, &cp, every, nil, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	if got := marshal(t, st); string(got) != string(want) {
		t.Fatalf("resumed stats differ from uninterrupted run\n%s\nvs\n%s", got, want)
	}
}

// TestResumeFromEveryCheckpoint resumes from each checkpoint a chunked
// run emits — every cut position — and checks each resume reproduces the
// uninterrupted result byte for byte.
func TestResumeFromEveryCheckpoint(t *testing.T) {
	sys, src := checkpointSystem(t)
	base, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, base)

	var cuts [][]byte
	if _, err := sys.RunCheckpointed(context.Background(), src, nil, 7,
		func(cp kset.Checkpoint) error {
			data, err := kset.EncodeCheckpoint(cp)
			if err != nil {
				return err
			}
			cuts = append(cuts, data)
			return nil
		}, kset.VerifyRuns()); err != nil {
		t.Fatal(err)
	}
	if len(cuts) < 2 {
		t.Fatalf("only %d checkpoints emitted", len(cuts))
	}
	for i, data := range cuts {
		cp, err := kset.DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		st, err := sys.RunCheckpointed(context.Background(), src, &cp, 0, nil, kset.VerifyRuns())
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", i, err)
		}
		if got := marshal(t, st); string(got) != string(want) {
			t.Fatalf("resume from checkpoint %d differs\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestRunCheckpointedValidation pins the entry point's error contract.
func TestRunCheckpointedValidation(t *testing.T) {
	sys, src := checkpointSystem(t)
	unsized := kset.ExhaustiveInputs(64, 4)
	if _, err := sys.RunCheckpointed(context.Background(), unsized, nil, 5, nil); !errors.Is(err, kset.ErrUnsizedSource) {
		t.Fatalf("unsized fresh start: %v, want ErrUnsizedSource", err)
	}
	bad := kset.Checkpoint{Version: 99, Cursor: kset.Cursor{Lo: 0, Hi: 5}}
	if _, err := sys.RunCheckpointed(context.Background(), src, &bad, 5, nil); !errors.Is(err, kset.ErrBadCheckpoint) {
		t.Fatalf("bad resume: %v, want ErrBadCheckpoint", err)
	}
	// Root-level decode rejects corrupt bytes with the same sentinel.
	if _, err := kset.DecodeCheckpoint([]byte("{")); !errors.Is(err, kset.ErrBadCheckpoint) {
		t.Fatalf("DecodeCheckpoint: %v, want ErrBadCheckpoint", err)
	}
	// A fully resumed checkpoint has nothing left to run: the stats are
	// exactly its snapshot.
	total, _ := src.Size()
	base, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	doneCP := kset.Checkpoint{
		Version:  kset.CheckpointVersion,
		Cursor:   kset.Cursor{Lo: 0, Hi: total},
		RunsDone: total,
		Stats:    base.Metrics.Snapshot(),
	}
	st, err := sys.RunCheckpointed(context.Background(), src, &doneCP, 5, nil, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshal(t, st), marshal(t, base); string(got) != string(want) {
		t.Fatalf("fully-resumed stats differ\n%s\nvs\n%s", got, want)
	}
}

package kset_test

import (
	"os/exec"
	"strings"
	"testing"
)

// These tests run every command and example binary end to end through the
// Go toolchain, checking the load-bearing markers of their output. They
// are the closest thing to a user smoke test the module has.

func runMain(t *testing.T, pkg string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", pkg}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s %v failed: %v\n%s", pkg, args, err, out)
	}
	return string(out)
}

func TestCmdLattice(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	out := runMain(t, "./cmd/lattice", "-n", "4", "-m", "3", "-xmax", "1", "-lmax", "2")
	for _, want := range []string{"✓", "4/4 cells verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("lattice output lacks %q:\n%s", want, out)
		}
	}
	// The -json form emits the shared structured report encoding.
	out = runMain(t, "./cmd/lattice", "-n", "4", "-m", "3", "-xmax", "1", "-lmax", "2", "-json")
	for _, want := range []string{`"id": "lattice"`, `"ok": true`, `"sections"`} {
		if !strings.Contains(out, want) {
			t.Errorf("lattice -json output lacks %q:\n%s", want, out)
		}
	}
}

func TestCmdNBCount(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	out := runMain(t, "./cmd/nbcount", "-n", "5", "-m", "3", "-lmax", "2", "-check")
	for _, want := range []string{"NB(x,ℓ)", "brute-force cross-check passed"} {
		if !strings.Contains(out, want) {
			t.Errorf("nbcount output lacks %q:\n%s", want, out)
		}
	}
	// The -json form emits the shared structured report encoding.
	out = runMain(t, "./cmd/nbcount", "-n", "5", "-m", "3", "-lmax", "2", "-json")
	for _, want := range []string{`"id": "nbcount"`, `"ok": true`, `"columns"`} {
		if !strings.Contains(out, want) {
			t.Errorf("nbcount -json output lacks %q:\n%s", want, out)
		}
	}
}

func TestCmdAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	out := runMain(t, "./cmd/agreement",
		"-n", "5", "-t", "3", "-k", "1", "-d", "2", "-l", "1",
		"-input", "4,4,4,1,2", "-crash", "5@1:2", "-trace")
	for _, want := range []string{"input ∈ C: true", "round 1", "DECIDES", "verdict: ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("agreement output lacks %q:\n%s", want, out)
		}
	}
	// Early and classical variants.
	out = runMain(t, "./cmd/agreement", "-variant", "early")
	if !strings.Contains(out, "verdict: ok") {
		t.Errorf("early variant failed:\n%s", out)
	}
	out = runMain(t, "./cmd/agreement", "-variant", "classical")
	if !strings.Contains(out, "classical baseline") || !strings.Contains(out, "verdict: ok") {
		t.Errorf("classical variant failed:\n%s", out)
	}
}

func TestCmdExperimentsSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	out := runMain(t, "./cmd/experiments", "-only", "E2")
	if !strings.Contains(out, "E2") || !strings.Contains(out, "[VERIFIED]") {
		t.Errorf("experiments output lacks verification:\n%s", out)
	}
}

func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the toolchain")
	}
	for _, tc := range []struct {
		pkg  string
		want string
	}{
		{"./examples/quickstart", "specification: ok"},
		{"./examples/tradeoff", "classical baseline"},
		{"./examples/faultstorm", "early decision tracks"},
		{"./examples/asyncset", "expected: everyone"},
		{"./examples/designer", "legal up to x=2"},
	} {
		out := runMain(t, tc.pkg)
		if !strings.Contains(out, tc.want) {
			t.Errorf("%s output lacks %q:\n%s", tc.pkg, tc.want, out)
		}
	}
}

package kset

import (
	"context"

	"kset/internal/shard"
	"kset/internal/stats"
)

// CheckpointVersion is the checkpoint wire-format version this build
// encodes, and the only one DecodeCheckpoint accepts.
const CheckpointVersion = shard.Version

// Checkpoint is the resumable state of a partially executed campaign
// shard: the shard's cursor, the number of runs already completed within
// it, and a snapshot of the results accumulated over exactly those runs.
// RunCheckpointed emits them and resumes from them; EncodeCheckpoint /
// DecodeCheckpoint are the strict, versioned wire round-trip.
type Checkpoint = shard.Checkpoint

// EncodeCheckpoint renders the checkpoint as its canonical JSON
// encoding, validating first so a corrupt envelope is never persisted.
func EncodeCheckpoint(c Checkpoint) ([]byte, error) { return c.Encode() }

// DecodeCheckpoint parses and validates a checkpoint encoding. Decoding
// is strict: malformed or truncated JSON, unknown fields, trailing
// bytes, version skew and inconsistent cursors all return errors
// wrapping ErrBadCheckpoint, and the decoder never panics — arbitrary
// bytes are safe to feed it.
func DecodeCheckpoint(data []byte) (Checkpoint, error) { return shard.Decode(data) }

// CampaignStatsOf renders an accumulator — a decoded shard upload, a
// checkpoint snapshot, or the fold of several — as the flat campaign
// stats view, exactly as a campaign over the same runs would have
// reported it.
func CampaignStatsOf(metrics *Accumulator) *CampaignStats {
	return newCampaignStats(metrics)
}

// CheckpointSink receives each checkpoint RunCheckpointed emits. A sink
// error aborts the campaign (the error is returned alongside the stats
// accumulated so far); persist-and-continue sinks simply return nil.
type CheckpointSink func(Checkpoint) error

// RunCheckpointed streams a scenario source (or the shard of one that a
// resumed checkpoint addresses) through campaigns in chunks of every
// runs, emitting a checkpoint to sink after each chunk. The source must
// be sized (ErrUnsizedSource otherwise). every ≤ 0 disables chunking —
// the whole remainder runs as one chunk, with one final checkpoint.
//
// Resume semantics: pass resume = nil to start fresh over the whole
// source, or a checkpoint (validated; ErrBadCheckpoint on a corrupt one)
// to continue an interrupted run — its cursor selects the shard, its
// RunsDone runs are skipped, and its snapshot seeds the accumulator. A
// resumed run is byte-identical to the uninterrupted one: chunks only
// ever cut the stream at run boundaries, and the accumulator's Merge is
// order- and grouping-invariant, so where the stream was cut leaves no
// trace in the result.
//
// Checkpoints are emitted only at chunk boundaries — the workers inside
// a chunk finish out of order, so no consistent cursor exists mid-chunk.
// The emitted checkpoint's Stats snapshot is isolated from the live
// accumulator: sinks may retain it, serialize it later, or upload it to
// a ksetd merge endpoint as is.
func (s *System) RunCheckpointed(ctx context.Context, src ScenarioSource, resume *Checkpoint, every int64, sink CheckpointSink, opts ...CampaignOption) (*CampaignStats, error) {
	acc := stats.NewAccumulator()
	var cur Cursor
	var done int64
	if resume != nil {
		if err := resume.Validate(); err != nil {
			return nil, err
		}
		cur, done = resume.Cursor, resume.RunsDone
		if resume.Stats != nil {
			acc.Merge(resume.Stats)
		}
	} else {
		total, ok := src.Size()
		if !ok {
			return nil, ErrUnsizedSource
		}
		cur = Cursor{Lo: 0, Hi: total}
	}
	for done < cur.Len() {
		chunk := cur.Len() - done
		if every > 0 && chunk > every {
			chunk = every
		}
		st, err := s.RunSource(ctx, Range(src, cur.Lo+done, cur.Lo+done+chunk), opts...)
		if st != nil && st.Metrics != nil {
			acc.Merge(st.Metrics)
		}
		if err != nil {
			// A cancelled chunk ran an unknown prefix: surface the partial
			// stats, but no checkpoint — its cursor would be inconsistent.
			return CampaignStatsOf(acc), err
		}
		done += chunk
		if sink != nil {
			cp := Checkpoint{
				Version:  CheckpointVersion,
				Cursor:   cur,
				RunsDone: done,
				Stats:    acc.Snapshot(),
			}
			if err := sink(cp); err != nil {
				return CampaignStatsOf(acc), err
			}
		}
	}
	return CampaignStatsOf(acc), nil
}

package kset

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"kset/internal/async"
	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/faultnet"
	"kset/internal/rounds"
)

// System is a reusable, concurrency-safe handle on one agreement problem
// instance: parameters, condition and executor are fixed and validated at
// construction, so the Run hot path performs no per-call validation beyond
// the input vector itself. A System owns pooled per-worker engine and
// protocol state; concurrent Run calls and campaign workers check workers
// out of the pool, so sweeps of millions of executions allocate almost
// nothing per run.
//
//	sys, err := kset.New(
//		kset.WithParams(kset.Params{N: 8, T: 5, K: 2, D: 3, L: 1}),
//		kset.WithCondition(cond),
//	)
//	res, err := sys.Run(ctx, input, fp)
//
// For batches, see NewCampaign and RunCampaign.
type System struct {
	p           Params
	hasParams   bool
	cond        Condition
	exec        Executor
	faults      *FaultPlan
	wireFactory TransportFactory

	workers        int
	procGoroutines bool
	asyncMemory    MemoryKind
	asyncBudget    int
}

// New constructs a System from functional options, validating the
// parameters, the condition's dimensions and the executor's requirements
// up front. Errors wrap ErrBadParams or ErrDomainTooLarge.
func New(opts ...Option) (*System, error) {
	s := &System{exec: Figure2, workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(s)
	}
	if !s.hasParams {
		return nil, fmt.Errorf("kset: no parameters (use WithParams): %w", ErrBadParams)
	}
	if s.workers < 1 {
		s.workers = 1
	}
	// Explicit conditions are compiled at construction: every downstream
	// membership probe — view decoding in the first round, campaign
	// verification, ConditionMembers streaming — then rides the immutable
	// O(1) index instead of the mutable map-backed representation.
	if e, ok := s.cond.(*condition.Explicit); ok {
		s.cond = condition.Compile(e)
	}
	if err := s.exec.check(s); err != nil {
		return nil, err
	}
	if s.faults != nil {
		if err := s.faults.Validate(s.p.N); err != nil {
			return nil, fmt.Errorf("kset: bad fault plan: %w: %w", err, ErrBadParams)
		}
	}
	if s.wireFactory != nil && s.faults != nil {
		return nil, fmt.Errorf("kset: WithTransport and WithFaultPlan are mutually exclusive (the wire transport owns its loss accounting): %w", ErrBadParams)
	}
	return s, nil
}

// Params returns the system's problem parameters.
func (s *System) Params() Params { return s.p }

// Condition returns the system's condition (nil for condition-free
// Classical systems).
func (s *System) Condition() Condition { return s.cond }

// Executor returns the system's default executor.
func (s *System) Executor() Executor { return s.exec }

// Run executes one agreement run of the system's executor on the given
// input vector and failure pattern. It is safe for concurrent use: each
// call checks a worker (engine + protocol buffers) out of a shared pool.
// The returned Result is freshly allocated and may be retained.
//
// Cancellation: the context is checked before the run and, for
// Asynchronous executions, aborts undecided processes mid-run.
// Synchronous runs are microsecond-scale and run to completion once
// started.
func (s *System) Run(ctx context.Context, input Vector, fp FailurePattern) (*Result, error) {
	return s.RunScenario(ctx, Scenario{Input: input, FP: fp})
}

// RunScenario is Run for a full scenario, honoring its executor override,
// async seed and crash points.
func (s *System) RunScenario(ctx context.Context, sc Scenario) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ex, err := s.resolveExecutor(&sc)
	if err != nil {
		return nil, err
	}
	w := getWorker()
	res, err := ex.run(ctx, s, w, &sc, nil)
	putWorker(w)
	return res, err
}

// resolveExecutor picks the scenario's executor: the system default (already
// validated at construction) or the scenario override, which is checked
// against the system here.
func (s *System) resolveExecutor(sc *Scenario) (Executor, error) {
	if sc.Executor == nil {
		return s.exec, nil
	}
	if err := sc.Executor.check(s); err != nil {
		return nil, err
	}
	return sc.Executor, nil
}

// Scenario is one unit of campaign work: an input vector under a failure
// pattern, optionally overriding the system's executor.
type Scenario struct {
	// Label optionally tags the scenario; it travels into the Outcome.
	Label string
	// Input is the full input vector (entry i proposed by process i+1).
	Input Vector
	// FP is the synchronous crash adversary. Asynchronous runs map it to
	// crash points: a round-1 crash before any send becomes
	// CrashBeforeWrite, every other crash CrashAfterWrite.
	FP FailurePattern
	// Executor overrides the system's executor for this scenario (nil =
	// system default).
	Executor Executor
	// Seed drives the scheduling jitter of Asynchronous runs and, mixed
	// with the fault plan's seed and the input, the fault draws of runs
	// under a FaultPlan.
	Seed int64
	// Faults injects link faults (loss, delay, duplication, reordering)
	// into this scenario's synchronous run, overriding the system's
	// WithFaultPlan default. The plan must be treated as immutable once
	// installed. Asynchronous runs ignore it.
	Faults *FaultPlan
	// AsyncCrashes, when non-nil, replaces the FP mapping for
	// Asynchronous runs.
	AsyncCrashes map[int]CrashPoint
}

// Executor selects which agreement algorithm a System runs. The four
// implementations — Figure2, EarlyDeciding, Classical and Asynchronous —
// present the paper's algorithms behind one interface; the interface is
// sealed (its methods are unexported) because executors reach into the
// System's pooled worker state.
type Executor interface {
	// Name returns a short stable identifier for tables and labels.
	Name() string
	// check validates the system's configuration for this executor.
	check(s *System) error
	// run executes one scenario on worker w. res, when non-nil, is a
	// recycled Result to write into; nil allocates fresh.
	run(ctx context.Context, s *System, w *worker, sc *Scenario, res *Result) (*Result, error)
	// synchronous reports whether results carry round and verdict
	// semantics (false for Asynchronous).
	synchronous() bool
}

// The four executors.
var (
	// Figure2 is the paper's synchronous condition-based k-set agreement
	// algorithm: max(2, ⌊(d+ℓ−1)/k⌋+1) rounds when the input is in the
	// condition, ⌊t/k⌋+1 otherwise.
	Figure2 Executor = figure2Exec{}
	// EarlyDeciding is the Section-8 extension: additionally never later
	// than min(⌊f/k⌋+3, the plain bounds), f the number of actual crashes.
	EarlyDeciding Executor = earlyExec{}
	// Classical is the condition-free flood baseline: exactly ⌊t/k⌋+1
	// rounds. It ignores the system's condition.
	Classical Executor = classicalExec{}
	// Asynchronous is the Section-4 condition-based ℓ-set agreement
	// algorithm over an atomic-snapshot memory. Results have no rounds
	// (Result.Rounds is 0); undecided processes are absent from
	// Result.Decisions.
	Asynchronous Executor = asyncExec{}
)

type figure2Exec struct{}

func (figure2Exec) Name() string      { return "figure2" }
func (figure2Exec) synchronous() bool { return true }
func (figure2Exec) check(s *System) error {
	return s.p.ValidateWith(s.cond)
}
func (figure2Exec) run(ctx context.Context, s *System, w *worker, sc *Scenario, res *Result) (*Result, error) {
	tr, err := w.transport(s, sc)
	if err != nil {
		return nil, err
	}
	out, err := w.runner.RunCond(s.p, s.cond, sc.Input, sc.FP, s.procGoroutines, tr, ctx.Done(), res)
	if err == nil {
		if terr := transportErr(tr); terr != nil {
			return nil, fmt.Errorf("kset: wire transport: %w", terr)
		}
	}
	return mapCanceled(ctx, out, err)
}

type earlyExec struct{}

func (earlyExec) Name() string      { return "early" }
func (earlyExec) synchronous() bool { return true }
func (earlyExec) check(s *System) error {
	return s.p.ValidateWith(s.cond)
}
func (earlyExec) run(ctx context.Context, s *System, w *worker, sc *Scenario, res *Result) (*Result, error) {
	tr, err := w.transport(s, sc)
	if err != nil {
		return nil, err
	}
	out, err := w.runner.RunEarly(s.p, s.cond, sc.Input, sc.FP, s.procGoroutines, tr, ctx.Done(), res)
	if err == nil {
		if terr := transportErr(tr); terr != nil {
			return nil, fmt.Errorf("kset: wire transport: %w", terr)
		}
	}
	return mapCanceled(ctx, out, err)
}

type classicalExec struct{}

func (classicalExec) Name() string      { return "classical" }
func (classicalExec) synchronous() bool { return true }
func (classicalExec) check(s *System) error {
	return core.ValidateClassical(s.p.N, s.p.T, s.p.K)
}
func (classicalExec) run(ctx context.Context, s *System, w *worker, sc *Scenario, res *Result) (*Result, error) {
	tr, err := w.transport(s, sc)
	if err != nil {
		return nil, err
	}
	out, err := w.runner.RunClassical(s.p.N, s.p.T, s.p.K, sc.Input, sc.FP, s.procGoroutines, tr, ctx.Done(), res)
	if err == nil {
		if terr := transportErr(tr); terr != nil {
			return nil, fmt.Errorf("kset: wire transport: %w", terr)
		}
	}
	return mapCanceled(ctx, out, err)
}

type asyncExec struct{}

func (asyncExec) Name() string      { return "async" }
func (asyncExec) synchronous() bool { return false }
func (asyncExec) check(s *System) error {
	return s.p.ValidateWith(s.cond)
}
func (asyncExec) run(ctx context.Context, s *System, w *worker, sc *Scenario, res *Result) (*Result, error) {
	n := s.p.N
	// The scenario's crash description — an AsyncCrashes map or the
	// synchronous FP — is converted once into the worker's dense
	// crash-point scratch, so the hot path builds no per-run maps.
	if cap(w.acp) < n {
		w.acp = make([]async.CrashPoint, n)
	}
	cp := w.acp[:n]
	for i := range cp {
		cp[i] = async.NoCrash
	}
	if sc.AsyncCrashes != nil {
		for id, c := range sc.AsyncCrashes {
			if id < 1 || id > n {
				return nil, fmt.Errorf("kset: async crash for unknown process %d: %w", id, ErrBadParams)
			}
			cp[id-1] = c
		}
	} else {
		for id, cr := range sc.FP.Crashes {
			if id < 1 || int(id) > n {
				return nil, fmt.Errorf("kset: crash for unknown process %d: %w", id, ErrBadParams)
			}
			if cr.Round == 1 && cr.AfterSends == 0 {
				cp[id-1] = async.CrashBeforeWrite
			} else {
				cp[id-1] = async.CrashAfterWrite
			}
		}
	}
	if w.arun == nil {
		w.arun = async.NewRunner()
	}
	out := &w.aout
	err := w.arun.RunInto(async.Config{
		X:           s.p.X(),
		Cond:        s.cond,
		Input:       sc.Input,
		CrashPoints: cp,
		Seed:        sc.Seed,
		ScanBudget:  s.asyncBudget,
		Memory:      s.asyncMemory,
		Cancel:      ctx.Done(),
	}, out)
	if err != nil {
		return nil, err
	}
	// A cancellation that left processes undecided is an aborted run; a
	// run that completed despite a late cancel is still a result.
	if err := ctx.Err(); err != nil && len(out.Undecided) > 0 {
		return nil, err
	}
	if res == nil {
		res = &Result{}
	}
	res.Reset()
	for id := 1; id <= n; id++ {
		if v, ok := out.Decision(id); ok {
			res.Decisions[ProcessID(id)] = v
		}
	}
	for i, c := range cp {
		if c != async.NoCrash {
			res.Crashed[ProcessID(i+1)] = true
		}
	}
	return res, nil
}

// mapCanceled converts the engine's between-rounds abort sentinel into
// the context's own error, so callers of Run/RunScenario and campaign
// outcomes observe context.Canceled/DeadlineExceeded — never the
// internal rounds.ErrCanceled — when a client disconnect or a DELETE
// stops in-flight synchronous work.
func mapCanceled(ctx context.Context, res *Result, err error) (*Result, error) {
	if err != nil && errors.Is(err, rounds.ErrCanceled) {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
	}
	return res, err
}

// worker bundles the per-worker reusable state of a System: the engine and
// protocol buffers, a recycled Result for stats-only campaign runs, and a
// lazily created fault-injecting transport for runs under a FaultPlan.
type worker struct {
	runner *core.Runner
	res    *rounds.Result
	ft     *faultnet.Transport

	// Asynchronous-plane state: a reusable scheduler Runner, a recycled
	// Outcome and the dense crash-point scratch, so campaign sweeps of
	// async scenarios allocate per run only what the Result itself needs.
	arun *async.Runner
	aout async.Outcome
	acp  []async.CrashPoint

	// wt is the worker's wire transport under WithTransport, created by
	// the owning System's factory on first use. Workers outlive Systems
	// in the shared pool, so the owner is tracked and the transport is
	// rebuilt (closing the old one's sockets) when a different System
	// checks the worker out.
	wt      rounds.Transport
	wtOwner *System
}

// transport resolves the run's transport: the System's wire transport
// when one is installed (cached per worker), otherwise the scenario's
// fault plan (falling back to the system default) — nil meaning the
// engine's allocation-free matrix fast path. Fault-transport draws are
// reseeded per run so they depend only on (plan, scenario), never on
// worker count or submission order.
func (w *worker) transport(s *System, sc *Scenario) (rounds.Transport, error) {
	plan := sc.Faults
	if plan == nil {
		plan = s.faults
	}
	if s.wireFactory != nil {
		if plan != nil {
			return nil, fmt.Errorf("kset: Scenario.Faults conflicts with the system's WithTransport plane: %w", ErrBadParams)
		}
		if w.wt == nil || w.wtOwner != s {
			if c, ok := w.wt.(io.Closer); ok {
				c.Close()
			}
			tr, err := s.wireFactory(s.p.N)
			if err != nil {
				return nil, fmt.Errorf("kset: wire transport: %w", err)
			}
			w.wt, w.wtOwner = tr, s
		}
		return w.wt, nil
	}
	if plan == nil {
		return nil, nil
	}
	if w.ft == nil {
		w.ft = &faultnet.Transport{}
	}
	if err := w.ft.SetPlan(plan, s.p.N); err != nil {
		return nil, fmt.Errorf("kset: bad fault plan: %w: %w", err, ErrBadParams)
	}
	w.ft.Reseed(faultSeed(plan, sc))
	return w.ft, nil
}

// workerPool is shared by every System: workers carry no per-System state,
// so short-lived Systems — including the deprecated free functions, which
// construct one per call — still reuse warmed engine buffers.
var workerPool = sync.Pool{New: func() any { return &worker{runner: core.NewRunner()} }}

func getWorker() *worker  { return workerPool.Get().(*worker) }
func putWorker(w *worker) { workerPool.Put(w) }

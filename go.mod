module kset

go 1.21

// Package kset_test exercises the public facade exactly as a downstream
// user would (modulo the internal/ restriction, which does not apply
// within the module).
package kset_test

import (
	"testing"

	"kset"
)

func TestQuickstartFlow(t *testing.T) {
	p := kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	c, err := kset.NewMaxCondition(p.N, 4, p.X(), p.L)
	if err != nil {
		t.Fatal(err)
	}
	input := kset.VectorOf(4, 4, 4, 2, 1, 2)
	res, err := kset.Agree(p, c, input, kset.NoFailures())
	if err != nil {
		t.Fatal(err)
	}
	verdict := kset.Verify(input, kset.NoFailures(), res, p.K)
	if !verdict.OK() {
		t.Fatalf("verdict: %v", verdict)
	}
	if res.MaxDecisionRound() != 2 {
		t.Errorf("decided at %d, want 2", res.MaxDecisionRound())
	}
}

func TestFacadeConditions(t *testing.T) {
	c, err := kset.NewExplicitCondition(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(kset.VectorOf(1, 1, 2, 3), kset.SetOf(1)); err != nil {
		t.Fatal(err)
	}
	if v := kset.CheckLegal(c, 1, 0); v != nil {
		t.Errorf("expected legal: %v", v)
	}
	if !kset.IsLegalizable(c, 1) {
		t.Error("expected legalizable")
	}
	if kset.IsLegalizable(c, 3) {
		t.Error("x=3 density is unachievable (mass 2)")
	}
}

func TestFacadeEarlyAndClassical(t *testing.T) {
	p := kset.Params{N: 5, T: 4, K: 2, D: 2, L: 1}
	c, err := kset.NewMaxCondition(p.N, 3, p.X(), p.L)
	if err != nil {
		t.Fatal(err)
	}
	input := kset.VectorOf(3, 3, 3, 1, 2)
	fp := kset.InitialCrashes(p.N, 1)

	early, err := kset.AgreeEarly(p, c, input, fp)
	if err != nil {
		t.Fatal(err)
	}
	if v := kset.Verify(input, fp, early, p.K); !v.OK() {
		t.Fatalf("early: %v", v)
	}

	classical, err := kset.AgreeClassical(p.N, p.T, p.K, input, fp)
	if err != nil {
		t.Fatal(err)
	}
	if v := kset.Verify(input, fp, classical, p.K); !v.OK() {
		t.Fatalf("classical: %v", v)
	}
	if classical.MaxDecisionRound() != p.T/p.K+1 {
		t.Errorf("classical decided at %d, want %d", classical.MaxDecisionRound(), p.T/p.K+1)
	}
	if early.MaxDecisionRound() > classical.MaxDecisionRound() {
		t.Errorf("early (%d rounds) slower than classical (%d)",
			early.MaxDecisionRound(), classical.MaxDecisionRound())
	}
}

func TestFacadeAsync(t *testing.T) {
	c, err := kset.NewMaxCondition(5, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := kset.AgreeAsync(kset.AsyncConfig{
		X:       2,
		Cond:    c,
		Input:   kset.VectorOf(3, 3, 2, 1, 2),
		Crashes: map[int]kset.CrashPoint{5: kset.CrashBeforeWrite},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Undecided) != 0 {
		t.Fatalf("undecided: %v", out.Undecided)
	}
	if d := out.DistinctDecisions(); d.Len() > 2 {
		t.Fatalf("too many values: %v", d)
	}
}

func TestFacadeCounting(t *testing.T) {
	nb, err := kset.ConditionSize(4, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Int64() != 81 { // 3^4: x=0 admits everything
		t.Errorf("NB(0,1) = %v, want 81", nb)
	}
	f, err := kset.ConditionFraction(4, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 || f >= 1 {
		t.Errorf("fraction = %v, want in (0,1)", f)
	}
	if _, err := kset.ConditionSize(0, 1, 0, 1); err == nil {
		t.Error("want error")
	}
}

package kset_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"kset"
)

// wireScenario is a run with a mid-round crash — enough adversarial
// structure to notice if a transport reorders, drops or re-delivers.
func wireScenario() kset.Scenario {
	return kset.Scenario{
		Input: kset.VectorOf(4, 4, 4, 2, 1, 2),
		FP: kset.FailurePattern{Crashes: map[kset.ProcessID]kset.Crash{
			3: {Round: 1, AfterSends: 2},
		}},
	}
}

// TestWireTransportMatchesMatrix: for every synchronous executor, a run
// whose payloads cross the wire codec (PipeWire) or real UDP datagrams
// (UDPLoopback) produces a Result deeply equal to the default in-memory
// matrix run — decisions, rounds, message counts, everything.
func TestWireTransportMatchesMatrix(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	planes := []struct {
		name string
		f    kset.TransportFactory
	}{
		{"pipe", kset.PipeWire()},
		{"udp", kset.UDPLoopback(kset.WireConfig{})},
	}
	for _, ex := range []kset.Executor{kset.Figure2, kset.EarlyDeciding, kset.Classical} {
		sc := wireScenario()
		sc.Executor = ex
		base := testSystem(t, kset.WithParams(p), kset.WithCondition(cond))
		want, err := base.RunScenario(context.Background(), sc)
		if err != nil {
			t.Fatalf("%s/matrix: %v", ex.Name(), err)
		}
		for _, pl := range planes {
			sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond),
				kset.WithTransport(pl.f))
			got, err := sys.RunScenario(context.Background(), sc)
			if err != nil {
				t.Fatalf("%s/%s: %v", ex.Name(), pl.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: result diverged from matrix\n got: %+v\nwant: %+v",
					ex.Name(), pl.name, got, want)
			}
		}
	}
}

// TestWireTransportExclusive: the wire plane and the fault plane are
// mutually exclusive — at construction and per scenario.
func TestWireTransportExclusive(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	_, err := kset.New(kset.WithParams(p), kset.WithCondition(cond),
		kset.WithTransport(kset.PipeWire()),
		kset.WithFaultPlan(&kset.FaultPlan{Default: kset.LinkFaults{Loss: 0.5}}))
	if !errors.Is(err, kset.ErrBadParams) {
		t.Fatalf("WithTransport+WithFaultPlan: err = %v, want ErrBadParams", err)
	}

	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond),
		kset.WithTransport(kset.PipeWire()))
	sc := wireScenario()
	sc.Faults = &kset.FaultPlan{Default: kset.LinkFaults{Loss: 0.5}}
	if _, err := sys.RunScenario(context.Background(), sc); !errors.Is(err, kset.ErrBadParams) {
		t.Fatalf("Scenario.Faults on a wire system: err = %v, want ErrBadParams", err)
	}
}

// TestWireTransportConcurrent drives concurrent runs through the shared
// worker pool: each worker must end up with its own transport instance
// and every run must still match the matrix decision.
func TestWireTransportConcurrent(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	base := testSystem(t, kset.WithParams(p), kset.WithCondition(cond))
	want, err := base.RunScenario(context.Background(), wireScenario())
	if err != nil {
		t.Fatal(err)
	}
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond),
		kset.WithTransport(kset.UDPLoopback(kset.WireConfig{Retransmit: time.Millisecond})))
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := sys.RunScenario(context.Background(), wireScenario())
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs <- errors.New("concurrent wire run diverged from matrix")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWireTransportAfterFaultSystem: two Systems sharing the worker pool —
// one wired, one matrix — must not leak transports into each other's runs.
func TestWireTransportAfterFaultSystem(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	wired := testSystem(t, kset.WithParams(p), kset.WithCondition(cond),
		kset.WithTransport(kset.PipeWire()))
	plain := testSystem(t, kset.WithParams(p), kset.WithCondition(cond))
	for i := 0; i < 4; i++ {
		if _, err := wired.RunScenario(context.Background(), wireScenario()); err != nil {
			t.Fatalf("wired run %d: %v", i, err)
		}
		res, err := plain.RunScenario(context.Background(), wireScenario())
		if err != nil {
			t.Fatalf("plain run %d: %v", i, err)
		}
		if res.Lost != 0 {
			t.Fatalf("plain run %d reports Lost=%d", i, res.Lost)
		}
	}
}

package kset_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"kset"
)

// stormPlan is a fault plan exercising every random fault kind at once.
func stormPlan(seed int64) *kset.FaultPlan {
	return &kset.FaultPlan{
		Seed:    seed,
		Default: kset.LinkFaults{Loss: 0.15, DelayProb: 0.2, MaxDelay: 2, Duplicate: 0.1},
		Reorder: 0.25,
	}
}

// TestFaultPlanEndToEnd drives a lossy plan through the full stack:
// System option, per-run Result counters, campaign accumulator tallies
// and the undecided-runs outcome, with no hangs and no panics.
func TestFaultPlanEndToEnd(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)),
		kset.WithFaultPlan(&kset.FaultPlan{Seed: 9, Default: kset.LinkFaults{Loss: 0.9}}))

	res, err := sys.Run(context.Background(), kset.VectorOf(4, 4, 4, 2, 1, 2), kset.FailurePattern{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Error("a 50% loss plan lost no copies")
	}

	stats, err := sys.RunSource(context.Background(),
		kset.RandomInputs(11, p.N, 4, 60), kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 60 || stats.Errors != 0 {
		t.Fatalf("runs=%d errors=%d", stats.Runs, stats.Errors)
	}
	ft := stats.Metrics.Faults
	if ft == nil || ft.Lost.Sum == 0 {
		t.Fatalf("campaign under a lossy plan recorded no fault tally: %+v", ft)
	}
	if stats.UndecidedRuns == 0 {
		t.Error("90% loss on every link left every run fully decided (suspicious)")
	}
	if stats.UndecidedRuns != stats.Metrics.UndecidedRuns {
		t.Errorf("flat UndecidedRuns %d != accumulator %d", stats.UndecidedRuns, stats.Metrics.UndecidedRuns)
	}
}

// TestScenarioFaultsOverride: a scenario's plan overrides the system's,
// and a fault-free system accepts per-scenario plans.
func TestScenarioFaultsOverride(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)))
	input := kset.VectorOf(4, 4, 4, 2, 1, 2)

	res, err := sys.RunScenario(context.Background(), kset.Scenario{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 || res.Delayed != 0 || res.Duplicated != 0 {
		t.Fatalf("fault-free run carries fault counters: %+v", res)
	}
	res, err = sys.RunScenario(context.Background(), kset.Scenario{
		Input:  input,
		Faults: &kset.FaultPlan{Seed: 2, Default: kset.LinkFaults{Loss: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesDelivered != 0 || res.Lost == 0 {
		t.Fatalf("loss-everything scenario plan delivered %d, lost %d", res.MessagesDelivered, res.Lost)
	}
}

// TestFaultPlanValidation: invalid plans are rejected with ErrBadParams —
// at New for the system plan, per run for a scenario plan.
func TestFaultPlanValidation(t *testing.T) {
	p := testParams()
	bad := &kset.FaultPlan{Default: kset.LinkFaults{Loss: 1.5}}
	_, err := kset.New(kset.WithParams(p), kset.WithCondition(testCondition(t, p)), kset.WithFaultPlan(bad))
	if !errors.Is(err, kset.ErrBadParams) {
		t.Errorf("New with a bad plan: %v, want ErrBadParams", err)
	}

	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)))
	_, err = sys.RunScenario(context.Background(), kset.Scenario{
		Input:  kset.VectorOf(4, 4, 4, 2, 1, 2),
		Faults: bad,
	})
	if !errors.Is(err, kset.ErrBadParams) {
		t.Errorf("RunScenario with a bad plan: %v, want ErrBadParams", err)
	}
	// A plan naming a process outside 1..n fails against this system.
	oob := &kset.FaultPlan{Scheduled: []kset.ScheduledFault{{Round: 1, From: 1, To: kset.ProcessID(p.N + 1), Kind: kset.FaultDrop}}}
	_, err = sys.RunScenario(context.Background(), kset.Scenario{
		Input:  kset.VectorOf(4, 4, 4, 2, 1, 2),
		Faults: oob,
	})
	if !errors.Is(err, kset.ErrBadParams) {
		t.Errorf("RunScenario with an out-of-range link: %v, want ErrBadParams", err)
	}
}

// TestLossyCampaignWorkerCountInvariance extends the results-plane
// determinism gate to the fault plane: under a lossy, delaying,
// duplicating, reordering transport the same seed and source must still
// produce byte-identical JSON — flat stats, fault tallies, undecided
// counts — for workers ∈ {1, 4, 16}, because fault draws are seeded per
// scenario, never per worker.
func TestLossyCampaignWorkerCountInvariance(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	const seed = 29

	source := func() kset.ScenarioSource {
		return kset.FaultSchedules(
			kset.CrossExecutors(
				kset.FailureSchedules(
					kset.RandomInputs(seed, p.N, 4, 40),
					kset.RandomCrashFamily(seed+1, p.N, p.T, p.RMax(), 3),
				),
				kset.Figure2, kset.EarlyDeciding, kset.Classical,
			),
			kset.FaultPlansOf(nil, stormPlan(seed+2)),
		)
	}
	report := func(workers int) []byte {
		sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond), kset.WithWorkers(workers))
		stats, err := sys.RunSource(context.Background(), source(), kset.VerifyRuns())
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(40 * 3 * 3 * 2); stats.Runs != want || stats.Errors != 0 {
			t.Fatalf("workers=%d: runs=%d (want %d) errors=%d", workers, stats.Runs, want, stats.Errors)
		}
		if stats.Metrics.Faults == nil {
			t.Fatalf("workers=%d: no fault tally under a storm plan", workers)
		}
		raw, err := json.Marshal(stats)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	first := report(1)
	for _, workers := range []int{4, 16} {
		if got := report(workers); string(got) != string(first) {
			t.Fatalf("lossy JSON report diverged between workers=1 and workers=%d:\n%s\nvs\n%s",
				workers, first, got)
		}
	}
}

// TestFaultGenerators pins the generator combinators: sizes, plan
// pointer stability across FaultSchedules iterations, and SweepFaults
// keys.
func TestFaultGenerators(t *testing.T) {
	inputs := kset.Inputs(kset.VectorOf(1, 1, 1, 1, 1, 1), kset.VectorOf(2, 2, 2, 2, 2, 2))

	crossed := kset.CrossFaults(inputs, nil, kset.UniformLoss(1, 0.5))
	if n, ok := crossed.Size(); !ok || n != 4 {
		t.Errorf("CrossFaults size = %d, %v, want 4", n, ok)
	}
	var plans []*kset.FaultPlan
	crossed.ForEach(func(sc kset.Scenario) bool {
		plans = append(plans, sc.Faults)
		return true
	})
	if len(plans) != 4 || plans[0] != nil || plans[1] == nil || plans[1] != plans[3] {
		t.Errorf("CrossFaults plan sequence wrong: %v", plans)
	}

	fam := kset.LossSweepFamily(7, 3, 0.3)
	sched := kset.FaultSchedules(inputs, fam)
	if n, ok := sched.Size(); !ok || n != 6 {
		t.Errorf("FaultSchedules size = %d, %v, want 6", n, ok)
	}
	plans = plans[:0]
	sched.ForEach(func(sc kset.Scenario) bool {
		plans = append(plans, sc.Faults)
		return true
	})
	// One materialization per iteration: both inputs share plan pointers.
	if len(plans) != 6 || plans[0] != plans[3] || plans[2] != plans[5] {
		t.Errorf("FaultSchedules must materialize the family once per iteration")
	}
	if !plans[0].Zero() {
		t.Error("loss sweep index 0 must be fault-free")
	}
	if plans[2].Default.Loss != 0.3 {
		t.Errorf("loss sweep last index rate = %v, want 0.3", plans[2].Default.Loss)
	}

	points := kset.SweepFaults(kset.SweepPoint{Key: "base", Source: inputs}, kset.DelaySweepFamily(3, 3, 0.5))
	if len(points) != 3 || points[0].Key != "base/delay=0" || points[2].Key != "base/delay=2" {
		t.Fatalf("SweepFaults keys wrong: %+v", points)
	}
	if n, ok := points[1].Source.Size(); !ok || n != 2 {
		t.Errorf("SweepFaults point source size = %d, %v, want 2", n, ok)
	}

	storm := kset.StormFamily(5, 4, 2, 0.4)
	if storm.Size() != 4 || !storm.Plan(0).Zero() || storm.Plan(3).Reorder != 0.4 {
		t.Errorf("StormFamily shape wrong: %+v", storm.Plan(3))
	}
}

// TestAsyncIgnoresFaults: the asynchronous executor has no synchronous
// transport; a fault plan must be silently inapplicable, not an error.
func TestAsyncIgnoresFaults(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)),
		kset.WithExecutor(kset.Asynchronous),
		kset.WithFaultPlan(&kset.FaultPlan{Default: kset.LinkFaults{Loss: 1}}))
	res, err := sys.Run(context.Background(), kset.VectorOf(4, 4, 4, 2, 1, 2), kset.FailurePattern{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Error("async run under an (ignored) loss-everything plan decided nothing")
	}
	if res.Lost != 0 {
		t.Errorf("async run reports %d lost copies, want 0", res.Lost)
	}
}

package kset

// Option configures a System at construction time. Every parameter an
// option sets is validated once inside New, which is what keeps the
// System's Run hot path free of per-call validation.
type Option func(*System)

// WithParams fixes the problem instance (n, t, k, d, ℓ). Required.
func WithParams(p Params) Option {
	return func(s *System) { s.p = p; s.hasParams = true }
}

// WithCondition instantiates the algorithms with the given (x,ℓ)-legal
// condition. Required for every executor except Classical. An explicit
// condition is compiled (snapshotted into its immutable indexed form) at
// construction: vectors added to it after New are not seen by the System,
// and Condition() returns the compiled form.
func WithCondition(c Condition) Option {
	return func(s *System) { s.cond = c }
}

// WithExecutor selects the default algorithm the System runs: Figure2
// (the default), EarlyDeciding, Classical or Asynchronous. Individual
// campaign scenarios may still override it per run.
func WithExecutor(e Executor) Option {
	return func(s *System) { s.exec = e }
}

// WithFaultPlan makes every synchronous run of the System inject link
// faults — loss, delay, duplication, reordering — according to the plan,
// composed on top of whatever crash FailurePattern each run carries.
// The plan is validated by New (errors wrap ErrBadParams) and must be
// treated as immutable afterwards; individual scenarios may still
// override it via Scenario.Faults. Asynchronous runs ignore it.
func WithFaultPlan(p *FaultPlan) Option {
	return func(s *System) { s.faults = p }
}

// WithWorkers sets the default campaign worker-pool size (default:
// GOMAXPROCS). Each worker owns its engine and protocol buffers, so the
// count bounds both parallelism and resident scratch memory.
func WithWorkers(n int) Option {
	return func(s *System) { s.workers = n }
}

// WithProcessGoroutines makes synchronous runs execute each round's
// compute phase on a bounded concurrent worker pool — the executor that
// models the paper's "n processes" faithfully and exercises protocols
// under the race detector. The default is the in-line executor, which is
// semantically identical and much faster.
func WithProcessGoroutines() Option {
	return func(s *System) { s.procGoroutines = true }
}

// WithAsyncMemory selects the shared-memory substrate of Asynchronous
// runs: MutexMemory (default), WaitFreeMemory or MessagePassingMemory.
func WithAsyncMemory(kind MemoryKind) Option {
	return func(s *System) { s.asyncMemory = kind }
}

// WithAsyncBudget bounds how many fruitless re-scans an undecided
// asynchronous process performs before giving up (default: a small bound
// derived from n that always suffices for in-condition inputs). The
// budget is counted in virtual scheduler steps, not wall-clock time, so
// runs stay deterministic: out-of-condition inputs give up after
// scans × n steps instead of blocking a real-time patience window.
func WithAsyncBudget(scans int) Option {
	return func(s *System) { s.asyncBudget = scans }
}

package kset

import (
	"context"
	"strings"
	"testing"
)

// panicExec is a white-box Executor (the interface is sealed) whose run
// always panics — the poisoned-scenario stand-in for the campaign
// hardening test.
type panicExec struct{}

func (panicExec) Name() string        { return "panicker" }
func (panicExec) synchronous() bool   { return true }
func (panicExec) check(*System) error { return nil }
func (panicExec) run(context.Context, *System, *worker, *Scenario, *Result) (*Result, error) {
	panic("executor exploded")
}

// TestCampaignRecoversExecutorPanic: a panicking executor fails its own
// run — surfacing as the scenario's Outcome.Err and in the campaign's
// error count — while the worker, the campaign and the process carry on;
// healthy scenarios in the same campaign still succeed.
func TestCampaignRecoversExecutorPanic(t *testing.T) {
	p := Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	cond, err := NewMaxCondition(p.N, 4, p.X(), p.L)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(WithParams(p), WithCondition(cond), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	input := VectorOf(4, 4, 4, 2, 1, 2)

	scs := make([]Scenario, 20)
	for i := range scs {
		scs[i] = Scenario{Input: input}
		if i%4 == 0 {
			scs[i].Executor = panicExec{}
		}
	}
	camp := sys.NewCampaign(context.Background(), CollectResults(len(scs)))
	if err := camp.SubmitAll(scs); err != nil {
		t.Fatal(err)
	}
	camp.Close()
	var panicked, ok int
	for out := range camp.Results() {
		if out.Err != nil {
			if !strings.Contains(out.Err.Error(), "panicked") || !strings.Contains(out.Err.Error(), "panicker") {
				t.Errorf("panic surfaced as %q, want a named executor-panicked error", out.Err)
			}
			panicked++
		} else {
			if len(out.Result.Decisions) == 0 {
				t.Error("healthy scenario decided nothing")
			}
			ok++
		}
	}
	stats, err := camp.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if panicked != 5 || ok != 15 {
		t.Fatalf("panicked=%d ok=%d, want 5/15", panicked, ok)
	}
	if stats.Runs != 20 || stats.Errors != 5 {
		t.Fatalf("stats runs=%d errors=%d, want 20/5", stats.Runs, stats.Errors)
	}
}

package kset

import (
	"context"
	"fmt"
)

// SweepPoint is one point of a parameter grid: a key for the result
// table, the System options that configure the point's problem instance,
// and the scenario source to stream through it. Build grids with
// SweepDegrees, expand them with SweepFailures and SweepExecutors, or
// assemble points directly.
type SweepPoint struct {
	// Key labels the point in the sweep's results ("d=3",
	// "early/initial=2", …).
	Key string
	// Options configure the point's System; they are validated by New
	// when the sweep reaches the point.
	Options []Option
	// Source is the scenario stream the point runs.
	Source ScenarioSource
}

// SweepResult is one grid point's aggregate outcome.
type SweepResult struct {
	// Key is the point's key, as given.
	Key string `json:"key"`
	// Params echoes the point's validated problem parameters.
	Params Params `json:"params"`
	// Stats aggregates the point's campaign. Each point runs its own
	// campaign with its own results-plane accumulator, so Stats.Metrics
	// is keyed per grid point; a CollectInto option passed to RunSweep,
	// by contrast, accumulates across the whole grid.
	Stats *CampaignStats `json:"stats"`
}

// RunSweep runs one campaign per grid point — the trade-off-curve driver:
// each point gets its own System (built and validated from its Options)
// and streams its Source through a campaign, and the results arrive keyed
// in grid order. Points run sequentially, so a sweep is exactly as
// deterministic as its sources; the campaign options (VerifyRuns,
// CampaignWorkers, …) apply to every point. RunSweep stops at the first
// construction or cancellation error, returning the results of the
// points that completed.
func RunSweep(ctx context.Context, points []SweepPoint, opts ...CampaignOption) ([]SweepResult, error) {
	results := make([]SweepResult, 0, len(points))
	for i := range points {
		pt := &points[i]
		sys, err := New(pt.Options...)
		if err != nil {
			return results, fmt.Errorf("sweep %q: %w", pt.Key, err)
		}
		stats, err := sys.RunSource(ctx, pt.Source, opts...)
		if err != nil {
			return results, fmt.Errorf("sweep %q: %w", pt.Key, err)
		}
		results = append(results, SweepResult{Key: pt.Key, Params: sys.Params(), Stats: stats})
	}
	return results, nil
}

// SweepDegrees builds the degree sweep of the Section-5 hierarchy
// S^0_t[ℓ] ⊂ S^1_t[ℓ] ⊂ … : one point per condition degree d = 0..t−ℓ
// (the range where the condition helps), keyed "d=<d>", each configured
// with base's n, t, k, ℓ and the max_ℓ-generated condition over {1..m}^n
// with x = t−d. The src callback supplies each point's scenario stream
// from its parameters and condition.
func SweepDegrees(base Params, m int, src func(p Params, c *MaxCondition) ScenarioSource) ([]SweepPoint, error) {
	if base.L > base.T {
		return nil, fmt.Errorf("sweep: ℓ=%d > t=%d leaves no degree where the condition helps: %w",
			base.L, base.T, ErrBadParams)
	}
	points := make([]SweepPoint, 0, base.T-base.L+1)
	for d := 0; d <= base.T-base.L; d++ {
		p := base
		p.D = d
		c, err := NewMaxCondition(p.N, m, p.X(), p.L)
		if err != nil {
			return nil, fmt.Errorf("sweep d=%d: %w", d, err)
		}
		points = append(points, SweepPoint{
			Key:     fmt.Sprintf("d=%d", d),
			Options: []Option{WithParams(p), WithCondition(c)},
			Source:  src(p, c),
		})
	}
	return points, nil
}

// SweepFailures expands one grid point into one point per pattern of the
// family, keyed "<key>/<family>=<i>" (or "<family>=<i>" when the base key
// is empty): the f-axis of a trade-off grid. Each point's source is the
// base source crossed with that single pattern.
func SweepFailures(base SweepPoint, fam FailureFamily) []SweepPoint {
	points := make([]SweepPoint, 0, fam.Size())
	for i := 0; i < fam.Size(); i++ {
		key := fmt.Sprintf("%s=%d", fam.Name(), i)
		if base.Key != "" {
			key = base.Key + "/" + key
		}
		points = append(points, SweepPoint{
			Key:     key,
			Options: base.Options,
			Source:  CrossFailures(base.Source, fam.Pattern(i)),
		})
	}
	return points
}

// SweepExecutors crosses grid points with executors: each input point
// yields one point per executor, keyed "<executor>/<key>", with the
// executor installed as the point's system default.
func SweepExecutors(points []SweepPoint, execs ...Executor) []SweepPoint {
	out := make([]SweepPoint, 0, len(points)*len(execs))
	for _, pt := range points {
		for _, ex := range execs {
			opts := make([]Option, 0, len(pt.Options)+1)
			opts = append(opts, pt.Options...)
			opts = append(opts, WithExecutor(ex))
			out = append(out, SweepPoint{
				Key:     ex.Name() + "/" + pt.Key,
				Options: opts,
				Source:  pt.Source,
			})
		}
	}
	return out
}

package kset_test

import (
	"context"
	"fmt"
	"log"

	"kset"
)

// ExampleNew constructs a reusable System: parameters, condition and
// executor are validated once, so Run performs no per-call validation.
func ExampleNew() {
	p := kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	cond, err := kset.NewMaxCondition(p.N, 4, p.X(), p.L) // C ∈ S^d_t[ℓ], x = t−d
	if err != nil {
		log.Fatal(err)
	}
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(cond))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Executor().Name(), "n =", sys.Params().N, "x =", sys.Params().X())
	// Output: figure2 n = 6 x = 2
}

// ExampleSystem_Run executes one agreement run: six processes propose,
// nobody crashes, and everyone decides within the condition-based bound.
func ExampleSystem_Run() {
	p := kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	cond, _ := kset.NewMaxCondition(p.N, 4, p.X(), p.L)
	sys, _ := kset.New(kset.WithParams(p), kset.WithCondition(cond))

	input := kset.VectorOf(4, 4, 4, 2, 1, 2)
	res, err := sys.Run(context.Background(), input, kset.NoFailures())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decisions:", res.Decisions)
	fmt.Println("decided in round", res.MaxDecisionRound(), "of at most", p.RMax())
	// Output:
	// decisions: map[1:4 2:4 3:4 4:4 5:4 6:4]
	// decided in round 2 of at most 2
}

// ExampleCampaign submits a handful of scenarios to a campaign and reads
// the deterministic aggregate: the stats are identical for a fixed
// scenario multiset regardless of worker count or scheduling.
func ExampleCampaign() {
	p := kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	cond, _ := kset.NewMaxCondition(p.N, 4, p.X(), p.L)
	sys, _ := kset.New(kset.WithParams(p), kset.WithCondition(cond))

	camp := sys.NewCampaign(context.Background(), kset.VerifyRuns())
	for f := 0; f <= p.T; f++ {
		if err := camp.Submit(kset.Scenario{
			Input: kset.VectorOf(4, 4, 4, 2, 1, 2),
			FP:    kset.InitialCrashes(p.N, f),
		}); err != nil {
			log.Fatal(err)
		}
	}
	stats, err := camp.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runs %d, violations %d, hit rate %.2f\n",
		stats.Runs, stats.Violations, stats.HitRate())
	// Output: runs 4, violations 0, hit rate 1.00
}

// ExampleCollectInto attaches a custom results-plane accumulator to a
// campaign: every run's Observation is folded in worker-local shards and
// joined deterministically, so the breakdowns (here: per executor) are
// identical for any worker count.
func ExampleCollectInto() {
	p := kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	cond, _ := kset.NewMaxCondition(p.N, 4, p.X(), p.L)
	sys, _ := kset.New(kset.WithParams(p), kset.WithCondition(cond))

	var scenarios []kset.Scenario
	for _, ex := range []kset.Executor{kset.Figure2, kset.Classical} {
		for f := 0; f <= p.T; f++ {
			scenarios = append(scenarios, kset.Scenario{
				Input:    kset.VectorOf(4, 4, 4, 2, 1, 2),
				FP:       kset.InitialCrashes(p.N, f),
				Executor: ex,
			})
		}
	}
	acc := kset.NewAccumulator()
	if _, err := sys.RunCampaign(context.Background(), scenarios, kset.CollectInto(acc)); err != nil {
		log.Fatal(err)
	}
	for _, name := range acc.ExecutorKeys() {
		g := acc.ByExecutor[name]
		fmt.Printf("%s: %d runs, max round %d\n", name, g.Runs, g.Rounds.Max)
	}
	// Output:
	// classical: 4 runs, max round 2
	// figure2: 4 runs, max round 2
}

// ExampleConditionSize evaluates the Theorem-13 closed form: the size of
// the max_ℓ-generated condition, far beyond anything enumerable.
func ExampleConditionSize() {
	nb, err := kset.ConditionSize(30, 8, 10, 2) // n=30, m=8, x=10, ℓ=2
	if err != nil {
		log.Fatal(err)
	}
	frac, _ := kset.ConditionFraction(30, 8, 10, 2)
	fmt.Println("NB(10,2) =", nb)
	fmt.Printf("fraction of all 8^30 inputs: %.4f\n", frac)
	// Output:
	// NB(10,2) = 140742119606429162648174104
	// fraction of all 8^30 inputs: 0.1137
}

// ExampleExhaustiveInputs streams every vector of {1..m}^n — here all
// 3^2 = 9 of them — without materializing the set.
func ExampleExhaustiveInputs() {
	src := kset.ExhaustiveInputs(2, 3)
	size, _ := src.Size()
	fmt.Println("size:", size)
	src.ForEach(func(sc kset.Scenario) bool {
		fmt.Print(sc.Input, " ")
		return true
	})
	fmt.Println()
	// Output:
	// size: 9
	// [1 1] [1 2] [1 3] [2 1] [2 2] [2 3] [3 1] [3 2] [3 3]
}

// ExampleConditionMembers streams a condition's members; the advertised
// size matches the Theorem-13 closed form NB(x,ℓ).
func ExampleConditionMembers() {
	cond, _ := kset.NewMaxCondition(4, 2, 2, 1) // n=4, m=2, x=2, ℓ=1
	src := kset.ConditionMembers(cond)
	size, _ := src.Size()
	nb, _ := kset.ConditionSize(4, 2, 2, 1)
	fmt.Println("size:", size, "NB:", nb)
	src.ForEach(func(sc kset.Scenario) bool {
		fmt.Print(sc.Input, " ")
		return true
	})
	fmt.Println()
	// Output:
	// size: 6 NB: 6
	// [1 1 1 1] [1 2 2 2] [2 1 2 2] [2 2 1 2] [2 2 2 1] [2 2 2 2]
}

// ExampleCompileCondition compiles a hand-built explicit condition once
// and drives a campaign over its own members: every membership probe and
// the member stream ride the compiled O(1) index (New would also compile
// the explicit condition automatically — compiling by hand lets one
// immutable index serve systems and scenario sources alike).
func ExampleCompileCondition() {
	p := kset.Params{N: 4, T: 2, K: 1, D: 1, L: 1}
	ec, err := kset.NewExplicitCondition(p.N, 3, p.L)
	if err != nil {
		log.Fatal(err)
	}
	// Three codewords, each recognizing its majority value (x = t−d = 1:
	// every recognized value occupies > 1 entry).
	for _, row := range []struct {
		in kset.Vector
		h  kset.Value
	}{
		{kset.VectorOf(1, 1, 1, 2), 1},
		{kset.VectorOf(2, 2, 3, 2), 2},
		{kset.VectorOf(3, 1, 3, 3), 3},
	} {
		if err := ec.Add(row.in, kset.SetOf(row.h)); err != nil {
			log.Fatal(err)
		}
	}
	cc := kset.CompileCondition(ec)

	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(cc))
	if err != nil {
		log.Fatal(err)
	}
	stats, err := sys.RunSource(context.Background(), kset.ConditionMembers(cc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("members:", cc.Size(), "runs:", stats.Runs, "hits:", stats.ConditionHits)
	fmt.Println("all decided by round", len(stats.DecisionRounds)-1)
	// Output:
	// members: 3 runs: 3 hits: 3
	// all decided by round 2
}

// ExampleRandomInputs draws seeded random inputs: the same seed yields
// the same stream, every time it is iterated.
func ExampleRandomInputs() {
	first := ""
	kset.RandomInputs(7, 5, 4, 3).ForEach(func(sc kset.Scenario) bool {
		first += sc.Input.String() + " "
		return true
	})
	again := ""
	kset.RandomInputs(7, 5, 4, 3).ForEach(func(sc kset.Scenario) bool {
		again += sc.Input.String() + " "
		return true
	})
	fmt.Println("deterministic:", first == again)
	// Output: deterministic: true
}

// ExampleCrossFailures crosses an input stream with explicit failure
// patterns: every input is run under every pattern.
func ExampleCrossFailures() {
	src := kset.CrossFailures(
		kset.Inputs(kset.VectorOf(1, 1, 1), kset.VectorOf(2, 1, 2)),
		kset.NoFailures(), kset.InitialCrashes(3, 1),
	)
	size, _ := src.Size()
	fmt.Println("2 inputs × 2 patterns =", size, "scenarios")
	// Output: 2 inputs × 2 patterns = 4 scenarios
}

// ExampleFailureSchedules crosses an input stream with a deterministic
// failure family — here the f = 0..2 initial-crash sweep.
func ExampleFailureSchedules() {
	fam := kset.InitialCrashFamily(6, 2)
	src := kset.FailureSchedules(kset.Inputs(kset.VectorOf(4, 4, 4, 2, 1, 2)), fam)
	size, _ := src.Size()
	fmt.Println(fam.Name(), "family of", fam.Size(), "→", size, "scenarios")
	src.ForEach(func(sc kset.Scenario) bool {
		fmt.Println("crashes:", len(sc.FP.Crashes))
		return true
	})
	// Output:
	// initial family of 3 → 3 scenarios
	// crashes: 0
	// crashes: 1
	// crashes: 2
}

// ExampleSystem_RunSource streams a generated scenario space — every
// input of {1..3}^5 under two adversaries — through one campaign.
func ExampleSystem_RunSource() {
	p := kset.Params{N: 5, T: 2, K: 2, D: 1, L: 1}
	cond, _ := kset.NewMaxCondition(p.N, 3, p.X(), p.L)
	sys, _ := kset.New(kset.WithParams(p), kset.WithCondition(cond))

	src := kset.CrossFailures(kset.ExhaustiveInputs(p.N, 3),
		kset.NoFailures(), kset.InitialCrashes(p.N, p.T))
	stats, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runs %d (3^5 × 2), violations %d, hit rate %.3f\n",
		stats.Runs, stats.Violations, stats.HitRate())
	// Output: runs 486 (3^5 × 2), violations 0, hit rate 0.650
}

// ExampleRunSweep runs one campaign per parameter-grid point: the d-axis
// trade-off between condition size and decision round, in one call.
func ExampleRunSweep() {
	const n, m, t, k = 6, 4, 3, 1
	input := kset.VectorOf(4, 4, 4, 4, 2, 1)
	points, err := kset.SweepDegrees(
		kset.Params{N: n, T: t, K: k, L: 1}, m,
		func(p kset.Params, c *kset.MaxCondition) kset.ScenarioSource {
			// The forcing adversary: more than x = t−d initial crashes.
			return kset.CrossFailures(kset.Inputs(input),
				kset.InitialCrashes(n, min(p.X()+1, t)))
		})
	if err != nil {
		log.Fatal(err)
	}
	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		nb, _ := kset.ConditionSize(n, m, r.Params.X(), r.Params.L)
		fmt.Printf("%s: |C| = %s, decided in round %d\n",
			r.Key, nb, r.Stats.MaxDecisionRound())
	}
	// Output:
	// d=0: |C| = 250, decided in round 2
	// d=1: |C| = 970, decided in round 2
	// d=2: |C| = 2440, decided in round 3
}

// ExampleSweepFaults expands one grid point along the fault axis — a
// uniform-loss ramp — and runs one verified campaign per plan: the
// robustness curve of the algorithm under link faults the paper's
// reliable-link model excludes.
func ExampleSweepFaults() {
	p := kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	cond, _ := kset.NewMaxCondition(p.N, 4, p.X(), p.L)

	base := kset.SweepPoint{
		Options: []kset.Option{kset.WithParams(p), kset.WithCondition(cond)},
		Source:  kset.RandomInputs(7, p.N, 4, 50),
	}
	points := kset.SweepFaults(base, kset.LossSweepFamily(21, 3, 0.5))
	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		lost := int64(0)
		if ft := r.Stats.Metrics.Faults; ft != nil {
			lost = ft.Lost.Sum
		}
		fmt.Printf("%s: runs %d, lost %d, violations %d, undecided runs %d\n",
			r.Key, r.Stats.Runs, lost, r.Stats.Violations, r.Stats.UndecidedRuns)
	}
	// Output:
	// loss=0: runs 50, lost 0, violations 0, undecided runs 0
	// loss=1: runs 50, lost 939, violations 1, undecided runs 0
	// loss=2: runs 50, lost 1775, violations 1, undecided runs 0
}

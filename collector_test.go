package kset_test

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"kset"
)

// TestCollectResultsOwnership pins the Result ownership contract of
// CollectResults: every Outcome carries a distinct, freshly allocated
// Result that the receiver owns outright — running more campaigns on the
// same system afterwards (which recycles pooled worker state) must not
// mutate the retained results.
func TestCollectResultsOwnership(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)), kset.WithWorkers(2))
	ctx := context.Background()

	const runs = 64
	scs := make([]kset.Scenario, runs)
	for i := range scs {
		scs[i] = kset.Scenario{Input: kset.VectorOf(4, 4, 4, 2, 1, 2), FP: kset.InitialCrashes(p.N, i%2)}
	}
	camp := sys.NewCampaign(ctx, kset.CollectResults(runs))
	if err := camp.SubmitAll(scs); err != nil {
		t.Fatal(err)
	}
	camp.Close()

	type snapshot struct {
		res      *kset.Result
		decided  int
		crashed  int
		round    int
		messages int64
	}
	var kept []snapshot
	seen := make(map[*kset.Result]bool)
	for out := range camp.Results() {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if seen[out.Result] {
			t.Fatal("two outcomes share one Result: recycled pool memory crossed the channel")
		}
		seen[out.Result] = true
		kept = append(kept, snapshot{
			res:     out.Result,
			decided: len(out.Result.Decisions), crashed: len(out.Result.Crashed),
			round: out.Result.MaxDecisionRound(), messages: out.Result.MessagesDelivered,
		})
	}
	if _, err := camp.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(kept) != runs {
		t.Fatalf("kept %d results, want %d", len(kept), runs)
	}

	// Churn the worker pool: a stats-only campaign recycles its own
	// Results; the retained ones must be untouched.
	if _, err := sys.RunCampaign(ctx, scs); err != nil {
		t.Fatal(err)
	}
	for i, s := range kept {
		if len(s.res.Decisions) != s.decided || len(s.res.Crashed) != s.crashed ||
			s.res.MaxDecisionRound() != s.round || s.res.MessagesDelivered != s.messages {
			t.Fatalf("retained result %d mutated after later campaigns: %+v vs %+v", i, s, s.res)
		}
	}
}

// invarianceSource builds the worker-invariance workload: a generated
// scenario stream (seeded random inputs × a seeded crash family × two
// executors) identical across calls.
func invarianceSource(p kset.Params, seed int64) kset.ScenarioSource {
	return kset.CrossExecutors(
		kset.FailureSchedules(
			kset.RandomInputs(seed, p.N, 4, 150),
			kset.RandomCrashFamily(seed+1, p.N, p.T, p.RMax(), 5),
		),
		kset.Figure2, kset.EarlyDeciding,
	)
}

// TestCampaignWorkerCountInvariance is the results-plane determinism
// gate: the same seed and source must produce a byte-identical JSON
// report — flat stats, histogram, summaries and every breakdown — for
// workers ∈ {1, 4, 16}.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	const seed = 23

	report := func(workers int) []byte {
		sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond), kset.WithWorkers(workers))
		stats, err := sys.RunSource(context.Background(), invarianceSource(p, seed), kset.VerifyRuns())
		if err != nil {
			t.Fatal(err)
		}
		if stats.Runs != 150*5*2 || stats.Errors != 0 || stats.Violations != 0 {
			t.Fatalf("workers=%d: runs=%d errors=%d violations=%d",
				workers, stats.Runs, stats.Errors, stats.Violations)
		}
		raw, err := json.Marshal(stats)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	first := report(1)
	for _, workers := range []int{4, 16} {
		if got := report(workers); string(got) != string(first) {
			t.Fatalf("JSON report diverged between workers=1 and workers=%d:\n%s\nvs\n%s",
				workers, first, got)
		}
	}
}

// shardCounter is a minimal custom Collector for the shard protocol
// tests: worker-local shards count observations without locks (the
// campaign contract guarantees single-goroutine access), Join folds them
// back, and a global counter cross-checks under -race that Observe calls
// really were shard-confined.
type shardCounter struct {
	observed int64
	errs     int64
	joined   int64 // number of shards folded in (root only)
	global   *atomic.Int64
}

func (s *shardCounter) Observe(o kset.Observation) {
	s.observed++ // intentionally unsynchronized: must be race-free by construction
	if o.Err {
		s.errs++
	}
	if s.global != nil {
		s.global.Add(1)
	}
}

func (s *shardCounter) Fork() kset.Collector { return &shardCounter{global: s.global} }

func (s *shardCounter) Join(shard kset.Collector) {
	sh := shard.(*shardCounter)
	s.observed += sh.observed
	s.errs += sh.errs
	s.joined++
}

// TestCampaignCollectorShards exercises the concurrent collector-shard
// pipeline with a custom Collector on a many-worker campaign — under
// -race this is the proof that Observe stays shard-local while Fork/Join
// carry everything back: counts must match the campaign's own stats.
func TestCampaignCollectorShards(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)), kset.WithWorkers(8))

	const runs = 2000
	scs := make([]kset.Scenario, runs)
	for i := range scs {
		scs[i] = kset.Scenario{Input: kset.VectorOf(4, 4, 4, 2, 1, 2), FP: kset.InitialCrashes(p.N, i%(p.T+1))}
	}
	var global atomic.Int64
	counter := &shardCounter{global: &global}
	extra := kset.NewAccumulator()
	stats, err := sys.RunCampaign(context.Background(), scs, kset.CollectInto(counter), kset.CollectInto(extra))
	if err != nil {
		t.Fatal(err)
	}
	if counter.observed != runs || counter.observed != stats.Runs {
		t.Errorf("custom collector observed %d runs, stats %d, want %d", counter.observed, stats.Runs, runs)
	}
	if counter.joined != 8 {
		t.Errorf("joined %d shards, want 8 (one per worker)", counter.joined)
	}
	if global.Load() != runs {
		t.Errorf("global observation count %d, want %d", global.Load(), runs)
	}
	// The CollectInto accumulator sees the same stream the campaign's own
	// accumulator folded.
	if extra.Runs != stats.Runs || extra.Errors != stats.Errors ||
		extra.MessagesDelivered() != stats.MessagesDelivered ||
		extra.MaxDecisionRound() != stats.MaxDecisionRound() {
		t.Errorf("CollectInto accumulator diverged: %+v vs stats %+v", extra, stats)
	}
}

// TestCampaignRunAllocations pins the per-run allocation budget of a
// stats-only campaign with the Collector pipeline in place: the observe
// path — Observation construction, collector fold, histogram and
// breakdowns — must add zero allocations over the engine's own ~1
// alloc/run steady state.
func TestCampaignRunAllocations(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)), kset.WithWorkers(1))
	ctx := context.Background()

	const runs = 2048
	scs := make([]kset.Scenario, runs)
	for i := range scs {
		scs[i] = kset.Scenario{Input: kset.VectorOf(4, 4, 4, 2, 1, 2), FP: kset.InitialCrashes(p.N, i%2)}
	}
	// Warm the pooled worker state.
	if _, err := sys.RunCampaign(ctx, scs); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(3, func() {
		stats, err := sys.RunCampaign(ctx, scs)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Runs != runs {
			t.Fatalf("ran %d/%d", stats.Runs, runs)
		}
	})
	perRun := avg / runs
	if perRun > 1.2 {
		t.Errorf("stats-only campaign allocates %.2f/run (%.0f total), want ≤ 1.2 — "+
			"the collector observe path must stay allocation-free", perRun, avg)
	}
}

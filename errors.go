package kset

import (
	"errors"

	"kset/internal/kerr"
	"kset/internal/shard"
)

// Sentinel errors shared by every constructor and run entry point of the
// package; classify with errors.Is. Each sentinel's comment lists exactly
// the entry points that return errors wrapping it.
var (
	// ErrBadParams marks invalid problem or condition parameters
	// (n, t, k, d, ℓ, x, m ranges, mismatched dimensions, nil conditions).
	//
	// Returned by: New (missing or out-of-range Params, condition/executor
	// mismatch) and everything that constructs a System internally —
	// RunSweep on a bad SweepPoint and the deprecated Agree, AgreeEarly,
	// AgreeClassical free functions; the condition constructors
	// NewMaxCondition, NewMinCondition, NewExplicitCondition (bad n, m, ℓ
	// or x); the counting functions ConditionSize, ConditionFraction (bad
	// n, m, ℓ or x out of 0 ≤ x < n); AgreeAsync / Asynchronous runs
	// (bad n, x, condition dimensions, or more crashes than x); and the
	// fault plane — New on an invalid WithFaultPlan plan, and runs whose
	// Scenario.Faults plan fails validation (out-of-range rates, bad
	// process IDs, scheduled delays without a delay bound).
	ErrBadParams = kerr.ErrBadParams

	// ErrDomainTooLarge marks a value domain beyond the 64-value cap of
	// the bitmask value sets, or an input value past it.
	//
	// Returned by: NewMaxCondition, NewMinCondition and
	// NewExplicitCondition when m > 64 — the only entry points that fix a
	// value domain. It is a sibling of ErrBadParams: domain-capped
	// conditions are the representation invariant the whole module's
	// allocation-free value sets rest on.
	ErrDomainTooLarge = kerr.ErrDomainTooLarge

	// ErrBadInput marks a malformed input vector for a run: wrong length,
	// ⊥ entries, or values outside the proposable range.
	//
	// Returned by: System.Run, System.RunScenario and campaign runs (as
	// the Outcome.Err of the offending scenario), the deprecated free
	// functions, and AgreeAsync — everything that accepts a per-run input
	// vector. Constructors never return it.
	ErrBadInput = kerr.ErrBadInput

	// ErrBadFrame marks a malformed wire datagram: wrong version byte,
	// truncation, trailing garbage, out-of-range fields, or a payload
	// that is not in canonical encoding. The wire decoders never panic on
	// arbitrary bytes — they return errors wrapping this sentinel.
	//
	// Returned by: runs of a System configured with WithTransport whose
	// transport surfaces a codec failure, and (wrapped) by the frame
	// codec in internal/wire that cmd/ksetpeer is built on. On a healthy
	// deployment it indicates a foreign or corrupted datagram arriving on
	// a peer's port; such frames are dropped and counted, not decoded.
	ErrBadFrame = kerr.ErrBadFrame

	// ErrCampaignClosed is returned by Campaign.Submit, SubmitAll and
	// SubmitSource after Close (or after Wait, which closes implicitly),
	// and by Submit on a campaign created by RunCampaign, whose fixed
	// workload admits no further scenarios.
	ErrCampaignClosed = errors.New("kset: campaign closed")

	// ErrUnsizedSource marks a scenario source whose Size is unknown where
	// sharding needs one: index ranges only partition streams of known
	// length.
	//
	// Returned by: NewShardPlan and ShardSource on an unsized source, and
	// System.RunCheckpointed when started fresh (resume == nil) over one —
	// resuming needs no size, the checkpoint's cursor carries it.
	ErrUnsizedSource = errors.New("kset: source size unknown")

	// ErrBadCheckpoint marks a checkpoint or cursor that failed decoding
	// or validation: malformed JSON, unknown fields, trailing bytes, a
	// version this build does not read, or a cursor/progress pair that
	// contradicts itself.
	//
	// Returned by: DecodeCheckpoint on any such input, EncodeCheckpoint on
	// an envelope that fails validation, and System.RunCheckpointed when
	// handed an invalid resume checkpoint.
	ErrBadCheckpoint = shard.ErrBadCheckpoint
)

package kset

import (
	"errors"

	"kset/internal/kerr"
)

// Sentinel errors shared by every constructor and run entry point of the
// package. Errors returned by NewMaxCondition, NewMinCondition,
// NewExplicitCondition, ConditionSize, New, System.Run and the deprecated
// free functions wrap one of these; classify with errors.Is.
var (
	// ErrBadParams marks invalid problem or condition parameters
	// (n, t, k, d, ℓ, x, m ranges, mismatched dimensions, nil conditions).
	ErrBadParams = kerr.ErrBadParams

	// ErrDomainTooLarge marks a value domain beyond the 64-value cap of
	// the bitmask value sets, or an input value past it.
	ErrDomainTooLarge = kerr.ErrDomainTooLarge

	// ErrBadInput marks a malformed input vector for a run: wrong length,
	// ⊥ entries, or values outside the proposable range.
	ErrBadInput = kerr.ErrBadInput

	// ErrCampaignClosed is returned by Campaign.Submit after Close.
	ErrCampaignClosed = errors.New("kset: campaign closed")
)

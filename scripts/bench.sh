#!/usr/bin/env sh
# Run the full benchmark suite and emit one JSON object per benchmark
# (ns/op, B/op, allocs/op) to the given file (default: bench.json).
#
# Usage: scripts/bench.sh [out.json] [benchtime]
set -eu

out="${1:-bench.json}"
benchtime="${2:-1s}"

cd "$(dirname "$0")/.."

raw="$(go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -count 1 .)"

printf '%s\n' "$raw" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i - 1)
        if ($(i) == "B/op")      bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", name, ns, bytes, allocs
}
END { print "\n}" }
' > "$out"

echo "wrote $out"

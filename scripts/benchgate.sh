#!/usr/bin/env sh
# Benchmark-regression smoke gate: run the budgeted benchmarks briefly and
# fail when any allocs/op exceeds its checked-in budget. Allocation counts
# are deterministic enough for CI (unlike ns/op, which this gate ignores),
# so a regression in the hot analysis paths — the §3 lattice sweep, the
# §6.2 exhaustive adversary sweep, the campaign run loop — fails the build
# instead of landing silently.
#
# Usage: scripts/benchgate.sh [benchtime]
set -eu

benchtime="${1:-20x}"

cd "$(dirname "$0")/.."

# Budgets: benchmark name (exact, GOMAXPROCS suffix stripped) and the
# maximum allowed allocs/op at the short benchtime above. Values carry
# headroom over the measured steady state (864 / 9 / ~2 at PR 4) while
# sitting far below the pre-compiled-condition costs (47906 / 5129 / 50).
# CollectorPath runs one fixed 512-scenario stats-only campaign per op
# through the full results-plane pipeline (Observation → collector shards
# → deterministic join): its budget holds the collector observe path at
# ≤ 1 alloc/run (measured: 556 for 512 runs + campaign setup at PR 5).
# EngineTransport prices the transport seam on a recycled engine: the
# matrix arm is the campaign hot path and must stay allocation-free (the
# seam is an interface dispatch, not a cost), and the warmed zero-fault
# faultnet arm must amortize to zero as well (measured: 0 / 0 at PR 6).
# SubmitPath is ksetd's submission loop — decode a JobSpec, compile it to
# a System + scenario stream, register and enqueue the job — which must
# stay flat for the daemon to absorb thousands of queued submissions on a
# 1-CPU container (measured: 30 at PR 7).
# CheckpointEncode prices one checkpoint emission — accumulator snapshot
# plus versioned JSON envelope. Its cost must scale with breakdown keys,
# never with the runs the checkpoint covers, so periodic checkpointing
# cannot regress the 1-alloc/run campaign hot path (measured: 25 at PR 8).
# WireEncode prices encoding one state-carrying data frame into a caller
# buffer — the per-copy cost of every wire-transport send and ksetpeer
# retransmission — and must stay allocation-free (measured: 0 at PR 9).
# The async-plane budgets (PR 10) pin the executor overhaul: warm scans on
# both snapshot substrates are epoch-published and allocation-free — and
# the wait-free construction must never cost more than the mutex stand-in
# (measured: 0 / 0); E10Async is one full virtual-scheduler agreement run
# (measured: 5); EngineConcurrent is a 64-process classical run on the
# bounded worker-pool executor (measured: 15, was 1189 on the
# goroutine-per-process executor); AsyncCampaign is a fixed 512-scenario
# asynchronous campaign through pooled worker Runners (measured: 2553,
# ~5 allocs/run).
budgets='
BenchmarkE1Lattice 2400
BenchmarkE9Adversary 400
BenchmarkCampaignThroughput/campaign 4
BenchmarkCollectorPath 700
BenchmarkEngineTransport/matrix 0
BenchmarkEngineTransport/faultnet 0
BenchmarkSubmitPath 40
BenchmarkCheckpointEncode 60
BenchmarkWireEncode 0
BenchmarkSnapshotScan/mutex 1
BenchmarkSnapshotScan/waitfree 1
BenchmarkE10Async 40
BenchmarkEngineConcurrent 60
BenchmarkAsyncCampaign 3000
'

# Wall-clock budgets (ns/op), used sparingly: ns/op is noisy in CI, so only
# order-of-magnitude regressions are gated. E10Async must stay ≥ 20× under
# its pre-overhaul 2.39ms — the deterministic virtual scheduler runs it in
# microseconds (measured: ~3µs), so 120µs flags any return of wall-clock
# sleeps to the async hot path without tripping on scheduler jitter.
nsbudgets='
BenchmarkE10Async 120000
'

raw="$(go test -run '^$' -bench 'E1Lattice$|E9Adversary$|CampaignThroughput/campaign|CollectorPath$|EngineTransport|SubmitPath$|CheckpointEncode$|WireEncode$|E10Async$|SnapshotScan|EngineConcurrent$|AsyncCampaign$' \
	-benchmem -benchtime "$benchtime" -count 1 . ./internal/rounds/ ./internal/service/ ./internal/wire/)"
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk -v budgets="$budgets" -v nsbudgets="$nsbudgets" '
BEGIN {
    n = split(budgets, lines, "\n")
    for (i = 1; i <= n; i++) {
        if (split(lines[i], f, " ") == 2) budget[f[1]] = f[2] + 0
    }
    n = split(nsbudgets, lines, "\n")
    for (i = 1; i <= n; i++) {
        if (split(lines[i], f, " ") == 2) nsbudget[f[1]] = f[2] + 0
    }
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($(i) == "allocs/op") allocs = $(i - 1) + 0
        if ($(i) == "ns/op") ns = $(i - 1) + 0
    }
    if (name in budget) {
        seen[name] = 1
        if (allocs > budget[name]) {
            printf "GATE FAIL: %s at %d allocs/op exceeds budget %d\n", name, allocs, budget[name]
            bad = 1
        } else {
            printf "gate ok:   %s at %d allocs/op (budget %d)\n", name, allocs, budget[name]
        }
    }
    if (name in nsbudget) {
        nsseen[name] = 1
        if (ns > nsbudget[name]) {
            printf "GATE FAIL: %s at %d ns/op exceeds budget %d\n", name, ns, nsbudget[name]
            bad = 1
        } else {
            printf "gate ok:   %s at %d ns/op (budget %d)\n", name, ns, nsbudget[name]
        }
    }
}
END {
    for (name in budget) if (!(name in seen)) {
        printf "GATE FAIL: budgeted benchmark %s did not run\n", name
        bad = 1
    }
    for (name in nsbudget) if (!(name in nsseen)) {
        printf "GATE FAIL: ns-budgeted benchmark %s did not run\n", name
        bad = 1
    }
    exit bad
}
'

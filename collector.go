package kset

import "kset/internal/stats"

// Results-plane types. Every layer of the stack reports runs through one
// pipeline: executions emit an Observation per run, Collectors fold
// observations into mergeable aggregates, and consumers (CampaignStats,
// experiment reports, the CLI's -json output) read the folded form.
type (
	// Observation is one run's flat metric record: decision round,
	// messages delivered, crashes, condition membership, verdict. The
	// campaign feeds one per scenario to every installed Collector.
	Observation = stats.Observation
	// Collector receives one Observation per run. Campaign workers fold
	// observations into worker-local shards (Fork) and the shards are
	// joined back deterministically on Wait, so a Collector
	// implementation never needs to be concurrency-safe — it only needs
	// Fork/Join. Deterministic collectors (all of whose aggregates are
	// order-insensitive, like Accumulator's sums, minima and maxima)
	// yield worker-count-invariant results.
	Collector = stats.Collector
	// Accumulator is the canonical Collector: bounded decision-round
	// histogram (with an exact overflow summary), run/error/violation
	// counters, min/mean/max summaries of messages and crashes, and
	// per-executor / per-crash-count / per-label breakdowns. It is
	// JSON-marshalable with deterministic byte output for a fixed
	// multiset of observations.
	Accumulator = stats.Accumulator
	// Histogram is the Accumulator's bounded decision-round histogram
	// with its exact overflow summary.
	Histogram = stats.Histogram
	// Summary is an exact min/mean/max fold of an integer quantity
	// (messages, crashes, rounds within a breakdown group).
	Summary = stats.Summary
	// Group is one breakdown bucket of an Accumulator (the value type of
	// ByExecutor, ByCrashes and ByLabel).
	Group = stats.Group
)

// NewAccumulator returns an empty results-plane accumulator, ready to be
// installed on a campaign with CollectInto or fed by hand.
func NewAccumulator() *Accumulator { return stats.NewAccumulator() }

// CollectInto installs an additional collector on the campaign: every
// run's Observation is folded into a worker-local shard of c (via
// c.Fork) and the shards are joined back into c, in worker order, when
// the campaign completes. The campaign's own statistics are unaffected —
// Wait still returns its CampaignStats; CollectInto is how callers
// attach richer or custom aggregation to the same stream.
//
// When the same option value is reused across sequential campaigns — one
// RunSweep, say, whose campaign options apply to every grid point — c
// accumulates across all of them, which makes it the grid-total
// collector; per-point aggregates are keyed by the sweep itself (each
// SweepResult carries its point's own Metrics).
func CollectInto(c Collector) CampaignOption {
	return func(camp *Campaign) { camp.extra = append(camp.extra, c) }
}

package kset_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"kset"
)

// TestCampaignStats runs a small fixed scenario set and pins every
// aggregate field.
func TestCampaignStats(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond), kset.WithWorkers(2))

	inC := kset.VectorOf(4, 4, 4, 2, 1, 2)  // in the condition
	outC := kset.VectorOf(1, 2, 3, 4, 1, 2) // outside it
	scenarios := []kset.Scenario{
		{Input: inC, FP: kset.NoFailures()},
		{Input: inC, FP: kset.InitialCrashes(p.N, 2)},
		{Input: inC, FP: kset.NoFailures(), Executor: kset.EarlyDeciding},
		{Input: outC, FP: kset.NoFailures()},
		{Input: outC, FP: kset.NoFailures(), Executor: kset.Classical},
		{Input: kset.VectorOf(1, 2), FP: kset.NoFailures()}, // bad input: an error, not a stop
	}

	stats, err := sys.RunCampaign(context.Background(), scenarios, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != int64(len(scenarios)) {
		t.Errorf("Runs = %d, want %d", stats.Runs, len(scenarios))
	}
	if stats.Errors != 1 {
		t.Errorf("Errors = %d, want 1", stats.Errors)
	}
	if stats.ConditionHits != 3 {
		t.Errorf("ConditionHits = %d, want 3", stats.ConditionHits)
	}
	if stats.Violations != 0 {
		t.Errorf("Violations = %d, want 0", stats.Violations)
	}
	if stats.MessagesDelivered == 0 {
		t.Error("MessagesDelivered = 0")
	}
	var histRuns int64
	for _, c := range stats.DecisionRounds {
		histRuns += c
	}
	if histRuns != stats.Runs-stats.Errors {
		t.Errorf("histogram covers %d runs, want %d", histRuns, stats.Runs-stats.Errors)
	}
	// The failure-free in-condition runs decide at round 2; nothing can
	// decide at round 1 or beyond RMax.
	if stats.DecisionRounds[2] < 2 {
		t.Errorf("histogram %v: want ≥ 2 two-round decisions", stats.DecisionRounds)
	}
	if len(stats.DecisionRounds) > p.RMax()+1 {
		t.Errorf("histogram %v extends past RMax=%d", stats.DecisionRounds, p.RMax())
	}
	if hr := stats.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", hr)
	}
	if m := stats.MeanDecisionRound(); m < 2 || m > float64(p.RMax()) {
		t.Errorf("MeanDecisionRound = %v outside [2, RMax]", m)
	}
}

// TestCampaignResultsStream checks the streaming channel: one outcome per
// scenario, each with a live private Result, channel closed at the end.
func TestCampaignResultsStream(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)))
	camp := sys.NewCampaign(context.Background(), kset.CollectResults(4), kset.VerifyRuns())

	const runs = 64
	go func() {
		for i := 0; i < runs; i++ {
			_ = camp.Submit(kset.Scenario{
				Label: "s",
				Input: kset.VectorOf(4, 4, 4, 2, 1, 2),
				FP:    kset.NoFailures(),
			})
		}
		camp.Close()
	}()

	seen := 0
	var prev *kset.Result
	for out := range camp.Results() {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
		if out.Result == nil || len(out.Result.Decisions) == 0 {
			t.Fatal("streamed outcome without decisions")
		}
		if out.Result == prev {
			t.Fatal("streamed outcomes share a Result")
		}
		if out.Verdict == nil || !out.Verdict.OK() {
			t.Fatalf("verdict: %v", out.Verdict)
		}
		prev = out.Result
		seen++
	}
	if seen != runs {
		t.Fatalf("streamed %d outcomes, want %d", seen, runs)
	}
	stats, err := camp.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != runs {
		t.Fatalf("stats.Runs = %d, want %d", stats.Runs, runs)
	}
}

// TestCampaignCancellation cancels mid-campaign: the workers stop, Wait
// reports the context error, and the stats cover only what ran.
func TestCampaignCancellation(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)), kset.WithWorkers(2))
	ctx, cancel := context.WithCancel(context.Background())
	camp := sys.NewCampaign(ctx, kset.CollectResults(0))

	const total = 10000
	submitErr := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if err := camp.Submit(kset.Scenario{
				Input: kset.VectorOf(4, 4, 4, 2, 1, 2),
				FP:    kset.NoFailures(),
			}); err != nil {
				submitErr <- err
				return
			}
		}
		submitErr <- nil
	}()

	// Consume a handful of outcomes (the unbuffered channel throttles the
	// workers to the consumer), then pull the plug and drain.
	for i := 0; i < 5; i++ {
		<-camp.Results()
	}
	cancel()
	for range camp.Results() {
	}

	if err := <-submitErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit error = %v, want context.Canceled", err)
	}
	stats, err := camp.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	if stats.Runs == 0 || stats.Runs >= total {
		t.Fatalf("stats.Runs = %d, want partial progress in (0, %d)", stats.Runs, total)
	}
	// Runs the cancellation aborted mid-flight (the engine now honors the
	// context at round boundaries) did not run: they must not surface as
	// campaign errors.
	if stats.Errors != 0 {
		t.Fatalf("stats.Errors = %d after cancellation, want 0", stats.Errors)
	}
}

// TestCampaignSubmitAfterClose pins the closed-campaign error.
func TestCampaignSubmitAfterClose(t *testing.T) {
	p := testParams()
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(testCondition(t, p)))
	camp := sys.NewCampaign(context.Background())
	camp.Close()
	if err := camp.Submit(kset.Scenario{Input: kset.VectorOf(4, 4, 4, 2, 1, 2)}); !errors.Is(err, kset.ErrCampaignClosed) {
		t.Fatalf("Submit after Close: %v, want ErrCampaignClosed", err)
	}
	if _, err := camp.Wait(); err != nil {
		t.Fatal(err)
	}
}

// seededScenarios builds the determinism test's workload: seeded random
// inputs, adversaries and executor mix.
func seededScenarios(p kset.Params, m, runs int, seed int64) []kset.Scenario {
	rng := rand.New(rand.NewSource(seed))
	execs := []kset.Executor{kset.Figure2, kset.EarlyDeciding, kset.Classical}
	scs := make([]kset.Scenario, runs)
	for i := range scs {
		input := make(kset.Vector, p.N)
		for j := range input {
			input[j] = kset.Value(1 + rng.Intn(m))
		}
		scs[i] = kset.Scenario{
			Input:    input,
			FP:       kset.RandomCrashes(rng, p.N, p.T, p.RMax()),
			Executor: execs[rng.Intn(len(execs))],
		}
	}
	return scs
}

// TestCampaignDeterminism: the same seed must yield byte-identical
// CampaignStats regardless of worker parallelism and scheduling.
func TestCampaignDeterminism(t *testing.T) {
	p := testParams()
	cond := testCondition(t, p)
	const runs, seed = 2000, 7

	run := func(workers int) *kset.CampaignStats {
		sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond), kset.WithWorkers(workers))
		stats, err := sys.RunCampaign(context.Background(), seededScenarios(p, 4, runs, seed), kset.VerifyRuns())
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	first := run(4)
	if first.Runs != runs || first.Errors != 0 {
		t.Fatalf("campaign ran %d/%d scenarios with %d errors", first.Runs, runs, first.Errors)
	}
	if first.Violations != 0 {
		t.Fatalf("%d specification violations", first.Violations)
	}
	for _, workers := range []int{4, 1, 7} {
		if again := run(workers); !reflect.DeepEqual(first, again) {
			t.Fatalf("same seed diverged at workers=%d:\n%+v\nvs\n%+v", workers, first, again)
		}
	}
}

// TestAsyncCampaignWorkerCountInvariance: asynchronous campaigns are a
// pure function of their scenario list — the virtual scheduler replaces
// wall-clock jitter, so the same seeds must yield byte-identical stats
// whether one worker runs the sweep or sixteen race through it.
func TestAsyncCampaignWorkerCountInvariance(t *testing.T) {
	const n, m, x, l = 6, 4, 2, 2
	cond, err := kset.NewMaxCondition(n, m, x, l)
	if err != nil {
		t.Fatal(err)
	}
	p := kset.Params{N: n, T: x, K: l, D: 0, L: l}

	// Seeded workload mixing in-condition and arbitrary inputs, crash
	// draws and all three memory substrates' default — the async plane's
	// analogue of seededScenarios.
	rng := rand.New(rand.NewSource(23))
	const runs = 600
	scs := make([]kset.Scenario, runs)
	for i := range scs {
		input := make(kset.Vector, n)
		for j := range input {
			input[j] = kset.Value(1 + rng.Intn(m))
		}
		var crashes map[int]kset.CrashPoint
		if k := rng.Intn(x + 1); k > 0 {
			crashes = make(map[int]kset.CrashPoint, k)
			for len(crashes) < k {
				id := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					crashes[id] = kset.CrashBeforeWrite
				} else {
					crashes[id] = kset.CrashAfterWrite
				}
			}
		}
		scs[i] = kset.Scenario{Input: input, Seed: rng.Int63(), AsyncCrashes: crashes}
	}

	run := func(workers int) *kset.CampaignStats {
		sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond),
			kset.WithExecutor(kset.Asynchronous), kset.WithWorkers(workers))
		stats, err := sys.RunCampaign(context.Background(), scs)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	first := run(1)
	if first.Runs != runs || first.Errors != 0 {
		t.Fatalf("campaign ran %d/%d scenarios with %d errors", first.Runs, runs, first.Errors)
	}
	if first.UndecidedRuns == 0 {
		t.Fatal("workload never exercised the give-up path; stats too weak to pin invariance")
	}
	for _, workers := range []int{4, 16} {
		if again := run(workers); !reflect.DeepEqual(first, again) {
			t.Fatalf("same scenarios diverged at workers=%d:\n%+v\nvs\n%+v", workers, first, again)
		}
	}
}

// Benchmarks: one per experiment/table of the paper (E1–E10, see
// DESIGN.md's index) plus micro-benchmarks of the kernels they rest on.
// Regenerate the full human-readable artifacts with cmd/experiments; these
// benchmarks time the computations that produce them.
package kset_test

import (
	"context"
	"math/rand"
	"testing"

	"kset"
	"kset/internal/adversary"
	"kset/internal/async"
	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/count"
	"kset/internal/lattice"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// BenchmarkE1Lattice verifies one Figure-1 cell (all six theorem checks).
func BenchmarkE1Lattice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := lattice.VerifyCell(4, 3, 1, 1)
		if !f.Verified() {
			b.Fatal("cell failed")
		}
	}
}

// BenchmarkE2Table1 proves and refutes the Table-1 condition's legality
// (Theorem 14: the refutation exhausts every (2,2)-recognizer).
func BenchmarkE2Table1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := lattice.Table1Condition()
		if condition.Check(c, 1, condition.CheckOptions{}) != nil {
			b.Fatal("not (1,1)-legal")
		}
		if _, ok := condition.ExistsRecognizer(lattice.WithL(c, 2), 2); ok {
			b.Fatal("unexpectedly (2,2)-legal")
		}
	}
}

// BenchmarkE3Count computes a full Theorem-13 size table at a scale far
// beyond enumeration (10^18-vector domain).
func BenchmarkE3Count(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for x := 0; x < 30; x += 5 {
			for l := 1; l <= 3; l++ {
				if _, err := count.NB(30, 8, x, l); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkE4Bounds runs the headline scenario: input in the condition,
// more than t−d staggered crashes, decision by RCond.
func BenchmarkE4Bounds(b *testing.B) {
	p := core.Params{N: 8, T: 5, K: 2, D: 3, L: 1}
	c := condition.MustNewMax(p.N, 4, p.X(), p.L)
	input := vector.OfInts(4, 4, 4, 2, 1, 2, 3, 1)
	fp := adversary.Stagger(p.N, p.T, p.X()+1, p.K, p.RMax())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(p, c, input, fp, false)
		if err != nil {
			b.Fatal(err)
		}
		if !core.Verify(input, fp, res, p.K).OK() {
			b.Fatal("spec violated")
		}
	}
}

// BenchmarkE5Tradeoff sweeps the degree d, timing one full size/rounds
// tradeoff series (counting + protocol runs).
func BenchmarkE5Tradeoff(b *testing.B) {
	n, m, t, k, l := 8, 4, 5, 2, 1
	input := vector.OfInts(4, 4, 4, 4, 4, 4, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 0; d <= t-l; d++ {
			p := core.Params{N: n, T: t, K: k, D: d, L: l}
			if _, err := count.NB(n, m, p.X(), l); err != nil {
				b.Fatal(err)
			}
			c := condition.MustNewMax(n, m, p.X(), l)
			fp := adversary.Stagger(n, t, p.X()+1, k, p.RMax())
			if _, err := core.Run(p, c, input, fp, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE6Dividing runs the k-sweep that exhibits the ⌊(d+ℓ−1)/k⌋+1
// dividing behavior.
func BenchmarkE6Dividing(b *testing.B) {
	n, m, t, d := 12, 4, 9, 6
	input := vector.New(n)
	for i := range input {
		input[i] = 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 1; k <= 4; k++ {
			p := core.Params{N: n, T: t, K: k, D: d, L: 1}
			c := condition.MustNewMax(n, m, p.X(), 1)
			fp := adversary.Stagger(n, t, p.X()+1, k, p.RMax())
			if _, err := core.Run(p, c, input, fp, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE7Early times the early-deciding variant on a failure-free run,
// its best case (2–3 rounds instead of ⌊t/k⌋+1).
func BenchmarkE7Early(b *testing.B) {
	p := core.Params{N: 8, T: 6, K: 1, D: 6, L: 1}
	c := condition.MustNewMax(p.N, 4, p.X(), p.L)
	input := vector.OfInts(4, 3, 2, 1, 1, 2, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunEarly(p, c, input, rounds.FailurePattern{}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Baseline contrasts per-run cost of the condition-based
// algorithm (2 rounds on in-condition inputs) and the classical baseline
// (⌊t/k⌋+1 rounds always).
func BenchmarkE8Baseline(b *testing.B) {
	n, m, t, k := 8, 4, 6, 2
	inC := vector.OfInts(4, 4, 4, 4, 4, 4, 3, 1)
	p := core.Params{N: n, T: t, K: k, D: 2, L: 1}
	c := condition.MustNewMax(n, m, p.X(), 1)
	b.Run("condition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(p, c, inC, rounds.FailurePattern{}, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("classical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunClassical(n, t, k, inC, rounds.FailurePattern{}, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9Adversary times an exhaustive safety sweep of one input over
// every ≤t-crash prefix-send pattern (the model-checking kernel), on the
// buffer-reusing Exhaust driver: one engine, protocol state and Result
// serve the whole sweep.
func BenchmarkE9Adversary(b *testing.B) {
	p := core.Params{N: 4, T: 2, K: 2, D: 1, L: 1}
	c := condition.MustNewMax(p.N, 2, p.X(), p.L)
	input := vector.OfInts(2, 2, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := core.Exhaust(p, c, input, func(fp rounds.FailurePattern, res *rounds.Result) bool {
			if !core.Verify(input, fp, res, p.K).OK() {
				b.Fatal("spec violated")
			}
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Async times a full asynchronous execution (goroutines,
// snapshot scans, decode) with an in-condition input.
func BenchmarkE10Async(b *testing.B) {
	c := condition.MustNewMax(6, 4, 2, 2)
	input := vector.OfInts(4, 4, 4, 2, 1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := async.Run(async.Config{X: 2, Cond: c, Input: input, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Undecided) != 0 {
			b.Fatal("blocked")
		}
	}
}

// BenchmarkCampaignThroughput contrasts the three ways to drive N
// executions of the same workload through the public API: the deprecated
// one-shot Agree free function (per-call validation, goroutine-per-process
// executor — the library's historical hot path), a reusable System's Run
// (construction-time validation, pooled workers, fresh Result per call),
// and a Campaign (per-worker engines, recycled Results, bounded fan-out).
// The campaign must win both ns/op and allocs/op.
func BenchmarkCampaignThroughput(b *testing.B) {
	p := kset.Params{N: 8, T: 5, K: 2, D: 3, L: 1}
	c, err := kset.NewMaxCondition(p.N, 4, p.X(), p.L)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(c))
	if err != nil {
		b.Fatal(err)
	}

	// A fixed seeded mix of inputs and adversaries, cycled by every arm.
	rng := rand.New(rand.NewSource(11))
	base := make([]kset.Scenario, 256)
	for i := range base {
		input := make(kset.Vector, p.N)
		for j := range input {
			input[j] = kset.Value(1 + rng.Intn(4))
		}
		base[i] = kset.Scenario{Input: input, FP: kset.RandomCrashes(rng, p.N, p.T, p.RMax())}
	}
	ctx := context.Background()

	b.Run("independent-agree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := &base[i%len(base)]
			if _, err := kset.Agree(p, c, sc.Input, sc.FP); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("system-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc := &base[i%len(base)]
			if _, err := sys.Run(ctx, sc.Input, sc.FP); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("campaign", func(b *testing.B) {
		b.ReportAllocs()
		scs := make([]kset.Scenario, b.N)
		for i := range scs {
			scs[i] = base[i%len(base)]
		}
		b.ResetTimer()
		stats, err := sys.RunCampaign(ctx, scs)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Runs != int64(b.N) || stats.Errors != 0 {
			b.Fatalf("campaign ran %d/%d with %d errors", stats.Runs, b.N, stats.Errors)
		}
	})
}

// BenchmarkSweep times the generator-fed campaign path: the same system
// and scenario shape as BenchmarkCampaignThroughput, but nothing is
// materialized — a ScenarioSource (seeded random inputs crossed with a
// fixed failure-pattern family) streams through System.RunSource under
// the campaign queue's backpressure. The generator layer's budget is ≤ 2
// allocs/run over the slice-fed campaign arm.
func BenchmarkSweep(b *testing.B) {
	p := kset.Params{N: 8, T: 5, K: 2, D: 3, L: 1}
	c, err := kset.NewMaxCondition(p.N, 4, p.X(), p.L)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(c))
	if err != nil {
		b.Fatal(err)
	}
	fam := kset.RandomCrashFamily(11, p.N, p.T, p.RMax(), 4)
	ctx := context.Background()

	b.Run("generator-fed", func(b *testing.B) {
		b.ReportAllocs()
		inputs := (b.N + fam.Size() - 1) / fam.Size()
		src := kset.FailureSchedules(kset.RandomInputs(11, p.N, 4, inputs), fam)
		b.ResetTimer()
		stats, err := sys.RunSource(ctx, src)
		if err != nil {
			b.Fatal(err)
		}
		if want := int64(inputs * fam.Size()); stats.Runs != want || stats.Errors != 0 {
			b.Fatalf("sweep ran %d/%d with %d errors", stats.Runs, want, stats.Errors)
		}
	})
}

// BenchmarkCollectorPath times the full results-plane pipeline per
// iteration: one fixed 512-scenario stats-only campaign through
// RunCampaign with an additional CollectInto accumulator, so every run
// exercises Observation construction, two collector folds (histogram,
// summaries, per-executor/per-crash breakdowns) and the deterministic
// shard join. The fixed batch amortizes campaign setup, making allocs/op
// ≈ 512 × per-run cost: the benchgate budget holds the collector path at
// ≤ 1 alloc/run (engine steady state) plus fixed campaign overhead.
func BenchmarkCollectorPath(b *testing.B) {
	p := kset.Params{N: 8, T: 5, K: 2, D: 3, L: 1}
	c, err := kset.NewMaxCondition(p.N, 4, p.X(), p.L)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(c))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const batch = 512
	scs := make([]kset.Scenario, batch)
	for i := range scs {
		input := make(kset.Vector, p.N)
		for j := range input {
			input[j] = kset.Value(1 + rng.Intn(4))
		}
		scs[i] = kset.Scenario{Input: input, FP: kset.RandomCrashes(rng, p.N, p.T, p.RMax())}
	}
	acc := kset.NewAccumulator()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := sys.RunCampaign(ctx, scs, kset.CollectInto(acc))
		if err != nil {
			b.Fatal(err)
		}
		if stats.Runs != batch || stats.Errors != 0 {
			b.Fatalf("campaign ran %d/%d with %d errors", stats.Runs, batch, stats.Errors)
		}
	}
}

// BenchmarkAsyncCampaign prices the asynchronous campaign hot path — the
// same fixed 512-scenario batch shape as BenchmarkCollectorPath, but
// through the Asynchronous executor: virtual-scheduler runs on pooled
// worker Runners with recycled Outcomes and dense crash-point scratch.
func BenchmarkAsyncCampaign(b *testing.B) {
	const n, m, x, l = 6, 4, 2, 2
	c, err := kset.NewMaxCondition(n, m, x, l)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := kset.New(
		kset.WithParams(kset.Params{N: n, T: x, K: l, D: 0, L: l}),
		kset.WithCondition(c),
		kset.WithExecutor(kset.Asynchronous),
	)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	input := kset.VectorOf(4, 4, 4, 2, 1, 2)
	const batch = 512
	scs := make([]kset.Scenario, batch)
	for i := range scs {
		scs[i] = kset.Scenario{Input: input, Seed: rng.Int63()}
		if i%3 == 0 {
			scs[i].AsyncCrashes = map[int]kset.CrashPoint{1 + rng.Intn(n): kset.CrashAfterWrite}
		}
	}
	acc := kset.NewAccumulator()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := sys.RunCampaign(ctx, scs, kset.CollectInto(acc))
		if err != nil {
			b.Fatal(err)
		}
		if stats.Runs != batch || stats.Errors != 0 || stats.UndecidedRuns != 0 {
			b.Fatalf("campaign ran %d/%d with %d errors, %d undecided",
				stats.Runs, batch, stats.Errors, stats.UndecidedRuns)
		}
	}
}

// --- micro-benchmarks of the kernels ---

// BenchmarkDecodeView times the Definition-4 view decoding that dominates
// the algorithm's first round (m^bottoms completions).
func BenchmarkDecodeView(b *testing.B) {
	c := condition.MustNewMax(10, 6, 3, 2)
	j := vector.OfInts(6, 6, 6, 6, 5, 2, 1, 0, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := condition.DecodeView(c, j); !ok {
			b.Fatal("undecodable")
		}
	}
}

// BenchmarkPredicate times the analytic P(J) fast path of max conditions.
func BenchmarkPredicate(b *testing.B) {
	c := condition.MustNewMax(10, 6, 3, 2)
	j := vector.OfInts(6, 6, 6, 6, 5, 2, 1, 0, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !condition.Predicate(c, j) {
			b.Fatal("P must hold")
		}
	}
}

// BenchmarkEngineRound times the synchronous kernel itself: one classical
// run over 64 processes (n² message routing per round).
func BenchmarkEngineRound(b *testing.B) {
	n, t, k := 64, 32, 4
	input := vector.New(n)
	for i := range input {
		input[i] = vector.Value(1 + i%8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunClassical(n, t, k, input, rounds.FailurePattern{}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineConcurrent is the same run on the goroutine-per-process
// executor, measuring the coordination overhead.
func BenchmarkEngineConcurrent(b *testing.B) {
	n, t, k := 64, 32, 4
	input := vector.New(n)
	for i := range input {
		input[i] = vector.Value(1 + i%8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunClassical(n, t, k, input, rounds.FailurePattern{}, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotScan compares the two shared-memory substrates' scans:
// the lock-serialized simulation vs the wait-free Afek-et-al construction.
func BenchmarkSnapshotScan(b *testing.B) {
	for name, s := range map[string]async.Store{
		"mutex":    async.NewSnapshot(64),
		"waitfree": async.NewAtomicSnapshot(64),
	} {
		for i := 0; i < 64; i++ {
			s.Write(i, vector.Value(i+1))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := s.Scan(); len(v) != 64 {
					b.Fatal("bad scan")
				}
			}
		})
	}
}

// BenchmarkAsyncMemoryAblation runs the full asynchronous agreement on
// each substrate.
func BenchmarkAsyncMemoryAblation(b *testing.B) {
	c := condition.MustNewMax(6, 4, 2, 2)
	input := vector.OfInts(4, 4, 4, 2, 1, 2)
	for name, kind := range map[string]async.MemoryKind{
		"mutex":      async.MutexMemory,
		"waitfree":   async.WaitFreeMemory,
		"msgpassing": async.MessagePassingMemory,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := async.Run(async.Config{
					X: 2, Cond: c, Input: input, Seed: int64(i), Memory: kind,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(out.Undecided) != 0 {
					b.Fatal("blocked")
				}
			}
		})
	}
}

// BenchmarkNBCounting times a single large Theorem-13 evaluation.
func BenchmarkNBCounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := count.NB(100, 16, 40, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointEncode prices one checkpoint emission — snapshot a
// populated accumulator, wrap it in the versioned envelope, encode to
// JSON — which is what a campaign pays every N runs when checkpointing.
// The budget (see scripts/benchgate.sh) keeps the cost bounded by the
// accumulator's breakdown cardinality, never by the runs it covers, so
// checkpointing cannot regress the 1-alloc/run campaign hot path.
func BenchmarkCheckpointEncode(b *testing.B) {
	acc := &kset.Accumulator{}
	for i := 0; i < 4096; i++ {
		acc.Observe(kset.Observation{
			Round: 1 + i%4, Messages: int64(20 + i%9), Crashes: i % 3,
			Decided: 6, InCondition: i%2 == 0, Verified: true,
			Executor: []string{"figure2", "early", "classical"}[i%3],
		})
	}
	cp := kset.Checkpoint{
		Version:  kset.CheckpointVersion,
		Cursor:   kset.Cursor{Lo: 0, Hi: 8192},
		RunsDone: 4096,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Stats = acc.Snapshot()
		data, err := kset.EncodeCheckpoint(cp)
		if err != nil {
			b.Fatal(err)
		}
		_ = data
	}
}

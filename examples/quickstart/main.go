// Quickstart: build a condition, construct a reusable System, run
// condition-based k-set agreement, and inspect the result.
//
// Eight processes propose values; at most t = 5 may crash; decisions must
// not exceed k = 2 distinct values. Instantiated with a condition of degree
// d = 3 (a (t−d, ℓ) = (2,1)-legal condition), the algorithm decides in two
// rounds when the input vector belongs to the condition — instead of the
// classical ⌊t/k⌋+1 = 3.
//
// The System is constructed once — parameters and condition are validated
// there — and can then be Run as many times, and from as many goroutines,
// as the workload demands.
package main

import (
	"context"
	"fmt"
	"log"

	"kset"
)

func main() {
	p := kset.Params{N: 8, T: 5, K: 2, D: 3, L: 1}

	// The max_ℓ-generated (t−d, ℓ)-legal condition over values {1..4}:
	// vectors whose greatest value appears on more than t−d = 2 entries.
	cond, err := kset.NewMaxCondition(p.N, 4, p.X(), p.L)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(cond))
	if err != nil {
		log.Fatal(err)
	}

	// An input in the condition: value 4 proposed by three processes.
	input := kset.VectorOf(4, 4, 4, 2, 1, 2, 3, 1)
	fmt.Printf("input %v belongs to the condition: %v\n", input, cond.Contains(input))

	// Crash two processes before they say anything.
	fp := kset.InitialCrashes(p.N, 2)

	res, err := sys.Run(context.Background(), input, fp)
	if err != nil {
		log.Fatal(err)
	}
	verdict := kset.Verify(input, fp, res, p.K)
	fmt.Printf("decisions: %v\n", res.Decisions)
	fmt.Printf("all decided by round %d (classical bound would be %d)\n",
		res.MaxDecisionRound(), p.T/p.K+1)
	fmt.Printf("specification: %v\n", verdict)
}

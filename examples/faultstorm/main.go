// Faultstorm: early decision under increasing failures (Section 8).
//
// A replicated coordinator group of n = 9 must agree on at most k = 2
// leader epochs despite up to t = 8 crashes. The plain algorithms pay for
// t — the crashes that could happen; the early-deciding variant pays for
// f — the crashes that do happen, deciding in about ⌊f/k⌋ rounds plus a
// small constant. The program storms the group with ever more initial
// crashes and prints how each variant's decision round responds.
package main

import (
	"fmt"
	"log"

	"kset"
)

func main() {
	const (
		n, m = 9, 4
		t, k = 8, 2
	)
	// d = t: no help from conditions — isolating the early-decision effect.
	p := kset.Params{N: n, T: t, K: k, D: t, L: 1}
	cond, err := kset.NewMaxCondition(n, m, p.X(), p.L)
	if err != nil {
		log.Fatal(err)
	}
	input := kset.VectorOf(4, 3, 2, 1, 1, 2, 3, 1, 2)

	fmt.Printf("n=%d t=%d k=%d: plain worst case ⌊t/k⌋+1 = %d rounds\n\n", n, t, k, p.RMax())
	fmt.Printf("%-4s %-16s %-16s %-18s\n", "f", "plain (Fig. 2)", "early variant", "classical baseline")
	for f := 0; f <= t; f++ {
		fp := kset.InitialCrashes(n, f)

		plain, err := kset.Agree(p, cond, input, fp)
		if err != nil {
			log.Fatal(err)
		}
		early, err := kset.AgreeEarly(p, cond, input, fp)
		if err != nil {
			log.Fatal(err)
		}
		classical, err := kset.AgreeClassical(n, t, k, input, fp)
		if err != nil {
			log.Fatal(err)
		}
		for name, res := range map[string]*kset.Result{"plain": plain, "early": early, "classical": classical} {
			if v := kset.Verify(input, fp, res, k); !v.OK() {
				log.Fatalf("f=%d %s: %v", f, name, v)
			}
		}
		fmt.Printf("%-4d %-16d %-16d %-18d\n",
			f, plain.MaxDecisionRound(), early.MaxDecisionRound(), classical.MaxDecisionRound())
	}
	fmt.Println("\n(early decision tracks the crashes that actually happen;")
	fmt.Println(" with f=0 everyone is done two or three rounds in, whatever t is)")
}

// Faultstorm: early decision under increasing failures (Section 8), run
// as one Campaign.
//
// A replicated coordinator group of n = 9 must agree on at most k = 2
// leader epochs despite up to t = 8 crashes. The plain algorithms pay for
// t — the crashes that could happen; the early-deciding variant pays for
// f — the crashes that do happen, deciding in about ⌊f/k⌋ rounds plus a
// small constant. The program storms the group with ever more initial
// crashes and prints how each variant's decision round responds.
//
// All 27 executions (9 failure counts × 3 algorithm variants) are
// submitted to a single campaign: each scenario carries its own executor
// override, the runs fan across the worker pool, verification is on, and
// the per-scenario results stream back over the campaign's channel.
package main

import (
	"context"
	"fmt"
	"log"

	"kset"
)

func main() {
	const (
		n, m = 9, 4
		t, k = 8, 2
	)
	// d = t: no help from conditions — isolating the early-decision effect.
	p := kset.Params{N: n, T: t, K: k, D: t, L: 1}
	cond, err := kset.NewMaxCondition(n, m, p.X(), p.L)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(cond))
	if err != nil {
		log.Fatal(err)
	}
	input := kset.VectorOf(4, 3, 2, 1, 1, 2, 3, 1, 2)

	variants := []kset.Executor{kset.Figure2, kset.EarlyDeciding, kset.Classical}
	camp := sys.NewCampaign(context.Background(),
		kset.CollectResults(64), kset.VerifyRuns())
	for f := 0; f <= t; f++ {
		for _, ex := range variants {
			err := camp.Submit(kset.Scenario{
				Label:    fmt.Sprintf("%s/f=%d", ex.Name(), f),
				Input:    input,
				FP:       kset.InitialCrashes(n, f),
				Executor: ex,
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	camp.Close()

	// Collect the streamed outcomes by label; order across workers is
	// arbitrary, the labels are not.
	rounds := make(map[string]int)
	for out := range camp.Results() {
		if out.Err != nil {
			log.Fatalf("%s: %v", out.Scenario.Label, out.Err)
		}
		if out.Verdict != nil && !out.Verdict.OK() {
			log.Fatalf("%s: %v", out.Scenario.Label, out.Verdict)
		}
		rounds[out.Scenario.Label] = out.Result.MaxDecisionRound()
	}
	stats, err := camp.Wait()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n=%d t=%d k=%d: plain worst case ⌊t/k⌋+1 = %d rounds\n\n", n, t, k, p.RMax())
	fmt.Printf("%-4s %-16s %-16s %-18s\n", "f", "plain (Fig. 2)", "early variant", "classical baseline")
	for f := 0; f <= t; f++ {
		fmt.Printf("%-4d %-16d %-16d %-18d\n", f,
			rounds[fmt.Sprintf("figure2/f=%d", f)],
			rounds[fmt.Sprintf("early/f=%d", f)],
			rounds[fmt.Sprintf("classical/f=%d", f)])
	}
	fmt.Printf("\ncampaign: %d runs, %d violations, %d messages delivered\n",
		stats.Runs, stats.Violations, stats.MessagesDelivered)
	fmt.Println("(early decision tracks the crashes that actually happen;")
	fmt.Println(" with f=0 everyone is done two or three rounds in, whatever t is)")
}

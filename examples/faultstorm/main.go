// Faultstorm: early decision under increasing failures (Section 8), run
// as a sweep grid.
//
// A replicated coordinator group of n = 9 must agree on at most k = 2
// leader epochs despite up to t = 8 crashes. The plain algorithms pay for
// t — the crashes that could happen; the early-deciding variant pays for
// f — the crashes that do happen, deciding in about ⌊f/k⌋ rounds plus a
// small constant. The program storms the group with ever more initial
// crashes and prints how each variant's decision round responds.
//
// The 27 executions (9 failure counts × 3 algorithm variants) are a
// declared grid, not a loop: one base point (the input) is expanded along
// the f-axis by kset.SweepFailures over the initial-crash family, then
// along the algorithm axis by kset.SweepExecutors, and kset.RunSweep runs
// one verified campaign per point and returns the keyed stats.
package main

import (
	"context"
	"fmt"
	"log"

	"kset"
)

func main() {
	const (
		n, m = 9, 4
		t, k = 8, 2
	)
	// d = t: no help from conditions — isolating the early-decision effect.
	p := kset.Params{N: n, T: t, K: k, D: t, L: 1}
	cond, err := kset.NewMaxCondition(n, m, p.X(), p.L)
	if err != nil {
		log.Fatal(err)
	}
	input := kset.VectorOf(4, 3, 2, 1, 1, 2, 3, 1, 2)

	base := kset.SweepPoint{
		Options: []kset.Option{kset.WithParams(p), kset.WithCondition(cond)},
		Source:  kset.Inputs(input),
	}
	points := kset.SweepExecutors(
		kset.SweepFailures(base, kset.InitialCrashFamily(n, t)),
		kset.Figure2, kset.EarlyDeciding, kset.Classical)

	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		log.Fatal(err)
	}

	// Index the keyed stats; keys look like "early/initial=3".
	rounds := make(map[string]int)
	var runs, messages int64
	for _, r := range results {
		if r.Stats.Errors > 0 || r.Stats.Violations > 0 {
			log.Fatalf("%s: %d run error(s), %d specification violation(s)",
				r.Key, r.Stats.Errors, r.Stats.Violations)
		}
		rounds[r.Key] = r.Stats.MaxDecisionRound()
		runs += r.Stats.Runs
		messages += r.Stats.MessagesDelivered
	}

	fmt.Printf("n=%d t=%d k=%d: plain worst case ⌊t/k⌋+1 = %d rounds\n\n", n, t, k, p.RMax())
	fmt.Printf("%-4s %-16s %-16s %-18s\n", "f", "plain (Fig. 2)", "early variant", "classical baseline")
	for f := 0; f <= t; f++ {
		fmt.Printf("%-4d %-16d %-16d %-18d\n", f,
			rounds[fmt.Sprintf("figure2/initial=%d", f)],
			rounds[fmt.Sprintf("early/initial=%d", f)],
			rounds[fmt.Sprintf("classical/initial=%d", f)])
	}
	fmt.Printf("\nsweep: %d points, %d runs, %d messages delivered\n",
		len(results), runs, messages)
	fmt.Println("(early decision tracks the crashes that actually happen;")
	fmt.Println(" with f=0 everyone is done two or three rounds in, whatever t is)")
}

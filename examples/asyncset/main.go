// Asyncset: condition-based ℓ-set agreement with no synchrony at all
// (Section 4).
//
// In an asynchronous shared-memory system with up to x crashes, ℓ-set
// agreement is impossible for ℓ ≤ x on unrestricted inputs — but becomes
// solvable when inputs are drawn from an (x,ℓ)-legal condition. The
// program runs the snapshot-based algorithm on an input inside the
// condition (everyone decides, at most ℓ values), then on an input that
// no condition member can explain (every process is left waiting: the
// impossibility, observed).
package main

import (
	"fmt"
	"log"
	"time"

	"kset"
)

func main() {
	const (
		n, m = 6, 4
		x, l = 2, 2
	)
	cond, err := kset.NewMaxCondition(n, m, x, l)
	if err != nil {
		log.Fatal(err)
	}

	inC := kset.VectorOf(4, 4, 4, 2, 1, 2)
	fmt.Printf("input %v in condition: %v\n", inC, cond.Contains(inC))
	out, err := kset.AgreeAsync(kset.AsyncConfig{
		X:     x,
		Cond:  cond,
		Input: inC,
		Crashes: map[int]kset.CrashPoint{
			5: kset.CrashBeforeWrite, // never writes: its entry stays ⊥
			6: kset.CrashAfterWrite,  // writes, then stops helping
		},
		Seed:     42,
		Patience: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decisions: %v (distinct %v, allowed ℓ=%d)\n", out.Decisions, out.DistinctDecisions(), l)
	fmt.Printf("undecided: %v\n\n", out.Undecided)

	// Now an input no member of a hand-built condition explains: the
	// algorithm must not decide — condition-based termination is
	// conditional, which is exactly the asynchronous impossibility face.
	strict := kset.NewExplicitCondition(4, 4, 1)
	if err := strict.Add(kset.VectorOf(1, 1, 2, 3), kset.SetOf(1)); err != nil {
		log.Fatal(err)
	}
	outside := kset.VectorOf(2, 2, 3, 1)
	fmt.Printf("strict condition {[1 1 2 3]}, input %v\n", outside)
	blocked, err := kset.AgreeAsync(kset.AsyncConfig{
		X:        1,
		Cond:     strict,
		Input:    outside,
		Seed:     7,
		Patience: 300 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decisions: %v\n", blocked.Decisions)
	fmt.Printf("undecided after patience: %v (expected: everyone)\n", blocked.Undecided)
}

// Asyncset: condition-based ℓ-set agreement with no synchrony at all
// (Section 4), run through the Asynchronous executor of a kset.System.
//
// In an asynchronous shared-memory system with up to x crashes, ℓ-set
// agreement is impossible for ℓ ≤ x on unrestricted inputs — but becomes
// solvable when inputs are drawn from an (x,ℓ)-legal condition. The
// program runs the snapshot-based algorithm on an input inside the
// condition (everyone decides, at most ℓ values), then on an input that
// no condition member can explain (every process is left waiting: the
// impossibility, observed).
package main

import (
	"context"
	"fmt"
	"log"

	"kset"
)

func main() {
	const (
		n, m = 6, 4
		x, l = 2, 2
	)
	cond, err := kset.NewMaxCondition(n, m, x, l)
	if err != nil {
		log.Fatal(err)
	}

	// The Asynchronous executor derives its resilience from the params:
	// x = t−d. With t = x and d = 0, k = ℓ = 2.
	sys, err := kset.New(
		kset.WithParams(kset.Params{N: n, T: x, K: l, D: 0, L: l}),
		kset.WithCondition(cond),
		kset.WithExecutor(kset.Asynchronous),
	)
	if err != nil {
		log.Fatal(err)
	}

	inC := kset.VectorOf(4, 4, 4, 2, 1, 2)
	fmt.Printf("input %v in condition: %v\n", inC, cond.Contains(inC))
	res, err := sys.RunScenario(context.Background(), kset.Scenario{
		Input: inC,
		Seed:  42,
		AsyncCrashes: map[int]kset.CrashPoint{
			5: kset.CrashBeforeWrite, // never writes: its entry stays ⊥
			6: kset.CrashAfterWrite,  // writes, then stops helping
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decisions: %v (distinct %v, allowed ℓ=%d)\n",
		res.Decisions, res.DistinctDecisions(), l)
	fmt.Printf("correct processes without a decision: %d\n\n",
		n-len(res.Decisions)-len(res.Crashed))

	// Now an input no member of a hand-built condition explains: the
	// algorithm must not decide — condition-based termination is
	// conditional, which is exactly the asynchronous impossibility face.
	strict, err := kset.NewExplicitCondition(4, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := strict.Add(kset.VectorOf(1, 1, 2, 3), kset.SetOf(1)); err != nil {
		log.Fatal(err)
	}
	blockedSys, err := kset.New(
		kset.WithParams(kset.Params{N: 4, T: 1, K: 1, D: 0, L: 1}),
		kset.WithCondition(strict),
		kset.WithExecutor(kset.Asynchronous),
		kset.WithAsyncBudget(8), // give up quickly: the run is deterministic either way
	)
	if err != nil {
		log.Fatal(err)
	}
	outside := kset.VectorOf(2, 2, 3, 1)
	fmt.Printf("strict condition {[1 1 2 3]}, input %v\n", outside)
	blocked, err := blockedSys.RunScenario(context.Background(), kset.Scenario{
		Input: outside,
		Seed:  7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decisions: %v\n", blocked.Decisions)
	fmt.Printf("undecided after the scan budget: %d of %d (expected: everyone)\n",
		4-len(blocked.Decisions), 4)
}

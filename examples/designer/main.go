// Designer: building a bespoke condition for a known workload.
//
// The max_ℓ conditions are generic, but the framework accepts any
// (x,ℓ)-legal set of input vectors. This example plays the role of a
// systems designer whose workload produces a handful of known input
// patterns (say, the plausible vote distributions of a 5-member config
// service). It encodes them as an explicit condition, uses the legality
// decider to find the largest crash resilience x the set supports, checks
// it with the verifier, and then constructs a System instantiated with it —
// two-round decisions on the curated inputs.
package main

import (
	"context"
	"fmt"
	"log"

	"kset"
)

func main() {
	const (
		n, m = 5, 4
		t, k = 3, 1 // consensus despite 3 crashes
	)

	// The workload's known input patterns (entry i = value proposed by
	// p_{i+1}), each with the value the designer wants decided from it.
	patterns := []struct {
		input   kset.Vector
		decoded kset.Value
	}{
		{kset.VectorOf(1, 1, 1, 1, 1), 1}, // unanimous low
		{kset.VectorOf(1, 1, 1, 1, 2), 1}, // near-unanimous
		{kset.VectorOf(2, 2, 2, 2, 1), 2},
		{kset.VectorOf(3, 3, 3, 3, 3), 3}, // unanimous high
		{kset.VectorOf(3, 3, 3, 4, 4), 3},
	}

	// build assembles the workload condition; every condition constructor
	// reports errors (wrapping kset.ErrBadParams / kset.ErrDomainTooLarge)
	// rather than panicking.
	build := func() *kset.ExplicitCondition {
		c, err := kset.NewExplicitCondition(n, m, 1)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range patterns {
			if err := c.Add(p.input, kset.SetOf(p.decoded)); err != nil {
				log.Fatal(err)
			}
		}
		return c
	}

	// Find the largest x for which this exact set, with this exact
	// decoding, is (x,1)-legal.
	bestX := -1
	for x := 0; x < n; x++ {
		if v := kset.CheckLegal(build(), x, 0); v != nil {
			fmt.Printf("x=%d: not legal (%v)\n", x, v)
			continue
		}
		fmt.Printf("x=%d: legal\n", x)
		bestX = x
	}
	if bestX < 0 {
		log.Fatal("workload set admits no legality at all")
	}
	fmt.Printf("\nthe workload condition is (x,1)-legal up to x=%d\n", bestX)

	// Instantiate the system: x = t−d, so d = t−x.
	d := max(t-bestX, 0)
	p := kset.Params{N: n, T: t, K: k, D: d, L: 1}
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(build()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running with d=%d: RCond=%d vs classical %d rounds\n\n", d, p.RCond(), t/k+1)
	for _, pt := range patterns {
		fp := kset.InitialCrashes(n, 1)
		res, err := sys.Run(context.Background(), pt.input, fp)
		if err != nil {
			log.Fatal(err)
		}
		verdict := kset.Verify(pt.input, fp, res, k)
		if !verdict.OK() {
			log.Fatalf("input %v: %v", pt.input, verdict)
		}
		fmt.Printf("input %v → decided %v at round %d (designed decoding: %v)\n",
			pt.input, verdict.Distinct, verdict.MaxRound, pt.decoded)
	}
	fmt.Println("\noff-workload inputs still terminate within the classical bound;")
	fmt.Println("the condition only accelerates the inputs you designed it for.")
}

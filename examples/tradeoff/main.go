// Tradeoff: the paper's central tension, measured. Sweeping the condition
// degree d for fixed n, t, k: a larger d yields a larger condition (more
// admissible inputs, tabulated by NB) but a later decision round when the
// input is in the condition. This is the Section-5 hierarchy made
// operational: S^0_t[ℓ] ⊂ S^1_t[ℓ] ⊂ … ⊂ S^t_t[ℓ].
//
// Scenario flavor: a telemetry fleet agrees on one alert level (consensus,
// k = 1). Normally most sensors report the same level — exactly the inputs
// a dense condition admits — so provisioning a small d gets two-round
// decisions almost always, while the worst case stays bounded by t+1.
// The adversary used here crashes t−d+1 processes before they speak, which
// forces the algorithm's slow path and makes the measured rounds meet the
// ⌊(d+ℓ−1)/k⌋+1 bound exactly.
//
// The whole grid is declared, not looped: kset.SweepDegrees builds one
// point per degree (parameters, condition and the forcing adversary for
// that d), and kset.RunSweep runs one verified campaign per point and
// returns the keyed stats the table prints.
package main

import (
	"context"
	"fmt"
	"log"

	"kset"
)

func main() {
	const (
		n, m = 9, 4
		t, k = 6, 1
		l    = 1
	)

	// The same heavily-agreeing input is in every condition of the sweep.
	input := kset.VectorOf(4, 4, 4, 4, 4, 4, 4, 2, 1)

	points, err := kset.SweepDegrees(
		kset.Params{N: n, T: t, K: k, L: l}, m,
		func(p kset.Params, cond *kset.MaxCondition) kset.ScenarioSource {
			if !cond.Contains(input) {
				log.Fatalf("d=%d: input unexpectedly outside the condition", p.D)
			}
			// The forcing adversary: more than t−d processes crash before
			// sending anything (capped at t).
			fp := kset.InitialCrashes(n, min(p.X()+1, t))
			return kset.CrossFailures(kset.Inputs(input), fp)
		})
	if err != nil {
		log.Fatal(err)
	}
	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n=%d t=%d k=%d ℓ=%d, input %v\n\n", n, t, k, l, input)
	fmt.Printf("%-6s %-10s %-22s %-10s %-14s\n",
		"d", "x=t−d", "condition size NB", "fraction", "rounds (I∈C)")
	for _, r := range results {
		p := r.Params
		nb, err := kset.ConditionSize(n, m, p.X(), l)
		if err != nil {
			log.Fatal(err)
		}
		frac, err := kset.ConditionFraction(n, m, p.X(), l)
		if err != nil {
			log.Fatal(err)
		}
		if r.Stats.Errors > 0 || r.Stats.Violations > 0 {
			log.Fatalf("%s: %d run error(s), %d specification violation(s)",
				r.Key, r.Stats.Errors, r.Stats.Violations)
		}
		fmt.Printf("%-6s %-10d %-22s %-10.4f %-14d\n",
			r.Key, p.X(), nb.String(), frac, r.Stats.MaxDecisionRound())
	}
	fmt.Println("\nclassical baseline (no condition): every run takes ⌊t/k⌋+1 =",
		t/k+1, "rounds")
	fmt.Println("pick d by how often your workload's inputs fall inside NB's fraction.")
}

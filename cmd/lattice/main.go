// Command lattice verifies and draws the paper's Figure 1 — the inclusion
// lattice of the sets of (x,ℓ)-legal conditions — over a chosen small
// vector domain. With -json it emits the verification facts in the
// structured report encoding every CLI artifact shares (see
// internal/experiments.Report).
//
// Usage:
//
//	lattice [-n 4] [-m 3] [-xmax 2] [-lmax 3] [-json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kset/internal/experiments"
	"kset/internal/lattice"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lattice:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lattice", flag.ContinueOnError)
	n := fs.Int("n", 4, "vector size (number of processes)")
	m := fs.Int("m", 3, "number of proposable values")
	xMax := fs.Int("xmax", 2, "largest x to verify (< n)")
	lMax := fs.Int("lmax", 3, "largest ℓ to verify")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	facts, err := lattice.VerifyFigure1(*n, *m, *xMax, *lMax)
	if err != nil {
		return err
	}
	r := experiments.Report{
		ID:     "lattice",
		Title:  "Figure 1 — the lattice of (x,ℓ)-legal condition sets",
		Paper:  "§3, Theorems 4–9",
		Params: experiments.Params{"n": *n, "m": *m, "xmax": *xMax, "lmax": *lMax},
		OK:     true,
	}
	r.Section("diagram").NoteBlock(lattice.Render(facts))
	cells := r.Section("cells")
	tbl := cells.AddTable("cell", "verified", "skipped")
	bad := 0
	for _, f := range facts {
		if !f.Verified() {
			bad++
			r.OK = false
		}
		tbl.Row(fmt.Sprintf("(%d,%d)", f.X, f.L), fmt.Sprintf("%v", f.Verified()),
			strings.Join(f.Skipped, "; "))
	}
	cells.Note("%d/%d cells verified (Theorems 4–9)", len(facts)-bad, len(facts))

	if *asJSON {
		if err := experiments.WriteJSON(stdout, r); err != nil {
			return err
		}
	} else {
		fmt.Fprint(stdout, r)
	}
	if bad > 0 {
		return fmt.Errorf("%d cell(s) failed verification", bad)
	}
	return nil
}

// Command lattice verifies and draws the paper's Figure 1 — the inclusion
// lattice of the sets of (x,ℓ)-legal conditions — over a chosen small
// vector domain.
//
// Usage:
//
//	lattice [-n 4] [-m 3] [-xmax 2] [-lmax 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"kset/internal/lattice"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lattice:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lattice", flag.ContinueOnError)
	n := fs.Int("n", 4, "vector size (number of processes)")
	m := fs.Int("m", 3, "number of proposable values")
	xMax := fs.Int("xmax", 2, "largest x to verify (< n)")
	lMax := fs.Int("lmax", 3, "largest ℓ to verify")
	if err := fs.Parse(args); err != nil {
		return err
	}

	facts, err := lattice.VerifyFigure1(*n, *m, *xMax, *lMax)
	if err != nil {
		return err
	}
	fmt.Print(lattice.Render(facts))
	bad := 0
	for _, f := range facts {
		if !f.Verified() {
			bad++
			fmt.Printf("cell (x=%d,ℓ=%d) FAILED: %+v\n", f.X, f.L, f)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d cell(s) failed verification", bad)
	}
	fmt.Printf("all %d cells verified (Theorems 4–9)\n", len(facts))
	return nil
}

// Command agreement runs one synchronous k-set agreement execution — the
// paper's Figure-2 condition-based algorithm, its early-deciding variant,
// or the classical baseline — under a chosen failure scenario, and prints
// the per-process decisions, rounds and specification verdict.
//
// It is a thin CLI over the kset.System handle: the flags become
// construction options, one kset.System is built, and a single Run
// executes the scenario.
//
// Usage:
//
//	agreement -n 8 -t 5 -k 2 -d 3 -l 1 -m 4 \
//	          -input 4,4,4,2,1,2,3,1 \
//	          [-variant cond|early|classical] \
//	          [-crash "6@1:2,7@2:0"]   // p6 crashes in round 1 after 2 sends, …
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"kset"
	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/vector"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agreement:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agreement", flag.ContinueOnError)
	n := fs.Int("n", 8, "number of processes")
	t := fs.Int("t", 5, "maximum crashes tolerated")
	k := fs.Int("k", 2, "agreement degree (distinct decided values allowed)")
	d := fs.Int("d", 3, "condition degree (condition is (t−d,ℓ)-legal)")
	l := fs.Int("l", 1, "ℓ of the condition")
	m := fs.Int("m", 4, "number of proposable values")
	inputFlag := fs.String("input", "", "comma-separated proposals, one per process")
	variant := fs.String("variant", "cond", "algorithm: cond, early or classical")
	crashFlag := fs.String("crash", "", "crash spec id@round:sends[,...]")
	trace := fs.Bool("trace", false, "print the round-by-round execution trace")
	if err := fs.Parse(args); err != nil {
		return err
	}

	input, err := parseInput(*inputFlag, *n)
	if err != nil {
		return err
	}
	fp, err := parseCrashes(*crashFlag)
	if err != nil {
		return err
	}

	p := kset.Params{N: *n, T: *t, K: *k, D: *d, L: *l}
	opts := []kset.Option{kset.WithParams(p), kset.WithProcessGoroutines()}
	var exec kset.Executor
	switch *variant {
	case "cond", "early":
		cond, err := kset.NewMaxCondition(*n, *m, p.X(), *l)
		if err != nil {
			return err
		}
		inC := cond.Contains(input)
		fmt.Printf("condition: max_%d-generated (x=%d,ℓ=%d)-legal; input ∈ C: %v\n", *l, p.X(), *l, inC)
		fmt.Printf("bounds: RCond=%d RMax=%d predicted=%d\n", p.RCond(), p.RMax(), core.PredictRounds(p, inC, fp))
		exec = kset.Figure2
		if *variant == "early" {
			exec = kset.EarlyDeciding
		}
		opts = append(opts, kset.WithCondition(cond))
	case "classical":
		exec = kset.Classical
		fmt.Printf("classical baseline: decides at round ⌊t/k⌋+1 = %d\n", *t / *k + 1)
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}
	opts = append(opts, kset.WithExecutor(exec))

	sys, err := kset.New(opts...)
	if err != nil {
		return err
	}

	var res *kset.Result
	if *trace {
		// The trace path drives the engine directly (deterministic in-line
		// executor, trace hooks) — the one workflow the System does not
		// cover.
		res, err = runTraced(p, *variant, *n, *t, *k, *m, input, fp)
	} else {
		res, err = sys.Run(context.Background(), input, fp)
	}
	if err != nil {
		return err
	}

	ids := make([]int, 0, *n)
	for id := 1; id <= *n; id++ {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Printf("\n%-5s %-10s %-10s %-8s\n", "proc", "proposed", "decided", "round")
	for _, id := range ids {
		pid := rounds.ProcessID(id)
		decided, ok := res.Decisions[pid]
		switch {
		case res.Crashed[pid] && !ok:
			fmt.Printf("p%-4d %-10v %-10s %-8s\n", id, input[id-1], "crashed", "-")
		case ok:
			fmt.Printf("p%-4d %-10v %-10v %-8d\n", id, input[id-1], decided, res.DecisionRound[pid])
		default:
			fmt.Printf("p%-4d %-10v %-10s %-8s\n", id, input[id-1], "none", "-")
		}
	}
	verdict := kset.Verify(input, fp, res, *k)
	fmt.Printf("\nverdict: %v\nmessages delivered: %d\n", verdict, res.MessagesDelivered)
	if !verdict.OK() {
		return fmt.Errorf("specification violated")
	}
	return nil
}

// runTraced executes the run on the deterministic in-line executor with
// trace capture and renders the trace.
func runTraced(p kset.Params, variant string, n, t, k, m int, input kset.Vector, fp kset.FailurePattern) (*kset.Result, error) {
	var procs []rounds.Process
	var err error
	maxRounds := p.RMax()
	switch variant {
	case "cond", "early":
		c, cerr := condition.NewMax(n, m, p.X(), p.L)
		if cerr != nil {
			return nil, cerr
		}
		if variant == "early" {
			procs, err = core.NewEarlyRun(p, c, input)
		} else {
			procs, err = core.NewRun(p, c, input)
		}
	case "classical":
		maxRounds = t/k + 1
		procs, err = core.NewClassicalRun(n, t, k, input)
	}
	if err != nil {
		return nil, err
	}
	opts := rounds.Options{MaxRounds: maxRounds, Trace: &rounds.Trace{}}
	res, err := rounds.Run(procs, fp, opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("\n%s", opts.Trace.Render())
	return res, nil
}

func parseInput(s string, n int) (vector.Vector, error) {
	if s == "" {
		// Default: a vector dense in its top value, so it belongs to
		// reasonable conditions.
		v := vector.New(n)
		for i := range v {
			if i < (n+1)/2 {
				v[i] = 4
			} else {
				v[i] = vector.Value(1 + i%3)
			}
		}
		return v, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("input has %d values, want n=%d", len(parts), n)
	}
	v := vector.New(n)
	for i, part := range parts {
		x, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || x < 1 {
			return nil, fmt.Errorf("bad proposal %q", part)
		}
		v[i] = vector.Value(x)
	}
	return v, nil
}

func parseCrashes(s string) (rounds.FailurePattern, error) {
	fp := rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{}}
	if s == "" {
		return fp, nil
	}
	for _, spec := range strings.Split(s, ",") {
		var id, round, sends int
		if _, err := fmt.Sscanf(strings.TrimSpace(spec), "%d@%d:%d", &id, &round, &sends); err != nil {
			return fp, fmt.Errorf("bad crash spec %q (want id@round:sends): %v", spec, err)
		}
		fp.Crashes[rounds.ProcessID(id)] = rounds.Crash{Round: round, AfterSends: sends}
	}
	return fp, nil
}

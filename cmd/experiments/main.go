// Command experiments regenerates every evaluation artifact of the paper
// (E1–E10 of DESIGN.md) and prints the verification reports recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"

	"kset/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "run a single experiment (E1..E10)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	failed := 0
	for _, r := range experiments.All() {
		if *only != "" && r.ID != *only {
			continue
		}
		fmt.Println(r)
		fmt.Println()
		if !r.OK {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed verification", failed)
	}
	return nil
}

// Command experiments drives the declarative experiment registry: every
// evaluation artifact of the paper (E1–E11) is a registered spec executed
// on the Campaign/Sweep/Exhaust infrastructure, producing a structured
// report rendered as text or JSON. JSON reports are byte-deterministic
// for a fixed registry, so CI diffs them structurally (see the golden
// test next to this file).
//
// With -campaign it instead drives the high-throughput entry point — one
// kset.System fed by a generated scenario stream — across seeded random
// inputs × a seeded failure-pattern family × all three synchronous
// executors, and reports the campaign's results-plane accumulator
// (decision-round histogram, per-executor breakdown, condition-hit rate,
// violation count) in the same report encoding.
//
// Usage:
//
//	experiments [-json] [-only E4[,E5,...]]
//	experiments -list [-json]
//	experiments -campaign [-json] [-runs 30000] [-seed 1] [-workers 8]
//	experiments -campaign -shard 0/4 [-json] ...
//
// With -shard i/K the campaign runs only shard i of the deterministic
// K-way split of the same scenario stream: K processes, one per shard
// index, cover the sweep exactly once between them, and their JSON
// reports' metrics fold back into the single-process result via ksetd's
// POST /v1/merge (or any client that merges accumulators).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"kset"
	"kset/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "run a comma-separated subset (E1..E11)")
	list := fs.Bool("list", false, "list the registered experiments instead of running them")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	campaign := fs.Bool("campaign", false, "run the campaign load sweep instead of E1..E11")
	runs := fs.Int("runs", 30000, "campaign: number of scenarios")
	seed := fs.Int64("seed", 1, "campaign: random seed (same seed ⇒ same stats)")
	workers := fs.Int("workers", 0, "campaign: worker count (0 = GOMAXPROCS)")
	shardSpec := fs.String("shard", "", "campaign: run shard i of a K-way split, as i/K (e.g. 0/4)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *list:
		return runList(stdout, *asJSON)
	case *campaign:
		return runCampaign(stdout, *asJSON, *runs, *seed, *workers, *shardSpec)
	}

	var ids []string
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	reports, err := experiments.Run(ids)
	if err != nil {
		return err
	}
	if *asJSON {
		if err := experiments.WriteJSON(stdout, reports); err != nil {
			return err
		}
	} else {
		for _, r := range reports {
			fmt.Fprintln(stdout, r)
			fmt.Fprintln(stdout)
		}
	}
	failed := 0
	for _, r := range reports {
		if !r.OK {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed verification", failed)
	}
	return nil
}

// parseShard parses the -shard flag's i/K form. Empty means unsharded
// (k = 0); otherwise both halves must be integers with 0 ≤ i < K.
func parseShard(spec string) (i, k int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	is, ks, ok := strings.Cut(spec, "/")
	if ok {
		if i, err = strconv.Atoi(strings.TrimSpace(is)); err == nil {
			k, err = strconv.Atoi(strings.TrimSpace(ks))
		}
	}
	if !ok || err != nil || k < 1 || i < 0 || i >= k {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/K with 0 <= i < K", spec)
	}
	return i, k, nil
}

// runList prints the experiment registry: IDs, paper anchors, titles and
// default parameters.
func runList(stdout io.Writer, asJSON bool) error {
	specs := experiments.Registry()
	if asJSON {
		return experiments.WriteJSON(stdout, specs)
	}
	for _, s := range specs {
		fmt.Fprintf(stdout, "%-4s %-22s %s\n", s.ID, s.Paper, s.Title)
		if len(s.Defaults) > 0 {
			raw, err := json.Marshal(s.Defaults)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "     defaults: %s\n", raw)
		}
	}
	return nil
}

// runCampaign streams a generated scenario sweep — seeded random inputs ×
// a seeded failure-pattern family × the three synchronous executors —
// through one verified campaign and reports the results-plane
// accumulator. The structured cross product factors the requested run
// budget into inputs × patterns × executors, so the sweep covers every
// combination rather than one random pairing per run.
func runCampaign(stdout io.Writer, asJSON bool, runs int, seed int64, workers int, shardSpec string) error {
	p := kset.Params{N: 8, T: 5, K: 2, D: 3, L: 1}
	const m = 4
	cond, err := kset.NewMaxCondition(p.N, m, p.X(), p.L)
	if err != nil {
		return err
	}
	opts := []kset.Option{kset.WithParams(p), kset.WithCondition(cond)}
	if workers > 0 {
		opts = append(opts, kset.WithWorkers(workers))
	}
	sys, err := kset.New(opts...)
	if err != nil {
		return err
	}

	execs := []kset.Executor{kset.Figure2, kset.EarlyDeciding, kset.Classical}
	const patterns = 10
	inputs := (runs + patterns*len(execs) - 1) / (patterns * len(execs))
	src := kset.CrossExecutors(
		kset.FailureSchedules(
			kset.RandomInputs(seed, p.N, m, inputs),
			kset.RandomCrashFamily(seed+1, p.N, p.T, p.RMax(), patterns),
		),
		execs...,
	)
	total, _ := src.Size()

	shardIdx, shardK, err := parseShard(shardSpec)
	if err != nil {
		return err
	}
	if shardK > 0 {
		src, err = kset.ShardSource(src, shardIdx, shardK)
		if err != nil {
			return err
		}
	}

	stats, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
	if err != nil {
		return err
	}

	params := experiments.Params{
		"n": p.N, "t": p.T, "k": p.K, "d": p.D, "l": p.L, "m": m,
		"inputs": inputs, "patterns": patterns, "executors": len(execs),
		"scenarios": int(total), "seed": int(seed),
	}
	if shardK > 0 {
		params["shard"] = shardIdx
		params["shards"] = shardK
	}
	// Embed the raw accumulator so the JSON report is a mergeable shard:
	// ksetd's POST /v1/merge folds campaign reports by their "metrics"
	// field, letting K sharded runs reconstruct the unsharded stats.
	metrics, err := json.Marshal(stats.Metrics)
	if err != nil {
		return err
	}
	r := experiments.Report{
		ID:      "campaign",
		Title:   "generated load sweep: random inputs × crash patterns × executors",
		Paper:   "§6.2",
		OK:      stats.Violations == 0 && stats.Errors == 0,
		Params:  params,
		Metrics: metrics,
	}
	acc := stats.Metrics

	totals := r.Section("totals")
	tbl := totals.AddTable("metric", "value")
	tbl.Row("runs", fmt.Sprint(stats.Runs))
	tbl.Row("errors", fmt.Sprint(stats.Errors))
	tbl.Row("condition-hit rate", fmt.Sprintf("%.4f (%d runs)", stats.HitRate(), stats.ConditionHits))
	tbl.Row("spec violations", fmt.Sprint(stats.Violations))
	tbl.Row("messages delivered", fmt.Sprint(stats.MessagesDelivered))
	tbl.Row("mean decision round", fmt.Sprintf("%.3f", stats.MeanDecisionRound()))
	tbl.Row("max decision round", fmt.Sprint(stats.MaxDecisionRound()))

	hist := r.Section("decision-rounds")
	hist.Note("histogram of latest decision rounds (0 = nobody decided)")
	htbl := hist.AddTable("round", "runs")
	for round, count := range stats.DecisionRounds {
		htbl.Row(fmt.Sprint(round), fmt.Sprint(count))
	}

	byExec := r.Section("by-executor")
	etbl := byExec.AddTable("executor", "runs", "mean round", "max round", "messages")
	for _, name := range acc.ExecutorKeys() {
		g := acc.ByExecutor[name]
		etbl.Row(name, fmt.Sprint(g.Runs), fmt.Sprintf("%.3f", g.Rounds.Mean()),
			fmt.Sprint(g.Rounds.Max), fmt.Sprint(g.Messages))
	}

	byCrash := r.Section("by-crashes")
	ctbl := byCrash.AddTable("crashes", "runs", "mean round", "max round")
	for _, f := range acc.CrashKeys() {
		g := acc.ByCrashes[f]
		ctbl.Row(fmt.Sprint(f), fmt.Sprint(g.Runs), fmt.Sprintf("%.3f", g.Rounds.Mean()),
			fmt.Sprint(g.Rounds.Max))
	}

	if asJSON {
		if err := experiments.WriteJSON(stdout, r); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(stdout, r)
	}
	// The exit code must agree with the report's ok field: violations and
	// run errors both fail the process, so shell gates and the archived
	// JSON artifact cannot disagree.
	if stats.Violations > 0 {
		return fmt.Errorf("%d specification violation(s)", stats.Violations)
	}
	if stats.Errors > 0 {
		return fmt.Errorf("%d run error(s)", stats.Errors)
	}
	return nil
}

// Command experiments regenerates every evaluation artifact of the paper
// (E1–E10 of DESIGN.md) and prints the verification reports recorded in
// EXPERIMENTS.md.
//
// With -campaign it instead drives the high-throughput entry point — one
// kset.System fed by a generated scenario stream — across seeded random
// inputs × a seeded failure-pattern family × all three synchronous
// executors, and prints the aggregate CampaignStats (decision-round
// histogram, condition-hit rate, violation count). The stream is built
// declaratively from the generator subsystem (RandomInputs crossed with
// RandomCrashFamily and the executors) and fed to System.RunSource, so
// nothing is materialized: this is the load-harness face of the library,
// the same sweep a production soak test would run, with every execution
// verified against the k-set agreement specification.
//
// Usage:
//
//	experiments [-only E4]
//	experiments -campaign [-runs 30000] [-seed 1] [-workers 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"kset"
	"kset/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "run a single experiment (E1..E10)")
	campaign := fs.Bool("campaign", false, "run the campaign load sweep instead of E1..E10")
	runs := fs.Int("runs", 30000, "campaign: number of scenarios")
	seed := fs.Int64("seed", 1, "campaign: random seed (same seed ⇒ same stats)")
	workers := fs.Int("workers", 0, "campaign: worker count (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *campaign {
		return runCampaign(*runs, *seed, *workers)
	}

	failed := 0
	for _, r := range experiments.All() {
		if *only != "" && r.ID != *only {
			continue
		}
		fmt.Println(r)
		fmt.Println()
		if !r.OK {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed verification", failed)
	}
	return nil
}

// runCampaign streams a generated scenario sweep — seeded random inputs ×
// a seeded failure-pattern family × the three synchronous executors —
// through one verified campaign and prints the stats. The structured
// cross product replaces the old hand-rolled scenario loop: the requested
// run budget is factored into inputs × patterns × executors, so the sweep
// covers every combination rather than one random pairing per run.
func runCampaign(runs int, seed int64, workers int) error {
	p := kset.Params{N: 8, T: 5, K: 2, D: 3, L: 1}
	const m = 4
	cond, err := kset.NewMaxCondition(p.N, m, p.X(), p.L)
	if err != nil {
		return err
	}
	opts := []kset.Option{kset.WithParams(p), kset.WithCondition(cond)}
	if workers > 0 {
		opts = append(opts, kset.WithWorkers(workers))
	}
	sys, err := kset.New(opts...)
	if err != nil {
		return err
	}

	execs := []kset.Executor{kset.Figure2, kset.EarlyDeciding, kset.Classical}
	const patterns = 10
	inputs := (runs + patterns*len(execs) - 1) / (patterns * len(execs))
	src := kset.CrossExecutors(
		kset.FailureSchedules(
			kset.RandomInputs(seed, p.N, m, inputs),
			kset.RandomCrashFamily(seed+1, p.N, p.T, p.RMax(), patterns),
		),
		execs...,
	)

	stats, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
	if err != nil {
		return err
	}

	total, _ := src.Size()
	fmt.Printf("campaign: n=%d t=%d k=%d d=%d ℓ=%d m=%d, %d inputs × %d patterns × %d executors = %d scenarios, seed %d\n\n",
		p.N, p.T, p.K, p.D, p.L, m, inputs, patterns, len(execs), total, seed)
	fmt.Printf("%-24s %d\n", "runs", stats.Runs)
	fmt.Printf("%-24s %d\n", "errors", stats.Errors)
	fmt.Printf("%-24s %.4f (%d runs)\n", "condition-hit rate", stats.HitRate(), stats.ConditionHits)
	fmt.Printf("%-24s %d\n", "spec violations", stats.Violations)
	fmt.Printf("%-24s %d\n", "messages delivered", stats.MessagesDelivered)
	fmt.Printf("%-24s %.3f\n", "mean decision round", stats.MeanDecisionRound())
	fmt.Println("\ndecision-round histogram (0 = nobody decided):")
	for r, c := range stats.DecisionRounds {
		fmt.Printf("  round %-2d %8d\n", r, c)
	}
	if stats.Violations > 0 {
		return fmt.Errorf("%d specification violation(s)", stats.Violations)
	}
	return nil
}

package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from this run")

// deterministicIDs are the experiments whose JSON reports are
// byte-deterministic run to run: everything synchronous. E10 drives real
// goroutine concurrency (the asynchronous algorithm), so its decided
// values may vary with scheduling and it stays out of byte comparisons.
const deterministicIDs = "E1,E2,E3,E4,E5,E6,E7,E8,E9,E11"

// runJSON executes the command's run() with -json over the deterministic
// experiment set and returns the bytes it printed.
func runJSON(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run([]string{"-json", "-only", deterministicIDs}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenJSON locks the structured report encoding: the JSON emitted
// for the deterministic experiments must match the checked-in golden
// file byte for byte. Regenerate with:
//
//	go test ./cmd/experiments -run TestGoldenJSON -update
func TestGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	got := runJSON(t)
	golden := filepath.Join("testdata", "experiments.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON reports diverged from %s (%d vs %d bytes);\n"+
			"if the change is intentional, regenerate with -update", golden, len(got), len(want))
	}
}

// TestJSONDeterministic is the experiments-json-run-twice comparison:
// two in-process runs over the same registry must emit identical bytes —
// the property that makes reports machine-diffable at all.
func TestJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	first := runJSON(t)
	second := runJSON(t)
	if !bytes.Equal(first, second) {
		t.Error("two runs of experiments -json produced different bytes")
	}
}

// TestListAndCampaignSmoke exercises the remaining CLI modes end to end.
func TestListAndCampaignSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("-list: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("E10")) {
		t.Errorf("-list output lacks E10:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-campaign", "-json", "-runs", "300", "-workers", "2"}, &buf); err != nil {
		t.Fatalf("-campaign: %v", err)
	}
	for _, want := range []string{`"id": "campaign"`, `"by-executor"`, `"decision-rounds"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("campaign JSON lacks %s", want)
		}
	}
	if err := run([]string{"-only", "E99"}, &buf); err == nil {
		t.Error("unknown -only id must error")
	}
}

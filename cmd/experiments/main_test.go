package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"kset"
)

var update = flag.Bool("update", false, "rewrite the golden file from this run")

// deterministicIDs are the experiments whose JSON reports are
// byte-deterministic run to run: everything synchronous. E10 drives real
// goroutine concurrency (the asynchronous algorithm), so its decided
// values may vary with scheduling and it stays out of byte comparisons.
const deterministicIDs = "E1,E2,E3,E4,E5,E6,E7,E8,E9,E11"

// runJSON executes the command's run() with -json over the deterministic
// experiment set and returns the bytes it printed.
func runJSON(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run([]string{"-json", "-only", deterministicIDs}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenJSON locks the structured report encoding: the JSON emitted
// for the deterministic experiments must match the checked-in golden
// file byte for byte. Regenerate with:
//
//	go test ./cmd/experiments -run TestGoldenJSON -update
func TestGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	got := runJSON(t)
	golden := filepath.Join("testdata", "experiments.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON reports diverged from %s (%d vs %d bytes);\n"+
			"if the change is intentional, regenerate with -update", golden, len(got), len(want))
	}
}

// TestJSONDeterministic is the experiments-json-run-twice comparison:
// two in-process runs over the same registry must emit identical bytes —
// the property that makes reports machine-diffable at all.
func TestJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	first := runJSON(t)
	second := runJSON(t)
	if !bytes.Equal(first, second) {
		t.Error("two runs of experiments -json produced different bytes")
	}
}

// TestListAndCampaignSmoke exercises the remaining CLI modes end to end.
func TestListAndCampaignSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("-list: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("E10")) {
		t.Errorf("-list output lacks E10:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-campaign", "-json", "-runs", "300", "-workers", "2"}, &buf); err != nil {
		t.Fatalf("-campaign: %v", err)
	}
	for _, want := range []string{`"id": "campaign"`, `"by-executor"`, `"decision-rounds"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("campaign JSON lacks %s", want)
		}
	}
	if err := run([]string{"-only", "E99"}, &buf); err == nil {
		t.Error("unknown -only id must error")
	}
}

// TestParseShard pins the -shard flag's grammar.
func TestParseShard(t *testing.T) {
	if i, k, err := parseShard(""); err != nil || i != 0 || k != 0 {
		t.Fatalf("empty spec = (%d, %d, %v), want unsharded", i, k, err)
	}
	if i, k, err := parseShard("2/5"); err != nil || i != 2 || k != 5 {
		t.Fatalf("2/5 = (%d, %d, %v)", i, k, err)
	}
	for _, bad := range []string{"3", "a/b", "1/", "/4", "-1/4", "4/4", "5/4", "1/0", "1/-2"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) accepted", bad)
		}
	}
}

// TestCampaignShardsPartitionRuns runs the campaign split -shard i/3 and
// checks the shards cover the unsharded sweep exactly: per-shard run
// counts sum to the full count, and each shard's report is itself
// deterministic run to run.
func TestCampaignShardsPartitionRuns(t *testing.T) {
	type report struct {
		Params struct {
			Scenarios int64 `json:"scenarios"`
			Shard     int   `json:"shard"`
			Shards    int   `json:"shards"`
		} `json:"params"`
		Sections []struct {
			Name  string `json:"name"`
			Table struct {
				Rows [][]string `json:"rows"`
			} `json:"table"`
		} `json:"sections"`
	}
	runsOf := func(t *testing.T, raw []byte) int64 {
		t.Helper()
		var r report
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatalf("decode report: %v\n%s", err, raw)
		}
		for _, sec := range r.Sections {
			if sec.Name != "totals" {
				continue
			}
			for _, row := range sec.Table.Rows {
				if row[0] == "runs" {
					n, err := strconv.ParseInt(row[1], 10, 64)
					if err != nil {
						t.Fatal(err)
					}
					return n
				}
			}
		}
		t.Fatalf("no runs row in report:\n%s", raw)
		return 0
	}

	var buf bytes.Buffer
	args := []string{"-campaign", "-json", "-runs", "120", "-workers", "2"}
	if err := run(args, &buf); err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	total := runsOf(t, buf.Bytes())

	var sum int64
	for i := 0; i < 3; i++ {
		spec := fmt.Sprintf("%d/3", i)
		var first, second bytes.Buffer
		if err := run(append(args, "-shard", spec), &first); err != nil {
			t.Fatalf("shard %s: %v", spec, err)
		}
		if err := run(append(args, "-shard", spec), &second); err != nil {
			t.Fatalf("shard %s rerun: %v", spec, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("shard %s report not deterministic across runs", spec)
		}
		sum += runsOf(t, first.Bytes())
	}
	if sum != total {
		t.Fatalf("shard runs sum to %d, unsharded ran %d", sum, total)
	}
	if err := run([]string{"-campaign", "-shard", "9/4"}, &buf); err == nil {
		t.Error("-shard 9/4 must error")
	}
}

// TestCampaignReportMetricsFold pins the cross-process merge story end to
// end at the CLI layer: each sharded campaign report embeds its raw
// accumulator under "metrics" (the field ksetd's POST /v1/merge folds
// by), and merging the K shard accumulators reproduces the unsharded
// report's metrics byte for byte.
func TestCampaignReportMetricsFold(t *testing.T) {
	metricsOf := func(t *testing.T, raw []byte) json.RawMessage {
		t.Helper()
		var r struct {
			Metrics json.RawMessage `json:"metrics"`
		}
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatalf("decode report: %v", err)
		}
		if len(r.Metrics) == 0 {
			t.Fatalf("report carries no metrics field:\n%s", raw)
		}
		// The report writer indents, so compact before byte comparisons.
		var compact bytes.Buffer
		if err := json.Compact(&compact, r.Metrics); err != nil {
			t.Fatal(err)
		}
		return compact.Bytes()
	}

	args := []string{"-campaign", "-json", "-runs", "120", "-workers", "2"}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	want := metricsOf(t, buf.Bytes())

	merged := &kset.Accumulator{}
	for i := 0; i < 3; i++ {
		buf.Reset()
		if err := run(append(args, "-shard", fmt.Sprintf("%d/3", i)), &buf); err != nil {
			t.Fatalf("shard %d/3: %v", i, err)
		}
		acc := &kset.Accumulator{}
		if err := json.Unmarshal(metricsOf(t, buf.Bytes()), acc); err != nil {
			t.Fatalf("shard %d metrics decode: %v", i, err)
		}
		merged.Merge(acc)
	}
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte(want)) {
		t.Fatalf("merged shard metrics differ from unsharded metrics\n%s\nvs\n%s", got, want)
	}
}

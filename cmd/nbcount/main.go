// Command nbcount prints the condition-size tables NB(x,ℓ) of Theorems 3
// and 13: how many input vectors the max_ℓ-generated (x,ℓ)-legal condition
// admits, and which fraction of all m^n vectors that is. With -json it
// emits the same table in the structured report encoding every CLI
// artifact shares (see internal/experiments.Report), so consumers can
// diff runs structurally.
//
// Usage:
//
//	nbcount [-n 10] [-m 5] [-lmax 3] [-check] [-json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kset"
	"kset/internal/count"
	"kset/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nbcount:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nbcount", flag.ContinueOnError)
	n := fs.Int("n", 10, "vector size (number of processes)")
	m := fs.Int("m", 5, "number of proposable values")
	lMax := fs.Int("lmax", 3, "largest ℓ to tabulate")
	check := fs.Bool("check", false, "cross-check against brute force (slow; small n,m only)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := experiments.Report{
		ID:     "nbcount",
		Title:  fmt.Sprintf("NB(x,ℓ) over {1..%d}^%d — size of the max_ℓ-generated (x,ℓ)-legal condition", *m, *n),
		Paper:  "§5, §7, Theorems 3/13",
		Params: experiments.Params{"n": *n, "m": *m, "lmax": *lMax},
		OK:     true,
	}
	sizes := r.Section("sizes")
	cols := []string{"x"}
	for l := 1; l <= *lMax; l++ {
		cols = append(cols, fmt.Sprintf("NB(ℓ=%d)", l), fmt.Sprintf("frac(ℓ=%d)", l))
	}
	tbl := sizes.AddTable(cols...)
	for x := 0; x < *n; x++ {
		row := []string{fmt.Sprint(x)}
		for l := 1; l <= *lMax; l++ {
			nb, err := kset.ConditionSize(*n, *m, x, l)
			if err != nil {
				return err
			}
			f, err := kset.ConditionFraction(*n, *m, x, l)
			if err != nil {
				return err
			}
			if *check {
				if bf := count.BruteForce(*n, *m, x, l); nb.Int64() != bf {
					return fmt.Errorf("mismatch at x=%d ℓ=%d: formula %s, brute force %d", x, l, nb, bf)
				}
			}
			row = append(row, nb.String(), fmt.Sprintf("%.3f", f))
		}
		tbl.Row(row...)
	}
	if *check {
		sizes.Note("brute-force cross-check passed for every cell")
	}

	if *asJSON {
		return experiments.WriteJSON(stdout, r)
	}
	fmt.Fprint(stdout, r)
	return nil
}

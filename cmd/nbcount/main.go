// Command nbcount prints the condition-size tables NB(x,ℓ) of Theorems 3
// and 13: how many input vectors the max_ℓ-generated (x,ℓ)-legal condition
// admits, and which fraction of all m^n vectors that is.
//
// Usage:
//
//	nbcount [-n 10] [-m 5] [-lmax 3] [-check]
package main

import (
	"flag"
	"fmt"
	"os"

	"kset"
	"kset/internal/count"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nbcount:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nbcount", flag.ContinueOnError)
	n := fs.Int("n", 10, "vector size (number of processes)")
	m := fs.Int("m", 5, "number of proposable values")
	lMax := fs.Int("lmax", 3, "largest ℓ to tabulate")
	check := fs.Bool("check", false, "cross-check against brute force (slow; small n,m only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("NB(x,ℓ) over {1..%d}^%d — size of the max_ℓ-generated (x,ℓ)-legal condition\n\n", *m, *n)
	fmt.Printf("%-5s", "x")
	for l := 1; l <= *lMax; l++ {
		fmt.Printf(" %24s", fmt.Sprintf("ℓ=%d (fraction)", l))
	}
	fmt.Println()
	for x := 0; x < *n; x++ {
		fmt.Printf("%-5d", x)
		for l := 1; l <= *lMax; l++ {
			nb, err := kset.ConditionSize(*n, *m, x, l)
			if err != nil {
				return err
			}
			f, err := kset.ConditionFraction(*n, *m, x, l)
			if err != nil {
				return err
			}
			fmt.Printf(" %16s (%5.3f)", nb.String(), f)
			if *check {
				if bf := count.BruteForce(*n, *m, x, l); nb.Int64() != bf {
					return fmt.Errorf("mismatch at x=%d ℓ=%d: formula %s, brute force %d", x, l, nb, bf)
				}
			}
		}
		fmt.Println()
	}
	if *check {
		fmt.Println("\nbrute-force cross-check passed for every cell")
	}
	return nil
}

// Command ksetpeer runs ONE process of a synchronous condition-based
// k-set agreement instance as its own OS process, exchanging round
// payloads with its peers over UDP datagrams. Start n of them — one per
// process ID, each knowing the full peer address table — and every peer
// that survives prints its decision as one JSON object on stdout.
//
// Unlike the in-process engine (which simulates crashes), a ksetpeer
// fleet faces real failures: kill a peer mid-round and the survivors
// suspect it at the round deadline, fold it into the crash accounting,
// and still terminate — decided when the condition's guarantees hold,
// explicitly undecided otherwise, never hung.
//
// A 3-process instance on loopback:
//
//	ksetpeer -id 1 -peers 127.0.0.1:9101,127.0.0.1:9102,127.0.0.1:9103 \
//	         -input 3,1,2 -t 1 -k 1 -m 4 &
//	ksetpeer -id 2 -peers ... -input 3,1,2 -t 1 -k 1 -m 4 &
//	ksetpeer -id 3 -peers ... -input 3,1,2 -t 1 -k 1 -m 4
//
// Every peer is started with the same parameters and the same full input
// vector (entry i is peer i's proposal) — ksetpeer is an experiment
// driver for the paper's protocol, not a deployment artifact, and the
// shared vector is what lets a harness check the peers' decisions
// against the in-process engine bit for bit.
//
// Output is a single JSON object:
//
//	{"id":2,"decided":true,"value":3,"round":2,"suspected":[],
//	 "frames_sent":28,"frames_received":25,"retransmits":0}
//
// Exit status is 0 when the run terminates (decided or not), 1 on
// configuration or network errors. -v logs per-round progress markers to
// stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/vector"
	"kset/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ksetpeer:", err)
		os.Exit(1)
	}
}

// report is the JSON object a peer prints on termination.
type report struct {
	ID        int     `json:"id"`
	Decided   bool    `json:"decided"`
	Value     int     `json:"value"`
	Round     int     `json:"round"`
	Suspected []int   `json:"suspected"`
	Sent      int64   `json:"frames_sent"`
	Received  int64   `json:"frames_received"`
	Retrans   int64   `json:"retransmits"`
	Elapsed   float64 `json:"elapsed_seconds"`
}

// run parses flags, runs this peer's protocol instance to termination
// and prints the report.
func run(argv []string, out *os.File) error {
	fs := flag.NewFlagSet("ksetpeer", flag.ContinueOnError)
	var (
		id         = fs.Int("id", 0, "this peer's process ID, 1..n")
		peersFlag  = fs.String("peers", "", "comma-separated host:port for processes 1..n; entry id is this peer's bind address")
		inputFlag  = fs.String("input", "", "comma-separated full input vector (entry i proposed by process i)")
		t          = fs.Int("t", 1, "crash resilience t")
		k          = fs.Int("k", 1, "agreement degree k")
		d          = fs.Int("d", 0, "condition degree d (x = t-d)")
		l          = fs.Int("l", 0, "legality slack l (0 means k)")
		m          = fs.Int("m", 0, "value domain size (0 means max input value)")
		timeout    = fs.Duration("timeout", wire.DefaultRoundTimeout, "round deadline before absent peers are suspected crashed")
		retransmit = fs.Duration("retransmit", wire.DefaultRetransmit, "initial retransmission interval")
		linger     = fs.Duration("linger", 0, "courtesy window after finishing (0 means timeout)")
		seed       = fs.Uint64("seed", 0, "retransmission jitter seed (0 derives one from id)")
		verbose    = fs.Bool("v", false, "log round progress to stderr")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	peers := strings.Split(*peersFlag, ",")
	if *peersFlag == "" || len(peers) < 2 {
		return fmt.Errorf("-peers must list at least 2 addresses, got %q", *peersFlag)
	}
	n := len(peers)
	if *id < 1 || *id > n {
		return fmt.Errorf("-id %d outside 1..%d", *id, n)
	}
	input, err := parseInput(*inputFlag, n)
	if err != nil {
		return err
	}
	if *l == 0 {
		*l = *k
	}
	if *m == 0 {
		for _, v := range input {
			if int(v) > *m {
				*m = int(v)
			}
		}
	}

	p := core.Params{N: n, T: *t, K: *k, D: *d, L: *l}
	cond, err := condition.NewMax(n, *m, p.X(), *l)
	if err != nil {
		return err
	}
	procs, err := core.NewRun(p, cond, input)
	if err != nil {
		return err
	}

	conn, err := wire.DialUDP(peers[*id-1], peers)
	if err != nil {
		return err
	}
	defer conn.Close()

	// SIGINT/SIGTERM cancel the run; the node returns cleanly instead of
	// leaving peers to time us out one round at a time.
	cancel := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		close(cancel)
	}()

	var onRound func(int)
	if *verbose {
		onRound = func(r int) { fmt.Fprintf(os.Stderr, "ksetpeer %d: round=%d sent\n", *id, r) }
	}
	start := time.Now()
	res, err := wire.RunNode(procs[*id-1], wire.NodeConfig{
		ID:           rounds.ProcessID(*id),
		N:            n,
		MaxRounds:    p.RMax(),
		Conn:         conn,
		RoundTimeout: *timeout,
		Retransmit:   *retransmit,
		Linger:       *linger,
		Seed:         *seed,
		Cancel:       cancel,
		OnRound:      onRound,
	})
	if err != nil {
		return err
	}

	rep := report{
		ID:        *id,
		Decided:   res.Decided,
		Value:     int(res.Value),
		Round:     res.Round,
		Suspected: make([]int, 0, len(res.Suspected)),
		Sent:      res.FramesSent,
		Received:  res.FramesReceived,
		Retrans:   res.Retransmits,
		Elapsed:   time.Since(start).Seconds(),
	}
	for _, s := range res.Suspected {
		rep.Suspected = append(rep.Suspected, int(s))
	}
	enc := json.NewEncoder(out)
	return enc.Encode(rep)
}

// parseInput decodes the comma-separated proposal vector.
func parseInput(s string, n int) (vector.Vector, error) {
	if s == "" {
		return nil, fmt.Errorf("-input is required")
	}
	fields := strings.Split(s, ",")
	if len(fields) != n {
		return nil, fmt.Errorf("-input has %d entries, -peers has %d", len(fields), n)
	}
	in := vector.New(n)
	for i, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 || v > int(vector.MaxSetValue) {
			return nil, fmt.Errorf("-input entry %d: %q is not a value in 1..%d", i+1, f, vector.MaxSetValue)
		}
		in[i] = vector.Value(v)
	}
	return in, nil
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// peerBin is the ksetpeer binary under test, built once by TestMain —
// the chaos test needs a real OS process it can SIGKILL.
var peerBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ksetpeer")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	peerBin = filepath.Join(dir, "ksetpeer")
	out, err := exec.Command("go", "build", "-o", peerBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "build ksetpeer: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// freeUDPAddrs reserves n distinct loopback UDP ports and releases them
// for the peers to rebind.
func freeUDPAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	conns := make([]net.PacketConn, n)
	for i := range addrs {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		addrs[i] = c.LocalAddr().String()
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

// peerProc is one running ksetpeer process and its captured stdout.
type peerProc struct {
	cmd    *exec.Cmd
	stdout bytes.Buffer
}

// startPeer launches one peer of the fleet.
func startPeer(t *testing.T, id int, peers []string, extra ...string) *peerProc {
	t.Helper()
	args := append([]string{
		"-id", fmt.Sprint(id),
		"-peers", strings.Join(peers, ","),
		"-input", "3,1,2",
		"-t", "1", "-k", "1",
		"-linger", "250ms",
	}, extra...)
	p := &peerProc{cmd: exec.Command(peerBin, args...)}
	p.cmd.Stdout = &p.stdout
	p.cmd.Stderr = os.Stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start peer %d: %v", id, err)
	}
	return p
}

// waitPeer blocks until the peer exits or the bound expires — the bound
// is the test's liveness assertion: a run must always terminate.
func waitPeer(t *testing.T, id int, p *peerProc, bound time.Duration) report {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("peer %d: %v (stdout %q)", id, err, p.stdout.String())
		}
	case <-time.After(bound):
		p.cmd.Process.Kill()
		t.Fatalf("peer %d still running after %v — the run must terminate", id, bound)
	}
	var rep report
	if err := json.Unmarshal(p.stdout.Bytes(), &rep); err != nil {
		t.Fatalf("peer %d stdout %q: %v", id, p.stdout.String(), err)
	}
	return rep
}

// engineRun reproduces the fleet's instance in the in-process engine:
// same parameters and condition ksetpeer derives from its flags.
func engineRun(t *testing.T, fp rounds.FailurePattern) *rounds.Result {
	t.Helper()
	p := core.Params{N: 3, T: 1, K: 1, D: 0, L: 1}
	c, err := condition.NewMax(3, 3, p.X(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewRunner().RunCond(p, c, vector.OfInts(3, 1, 2), fp, false, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetLosslessMatchesEngine: three OS processes over real loopback
// UDP decide exactly what the in-process engine decides for the same
// instance — value and round, per process, with nobody suspected.
func TestFleetLosslessMatchesEngine(t *testing.T) {
	addrs := freeUDPAddrs(t, 3)
	procs := make(map[int]*peerProc, 3)
	for id := 1; id <= 3; id++ {
		procs[id] = startPeer(t, id, addrs)
	}
	want := engineRun(t, rounds.FailurePattern{})
	for id, p := range procs {
		rep := waitPeer(t, id, p, 30*time.Second)
		wv, decided := want.Decisions[rounds.ProcessID(id)]
		if rep.Decided != decided {
			t.Fatalf("peer %d: decided=%v, engine says %v", id, rep.Decided, decided)
		}
		if rep.Value != int(wv) || rep.Round != want.DecisionRound[rounds.ProcessID(id)] {
			t.Errorf("peer %d decided %d@r%d, engine %d@r%d",
				id, rep.Value, rep.Round, wv, want.DecisionRound[rounds.ProcessID(id)])
		}
		if len(rep.Suspected) != 0 {
			t.Errorf("peer %d suspected %v on a lossless network", id, rep.Suspected)
		}
	}
}

// TestFleetSurvivesKilledPeer is the chaos test: peer 3 is SIGKILLed
// mid-round (after its round-1 broadcast, verified via the -v marker,
// and before any peer it is waiting on exists). The survivors must
// suspect it at the round deadline, fold it into crash accounting, and
// decide exactly what the engine decides when process 3 crashes at the
// start of round 1 — never hang.
func TestFleetSurvivesKilledPeer(t *testing.T) {
	addrs := freeUDPAddrs(t, 3)

	victim := &peerProc{cmd: exec.Command(peerBin,
		"-id", "3", "-peers", strings.Join(addrs, ","),
		"-input", "3,1,2", "-t", "1", "-k", "1", "-v")}
	victim.cmd.Stdout = &victim.stdout
	stderr, err := victim.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the round-1 marker: the victim is alive inside round 1 and
	// its broadcast has hit the sockets. Its peers do not exist yet, so
	// nothing it sent survives — the kill makes it an initial crash.
	sc := bufio.NewScanner(stderr)
	marked := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "round=1 sent") {
			marked = true
			break
		}
	}
	if !marked {
		victim.cmd.Process.Kill()
		t.Fatal("victim exited before its round-1 marker")
	}
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()

	survivors := map[int]*peerProc{
		1: startPeer(t, 1, addrs, "-timeout", "500ms"),
		2: startPeer(t, 2, addrs, "-timeout", "500ms"),
	}
	want := engineRun(t, rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{
		3: {Round: 1, AfterSends: 0},
	}})
	for id, p := range survivors {
		rep := waitPeer(t, id, p, 30*time.Second)
		wv, decided := want.Decisions[rounds.ProcessID(id)]
		if rep.Decided != decided {
			t.Fatalf("survivor %d: decided=%v, engine says %v", id, rep.Decided, decided)
		}
		if decided && (rep.Value != int(wv) || rep.Round != want.DecisionRound[rounds.ProcessID(id)]) {
			t.Errorf("survivor %d decided %d@r%d, engine %d@r%d",
				id, rep.Value, rep.Round, wv, want.DecisionRound[rounds.ProcessID(id)])
		}
		if len(rep.Suspected) != 1 || rep.Suspected[0] != 3 {
			t.Errorf("survivor %d suspected %v, want [3]", id, rep.Suspected)
		}
	}
	if _, crashed := want.Crashed[3]; !crashed {
		t.Error("engine reference run does not count process 3 crashed")
	}
}

// TestBadFlags pins the CLI validation: each broken invocation must fail
// fast with exit status 1, not hang waiting for a fleet.
func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{},
		{"-id", "0", "-peers", "a:1,b:2", "-input", "1,2"},
		{"-id", "3", "-peers", "a:1,b:2", "-input", "1,2"},
		{"-id", "1", "-peers", "a:1,b:2", "-input", "1"},
		{"-id", "1", "-peers", "a:1,b:2", "-input", "1,99"},
		{"-id", "1", "-peers", "only-one:1", "-input", "1"},
	}
	for i, args := range cases {
		err := exec.Command(peerBin, args...).Run()
		var ee *exec.ExitError
		if err == nil {
			t.Errorf("case %d: %v succeeded, want exit 1", i, args)
		} else if !errors.As(err, &ee) || ee.ExitCode() != 1 {
			t.Errorf("case %d: %v: %v, want exit 1", i, args, err)
		}
	}
}

package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestDaemonGracefulDrain is the end-to-end daemon smoke: boot the real
// run loop, wait for the health probe, submit jobs, send ourselves
// SIGTERM and check the daemon drains the accepted work and exits clean.
func TestDaemonGracefulDrain(t *testing.T) {
	addr := freeAddr(t)
	exit := make(chan error, 1)
	go func() {
		exit <- run([]string{"-addr", addr, "-active", "2", "-drain-timeout", "60s"})
	}()
	base := "http://" + addr

	// Wait for the listener; the daemon installs its signal handler
	// before the listener goes live, so a healthy probe means SIGTERM is
	// already safe to send.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	spec := `{
		"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
		"condition": {"kind": "max", "m": 3},
		"source": {"kind": "exhaustive"}
	}`
	for i := 0; i < 8; i++ {
		resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, data)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// TestDaemonServesJobs boots the daemon and runs one synchronous job
// through the wire, checking the stats land.
func TestDaemonServesJobs(t *testing.T) {
	addr := freeAddr(t)
	exit := make(chan error, 1)
	go func() {
		exit <- run([]string{"-addr", addr})
	}()
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	spec := `{
		"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
		"condition": {"kind": "max", "m": 3},
		"source": {"kind": "exhaustive"},
		"label": "smoke"
	}`
	resp, err := http.Post(base+"/v1/campaigns?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit: status %d: %s", resp.StatusCode, data)
	}
	var status struct {
		State string `json:"state"`
		Stats struct {
			Runs int64 `json:"runs"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(data, &status); err != nil {
		t.Fatal(err)
	}
	if status.State != "done" || status.Stats.Runs != 81 {
		t.Fatalf("job did not complete over the wire: %s", data)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-exit; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

// Command ksetd is the agreement-as-a-service daemon: a long-running
// HTTP server exposing condition-based k-set agreement campaigns, sweeps
// and the paper's experiment registry as a JSON API with server-sent
// progress events.
//
// Endpoints:
//
//	POST   /v1/campaigns            submit a JobSpec (202; ?wait=1 blocks)
//	GET    /v1/campaigns            list jobs (?tenant=x filters)
//	GET    /v1/campaigns/{id}        job status and terminal results
//	DELETE /v1/campaigns/{id}        cancel a queued or running job
//	GET    /v1/campaigns/{id}/events SSE: snapshots, then stats/sweep/error
//	GET    /v1/experiments           list the registered experiments
//	POST   /v1/experiments/{id}      run one, with optional param overrides
//	POST   /v1/merge                 fold shard result uploads into one report
//	GET    /healthz                  liveness probe
//
// /v1/merge is the fold point of sharded campaigns: K processes each run
// one shard (for example `experiments -campaign -shard i/K`), upload
// their accumulators, checkpoints or stats reports, and receive the
// byte-identical stats a single process over the whole stream would have
// produced.
//
// Submissions are queued per tenant (X-Tenant header) and scheduled
// round-robin across tenants, so one tenant's backlog cannot starve
// another's. SIGINT/SIGTERM drains gracefully: new submissions get 503
// while accepted jobs run to completion (bounded by -drain-timeout).
//
// Usage:
//
//	ksetd [-addr :8344] [-active 2] [-queue 1024]
//	      [-snapshot 250ms] [-drain-timeout 30s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kset/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ksetd:", err)
		os.Exit(1)
	}
}

// run parses flags, serves until a termination signal, then drains.
func run(argv []string) error {
	fs := flag.NewFlagSet("ksetd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8344", "listen address")
		active   = fs.Int("active", 2, "max concurrently running jobs")
		queue    = fs.Int("queue", 1024, "max queued jobs per tenant")
		snapshot = fs.Duration("snapshot", 250*time.Millisecond, "SSE progress snapshot interval")
		drainTO  = fs.Duration("drain-timeout", 30*time.Second, "max time to finish accepted jobs on shutdown")
		maxBody  = fs.Int64("max-body", 8<<20, "max request body bytes (oversized bodies get a structured 413)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	svc := service.NewServer(service.Config{
		MaxActive:          *active,
		MaxQueuedPerTenant: *queue,
		SnapshotInterval:   *snapshot,
		MaxBodyBytes:       *maxBody,
	})
	defer svc.Close()

	// The signal handler is installed before the listener goes live, so a
	// supervisor (or test) that sees the port up can already terminate us.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	// A daemon on an open port must bound what a slow or hostile client
	// can hold: slowloris headers (ReadHeaderTimeout), drip-fed bodies
	// (ReadTimeout), and idle keep-alive connections (IdleTimeout).
	// WriteTimeout stays unset because SSE streams legitimately run for
	// the life of a job; the stream handler clears per-connection read
	// deadlines itself.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ksetd: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ksetd: %v, draining (max %v)\n", s, *drainTO)
	}

	// Drain first — accepted jobs finish while new submissions get 503 —
	// then shut the listener down, unblocking any live SSE streams.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "ksetd: drain incomplete: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "ksetd: stopped")
	return nil
}

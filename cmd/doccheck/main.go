// Command doccheck is the repository's doc-coverage gate: it fails when a
// package lacks a package doc comment or an exported top-level symbol
// (type, function, method, var, const) has no doc comment. CI runs it over
// the root kset package and every internal package, which is what keeps
// the documented-public-surface guarantee from rotting.
//
// Usage:
//
//	doccheck [dir ...]        (default: .)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	bad := 0
	for _, dir := range dirs {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbol(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir reports the undocumented exported symbols of the package in
// dir (non-test files only).
func checkDir(dir string) (int, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	bad, parsed, hasPkgDoc := 0, 0, false
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return bad, err
		}
		parsed++
		if f.Doc != nil {
			hasPkgDoc = true
		}
		bad += checkFile(fset, f)
	}
	if parsed == 0 {
		return bad, fmt.Errorf("%s: no Go files", dir)
	}
	if !hasPkgDoc {
		fmt.Fprintf(os.Stderr, "%s: package has no package doc comment\n", dir)
		bad++
	}
	return bad, nil
}

func checkFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, name string) {
		fmt.Fprintf(os.Stderr, "%s: exported %s has no doc comment\n", fset.Position(pos), name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil {
				if t := receiverName(d.Recv); t != "" {
					if !ast.IsExported(t) {
						continue // method on an unexported type
					}
					name = t + "." + name
				}
			}
			report(d.Pos(), name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
						report(s.Pos(), s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil || d.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// receiverName unwraps the receiver's base type name (pointer and type
// parameters stripped).
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

package kset_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"kset"
)

// TestSweepDegreesTradeoff reruns the tradeoff example's grid and pins
// the paper's trade-off: along d = 0..t−ℓ the condition size grows and,
// under the forcing adversary, the decision round meets
// max(2, ⌊(d+ℓ−1)/k⌋+1) exactly.
func TestSweepDegreesTradeoff(t *testing.T) {
	const n, m, tt, k, l = 9, 4, 6, 1, 1
	input := kset.VectorOf(4, 4, 4, 4, 4, 4, 4, 2, 1)
	points, err := kset.SweepDegrees(
		kset.Params{N: n, T: tt, K: k, L: l}, m,
		func(p kset.Params, c *kset.MaxCondition) kset.ScenarioSource {
			fp := kset.InitialCrashes(n, min(p.X()+1, tt))
			return kset.CrossFailures(kset.Inputs(input), fp)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != tt-l+1 {
		t.Fatalf("grid has %d points, want %d", len(points), tt-l+1)
	}
	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	prevSize := int64(-1)
	for i, r := range results {
		if want := fmt.Sprintf("d=%d", i); r.Key != want {
			t.Fatalf("result %d keyed %q, want %q", i, r.Key, want)
		}
		if r.Stats.Runs != 1 || r.Stats.Violations != 0 {
			t.Fatalf("%s: runs=%d violations=%d", r.Key, r.Stats.Runs, r.Stats.Violations)
		}
		if got, want := r.Stats.MaxDecisionRound(), r.Params.RCond(); got != want {
			t.Fatalf("%s: decided in round %d, want RCond = %d", r.Key, got, want)
		}
		nb, err := kset.ConditionSize(n, m, r.Params.X(), l)
		if err != nil {
			t.Fatal(err)
		}
		if nb.Int64() <= prevSize {
			t.Fatalf("%s: NB = %s did not grow (previous %d)", r.Key, nb, prevSize)
		}
		prevSize = nb.Int64()
	}
}

func TestSweepFailuresAndExecutorsKeys(t *testing.T) {
	p := kset.Params{N: 5, T: 3, K: 2, D: 3, L: 1}
	cond, err := kset.NewMaxCondition(p.N, 3, p.X(), p.L)
	if err != nil {
		t.Fatal(err)
	}
	base := kset.SweepPoint{
		Options: []kset.Option{kset.WithParams(p), kset.WithCondition(cond)},
		Source:  kset.Inputs(kset.VectorOf(3, 2, 1, 1, 2)),
	}
	points := kset.SweepExecutors(
		kset.SweepFailures(base, kset.InitialCrashFamily(p.N, 2)),
		kset.Figure2, kset.EarlyDeciding)
	if len(points) != 6 {
		t.Fatalf("expanded to %d points, want 3×2 = 6", len(points))
	}
	wantKeys := []string{
		"figure2/initial=0", "early/initial=0",
		"figure2/initial=1", "early/initial=1",
		"figure2/initial=2", "early/initial=2",
	}
	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(results))
	for i, r := range results {
		keys[i] = r.Key
		if r.Stats.Runs != 1 || r.Stats.Violations != 0 {
			t.Fatalf("%s: runs=%d violations=%d", r.Key, r.Stats.Runs, r.Stats.Violations)
		}
	}
	if !reflect.DeepEqual(keys, wantKeys) {
		t.Fatalf("keys = %v, want %v", keys, wantKeys)
	}
}

func TestSweepDegreesBadParams(t *testing.T) {
	// ℓ > t leaves no degree where the condition helps; must error, not
	// panic on a negative grid capacity.
	_, err := kset.SweepDegrees(kset.Params{N: 4, T: 1, K: 3, L: 3}, 4,
		func(p kset.Params, c *kset.MaxCondition) kset.ScenarioSource {
			return kset.Inputs(kset.VectorOf(1, 1, 1, 1))
		})
	if !errors.Is(err, kset.ErrBadParams) {
		t.Fatalf("err = %v, want ErrBadParams", err)
	}
}

func TestRunSweepBadPoint(t *testing.T) {
	points := []kset.SweepPoint{{
		Key:     "broken",
		Options: nil, // no params: New must fail
		Source:  kset.Inputs(kset.VectorOf(1, 2)),
	}}
	if _, err := kset.RunSweep(context.Background(), points); !errors.Is(err, kset.ErrBadParams) {
		t.Fatalf("err = %v, want ErrBadParams", err)
	}
}

package kset

import (
	"fmt"

	"kset/internal/shard"
)

// ShardPlan is the deterministic partition of a sized scenario stream
// into K contiguous, disjoint, collectively exhaustive index ranges.
// Every process that builds the same plan — same source parameters, same
// K — agrees on every shard boundary without coordination, which is what
// lets independent processes split one campaign and fold the results
// back together. Build one with NewShardPlan.
type ShardPlan = shard.Plan

// Cursor addresses the half-open index range [Lo, Hi) of a deterministic
// scenario stream: the serializable identity of one campaign shard.
// Sources are deterministic and re-iterable, so a cursor plus the
// source's construction parameters fully determine the shard's scenarios
// across processes and machines. Turn one back into a stream with
// CursorSource.
type Cursor = shard.Cursor

// NewShardPlan partitions src's stream into k balanced shards. The
// source must be sized (ErrUnsizedSource otherwise); k < 1 is an error,
// while k larger than the stream leaves the surplus shards empty.
func NewShardPlan(src ScenarioSource, k int) (ShardPlan, error) {
	total, ok := src.Size()
	if !ok {
		return ShardPlan{}, fmt.Errorf("%w: cannot plan shards", ErrUnsizedSource)
	}
	return shard.NewPlan(total, k)
}

// ShardSource returns shard i of src split k ways: the sub-stream
// covering the plan's i-th index range. The union of the k shard streams
// is exactly the unsharded stream — disjoint, collectively exhaustive,
// in order within each shard.
func ShardSource(src ScenarioSource, i, k int) (ScenarioSource, error) {
	plan, err := NewShardPlan(src, k)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= k {
		return nil, fmt.Errorf("kset: shard index %d outside [0, %d)", i, k)
	}
	lo, hi := plan.Bounds(i)
	return Range(src, lo, hi), nil
}

// CursorSource returns the sub-stream of src a cursor addresses —
// the resume half of a serialized shard or checkpoint.
func CursorSource(src ScenarioSource, cur Cursor) ScenarioSource {
	return Range(src, cur.Lo, cur.Hi)
}

// Range returns the sub-stream of src covering stream indices [lo, hi),
// clamped to the stream. Sources with native range support (exhaustive
// enumerations, seeded random streams, literal lists, cross products and
// concatenations of such) seek straight to lo; other sources replay and
// discard the prefix, preserving correctness at O(lo) iteration cost.
func Range(src ScenarioSource, lo, hi int64) ScenarioSource {
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	n, sized := src.Size()
	if sized {
		lo, hi = min(lo, n), min(hi, n)
	}
	return funcSource{
		size: hi - lo, sized: sized,
		each: func(yield func(Scenario) bool) {
			forEachRange(src, lo, hi, yield)
		},
		ranged: func(rlo, rhi int64, yield func(Scenario) bool) {
			forEachRange(src, lo+rlo, min(lo+rhi, hi), yield)
		},
	}
}

// forEachRange yields src's scenarios with stream indices in [lo, hi),
// using the source's native range support when it has one and otherwise
// replaying and discarding the prefix.
func forEachRange(src ScenarioSource, lo, hi int64, yield func(Scenario) bool) {
	if lo >= hi {
		return
	}
	if fs, ok := src.(funcSource); ok && fs.ranged != nil {
		fs.ranged(lo, hi, yield)
		return
	}
	i := int64(0)
	src.ForEach(func(sc Scenario) bool {
		if i >= hi {
			return false
		}
		ok := true
		if i >= lo {
			ok = yield(sc)
		}
		i++
		return ok && i < hi
	})
}

package kset_test

import (
	"context"
	"errors"
	"math/big"
	"reflect"
	"testing"

	"kset"
)

// collect materializes a source (tests only; the library never does).
func collect(t *testing.T, src kset.ScenarioSource) []kset.Scenario {
	t.Helper()
	var out []kset.Scenario
	src.ForEach(func(sc kset.Scenario) bool {
		sc.Input = sc.Input.Clone() // sources may reuse input buffers across yields
		out = append(out, sc)
		return true
	})
	return out
}

func TestExhaustiveInputsCardinality(t *testing.T) {
	const n, m = 3, 4
	src := kset.ExhaustiveInputs(n, m)
	want := int64(1)
	for i := 0; i < n; i++ {
		want *= m
	}
	if got, ok := src.Size(); !ok || got != want {
		t.Fatalf("Size() = %d, %v; want %d, true", got, ok, want)
	}
	seen := make(map[string]bool)
	for _, sc := range collect(t, src) {
		if len(sc.Input) != n {
			t.Fatalf("input %v has size %d, want %d", sc.Input, len(sc.Input), n)
		}
		seen[sc.Input.String()] = true
	}
	if int64(len(seen)) != want {
		t.Fatalf("enumerated %d distinct inputs, want m^n = %d", len(seen), want)
	}
}

func TestConditionMembersMatchesConditionSize(t *testing.T) {
	const n, m, x, l = 5, 3, 2, 1
	nb, err := kset.ConditionSize(n, m, x, l)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cond kset.Condition
	}{
		{"max", mustMax(t, n, m, x, l)},
		{"min", mustMin(t, n, m, x, l)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := kset.ConditionMembers(tc.cond)
			if got, ok := src.Size(); !ok || got != nb.Int64() {
				t.Fatalf("Size() = %d, %v; want NB = %s, true", got, ok, nb)
			}
			members := collect(t, src)
			if big.NewInt(int64(len(members))).Cmp(nb) != 0 {
				t.Fatalf("streamed %d members, NB(x,ℓ) = %s", len(members), nb)
			}
			for _, sc := range members {
				if !tc.cond.Contains(sc.Input) {
					t.Fatalf("streamed non-member %v", sc.Input)
				}
			}
		})
	}
}

func mustMax(t *testing.T, n, m, x, l int) *kset.MaxCondition {
	t.Helper()
	c, err := kset.NewMaxCondition(n, m, x, l)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustMin(t *testing.T, n, m, x, l int) *kset.MinCondition {
	t.Helper()
	c, err := kset.NewMinCondition(n, m, x, l)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConditionMembersExplicitSize(t *testing.T) {
	c, err := kset.NewExplicitCondition(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []kset.Vector{
		kset.VectorOf(1, 1, 1), kset.VectorOf(2, 2, 2), kset.VectorOf(2, 2, 1),
	} {
		if err := c.AddAuto(in, func(i kset.Vector) kset.Set { return i.TopL(1) }); err != nil {
			t.Fatal(err)
		}
	}
	src := kset.ConditionMembers(c)
	if got, ok := src.Size(); !ok || got != 3 {
		t.Fatalf("Size() = %d, %v; want 3, true", got, ok)
	}
	if got := len(collect(t, src)); got != 3 {
		t.Fatalf("streamed %d members, want 3", got)
	}
}

func TestRandomInputsDeterministic(t *testing.T) {
	a := collect(t, kset.RandomInputs(7, 6, 4, 50))
	b := collect(t, kset.RandomInputs(7, 6, 4, 50))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different input streams")
	}
	c := collect(t, kset.RandomInputs(8, 6, 4, 50))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical input streams")
	}
}

func TestCombinatorSizes(t *testing.T) {
	in := kset.Inputs(kset.VectorOf(1, 1, 1), kset.VectorOf(2, 2, 2))
	fps := []kset.FailurePattern{kset.NoFailures(), kset.InitialCrashes(3, 1)}

	cross := kset.CrossFailures(in, fps...)
	if got, ok := cross.Size(); !ok || got != 4 {
		t.Fatalf("CrossFailures size = %d, %v; want 4, true", got, ok)
	}
	if got := len(collect(t, cross)); got != 4 {
		t.Fatalf("CrossFailures yielded %d, want 4", got)
	}

	fam := kset.InitialCrashFamily(3, 2) // f = 0, 1, 2
	sched := kset.FailureSchedules(in, fam)
	if got, ok := sched.Size(); !ok || got != 6 {
		t.Fatalf("FailureSchedules size = %d, %v; want 6, true", got, ok)
	}
	if got := len(collect(t, sched)); got != 6 {
		t.Fatalf("FailureSchedules yielded %d, want 6", got)
	}

	ex := kset.CrossExecutors(in, kset.Figure2, kset.Classical)
	if got, ok := ex.Size(); !ok || got != 4 {
		t.Fatalf("CrossExecutors size = %d, %v; want 4, true", got, ok)
	}

	cat := kset.Concat(in, cross)
	if got, ok := cat.Size(); !ok || got != 6 {
		t.Fatalf("Concat size = %d, %v; want 6, true", got, ok)
	}
	if got := len(collect(t, cat)); got != 6 {
		t.Fatalf("Concat yielded %d, want 6", got)
	}
}

func TestFailureFamilyDeterministic(t *testing.T) {
	a := kset.RandomCrashFamily(3, 8, 5, 3, 16)
	b := kset.RandomCrashFamily(3, 8, 5, 3, 16)
	if a.Size() != 16 {
		t.Fatalf("family size = %d, want 16", a.Size())
	}
	for i := 0; i < a.Size(); i++ {
		if !reflect.DeepEqual(a.Pattern(i), b.Pattern(i)) {
			t.Fatalf("pattern %d differs between identically seeded families", i)
		}
		if !reflect.DeepEqual(a.Pattern(i), a.Pattern(i)) {
			t.Fatalf("pattern %d is not random-access deterministic", i)
		}
	}
}

// TestRunSourceDeterministic is the generator-determinism contract: the
// same seed and the same source expression yield byte-identical
// CampaignStats, run after run, whatever the worker count.
func TestRunSourceDeterministic(t *testing.T) {
	p := kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	cond := mustMax(t, p.N, 4, p.X(), p.L)
	run := func(workers int) *kset.CampaignStats {
		sys, err := kset.New(kset.WithParams(p), kset.WithCondition(cond), kset.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		src := kset.CrossExecutors(
			kset.FailureSchedules(
				kset.RandomInputs(42, p.N, 4, 60),
				kset.RandomCrashFamily(43, p.N, p.T, p.RMax(), 5),
			),
			kset.Figure2, kset.EarlyDeciding,
		)
		stats, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	first := run(1)
	if first.Runs != 600 {
		t.Fatalf("ran %d scenarios, want 60×5×2 = 600", first.Runs)
	}
	if first.Violations > 0 {
		t.Fatalf("%d specification violations", first.Violations)
	}
	for _, workers := range []int{1, 4} {
		if again := run(workers); !reflect.DeepEqual(first, again) {
			t.Fatalf("workers=%d: same seed and source produced different stats:\n%+v\n%+v",
				workers, first, again)
		}
	}
}

// TestRunSourceMatchesRunCampaign pins the two submission paths to the
// same aggregate: a materialized slice through RunCampaign and the same
// scenarios streamed through RunSource.
func TestRunSourceMatchesRunCampaign(t *testing.T) {
	p := kset.Params{N: 5, T: 2, K: 2, D: 1, L: 1}
	cond := mustMax(t, p.N, 3, p.X(), p.L)
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(cond))
	if err != nil {
		t.Fatal(err)
	}
	src := kset.CrossFailures(kset.ExhaustiveInputs(p.N, 3),
		kset.NoFailures(), kset.InitialCrashes(p.N, 2))
	scs := collect(t, src)

	fromSlice, err := sys.RunCampaign(context.Background(), scs, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	fromSource, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSlice, fromSource) {
		t.Fatalf("slice and source campaigns disagree:\n%+v\n%+v", fromSlice, fromSource)
	}
	if want := int64(len(scs)); fromSource.Runs != want {
		t.Fatalf("ran %d scenarios, want %d", fromSource.Runs, want)
	}
}

func TestRunSourceCancellation(t *testing.T) {
	p := kset.Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	cond := mustMax(t, p.N, 4, p.X(), p.L)
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(cond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A cancelled context must surface as the campaign error, not hang the
	// generator against a full queue.
	if _, err := sys.RunSource(ctx, kset.ExhaustiveInputs(p.N, 4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

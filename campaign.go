package kset

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kset/internal/core"
	"kset/internal/stats"
)

// CampaignOption configures a campaign before its workers start.
type CampaignOption func(*Campaign)

// CampaignWorkers overrides the system's worker count for this campaign.
func CampaignWorkers(n int) CampaignOption {
	return func(c *Campaign) {
		if n > 0 {
			c.nworkers = n
		}
	}
}

// CollectResults gives the campaign a results channel of the given buffer
// size, exposed by Campaign.Results. Every scenario's Outcome — with a
// freshly allocated Result — is sent to it; the consumer MUST drain the
// channel concurrently with submission, or the workers block. Without this
// option outcomes are folded into the campaign's collectors only and each
// worker recycles one Result, making the per-run cost allocation-free.
//
// Ownership: a Result that crosses the channel belongs to the receiver.
// The campaign allocates it fresh for the run and never recycles it into
// a worker or pool afterwards, so consumers may retain, mutate and
// compare Outcome.Result values for as long as they like — including
// after the campaign has completed.
func CollectResults(buffer int) CampaignOption {
	return func(c *Campaign) { c.results = make(chan Outcome, max(buffer, 0)) }
}

// VerifyRuns makes every synchronous run's result checked against the
// k-set agreement specification; failures increment
// CampaignStats.Violations and annotate the Outcome's Verdict.
func VerifyRuns() CampaignOption {
	return func(c *Campaign) { c.verify = true }
}

// Outcome reports one campaign scenario.
type Outcome struct {
	// Scenario is the submitted scenario, as given.
	Scenario Scenario
	// Result is the execution result (nil when Err is set). It is
	// allocated fresh for this outcome and owned by the receiver: the
	// campaign never recycles it, so it remains valid after the campaign
	// completes.
	Result *Result
	// Observation is the run's flat results-plane record — the same
	// record the campaign's collectors received.
	Observation Observation
	// Verdict is the specification verdict, when VerifyRuns is on and the
	// scenario ran a synchronous executor.
	Verdict *Verdict
	// Err reports a failed run (bad input vector, misconfigured executor
	// override); the campaign keeps going.
	Err error
}

// CampaignStats aggregates a campaign: the flat counters the original
// batch API exposed, rendered from the results-plane accumulator the
// campaign's workers actually fed. Everything the accumulator folds is a
// sum, a minimum or a maximum, so for a fixed multiset of scenarios the
// stats are identical regardless of worker count or scheduling — seeded
// sweeps are reproducible run to run, byte for byte.
type CampaignStats struct {
	// Runs is the number of scenarios executed (including failed ones).
	Runs int64 `json:"runs"`
	// Errors is the number of scenarios whose run returned an error.
	Errors int64 `json:"errors"`
	// ConditionHits counts runs whose input vector belongs to the
	// system's condition.
	ConditionHits int64 `json:"condition_hits"`
	// Violations counts verified runs that failed the k-set agreement
	// specification (only populated under VerifyRuns).
	Violations int64 `json:"violations"`
	// UndecidedRuns counts runs some process of which neither decided
	// nor crashed: synchronous runs that exhausted the round limit
	// (possible only under a fault-injecting transport — reliable
	// synchronous runs always terminate) and asynchronous runs whose
	// processes gave up their scan budget, the executable face of the
	// ℓ ≤ x impossibility. Non-termination is a counted outcome, never a
	// hang.
	UndecidedRuns int64 `json:"undecided_runs,omitempty"`
	// MessagesDelivered sums delivered messages across all runs.
	MessagesDelivered int64 `json:"messages_delivered"`
	// DecisionRounds is the histogram of latest decision rounds:
	// DecisionRounds[r] = runs whose last decision came at round r.
	// Index 0 counts runs that decided in no round at all — asynchronous
	// runs (which have no rounds) and runs where nobody decided. Rounds
	// past the accumulator's tracked range (≥ stats.HistogramBuckets, far
	// beyond any realistic ⌊t/k⌋+1) are not positionally representable
	// here; they are summarized exactly in Metrics.Rounds.Overflow, and
	// the accessors below account for them.
	DecisionRounds []int64 `json:"decision_rounds,omitempty"`
	// Metrics is the full results-plane accumulator behind the flat
	// fields: the bounded histogram, min/mean/max summaries of messages
	// and crashes, and the per-executor / per-crash-count / per-label
	// breakdowns, all JSON-marshalable and deterministically mergeable.
	Metrics *Accumulator `json:"metrics,omitempty"`
}

// newCampaignStats renders the merged accumulator as the flat stats view.
func newCampaignStats(acc *Accumulator) *CampaignStats {
	return &CampaignStats{
		Runs:              acc.Runs,
		Errors:            acc.Errors,
		ConditionHits:     acc.ConditionHits,
		Violations:        acc.Violations,
		UndecidedRuns:     acc.UndecidedRuns,
		MessagesDelivered: acc.MessagesDelivered(),
		DecisionRounds:    acc.DecisionRounds(),
		Metrics:           acc,
	}
}

// HitRate returns the fraction of runs whose input was in the condition.
func (s *CampaignStats) HitRate() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.ConditionHits) / float64(s.Runs)
}

// MaxDecisionRound returns the latest decision round any run reached, or
// 0 when no run decided in a round. It reads the full accumulator, so
// rounds in the histogram's overflow summary are never dropped.
func (s *CampaignStats) MaxDecisionRound() int {
	if s.Metrics != nil {
		return s.Metrics.MaxDecisionRound()
	}
	for r := len(s.DecisionRounds) - 1; r >= 1; r-- {
		if s.DecisionRounds[r] > 0 {
			return r
		}
	}
	return 0
}

// MeanDecisionRound returns the mean latest decision round over the runs
// that decided in some round. Like MaxDecisionRound it reads the full
// accumulator, overflow included.
func (s *CampaignStats) MeanDecisionRound() float64 {
	if s.Metrics != nil {
		return s.Metrics.MeanDecisionRound()
	}
	var runs, sum int64
	for r := 1; r < len(s.DecisionRounds); r++ {
		runs += s.DecisionRounds[r]
		sum += int64(r) * s.DecisionRounds[r]
	}
	if runs == 0 {
		return 0
	}
	return float64(sum) / float64(runs)
}

// Campaign fans a stream of scenarios across a bounded pool of workers,
// each owning its engine and protocol buffers, and aggregates the outcomes
// into a CampaignStats. Build one with System.NewCampaign, feed it with
// Submit/SubmitAll, then Close (or just Wait) and read the stats:
//
//	camp := sys.NewCampaign(ctx)
//	for _, sc := range scenarios {
//		if err := camp.Submit(sc); err != nil {
//			break
//		}
//	}
//	stats, err := camp.Wait()
//
// Submit is safe from multiple goroutines. Cancelling the context stops
// the workers; Wait then reports the context error alongside the stats of
// the scenarios that did run.
type Campaign struct {
	sys      *System
	ctx      context.Context
	nworkers int
	verify   bool

	queue   chan Scenario
	slice   []Scenario   // fixed-slice mode (RunCampaign): no queue at all
	next    atomic.Int64 // next slice index to steal
	results chan Outcome

	// The collector pipeline: acc backs Wait's CampaignStats, extra holds
	// CollectInto additions; every worker observes into its own forked
	// shard row, joined back in worker order by Wait.
	acc        *stats.Accumulator
	extra      []Collector
	collectors []Collector   // acc + extra
	shards     [][]Collector // [worker][collector]
	wg         sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	waitOnce sync.Once
	stats    *CampaignStats
	waitErr  error
}

// NewCampaign starts a campaign's workers and returns the handle. The
// scenario queue is bounded, so Submit exerts backpressure on producers
// that outrun the workers.
func (s *System) NewCampaign(ctx context.Context, opts ...CampaignOption) *Campaign {
	c := s.newCampaign(ctx, opts)
	c.queue = make(chan Scenario, 4*c.nworkers+64)
	c.start()
	return c
}

// RunCampaign runs a fixed scenario slice to completion and returns the
// aggregate stats — the high-throughput form of NewCampaign + SubmitAll +
// Wait. With the whole workload known up front, the workers steal indices
// from the slice directly (no per-scenario channel operation), which is
// what makes campaign batching beat even sequential System.Run at
// microsecond-sized runs. Outcomes are folded into the stats only; use
// NewCampaign with CollectResults to stream per-scenario results.
func (s *System) RunCampaign(ctx context.Context, scenarios []Scenario, opts ...CampaignOption) (*CampaignStats, error) {
	c := s.newCampaign(ctx, opts)
	c.slice = scenarios
	c.closed = true // fixed workload: Submit is rejected
	c.start()
	c.discardResults()
	return c.Wait()
}

// discardResults drains the results channel of a run-to-completion entry
// point (RunCampaign, RunSource), where no consumer exists: without the
// drain, a CollectResults option would block every worker.
func (c *Campaign) discardResults() {
	if c.results == nil {
		return
	}
	go func() {
		for range c.results {
		}
	}()
}

// RunSource streams a scenario source through a campaign to completion
// and returns the aggregate stats — the generator-fed form of
// RunCampaign. The source is generated concurrently with execution under
// the queue's backpressure, so arbitrarily large scenario spaces run in
// constant memory. Outcomes are folded into the stats only; use
// NewCampaign with CollectResults to stream per-scenario results.
func (s *System) RunSource(ctx context.Context, src ScenarioSource, opts ...CampaignOption) (*CampaignStats, error) {
	c := s.NewCampaign(ctx, opts...)
	c.discardResults()
	// A submission error means cancellation (Close is ours alone); Wait
	// reports it alongside the stats of the scenarios that did run.
	_ = c.SubmitSource(src)
	return c.Wait()
}

// newCampaign builds the campaign shell: options applied, workers not yet
// started.
func (s *System) newCampaign(ctx context.Context, opts []CampaignOption) *Campaign {
	c := &Campaign{sys: s, ctx: ctx, nworkers: s.workers}
	for _, opt := range opts {
		opt(c)
	}
	c.acc = stats.NewAccumulator()
	c.collectors = append(make([]Collector, 0, 1+len(c.extra)), c.acc)
	c.collectors = append(c.collectors, c.extra...)
	c.shards = make([][]Collector, c.nworkers)
	for i := range c.shards {
		row := make([]Collector, len(c.collectors))
		for j, col := range c.collectors {
			row[j] = col.Fork()
		}
		c.shards[i] = row
	}
	return c
}

// start launches the workers and the results-closing watchdog.
func (c *Campaign) start() {
	c.wg.Add(c.nworkers)
	for i := 0; i < c.nworkers; i++ {
		go c.worker(i)
	}
	if c.results != nil {
		// The results channel closes as soon as every worker has exited,
		// so consumers may simply range over it — Close ends the range,
		// with or without a concurrent Wait.
		go func() {
			c.wg.Wait()
			close(c.results)
		}()
	}
}

// Submit enqueues one scenario, blocking while the queue is full. It
// returns the context's error after cancellation and ErrCampaignClosed
// after Close.
func (c *Campaign) Submit(sc Scenario) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrCampaignClosed
	}
	select {
	case c.queue <- sc:
		return nil
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

// SubmitAll enqueues the scenarios in order, stopping at the first error.
func (c *Campaign) SubmitAll(scs []Scenario) error {
	for i := range scs {
		if err := c.Submit(scs[i]); err != nil {
			return err
		}
	}
	return nil
}

// SubmitSource streams every scenario the source yields into the
// campaign, stopping at the first error (cancellation or Close). The
// source is consumed lazily: the campaign's bounded queue exerts
// backpressure on generation, so an m^n-sized source never materializes.
func (c *Campaign) SubmitSource(src ScenarioSource) error {
	var err error
	src.ForEach(func(sc Scenario) bool {
		err = c.Submit(sc)
		return err == nil
	})
	return err
}

// Close marks the campaign complete: no further Submit calls are accepted
// and the workers drain the queue and exit. Close is idempotent; Wait
// calls it implicitly.
func (c *Campaign) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.queue)
	}
}

// stealNext hands out the next fixed-slice scenario index, or false when
// the slice is exhausted or the context cancelled.
func (c *Campaign) stealNext() (int, bool) {
	if c.ctx.Err() != nil {
		return 0, false
	}
	i := c.next.Add(1) - 1
	if i >= int64(len(c.slice)) {
		return 0, false
	}
	return int(i), true
}

// Results returns the streaming outcome channel (nil unless the campaign
// was built with CollectResults). It closes once the campaign is Closed
// and every worker has exited, so ranging over it terminates.
func (c *Campaign) Results() <-chan Outcome { return c.results }

// Wait closes the campaign, waits for the workers to drain the queue,
// joins every worker's collector shards back into their collectors — in
// worker order, so any order-sensitive custom collector sees a fixed
// merge sequence — and returns the merged stats. After cancellation it
// returns the context's error together with the stats of the scenarios
// that completed.
func (c *Campaign) Wait() (*CampaignStats, error) {
	c.waitOnce.Do(func() {
		c.Close()
		c.wg.Wait()
		for j, col := range c.collectors {
			for i := range c.shards {
				col.Join(c.shards[i][j])
			}
		}
		c.stats = newCampaignStats(c.acc)
		c.waitErr = c.ctx.Err()
	})
	return c.stats, c.waitErr
}

// safeRun executes one scenario's run, converting an executor panic into
// a per-run error: a poisoned scenario fails its own run (surfacing in
// CampaignStats.Errors and the Outcome's Err) instead of killing the
// worker goroutine and, with it, the process.
func safeRun(ctx context.Context, ex Executor, s *System, w *worker, sc *Scenario, reuse *Result) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("kset: executor %s panicked: %v", ex.Name(), r)
		}
	}()
	return ex.run(ctx, s, w, sc, reuse)
}

// worker is one campaign worker: it checks engine/protocol buffers out of
// the shared pool once and runs scenarios until the queue closes or the
// context is cancelled, folding each run's Observation into its own
// collector shards (joined, deterministically, by Wait).
func (c *Campaign) worker(i int) {
	defer c.wg.Done()
	w := getWorker()
	defer putWorker(w)
	shard := c.shards[i]
	if c.slice != nil {
		for {
			idx, ok := c.stealNext()
			if !ok {
				return
			}
			c.runOne(w, shard, c.slice[idx])
		}
	}
	for {
		select {
		case <-c.ctx.Done():
			return
		case sc, ok := <-c.queue:
			if !ok {
				return
			}
			c.runOne(w, shard, sc)
		}
	}
}

// runOne executes one scenario on worker w and folds its Observation into
// the worker's collector shards. Without a results channel the worker
// recycles a single Result, so the run — observation included — allocates
// nothing.
func (c *Campaign) runOne(w *worker, shard []Collector, sc Scenario) {
	ex, err := c.sys.resolveExecutor(&sc)
	var res *Result
	if err == nil {
		var reuse *Result
		if c.results == nil {
			if w.res == nil {
				w.res = &Result{}
			}
			reuse = w.res
		}
		res, err = safeRun(c.ctx, ex, c.sys, w, &sc, reuse)
	}
	// A run aborted by the campaign's own cancellation did not run at all:
	// it is excluded from the stats (Wait reports the context error next to
	// the scenarios that did complete) instead of counting as a failure.
	if err != nil && c.ctx.Err() != nil && errors.Is(err, c.ctx.Err()) {
		return
	}
	out := Outcome{Scenario: sc}
	var o Observation
	if err != nil {
		o.Err = true
		out.Err = err
	} else {
		o = core.Observe(res)
		o.InCondition = c.sys.cond != nil && c.sys.cond.Contains(sc.Input)
		// Decided and crashed are disjoint (a process that crashes never
		// reaches a deciding step), so the remainder is the processes the
		// run left undecided — the round limit under an injected-fault
		// transport on synchronous runs, the scan budget on asynchronous
		// ones.
		if u := len(sc.Input) - len(res.Decisions) - len(res.Crashed); u > 0 {
			o.Undecided = u
		}
		if c.verify && ex.synchronous() {
			v := Verify(sc.Input, sc.FP, res, c.sys.p.K)
			o.Verified = true
			o.Violation = !v.OK()
			out.Verdict = &v
		}
		out.Result = res
	}
	if ex != nil {
		o.Executor = ex.Name()
	}
	o.Label = sc.Label
	for _, col := range shard {
		col.Observe(o)
	}
	if c.results != nil {
		out.Observation = o
		select {
		case c.results <- out:
		case <-c.ctx.Done():
		}
	}
}

package kset

import (
	"math"
	"math/rand"

	"kset/internal/condition"
	"kset/internal/count"
	"kset/internal/vector"
)

// ScenarioSource is a stream of scenarios: the input side of the
// generator subsystem. Sources are deterministic and re-iterable — every
// ForEach over the same source yields the same scenarios in the same
// order, which is what makes generator-fed campaigns reproducible — and
// they stream: a source never materializes its scenario set, so sweeping
// all m^n inputs of a domain costs one vector of memory, not m^n.
//
// Build sources with the builders (ScenariosOf, Inputs, ExhaustiveInputs,
// ConditionMembers, RandomInputs), shape them with the combinators
// (CrossFailures, FailureSchedules, CrossExecutors, Concat), and feed them
// to System.RunSource, Campaign.SubmitSource or a Sweep.
//
// Ownership: yielded scenarios remain valid after yield returns, but
// their Input vectors must be treated as read-only — a source may share
// one input buffer across the scenarios it derives from it.
type ScenarioSource interface {
	// ForEach yields the scenarios in order, stopping early when yield
	// returns false.
	ForEach(yield func(Scenario) bool)
	// Size returns the number of scenarios the source yields, when it is
	// known without iterating.
	Size() (int64, bool)
}

// funcSource adapts a yield function (plus an optional size) to
// ScenarioSource; every builder and combinator is one of these.
type funcSource struct {
	size  int64
	sized bool
	each  func(yield func(Scenario) bool)
	// ranged, when non-nil, yields only the scenarios with stream indices
	// in [lo, hi) — the seam shard and checkpoint ranges ride. Callers
	// guarantee 0 ≤ lo < hi; implementations seek instead of replaying
	// the prefix wherever the underlying stream allows it.
	ranged func(lo, hi int64, yield func(Scenario) bool)
}

func (s funcSource) ForEach(yield func(Scenario) bool) { s.each(yield) }
func (s funcSource) Size() (int64, bool)               { return s.size, s.sized }

// ScenariosOf wraps an explicit scenario list as a source.
func ScenariosOf(scs ...Scenario) ScenarioSource {
	return funcSource{
		size: int64(len(scs)), sized: true,
		each: func(yield func(Scenario) bool) {
			for i := range scs {
				if !yield(scs[i]) {
					return
				}
			}
		},
		ranged: func(lo, hi int64, yield func(Scenario) bool) {
			for i := lo; i < min(hi, int64(len(scs))); i++ {
				if !yield(scs[i]) {
					return
				}
			}
		},
	}
}

// Inputs wraps a list of input vectors as a source of failure-free
// scenarios; attach adversaries with CrossFailures or FailureSchedules.
func Inputs(inputs ...Vector) ScenarioSource {
	return funcSource{
		size: int64(len(inputs)), sized: true,
		each: func(yield func(Scenario) bool) {
			for _, in := range inputs {
				if !yield(Scenario{Input: in}) {
					return
				}
			}
		},
		ranged: func(lo, hi int64, yield func(Scenario) bool) {
			for i := lo; i < min(hi, int64(len(inputs))); i++ {
				if !yield(Scenario{Input: inputs[i]}) {
					return
				}
			}
		},
	}
}

// ExhaustiveInputs streams every full input vector of {1..m}^n in
// lexicographic order — all m^n of them — as failure-free scenarios. This
// is the proof-by-enumeration source: crossed with an adversary family it
// sweeps an entire scenario space without materializing it. Range shards
// of the stream seek the enumerator's cursor directly (vector.Enum.SeekTo),
// so shard i of a 10⁹-vector sweep starts in O(n), not O(i·10⁹/K).
func ExhaustiveInputs(n, m int) ScenarioSource {
	size, sized := powInt64(m, n)
	return funcSource{
		size: size, sized: sized,
		each: func(yield func(Scenario) bool) {
			e := vector.NewEnum(n, m)
			for v, ok := e.Next(); ok; v, ok = e.Next() {
				if !yield(Scenario{Input: v.Clone()}) {
					return
				}
			}
		},
		ranged: func(lo, hi int64, yield func(Scenario) bool) {
			e := vector.NewEnum(n, m)
			e.SeekTo(lo)
			for i := lo; i < hi; i++ {
				v, ok := e.Next()
				if !ok || !yield(Scenario{Input: v.Clone()}) {
					return
				}
			}
		},
	}
}

// ConditionMembers streams the condition's member vectors as failure-free
// scenarios, in the deterministic member order. Explicit conditions
// stream their stored members; implicit (max_ℓ/min_ℓ) conditions stream
// by filtering the {1..m}^n enumeration, practical at small n and m. The
// size is known for explicit conditions (their member count) and for
// max_ℓ/min_ℓ conditions (the Theorem-13 closed form NB(x,ℓ), when it
// fits in an int64).
func ConditionMembers(c Condition) ScenarioSource {
	size, sized := memberCount(c)
	return funcSource{size: size, sized: sized, each: func(yield func(Scenario) bool) {
		st := condition.NewStream(c)
		for v, ok := st.Next(); ok; v, ok = st.Next() {
			if !yield(Scenario{Input: v.Clone()}) {
				return
			}
		}
	}}
}

// memberCount returns the condition's cardinality when a closed form or
// stored count is available. min_ℓ conditions count like max_ℓ ones: the
// value mirror v ↦ m+1−v is a size-preserving bijection between them.
func memberCount(c Condition) (int64, bool) {
	switch cc := c.(type) {
	case *ExplicitCondition:
		return int64(cc.Size()), true
	case *CompiledCondition:
		return int64(cc.Size()), true
	case *MaxCondition:
		return nbInt64(cc.N(), cc.M(), cc.X(), cc.L())
	case *MinCondition:
		return nbInt64(cc.N(), cc.M(), cc.X(), cc.L())
	}
	return 0, false
}

func nbInt64(n, m, x, l int) (int64, bool) {
	nb, err := count.NB(n, m, x, l)
	if err != nil || !nb.IsInt64() {
		return 0, false
	}
	return nb.Int64(), true
}

// powInt64 returns m^n, or false on overflow or an empty domain.
func powInt64(m, n int) (int64, bool) {
	if n < 0 || m < 1 {
		return 0, true
	}
	size := int64(1)
	for i := 0; i < n; i++ {
		if size > math.MaxInt64/int64(m) {
			return 0, false
		}
		size *= int64(m)
	}
	return size, true
}

// RandomInputs streams count seeded uniform random input vectors over
// {1..m}^n as failure-free scenarios. The stream is deterministic: the
// same seed yields the same inputs, every time it is iterated. Like
// ExhaustiveInputs, a degenerate domain (n < 0 or m < 1) yields an empty
// stream.
func RandomInputs(seed int64, n, m, count int) ScenarioSource {
	if count < 0 || n < 0 || m < 1 {
		count = 0
	}
	return funcSource{
		size: int64(count), sized: true,
		each: func(yield func(Scenario) bool) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < count; i++ {
				in := make(Vector, n)
				for j := range in {
					in[j] = Value(1 + rng.Intn(m))
				}
				if !yield(Scenario{Input: in}) {
					return
				}
			}
		},
		ranged: func(lo, hi int64, yield func(Scenario) bool) {
			if hi > int64(count) {
				hi = int64(count)
			}
			if lo >= hi {
				return
			}
			// Fast-forward the seed stream past the first lo vectors (n
			// draws each) without building them, so a shard yields exactly
			// the bytes the unsharded stream would at the same indices.
			rng := rand.New(rand.NewSource(seed))
			for s := int64(0); s < lo*int64(n); s++ {
				rng.Intn(m)
			}
			for i := lo; i < hi; i++ {
				in := make(Vector, n)
				for j := range in {
					in[j] = Value(1 + rng.Intn(m))
				}
				if !yield(Scenario{Input: in}) {
					return
				}
			}
		},
	}
}

// crossSource is the shared core of the cross-product combinators: each
// source scenario is yielded k times, variant j produced by set. The
// product stream's range support splits on the outer axis — product index
// i maps to source index i/k and variant i mod k — so shards of a crossed
// sweep seek the underlying source instead of replaying it.
func crossSource(src ScenarioSource, k int, set func(sc Scenario, j int) Scenario) ScenarioSource {
	size, sized := scaled(src, k)
	fs := funcSource{size: size, sized: sized, each: func(yield func(Scenario) bool) {
		src.ForEach(func(sc Scenario) bool {
			for j := 0; j < k; j++ {
				if !yield(set(sc, j)) {
					return false
				}
			}
			return true
		})
	}}
	if k > 0 {
		fs.ranged = func(lo, hi int64, yield func(Scenario) bool) {
			i := (lo / int64(k)) * int64(k) // product index of the outer range's start
			forEachRange(src, lo/int64(k), (hi+int64(k)-1)/int64(k), func(sc Scenario) bool {
				for j := 0; j < k; j++ {
					if i >= hi {
						return false
					}
					if i >= lo && !yield(set(sc, j)) {
						return false
					}
					i++
				}
				return true
			})
		}
	}
	return fs
}

// CrossFailures takes the cross product of a source with an explicit
// failure-pattern list: each scenario is yielded once per pattern, with
// that pattern installed. The scenarios of one input share its Input
// buffer.
func CrossFailures(src ScenarioSource, fps ...FailurePattern) ScenarioSource {
	return crossSource(src, len(fps), func(sc Scenario, j int) Scenario {
		sc.FP = fps[j]
		return sc
	})
}

// FailureSchedules takes the cross product of a source with a failure
// family: each scenario is yielded once per family pattern. Families are
// index-deterministic (see the FailureFamily builders), so the product
// stream is too. The family's patterns are generated once, when the
// product source is built, not once per input scenario.
func FailureSchedules(src ScenarioSource, fam FailureFamily) ScenarioSource {
	fps := make([]FailurePattern, fam.Size())
	for i := range fps {
		fps[i] = fam.Pattern(i)
	}
	return CrossFailures(src, fps...)
}

// CrossExecutors takes the cross product of a source with an executor
// list: each scenario is yielded once per executor, with that executor
// installed as the scenario override.
func CrossExecutors(src ScenarioSource, execs ...Executor) ScenarioSource {
	return crossSource(src, len(execs), func(sc Scenario, j int) Scenario {
		sc.Executor = execs[j]
		return sc
	})
}

// Concat chains sources: all scenarios of the first, then the second, …
func Concat(srcs ...ScenarioSource) ScenarioSource {
	size, sized := int64(0), true
	for _, s := range srcs {
		n, ok := s.Size()
		if !ok || size > math.MaxInt64-n {
			size, sized = 0, false
			break
		}
		size += n
	}
	fs := funcSource{size: size, sized: sized, each: func(yield func(Scenario) bool) {
		for _, s := range srcs {
			stopped := false
			s.ForEach(func(sc Scenario) bool {
				if !yield(sc) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return
			}
		}
	}}
	if sized {
		fs.ranged = func(lo, hi int64, yield func(Scenario) bool) {
			off := int64(0)
			for _, s := range srcs {
				n, _ := s.Size()
				sLo, sHi := max(lo-off, 0), min(hi-off, n)
				if sLo < sHi {
					stopped := false
					forEachRange(s, sLo, sHi, func(sc Scenario) bool {
						if !yield(sc) {
							stopped = true
							return false
						}
						return true
					})
					if stopped {
						return
					}
				}
				off += n
				if off >= hi {
					return
				}
			}
		}
	}
	return fs
}

// scaled returns the source's size times k, unknown when the source's
// size is unknown or the product overflows int64.
func scaled(src ScenarioSource, k int) (int64, bool) {
	n, ok := src.Size()
	if !ok {
		return 0, false
	}
	if k != 0 && n > math.MaxInt64/int64(k) {
		return 0, false
	}
	return n * int64(k), true
}

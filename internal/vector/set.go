package vector

import "strings"

// Set is a sorted (ascending) set of distinct proposable values. The zero
// value is the empty set. All operations are non-destructive: they return
// new sets and never mutate the receiver, so sets can be shared freely.
type Set []Value

// SetOf builds a set from the given values, deduplicating and sorting.
func SetOf(vs ...Value) Set {
	var s Set
	for _, v := range vs {
		s = s.Add(v)
	}
	return s
}

// Add returns s ∪ {v}. Adding Bottom is a no-op: sets hold proposable
// values only.
func (s Set) Add(v Value) Set {
	if v == Bottom {
		return s
	}
	i := s.searchIdx(v)
	if i < len(s) && s[i] == v {
		return s
	}
	out := make(Set, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, v)
	out = append(out, s[i:]...)
	return out
}

func (s Set) searchIdx(v Value) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Has reports whether v ∈ s.
func (s Set) Has(v Value) bool {
	i := s.searchIdx(v)
	return i < len(s) && s[i] == v
}

// Len returns |s|.
func (s Set) Len() int { return len(s) }

// Empty reports whether s is the empty set.
func (s Set) Empty() bool { return len(s) == 0 }

// Max returns the greatest value of s, or Bottom if s is empty.
func (s Set) Max() Value {
	if len(s) == 0 {
		return Bottom
	}
	return s[len(s)-1]
}

// Min returns the smallest value of s, or Bottom if s is empty.
func (s Set) Min() Value {
	if len(s) == 0 {
		return Bottom
	}
	return s[0]
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Minus returns s \ t.
func (s Set) Minus(t Set) Set {
	var out Set
	for _, v := range s {
		if !t.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for _, v := range s {
		if !t.Has(v) {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same values.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// String renders the set as {a, b, c}.
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = v.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

package vector

import (
	"math/bits"
	"strings"
)

// MaxSetValue is the largest value a Set can hold. The experimental value
// domains of the paper are tiny (m ≤ 63 everywhere), so sets are
// represented as 64-bit masks; constructors of conditions over {1..m}^n
// reject m > MaxSetValue.
const MaxSetValue Value = 64

// Set is a set of distinct proposable values, represented as a bitmask:
// bit v−1 is set exactly when value v ∈ s. The zero value is the empty
// set. Sets are immutable values: every operation returns a new set and
// never mutates the receiver, so sets can be shared and copied freely
// (copying is a single word). Values must lie in 1..MaxSetValue.
type Set struct {
	bits uint64
}

// SetOf builds a set from the given values, deduplicating.
func SetOf(vs ...Value) Set {
	var s Set
	for _, v := range vs {
		s = s.Add(v)
	}
	return s
}

// setBit returns the mask bit of v, panicking when v is outside the
// representable domain. Bottom is handled by the callers.
func setBit(v Value) uint64 {
	if v < 1 || v > MaxSetValue {
		panic("vector: set value " + v.String() + " outside 1..64")
	}
	return 1 << (uint(v) - 1)
}

// Add returns s ∪ {v}. Adding Bottom is a no-op: sets hold proposable
// values only.
func (s Set) Add(v Value) Set {
	if v == Bottom {
		return s
	}
	return Set{s.bits | setBit(v)}
}

// Has reports whether v ∈ s.
func (s Set) Has(v Value) bool {
	if v < 1 || v > MaxSetValue {
		return false
	}
	return s.bits&(1<<(uint(v)-1)) != 0
}

// Len returns |s|.
func (s Set) Len() int { return bits.OnesCount64(s.bits) }

// Empty reports whether s is the empty set.
func (s Set) Empty() bool { return s.bits == 0 }

// Max returns the greatest value of s, or Bottom if s is empty.
func (s Set) Max() Value { return Value(bits.Len64(s.bits)) }

// Min returns the smallest value of s, or Bottom if s is empty.
func (s Set) Min() Value {
	if s.bits == 0 {
		return Bottom
	}
	return Value(bits.TrailingZeros64(s.bits) + 1)
}

// Clone returns an independent copy of s. Sets are immutable values, so
// this is the identity; it survives for compatibility with the previous
// slice-backed representation.
func (s Set) Clone() Set { return s }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return Set{s.bits & t.bits} }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return Set{s.bits | t.bits} }

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return Set{s.bits &^ t.bits} }

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s.bits&^t.bits == 0 }

// Equal reports whether s and t contain the same values. Sets are
// comparable, so s == t is equivalent.
func (s Set) Equal(t Set) bool { return s == t }

// TopN returns the min(n, |s|) greatest values of s.
func (s Set) TopN(n int) Set {
	for k := bits.OnesCount64(s.bits); k > n; k-- {
		s.bits &= s.bits - 1 // drop the smallest remaining value
	}
	return s
}

// BottomN returns the min(n, |s|) smallest values of s.
func (s Set) BottomN(n int) Set {
	for k := bits.OnesCount64(s.bits); k > n; k-- {
		s.bits &^= 1 << (bits.Len64(s.bits) - 1) // drop the greatest
	}
	return s
}

// ForEach calls fn on each value of s in ascending order, stopping early
// if fn returns false.
func (s Set) ForEach(fn func(Value) bool) {
	for b := s.bits; b != 0; b &= b - 1 {
		if !fn(Value(bits.TrailingZeros64(b) + 1)) {
			return
		}
	}
}

// ForEachDesc calls fn on each value of s in descending order, stopping
// early if fn returns false.
func (s Set) ForEachDesc(fn func(Value) bool) {
	for b := s.bits; b != 0; {
		top := bits.Len64(b) - 1
		if !fn(Value(top + 1)) {
			return
		}
		b &^= 1 << top
	}
}

// Values returns the values of s in ascending order as a fresh slice.
func (s Set) Values() []Value {
	out := make([]Value, 0, s.Len())
	s.ForEach(func(v Value) bool {
		out = append(out, v)
		return true
	})
	return out
}

// String renders the set as {a,b,c}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v Value) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(v.String())
		return true
	})
	b.WriteByte('}')
	return b.String()
}

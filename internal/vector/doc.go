// Package vector implements the input-vector algebra of Bonnet & Raynal,
// "Conditions for Set Agreement with an Application to Synchronous Systems"
// (Section 2.1): proposed values, input vectors, views with ⊥ entries,
// containment, Hamming and generalized distances, and intersecting vectors.
//
// Throughout, an input vector I has one entry per process; entry i holds the
// value proposed by process p_i, or Bottom (⊥) if p_i took no step. A vector
// with no Bottom entry is a (full) input vector; a vector with possible
// Bottom entries is a view, usually written J in the paper.
//
// Paper map:
//
//	Section 2.1   values, vectors, views, ≤ containment, #_a(I), val(I)
//	Section 2.2   d_H and the generalized distance d_G (Definition 1)
//	Section 6.2   OrderedViews — the containment chain of round-1 views
//
// Two representation choices carry the module's performance budget: the
// value domain is capped at 64 (MaxSetValue) so a value Set is one
// machine word with allocation-free operations, and Vector.Key64 packs
// small vectors into one uint64 map key. Enumeration (ForEach and the
// resumable Enum pull iterator) streams over a single reusable buffer.
package vector

package vector

// ForEach enumerates every full input vector of size n over the value
// domain {1..m} and calls fn on each. The callback receives a reusable
// buffer: it must Clone the vector if it retains it. Enumeration stops
// early if fn returns false. There are m^n such vectors.
func ForEach(n, m int, fn func(Vector) bool) {
	if n < 0 || m < 1 {
		return
	}
	cur := make(Vector, n)
	for i := range cur {
		cur[i] = 1
	}
	for {
		if !fn(cur) {
			return
		}
		// Odometer increment over {1..m}^n.
		i := n - 1
		for i >= 0 {
			if cur[i] < Value(m) {
				cur[i]++
				break
			}
			cur[i] = 1
			i--
		}
		if i < 0 {
			return
		}
	}
}

// ForEachCompletion enumerates every full input vector I over {1..m} with
// J ≤ I: the ⊥ entries of J range over all values, the non-⊥ entries are
// fixed. The callback receives a reusable buffer (Clone to retain).
// Enumeration stops early if fn returns false.
func ForEachCompletion(j Vector, m int, fn func(Vector) bool) {
	holes := make([]int, 0, len(j))
	cur := j.Clone()
	for i, v := range j {
		if v == Bottom {
			holes = append(holes, i)
			cur[i] = 1
		}
	}
	for {
		if !fn(cur) {
			return
		}
		h := len(holes) - 1
		for h >= 0 {
			if cur[holes[h]] < Value(m) {
				cur[holes[h]]++
				break
			}
			cur[holes[h]] = 1
			h--
		}
		if h < 0 {
			return
		}
	}
}

// ForEachView enumerates every view J ≤ I with at most maxBottoms entries
// erased (including I itself, with zero erased). The callback receives a
// reusable buffer (Clone to retain). Enumeration stops early if fn
// returns false. There are Σ_{b≤maxBottoms} C(n,b) such views.
func ForEachView(i Vector, maxBottoms int, fn func(Vector) bool) {
	n := len(i)
	if maxBottoms > n {
		maxBottoms = n
	}
	cur := i.Clone()
	var rec func(start, erased int) bool
	rec = func(start, erased int) bool {
		if !fn(cur) {
			return false
		}
		if erased == maxBottoms {
			return true
		}
		for k := start; k < n; k++ {
			saved := cur[k]
			cur[k] = Bottom
			ok := rec(k+1, erased+1)
			cur[k] = saved
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}

// OrderedViews returns the chain of views of I induced by the paper's
// ordered-send first round: prefix views I[0..p-1] followed by ⊥ entries,
// for p = from..n. Such views are totally ordered by containment, which is
// exactly the structure the Figure-2 algorithm relies on.
func OrderedViews(i Vector, from int) []Vector {
	n := len(i)
	if from < 0 {
		from = 0
	}
	out := make([]Vector, 0, n-from+1)
	for p := from; p <= n; p++ {
		v := New(n)
		copy(v[:p], i[:p])
		out = append(out, v)
	}
	return out
}

package vector

import "math"

// Enum is a resumable enumerator over the full vectors of {1..m}^n in
// lexicographic order. Unlike the callback-style ForEach it is a pull
// iterator: callers interleave Next with other work, suspend, and resume
// where they left off — the shape streaming scenario generators need.
// Resumption also works across processes: Pos is the serializable cursor
// and SeekTo repositions a fresh enumerator to it in O(n), which is what
// checkpointed and sharded campaigns ride. The zero Enum is empty; build
// one with NewEnum.
type Enum struct {
	n, m    int
	cur     Vector
	started bool
	done    bool
	pos     int64
}

// NewEnum returns an enumerator positioned before the first vector of
// {1..m}^n (there are m^n of them). A non-positive m or negative n yields
// an empty enumeration.
func NewEnum(n, m int) *Enum {
	e := &Enum{n: n, m: m}
	if n < 0 || m < 1 {
		e.done = true
	}
	return e
}

// Next advances to the next vector and returns it, or false when the
// enumeration is exhausted. The returned vector is the enumerator's
// reusable buffer: Clone it to retain it past the following Next call.
func (e *Enum) Next() (Vector, bool) {
	if e.done {
		return nil, false
	}
	if !e.started {
		if e.n < 0 || e.m < 1 { // the zero Enum is empty
			e.done = true
			return nil, false
		}
		e.started = true
		e.cur = make(Vector, e.n)
		for i := range e.cur {
			e.cur[i] = 1
		}
		e.pos++
		return e.cur, true
	}
	// Odometer increment over {1..m}^n.
	i := e.n - 1
	for i >= 0 {
		if e.cur[i] < Value(e.m) {
			e.cur[i]++
			break
		}
		e.cur[i] = 1
		i--
	}
	if i < 0 {
		e.done = true
		return nil, false
	}
	e.pos++
	return e.cur, true
}

// Reset rewinds the enumerator to before the first vector.
func (e *Enum) Reset() {
	e.started = false
	e.done = e.n < 0 || e.m < 1
	e.pos = 0
}

// Pos returns the number of vectors yielded so far — the enumeration's
// serializable cursor. NewEnum(n, m) followed by SeekTo(pos) positions a
// fresh enumerator (in this or any later process) exactly where an
// enumeration that had yielded pos vectors stands, so Pos/SeekTo are the
// suspend/resume pair of a persisted exhaustive sweep.
func (e *Enum) Pos() int64 { return e.pos }

// SeekTo repositions the enumerator so that the next Next call yields the
// vector with 0-based lexicographic index idx, in O(n) time: the digits
// of idx in base m are written straight into the odometer buffer, so no
// prefix of the enumeration is replayed. A non-positive idx rewinds to
// the start; idx ≥ m^n exhausts the enumeration with the cursor parked
// at m^n. The n=0 domain has exactly one (empty) vector and m=1 domains
// exactly one all-ones vector, so for both, SeekTo(0) is the only position
// with anything left to yield.
func (e *Enum) SeekTo(idx int64) {
	e.Reset()
	if idx <= 0 || e.done {
		return
	}
	// Park the odometer on vector idx−1; the next increment yields idx.
	if len(e.cur) != e.n {
		e.cur = make(Vector, e.n)
	}
	rem := idx - 1
	for i := e.n - 1; i >= 0; i-- {
		e.cur[i] = Value(rem%int64(e.m)) + 1
		rem /= int64(e.m)
	}
	if rem > 0 { // idx−1 ≥ m^n: past the end
		e.done = true
		e.pos = e.size()
		return
	}
	e.started = true
	e.pos = idx
}

// size returns m^n, saturating at MaxInt64 (callers only compare it
// against in-range cursors, which saturation preserves).
func (e *Enum) size() int64 {
	size := int64(1)
	for i := 0; i < e.n; i++ {
		if size > math.MaxInt64/int64(e.m) {
			return math.MaxInt64
		}
		size *= int64(e.m)
	}
	return size
}

// ForEach enumerates every full input vector of size n over the value
// domain {1..m} and calls fn on each. The callback receives a reusable
// buffer: it must Clone the vector if it retains it. Enumeration stops
// early if fn returns false. There are m^n such vectors.
func ForEach(n, m int, fn func(Vector) bool) {
	e := NewEnum(n, m)
	for v, ok := e.Next(); ok; v, ok = e.Next() {
		if !fn(v) {
			return
		}
	}
}

// ForEachCompletion enumerates every full input vector I over {1..m} with
// J ≤ I: the ⊥ entries of J range over all values, the non-⊥ entries are
// fixed. The callback receives a reusable buffer (Clone to retain).
// Enumeration stops early if fn returns false.
func ForEachCompletion(j Vector, m int, fn func(Vector) bool) {
	holes := make([]int, 0, len(j))
	cur := j.Clone()
	for i, v := range j {
		if v == Bottom {
			holes = append(holes, i)
			cur[i] = 1
		}
	}
	for {
		if !fn(cur) {
			return
		}
		h := len(holes) - 1
		for h >= 0 {
			if cur[holes[h]] < Value(m) {
				cur[holes[h]]++
				break
			}
			cur[holes[h]] = 1
			h--
		}
		if h < 0 {
			return
		}
	}
}

// ForEachView enumerates every view J ≤ I with at most maxBottoms entries
// erased (including I itself, with zero erased). The callback receives a
// reusable buffer (Clone to retain). Enumeration stops early if fn
// returns false. There are Σ_{b≤maxBottoms} C(n,b) such views.
func ForEachView(i Vector, maxBottoms int, fn func(Vector) bool) {
	n := len(i)
	if maxBottoms > n {
		maxBottoms = n
	}
	cur := i.Clone()
	var rec func(start, erased int) bool
	rec = func(start, erased int) bool {
		if !fn(cur) {
			return false
		}
		if erased == maxBottoms {
			return true
		}
		for k := start; k < n; k++ {
			saved := cur[k]
			cur[k] = Bottom
			ok := rec(k+1, erased+1)
			cur[k] = saved
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}

// OrderedViews returns the chain of views of I induced by the paper's
// ordered-send first round: prefix views I[0..p-1] followed by ⊥ entries,
// for p = from..n. Such views are totally ordered by containment, which is
// exactly the structure the Figure-2 algorithm relies on.
func OrderedViews(i Vector, from int) []Vector {
	n := len(i)
	if from < 0 {
		from = 0
	}
	out := make([]Vector, 0, n-from+1)
	for p := from; p <= n; p++ {
		v := New(n)
		copy(v[:p], i[:p])
		out = append(out, v)
	}
	return out
}

package vector

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	if got := Bottom.String(); got != "⊥" {
		t.Errorf("Bottom.String() = %q, want ⊥", got)
	}
	if got := Value(7).String(); got != "7" {
		t.Errorf("Value(7).String() = %q, want 7", got)
	}
	if Bottom.IsProposable() {
		t.Error("Bottom must not be proposable")
	}
	if !Value(1).IsProposable() {
		t.Error("Value(1) must be proposable")
	}
}

func TestCounts(t *testing.T) {
	v := OfInts(1, 2, 2, 0, 3, 2)
	tests := []struct {
		name string
		got  int
		want int
	}{
		{"count 2", v.Count(2), 3},
		{"count 1", v.Count(1), 1},
		{"count absent", v.Count(9), 0},
		{"bottoms", v.BottomCount(), 1},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, tc.got, tc.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	tests := []struct {
		name     string
		v        Vector
		max, min Value
	}{
		{"plain", OfInts(3, 1, 4, 1, 5), 5, 1},
		{"with bottoms", OfInts(0, 2, 0, 7), 7, 2},
		{"all bottom", OfInts(0, 0), Bottom, Bottom},
		{"empty", Vector{}, Bottom, Bottom},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.v.Max(); got != tc.max {
				t.Errorf("Max() = %v, want %v", got, tc.max)
			}
			if got := tc.v.Min(); got != tc.min {
				t.Errorf("Min() = %v, want %v", got, tc.min)
			}
		})
	}
}

func TestVals(t *testing.T) {
	v := OfInts(3, 1, 0, 3, 2)
	want := SetOf(1, 2, 3)
	if got := v.Vals(); !got.Equal(want) {
		t.Errorf("Vals() = %v, want %v", got, want)
	}
	if got := OfInts(0, 0).Vals(); !got.Empty() {
		t.Errorf("Vals of all-⊥ = %v, want empty", got)
	}
}

func TestContainedIn(t *testing.T) {
	i := OfInts(1, 2, 3, 4)
	tests := []struct {
		name string
		j    Vector
		want bool
	}{
		{"itself", i, true},
		{"prefix view", OfInts(1, 2, 0, 0), true},
		{"scattered view", OfInts(0, 2, 0, 4), true},
		{"all bottom", OfInts(0, 0, 0, 0), true},
		{"mismatch", OfInts(1, 9, 0, 0), false},
		{"length mismatch", OfInts(1, 2, 3), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.j.ContainedIn(i); got != tc.want {
				t.Errorf("ContainedIn = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestHamming(t *testing.T) {
	a := OfInts(1, 2, 3, 4)
	b := OfInts(1, 9, 3, 8)
	if got := Hamming(a, b); got != 2 {
		t.Errorf("Hamming = %d, want 2", got)
	}
	if got := Hamming(a, a); got != 0 {
		t.Errorf("Hamming(a,a) = %d, want 0", got)
	}
}

// TestGeneralizedDistancePaperExample checks the worked example of Section
// 2.1: d_G([a a e b b], [a a e c c], [a f e b c]) = 3 (entries 2, 4, 5
// differ somewhere). With a=1, b=2, c=3, e=5, f=6.
func TestGeneralizedDistancePaperExample(t *testing.T) {
	i1 := OfInts(1, 1, 5, 2, 2)
	i2 := OfInts(1, 1, 5, 3, 3)
	i3 := OfInts(1, 6, 5, 2, 3)
	if got := GeneralizedDistance(i1, i2, i3); got != 3 {
		t.Errorf("d_G = %d, want 3", got)
	}
	// On two vectors d_G is the Hamming distance.
	if got, want := GeneralizedDistance(i1, i2), Hamming(i1, i2); got != want {
		t.Errorf("d_G on pair = %d, want Hamming %d", got, want)
	}
	if got := GeneralizedDistance(i1); got != 0 {
		t.Errorf("d_G of singleton = %d, want 0", got)
	}
}

func TestIntersect(t *testing.T) {
	i1 := OfInts(1, 1, 5, 2, 2)
	i2 := OfInts(1, 1, 5, 3, 3)
	i3 := OfInts(1, 6, 5, 2, 3)
	got := Intersect(i1, i2, i3)
	want := OfInts(1, 0, 5, 0, 0)
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	// |non-⊥ entries of ⊓| = n − d_G.
	if n := len(i1) - got.BottomCount(); n != len(i1)-GeneralizedDistance(i1, i2, i3) {
		t.Errorf("intersecting vector has %d entries, want n-d_G", n)
	}
}

func TestMassOf(t *testing.T) {
	v := OfInts(1, 2, 2, 3, 0)
	if got := v.MassOf(SetOf(2, 3)); got != 3 {
		t.Errorf("MassOf({2,3}) = %d, want 3", got)
	}
	if got := v.MassOf(Set{}); got != 0 {
		t.Errorf("MassOf(∅) = %d, want 0", got)
	}
}

func TestTopLBottomL(t *testing.T) {
	v := OfInts(4, 1, 2, 4, 7)
	tests := []struct {
		l   int
		top Set
		bot Set
	}{
		{1, SetOf(7), SetOf(1)},
		{2, SetOf(4, 7), SetOf(1, 2)},
		{4, SetOf(1, 2, 4, 7), SetOf(1, 2, 4, 7)},
		{9, SetOf(1, 2, 4, 7), SetOf(1, 2, 4, 7)},
	}
	for _, tc := range tests {
		if got := v.TopL(tc.l); !got.Equal(tc.top) {
			t.Errorf("TopL(%d) = %v, want %v", tc.l, got, tc.top)
		}
		if got := v.BottomL(tc.l); !got.Equal(tc.bot) {
			t.Errorf("BottomL(%d) = %v, want %v", tc.l, got, tc.bot)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	v := OfInts(1, 2, 3)
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestKeyDistinct(t *testing.T) {
	// Key must distinguish [1 12] from [11 2].
	a := OfInts(1, 12)
	b := OfInts(11, 2)
	if a.Key() == b.Key() {
		t.Errorf("Key collision: %q", a.Key())
	}
}

func TestStringRendering(t *testing.T) {
	v := OfInts(1, 0, 3)
	if got := v.String(); got != "[1 ⊥ 3]" {
		t.Errorf("String() = %q", got)
	}
}

func randomVector(r *rand.Rand, n, m int, bottoms bool) Vector {
	v := New(n)
	for i := range v {
		if bottoms && r.Intn(4) == 0 {
			v[i] = Bottom
		} else {
			v[i] = Value(1 + r.Intn(m))
		}
	}
	return v
}

// Property: d_G(vs) equals the number of ⊥ entries Intersect introduces on
// full vectors.
func TestPropIntersectDistanceAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(8)
		z := 1 + r.Intn(4)
		vs := make([]Vector, z)
		for i := range vs {
			vs[i] = randomVector(r, n, 4, false)
		}
		inter := Intersect(vs...)
		if got, want := inter.BottomCount(), GeneralizedDistance(vs...); got != want {
			t.Fatalf("⊓ bottoms = %d, d_G = %d for %v", got, want, vs)
		}
		for _, v := range vs {
			if !inter.ContainedIn(v) {
				t.Fatalf("⊓ %v not contained in %v", inter, v)
			}
		}
	}
}

// Property: d_G is monotone — adding a vector cannot decrease it, and it is
// bounded by the sum of pairwise Hamming distances to the first vector.
func TestPropGeneralizedDistanceMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(8)
		a := randomVector(r, n, 3, false)
		b := randomVector(r, n, 3, false)
		c := randomVector(r, n, 3, false)
		dab := GeneralizedDistance(a, b)
		dabc := GeneralizedDistance(a, b, c)
		if dabc < dab {
			t.Fatalf("d_G decreased: %d -> %d", dab, dabc)
		}
		if dabc > dab+Hamming(a, c) {
			t.Fatalf("d_G(a,b,c)=%d exceeds d_G(a,b)+d_H(a,c)=%d", dabc, dab+Hamming(a, c))
		}
	}
}

// Property: containment is a partial order and Intersect is its meet lower
// bound.
func TestPropContainmentPartialOrder(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		i := randomVector(r, n, 4, false)
		j := i.Clone()
		// Erase a random subset: j ≤ i must hold.
		for k := range j {
			if r.Intn(2) == 0 {
				j[k] = Bottom
			}
		}
		if !j.ContainedIn(i) {
			return false
		}
		// Reflexivity and antisymmetry on the pair.
		if !i.ContainedIn(i) || !j.ContainedIn(j) {
			return false
		}
		if i.ContainedIn(j) && !i.Equal(j) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSetOps(t *testing.T) {
	a := SetOf(3, 1, 2, 3) // dedup + sort
	if !a.Equal(SetOf(1, 2, 3)) {
		t.Errorf("SetOf dedup failed: %v", a)
	}
	b := SetOf(2, 3, 4)
	if got := a.Intersect(b); !got.Equal(SetOf(2, 3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(SetOf(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(SetOf(1)) {
		t.Errorf("Minus = %v", got)
	}
	if !SetOf(1, 2).SubsetOf(a) || a.SubsetOf(SetOf(1, 2)) {
		t.Error("SubsetOf wrong")
	}
	if a.Max() != 3 || a.Min() != 1 {
		t.Error("Max/Min wrong")
	}
	var empty Set
	if empty.Max() != Bottom || empty.Min() != Bottom || !empty.Empty() {
		t.Error("empty-set extrema wrong")
	}
	if got := SetOf(1, 2).String(); got != "{1,2}" {
		t.Errorf("Set.String() = %q", got)
	}
}

func TestSetAddBottomNoop(t *testing.T) {
	s := SetOf(1).Add(Bottom)
	if !s.Equal(SetOf(1)) {
		t.Errorf("adding ⊥ changed set: %v", s)
	}
}

func TestSetImmutability(t *testing.T) {
	a := SetOf(1, 3)
	b := a.Add(2)
	if !a.Equal(SetOf(1, 3)) {
		t.Errorf("Add mutated receiver: %v", a)
	}
	if !b.Equal(SetOf(1, 2, 3)) {
		t.Errorf("Add result wrong: %v", b)
	}
}

// Property: set operations agree with a map-based model.
func TestPropSetModel(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		model := map[Value]bool{}
		var s Set
		for op := 0; op < 20; op++ {
			v := Value(1 + r.Intn(6))
			model[v] = true
			s = s.Add(v)
		}
		if s.Len() != len(model) {
			t.Fatalf("size mismatch: set %d, model %d", s.Len(), len(model))
		}
		for v := range model {
			if !s.Has(v) {
				t.Fatalf("missing %v", v)
			}
		}
		vals := s.Values()
		for i := 1; i < len(vals); i++ {
			if vals[i-1] >= vals[i] {
				t.Fatalf("not sorted: %v", s)
			}
		}
	}
}

func TestForEachCountsAllVectors(t *testing.T) {
	tests := []struct {
		n, m, want int
	}{
		{0, 3, 1}, {1, 3, 3}, {2, 3, 9}, {3, 2, 8}, {4, 3, 81},
	}
	for _, tc := range tests {
		count := 0
		seen := map[string]bool{}
		ForEach(tc.n, tc.m, func(v Vector) bool {
			count++
			seen[v.Key()] = true
			if !v.IsFull() {
				t.Fatalf("ForEach produced non-full vector %v", v)
			}
			return true
		})
		if count != tc.want || len(seen) != tc.want {
			t.Errorf("ForEach(%d,%d): %d vectors (%d distinct), want %d",
				tc.n, tc.m, count, len(seen), tc.want)
		}
	}
}

func TestEnumResumableAndEdgeCases(t *testing.T) {
	// The zero Enum is empty, as documented.
	var zero Enum
	if v, ok := zero.Next(); ok {
		t.Fatalf("zero Enum yielded %v", v)
	}
	// Degenerate domains are empty; n=0 over a non-empty domain yields
	// exactly the one empty vector (m^0 = 1).
	if _, ok := NewEnum(2, 0).Next(); ok {
		t.Fatal("m=0 enumeration yielded a vector")
	}
	if v, ok := NewEnum(0, 3).Next(); !ok || len(v) != 0 {
		t.Fatalf("n=0 first yield = %v, %v; want empty vector, true", v, ok)
	}
	// Suspending and resuming mid-stream matches ForEach, and Reset
	// rewinds to the start.
	var viaForEach []string
	ForEach(3, 2, func(v Vector) bool {
		viaForEach = append(viaForEach, v.Key())
		return true
	})
	e := NewEnum(3, 2)
	var viaEnum []string
	for i := 0; i < 3; i++ { // pull a prefix, then keep going
		v, ok := e.Next()
		if !ok {
			t.Fatal("enumeration ended early")
		}
		viaEnum = append(viaEnum, v.Key())
	}
	for v, ok := e.Next(); ok; v, ok = e.Next() {
		viaEnum = append(viaEnum, v.Key())
	}
	if !reflect.DeepEqual(viaEnum, viaForEach) {
		t.Fatalf("Enum stream %v != ForEach stream %v", viaEnum, viaForEach)
	}
	e.Reset()
	if v, ok := e.Next(); !ok || v.Key() != viaForEach[0] {
		t.Fatalf("after Reset: %v, %v; want %s, true", v, ok, viaForEach[0])
	}
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	ForEach(3, 3, func(Vector) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d, want 5", count)
	}
}

func TestForEachCompletion(t *testing.T) {
	j := OfInts(1, 0, 2, 0)
	count := 0
	ForEachCompletion(j, 3, func(i Vector) bool {
		count++
		if !j.ContainedIn(i) || !i.IsFull() {
			t.Fatalf("bad completion %v of %v", i, j)
		}
		return true
	})
	if count != 9 { // 3^2 holes
		t.Errorf("completions = %d, want 9", count)
	}
	// A full vector has exactly one completion: itself.
	full := OfInts(1, 2)
	count = 0
	ForEachCompletion(full, 5, func(i Vector) bool {
		count++
		if !i.Equal(full) {
			t.Fatalf("completion of full vector = %v", i)
		}
		return true
	})
	if count != 1 {
		t.Errorf("completions of full vector = %d, want 1", count)
	}
}

func TestForEachView(t *testing.T) {
	i := OfInts(1, 2, 3)
	count := 0
	ForEachView(i, 2, func(j Vector) bool {
		count++
		if !j.ContainedIn(i) {
			t.Fatalf("view %v not ≤ %v", j, i)
		}
		if j.BottomCount() > 2 {
			t.Fatalf("view %v has too many ⊥", j)
		}
		return true
	})
	want := 1 + 3 + 3 // C(3,0)+C(3,1)+C(3,2)
	if count != want {
		t.Errorf("views = %d, want %d", count, want)
	}
}

func TestOrderedViews(t *testing.T) {
	i := OfInts(5, 6, 7)
	views := OrderedViews(i, 0)
	if len(views) != 4 {
		t.Fatalf("got %d views, want 4", len(views))
	}
	for k := 1; k < len(views); k++ {
		if !views[k-1].ContainedIn(views[k]) {
			t.Errorf("views not containment-ordered at %d: %v vs %v", k, views[k-1], views[k])
		}
	}
	if !views[len(views)-1].Equal(i) {
		t.Errorf("last view %v != full vector", views[len(views)-1])
	}
}

// TestEnumSeekSerializedResume pins the cross-process resume contract:
// for every cut position of every domain — the m=1 and n=0 edge cases
// included — NewEnum + SeekTo(pos) yields exactly the suffix a live
// enumerator that had yielded pos vectors would, and Pos round-trips
// through the cut.
func TestEnumSeekSerializedResume(t *testing.T) {
	domains := []struct{ n, m int }{
		{3, 2}, {2, 3}, {4, 1}, {1, 1}, {0, 3}, {0, 1}, {1, 5},
	}
	for _, d := range domains {
		var full []string
		ForEach(d.n, d.m, func(v Vector) bool {
			full = append(full, v.Key())
			return true
		})
		for pos := 0; pos <= len(full); pos++ {
			// The "dying" process: yield pos vectors, then persist Pos.
			live := NewEnum(d.n, d.m)
			for i := 0; i < pos; i++ {
				if _, ok := live.Next(); !ok {
					t.Fatalf("(%d,%d) stream ended at %d < %d", d.n, d.m, i, pos)
				}
			}
			if got := live.Pos(); got != int64(pos) {
				t.Fatalf("(%d,%d) Pos() = %d after %d yields", d.n, d.m, got, pos)
			}
			// The "fresh" process: seek to the persisted cursor and drain.
			resumed := NewEnum(d.n, d.m)
			resumed.SeekTo(int64(pos))
			if got := resumed.Pos(); got != int64(pos) {
				t.Fatalf("(%d,%d) Pos() = %d after SeekTo(%d)", d.n, d.m, got, pos)
			}
			var suffix []string
			for v, ok := resumed.Next(); ok; v, ok = resumed.Next() {
				suffix = append(suffix, v.Key())
			}
			if want := full[pos:]; !reflect.DeepEqual(suffix, append([]string(nil), want...)) {
				t.Fatalf("(%d,%d) SeekTo(%d) suffix = %v, want %v", d.n, d.m, pos, suffix, want)
			}
		}
	}
}

// TestEnumSeekBeyondAndRewind covers the cursor's boundary semantics:
// seeking past the end exhausts the enumeration with the cursor parked
// at m^n, negative or zero seeks rewind, and empty domains stay empty.
func TestEnumSeekBeyondAndRewind(t *testing.T) {
	e := NewEnum(2, 3) // 9 vectors
	e.SeekTo(9)
	if v, ok := e.Next(); ok {
		t.Fatalf("SeekTo(size) then Next yielded %v", v)
	}
	if e.Pos() != 9 {
		t.Fatalf("Pos() = %d after seeking past the end, want 9", e.Pos())
	}
	e.SeekTo(1 << 40)
	if _, ok := e.Next(); ok || e.Pos() != 9 {
		t.Fatalf("far overshoot: Pos() = %d, want parked at 9", e.Pos())
	}
	// Rewind after exhaustion.
	e.SeekTo(0)
	if v, ok := e.Next(); !ok || !v.Equal(OfInts(1, 1)) {
		t.Fatalf("SeekTo(0) then Next = %v, %v; want first vector", v, ok)
	}
	e.SeekTo(-5)
	if v, ok := e.Next(); !ok || !v.Equal(OfInts(1, 1)) {
		t.Fatalf("negative seek then Next = %v, %v; want first vector", v, ok)
	}
	// Degenerate domains remain empty wherever the cursor points.
	empty := NewEnum(2, 0)
	empty.SeekTo(3)
	if _, ok := empty.Next(); ok {
		t.Fatal("empty domain yielded after SeekTo")
	}
}

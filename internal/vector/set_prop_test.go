package vector

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet is the pre-bitset reference implementation of Set: a sorted slice
// of distinct values. The property tests below drive it in lockstep with
// the bitmask Set over randomized inputs to pin the representation change.
type refSet []Value

func (r refSet) add(v Value) refSet {
	if v == Bottom {
		return r
	}
	i := sort.Search(len(r), func(k int) bool { return r[k] >= v })
	if i < len(r) && r[i] == v {
		return r
	}
	out := make(refSet, 0, len(r)+1)
	out = append(out, r[:i]...)
	out = append(out, v)
	return append(out, r[i:]...)
}

func (r refSet) has(v Value) bool {
	i := sort.Search(len(r), func(k int) bool { return r[k] >= v })
	return i < len(r) && r[i] == v
}

func (r refSet) intersect(t refSet) refSet {
	var out refSet
	for _, v := range r {
		if t.has(v) {
			out = append(out, v)
		}
	}
	return out
}

func (r refSet) union(t refSet) refSet {
	out := append(refSet{}, r...)
	for _, v := range t {
		out = out.add(v)
	}
	return out
}

func (r refSet) minus(t refSet) refSet {
	var out refSet
	for _, v := range r {
		if !t.has(v) {
			out = append(out, v)
		}
	}
	return out
}

func (r refSet) subsetOf(t refSet) bool {
	for _, v := range r {
		if !t.has(v) {
			return false
		}
	}
	return true
}

func (r refSet) topL(l int) refSet {
	if len(r) <= l {
		return r
	}
	return r[len(r)-l:]
}

func (r refSet) bottomL(l int) refSet {
	if len(r) <= l {
		return r
	}
	return r[:l]
}

func (r refSet) equalTo(s Set) bool {
	vals := s.Values()
	if len(vals) != len(r) {
		return false
	}
	for i := range r {
		if r[i] != vals[i] {
			return false
		}
	}
	return true
}

func randSetPair(r *rand.Rand, m int) (Set, refSet) {
	var s Set
	var ref refSet
	for k := r.Intn(10); k > 0; k-- {
		v := Value(1 + r.Intn(m))
		s = s.Add(v)
		ref = ref.add(v)
	}
	return s, ref
}

// TestPropSetAgainstReference drives the bitmask Set and the reference
// slice implementation through Add/Has/Intersect/Union/Minus/SubsetOf and
// the extrema over randomized inputs, including values near the 64-value
// domain boundary.
func TestPropSetAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		m := 1 + r.Intn(int(MaxSetValue))
		a, refA := randSetPair(r, m)
		b, refB := randSetPair(r, m)

		if !refA.equalTo(a) || !refB.equalTo(b) {
			t.Fatalf("construction diverged: %v vs %v, %v vs %v", a, refA, b, refB)
		}
		if !refA.intersect(refB).equalTo(a.Intersect(b)) {
			t.Fatalf("Intersect(%v, %v) = %v, reference %v", a, b, a.Intersect(b), refA.intersect(refB))
		}
		if !refA.union(refB).equalTo(a.Union(b)) {
			t.Fatalf("Union(%v, %v) = %v, reference %v", a, b, a.Union(b), refA.union(refB))
		}
		if !refA.minus(refB).equalTo(a.Minus(b)) {
			t.Fatalf("Minus(%v, %v) = %v, reference %v", a, b, a.Minus(b), refA.minus(refB))
		}
		if got, want := a.SubsetOf(b), refA.subsetOf(refB); got != want {
			t.Fatalf("SubsetOf(%v, %v) = %v, reference %v", a, b, got, want)
		}
		probe := Value(1 + r.Intn(m))
		if got, want := a.Has(probe), refA.has(probe); got != want {
			t.Fatalf("Has(%v, %v) = %v, reference %v", a, probe, got, want)
		}
		if a.Len() != len(refA) {
			t.Fatalf("Len(%v) = %d, reference %d", a, a.Len(), len(refA))
		}
		if len(refA) > 0 {
			if a.Max() != refA[len(refA)-1] || a.Min() != refA[0] {
				t.Fatalf("extrema of %v: (%v,%v), reference (%v,%v)",
					a, a.Min(), a.Max(), refA[0], refA[len(refA)-1])
			}
		} else if a.Max() != Bottom || a.Min() != Bottom {
			t.Fatalf("extrema of empty set: (%v,%v)", a.Min(), a.Max())
		}
	}
}

// TestPropTopLBottomLAgainstReference pins max_ℓ/min_ℓ — the recognizing
// functions every theorem builds on — against the reference slicing.
func TestPropTopLBottomLAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(12)
		m := 1 + r.Intn(int(MaxSetValue))
		v := New(n)
		var ref refSet
		for i := range v {
			if r.Intn(5) == 0 {
				v[i] = Bottom
				continue
			}
			v[i] = Value(1 + r.Intn(m))
			ref = ref.add(v[i])
		}
		l := r.Intn(5)
		if !ref.equalTo(v.Vals()) {
			t.Fatalf("Vals(%v) = %v, reference %v", v, v.Vals(), ref)
		}
		if !ref.topL(l).equalTo(v.TopL(l)) {
			t.Fatalf("TopL(%v, %d) = %v, reference %v", v, l, v.TopL(l), ref.topL(l))
		}
		if !ref.bottomL(l).equalTo(v.BottomL(l)) {
			t.Fatalf("BottomL(%v, %d) = %v, reference %v", v, l, v.BottomL(l), ref.bottomL(l))
		}
	}
}

// TestKeyInjective checks both Key encodings (packed bytes and the tagged
// decimal fallback) against each other for collisions across a randomized
// vector population that straddles the fast-path boundary.
func TestKeyInjective(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	seen := map[string]Vector{}
	seen64 := map[uint64]Vector{}
	for trial := 0; trial < 5000; trial++ {
		n := 1 + r.Intn(6)
		v := New(n)
		for i := range v {
			v[i] = Value(r.Intn(200)) // some entries force the fallback
		}
		key := v.Key()
		if prior, ok := seen[key]; ok && !prior.Equal(v) {
			t.Fatalf("Key collision %q: %v vs %v", key, prior, v)
		}
		seen[key] = v.Clone()
		if k64, ok := v.Key64(); ok {
			if prior, ok := seen64[k64]; ok && !prior.Equal(v) {
				t.Fatalf("Key64 collision %d: %v vs %v", k64, prior, v)
			}
			seen64[k64] = v.Clone()
		}
	}
}

var (
	allocSinkSet Set
	allocSinkInt int
)

// TestAllocFreeKernels pins the hot vector kernels at zero allocations.
func TestAllocFreeKernels(t *testing.T) {
	v := OfInts(4, 1, 0, 4, 7, 2, 2, 9)
	s := SetOf(1, 2, 7)
	u := SetOf(2, 7, 9)
	checks := []struct {
		name string
		fn   func()
	}{
		{"Vals", func() { allocSinkSet = v.Vals() }},
		{"MassOf", func() { allocSinkInt = v.MassOf(s) }},
		{"Set.Intersect", func() { allocSinkSet = s.Intersect(u) }},
		{"TopL", func() { allocSinkSet = v.TopL(2) }},
		{"BottomL", func() { allocSinkSet = v.BottomL(2) }},
	}
	for _, c := range checks {
		if avg := testing.AllocsPerRun(200, c.fn); avg != 0 {
			t.Errorf("%s allocates %.1f times per run, want 0", c.name, avg)
		}
	}
}

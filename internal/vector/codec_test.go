package vector

import (
	"math/rand"
	"testing"
)

// TestDecodeKey64RoundTrip pins Key64 → DecodeKey64 → Key64 as the
// identity over randomized packable vectors, including ⊥ entries and the
// empty vector.
func TestDecodeKey64RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(11) // 0..10, the packable lengths
		v := make(Vector, n)
		for i := range v {
			v[i] = Value(rng.Intn(64)) // 0..63, the packable values
		}
		key, ok := v.Key64()
		if !ok {
			t.Fatalf("Key64(%v) not packable", v)
		}
		got, ok := DecodeKey64(key, nil)
		if !ok {
			t.Fatalf("DecodeKey64(%#x) rejected a valid key", key)
		}
		if !got.Equal(v) {
			t.Fatalf("DecodeKey64(Key64(%v)) = %v", v, got)
		}
		key2, ok := got.Key64()
		if !ok || key2 != key {
			t.Fatalf("re-encode of %v: key %#x, want %#x", got, key2, key)
		}
	}
}

// TestDecodeKey64Appends checks the append-to-dst contract.
func TestDecodeKey64Appends(t *testing.T) {
	v := Of(1, 0, 63)
	key, _ := v.Key64()
	dst := Of(9, 9)
	out, ok := DecodeKey64(key, dst)
	if !ok {
		t.Fatalf("DecodeKey64 rejected %#x", key)
	}
	if want := Of(9, 9, 1, 0, 63); !out.Equal(want) {
		t.Fatalf("DecodeKey64 appended %v, want %v", out, want)
	}
}

// TestDecodeKey64Rejects checks malformed keys: zero (no sentinel) and bit
// lengths that are not 1 (mod 6).
func TestDecodeKey64Rejects(t *testing.T) {
	for _, key := range []uint64{0, 2, 3, 1 << 1, 1 << 5, 1<<6 | 1<<63} {
		if _, ok := DecodeKey64(key, nil); ok {
			t.Errorf("DecodeKey64(%#x) accepted a malformed key", key)
		}
	}
	// The empty vector's key (just the sentinel) is valid and decodes to
	// an empty vector.
	if out, ok := DecodeKey64(1, nil); !ok || len(out) != 0 {
		t.Errorf("DecodeKey64(1) = %v, %v; want empty, true", out, ok)
	}
}

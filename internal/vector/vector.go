package vector

import (
	"math/bits"
	"strconv"
	"strings"
)

// Value is a proposed value. The paper's value domain V is modeled as the
// integers 1..m; Bottom (⊥) is smaller than every proposable value, which
// matches the paper's convention that ⊥ < a for every a ∈ V and lets max()
// treat ⊥ as the identity.
type Value int

// Bottom is the default value ⊥: it cannot be proposed, and it marks the
// entries of a view whose process has not been heard from.
const Bottom Value = 0

// IsProposable reports whether v belongs to the value domain V (v ≥ 1).
func (v Value) IsProposable() bool { return v >= 1 }

// String renders a value; ⊥ is rendered as "⊥".
func (v Value) String() string {
	if v == Bottom {
		return "⊥"
	}
	return strconv.Itoa(int(v))
}

// Vector is an input vector or a view: one entry per process.
type Vector []Value

// New returns a view of size n with every entry equal to Bottom.
func New(n int) Vector { return make(Vector, n) }

// Of builds a vector from the given values. It is a convenience for tests
// and examples: Of(1, 1, 2) is the vector [1 1 2].
func Of(vs ...Value) Vector { return Vector(vs) }

// OfInts builds a vector from plain ints; 0 means Bottom.
func OfInts(vs ...int) Vector {
	out := make(Vector, len(vs))
	for i, v := range vs {
		out[i] = Value(v)
	}
	return out
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports whether v and w have the same length and entries.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// IsFull reports whether v has no Bottom entry (i.e. it is an input vector,
// not a strict view).
func (v Vector) IsFull() bool {
	for _, x := range v {
		if x == Bottom {
			return false
		}
	}
	return true
}

// Count returns #_a(v), the number of occurrences of a in v. Counting
// Bottom occurrences is allowed (a == Bottom counts ⊥ entries).
func (v Vector) Count(a Value) int {
	n := 0
	for _, x := range v {
		if x == a {
			n++
		}
	}
	return n
}

// BottomCount returns #_⊥(v), the number of ⊥ entries of v.
func (v Vector) BottomCount() int { return v.Count(Bottom) }

// Max returns the greatest non-⊥ value of v, or Bottom if v has none.
// The paper writes this max(V).
func (v Vector) Max() Value {
	best := Bottom
	for _, x := range v {
		if x > best {
			best = x
		}
	}
	return best
}

// Min returns the smallest non-⊥ value of v, or Bottom if v has none.
func (v Vector) Min() Value {
	best := Bottom
	for _, x := range v {
		if x == Bottom {
			continue
		}
		if best == Bottom || x < best {
			best = x
		}
	}
	return best
}

// Vals returns val(v): the set of non-⊥ values present in v. It is a
// single pass with no allocation.
func (v Vector) Vals() Set {
	var b uint64
	for _, x := range v {
		if x != Bottom {
			b |= setBit(x)
		}
	}
	return Set{b}
}

// ContainedIn reports J ≤ I in the paper's sense: every non-⊥ entry of J
// agrees with I. (Bottom entries of J are "unknown" and match anything.)
func (v Vector) ContainedIn(i Vector) bool {
	if len(v) != len(i) {
		return false
	}
	for k := range v {
		if v[k] != Bottom && v[k] != i[k] {
			return false
		}
	}
	return true
}

// Hamming returns d_H(v, w): the number of entries in which v and w differ.
// It panics if the vectors have different lengths.
func Hamming(v, w Vector) int {
	if len(v) != len(w) {
		panic("vector: Hamming distance of vectors with different lengths")
	}
	d := 0
	for k := range v {
		if v[k] != w[k] {
			d++
		}
	}
	return d
}

// GeneralizedDistance returns d_G(vs...): the number of entry positions at
// which at least two of the given vectors differ. On two vectors it equals
// the Hamming distance. It panics on length mismatch or an empty argument
// list; d_G of a single vector is 0.
func GeneralizedDistance(vs ...Vector) int {
	if len(vs) == 0 {
		panic("vector: generalized distance of empty set")
	}
	n := len(vs[0])
	d := 0
	for k := 0; k < n; k++ {
		for _, v := range vs[1:] {
			if len(v) != n {
				panic("vector: generalized distance of vectors with different lengths")
			}
			if v[k] != vs[0][k] {
				d++
				break
			}
		}
	}
	return d
}

// Intersect returns the intersecting vector ⊓(vs...): the view whose entry k
// is the common value vs[j][k] when all vectors agree at k, and Bottom at
// the positions where at least two vectors differ. Its non-⊥ entry count is
// n − d_G(vs...).
func Intersect(vs ...Vector) Vector {
	return IntersectInto(nil, vs...)
}

// IntersectInto is Intersect writing into dst, which is grown when too
// small and returned resliced to the vector size. Sweeps that evaluate
// many distance instances (the legality checker above all) reuse one
// scratch vector and intersect with no allocation.
func IntersectInto(dst Vector, vs ...Vector) Vector {
	if len(vs) == 0 {
		panic("vector: intersection of empty set")
	}
	n := len(vs[0])
	var out Vector
	if cap(dst) >= n {
		out = dst[:n]
	} else {
		out = make(Vector, n)
	}
	for k := 0; k < n; k++ {
		common := vs[0][k]
		for _, v := range vs[1:] {
			if v[k] != common {
				common = Bottom
				break
			}
		}
		out[k] = common
	}
	return out
}

// MassOf returns Σ_{a∈s} #_a(v): the number of entries of v holding a value
// of s. This is the count the density and distance properties bound. It is
// a single pass with no allocation.
func (v Vector) MassOf(s Set) int {
	n := 0
	for _, x := range v {
		if s.Has(x) {
			n++
		}
	}
	return n
}

// TopL returns max_ℓ(v): the min(ℓ, |val(v)|) greatest distinct values of v,
// as a Set. It is the paper's canonical recognizing function (Section 2.3).
func (v Vector) TopL(l int) Set { return v.Vals().TopN(l) }

// BottomL returns min_ℓ(v): the min(ℓ, |val(v)|) smallest distinct values.
// Every Section 2.3 theorem holds for min_ℓ in place of max_ℓ.
func (v Vector) BottomL(l int) Set { return v.Vals().BottomN(l) }

// Key returns a compact string encoding of v usable as a map key. Short
// vectors of small values (the universal case in this repo) pack one byte
// per entry from a stack buffer; the decimal fallback is tagged with a
// leading 0xff byte — which no packed key contains — so the two encodings
// can never collide.
func (v Vector) Key() string {
	var buf [32]byte
	if len(v) <= len(buf) {
		for i, x := range v {
			if x < 0 || x > 127 {
				return v.slowKey()
			}
			buf[i] = byte(x)
		}
		return string(buf[:len(v)])
	}
	return v.slowKey()
}

func (v Vector) slowKey() string {
	b := make([]byte, 0, 2+4*len(v))
	b = append(b, 0xff)
	for i, x := range v {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return string(b)
}

// Key64 packs v into a single integer key: ok when len(v) ≤ 10 and every
// entry lies in 0..63 (⊥ included). The packing is prefixed with a sentinel
// bit, so vectors of different lengths never collide. Explicit condition
// membership maps use it to avoid string hashing entirely.
func (v Vector) Key64() (uint64, bool) {
	if len(v) > 10 {
		return 0, false
	}
	k := uint64(1)
	for _, x := range v {
		if x < 0 || x > 63 {
			return 0, false
		}
		k = k<<6 | uint64(x)
	}
	return k, true
}

// DecodeKey64 reverses Key64: it unpacks a key produced by Key64 into the
// vector it encodes, appending to dst (which may be nil). The sentinel bit
// prefix makes the encoding self-delimiting — the key's bit length fixes
// the vector length — so ok reports whether key is a well-formed packing
// (some Key64 output); for every valid key, DecodeKey64 then Key64 is the
// identity. The wire codec uses this to move packed views and state
// triples as single integers.
func DecodeKey64(key uint64, dst Vector) (Vector, bool) {
	if key == 0 {
		return nil, false
	}
	bl := bits.Len64(key)
	if (bl-1)%6 != 0 {
		return nil, false
	}
	n := (bl - 1) / 6
	out := dst
	for i := n - 1; i >= 0; i-- {
		out = append(out, Value(key>>(uint(i)*6)&63))
	}
	return out, true
}

// String renders the vector in the paper's [a b ⊥ c] style.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = x.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"kset"
	"kset/internal/experiments"
	"kset/internal/shard"
	"kset/internal/stats"
)

// Config tunes a Server; the zero value gets sensible defaults.
type Config struct {
	// MaxActive bounds concurrently running jobs (default 2).
	MaxActive int
	// MaxQueuedPerTenant bounds each tenant's queue (default 1024).
	MaxQueuedPerTenant int
	// SnapshotInterval paces the SSE progress snapshots (default 250ms).
	SnapshotInterval time.Duration
	// MaxBodyBytes caps every request body (default 8 MiB). A larger
	// body is cut off mid-read and answered with a structured 413 —
	// shard uploads are the only legitimately large payloads and they
	// fit comfortably; anything bigger is a mistake or a memory attack.
	MaxBodyBytes int64
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.MaxActive == 0 {
		c.MaxActive = 2
	}
	if c.MaxQueuedPerTenant == 0 {
		c.MaxQueuedPerTenant = 1024
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 250 * time.Millisecond
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the agreement-as-a-service core: it accepts declarative
// JobSpecs over HTTP, schedules them fairly across tenants, streams
// progress as server-sent events and exposes the paper's experiment
// registry. Wire its Handler into an http.Server (cmd/ksetd does) or an
// httptest.Server.
type Server struct {
	cfg   Config
	ctx   context.Context
	stop  context.CancelFunc
	sched *Scheduler

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
	seq   int
}

// NewServer builds and starts the service core.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		jobs: make(map[string]*Job),
	}
	s.ctx, s.stop = context.WithCancel(context.Background())
	s.sched = NewScheduler(cfg.MaxActive, cfg.MaxQueuedPerTenant, func(j *Job) {
		j.run(s.ctx, cfg.SnapshotInterval)
	})
	s.sched.Start()
	return s
}

// Drain stops accepting jobs and waits for everything accepted to
// finish, or for ctx to expire. The graceful half of shutdown.
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// Close hard-stops the server: running jobs are canceled through their
// base context and the dispatcher halts. Call Drain first for a graceful
// exit.
func (s *Server) Close() {
	s.stop()
	s.sched.Stop()
}

// Handler returns the service's HTTP routing. Routes are matched
// manually (method checks per path), keeping the daemon on the Go 1.21
// ServeMux feature set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/campaigns", s.handleCampaigns)
	mux.HandleFunc("/v1/campaigns/", s.handleCampaign)
	mux.HandleFunc("/v1/experiments", s.handleExperiments)
	mux.HandleFunc("/v1/experiments/", s.handleExperiment)
	mux.HandleFunc("/v1/merge", s.handleMerge)
	// Every body is capped before any handler reads it. MaxBytesReader
	// also closes the connection on overrun, so an oversized upload
	// cannot be streamed to completion just to be rejected.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		mux.ServeHTTP(w, r)
	})
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeDecodeError classifies a request-body decode failure: a body
// that hit the MaxBytesReader cap is a structured 413 (the client must
// shrink or shard its upload), anything else the usual 400.
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, "bad_json", err.Error())
}

// writeError writes the structured error body.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, struct {
		Error errorBody `json:"error"`
	}{errorBody{Code: code, Message: message}})
}

// writeCompileError maps a Compile error onto its sentinel code. The
// sentinels are checked most-specific first: ErrDomainTooLarge and
// ErrBadInput both exist precisely so that a client can tell "shrink the
// domain" and "fix the vector" apart from a generally malformed spec.
func writeCompileError(w http.ResponseWriter, err error) {
	code := "bad_params"
	switch {
	case errors.Is(err, kset.ErrDomainTooLarge):
		code = "domain_too_large"
	case errors.Is(err, kset.ErrBadInput):
		code = "bad_input"
	}
	writeError(w, http.StatusBadRequest, code, err.Error())
}

// handleHealth serves the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// handleCampaigns serves the collection: POST submits, GET lists.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.list(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" not allowed")
	}
}

// decodeSpec decodes a JobSpec, rejecting unknown fields so typos in
// field names fail loudly instead of silently configuring nothing.
func decodeSpec(r *http.Request) (JobSpec, error) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, err
	}
	return spec, nil
}

// addJob registers a compiled job under a fresh ID.
func (s *Server) addJob(c *CompiledJob) *Job {
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("j-%d", s.seq)
	j := newJob(id, c)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	return j
}

// submit handles POST /v1/campaigns: decode, compile (the validation
// gate), enqueue. The default reply is 202 with the job's handle;
// ?wait=1 blocks until the job is terminal and replies with its results,
// canceling the job if the client disconnects first.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSpec(r)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	if t := r.Header.Get("X-Tenant"); t != "" {
		spec.Tenant = t
	}
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	compiled, err := Compile(spec)
	if err != nil {
		writeCompileError(w, err)
		return
	}
	j := s.addJob(compiled)
	if err := s.sched.Enqueue(j); err != nil {
		s.dropJob(j.ID)
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "draining", err.Error())
		case errors.Is(err, ErrQueueFull):
			writeError(w, http.StatusTooManyRequests, "queue_full", err.Error())
		default:
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		stop := context.AfterFunc(r.Context(), j.Cancel)
		defer stop()
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.Status(true))
		case <-r.Context().Done():
			// The client left; the AfterFunc cancels the job.
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status(false))
}

// dropJob removes a job that was never accepted by the scheduler.
func (s *Server) dropJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	if n := len(s.order); n > 0 && s.order[n-1] == id {
		s.order = s.order[:n-1]
	}
	s.mu.Unlock()
}

// list handles GET /v1/campaigns[?tenant=x]: job summaries in
// submission order.
func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil && (tenant == "" || j.Tenant == tenant) {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := struct {
		Jobs []statusPayload `json:"jobs"`
	}{Jobs: make([]statusPayload, len(jobs))}
	for i, j := range jobs {
		out.Jobs[i] = j.Status(false)
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves a job by ID.
func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleCampaign serves one job: GET status, DELETE cancel, and the
// /events SSE stream.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	j := s.lookup(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "not_found", "no job "+id)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.Status(true))
	case sub == "" && r.Method == http.MethodDelete:
		j.Cancel()
		writeJSON(w, http.StatusOK, j.Status(false))
	case sub == "events" && r.Method == http.MethodGet:
		s.streamEvents(w, r, j)
	case sub != "" && sub != "events":
		writeError(w, http.StatusNotFound, "not_found", "no resource "+rest)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" not allowed")
	}
}

// streamEvents serves GET /v1/campaigns/{id}/events: the job's full
// event log as server-sent events, replayed from the start and followed
// live until the terminal event.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "no_stream", "response writer cannot stream")
		return
	}
	// An event stream outlives any sane per-connection deadline: clear
	// the server's read/write timeouts for this connection so a hardened
	// http.Server (cmd/ksetd sets ReadTimeout) cannot sever a live
	// stream that is still delivering progress.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Time{})
	_ = rc.SetWriteDeadline(time.Time{})
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	_ = j.Events(r.Context(), func(ev Event) error {
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	})
}

// handleMerge serves POST /v1/merge: fold shard result uploads into one
// campaign stats report. The body is {"shards": [blob, ...]} where each
// blob is an accumulator encoding, a checkpoint envelope, or a campaign
// stats report (its "metrics" field is taken) — the three shapes sharded
// workers naturally hold. Because Accumulator.Merge is commutative and
// associative, the folded report is byte-identical to the one a single
// process running every shard's scenarios would have produced, whatever
// the shard count or upload order.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" not allowed")
		return
	}
	var body struct {
		Shards []json.RawMessage `json:"shards"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(body.Shards) == 0 {
		writeError(w, http.StatusBadRequest, "no_shards", "merge needs at least one shard")
		return
	}
	merged := stats.NewAccumulator()
	for i, raw := range body.Shards {
		acc, err := decodeShard(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_shard", fmt.Sprintf("shard %d: %v", i, err))
			return
		}
		merged.Merge(acc)
	}
	writeJSON(w, http.StatusOK, struct {
		Shards int                 `json:"shards"`
		Stats  *kset.CampaignStats `json:"stats"`
	}{Shards: len(body.Shards), Stats: kset.CampaignStatsOf(merged)})
}

// decodeShard turns one uploaded shard blob into its accumulator. Three
// shapes are accepted, tried most-specific first: a checkpoint envelope
// (strictly decoded and validated; its stats snapshot is taken), a raw
// accumulator encoding (strict — unknown fields are rejected), and a
// campaign stats report, whose "metrics" field holds the accumulator.
func decodeShard(raw json.RawMessage) (*stats.Accumulator, error) {
	if cp, err := shard.Decode(raw); err == nil {
		if cp.Stats == nil {
			return stats.NewAccumulator(), nil
		}
		return cp.Stats, nil
	}
	if acc, err := strictAccumulator(raw); err == nil {
		return acc, nil
	}
	var wrap struct {
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &wrap); err == nil && len(wrap.Metrics) > 0 {
		return strictAccumulator(wrap.Metrics)
	}
	return nil, errors.New("not an accumulator, checkpoint, or stats report")
}

// strictAccumulator decodes an accumulator encoding, rejecting unknown
// fields so a mis-shaped upload fails loudly instead of merging zeros.
func strictAccumulator(raw []byte) (*stats.Accumulator, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	acc := stats.NewAccumulator()
	if err := dec.Decode(acc); err != nil {
		return nil, err
	}
	return acc, nil
}

// handleExperiments serves GET /v1/experiments: the registry's specs.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" not allowed")
		return
	}
	type expInfo struct {
		ID       string             `json:"id"`
		Title    string             `json:"title"`
		Paper    string             `json:"paper"`
		Defaults experiments.Params `json:"defaults,omitempty"`
	}
	specs := experiments.Registry()
	out := struct {
		Experiments []expInfo `json:"experiments"`
	}{Experiments: make([]expInfo, len(specs))}
	for i, sp := range specs {
		out.Experiments[i] = expInfo{ID: sp.ID, Title: sp.Title, Paper: sp.Paper, Defaults: sp.Defaults}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleExperiment serves POST /v1/experiments/{id}: run one registered
// experiment synchronously, with optional parameter overrides
// ({"params": {"n": 6, ...}}), and reply with its Report.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" not allowed")
		return
	}
	if s.sched.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining", ErrDraining.Error())
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/experiments/")
	sp, ok := experiments.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no experiment "+id)
		return
	}
	var body struct {
		Params experiments.Params `json:"params"`
	}
	if r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, "bad_json", err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, sp.Run(sp.Defaults.With(body.Params)))
}

package service

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull rejects a submission whose tenant queue is at capacity
// (HTTP 429).
var ErrQueueFull = errors.New("service: tenant queue full")

// ErrDraining rejects submissions while the daemon drains for shutdown
// (HTTP 503).
var ErrDraining = errors.New("service: draining, not accepting jobs")

// Scheduler dispatches queued jobs into a bounded pool of run slots with
// round-robin fairness across tenants: each tenant has its own bounded
// FIFO queue, and the dispatcher cycles tenants in first-seen order, so
// a tenant flooding its queue delays only itself. Draining flips the
// scheduler into shutdown mode: new submissions are rejected while
// everything already accepted runs to completion.
type Scheduler struct {
	run       func(*Job)
	maxActive int
	maxQueued int

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]*Job
	order    []string
	next     int
	active   int
	queued   int
	draining bool
	stopped  bool
	started  bool
}

// NewScheduler builds a scheduler with maxActive concurrent run slots
// and per-tenant queues bounded at maxQueued; run executes one job and
// must not return before the job is terminal. Call Start to begin
// dispatching.
func NewScheduler(maxActive, maxQueued int, run func(*Job)) *Scheduler {
	if maxActive < 1 {
		maxActive = 1
	}
	if maxQueued < 1 {
		maxQueued = 1
	}
	s := &Scheduler{
		run:       run,
		maxActive: maxActive,
		maxQueued: maxQueued,
		queues:    make(map[string][]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Start launches the dispatcher. Separate from construction so tests can
// enqueue a full workload first and observe a deterministic dispatch
// order.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.dispatch()
}

// Enqueue accepts a job into its tenant's queue.
func (s *Scheduler) Enqueue(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.stopped {
		return ErrDraining
	}
	q := s.queues[j.Tenant]
	if len(q) >= s.maxQueued {
		return ErrQueueFull
	}
	if q == nil {
		s.order = append(s.order, j.Tenant)
	}
	s.queues[j.Tenant] = append(q, j)
	s.queued++
	s.cond.Signal()
	return nil
}

// Draining reports whether the scheduler is in shutdown mode.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain flips the scheduler into shutdown mode and blocks until every
// accepted job has finished, or until ctx expires (leaving the remaining
// work running).
func (s *Scheduler) Drain(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	s.cond.Broadcast()
	for (s.queued > 0 || s.active > 0) && ctx.Err() == nil {
		s.cond.Wait()
	}
	return ctx.Err()
}

// Stop halts the dispatcher without waiting for queued work; running
// jobs keep their slots until they return. Queued jobs stay queued
// forever, so Stop is for teardown after Drain (or in tests).
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// pick pops the next job in round-robin tenant order; the caller holds
// mu. It returns nil when every queue is empty.
func (s *Scheduler) pick() *Job {
	for i := 0; i < len(s.order); i++ {
		idx := (s.next + i) % len(s.order)
		t := s.order[idx]
		q := s.queues[t]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		s.queues[t] = q[1:]
		s.queued--
		s.next = (idx + 1) % len(s.order)
		return j
	}
	return nil
}

// dispatch is the scheduler loop: wait for a free slot and a queued job,
// pop in round-robin order, run in a fresh goroutine.
func (s *Scheduler) dispatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return
		}
		if s.active < s.maxActive {
			if j := s.pick(); j != nil {
				s.active++
				go s.runSlot(j)
				continue
			}
		}
		s.cond.Wait()
	}
}

// runSlot runs one job and releases its slot.
func (s *Scheduler) runSlot(j *Job) {
	defer func() {
		s.mu.Lock()
		s.active--
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	s.run(j)
}

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// loadSpec is the load test's unit of work: a single-scenario job, so a
// thousand submissions measure the control plane, not the protocol.
const loadSpec = `{
	"params": {"n": 3, "t": 1, "k": 1, "d": 0, "l": 1},
	"condition": {"kind": "max", "m": 2},
	"source": {"kind": "inputs", "inputs": [[2, 1, 1]]}
}`

// TestLoadSmokeThousandJobs is the acceptance load test: 1000 concurrent
// submissions across 4 tenants on a bounded scheduler, then a graceful
// drain, with every job completing. CI runs it under -race.
func TestLoadSmokeThousandJobs(t *testing.T) {
	svc, ts := newTestServer(t, Config{
		MaxActive:          4,
		MaxQueuedPerTenant: 512,
		SnapshotInterval:   time.Hour,
	})

	const (
		jobs    = 1000
		tenants = 4
		clients = 16
	)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []string
		rejected int
	)
	work := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		work <- i
	}
	close(work)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/campaigns", strings.NewReader(loadSpec))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("X-Tenant", fmt.Sprintf("tenant-%d", i%tenants))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var st statusPayload
					if err := json.Unmarshal(data, &st); err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					accepted = append(accepted, st.ID)
					mu.Unlock()
				case http.StatusTooManyRequests:
					// Backpressure is a legal answer under burst load; the
					// bound just must not trip with queues this deep.
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					t.Errorf("submit: status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if rejected > 0 {
		t.Fatalf("%d submissions hit the queue bound; queues should absorb this load", rejected)
	}
	if len(accepted) != jobs {
		t.Fatalf("accepted %d/%d jobs", len(accepted), jobs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	perTenant := make(map[string]int)
	for _, id := range accepted {
		j := svc.lookup(id)
		if j == nil {
			t.Fatalf("job %s vanished", id)
		}
		st := j.Status(true)
		if st.State != StateDone {
			t.Fatalf("job %s: state %q after drain (error %q)", id, st.State, st.Error)
		}
		if st.Stats == nil || st.Stats.Runs != 1 {
			t.Fatalf("job %s: stats %+v, want exactly one run", id, st.Stats)
		}
		perTenant[st.Tenant]++
	}
	for tenant, n := range perTenant {
		if n != jobs/tenants {
			t.Errorf("%s completed %d jobs, want %d", tenant, n, jobs/tenants)
		}
	}
}

// BenchmarkSubmitPath measures the submission hot path — decode, compile,
// job registration, enqueue — the loop a flood of POSTs drives. CI gates
// its allocations per op (scripts/benchgate.sh), so queue-path regressions
// that would melt a 1-CPU container under thousands of submissions show
// up as a failed gate, not an incident.
func BenchmarkSubmitPath(b *testing.B) {
	body := []byte(loadSpec)
	s := NewScheduler(1, 1<<30, func(*Job) {}) // never started: pure queue cost
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var spec JobSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			b.Fatal(err)
		}
		spec.Tenant = "bench"
		compiled, err := Compile(spec)
		if err != nil {
			b.Fatal(err)
		}
		j := newJob("j-bench", compiled)
		if err := s.Enqueue(j); err != nil {
			b.Fatal(err)
		}
		if len(s.queues["bench"]) == 4096 {
			// Keep the resident queue bounded; the drop is amortized noise.
			s.queues["bench"] = s.queues["bench"][:0]
			s.queued = 0
		}
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer boots a service core plus httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := NewServer(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// validSpec is the canonical small job of the HTTP tests: 81 exhaustive
// scenarios over {1..3}^4 against the max condition with x=1, ℓ=1.
const validSpec = `{
	"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
	"condition": {"kind": "max", "m": 3},
	"source": {"kind": "exhaustive"}
}`

// post submits a body and returns the response.
func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestSubmitValidationVectors is the submission-path validation table:
// every malformed spec must be rejected at POST time with a structured
// 400 body carrying the sentinel-derived code — not accepted and failed
// later.
func TestSubmitValidationVectors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	vectors := []struct {
		name     string
		body     string
		wantCode string
	}{
		{
			name:     "malformed JSON",
			body:     `{"params": `,
			wantCode: "bad_json",
		},
		{
			name:     "unknown field",
			body:     `{"parms": {"n": 4}}`,
			wantCode: "bad_json",
		},
		{
			name: "bad params: k = 0",
			body: `{"params": {"n": 4, "t": 2, "k": 0, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 3}, "source": {"kind": "exhaustive"}}`,
			wantCode: "bad_params",
		},
		{
			name: "bad params: missing condition for figure2",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "source": {"kind": "exhaustive", "m": 3}}`,
			wantCode: "bad_params",
		},
		{
			name: "bad params: unknown executor",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 3}, "executor": "paxos",
			       "source": {"kind": "exhaustive"}}`,
			wantCode: "bad_params",
		},
		{
			name: "bad params: unknown source kind",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 3}, "source": {"kind": "everything"}}`,
			wantCode: "bad_params",
		},
		{
			name: "domain too large: m = 100",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 100}, "source": {"kind": "exhaustive"}}`,
			wantCode: "domain_too_large",
		},
		{
			name: "bad input: wrong vector length",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 3},
			       "source": {"kind": "inputs", "inputs": [[1, 2]]}}`,
			wantCode: "bad_input",
		},
		{
			name: "bad input: value outside domain",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 3},
			       "source": {"kind": "inputs", "inputs": [[1, 2, 3, 9]]}}`,
			wantCode: "bad_input",
		},
		{
			name: "bad fault plan: loss probability 1.5",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 3}, "source": {"kind": "exhaustive"},
			       "faults": {"kind": "uniform", "loss": 1.5}}`,
			wantCode: "bad_params",
		},
		{
			name: "bad fault plan: unknown family",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 3}, "source": {"kind": "exhaustive"},
			       "faults": {"kind": "hurricane"}}`,
			wantCode: "bad_params",
		},
		{
			name: "bad failures: crash id outside 1..n",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 3}, "source": {"kind": "exhaustive"},
			       "failures": {"kind": "explicit", "crashes": [{"id": 9, "round": 1}]}}`,
			wantCode: "bad_params",
		},
		{
			name: "conflicting executor and executors",
			body: `{"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
			       "condition": {"kind": "max", "m": 3}, "executor": "early",
			       "executors": ["figure2"], "source": {"kind": "exhaustive"}}`,
			wantCode: "bad_params",
		},
	}
	for _, tc := range vectors {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+"/v1/campaigns", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, data)
			}
			var body struct {
				Error errorBody `json:"error"`
			}
			if err := json.Unmarshal(data, &body); err != nil {
				t.Fatalf("response is not the structured error shape: %v\n%s", err, data)
			}
			if body.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q (message %q)", body.Error.Code, tc.wantCode, body.Error.Message)
			}
			if body.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestBodyTooLarge: a request body over the configured cap is answered
// with a structured 413 on every decoding endpoint, while a small valid
// body on the same server still goes through — the cap bounds memory,
// not functionality.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	huge := `{"padding": "` + strings.Repeat("x", 64<<10) + `"}`
	for _, path := range []string{"/v1/campaigns", "/v1/merge"} {
		resp, data := post(t, ts.URL+path, huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status = %d, want 413 (body %s)", path, resp.StatusCode, data)
		}
		var body struct {
			Error errorBody `json:"error"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			t.Fatalf("%s: response is not the structured error shape: %v\n%s", path, err, data)
		}
		if body.Error.Code != "body_too_large" {
			t.Errorf("%s: code = %q, want body_too_large", path, body.Error.Code)
		}
	}
	resp, data := post(t, ts.URL+"/v1/campaigns?wait=1", validSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid spec under the cap: status = %d, want 200 (body %s)", resp.StatusCode, data)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    int
	event string
	data  string
}

// parseSSE splits a complete SSE stream into events.
func parseSSE(t *testing.T, raw string) []sseEvent {
	t.Helper()
	var evs []sseEvent
	for _, block := range strings.Split(raw, "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "id: "):
				fmt.Sscanf(line, "id: %d", &ev.id)
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestSSEStreamDeterminism pins the event stream's shape: with the
// snapshot ticker effectively off, a completed job streams exactly
// running → snapshot → stats, with contiguous ids, a final snapshot
// covering every run, and a stats payload byte-identical to running the
// same spec through the facade in-process.
func TestSSEStreamDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{SnapshotInterval: time.Hour})

	resp, data := post(t, ts.URL+"/v1/campaigns?wait=1", validSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var status statusPayload
	if err := json.Unmarshal(data, &status); err != nil {
		t.Fatal(err)
	}
	if status.State != StateDone {
		t.Fatalf("state = %q, want done (error %q)", status.State, status.Error)
	}

	streamOnce := func() []sseEvent {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + status.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("Content-Type = %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return parseSSE(t, string(raw))
	}

	evs := streamOnce()
	want := []string{"running", "snapshot", "stats"}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, ev := range evs {
		if ev.id != i {
			t.Errorf("event %d has id %d", i, ev.id)
		}
		if ev.event != want[i] {
			t.Errorf("event %d = %q, want %q", i, ev.event, want[i])
		}
	}

	// The final snapshot covers every scenario of the job.
	var snap struct {
		Runs int64 `json:"runs"`
	}
	if err := json.Unmarshal([]byte(evs[1].data), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Runs != 81 {
		t.Errorf("final snapshot runs = %d, want 81", snap.Runs)
	}

	// Byte-identical contract: the terminal stats event equals the same
	// job run through the facade in-process.
	var spec JobSpec
	if err := json.Unmarshal([]byte(validSpec), &spec); err != nil {
		t.Fatal(err)
	}
	compiled, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := compiled.sys.RunSource(context.Background(), compiled.src)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if evs[2].data != string(wantJSON) {
		t.Errorf("stats event diverges from in-process run:\n%s\nvs\n%s", evs[2].data, wantJSON)
	}

	// A replayed subscription sees the identical stream.
	again := streamOnce()
	if len(again) != len(evs) {
		t.Fatalf("replay returned %d events, want %d", len(again), len(evs))
	}
	for i := range evs {
		if again[i] != evs[i] {
			t.Errorf("replayed event %d diverges:\n%+v\nvs\n%+v", i, again[i], evs[i])
		}
	}
}

// TestSnapshotMonotone runs a job with a fast ticker and checks every
// streamed snapshot's run counter is non-decreasing and the stream still
// terminates in the stats event.
func TestSnapshotMonotone(t *testing.T) {
	_, ts := newTestServer(t, Config{SnapshotInterval: time.Millisecond})
	body := `{
		"params": {"n": 4, "t": 2, "k": 1, "d": 1, "l": 1},
		"condition": {"kind": "max", "m": 3},
		"source": {"kind": "random", "seed": 3, "count": 5000}
	}`
	resp, data := post(t, ts.URL+"/v1/campaigns", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var status statusPayload
	if err := json.Unmarshal(data, &status); err != nil {
		t.Fatal(err)
	}

	get, err := http.Get(ts.URL + "/v1/campaigns/" + status.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	raw, err := io.ReadAll(get.Body)
	if err != nil {
		t.Fatal(err)
	}
	evs := parseSSE(t, string(raw))
	if len(evs) < 3 {
		t.Fatalf("only %d events: %+v", len(evs), evs)
	}
	if evs[len(evs)-1].event != "stats" {
		t.Fatalf("terminal event = %q, want stats", evs[len(evs)-1].event)
	}
	var prev int64 = -1
	snapshots := 0
	for _, ev := range evs {
		if ev.event != "snapshot" {
			continue
		}
		snapshots++
		var snap struct {
			Runs int64 `json:"runs"`
		}
		if err := json.Unmarshal([]byte(ev.data), &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Runs < prev {
			t.Fatalf("snapshot runs regressed: %d after %d", snap.Runs, prev)
		}
		prev = snap.Runs
	}
	if snapshots == 0 {
		t.Fatal("no snapshots streamed")
	}
	if prev != 5000 {
		t.Errorf("last snapshot runs = %d, want 5000", prev)
	}
}

// TestCancelRunningJob cancels an in-flight job via DELETE and checks
// the stream terminates with the canceled event and the job settles in
// StateCanceled without counting aborted runs as errors.
func TestCancelRunningJob(t *testing.T) {
	svc, ts := newTestServer(t, Config{SnapshotInterval: time.Hour})
	body := `{
		"params": {"n": 6, "t": 3, "k": 2, "d": 1, "l": 1},
		"condition": {"kind": "max", "m": 4},
		"source": {"kind": "random", "seed": 9, "count": 50000000},
		"failures": {"kind": "staggered"}
	}`
	resp, data := post(t, ts.URL+"/v1/campaigns", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var status statusPayload
	if err := json.Unmarshal(data, &status); err != nil {
		t.Fatal(err)
	}
	j := svc.lookup(status.ID)
	if j == nil {
		t.Fatal("job not registered")
	}

	// Wait until the job is demonstrably running, then cancel it.
	deadline := time.Now().Add(10 * time.Second)
	for j.progress.Runs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+status.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job did not settle after DELETE")
	}
	final := j.Status(true)
	if final.State != StateCanceled {
		t.Fatalf("state = %q, want canceled", final.State)
	}
	if final.Runs == 0 || final.Runs >= 50000000 {
		t.Fatalf("runs = %d, want partial progress", final.Runs)
	}

	get, err := http.Get(ts.URL + "/v1/campaigns/" + status.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	raw, err := io.ReadAll(get.Body)
	if err != nil {
		t.Fatal(err)
	}
	evs := parseSSE(t, string(raw))
	if last := evs[len(evs)-1]; last.event != "canceled" {
		t.Fatalf("terminal event = %q, want canceled: %+v", last.event, evs)
	}
}

// TestCancelQueuedJob cancels a job that never left its queue: with a
// single busy slot, the queued job must settle as canceled without
// running a single scenario.
func TestCancelQueuedJob(t *testing.T) {
	svc, ts := newTestServer(t, Config{MaxActive: 1, SnapshotInterval: time.Hour})
	blocker := `{
		"params": {"n": 6, "t": 3, "k": 2, "d": 1, "l": 1},
		"condition": {"kind": "max", "m": 4},
		"source": {"kind": "random", "seed": 9, "count": 50000000}
	}`
	resp, data := post(t, ts.URL+"/v1/campaigns", blocker)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: status %d: %s", resp.StatusCode, data)
	}
	var blockerStatus statusPayload
	if err := json.Unmarshal(data, &blockerStatus); err != nil {
		t.Fatal(err)
	}
	resp, data = post(t, ts.URL+"/v1/campaigns", validSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued: status %d: %s", resp.StatusCode, data)
	}
	var queued statusPayload
	if err := json.Unmarshal(data, &queued); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+queued.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	j := svc.lookup(queued.ID)
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("queued job did not settle after DELETE")
	}
	if st := j.Status(false); st.State != StateCanceled || st.Runs != 0 {
		t.Fatalf("queued job: state %q runs %d, want canceled with 0 runs", st.State, st.Runs)
	}

	// Unblock the busy slot so Cleanup does not wait on a monster job.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+blockerStatus.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	<-svc.lookup(blockerStatus.ID).Done()
}

// TestWaitDisconnectCancels submits with ?wait=1 and drops the client:
// the in-flight job must be canceled by the disconnect.
func TestWaitDisconnectCancels(t *testing.T) {
	svc, ts := newTestServer(t, Config{SnapshotInterval: time.Hour})
	body := `{
		"params": {"n": 6, "t": 3, "k": 2, "d": 1, "l": 1},
		"condition": {"kind": "max", "m": 4},
		"source": {"kind": "random", "seed": 11, "count": 50000000}
	}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/campaigns?wait=1", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()

	// Wait for the job to appear and start, then sever the client.
	var j *Job
	deadline := time.Now().Add(10 * time.Second)
	for j == nil || j.progress.Runs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		j = svc.lookup("j-1")
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job not canceled by client disconnect")
	}
	if st := j.Status(false); st.State != StateCanceled {
		t.Fatalf("state = %q, want canceled", st.State)
	}
}

// TestGracefulDrain submits work, drains, and checks the contract: the
// accepted jobs all finish, and post-drain submissions are rejected with
// the structured 503.
func TestGracefulDrain(t *testing.T) {
	svc, ts := newTestServer(t, Config{MaxActive: 2})
	const jobs = 6
	ids := make([]string, jobs)
	for i := range ids {
		resp, data := post(t, ts.URL+"/v1/campaigns", validSpec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, data)
		}
		var st statusPayload
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range ids {
		if st := svc.lookup(id).Status(false); st.State != StateDone {
			t.Errorf("job %s: state %q after drain, want done", id, st.State)
		}
	}

	resp, data := post(t, ts.URL+"/v1/campaigns", validSpec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, want 503: %s", resp.StatusCode, data)
	}
	var body struct {
		Error errorBody `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil || body.Error.Code != "draining" {
		t.Fatalf("post-drain body = %s (decode err %v), want code draining", data, err)
	}
	resp, data = post(t, ts.URL+"/v1/experiments/E2", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain experiment: status %d, want 503: %s", resp.StatusCode, data)
	}
}

// TestStatusAndList exercises the read endpoints: status carries the
// terminal stats, the list filters by tenant, unknown IDs 404.
func TestStatusAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	submit := func(tenant string) statusPayload {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/campaigns?wait=1", strings.NewReader(validSpec))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
		}
		var st statusPayload
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	a := submit("alice")
	b := submit("bob")
	if a.Tenant != "alice" || b.Tenant != "bob" {
		t.Fatalf("tenants = %q, %q", a.Tenant, b.Tenant)
	}
	if a.State != StateDone || a.Stats == nil || a.Stats.Runs != 81 {
		t.Fatalf("terminal status lacks stats: %+v", a)
	}

	resp, data := func() (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + "/v1/campaigns?tenant=alice")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		d, _ := io.ReadAll(resp.Body)
		return resp, d
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var list struct {
		Jobs []statusPayload `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != a.ID {
		t.Fatalf("tenant filter returned %+v", list.Jobs)
	}

	if resp, err := http.Get(ts.URL + "/v1/campaigns/j-999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestSweepJob submits a degree-sweep job and checks the terminal event
// is the keyed per-degree result list.
func TestSweepJob(t *testing.T) {
	_, ts := newTestServer(t, Config{SnapshotInterval: time.Hour})
	body := `{
		"params": {"n": 4, "t": 2, "k": 1, "l": 1},
		"sweep": {"kind": "degrees", "m": 3},
		"source": {"kind": "members"}
	}`
	resp, data := post(t, ts.URL+"/v1/campaigns?wait=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var st statusPayload
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %q (error %q)", st.State, st.Error)
	}
	// Degrees d = 0..t−ℓ = 0, 1.
	if len(st.Sweep) != 2 || st.Sweep[0].Key != "d=0" || st.Sweep[1].Key != "d=1" {
		t.Fatalf("sweep results = %+v, want keys d=0, d=1", st.Sweep)
	}
	for _, r := range st.Sweep {
		if r.Stats == nil || r.Stats.Runs == 0 {
			t.Fatalf("sweep point %s has no runs", r.Key)
		}
	}
}

// TestExperimentEndpoints lists the registry and runs one experiment
// with an override.
func TestExperimentEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var list struct {
		Experiments []struct {
			ID string `json:"id"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Experiments) != 11 || list.Experiments[0].ID != "E1" {
		t.Fatalf("registry listing = %+v", list.Experiments)
	}

	resp, data = post(t, ts.URL+"/v1/experiments/E1", `{"params": {"n": 3, "m": 2, "xmax": 1, "lmax": 2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run E1: status %d: %s", resp.StatusCode, data)
	}
	var report struct {
		ID     string         `json:"id"`
		OK     bool           `json:"ok"`
		Params map[string]int `json:"params"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.ID != "E1" || !report.OK || report.Params["n"] != 3 {
		t.Fatalf("report = %+v", report)
	}

	resp, data = post(t, ts.URL+"/v1/experiments/E99", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment: status %d: %s", resp.StatusCode, data)
	}
}

// TestHealthz pins the liveness probe.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body.String())
	}
}

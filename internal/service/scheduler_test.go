package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// stubJob builds a queue-only job (never run through a campaign).
func stubJob(id, tenant string) *Job {
	return newJob(id, &CompiledJob{Spec: JobSpec{Tenant: tenant}})
}

// TestSchedulerRoundRobinFairness enqueues four tenants' backlogs before
// the dispatcher starts and pins the exact dispatch order: with one run
// slot, the scheduler must cycle tenants first-seen round-robin, so a
// tenant with a deep queue cannot starve the others.
func TestSchedulerRoundRobinFairness(t *testing.T) {
	var (
		mu    sync.Mutex
		order []string
	)
	done := make(chan struct{})
	const total = 12
	s := NewScheduler(1, 16, func(j *Job) {
		mu.Lock()
		order = append(order, j.Tenant)
		if len(order) == total {
			close(done)
		}
		mu.Unlock()
	})

	// t1 floods first; t2..t4 arrive after with shallower queues.
	for _, tenant := range []string{"t1", "t1", "t1", "t1", "t1", "t1", "t2", "t2", "t3", "t3", "t4", "t4"} {
		if err := s.Enqueue(stubJob("j", tenant)); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	defer s.Stop()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("dispatched %d/%d jobs", len(order), total)
	}

	want := []string{
		"t1", "t2", "t3", "t4", // one round across every tenant
		"t1", "t2", "t3", "t4", // again, while every queue is non-empty
		"t1", "t1", "t1", "t1", // only t1's backlog remains
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestSchedulerQueueBound pins the per-tenant bound: the overflow
// submission fails with ErrQueueFull while other tenants still enqueue.
func TestSchedulerQueueBound(t *testing.T) {
	s := NewScheduler(1, 2, func(j *Job) {})
	for i := 0; i < 2; i++ {
		if err := s.Enqueue(stubJob("j", "greedy")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Enqueue(stubJob("j", "greedy")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow enqueue: %v, want ErrQueueFull", err)
	}
	if err := s.Enqueue(stubJob("j", "polite")); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestSchedulerDrainRejects pins the drain contract at the scheduler
// level: draining rejects new work, waits out the backlog and returns.
func TestSchedulerDrainRejects(t *testing.T) {
	ran := make(chan string, 8)
	s := NewScheduler(2, 8, func(j *Job) { ran <- j.Tenant })
	s.Start()
	defer s.Stop()
	for i := 0; i < 4; i++ {
		if err := s.Enqueue(stubJob("j", "a")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := len(ran); got != 4 {
		t.Fatalf("drained with %d/4 jobs run", got)
	}
	if err := s.Enqueue(stubJob("j", "a")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain enqueue: %v, want ErrDraining", err)
	}
}

// Package service is ksetd's agreement-as-a-service core: the HTTP+JSON
// control plane over the kset facade's campaign, sweep and experiment
// machinery.
//
// A client POSTs a declarative JobSpec — problem parameters, condition,
// executor, scenario source, optional crash/fault adversaries, optional
// degree sweep — to /v1/campaigns. Compile turns the spec into a
// validated kset.System plus scenario stream (or sweep grid), reusing the
// facade's sentinel errors so malformed submissions become structured
// 400s with machine-readable codes (bad_params, domain_too_large,
// bad_input). Accepted jobs enter their tenant's bounded FIFO queue; the
// Scheduler dispatches queues round-robin across tenants into a bounded
// pool of run slots, so no tenant can starve another.
//
// Each running job observes its campaign through a Progress collector and
// appends periodic accumulator snapshots to an ordered event log;
// GET /v1/campaigns/{id}/events replays that log as server-sent events
// and follows it live to the terminal event. The terminal "stats" event
// carries the campaign's own Wait() statistics — worker-count-invariant
// and byte-identical to running the same job through RunCampaign
// in-process. DELETE (or a waiting client's disconnect) cancels a job
// through its context; Drain rejects new work while accepted jobs run to
// completion, which is how cmd/ksetd turns SIGTERM into a graceful exit.
package service

package service

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"kset"
	"kset/internal/shard"
)

// mergeFixture runs one small campaign unsharded (the baseline) and K
// ways sharded, returning the baseline stats and the shard results.
func mergeFixture(t *testing.T, k int) (*kset.CampaignStats, []*kset.CampaignStats) {
	t.Helper()
	p := kset.Params{N: 4, T: 2, K: 2, D: 1, L: 1}
	cond, err := kset.NewMaxCondition(p.N, 3, p.X(), p.L)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(cond))
	if err != nil {
		t.Fatal(err)
	}
	src := kset.CrossExecutors(kset.ExhaustiveInputs(p.N, 3), kset.Figure2, kset.EarlyDeciding)
	base, err := sys.RunSource(context.Background(), src, kset.VerifyRuns())
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*kset.CampaignStats, k)
	for i := 0; i < k; i++ {
		sh, err := kset.ShardSource(src, i, k)
		if err != nil {
			t.Fatal(err)
		}
		if shards[i], err = sys.RunSource(context.Background(), sh, kset.VerifyRuns()); err != nil {
			t.Fatal(err)
		}
	}
	return base, shards
}

// mergeResponse decodes /v1/merge's reply.
type mergeResponse struct {
	Shards int                 `json:"shards"`
	Stats  *kset.CampaignStats `json:"stats"`
}

// TestMergeFoldsShardsByteIdentical is the endpoint's core contract:
// uploading K shard results — in every accepted shape at once — folds to
// stats byte-identical to the single-process run over the whole stream.
func TestMergeFoldsShardsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base, shards := mergeFixture(t, 3)
	want, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}

	// Shard 0 uploads its raw accumulator, shard 1 its full stats report,
	// shard 2 a checkpoint envelope — the three shapes workers hold.
	accJSON, err := json.Marshal(shards[0].Metrics)
	if err != nil {
		t.Fatal(err)
	}
	reportJSON, err := json.Marshal(shards[1])
	if err != nil {
		t.Fatal(err)
	}
	cpJSON, err := shard.Checkpoint{
		Version:  shard.Version,
		Cursor:   shard.Cursor{Lo: 0, Hi: shards[2].Runs},
		RunsDone: shards[2].Runs,
		Stats:    shards[2].Metrics,
	}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string][]json.RawMessage{
		"shards": {accJSON, reportJSON, cpJSON},
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, data := post(t, ts.URL+"/v1/merge", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/merge = %d: %s", resp.StatusCode, data)
	}
	var out mergeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Shards != 3 {
		t.Fatalf("shards = %d, want 3", out.Shards)
	}
	got, err := json.Marshal(out.Stats)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("merged stats differ from single-process run\n%s\nvs\n%s", got, want)
	}
}

// TestMergeSingleShardIdentity: merging one upload is the identity.
func TestMergeSingleShardIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base, _ := mergeFixture(t, 1)
	accJSON, err := json.Marshal(base.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, ts.URL+"/v1/merge", `{"shards":[`+string(accJSON)+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/merge = %d: %s", resp.StatusCode, data)
	}
	var out mergeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(out.Stats)
	want, _ := json.Marshal(base)
	if string(got) != string(want) {
		t.Fatalf("identity merge differs\n%s\nvs\n%s", got, want)
	}
}

// TestMergeValidation is the endpoint's rejection table.
func TestMergeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get, err := http.Get(ts.URL + "/v1/merge")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/merge = %d, want 405", get.StatusCode)
	}
	cases := []struct {
		name, body, code string
	}{
		{"malformed json", `{"shards":`, "bad_json"},
		{"unknown field", `{"shards":[],"extra":1}`, "bad_json"},
		{"no shards", `{"shards":[]}`, "no_shards"},
		{"missing shards", `{}`, "no_shards"},
		{"bad shard blob", `{"shards":["nope"]}`, "bad_shard"},
		{"mis-shaped shard", `{"shards":[{"definitely_not":1}]}`, "bad_shard"},
		{"skewed checkpoint", `{"shards":[{"version":99,"cursor":{"lo":0,"hi":1},"runs_done":0}]}`, "bad_shard"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+"/v1/merge", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
			}
			var body struct {
				Error errorBody `json:"error"`
			}
			if err := json.Unmarshal(data, &body); err != nil {
				t.Fatal(err)
			}
			if body.Error.Code != tc.code {
				t.Fatalf("code %q, want %q", body.Error.Code, tc.code)
			}
		})
	}
}

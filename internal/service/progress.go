package service

import (
	"sync"

	"kset"
	"kset/internal/stats"
)

// Progress is a concurrency-safe stats.Collector for live campaign
// observation. Campaign workers fork lock-guarded shards and observe into
// them while the run is in flight; Snapshot merges the joined base with
// every live shard into a fresh Accumulator at any moment, giving the SSE
// stream monotone mid-run snapshots. The final, worker-count-invariant
// statistics are NOT read from here — they come from the campaign's own
// Wait(), so the stream's terminal event is byte-identical to an
// in-process RunCampaign of the same job.
type Progress struct {
	mu     sync.Mutex
	joined stats.Accumulator
	live   []*progressShard
}

var _ kset.Collector = (*Progress)(nil)

// Observe records one observation directly into the joined base.
func (p *Progress) Observe(o stats.Observation) {
	p.mu.Lock()
	p.joined.Observe(o)
	p.mu.Unlock()
}

// Fork registers and returns a live shard for one campaign worker.
func (p *Progress) Fork() stats.Collector {
	s := &progressShard{}
	p.mu.Lock()
	p.live = append(p.live, s)
	p.mu.Unlock()
	return s
}

// Join folds a forked shard into the joined base and retires it from the
// live set. The campaign calls Join in worker order; since Snapshot
// results are advisory, Progress only needs the merge to be atomic, not
// ordered.
func (p *Progress) Join(c stats.Collector) {
	s, ok := c.(*progressShard)
	if !ok {
		return
	}
	p.mu.Lock()
	s.mu.Lock()
	p.joined.Merge(&s.acc)
	s.mu.Unlock()
	for i := range p.live {
		if p.live[i] == s {
			p.live = append(p.live[:i], p.live[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// Snapshot merges the joined base with every live shard into a fresh,
// caller-owned Accumulator. Successive snapshots are monotone: every
// counter is non-decreasing, because observations only accumulate.
func (p *Progress) Snapshot() *stats.Accumulator {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.joined.Snapshot()
	for _, s := range p.live {
		s.mu.Lock()
		out.Merge(&s.acc)
		s.mu.Unlock()
	}
	return out
}

// Runs returns the number of observations recorded so far — the cheap
// progress counter for status endpoints.
func (p *Progress) Runs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.joined.Runs
	for _, s := range p.live {
		s.mu.Lock()
		n += s.acc.Runs
		s.mu.Unlock()
	}
	return n
}

// progressShard is one worker's lock-guarded accumulator.
type progressShard struct {
	mu  sync.Mutex
	acc stats.Accumulator
}

// Observe implements stats.Collector.
func (s *progressShard) Observe(o stats.Observation) {
	s.mu.Lock()
	s.acc.Observe(o)
	s.mu.Unlock()
}

// Fork implements stats.Collector; a shard is a leaf, so it hands out an
// independent shard rather than splitting further.
func (s *progressShard) Fork() stats.Collector { return &progressShard{} }

// Join implements stats.Collector by folding the forked shard back in.
func (s *progressShard) Join(c stats.Collector) {
	o, ok := c.(*progressShard)
	if !ok {
		return
	}
	s.mu.Lock()
	o.mu.Lock()
	s.acc.Merge(&o.acc)
	o.mu.Unlock()
	s.mu.Unlock()
}

package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"kset"
)

// State is a job's lifecycle phase.
type State string

// The job lifecycle: Queued → Running → one of Done, Failed or Canceled.
const (
	// StateQueued: accepted, waiting in its tenant's queue.
	StateQueued State = "queued"
	// StateRunning: dispatched, scenarios in flight.
	StateRunning State = "running"
	// StateDone: completed; the final stats (or sweep results) are set.
	StateDone State = "done"
	// StateFailed: aborted by an execution error.
	StateFailed State = "failed"
	// StateCanceled: canceled by DELETE, client disconnect or shutdown
	// before completing.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one entry of a job's ordered event log — the unit of the SSE
// stream. Every subscriber replays the log from the start, so the stream
// a late subscriber sees is a prefix-complete copy of an early one's.
type Event struct {
	// Seq is the event's position in the log (the SSE id).
	Seq int
	// Type is the SSE event name: "running", "snapshot", "stats",
	// "sweep", "error" or "canceled".
	Type string
	// Data is the event's pre-encoded JSON payload.
	Data []byte
}

// Job is one accepted submission: a compiled spec, its lifecycle state
// and its event log. All mutable state is guarded by mu; subscribers
// wait on cond for new events.
type Job struct {
	// ID is the job's handle ("j-1", "j-2", …).
	ID string
	// Tenant is the queue the job was accepted into.
	Tenant string

	compiled *CompiledJob
	progress *Progress
	cancel   context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	state  State
	events []Event
	stats  *kset.CampaignStats
	sweep  []kset.SweepResult
	err    error
	done   chan struct{}
}

// newJob builds a queued job around a compiled spec.
func newJob(id string, c *CompiledJob) *Job {
	j := &Job{
		ID:       id,
		Tenant:   c.Spec.Tenant,
		compiled: c,
		progress: &Progress{},
		state:    StateQueued,
		done:     make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// publish appends one event to the log and wakes subscribers. The
// payload is marshaled compactly; marshal errors cannot happen for the
// service's own payload types and would surface as an "error" event
// downstream, so publish keeps the log consistent by encoding first.
func (j *Job) publish(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{}`)
	}
	j.mu.Lock()
	j.events = append(j.events, Event{Seq: len(j.events), Type: typ, Data: data})
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish moves the job to a terminal state, records the outcome, appends
// the terminal event and releases waiters.
func (j *Job) finish(state State, typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{}`)
	}
	j.mu.Lock()
	j.state = state
	j.events = append(j.events, Event{Seq: len(j.events), Type: typ, Data: data})
	j.cond.Broadcast()
	j.mu.Unlock()
	close(j.done)
}

// Cancel requests cancellation: in-flight work is stopped via the job's
// context; a still-queued job is finished directly (the scheduler skips
// canceled jobs at dispatch). Canceling a terminal job is a no-op.
func (j *Job) Cancel() {
	j.mu.Lock()
	state := j.state
	if state == StateQueued {
		j.state = StateCanceled
	}
	cancel := j.cancel
	j.mu.Unlock()
	switch {
	case state == StateQueued:
		j.finishCanceled()
	case state == StateRunning && cancel != nil:
		cancel()
	}
}

// finishCanceled emits the canceled terminal event.
func (j *Job) finishCanceled() {
	data, _ := json.Marshal(errorBody{Code: "canceled", Message: "job canceled"})
	j.mu.Lock()
	j.events = append(j.events, Event{Seq: len(j.events), Type: "canceled", Data: data})
	j.cond.Broadcast()
	j.mu.Unlock()
	close(j.done)
}

// run executes the job under ctx, publishing periodic snapshots and the
// terminal event. The scheduler calls it from a worker slot; it returns
// when the job is terminal.
func (j *Job) run(ctx context.Context, snapshotEvery time.Duration) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while queued; the terminal event is already published.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()
	j.publish("running", statusPayload{ID: j.ID, Tenant: j.Tenant, State: StateRunning})

	stop := make(chan struct{})
	var ticking sync.WaitGroup
	if snapshotEvery > 0 {
		ticking.Add(1)
		go func() {
			defer ticking.Done()
			t := time.NewTicker(snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					j.publish("snapshot", j.progress.Snapshot())
				}
			}
		}()
	}

	var (
		stats *kset.CampaignStats
		sweep []kset.SweepResult
		err   error
	)
	if j.compiled.Sweep() {
		sweep, err = kset.RunSweep(ctx, j.compiled.points,
			j.compiled.options([]kset.CampaignOption{kset.CollectInto(j.progress)})...)
	} else {
		stats, err = j.compiled.sys.RunSource(ctx, j.compiled.src,
			j.compiled.options([]kset.CampaignOption{kset.CollectInto(j.progress)})...)
	}
	close(stop)
	ticking.Wait()

	// The stream always carries at least one snapshot, emitted after the
	// run settles so the last snapshot covers every completed scenario.
	j.publish("snapshot", j.progress.Snapshot())

	j.mu.Lock()
	j.stats, j.sweep, j.err = stats, sweep, err
	j.mu.Unlock()
	switch {
	case err != nil && ctx.Err() != nil:
		j.finish(StateCanceled, "canceled", errorBody{Code: "canceled", Message: err.Error()})
	case err != nil:
		j.finish(StateFailed, "error", errorBody{Code: "run_failed", Message: err.Error()})
	case sweep != nil:
		j.finish(StateDone, "sweep", sweep)
	default:
		j.finish(StateDone, "stats", stats)
	}
}

// statusPayload is the JSON shape of a job's status.
type statusPayload struct {
	// ID, Tenant, Label and State identify the job and its phase.
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Label  string `json:"label,omitempty"`
	State  State  `json:"state"`
	// Runs counts scenarios completed so far; TotalRuns is the known
	// total (omitted when the source size is unknown).
	Runs      int64 `json:"runs"`
	TotalRuns int64 `json:"total_runs,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Stats and Sweep carry a terminal job's results.
	Stats *kset.CampaignStats `json:"stats,omitempty"`
	Sweep []kset.SweepResult  `json:"sweep,omitempty"`
}

// Status returns the job's current status; withResults includes the
// terminal stats or sweep results.
func (j *Job) Status(withResults bool) statusPayload {
	j.mu.Lock()
	st := statusPayload{
		ID:     j.ID,
		Tenant: j.Tenant,
		Label:  j.compiled.Spec.Label,
		State:  j.state,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if withResults {
		st.Stats, st.Sweep = j.stats, j.sweep
	}
	j.mu.Unlock()
	st.Runs = j.progress.Runs()
	if total, ok := j.compiled.TotalRuns(); ok {
		st.TotalRuns = total
	}
	return st
}

// Events streams the job's event log through fn in order, blocking for
// new events until the job is terminal and the log fully delivered.
// It returns fn's first error, or ctx.Err() if the subscriber's context
// ends first.
func (j *Job) Events(ctx context.Context, fn func(Event) error) error {
	// Wake the cond waiter when the subscriber disconnects; without this
	// a subscriber of an idle job would sleep past its own cancellation.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.events) && !j.state.Terminal() && ctx.Err() == nil {
			j.cond.Wait()
		}
		batch := j.events[next:]
		terminal := j.state.Terminal()
		j.mu.Unlock()

		if err := ctx.Err(); err != nil {
			return err
		}
		for _, ev := range batch {
			if err := fn(ev); err != nil {
				return err
			}
			next++
		}
		if terminal && len(batch) == 0 {
			return nil
		}
	}
}

// errorBody is the JSON error payload of 4xx/5xx responses and terminal
// error events: {"code": ..., "message": ...}.
type errorBody struct {
	// Code is the machine-readable error class; Message the human detail.
	Code    string `json:"code"`
	Message string `json:"message"`
}

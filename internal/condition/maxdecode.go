package condition

import "kset/internal/vector"

// This file gives MaxCondition a closed-form implementation of the
// Definition-4 view decoding
//
//	h_ℓ(J) = ( ∩_{I ∈ C, J ≤ I} max_ℓ(I) ) ∩ val(J),
//
// replacing the generic m^{#⊥(J)} completion enumeration with an
// O(|val(J)|·ℓ) characterization. DecodeView dispatches to it through the
// ViewDecoder interface; its equivalence with the enumeration is property-
// tested, and BenchmarkDecodeAblation quantifies the speedup.
//
// Characterization. For the max_ℓ condition C = {I : Σ_{v∈max_ℓ(I)} #_v(I)
// > x}, a value u ∈ val(J) is *excluded* from h_ℓ(J) exactly when some
// completion I ∈ C of J has at least ℓ distinct values greater than u
// (then u ∉ max_ℓ(I)). Writing a_1 > … > a_c for the distinct values of J
// above u and b = #_⊥(J), a worst completion keeps the s highest of them,
// adds ℓ−s fresh values above L = max(u, a_{s+1}), and pours every
// remaining ⊥ entry into those top-ℓ values, reaching top-ℓ mass
// mass_s(J) + b (mass_s = entries of J holding a_1..a_s). Such a
// completion exists for a given s iff
//
//	ℓ−s ≤ b                      (enough ⊥ entries to host the fresh values)
//	m − L − s ≥ ℓ−s  (when s<ℓ)  (enough free integer slots above L)
//
// and it lands in C iff mass_s + b > x. u survives iff no s ∈ [0, min(c,ℓ)]
// satisfies all three.

// ViewDecoder is implemented by conditions that can compute the
// Definition-4 view decoding faster than by completion enumeration.
type ViewDecoder interface {
	// DecodeView returns (h_ℓ(J), true), or (∅, false) when no member
	// contains J.
	DecodeView(j vector.Vector) (vector.Set, bool)
}

var _ ViewDecoder = (*MaxCondition)(nil)

// DecodeView implements ViewDecoder with the closed-form characterization
// above.
func (c *MaxCondition) DecodeView(j vector.Vector) (vector.Set, bool) {
	if len(j) != c.n {
		return vector.Set{}, false
	}
	vals := j.Vals()
	// One counting pass replaces the per-value j.Count scans; Vals has
	// already rejected values outside the 0..64 domain, so the fixed
	// tables below cannot overflow. counts[0] is #_⊥(J).
	var counts [65]int
	for _, x := range j {
		counts[x]++
	}
	b := counts[0]

	// Inline P(J): the top-ℓ mass plus the ⊥ budget must exceed x (the
	// all-⊥ view is contained in every member; the constructor guarantees
	// m ≥ 1 and n > x, so the condition is non-empty).
	if b == c.n {
		return vector.Set{}, true
	}
	topMass, topSeen := 0, 0
	vals.ForEachDesc(func(u vector.Value) bool {
		if topSeen == c.l {
			return false
		}
		topMass += counts[u]
		topSeen++
		return true
	})
	if topMass+b <= c.x {
		return vector.Set{}, false
	}

	var h vector.Set
	// Walk val(J) from the greatest down; counts of values above the
	// current u accumulate into prefix masses. The scratch lives in
	// fixed-size stack arrays (a Set holds at most 64 values), keeping the
	// decode allocation-free.
	//
	// above[i] holds the i-th greatest value of J; masses[i] the number of
	// J entries holding one of the i greatest values.
	var above [64]vector.Value
	var masses [65]int
	seen := 0
	vals.ForEachDesc(func(u vector.Value) bool {
		if !c.excluded(u, above[:seen], masses[:seen+1], b) {
			h = h.Add(u)
		}
		above[seen] = u
		masses[seen+1] = masses[seen] + counts[u]
		seen++
		return true
	})
	return h, true
}

// excluded reports whether some completion of the view belongs to the
// condition while pushing u out of its ℓ greatest values. above holds the
// distinct view values greater than u (descending); masses[s] is the
// number of view entries holding one of the s greatest.
func (c *MaxCondition) excluded(u vector.Value, above []vector.Value, masses []int, b int) bool {
	cAbove := len(above)
	sMax := cAbove
	if c.l < sMax {
		sMax = c.l
	}
	for s := sMax; s >= 0; s-- {
		fresh := c.l - s
		if fresh > b {
			continue
		}
		// L = max(u, a_{s+1}): the fresh values must exceed both u and the
		// next retained-below view value.
		l := int(u)
		if s < cAbove && int(above[s]) > l {
			l = int(above[s])
		}
		if fresh > 0 && c.m-l-s < fresh {
			continue
		}
		if masses[s]+b > c.x {
			return true
		}
	}
	return false
}

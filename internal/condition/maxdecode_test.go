package condition

import (
	"math/rand"
	"testing"

	"kset/internal/vector"
)

// TestMaxDecodeMatchesEnumerationExhaustive compares the closed-form
// MaxCondition decoder with the Definition-4 enumeration on every view of
// every member, for a grid of parameters.
func TestMaxDecodeMatchesEnumerationExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive view enumeration")
	}
	for _, tc := range []struct{ n, m, x, l int }{
		{4, 3, 1, 1}, {4, 3, 2, 1}, {4, 3, 2, 2}, {4, 4, 2, 2},
		{5, 2, 2, 1}, {5, 3, 3, 2}, {4, 5, 1, 3},
	} {
		c := MustNewMax(tc.n, tc.m, tc.x, tc.l)
		c.ForEachMember(func(i vector.Vector) bool {
			full := i.Clone()
			vector.ForEachView(full, tc.n, func(j vector.Vector) bool {
				fast, okF := c.DecodeView(j)
				slow, okS := DecodeViewGeneric(c, j)
				if okF != okS {
					t.Fatalf("params %+v view %v: ok fast=%v enum=%v", tc, j, okF, okS)
				}
				if okF && !fast.Equal(slow) {
					t.Fatalf("params %+v view %v: fast=%v enum=%v", tc, j, fast, slow)
				}
				return true
			})
			return true
		})
	}
}

// TestMaxDecodeMatchesEnumerationRandom fuzzes arbitrary views (not only
// views of members), where the decoding may be undefined.
func TestMaxDecodeMatchesEnumerationRandom(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 800; trial++ {
		n := 3 + r.Intn(4)
		m := 2 + r.Intn(4)
		x := r.Intn(n - 1)
		l := 1 + r.Intn(3)
		c := MustNewMax(n, m, x, l)
		j := vector.New(n)
		for i := range j {
			if r.Intn(3) == 0 {
				j[i] = vector.Bottom
			} else {
				j[i] = vector.Value(1 + r.Intn(m))
			}
		}
		fast, okF := c.DecodeView(j)
		slow, okS := DecodeViewGeneric(c, j)
		if okF != okS {
			t.Fatalf("n=%d m=%d x=%d ℓ=%d view %v: ok fast=%v enum=%v", n, m, x, l, j, okF, okS)
		}
		if okF && !fast.Equal(slow) {
			t.Fatalf("n=%d m=%d x=%d ℓ=%d view %v: fast=%v enum=%v", n, m, x, l, j, fast, slow)
		}
	}
}

func TestMaxDecodeEdgeCases(t *testing.T) {
	c := MustNewMax(4, 3, 1, 1)
	// Wrong-size view.
	if _, ok := c.DecodeView(vector.OfInts(1, 2)); ok {
		t.Error("wrong-size view must not decode")
	}
	// View outside every member (P false): the full vector [3 2 1 1] has
	// top-1 mass 1 ≤ x=1 and no ⊥ to fix it.
	if _, ok := c.DecodeView(vector.OfInts(3, 2, 1, 1)); ok {
		t.Error("P-false view must not decode")
	}
	// Full member decodes to its recognized set.
	i := vector.OfInts(3, 3, 1, 2)
	h, ok := c.DecodeView(i)
	if !ok || !h.Equal(vector.SetOf(3)) {
		t.Errorf("member decode = %v, %v", h, ok)
	}
	// All-⊥ view: defined (members exist) with empty value set.
	h, ok = c.DecodeView(vector.New(4))
	if !ok || !h.Empty() {
		t.Errorf("all-⊥ decode = %v, %v", h, ok)
	}
}

// TestMaxDecodeUsedByDispatch makes sure DecodeView actually routes
// MaxCondition through the closed form (guards against the interface
// assertion silently breaking).
func TestMaxDecodeUsedByDispatch(t *testing.T) {
	var c Condition = MustNewMax(4, 3, 1, 1)
	if _, ok := c.(ViewDecoder); !ok {
		t.Fatal("MaxCondition must implement ViewDecoder")
	}
}

// BenchmarkDecodeAblation quantifies the closed form against the generic
// enumeration on a view with 4 missing entries over m=6 values (6^4
// completions for the generic path).
func BenchmarkDecodeAblation(b *testing.B) {
	c := MustNewMax(12, 6, 4, 2)
	j := vector.OfInts(6, 6, 6, 6, 5, 2, 1, 3, 0, 0, 0, 0)
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := c.DecodeView(j); !ok {
				b.Fatal("undecodable")
			}
		}
	})
	b.Run("enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := DecodeViewGeneric(c, j); !ok {
				b.Fatal("undecodable")
			}
		}
	})
}

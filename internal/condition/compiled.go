package condition

import (
	"fmt"
	"math/bits"
	"sort"

	"kset/internal/kerr"
	"kset/internal/vector"
)

// Indexed is implemented by condition representations that expose their
// members by position without copying: Explicit and Compiled. Positional
// access is what lets the legality checker, the recognizer search and the
// streaming layer walk a condition with zero per-member allocation. The
// vectors and sets returned by the accessors are the condition's own
// storage and must be treated as read-only.
type Indexed interface {
	Condition
	// Size returns the number of member vectors.
	Size() int
	// MemberAt returns member k (0 ≤ k < Size()), in insertion order.
	MemberAt(k int) vector.Vector
	// RecognizedAt returns h(MemberAt(k)).
	RecognizedAt(k int) vector.Set
}

// hashMul scrambles packed vector keys for the open-addressing table
// (Fibonacci hashing: the high bits of key·2⁶⁴/φ are well mixed).
const hashMul = 0x9e3779b97f4a7c15

// Compiled is the immutable, index-backed form of an enumerated condition.
// Compile an Explicit (or use CompileMax/CompileMin) once, then every
// Contains/Recognize/Lookup probe is one open-addressing lookup over the
// packed vector.Key64 keys — no string hashing, no map iteration, no
// allocation — and the per-member count and densest-mass tables answer the
// mass queries of legality checking and recognizer search in O(|set|)
// instead of O(n).
//
// A Compiled condition is a snapshot: it shares nothing with the Explicit
// it was compiled from, and it cannot be modified. That immutability is
// what makes it safe to share across campaign workers without locks.
type Compiled struct {
	n, m, l int

	flat []vector.Value // member k is flat[k*n : (k+1)*n]
	hs   []vector.Set   // h(member k)
	vals []vector.Set   // val(member k)

	// Membership index over the packable members: skeys holds their packed
	// keys in ascending order (Key64 packing is order-preserving, so this
	// is also the lexicographic member order), sidx maps a sorted position
	// back to the member index, and slots is the open-addressing table
	// from hashed key to sorted position (−1 = empty).
	skeys []uint64
	sidx  []int32
	slots []int32
	shift uint

	// strIdx indexes the members whose vectors do not pack into a Key64
	// (n > 10 or a value > 63); nil when every member packs.
	strIdx map[string]int

	// Per-member analysis tables: counts[k*(m+1)+v] = #_v(I_k), and
	// densest[dOff[k]+j] = the total mass of the j+1 most frequent values
	// of I_k (prefix sums of its value counts sorted descending).
	counts  []uint16
	densest []uint16
	dOff    []int32
}

var _ Indexed = (*Compiled)(nil)

// Builder accumulates validated (vector, recognized set) pairs and
// compiles them into a Compiled condition. It maintains the membership
// index incrementally, so Add detects duplicates with the same contract as
// Explicit.Add. A Builder must not be used after Compile.
type Builder struct {
	n, m, l int
	flat    []vector.Value
	hs      []vector.Set
	keys    []uint64 // packed key of member k; 0 = not packable
	slots   []int32  // build-time open addressing: member index or −1
	shift   uint
	strIdx  map[string]int
}

// NewBuilder returns an empty Builder for a condition over {1..m}^n with
// parameter ℓ, rejecting the same out-of-range parameterizations as
// NewExplicit.
func NewBuilder(n, m, l int) (*Builder, error) {
	switch {
	case n < 1:
		return nil, fmt.Errorf("condition: builder: n=%d, want ≥ 1: %w", n, kerr.ErrBadParams)
	case m < 1:
		return nil, fmt.Errorf("condition: builder: m=%d, want ≥ 1: %w", m, kerr.ErrBadParams)
	case m > int(vector.MaxSetValue):
		return nil, fmt.Errorf("condition: builder: m=%d exceeds the cap %d: %w", m, vector.MaxSetValue, kerr.ErrDomainTooLarge)
	case l < 1:
		return nil, fmt.Errorf("condition: builder: ℓ=%d, want ≥ 1: %w", l, kerr.ErrBadParams)
	}
	return &Builder{n: n, m: m, l: l}, nil
}

// MustNewBuilder is NewBuilder that panics on error; for fixed
// constructions whose parameters are known good.
func MustNewBuilder(n, m, l int) *Builder {
	b, err := NewBuilder(n, m, l)
	if err != nil {
		panic(err)
	}
	return b
}

// Size returns the number of members added so far.
func (b *Builder) Size() int { return len(b.hs) }

// Add appends vector i with recognized set h, copying i into the builder's
// flat storage. It enforces the same contract as Explicit.Add: wrong size,
// out-of-domain or ⊥ entries, and validity-violating h are errors;
// re-adding a vector is a no-op with the same h and an error with a
// different one.
func (b *Builder) Add(i vector.Vector, h vector.Set) error {
	if len(i) != b.n {
		return fmt.Errorf("condition: vector %v has size %d, want %d", i, len(i), b.n)
	}
	for _, v := range i {
		if !v.IsProposable() || v > vector.Value(b.m) {
			return fmt.Errorf("condition: vector %v has value %v outside {1..%d}", i, v, b.m)
		}
	}
	want := b.l
	if nv := i.Vals().Len(); nv < want {
		want = nv
	}
	if h.Len() != want || !h.SubsetOf(i.Vals()) {
		return fmt.Errorf("condition: h=%v violates (x,%d)-validity for %v", h, b.l, i)
	}
	if idx, ok := b.indexOf(i); ok {
		if !b.hs[idx].Equal(h) {
			return fmt.Errorf("condition: vector %v already present with h=%v", i, b.hs[idx])
		}
		return nil
	}
	idx := len(b.hs)
	b.flat = append(b.flat, i...)
	b.hs = append(b.hs, h)
	if key, ok := i.Key64(); ok {
		b.keys = append(b.keys, key)
		b.insertKey(key, idx)
	} else {
		b.keys = append(b.keys, 0)
		if b.strIdx == nil {
			b.strIdx = make(map[string]int)
		}
		b.strIdx[i.Key()] = idx
	}
	return nil
}

// MustAdd is Add that panics on error; for fixed constructions.
func (b *Builder) MustAdd(i vector.Vector, h vector.Set) {
	if err := b.Add(i, h); err != nil {
		panic(err)
	}
}

// indexOf finds the member index of i in the build-time index.
func (b *Builder) indexOf(i vector.Vector) (int, bool) {
	if key, ok := i.Key64(); ok {
		if len(b.slots) == 0 {
			return 0, false
		}
		mask := uint64(len(b.slots) - 1)
		for s := (key * hashMul) >> b.shift; ; s = (s + 1) & mask {
			idx := b.slots[s]
			if idx < 0 {
				return 0, false
			}
			if b.keys[idx] == key {
				return int(idx), true
			}
		}
	}
	idx, ok := b.strIdx[i.Key()]
	return idx, ok
}

// insertKey adds one packed key to the build-time table, growing it to
// keep the load factor at or below 1/2.
func (b *Builder) insertKey(key uint64, idx int) {
	if 2*(len(b.hs)+1) > len(b.slots) {
		b.grow()
	}
	mask := uint64(len(b.slots) - 1)
	s := (key * hashMul) >> b.shift
	for b.slots[s] >= 0 {
		s = (s + 1) & mask
	}
	b.slots[s] = int32(idx)
}

// grow doubles the build-time table and rehashes the packable members.
func (b *Builder) grow() {
	size := 8
	for size < 4*(len(b.hs)+1) {
		size <<= 1
	}
	b.slots = make([]int32, size)
	for s := range b.slots {
		b.slots[s] = -1
	}
	b.shift = uint(64 - bits.TrailingZeros(uint(size)))
	mask := uint64(size - 1)
	for idx, key := range b.keys {
		if key == 0 {
			continue
		}
		s := (key * hashMul) >> b.shift
		for b.slots[s] >= 0 {
			s = (s + 1) & mask
		}
		b.slots[s] = int32(idx)
	}
}

// Compile freezes the builder into an immutable Compiled condition:
// members keep their insertion order, the packed keys are sorted into the
// final probe array, and the per-member count and densest-mass tables are
// precomputed. The builder must not be used afterwards (the compiled
// condition takes ownership of its storage).
func (b *Builder) Compile() *Compiled {
	size := len(b.hs)
	c := &Compiled{
		n: b.n, m: b.m, l: b.l,
		flat:   b.flat,
		hs:     b.hs,
		strIdx: b.strIdx,
	}

	// Sorted key array over the packable members, and the open-addressing
	// table over sorted positions.
	npack := 0
	for _, key := range b.keys {
		if key != 0 {
			npack++
		}
	}
	c.sidx = make([]int32, 0, npack)
	for idx, key := range b.keys {
		if key != 0 {
			c.sidx = append(c.sidx, int32(idx))
		}
	}
	sort.Slice(c.sidx, func(a, z int) bool { return b.keys[c.sidx[a]] < b.keys[c.sidx[z]] })
	c.skeys = make([]uint64, npack)
	for pos, idx := range c.sidx {
		c.skeys[pos] = b.keys[idx]
	}
	tsize := 8
	for tsize < 2*npack {
		tsize <<= 1
	}
	c.slots = make([]int32, tsize)
	for s := range c.slots {
		c.slots[s] = -1
	}
	c.shift = uint(64 - bits.TrailingZeros(uint(tsize)))
	mask := uint64(tsize - 1)
	for pos, key := range c.skeys {
		s := (key * hashMul) >> c.shift
		for c.slots[s] >= 0 {
			s = (s + 1) & mask
		}
		c.slots[s] = int32(pos)
	}

	// Per-member tables: value sets, counts, and densest-mass prefixes.
	c.vals = make([]vector.Set, size)
	c.counts = make([]uint16, size*(b.m+1))
	c.dOff = make([]int32, size+1)
	var desc []uint16
	for k := 0; k < size; k++ {
		i := c.MemberAt(k)
		c.vals[k] = i.Vals()
		row := c.counts[k*(b.m+1) : (k+1)*(b.m+1)]
		for _, v := range i {
			row[v]++
		}
		desc = desc[:0]
		for v := 1; v <= b.m; v++ {
			if row[v] > 0 {
				desc = append(desc, row[v])
			}
		}
		sort.Slice(desc, func(a, z int) bool { return desc[a] > desc[z] })
		c.dOff[k] = int32(len(c.densest))
		sum := uint16(0)
		for _, cnt := range desc {
			sum += cnt
			c.densest = append(c.densest, sum)
		}
	}
	c.dOff[size] = int32(len(c.densest))
	return c
}

// Compile builds the immutable compiled index of an explicit condition.
// The result is a snapshot: vectors added to e afterwards are not
// reflected. kset.System compiles its explicit condition at construction,
// so campaign membership checks and member streaming ride the index.
func Compile(e *Explicit) *Compiled {
	b := MustNewBuilder(e.n, e.m, e.l)
	for k := range e.vecs {
		b.MustAdd(e.vecs[k], e.hs[k])
	}
	return b.Compile()
}

// CompileMax materializes the max_ℓ-generated (x,ℓ)-legal condition of
// NewMax as a compiled condition by enumerating {1..m}^n — the
// analysis-side form used by the lattice builders, practical at small n
// and m only (the enumeration is m^n; the analytic MaxCondition remains
// the right form for protocol runs at scale).
func CompileMax(n, m, x, l int) (*Compiled, error) {
	if _, err := NewMax(n, m, x, l); err != nil {
		return nil, err
	}
	b := MustNewBuilder(n, m, l)
	vector.ForEach(n, m, func(i vector.Vector) bool {
		if top := i.TopL(l); i.MassOf(top) > x {
			b.MustAdd(i, top)
		}
		return true
	})
	return b.Compile(), nil
}

// MustCompileMax is CompileMax that panics on error.
func MustCompileMax(n, m, x, l int) *Compiled {
	c, err := CompileMax(n, m, x, l)
	if err != nil {
		panic(err)
	}
	return c
}

// CompileMin is the min_ℓ twin of CompileMax: it materializes the
// min_ℓ-generated (x,ℓ)-legal condition of NewMin as a compiled condition.
func CompileMin(n, m, x, l int) (*Compiled, error) {
	if _, err := NewMin(n, m, x, l); err != nil {
		return nil, err
	}
	b := MustNewBuilder(n, m, l)
	vector.ForEach(n, m, func(i vector.Vector) bool {
		if bot := i.BottomL(l); i.MassOf(bot) > x {
			b.MustAdd(i, bot)
		}
		return true
	})
	return b.Compile(), nil
}

// MustCompileMin is CompileMin that panics on error.
func MustCompileMin(n, m, x, l int) *Compiled {
	c, err := CompileMin(n, m, x, l)
	if err != nil {
		panic(err)
	}
	return c
}

// N implements Condition.
func (c *Compiled) N() int { return c.n }

// M implements Condition.
func (c *Compiled) M() int { return c.m }

// L implements Condition.
func (c *Compiled) L() int { return c.l }

// Size implements Indexed.
func (c *Compiled) Size() int { return len(c.hs) }

// MemberAt implements Indexed: member k as a read-only view into the
// condition's flat storage (zero-copy; do not mutate).
func (c *Compiled) MemberAt(k int) vector.Vector {
	return vector.Vector(c.flat[k*c.n : (k+1)*c.n : (k+1)*c.n])
}

// RecognizedAt implements Indexed.
func (c *Compiled) RecognizedAt(k int) vector.Set { return c.hs[k] }

// ValsAt returns val(MemberAt(k)) from the precomputed table.
func (c *Compiled) ValsAt(k int) vector.Set { return c.vals[k] }

// IndexOf returns the member index of i, probing the open-addressing
// table over packed keys (one multiply, a shift and a near-always-single
// probe) or the string-key fallback for vectors that do not pack. It never
// allocates on the packed path.
func (c *Compiled) IndexOf(i vector.Vector) (int, bool) {
	if len(i) != c.n {
		return 0, false
	}
	if key, ok := i.Key64(); ok {
		if len(c.skeys) == 0 {
			return 0, false
		}
		mask := uint64(len(c.slots) - 1)
		for s := (key * hashMul) >> c.shift; ; s = (s + 1) & mask {
			pos := c.slots[s]
			if pos < 0 {
				return 0, false
			}
			if c.skeys[pos] == key {
				return int(c.sidx[pos]), true
			}
		}
	}
	idx, ok := c.strIdx[i.Key()]
	return idx, ok
}

// Contains implements Condition via one IndexOf probe.
func (c *Compiled) Contains(i vector.Vector) bool {
	_, ok := c.IndexOf(i)
	return ok
}

// Recognize implements Condition via one IndexOf probe.
func (c *Compiled) Recognize(i vector.Vector) vector.Set {
	if idx, ok := c.IndexOf(i); ok {
		return c.hs[idx]
	}
	return vector.Set{}
}

// Lookup returns h(i) and whether i is a member, in a single probe — the
// fused Contains+Recognize the view decoder uses per completion.
func (c *Compiled) Lookup(i vector.Vector) (vector.Set, bool) {
	if idx, ok := c.IndexOf(i); ok {
		return c.hs[idx], true
	}
	return vector.Set{}, false
}

// ForEachMember implements Condition with a zero-copy iteration over the
// flat member storage, in insertion order. The yielded vectors are the
// condition's own storage: Clone to retain or mutate.
func (c *Compiled) ForEachMember(fn func(vector.Vector) bool) {
	for k := 0; k < len(c.hs); k++ {
		if !fn(c.MemberAt(k)) {
			return
		}
	}
}

// Members returns an independent deep copy of the member vectors, in
// insertion order — the safe counterpart of the Indexed accessors for
// callers that want to keep or mutate the vectors.
func (c *Compiled) Members() []vector.Vector {
	out := make([]vector.Vector, len(c.hs))
	for k := range out {
		out[k] = c.MemberAt(k).Clone()
	}
	return out
}

// Count returns #_v(I_k) from the precomputed count table.
func (c *Compiled) Count(k int, v vector.Value) int {
	if v < 1 || int(v) > c.m {
		return 0
	}
	return int(c.counts[k*(c.m+1)+int(v)])
}

// Mass returns Σ_{v∈s} #_v(I_k) — the density/distance mass of member k
// against the value set s — in O(|s|) table lookups instead of an O(n)
// vector scan, with no allocation. Values of s beyond the condition's
// domain {1..m} contribute nothing (a set may hold values up to 64).
func (c *Compiled) Mass(k int, s vector.Set) int {
	row := c.counts[k*(c.m+1) : (k+1)*(c.m+1)]
	mass := 0
	s.ForEach(func(v vector.Value) bool {
		if int(v) <= c.m {
			mass += int(row[v])
		}
		return true
	})
	return mass
}

// DensestMass returns the largest total number of entries of member k
// occupied by at most l distinct values (the sum of its l largest value
// counts), read from the precomputed prefix table. The Theorem 5/7
// constructions bound it to rule out recognizers.
func (c *Compiled) DensestMass(k, l int) int {
	off, end := int(c.dOff[k]), int(c.dOff[k+1])
	if l <= 0 || off == end {
		return 0
	}
	if j := off + l; j < end {
		end = j
	}
	return int(c.densest[end-1])
}

package condition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kset/internal/vector"
)

// Property: a random subset of a max_ℓ condition is still (x,ℓ)-legal with
// the restricted recognizer — legality's properties are universally
// quantified over members, so they survive deletion.
func TestQuickSubconditionsStayLegal(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(81))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(2)
		m := 2 + r.Intn(2)
		x := r.Intn(n - 1)
		l := 1 + r.Intn(2)
		full := MustNewMax(n, m, x, l)
		sub := MustNewExplicit(n, m, l)
		full.ForEachMember(func(i vector.Vector) bool {
			if r.Intn(3) == 0 {
				sub.MustAdd(i.Clone(), i.TopL(l))
			}
			return true
		})
		return Check(sub, x, CheckOptions{MaxSubsetSize: 3}) == nil
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: for any member I of a max_ℓ condition and any view J ≤ I with
// at most x missing entries, the decoded set satisfies Theorem 1's bounds
// and is a subset of max_ℓ(I).
func TestQuickDecodeWithinRecognized(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(82))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		m := 2 + r.Intn(3)
		x := r.Intn(n - 1)
		l := 1 + r.Intn(2)
		c := MustNewMax(n, m, x, l)
		// Draw a random member.
		var full vector.Vector
		for tries := 0; tries < 200; tries++ {
			cand := vector.New(n)
			for i := range cand {
				cand[i] = vector.Value(1 + r.Intn(m))
			}
			if c.Contains(cand) {
				full = cand
				break
			}
		}
		if full == nil {
			return true // condition too sparse to sample; vacuous
		}
		j := full.Clone()
		erase := r.Intn(x + 1)
		for i := 0; i < erase; i++ {
			j[r.Intn(n)] = vector.Bottom
		}
		h, ok := DecodeView(c, j)
		if !ok || h.Empty() || h.Len() > l {
			return false
		}
		return h.SubsetOf(c.Recognize(full))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the distance property's binding-α check agrees with checking
// every α ∈ [1, x] literally.
func TestQuickDistanceBindingAlpha(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(83))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(3)
		m := 2 + r.Intn(3)
		x := 1 + r.Intn(n-1)
		l := 1 + r.Intn(2)
		z := 2 + r.Intn(2)
		vs := make([]vector.Vector, z)
		hs := make([]vector.Set, z)
		for i := range vs {
			v := vector.New(n)
			for k := range v {
				v[k] = vector.Value(1 + r.Intn(m))
			}
			vs[i] = v
			hs[i] = v.TopL(l)
		}
		binding := CheckDistanceInstance(vs, hs, x) == nil

		// Literal check of every α.
		literal := true
		dg := vector.GeneralizedDistance(vs...)
		common := hs[0]
		for _, h := range hs[1:] {
			common = common.Intersect(h)
		}
		inter := vector.Intersect(vs...)
		for alpha := 1; alpha <= x; alpha++ {
			if dg <= x-alpha+1 && inter.MassOf(common) < alpha {
				literal = false
				break
			}
		}
		return binding == literal
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

package condition

import (
	"fmt"

	"kset/internal/vector"
)

// Property identifies one of the three clauses of (x,ℓ)-legality.
type Property int

// The three (x,ℓ)-legality properties of Definition 2.
const (
	Validity Property = iota + 1
	Density
	Distance
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case Validity:
		return "validity"
	case Density:
		return "density"
	case Distance:
		return "distance"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// Violation describes a witnessed failure of one legality property. It
// implements error.
type Violation struct {
	// Property is the violated clause.
	Property Property
	// Vectors are the witnessing member vectors (one for validity and
	// density; z ≥ 2 for distance).
	Vectors []vector.Vector
	// Alpha is the α of the violated distance instance (0 otherwise).
	Alpha int
	// Detail is a human-readable account of the failure.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("(x,ℓ)-%s violated: %s", v.Property, v.Detail)
}

// CheckOptions tunes Check. The zero value checks every property clause
// exhaustively, which is exponential in the condition size for the distance
// property (it quantifies over all subsets); cap with MaxSubsetSize for
// larger conditions.
type CheckOptions struct {
	// MaxSubsetSize caps the z of the distance-property subsets
	// {I_1..I_z}. 0 means |C| (fully exhaustive).
	MaxSubsetSize int
}

// Check verifies that the condition c, with its own recognizing function,
// is (x, c.L())-legal, returning a witnessed *Violation if not and nil if
// legal. The distance property is checked over every subset of members of
// size 2..MaxSubsetSize.
func Check(c Condition, x int, opts CheckOptions) *Violation {
	l := c.L()
	var members []vector.Vector
	c.ForEachMember(func(i vector.Vector) bool {
		members = append(members, i.Clone())
		return true
	})

	// Validity and density, per member.
	for _, i := range members {
		h := c.Recognize(i)
		want := min(l, i.Vals().Len())
		if h.Len() != want || !h.SubsetOf(i.Vals()) {
			return &Violation{
				Property: Validity,
				Vectors:  []vector.Vector{i},
				Detail:   fmt.Sprintf("h(%v)=%v, want %d values from val=%v", i, h, want, i.Vals()),
			}
		}
		if mass := i.MassOf(h); mass <= x {
			return &Violation{
				Property: Density,
				Vectors:  []vector.Vector{i},
				Detail:   fmt.Sprintf("Σ_{v∈h(I)}#_v(I) = %d ≤ x = %d for I=%v, h=%v", mass, x, i, h),
			}
		}
	}

	// Distance, over subsets.
	maxZ := opts.MaxSubsetSize
	if maxZ <= 0 || maxZ > len(members) {
		maxZ = len(members)
	}
	hs := make([]vector.Set, len(members))
	for k, i := range members {
		hs[k] = c.Recognize(i)
	}
	return checkDistanceSubsets(members, hs, x, maxZ)
}

// checkDistanceSubsets checks the distance property over every subset of
// size 2..maxZ of the given vectors with their recognized sets.
func checkDistanceSubsets(members []vector.Vector, hs []vector.Set, x, maxZ int) *Violation {
	idx := make([]int, 0, maxZ)
	var rec func(start int) *Violation
	rec = func(start int) *Violation {
		if len(idx) >= 2 {
			sub := make([]vector.Vector, len(idx))
			subH := make([]vector.Set, len(idx))
			for k, j := range idx {
				sub[k] = members[j]
				subH[k] = hs[j]
			}
			if v := CheckDistanceInstance(sub, subH, x); v != nil {
				return v
			}
		}
		if len(idx) == maxZ {
			return nil
		}
		for j := start; j < len(members); j++ {
			idx = append(idx, j)
			if v := rec(j + 1); v != nil {
				return v
			}
			idx = idx[:len(idx)-1]
		}
		return nil
	}
	return rec(0)
}

// CheckDistanceInstance checks the distance property for one specific set of
// vectors with their recognized sets: for every α ∈ [1,x] with
// d_G ≤ x−α+1, the intersecting vector must hold at least α entries with
// values of ∩_j h(I_j). Returns a Violation or nil.
//
// For a fixed subset the hypothesis holds exactly for α ≤ x−d_G+1, and the
// conclusion "mass ≥ α" is monotone in α, so checking the single binding
// instance α* = min(x, x−d_G+1) covers all of them.
func CheckDistanceInstance(vs []vector.Vector, hs []vector.Set, x int) *Violation {
	dg := vector.GeneralizedDistance(vs...)
	if dg > x {
		return nil // no α ∈ [1,x] satisfies d_G ≥ x−α+1
	}
	alpha := x - dg + 1
	if alpha > x {
		alpha = x // α ranges over [1,x]; d_G = 0 still only requires α = x
	}
	if alpha < 1 {
		return nil
	}
	common := hs[0]
	for _, h := range hs[1:] {
		common = common.Intersect(h)
	}
	inter := vector.Intersect(vs...)
	if got := inter.MassOf(common); got < alpha {
		return &Violation{
			Property: Distance,
			Vectors:  vs,
			Alpha:    alpha,
			Detail: fmt.Sprintf(
				"d_G=%d ≥ x−α+1=%d but ⊓ holds only %d entries of ∩h=%v (need ≥ α=%d)",
				dg, x-alpha+1, got, common, alpha),
		}
	}
	return nil
}

// ExistsRecognizer searches for any recognizing function making the
// enumerated condition (x,ℓ)-legal, by backtracking over the candidate
// recognized sets of each member with pairwise distance pruning and a full
// subset check on completion. It returns the witness assignment (parallel to
// Members()) when one exists. The search is exponential; it is intended for
// the small counterexample conditions of Section 3 and Appendix B.
func ExistsRecognizer(c *Explicit, x int) ([]vector.Set, bool) {
	members := c.Members()
	l := c.L()

	// Candidate h-sets per member: subsets of val(I) of size min(ℓ,|val|)
	// whose mass exceeds x (validity + density pre-filter).
	cands := make([][]vector.Set, len(members))
	for k, i := range members {
		vals := i.Vals()
		size := min(l, vals.Len())
		subsets := kSubsets(vals, size)
		for _, s := range subsets {
			if i.MassOf(s) > x {
				cands[k] = append(cands[k], s)
			}
		}
		if len(cands[k]) == 0 {
			return nil, false
		}
	}

	assign := make([]vector.Set, len(members))
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(members) {
			return checkDistanceSubsets(members, assign, x, len(members)) == nil
		}
		for _, s := range cands[k] {
			assign[k] = s
			ok := true
			// Prune: pairwise distance instances against assigned members.
			for j := 0; j < k && ok; j++ {
				ok = CheckDistanceInstance(
					[]vector.Vector{members[j], members[k]},
					[]vector.Set{assign[j], assign[k]}, x) == nil
			}
			if ok && rec(k+1) {
				return true
			}
		}
		assign[k] = vector.Set{}
		return false
	}
	if rec(0) {
		return assign, true
	}
	return nil, false
}

// kSubsets returns every subset of s with exactly k elements.
func kSubsets(s vector.Set, k int) []vector.Set {
	vals := s.Values()
	var out []vector.Set
	var cur vector.Set
	var rec func(start, left int)
	rec = func(start, left int) {
		if left == 0 {
			out = append(out, cur)
			return
		}
		for i := start; i+left <= len(vals); i++ {
			saved := cur
			cur = cur.Add(vals[i])
			rec(i+1, left-1)
			cur = saved
		}
	}
	rec(0, k)
	return out
}

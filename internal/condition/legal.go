package condition

import (
	"fmt"

	"kset/internal/vector"
)

// Property identifies one of the three clauses of (x,ℓ)-legality.
type Property int

// The three (x,ℓ)-legality properties of Definition 2.
const (
	Validity Property = iota + 1
	Density
	Distance
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case Validity:
		return "validity"
	case Density:
		return "density"
	case Distance:
		return "distance"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// Violation describes a witnessed failure of one legality property. It
// implements error.
type Violation struct {
	// Property is the violated clause.
	Property Property
	// Vectors are the witnessing member vectors (one for validity and
	// density; z ≥ 2 for distance).
	Vectors []vector.Vector
	// Alpha is the α of the violated distance instance (0 otherwise).
	Alpha int
	// Detail is a human-readable account of the failure.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("(x,ℓ)-%s violated: %s", v.Property, v.Detail)
}

// CheckOptions tunes Check. The zero value checks every property clause
// exhaustively, which is exponential in the condition size for the distance
// property (it quantifies over all subsets); cap with MaxSubsetSize for
// larger conditions.
type CheckOptions struct {
	// MaxSubsetSize caps the z of the distance-property subsets
	// {I_1..I_z}. 0 means |C| (fully exhaustive).
	MaxSubsetSize int
}

// Checker holds the reusable scratch of legality checking and recognizer
// search: member and witness buffers, the subset-recursion index stack and
// the intersecting-view scratch. One Checker verifying many conditions —
// a Figure-1 grid sweep above all — allocates nothing per probe on the
// success path (violations allocate their witness). A Checker is not safe
// for concurrent use; the zero value is ready.
type Checker struct {
	members    []vector.Vector
	hs         []vector.Set
	idx        []int
	sub        []vector.Vector
	subH       []vector.Set
	inter      vector.Vector
	interStack []vector.Value // per-depth intersecting views of the subset walk

	// Recognizer-search scratch: per-member candidate sets in one flat
	// buffer with offsets, and the value scratch of subset enumeration.
	candFlat []vector.Set
	candOff  []int
}

// NewChecker returns an empty Checker; its buffers grow to the largest
// condition seen and are reused afterwards.
func NewChecker() *Checker { return &Checker{} }

// load fills the checker's member/recognized buffers from c: borrowing
// storage positionally from Indexed conditions, cloning from the generic
// enumeration otherwise.
func (ck *Checker) load(c Condition) {
	ck.members = ck.members[:0]
	ck.hs = ck.hs[:0]
	if ix, ok := c.(Indexed); ok {
		for k, size := 0, ix.Size(); k < size; k++ {
			ck.members = append(ck.members, ix.MemberAt(k))
			ck.hs = append(ck.hs, ix.RecognizedAt(k))
		}
		return
	}
	c.ForEachMember(func(i vector.Vector) bool {
		ck.members = append(ck.members, i.Clone())
		return true
	})
	for _, i := range ck.members {
		ck.hs = append(ck.hs, c.Recognize(i))
	}
}

// Check verifies that the condition c, with its own recognizing function,
// is (x, c.L())-legal, returning a witnessed *Violation if not and nil if
// legal. The distance property is checked over every subset of members of
// size 2..MaxSubsetSize. The success path performs no allocation beyond
// the checker's amortized scratch growth.
func (ck *Checker) Check(c Condition, x int, opts CheckOptions) *Violation {
	l := c.L()
	ck.load(c)
	cc, compiled := c.(*Compiled)

	// Validity and density, per member.
	for k, i := range ck.members {
		h := ck.hs[k]
		var vals vector.Set
		if compiled {
			vals = cc.ValsAt(k)
		} else {
			vals = i.Vals()
		}
		want := min(l, vals.Len())
		if h.Len() != want || !h.SubsetOf(vals) {
			return &Violation{
				Property: Validity,
				Vectors:  cloneVectors(i),
				Detail:   fmt.Sprintf("h(%v)=%v, want %d values from val=%v", i, h, want, vals),
			}
		}
		var mass int
		if compiled {
			mass = cc.Mass(k, h)
		} else {
			mass = i.MassOf(h)
		}
		if mass <= x {
			return &Violation{
				Property: Density,
				Vectors:  cloneVectors(i),
				Detail:   fmt.Sprintf("Σ_{v∈h(I)}#_v(I) = %d ≤ x = %d for I=%v, h=%v", mass, x, i, h),
			}
		}
	}

	// Distance, over subsets.
	maxZ := opts.MaxSubsetSize
	if maxZ <= 0 || maxZ > len(ck.members) {
		maxZ = len(ck.members)
	}
	return ck.distanceSubsets(ck.members, ck.hs, x, maxZ)
}

// Check verifies (x, c.L())-legality with a one-shot Checker. Sweeps that
// verify many conditions should hold a Checker and call its Check instead.
func Check(c Condition, x int, opts CheckOptions) *Violation {
	return NewChecker().Check(c, x, opts)
}

// distanceSubsets checks the distance property over every subset of size
// 2..maxZ of the given vectors with their recognized sets. The subset walk
// carries the intersecting view, the generalized distance and the
// recognized-set intersection incrementally (one O(n) merge per node
// instead of rebuilding every subset from scratch), and prunes on the
// monotonicity of d_G: members are full vectors, so adding one can only
// grow the distance, and once a subset has d_G > x no superset can ever
// satisfy the property's premise again. All scratch lives in the checker.
func (ck *Checker) distanceSubsets(members []vector.Vector, hs []vector.Set, x, maxZ int) *Violation {
	if len(members) < 2 || maxZ < 2 {
		return nil
	}
	n := len(members[0])
	if cap(ck.interStack) < maxZ*n {
		ck.interStack = make([]vector.Value, maxZ*n)
	}
	ck.idx = ck.idx[:0]
	// rec extends the chosen prefix (ck.idx, its intersection at stack
	// level len(idx)−1, distance dg and recognized intersection common)
	// with members[start..].
	var rec func(start, dg int, common vector.Set) *Violation
	rec = func(start, dg int, common vector.Set) *Violation {
		depth := len(ck.idx)
		cur := ck.interStack[(depth-1)*n : depth*n]
		for j := start; j < len(members); j++ {
			mj := members[j]
			next := ck.interStack[depth*n : (depth+1)*n]
			ndg := dg
			for k := 0; k < n; k++ {
				cv := cur[k]
				if cv != vector.Bottom && cv != mj[k] {
					ndg++
					next[k] = vector.Bottom
				} else {
					next[k] = cv
				}
			}
			if ndg > x {
				continue // no α ∈ [1,x] binds here, nor for any superset
			}
			ncommon := common.Intersect(hs[j])
			// Binding instance α* = min(x, x−ndg+1); see
			// CheckDistanceInstance for why checking it covers all α.
			alpha := x - ndg + 1
			if alpha > x {
				alpha = x
			}
			if alpha >= 1 {
				mass := 0
				for k := 0; k < n; k++ {
					if ncommon.Has(next[k]) {
						mass++
					}
				}
				if mass < alpha {
					ck.idx = append(ck.idx, j)
					return ck.distanceViolation(members, ndg, mass, alpha, ncommon, x)
				}
			}
			if depth+1 < maxZ {
				ck.idx = append(ck.idx, j)
				if v := rec(j+1, ndg, ncommon); v != nil {
					return v
				}
				ck.idx = ck.idx[:len(ck.idx)-1]
			}
		}
		return nil
	}
	for a := 0; a+1 < len(members); a++ {
		copy(ck.interStack[:n], members[a])
		ck.idx = append(ck.idx[:0], a)
		if v := rec(a+1, 0, hs[a]); v != nil {
			return v
		}
	}
	return nil
}

// cloneVectors deep-copies witness vectors out of borrowed or reused
// storage, so a returned Violation is caller-owned: mutating it cannot
// reach back into a condition's index or a checker's scratch.
func cloneVectors(vs ...vector.Vector) []vector.Vector {
	out := make([]vector.Vector, len(vs))
	for k, v := range vs {
		out[k] = v.Clone()
	}
	return out
}

// distanceViolation materializes the witnessed failure of the subset in
// ck.idx — the only allocating path of the subset walk.
func (ck *Checker) distanceViolation(members []vector.Vector, dg, mass, alpha int, common vector.Set, x int) *Violation {
	sub := make([]vector.Vector, len(ck.idx))
	for k, j := range ck.idx {
		sub[k] = members[j].Clone()
	}
	return &Violation{
		Property: Distance,
		Vectors:  sub,
		Alpha:    alpha,
		Detail: fmt.Sprintf(
			"d_G=%d ≥ x−α+1=%d but ⊓ holds only %d entries of ∩h=%v (need ≥ α=%d)",
			dg, x-alpha+1, mass, common, alpha),
	}
}

// distanceInstance is CheckDistanceInstance on the checker's intersection
// scratch: no allocation unless a violation is witnessed.
func (ck *Checker) distanceInstance(vs []vector.Vector, hs []vector.Set, x int) *Violation {
	dg := vector.GeneralizedDistance(vs...)
	if dg > x {
		return nil // no α ∈ [1,x] satisfies d_G ≥ x−α+1
	}
	alpha := x - dg + 1
	if alpha > x {
		alpha = x // α ranges over [1,x]; d_G = 0 still only requires α = x
	}
	if alpha < 1 {
		return nil
	}
	common := hs[0]
	for _, h := range hs[1:] {
		common = common.Intersect(h)
	}
	ck.inter = vector.IntersectInto(ck.inter, vs...)
	if got := ck.inter.MassOf(common); got < alpha {
		return &Violation{
			Property: Distance,
			Vectors:  cloneVectors(vs...),
			Alpha:    alpha,
			Detail: fmt.Sprintf(
				"d_G=%d ≥ x−α+1=%d but ⊓ holds only %d entries of ∩h=%v (need ≥ α=%d)",
				dg, x-alpha+1, got, common, alpha),
		}
	}
	return nil
}

// CheckDistanceInstance checks the distance property for one specific set of
// vectors with their recognized sets: for every α ∈ [1,x] with
// d_G ≤ x−α+1, the intersecting vector must hold at least α entries with
// values of ∩_j h(I_j). Returns a Violation or nil.
//
// For a fixed subset the hypothesis holds exactly for α ≤ x−d_G+1, and the
// conclusion "mass ≥ α" is monotone in α, so checking the single binding
// instance α* = min(x, x−d_G+1) covers all of them.
func CheckDistanceInstance(vs []vector.Vector, hs []vector.Set, x int) *Violation {
	var ck Checker
	return ck.distanceInstance(vs, hs, x)
}

// ExistsRecognizer searches for any recognizing function making the
// enumerated condition (x,ℓ)-legal, by backtracking over the candidate
// recognized sets of each member with pairwise distance pruning and a full
// subset check on completion. It returns the witness assignment (parallel
// to the member order) when one exists. The search is exponential; it is
// intended for the small counterexample conditions of Section 3 and
// Appendix B. Sweeps should hold a Checker and call its ExistsRecognizer.
func ExistsRecognizer(c Indexed, x int) ([]vector.Set, bool) {
	return NewChecker().ExistsRecognizer(c, x)
}

// ExistsRecognizer is the scratch-reusing form of the package-level
// ExistsRecognizer: candidate sets live in one flat buffer, the pairwise
// pruning probes reuse the checker's witness and intersection scratch, and
// only the returned assignment is freshly allocated.
func (ck *Checker) ExistsRecognizer(c Indexed, x int) ([]vector.Set, bool) {
	size := c.Size()
	l := c.L()
	cc, compiled := c.(*Compiled)

	// Candidate h-sets per member: subsets of val(I) of size min(ℓ,|val|)
	// whose mass exceeds x (validity + density pre-filter).
	ck.candFlat = ck.candFlat[:0]
	ck.candOff = ck.candOff[:0]
	for k := 0; k < size; k++ {
		ck.candOff = append(ck.candOff, len(ck.candFlat))
		var vals vector.Set
		if compiled {
			vals = cc.ValsAt(k)
		} else {
			vals = c.MemberAt(k).Vals()
		}
		start := len(ck.candFlat)
		ck.candFlat = appendKSubsets(ck.candFlat, vals, min(l, vals.Len()))
		w := start
		for r := start; r < len(ck.candFlat); r++ {
			var mass int
			if compiled {
				mass = cc.Mass(k, ck.candFlat[r])
			} else {
				mass = c.MemberAt(k).MassOf(ck.candFlat[r])
			}
			if mass > x {
				ck.candFlat[w] = ck.candFlat[r]
				w++
			}
		}
		ck.candFlat = ck.candFlat[:w]
		if w == start {
			return nil, false
		}
	}
	ck.candOff = append(ck.candOff, len(ck.candFlat))

	ck.load(c)
	members := ck.members
	assign := make([]vector.Set, size)
	var pairV [2]vector.Vector
	var pairH [2]vector.Set
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == size {
			return ck.distanceSubsets(members, assign, x, size) == nil
		}
		for _, s := range ck.candFlat[ck.candOff[k]:ck.candOff[k+1]] {
			assign[k] = s
			ok := true
			// Prune: pairwise distance instances against assigned members.
			for j := 0; j < k && ok; j++ {
				pairV[0], pairV[1] = members[j], members[k]
				pairH[0], pairH[1] = assign[j], assign[k]
				ok = ck.distanceInstance(pairV[:], pairH[:], x) == nil
			}
			if ok && rec(k+1) {
				return true
			}
		}
		assign[k] = vector.Set{}
		return false
	}
	if rec(0) {
		return assign, true
	}
	return nil, false
}

// appendKSubsets appends every subset of s with exactly k elements to dst,
// in lexicographic order of the ascending value lists. It allocates only
// when dst must grow.
func appendKSubsets(dst []vector.Set, s vector.Set, k int) []vector.Set {
	if k < 0 || k > s.Len() {
		return dst
	}
	if k == 0 {
		return append(dst, vector.Set{})
	}
	var vals [int(vector.MaxSetValue)]vector.Value
	nv := 0
	s.ForEach(func(v vector.Value) bool {
		vals[nv] = v
		nv++
		return true
	})
	// Standard next-combination enumeration over positions 0..nv-1.
	var pos [int(vector.MaxSetValue)]int
	for i := 0; i < k; i++ {
		pos[i] = i
	}
	for {
		var sub vector.Set
		for i := 0; i < k; i++ {
			sub = sub.Add(vals[pos[i]])
		}
		dst = append(dst, sub)
		// Advance: find the rightmost position that can move up.
		i := k - 1
		for i >= 0 && pos[i] == nv-k+i {
			i--
		}
		if i < 0 {
			return dst
		}
		pos[i]++
		for j := i + 1; j < k; j++ {
			pos[j] = pos[j-1] + 1
		}
	}
}

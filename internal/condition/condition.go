package condition

import (
	"fmt"

	"kset/internal/kerr"
	"kset/internal/vector"
)

// Recognizer is a recognizing function h_ℓ: it maps an input vector of a
// condition to the set of (at most ℓ) values that vector encodes.
type Recognizer func(vector.Vector) vector.Set

// MaxL returns the recognizer max_ℓ of Section 2.3: the ℓ greatest values of
// the vector (all of them if it has fewer than ℓ distinct values).
func MaxL(l int) Recognizer {
	return func(i vector.Vector) vector.Set { return i.TopL(l) }
}

// MinL returns the recognizer min_ℓ: the ℓ smallest values of the vector.
// Every Section 2.3 result holds for min_ℓ in place of max_ℓ.
func MinL(l int) Recognizer {
	return func(i vector.Vector) vector.Set { return i.BottomL(l) }
}

// Condition is a set of input vectors equipped with a recognizing function.
// Implementations may be explicit (an enumerated vector set) or implicit
// (membership decided analytically, e.g. the max_ℓ-generated conditions of
// Theorem 2, which are far too large to enumerate at realistic n and m).
type Condition interface {
	// N is the vector size (number of processes).
	N() int
	// M is the size of the value domain V = {1..M}.
	M() int
	// L is the ℓ parameter: how many values a vector may encode.
	L() int
	// Contains reports whether the full input vector i belongs to the
	// condition.
	Contains(i vector.Vector) bool
	// Recognize returns h_ℓ(i) for a member vector i. Its result is
	// unspecified for non-members.
	Recognize(i vector.Vector) vector.Set
	// ForEachMember enumerates the member vectors, stopping early if fn
	// returns false. The callback may receive a reusable buffer; Clone to
	// retain. Implicit conditions enumerate by filtering {1..m}^n, which is
	// only practical at small n and m.
	ForEachMember(fn func(vector.Vector) bool)
}

// Explicit is a finite, enumerated condition with a per-vector recognizing
// function. It is the representation used for the paper's counterexample
// conditions (Table 1, Theorems 5, 7, 14, 15) and for user-supplied
// conditions.
type Explicit struct {
	n, m, l int
	keys64  map[uint64]int // members with packable vectors (Vector.Key64)
	keys    map[string]int // members needing the string-key fallback
	vecs    []vector.Vector
	hs      []vector.Set
}

var _ Indexed = (*Explicit)(nil)

// NewExplicit creates an empty explicit condition over {1..m}^n with
// parameter ℓ. It rejects an m beyond the 64-value domain cap of the
// bitmask value sets (vector.MaxSetValue): such a condition could never
// hold a vector using the values past the cap, so refusing the
// parameterization up front beats every Add failing.
func NewExplicit(n, m, l int) (*Explicit, error) {
	switch {
	case n < 1:
		return nil, fmt.Errorf("condition: explicit: n=%d, want ≥ 1: %w", n, kerr.ErrBadParams)
	case m < 1:
		return nil, fmt.Errorf("condition: explicit: m=%d, want ≥ 1: %w", m, kerr.ErrBadParams)
	case m > int(vector.MaxSetValue):
		return nil, fmt.Errorf("condition: explicit: m=%d exceeds the cap %d: %w", m, vector.MaxSetValue, kerr.ErrDomainTooLarge)
	case l < 1:
		return nil, fmt.Errorf("condition: explicit: ℓ=%d, want ≥ 1: %w", l, kerr.ErrBadParams)
	}
	return &Explicit{n: n, m: m, l: l, keys64: make(map[uint64]int), keys: make(map[string]int)}, nil
}

// MustNewExplicit is NewExplicit that panics on error; for tests and fixed
// constructions whose parameters are known good.
func MustNewExplicit(n, m, l int) *Explicit {
	c, err := NewExplicit(n, m, l)
	if err != nil {
		panic(err)
	}
	return c
}

// lookup finds the member index of i, using the packed integer key when i
// packs and the string key otherwise. Insertion uses the same
// discriminator, so the two maps partition the members consistently.
func (c *Explicit) lookup(i vector.Vector) (int, bool) {
	if k, ok := i.Key64(); ok {
		idx, ok := c.keys64[k]
		return idx, ok
	}
	idx, ok := c.keys[i.Key()]
	return idx, ok
}

func (c *Explicit) insert(i vector.Vector, idx int) {
	if k, ok := i.Key64(); ok {
		c.keys64[k] = idx
	} else {
		c.keys[i.Key()] = idx
	}
}

// Add inserts vector i with recognized set h. It returns an error if i has
// the wrong size, values outside {1..m} or ⊥ entries, if h violates the
// validity property, or if i is already present with a different h.
func (c *Explicit) Add(i vector.Vector, h vector.Set) error {
	if len(i) != c.n {
		return fmt.Errorf("condition: vector %v has size %d, want %d", i, len(i), c.n)
	}
	for _, v := range i {
		if !v.IsProposable() || v > vector.Value(c.m) {
			return fmt.Errorf("condition: vector %v has value %v outside {1..%d}", i, v, c.m)
		}
	}
	want := c.l
	if nv := i.Vals().Len(); nv < want {
		want = nv
	}
	if h.Len() != want || !h.SubsetOf(i.Vals()) {
		return fmt.Errorf("condition: h=%v violates (x,%d)-validity for %v", h, c.l, i)
	}
	if idx, ok := c.lookup(i); ok {
		if !c.hs[idx].Equal(h) {
			return fmt.Errorf("condition: vector %v already present with h=%v", i, c.hs[idx])
		}
		return nil
	}
	c.insert(i, len(c.vecs))
	c.vecs = append(c.vecs, i.Clone())
	c.hs = append(c.hs, h.Clone())
	return nil
}

// MustAdd is Add that panics on error; for tests and fixed constructions.
func (c *Explicit) MustAdd(i vector.Vector, h vector.Set) {
	if err := c.Add(i, h); err != nil {
		panic(err)
	}
}

// AddAuto inserts i recognized by the given Recognizer.
func (c *Explicit) AddAuto(i vector.Vector, h Recognizer) error { return c.Add(i, h(i)) }

// Size implements Indexed: the number of member vectors.
func (c *Explicit) Size() int { return len(c.vecs) }

// Members returns an independent deep copy of the member vectors, in
// insertion order. Mutating the copies cannot corrupt the condition's
// index (the previous shared-storage contract let a careless caller do
// exactly that); iteration that needs no ownership should use the
// allocation-free Indexed accessors Size/MemberAt instead.
func (c *Explicit) Members() []vector.Vector {
	out := make([]vector.Vector, len(c.vecs))
	for k, v := range c.vecs {
		out[k] = v.Clone()
	}
	return out
}

// MemberAt implements Indexed: member k in insertion order, as a read-only
// view of the condition's own storage (do not mutate).
func (c *Explicit) MemberAt(k int) vector.Vector { return c.vecs[k] }

// RecognizedAt implements Indexed.
func (c *Explicit) RecognizedAt(k int) vector.Set { return c.hs[k] }

// Lookup returns h(i) and whether i is a member, in a single map probe —
// the fused Contains+Recognize the view decoder uses per completion.
func (c *Explicit) Lookup(i vector.Vector) (vector.Set, bool) {
	if idx, ok := c.lookup(i); ok {
		return c.hs[idx], true
	}
	return vector.Set{}, false
}

// SetRecognized replaces the recognized set of an existing member.
func (c *Explicit) SetRecognized(i vector.Vector, h vector.Set) error {
	idx, ok := c.lookup(i)
	if !ok {
		return fmt.Errorf("condition: %v is not a member", i)
	}
	c.hs[idx] = h.Clone()
	return nil
}

// N implements Condition.
func (c *Explicit) N() int { return c.n }

// M implements Condition.
func (c *Explicit) M() int { return c.m }

// L implements Condition.
func (c *Explicit) L() int { return c.l }

// Contains implements Condition.
func (c *Explicit) Contains(i vector.Vector) bool {
	_, ok := c.lookup(i)
	return ok
}

// Recognize implements Condition.
func (c *Explicit) Recognize(i vector.Vector) vector.Set {
	if idx, ok := c.lookup(i); ok {
		return c.hs[idx]
	}
	return vector.Set{}
}

// ForEachMember implements Condition.
func (c *Explicit) ForEachMember(fn func(vector.Vector) bool) {
	for _, v := range c.vecs {
		if !fn(v) {
			return
		}
	}
}

package condition

import (
	"math/rand"
	"testing"

	"kset/internal/vector"
)

func TestMinConditionMembership(t *testing.T) {
	c := MustNewMin(4, 3, 2, 1)
	tests := []struct {
		v    vector.Vector
		want bool
	}{
		{vector.OfInts(1, 1, 1, 3), true},  // min value 1 occupies 3 > 2 entries
		{vector.OfInts(1, 1, 3, 3), false}, // 2 entries, not > 2
		{vector.OfInts(2, 2, 2, 2), true},
		{vector.OfInts(3, 2, 1, 1), false},
		{vector.OfInts(1, 1, 1, 0), false}, // views are never members
	}
	for _, tc := range tests {
		if got := c.Contains(tc.v); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
	if c.N() != 4 || c.M() != 3 || c.L() != 1 || c.X() != 2 {
		t.Error("dimension accessors wrong")
	}
	if got := c.Recognize(vector.OfInts(1, 1, 1, 3)); !got.Equal(vector.SetOf(1)) {
		t.Errorf("Recognize = %v", got)
	}
}

// TestMinConditionLegal is Theorem 2's min_ℓ variant: the min_ℓ-generated
// condition is (x,ℓ)-legal.
func TestMinConditionLegal(t *testing.T) {
	for _, tc := range []struct{ n, m, x, l int }{
		{4, 3, 1, 1}, {4, 3, 2, 2}, {5, 2, 2, 1},
	} {
		c := MustNewMin(tc.n, tc.m, tc.x, tc.l)
		if v := Check(c, tc.x, CheckOptions{MaxSubsetSize: 3}); v != nil {
			t.Errorf("min condition %+v not legal: %v", tc, v)
		}
	}
}

// TestMinMirrorsMax checks the structural symmetry: I ∈ Min(x,ℓ) iff
// mirror(I) ∈ Max(x,ℓ), and the member counts agree.
func TestMinMirrorsMax(t *testing.T) {
	n, m, x, l := 4, 4, 2, 2
	minC := MustNewMin(n, m, x, l)
	maxC := MustNewMax(n, m, x, l)
	countMin, countMax := 0, 0
	minC.ForEachMember(func(vector.Vector) bool { countMin++; return true })
	maxC.ForEachMember(func(vector.Vector) bool { countMax++; return true })
	if countMin != countMax {
		t.Errorf("member counts differ: min %d, max %d", countMin, countMax)
	}
	vector.ForEach(n, m, func(i vector.Vector) bool {
		if minC.Contains(i) != maxC.Contains(minC.mirror(i)) {
			t.Fatalf("mirror symmetry broken at %v", i)
		}
		return true
	})
}

// TestMinDecodeMatchesEnumeration: the mirrored closed-form decoding
// agrees with the generic Definition-4 enumeration.
func TestMinDecodeMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 400; trial++ {
		n := 3 + r.Intn(3)
		m := 2 + r.Intn(3)
		x := r.Intn(n - 1)
		l := 1 + r.Intn(2)
		c := MustNewMin(n, m, x, l)
		j := vector.New(n)
		for i := range j {
			if r.Intn(3) == 0 {
				j[i] = vector.Bottom
			} else {
				j[i] = vector.Value(1 + r.Intn(m))
			}
		}
		fast, okF := c.DecodeView(j)
		slow, okS := DecodeViewGeneric(c, j)
		if okF != okS || (okF && !fast.Equal(slow)) {
			t.Fatalf("n=%d m=%d x=%d ℓ=%d view %v: fast=%v(%v) enum=%v(%v)",
				n, m, x, l, j, fast, okF, slow, okS)
		}
		// P fast path agrees with the generic enumeration too.
		pSlow := false
		vector.ForEachCompletion(j, m, func(i vector.Vector) bool {
			if c.Contains(i) {
				pSlow = true
				return false
			}
			return true
		})
		if c.P(j) != pSlow {
			t.Fatalf("P(%v) fast=%v enum=%v", j, c.P(j), pSlow)
		}
	}
}

func TestNewMinValidation(t *testing.T) {
	if _, err := NewMin(0, 3, 0, 1); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewMin(4, 3, 4, 1); err == nil {
		t.Error("want error for x=n")
	}
}

package condition

import "kset/internal/vector"

// Predicater is implemented by conditions that can answer the predicate
// P(J) — "∃I ∈ C with J ≤ I" — faster than by enumerating completions.
// MaxCondition implements it analytically.
type Predicater interface {
	P(j vector.Vector) bool
}

// Predicate evaluates P(J): whether some member of the condition contains
// the view J. It uses the condition's analytic fast path when available and
// otherwise enumerates the m^{#⊥(J)} completions of J, so generic views
// should carry few ⊥ entries (the synchronous algorithm only evaluates P on
// views with at most t−d of them).
func Predicate(c Condition, j vector.Vector) bool {
	if p, ok := c.(Predicater); ok {
		return p.P(j)
	}
	found := false
	vector.ForEachCompletion(j, c.M(), func(i vector.Vector) bool {
		if c.Contains(i) {
			found = true
			return false
		}
		return true
	})
	return found
}

// DecodeView computes the Definition-4 extension of the recognizing
// function to a view J with ⊥ entries:
//
//	h_ℓ(J) = ( ∩_{I ∈ C, J ≤ I} h_ℓ(I) ) ∩ val(J),
//
// intersecting over every member that contains J. The second result is
// false when no member contains J (h_ℓ(J) is then undefined).
//
// Theorem 1 guarantees 1 ≤ |h_ℓ(J)| ≤ ℓ whenever #_⊥(J) ≤ x for an
// (x,ℓ)-legal condition, so callers may decide any value of the result; the
// synchronous algorithm decides max(h_ℓ(J)).
//
// Conditions implementing ViewDecoder (MaxCondition does, in closed form)
// are decoded directly; otherwise the cost is one pass over the m^{#⊥(J)}
// completions of J (members not containing J contribute nothing, so only
// completions need inspecting).
func DecodeView(c Condition, j vector.Vector) (vector.Set, bool) {
	if d, ok := c.(ViewDecoder); ok {
		return d.DecodeView(j)
	}
	return DecodeViewGeneric(c, j)
}

// lookuper is implemented by conditions that answer Contains and Recognize
// together in one probe (Explicit and Compiled do).
type lookuper interface {
	Lookup(i vector.Vector) (vector.Set, bool)
}

// DecodeViewGeneric is the enumeration fallback of DecodeView, exported so
// that tests and benchmarks can compare specialized decoders against it.
// Conditions implementing the fused Lookup (Explicit and Compiled) pay one
// index probe per completion instead of a Contains/Recognize pair.
func DecodeViewGeneric(c Condition, j vector.Vector) (vector.Set, bool) {
	var acc vector.Set
	found := false
	lk, fused := c.(lookuper)
	vector.ForEachCompletion(j, c.M(), func(i vector.Vector) bool {
		var h vector.Set
		if fused {
			var ok bool
			if h, ok = lk.Lookup(i); !ok {
				return true
			}
		} else {
			if !c.Contains(i) {
				return true
			}
			h = c.Recognize(i)
		}
		if !found {
			acc = h
			found = true
		} else {
			acc = acc.Intersect(h)
		}
		// Early exit: the intersection can only shrink, and it is finally
		// intersected with val(J); once empty it stays empty.
		return !acc.Empty()
	})
	if !found {
		return vector.Set{}, false
	}
	return acc.Intersect(j.Vals()), true
}

package condition

import (
	"math/rand"
	"testing"

	"kset/internal/vector"
)

// randomExplicit builds an explicit condition from count distinct random
// vectors of {1..m}^n recognized by max_ℓ.
func randomExplicit(t *testing.T, r *rand.Rand, n, m, l, count int) *Explicit {
	t.Helper()
	c := MustNewExplicit(n, m, l)
	for c.Size() < count {
		i := make(vector.Vector, n)
		for k := range i {
			i[k] = vector.Value(1 + r.Intn(m))
		}
		if err := c.AddAuto(i, MaxL(l)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestCompiledMatchesExplicit is the core compiled-vs-reference property:
// across randomized (n, m, ℓ) grids — including the n > 10 and value-64
// shapes that defeat Key64 packing — Contains, Recognize, Lookup and
// member enumeration agree between an Explicit and its Compile.
func TestCompiledMatchesExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, m, l, count int }{
		{3, 2, 1, 4},
		{4, 3, 1, 20},
		{4, 3, 2, 35},
		{5, 4, 2, 60},
		{6, 3, 3, 100},
		{12, 5, 2, 40}, // n > 10: string-key fallback
		{4, 64, 1, 30}, // value 64 possible: mixed packed/string members
	} {
		e := randomExplicit(t, r, tc.n, tc.m, tc.l, tc.count)
		c := Compile(e)
		if c.N() != e.N() || c.M() != e.M() || c.L() != e.L() || c.Size() != e.Size() {
			t.Fatalf("(%d,%d,%d): dims diverge", tc.n, tc.m, tc.l)
		}
		// Every member, positionally and by probe.
		for k := 0; k < e.Size(); k++ {
			i := e.MemberAt(k)
			if !c.MemberAt(k).Equal(i) {
				t.Fatalf("member %d diverges", k)
			}
			if !c.RecognizedAt(k).Equal(e.RecognizedAt(k)) {
				t.Fatalf("recognized %d diverges", k)
			}
			if !c.Contains(i) || !c.Recognize(i).Equal(e.Recognize(i)) {
				t.Fatalf("probe of member %d diverges", k)
			}
			if h, ok := c.Lookup(i); !ok || !h.Equal(e.Recognize(i)) {
				t.Fatalf("lookup of member %d diverges", k)
			}
			if !c.ValsAt(k).Equal(i.Vals()) {
				t.Fatalf("vals of member %d diverges", k)
			}
		}
		// Random probes, members and non-members alike.
		for trial := 0; trial < 2000; trial++ {
			i := make(vector.Vector, tc.n)
			for k := range i {
				i[k] = vector.Value(1 + r.Intn(tc.m))
			}
			if c.Contains(i) != e.Contains(i) {
				t.Fatalf("(%d,%d,%d): Contains(%v) diverges", tc.n, tc.m, tc.l, i)
			}
			if !c.Recognize(i).Equal(e.Recognize(i)) {
				t.Fatalf("(%d,%d,%d): Recognize(%v) diverges", tc.n, tc.m, tc.l, i)
			}
		}
		// Wrong-length and short probes must miss, not panic.
		if c.Contains(make(vector.Vector, tc.n+1)) || c.Contains(vector.Vector{}) {
			t.Fatal("wrong-length vector contained")
		}
		// Enumeration in identical order, both styles.
		var got []vector.Vector
		c.ForEachMember(func(i vector.Vector) bool {
			got = append(got, i.Clone())
			return true
		})
		k := 0
		e.ForEachMember(func(i vector.Vector) bool {
			if !got[k].Equal(i) {
				t.Fatalf("enumeration order diverges at %d", k)
			}
			k++
			return true
		})
		se, sc := NewStream(e), NewStream(c)
		for {
			ve, oke := se.Next()
			vc, okc := sc.Next()
			if oke != okc || (oke && !ve.Equal(vc)) {
				t.Fatal("streams diverge")
			}
			if !oke {
				break
			}
		}
	}
}

// TestCompiledTables pins the per-member analysis tables against direct
// vector scans.
func TestCompiledTables(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	e := randomExplicit(t, r, 6, 4, 2, 80)
	c := Compile(e)
	for k := 0; k < c.Size(); k++ {
		i := c.MemberAt(k)
		for v := vector.Value(0); v <= 5; v++ {
			want := i.Count(v)
			if v < 1 || v > 4 {
				want = 0
			}
			if got := c.Count(k, v); got != want {
				t.Fatalf("Count(%d, %v) = %d, want %d", k, v, got, want)
			}
		}
		for trial := 0; trial < 20; trial++ {
			var s vector.Set
			for b := 0; b < 3; b++ {
				s = s.Add(vector.Value(1 + r.Intn(4)))
			}
			if got, want := c.Mass(k, s), i.MassOf(s); got != want {
				t.Fatalf("Mass(%d, %v) = %d, want %d", k, s, got, want)
			}
		}
		// DensestMass against the brute-force best-ℓ-subset mass.
		for l := 1; l <= 5; l++ {
			best := 0
			for _, sub := range appendKSubsets(nil, i.Vals(), min(l, i.Vals().Len())) {
				if m := i.MassOf(sub); m > best {
					best = m
				}
			}
			if got := c.DensestMass(k, l); got != best {
				t.Fatalf("DensestMass(%d, %d) = %d, want %d", k, l, got, best)
			}
		}
		if c.DensestMass(k, 0) != 0 {
			t.Fatal("DensestMass(k, 0) != 0")
		}
	}
}

// TestCompileMaxMin pins the compiled max/min constructors against their
// analytic Condition counterparts over the full vector domain.
func TestCompileMaxMin(t *testing.T) {
	for _, tc := range []struct{ n, m, x, l int }{
		{4, 3, 1, 1}, {4, 3, 2, 2}, {5, 2, 2, 1}, {3, 4, 1, 2},
	} {
		maxRef := MustNewMax(tc.n, tc.m, tc.x, tc.l)
		minRef := MustNewMin(tc.n, tc.m, tc.x, tc.l)
		cmax := MustCompileMax(tc.n, tc.m, tc.x, tc.l)
		cmin := MustCompileMin(tc.n, tc.m, tc.x, tc.l)
		count := 0
		vector.ForEach(tc.n, tc.m, func(i vector.Vector) bool {
			if cmax.Contains(i) != maxRef.Contains(i) || cmin.Contains(i) != minRef.Contains(i) {
				t.Fatalf("%+v: membership diverges at %v", tc, i)
			}
			if cmax.Contains(i) {
				count++
				if !cmax.Recognize(i).Equal(maxRef.Recognize(i)) {
					t.Fatalf("%+v: recognized diverges at %v", tc, i)
				}
			}
			if cmin.Contains(i) && !cmin.Recognize(i).Equal(minRef.Recognize(i)) {
				t.Fatalf("%+v: min recognized diverges at %v", tc, i)
			}
			return true
		})
		if count != cmax.Size() {
			t.Fatalf("%+v: size %d, enumerated %d", tc, cmax.Size(), count)
		}
	}
	if _, err := CompileMax(4, 100, 1, 1); err == nil {
		t.Error("want domain-cap error from CompileMax")
	}
	if _, err := CompileMin(0, 3, 1, 1); err == nil {
		t.Error("want bad-params error from CompileMin")
	}
}

// TestBuilderContract pins the Builder's Explicit.Add-compatible error
// behavior.
func TestBuilderContract(t *testing.T) {
	b := MustNewBuilder(3, 3, 1)
	i := vector.OfInts(2, 2, 1)
	if err := b.Add(i, vector.SetOf(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(i, vector.SetOf(2)); err != nil || b.Size() != 1 {
		t.Errorf("same-h re-add: err=%v size=%d", err, b.Size())
	}
	if err := b.Add(i, vector.SetOf(1)); err == nil {
		t.Error("want error re-adding with different h")
	}
	if err := b.Add(vector.OfInts(1, 2), vector.SetOf(1)); err == nil {
		t.Error("want error for wrong size")
	}
	if err := b.Add(vector.OfInts(1, 2, 9), vector.SetOf(9)); err == nil {
		t.Error("want error for out-of-domain value")
	}
	if err := b.Add(vector.OfInts(1, 2, 3), vector.SetOf(1, 2)); err == nil {
		t.Error("want error for validity-violating h")
	}
	c := b.Compile()
	if c.Size() != 1 || !c.Contains(i) {
		t.Errorf("compiled size=%d", c.Size())
	}
	if _, err := NewBuilder(2, 200, 1); err == nil {
		t.Error("want domain-cap error")
	}
}

// TestMembersAreCopies pins the Members() leak fix on both representations:
// mutating the returned vectors must not corrupt condition state.
func TestMembersAreCopies(t *testing.T) {
	e := MustNewExplicit(3, 3, 1)
	e.MustAdd(vector.OfInts(2, 2, 1), vector.SetOf(2))
	c := Compile(e)
	for _, ix := range []Indexed{e, c} {
		ms := ix.(interface{ Members() []vector.Vector }).Members()
		orig := ms[0].Clone()
		ms[0][0] = 3 // a caller scribbling on the returned slice
		if !ix.Contains(orig) {
			t.Errorf("%T: mutation of Members() result corrupted the condition", ix)
		}
		if ix.Contains(ms[0]) {
			t.Errorf("%T: mutated copy unexpectedly a member", ix)
		}
		if !ix.MemberAt(0).Equal(orig) {
			t.Errorf("%T: stored member changed", ix)
		}
	}
}

// TestCheckerMatchesReference compares the pruned incremental subset walk
// of Checker.Check against a direct Definition-2 reference built on the
// exported CheckDistanceInstance, across random conditions (legal and
// illegal alike, with random recognizers to produce violations).
func TestCheckerMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ck := NewChecker()
	for trial := 0; trial < 150; trial++ {
		n := 3 + r.Intn(3)
		m := 2 + r.Intn(3)
		l := 1 + r.Intn(2)
		e := MustNewExplicit(n, m, l)
		for e.Size() < 2+r.Intn(6) {
			i := make(vector.Vector, n)
			for k := range i {
				i[k] = vector.Value(1 + r.Intn(m))
			}
			// Random (sometimes invalid) recognizers: pick a random subset
			// of val(I) of the valid size to keep validity holding, so the
			// distance/density clauses carry the divergence risk.
			subs := appendKSubsets(nil, i.Vals(), min(l, i.Vals().Len()))
			// A redrawn duplicate vector may carry a different random h;
			// that Add error just means "retry with a fresh vector".
			_ = e.Add(i, subs[r.Intn(len(subs))])
		}
		for x := 0; x <= n-1; x++ {
			got := ck.Check(e, x, CheckOptions{})
			want := referenceCheck(e, x)
			if (got == nil) != (want == nil) {
				t.Fatalf("n=%d m=%d ℓ=%d x=%d: checker=%v reference=%v", n, m, l, x, got, want)
			}
			if got != nil && want != nil && got.Property != want.Property {
				// Both witness a violation; the clause may differ only when
				// the walk orders differ, but validity/density precede
				// distance identically in both.
				t.Fatalf("n=%d m=%d ℓ=%d x=%d: property %v vs %v", n, m, l, x, got.Property, want.Property)
			}
			// The compiled form must agree with the explicit form.
			cgot := ck.Check(Compile(e), x, CheckOptions{})
			if (cgot == nil) != (got == nil) {
				t.Fatalf("n=%d m=%d ℓ=%d x=%d: compiled check diverges", n, m, l, x)
			}
		}
	}
}

// referenceCheck is a direct, allocation-heavy transcription of
// Definition 2 used as the oracle for TestCheckerMatchesReference.
func referenceCheck(c *Explicit, x int) *Violation {
	members := c.Members()
	l := c.L()
	for _, i := range members {
		h := c.Recognize(i)
		want := min(l, i.Vals().Len())
		if h.Len() != want || !h.SubsetOf(i.Vals()) {
			return &Violation{Property: Validity}
		}
		if i.MassOf(h) <= x {
			return &Violation{Property: Density}
		}
	}
	size := len(members)
	var idx []int
	var rec func(start int) *Violation
	rec = func(start int) *Violation {
		if len(idx) >= 2 {
			sub := make([]vector.Vector, len(idx))
			subH := make([]vector.Set, len(idx))
			for k, j := range idx {
				sub[k] = members[j]
				subH[k] = c.Recognize(members[j])
			}
			if v := CheckDistanceInstance(sub, subH, x); v != nil {
				return v
			}
		}
		if len(idx) == size {
			return nil
		}
		for j := start; j < size; j++ {
			idx = append(idx, j)
			if v := rec(j + 1); v != nil {
				return v
			}
			idx = idx[:len(idx)-1]
		}
		return nil
	}
	return rec(0)
}

// TestExistsRecognizerCompiledMatchesExplicit runs the recognizer search
// on both representations of the same condition.
func TestExistsRecognizerCompiledMatchesExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	ck := NewChecker()
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(2)
		m := 2 + r.Intn(3)
		l := 1 + r.Intn(2)
		e := randomExplicit(t, r, n, m, l, 2+r.Intn(4))
		c := Compile(e)
		for x := 0; x < n; x++ {
			ae, oke := ExistsRecognizer(e, x)
			ac, okc := ck.ExistsRecognizer(c, x)
			if oke != okc {
				t.Fatalf("n=%d m=%d ℓ=%d x=%d: exists %v vs %v", n, m, l, x, oke, okc)
			}
			if oke {
				// Both witnesses must actually be legal assignments.
				for name, w := range map[string][]vector.Set{"explicit": ae, "compiled": ac} {
					for k := range w {
						if err := e.SetRecognized(e.MemberAt(k), w[k]); err != nil {
							t.Fatal(err)
						}
					}
					if v := Check(e, x, CheckOptions{}); v != nil {
						t.Fatalf("%s witness not legal at x=%d: %v", name, x, v)
					}
				}
				// Restore max_ℓ for the next x.
				for k := 0; k < e.Size(); k++ {
					i := e.MemberAt(k)
					if err := e.SetRecognized(i, i.TopL(l)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

// TestMassOutOfDomain pins that Mass, like Count, ignores probe values
// beyond the condition's domain instead of panicking (a Set may hold
// values up to 64 regardless of m).
func TestMassOutOfDomain(t *testing.T) {
	b := MustNewBuilder(3, 3, 1)
	b.MustAdd(vector.OfInts(2, 2, 1), vector.SetOf(2))
	c := b.Compile()
	if got := c.Mass(0, vector.SetOf(2, 64)); got != 2 {
		t.Errorf("Mass with out-of-domain value = %d, want 2", got)
	}
	if got := c.Mass(0, vector.SetOf(64)); got != 0 {
		t.Errorf("Mass of out-of-domain set = %d, want 0", got)
	}
}

// TestViolationWitnessIsOwned pins that a returned Violation carries
// caller-owned vector copies: scribbling on the witness must not corrupt
// the condition it came from.
func TestViolationWitnessIsOwned(t *testing.T) {
	e := MustNewExplicit(3, 3, 1)
	e.MustAdd(vector.OfInts(1, 2, 3), vector.SetOf(3)) // density fails for x ≥ 1
	e.MustAdd(vector.OfInts(1, 2, 2), vector.SetOf(2))
	for _, c := range []Condition{e, Compile(e)} {
		v := Check(c, 1, CheckOptions{})
		if v == nil || len(v.Vectors) == 0 {
			t.Fatalf("%T: want a violation with witnesses", c)
		}
		orig := v.Vectors[0].Clone()
		v.Vectors[0][0] = 3
		if !c.Contains(orig) {
			t.Errorf("%T: mutating the violation witness corrupted the condition", c)
		}
	}
}

// TestCompiledLookupAllocFree is the allocation-budget gate of the
// compiled layer: membership probes, decodes and whole legality checks on
// a compiled condition allocate nothing.
func TestCompiledLookupAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	e := randomExplicit(t, r, 6, 4, 2, 120)
	c := Compile(e)
	member := c.MemberAt(7).Clone()
	outside := vector.OfInts(1, 1, 1, 1, 1, 2)
	for outside != nil && c.Contains(outside) {
		outside[5]++
	}
	if got := testing.AllocsPerRun(200, func() {
		if !c.Contains(member) || c.Contains(outside) {
			t.Fatal("membership broken")
		}
		if c.Recognize(member).Empty() {
			t.Fatal("recognize broken")
		}
		if _, ok := c.Lookup(member); !ok {
			t.Fatal("lookup broken")
		}
		c.ForEachMember(func(i vector.Vector) bool { return true })
		if c.Mass(7, c.RecognizedAt(7)) <= 0 || c.DensestMass(7, 2) <= 0 {
			t.Fatal("tables broken")
		}
	}); got != 0 {
		t.Errorf("compiled probes allocate %.1f/op, want 0", got)
	}

	ck := NewChecker()
	ck.Check(c, 1, CheckOptions{MaxSubsetSize: 3}) // warm the scratch
	if got := testing.AllocsPerRun(50, func() {
		ck.Check(c, 1, CheckOptions{MaxSubsetSize: 3})
	}); got != 0 {
		t.Errorf("warm Checker.Check allocates %.1f/op, want 0", got)
	}
}

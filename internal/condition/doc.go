// Package condition implements the (x,ℓ)-legality framework of Bonnet &
// Raynal (Section 2): conditions as sets of input vectors, recognizing
// functions h_ℓ, the validity/density/distance properties, legality checking
// and deciding, and the Definition-4 extension of h_ℓ to views.
//
// A condition C is a set of input vectors over the domain {1..m}^n. C is
// (x,ℓ)-legal when a function h_ℓ exists with:
//
//   - Validity:  ∀I∈C: h_ℓ(I) ⊆ val(I) and |h_ℓ(I)| = min(ℓ, |val(I)|)
//   - Density:   ∀I∈C: Σ_{v∈h_ℓ(I)} #_v(I) > x
//   - Distance:  ∀α∈[1,x], ∀{I_1..I_z}⊆C:
//     d_G(I_1..I_z) ≤ x−α+1  ⟹  #_{v ∈ ∩_j h_ℓ(I_j)}(⊓_j I_j) ≥ α
//
// The distance property says that vectors that are close to one another
// (small generalized distance) must share many entries holding commonly
// decodable values; at ℓ=1 it reduces to the x-legality requirement of
// Mostefaoui–Rajsbaum–Raynal, h(I_1) ≠ h(I_2) ⟹ d_H(I_1,I_2) > x, and the
// out-of-range instance α = x+1 (d_G = 0, a single vector) is exactly the
// density property, which is why the paper keeps the two separate.
//
// Intuitively each input vector of C is a codeword encoding up to ℓ values —
// the values that may be decided from it — and the three properties make the
// decoding unambiguous even when up to x entries are missing.
//
// Paper map:
//
//	Definition 2          Checker, Check, ExistsRecognizer  (legality)
//	Section 2.3           MaxCondition, MinCondition        (Theorem 2)
//	Definition 4 / Thm 1  DecodeView, Predicate             (view decoding)
//	Table 1 etc.          Explicit, Builder                 (enumerated conditions)
//	(representation)      Compiled, Compile, CompileMax/Min (the compiled index)
//
// # Two representations of an enumerated condition
//
// Explicit is the mutable construction-time form: a map-backed set that
// vectors are added to one by one. Compiled is the immutable analysis- and
// run-time form produced by Compile (or directly by a Builder, or by the
// CompileMax/CompileMin enumerating constructors): a flat member array
// indexed by a sorted packed-key table with open addressing, so Contains,
// Recognize and the fused Lookup cost one probe and zero allocations, and
// per-member count/densest-mass tables answer the mass queries of
// legality checking and recognizer search in O(|set|). Both implement
// Indexed, the read-only positional view that the legality Checker, the
// Stream iterator and the root package's scenario generators walk without
// copying. kset.System compiles explicit conditions at construction.
//
// Legality verification at scale goes through a Checker, which owns every
// scratch buffer the subset walk needs; the package-level Check and
// ExistsRecognizer remain as one-shot conveniences.
//
// Member enumeration is available in both styles: the callback-based
// Condition.ForEachMember and the resumable pull iterator Stream, which
// backs the root package's streaming scenario generators.
package condition

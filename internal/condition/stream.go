package condition

import "kset/internal/vector"

// Stream is a resumable pull iterator over a condition's member vectors —
// the streaming counterpart of Condition.ForEachMember. Indexed
// conditions (Explicit and Compiled) stream their stored members by
// position with no copying; implicit conditions (max_ℓ / min_ℓ) stream by
// filtering the lexicographic {1..m}^n enumeration, which is practical at
// small n and m only. Either way the members arrive in a deterministic
// order, so two streams over the same condition yield identical sequences.
type Stream struct {
	c    Condition
	ix   Indexed // non-nil: stored-member fast path
	idx  int
	enum *vector.Enum // nil until the implicit path starts
}

// NewStream returns a stream positioned before the condition's first
// member.
func NewStream(c Condition) *Stream {
	s := &Stream{c: c}
	if ix, ok := c.(Indexed); ok {
		s.ix = ix
	}
	return s
}

// Next advances to the next member and returns it, or false when the
// members are exhausted. The returned vector may be a reusable buffer
// (implicit conditions) or the condition's own storage (indexed
// conditions): Clone it to retain or mutate it.
func (s *Stream) Next() (vector.Vector, bool) {
	if s.ix != nil {
		if s.idx >= s.ix.Size() {
			return nil, false
		}
		v := s.ix.MemberAt(s.idx)
		s.idx++
		return v, true
	}
	if s.c == nil {
		return nil, false
	}
	if s.enum == nil {
		s.enum = vector.NewEnum(s.c.N(), s.c.M())
	}
	for {
		v, ok := s.enum.Next()
		if !ok {
			return nil, false
		}
		if s.c.Contains(v) {
			return v, true
		}
	}
}

// Reset rewinds the stream to before the first member.
func (s *Stream) Reset() {
	s.idx = 0
	if s.enum != nil {
		s.enum.Reset()
	}
}

package lattice

import (
	"fmt"
	"strings"

	"kset/internal/condition"
)

// Fact records what was mechanically verified for one (x,ℓ) cell of the
// paper's Figure 1.
type Fact struct {
	X, L int
	// UpInclusion: a (x+1,ℓ)-legal witness checked (x,ℓ)-legal (Thm 4).
	UpInclusion bool
	// UpStrict: a witness is (x,ℓ)-legal but not (x+1,ℓ)-legal (Thm 5).
	UpStrict bool
	// RightInclusion: the Theorem-6 boost of an (x,ℓ)-legal witness
	// checked (x,ℓ+1)-legal.
	RightInclusion bool
	// RightStrict: a witness is (x,ℓ+1)-legal but not (x,ℓ)-legal (Thm 7).
	RightStrict bool
	// AllLegal: whether the condition of all input vectors is (x,ℓ)-legal;
	// by Theorems 8/9 this must equal ℓ > x (AllExpected).
	AllLegal, AllExpected bool
	// Skipped lists sub-checks that could not be run at this cell (e.g. a
	// counterexample family is empty at this n, m).
	Skipped []string
}

// Verified reports whether every runnable sub-check at the cell succeeded.
func (f Fact) Verified() bool {
	return f.UpInclusion && f.UpStrict && f.RightInclusion && f.RightStrict &&
		f.AllLegal == f.AllExpected
}

// maxCompiled materializes the max_ℓ-generated (x,ℓ)-legal condition as a
// compiled condition over {1..m}^n.
func maxCompiled(n, m, x, l int) *condition.Compiled {
	return condition.MustCompileMax(n, m, x, l)
}

// checkOpts caps the distance-property subset size during grid verification;
// size 3 exercises the generalized distance beyond pairs while keeping the
// grid affordable.
var checkOpts = condition.CheckOptions{MaxSubsetSize: 3}

// VerifyCell runs every Figure-1 sub-check at one (x,ℓ) cell over the
// domain {1..m}^n.
func VerifyCell(n, m, x, l int) Fact {
	return verifyCell(condition.NewChecker(), n, m, x, l)
}

// verifyCell is VerifyCell on a caller-provided Checker, so a grid sweep
// reuses one set of witness/view scratch buffers across every cell instead
// of reallocating them per legality probe.
func verifyCell(ck *condition.Checker, n, m, x, l int) Fact {
	f := Fact{X: x, L: l, AllExpected: l > x}

	// Theorem 4: the (x+1,ℓ)-legal max condition is (x,ℓ)-legal.
	if x+1 < n {
		up := maxCompiled(n, m, x+1, l)
		if up.Size() > 0 {
			f.UpInclusion = ck.Check(up, x, checkOpts) == nil
		} else {
			f.Skipped = append(f.Skipped, "thm4: empty witness")
		}
	} else {
		f.Skipped = append(f.Skipped, "thm4: x+1 ≥ n")
		f.UpInclusion = true
	}

	// Theorem 5: some condition is (x,ℓ)-legal but not (x+1,ℓ)-legal. The
	// theorem asserts existence, so when the family is empty over {1..m}
	// the value domain is widened (larger m can only enlarge the family;
	// the witness needs enough values to pad entries below the top ℓ).
	if c5, err := firstNonEmpty(m, func(mm int) (*condition.Compiled, error) {
		return Theorem5Condition(n, mm, x, l)
	}); err == nil {
		legal := ck.Check(c5, x, checkOpts) == nil
		_, stronger := ck.ExistsRecognizer(c5, x+1)
		f.UpStrict = legal && !stronger
	} else {
		f.Skipped = append(f.Skipped, fmt.Sprintf("thm5: %v", err))
		f.UpStrict = true
	}

	// Theorem 6: boosting an (x,ℓ)-legal condition to ℓ+1 stays legal.
	base := maxCompiled(n, m, x, l)
	if base.Size() > 0 {
		if boosted, err := BoostL(base); err == nil {
			f.RightInclusion = ck.Check(boosted, x, checkOpts) == nil
		} else {
			f.Skipped = append(f.Skipped, fmt.Sprintf("thm6: %v", err))
		}
	} else {
		f.Skipped = append(f.Skipped, "thm6: empty witness")
		f.RightInclusion = true
	}

	// Theorem 7: some condition is (x,ℓ+1)-legal but not (x,ℓ)-legal.
	// Existence statement: widen the domain like Theorem 5 above.
	if c7, err := firstNonEmpty(m, func(mm int) (*condition.Compiled, error) {
		return Theorem7Condition(n, mm, x, l)
	}); err == nil {
		legal := ck.Check(c7, x, checkOpts) == nil
		_, weaker := ck.ExistsRecognizer(WithL(c7, l), x)
		f.RightStrict = legal && !weaker
	} else {
		f.Skipped = append(f.Skipped, fmt.Sprintf("thm7: %v", err))
		f.RightStrict = true
	}

	// Theorems 8/9: C_all is (x,ℓ)-legal iff ℓ > x.
	all := AllVectorsCondition(n, m, l)
	if l > x {
		f.AllLegal = ck.Check(all, x, checkOpts) == nil
	} else {
		// Non-legality is inherited upward (a recognizer for C restricts
		// to any subset), so a subset with no recognizer refutes C_all.
		// The Theorem-7 family is such a subset when non-empty; fall back
		// to deciding C_all itself otherwise.
		if c7, err := Theorem7Condition(n, m, x, l); err == nil {
			_, legal := ck.ExistsRecognizer(WithL(c7, l), x)
			f.AllLegal = legal
		} else {
			_, legal := ck.ExistsRecognizer(all, x)
			f.AllLegal = legal
		}
	}
	return f
}

// firstNonEmpty tries a counterexample construction over growing value
// domains m..m+4 and returns the first non-empty instance; the cell's
// process count stays fixed, only padding values are added.
func firstNonEmpty(m int, build func(m int) (*condition.Compiled, error)) (*condition.Compiled, error) {
	var lastErr error
	for mm := m; mm <= m+4; mm++ {
		c, err := build(mm)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// VerifyFigure1 verifies every cell of the (x,ℓ) grid with x ∈ [0, xMax]
// and ℓ ∈ [1, lMax] over the vector domain {1..m}^n, sharing one legality
// Checker (and its scratch buffers) across all cells. xMax must be < n.
func VerifyFigure1(n, m, xMax, lMax int) ([]Fact, error) {
	if xMax >= n {
		return nil, fmt.Errorf("lattice: xMax=%d must be < n=%d", xMax, n)
	}
	if lMax < 1 || n < 1 || m < 1 {
		return nil, fmt.Errorf("lattice: bad grid n=%d m=%d lMax=%d", n, m, lMax)
	}
	ck := condition.NewChecker()
	var facts []Fact
	for x := 0; x <= xMax; x++ {
		for l := 1; l <= lMax; l++ {
			facts = append(facts, verifyCell(ck, n, m, x, l))
		}
	}
	return facts, nil
}

// Render draws the verified grid in the spirit of the paper's Figure 1:
// rows are x (the failure resilience), columns are ℓ (the agreement
// looseness), each cell shows whether all its theorems verified and whether
// it contains the all-vectors condition. The wait-free consensus corner and
// the ℓ > x region boundary are visible by inspection.
func Render(facts []Fact) string {
	if len(facts) == 0 {
		return "(empty grid)"
	}
	xMax, lMax := 0, 0
	byCell := map[[2]int]Fact{}
	for _, f := range facts {
		byCell[[2]int{f.X, f.L}] = f
		if f.X > xMax {
			xMax = f.X
		}
		if f.L > lMax {
			lMax = f.L
		}
	}
	var b strings.Builder
	b.WriteString("Sets of (x,ℓ)-legal conditions — ✓: Thms 4–9 verified; ∗: contains C_all\n")
	b.WriteString("      ")
	for l := 1; l <= lMax; l++ {
		fmt.Fprintf(&b, " ℓ=%-4d", l)
	}
	b.WriteByte('\n')
	for x := xMax; x >= 0; x-- {
		fmt.Fprintf(&b, "x=%-3d ", x)
		for l := 1; l <= lMax; l++ {
			f, ok := byCell[[2]int{x, l}]
			switch {
			case !ok:
				b.WriteString("   .   ")
			case !f.Verified():
				b.WriteString("   ✗   ")
			case f.AllLegal:
				b.WriteString("   ✓∗  ")
			default:
				b.WriteString("   ✓   ")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("(x-resilient ℓ-set agreement is asynchronously solvable from C_all iff ℓ > x)\n")
	return b.String()
}

// Package lattice implements the Section-3 structure results of Bonnet &
// Raynal: the inclusion lattice of the sets of (x,ℓ)-legal conditions
// (Theorems 4–9, summarized by the paper's Figure 1) and the Appendix-B
// diagonal incomparability results (Theorems 14 and 15), both as executable
// constructions and as verification harnesses.
//
// In the paper's Figure 1, a pair (x,ℓ) stands for the set of all
// (x,ℓ)-legal conditions; an arrow (a,b) → (a',b') means every (a,b)-legal
// condition is (a',b')-legal. The verified arrows are:
//
//	(x+1, ℓ) → (x, ℓ)      (Theorem 4; strict by Theorem 5)
//	(x, ℓ)   → (x, ℓ+1)    (Theorem 6; strict by Theorem 7)
//
// and the diagonal (x,ℓ) vs (x+1,ℓ+1) is incomparable (Theorems 14, 15).
// The condition containing all input vectors is (x,ℓ)-legal iff ℓ > x
// (Theorems 8 and 9) — the condition-based face of the asynchronous ℓ-set
// agreement impossibility for ℓ ≤ x.
//
// Paper map:
//
//	Figure 1        VerifyCell / Grid — every arrow of one (x,ℓ) cell
//	Table 1         Table1Condition — the running counterexample
//	Theorems 5, 7   strictness witnesses
//	Theorems 14, 15 diagonal incomparability (Appendix B)
package lattice

package lattice

import (
	"fmt"

	"kset/internal/condition"
	"kset/internal/vector"
)

// densestMass returns the largest total number of entries occupied by any
// set of at most l distinct values of i: the sum of its l largest value
// counts. The Theorem 5/7 constructions bound it to rule out recognizers.
// It is a stack-only computation — the builders call it once per candidate
// vector of a full {1..m}^n enumeration. (For vectors already compiled
// into a condition, Compiled.DensestMass reads the precomputed table
// instead.)
func densestMass(i vector.Vector, l int) int {
	var counts [int(vector.MaxSetValue) + 1]int
	for _, v := range i {
		counts[v]++
	}
	counts[vector.Bottom] = 0 // ⊥ entries are not values
	mass := 0
	for k := 0; k < l; k++ {
		best, bi := 0, -1
		for v := 1; v <= int(vector.MaxSetValue); v++ {
			if counts[v] > best {
				best, bi = counts[v], v
			}
		}
		if bi < 0 {
			break
		}
		mass += best
		counts[bi] = 0
	}
	return mass
}

// Theorem5Condition builds a condition that is (x,ℓ)-legal but not
// (x+1,ℓ)-legal: the vectors recognized by max_ℓ whose every ℓ-value set
// occupies at most x+1 entries (so the top-ℓ mass is exactly x+1 — dense
// enough for x, and no recognizing function can be dense enough for x+1).
func Theorem5Condition(n, m, x, l int) (*condition.Compiled, error) {
	if x+1 > n {
		return nil, fmt.Errorf("lattice: theorem 5 needs x+1 ≤ n, got x=%d n=%d", x, n)
	}
	b, err := condition.NewBuilder(n, m, l)
	if err != nil {
		return nil, err
	}
	var addErr error
	vector.ForEach(n, m, func(i vector.Vector) bool {
		if i.MassOf(i.TopL(l)) == x+1 && densestMass(i, l) <= x+1 {
			if err := b.Add(i, i.TopL(l)); err != nil {
				addErr = err
				return false
			}
		}
		return true
	})
	if addErr != nil {
		return nil, addErr
	}
	if b.Size() == 0 {
		return nil, fmt.Errorf("lattice: theorem 5 condition empty for n=%d m=%d x=%d ℓ=%d", n, m, x, l)
	}
	return b.Compile(), nil
}

// Theorem7Condition builds a condition that is (x,ℓ+1)-legal but not
// (x,ℓ)-legal: the vectors recognized by max_{ℓ+1} whose ℓ+1 greatest
// values occupy more than x entries while every set of only ℓ values
// occupies at most x — so no ℓ-value recognizing function can satisfy the
// density property. The returned condition carries ℓ+1 as its L.
func Theorem7Condition(n, m, x, l int) (*condition.Compiled, error) {
	b, err := condition.NewBuilder(n, m, l+1)
	if err != nil {
		return nil, err
	}
	var addErr error
	vector.ForEach(n, m, func(i vector.Vector) bool {
		if i.MassOf(i.TopL(l+1)) > x && densestMass(i, l) <= x {
			if err := b.Add(i, i.TopL(l+1)); err != nil {
				addErr = err
				return false
			}
		}
		return true
	})
	if addErr != nil {
		return nil, addErr
	}
	if b.Size() == 0 {
		return nil, fmt.Errorf("lattice: theorem 7 condition empty for n=%d m=%d x=%d ℓ=%d", n, m, x, l)
	}
	return b.Compile(), nil
}

// BoostL implements the constructive step of Theorem 6: given a condition
// with recognizing function h_ℓ, it returns the same vector set with the
// recognizing function g_{ℓ+1} of the paper's proof — h_ℓ(I) itself when
// h_ℓ(I) already covers val(I), and h_ℓ(I) plus one deterministic extra
// value of I otherwise (we take the greatest value outside h_ℓ(I)). If the
// input is (x,ℓ)-legal the output is (x,ℓ+1)-legal.
func BoostL(c *condition.Compiled) (*condition.Compiled, error) {
	out, err := condition.NewBuilder(c.N(), c.M(), c.L()+1)
	if err != nil {
		return nil, err
	}
	for k, size := 0, c.Size(); k < size; k++ {
		i := c.MemberAt(k)
		h := c.RecognizedAt(k)
		g := h
		if rest := c.ValsAt(k).Minus(h); !rest.Empty() {
			g = h.Add(rest.Max())
		}
		if err := out.Add(i, g); err != nil {
			return nil, fmt.Errorf("lattice: boost: %w", err)
		}
	}
	return out.Compile(), nil
}

// AllVectorsCondition returns the condition C_all containing every input
// vector of {1..m}^n, recognized by max_ℓ. By Theorems 8 and 9 it is
// (x,ℓ)-legal iff ℓ > x. (Every full vector has top-ℓ mass above 0, so
// C_all is the x = 0 compiled max condition.)
func AllVectorsCondition(n, m, l int) *condition.Compiled {
	return condition.MustCompileMax(n, m, 0, l)
}

// Table1Condition returns the paper's Table 1: the four-vector condition
// over n = 4 processes and values a,b,c,d (encoded 1,2,3,4) with the
// recognizing function h_1 of the table. It is (1,1)-legal, and Theorem 14
// proves it is not (2,2)-legal.
func Table1Condition() *condition.Compiled {
	const a, b, c, d = 1, 2, 3, 4
	cond := condition.MustNewBuilder(4, 4, 1)
	cond.MustAdd(vector.OfInts(a, a, c, d), vector.SetOf(a))
	cond.MustAdd(vector.OfInts(b, b, c, d), vector.SetOf(b))
	cond.MustAdd(vector.OfInts(a, b, c, c), vector.SetOf(c))
	cond.MustAdd(vector.OfInts(a, b, d, d), vector.SetOf(d))
	return cond.Compile()
}

// WithL returns the same vector set as c re-labelled with parameter l and
// recognized by max_l; it is the form handed to the legality decider when
// asking whether any recognizing function for a different ℓ exists.
func WithL(c *condition.Compiled, l int) *condition.Compiled {
	out := condition.MustNewBuilder(c.N(), c.M(), l)
	for k, size := 0, c.Size(); k < size; k++ {
		i := c.MemberAt(k)
		out.MustAdd(i, i.TopL(l))
	}
	return out.Compile()
}

// Theorem15Condition builds the Appendix-B construction: ℓ+1 vectors over
// n entries that are (x+1,ℓ+1)-legal (with the uniform recognizing set
// {v_1..v_{ℓ+1}}) but not (x,ℓ)-legal. Vector I_j starts with x−ℓ+1
// entries equal to v_j, followed by the common tail v_1..v_{n−x+ℓ−1}, so
// the vectors differ only in their first x−ℓ+1 entries and v_j is the only
// value appearing more than once in I_j. Requires ℓ < x and n ≥ x+2.
//
// Density for the uniform set is (x−ℓ+2) + ℓ = x+2 > x+1, and the common
// tail gives the intersecting vector ℓ+1 entries holding it, matching the
// binding distance instance α = (x+1) − (x−ℓ+1) + 1 = ℓ+1. Conversely any
// (x,ℓ)-recognizer must put v_j into g(I_j) (it is the only value dense
// enough), and ℓ+1 distinct forced values cannot fit into ℓ-sized sets
// whose intersection must still cover ℓ tail entries.
//
// The "not (x,ℓ)" half is notable: for ℓ ≥ 2 every pair of its vectors can
// satisfy the (x,ℓ)-distance property, and only the full (ℓ+1)-vector
// subset witnesses the failure — exercising d_G beyond pairs.
func Theorem15Condition(n, x, l int) (*condition.Compiled, error) {
	if l >= x {
		return nil, fmt.Errorf("lattice: theorem 15 needs ℓ < x, got ℓ=%d x=%d", l, x)
	}
	if n < x+2 {
		return nil, fmt.Errorf("lattice: theorem 15 needs n ≥ x+2, got n=%d x=%d", n, x)
	}
	tail := n - x + l - 1 // number of common tail values v_1..v_tail
	if tail < l+1 {
		return nil, fmt.Errorf("lattice: theorem 15 internal: tail %d < ℓ+1", tail)
	}
	c := condition.MustNewBuilder(n, tail, l+1)
	uniform := vector.SetOf()
	for v := 1; v <= l+1; v++ {
		uniform = uniform.Add(vector.Value(v))
	}
	for j := 1; j <= l+1; j++ {
		i := vector.New(n)
		for k := 0; k < x-l+1; k++ {
			i[k] = vector.Value(j)
		}
		for k := 0; k < tail; k++ {
			i[x-l+1+k] = vector.Value(k + 1)
		}
		if err := c.Add(i, uniform); err != nil {
			return nil, fmt.Errorf("lattice: theorem 15: %w", err)
		}
	}
	return c.Compile(), nil
}

package lattice

import (
	"strings"
	"testing"

	"kset/internal/condition"
	"kset/internal/vector"
)

func TestDensestMass(t *testing.T) {
	v := vector.OfInts(1, 1, 1, 5, 5, 2)
	tests := []struct {
		l, want int
	}{{1, 3}, {2, 5}, {3, 6}, {4, 6}}
	for _, tc := range tests {
		if got := densestMass(v, tc.l); got != tc.want {
			t.Errorf("densestMass(ℓ=%d) = %d, want %d", tc.l, got, tc.want)
		}
	}
}

// TestTheorem4 checks inclusion: every (x+1,ℓ)-legal max condition is
// (x,ℓ)-legal.
func TestTheorem4(t *testing.T) {
	for _, tc := range []struct{ n, m, x, l int }{
		{4, 3, 1, 1}, {4, 3, 2, 1}, {4, 3, 1, 2}, {5, 2, 2, 2},
	} {
		c := maxCompiled(tc.n, tc.m, tc.x+1, tc.l)
		if c.Size() == 0 {
			t.Fatalf("empty witness for %+v", tc)
		}
		if v := condition.Check(c, tc.x, checkOpts); v != nil {
			t.Errorf("Theorem 4 fails at %+v: %v", tc, v)
		}
	}
}

// TestTheorem5 checks strictness: the Theorem-5 family is (x,ℓ)-legal but
// admits no (x+1,ℓ)-recognizer.
func TestTheorem5(t *testing.T) {
	for _, tc := range []struct{ n, m, x, l int }{
		{4, 3, 1, 1}, {4, 3, 2, 1}, {5, 4, 2, 2}, {4, 4, 1, 2},
	} {
		c, err := Theorem5Condition(tc.n, tc.m, tc.x, tc.l)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if v := condition.Check(c, tc.x, checkOpts); v != nil {
			t.Errorf("Theorem 5 witness not (x,ℓ)-legal at %+v: %v", tc, v)
		}
		if _, ok := condition.ExistsRecognizer(c, tc.x+1); ok {
			t.Errorf("Theorem 5 witness unexpectedly (x+1,ℓ)-legal at %+v", tc)
		}
	}
}

// TestTheorem6 checks the constructive boost: g_{ℓ+1} built from h_ℓ keeps
// the condition legal at (x, ℓ+1).
func TestTheorem6(t *testing.T) {
	for _, tc := range []struct{ n, m, x, l int }{
		{4, 3, 1, 1}, {4, 3, 2, 1}, {4, 3, 2, 2}, {5, 2, 2, 1},
	} {
		base := maxCompiled(tc.n, tc.m, tc.x, tc.l)
		boosted, err := BoostL(base)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if boosted.L() != tc.l+1 {
			t.Fatalf("boosted L = %d, want %d", boosted.L(), tc.l+1)
		}
		if v := condition.Check(boosted, tc.x, checkOpts); v != nil {
			t.Errorf("Theorem 6 boost not (x,ℓ+1)-legal at %+v: %v", tc, v)
		}
	}
}

// TestTheorem7 checks strictness in ℓ: the Theorem-7 family is
// (x,ℓ+1)-legal but admits no (x,ℓ)-recognizer.
func TestTheorem7(t *testing.T) {
	for _, tc := range []struct{ n, m, x, l int }{
		{4, 3, 2, 1}, {3, 3, 2, 2}, {5, 3, 3, 1}, {4, 4, 3, 2},
	} {
		c, err := Theorem7Condition(tc.n, tc.m, tc.x, tc.l)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if v := condition.Check(c, tc.x, checkOpts); v != nil {
			t.Errorf("Theorem 7 witness not (x,ℓ+1)-legal at %+v: %v", tc, v)
		}
		if _, ok := condition.ExistsRecognizer(WithL(c, tc.l), tc.x); ok {
			t.Errorf("Theorem 7 witness unexpectedly (x,ℓ)-legal at %+v", tc)
		}
	}
}

// TestTheorems8And9 checks the all-vectors boundary: C_all is (x,ℓ)-legal
// iff ℓ > x. The positive side uses the max_ℓ recognizer; the negative side
// exhausts all recognizing functions on a refuting subset (or C_all itself).
func TestTheorems8And9(t *testing.T) {
	n, m := 4, 3
	for x := 0; x <= 2; x++ {
		for l := 1; l <= 3; l++ {
			all := AllVectorsCondition(n, m, l)
			if l > x {
				if v := condition.Check(all, x, checkOpts); v != nil {
					t.Errorf("Theorem 8 fails at x=%d ℓ=%d: %v", x, l, v)
				}
				continue
			}
			// Theorem 9: refute via a subset with no recognizer
			// (non-legality is inherited upward).
			c7, err := Theorem7Condition(n, m, x, l)
			if err != nil {
				if _, ok := condition.ExistsRecognizer(all, x); ok {
					t.Errorf("Theorem 9 fails at x=%d ℓ=%d: C_all has a recognizer", x, l)
				}
				continue
			}
			if _, ok := condition.ExistsRecognizer(WithL(c7, l), x); ok {
				t.Errorf("Theorem 9 refuting subset has a recognizer at x=%d ℓ=%d", x, l)
			}
		}
	}
}

// TestTable1 reproduces the paper's Table 1 and Theorem 14: the four-vector
// condition is (1,1)-legal with exactly the tabulated recognizing function,
// and no recognizing function at all makes it (2,2)-legal.
func TestTable1(t *testing.T) {
	c := Table1Condition()
	if c.Size() != 4 {
		t.Fatalf("Table 1 has %d vectors, want 4", c.Size())
	}
	if v := condition.Check(c, 1, condition.CheckOptions{}); v != nil {
		t.Errorf("Table 1 condition not (1,1)-legal: %v", v)
	}
	if _, ok := condition.ExistsRecognizer(WithL(c, 2), 2); ok {
		t.Error("Theorem 14: Table 1 condition must not be (2,2)-legal")
	}
	// The tabulated h is as printed: h(I1)=a, h(I2)=b, h(I3)=c, h(I4)=d.
	want := []vector.Set{vector.SetOf(1), vector.SetOf(2), vector.SetOf(3), vector.SetOf(4)}
	for k, i := range c.Members() {
		if got := c.Recognize(i); !got.Equal(want[k]) {
			t.Errorf("h(I%d) = %v, want %v", k+1, got, want[k])
		}
	}
}

// TestTheorem15 checks the other Appendix-B diagonal: the ℓ+1-vector
// construction is (x+1,ℓ+1)-legal but not (x,ℓ)-legal.
func TestTheorem15(t *testing.T) {
	for _, tc := range []struct{ n, x, l int }{
		{5, 3, 1}, {6, 3, 2}, {6, 4, 2}, {7, 4, 3}, {7, 5, 1},
	} {
		c, err := Theorem15Condition(tc.n, tc.x, tc.l)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if c.Size() != tc.l+1 {
			t.Fatalf("%+v: %d vectors, want ℓ+1=%d", tc, c.Size(), tc.l+1)
		}
		if v := condition.Check(c, tc.x+1, condition.CheckOptions{}); v != nil {
			t.Errorf("Theorem 15 witness not (x+1,ℓ+1)-legal at %+v: %v", tc, v)
		}
		if _, ok := condition.ExistsRecognizer(WithL(c, tc.l), tc.x); ok {
			t.Errorf("Theorem 15 witness unexpectedly (x,ℓ)-legal at %+v", tc)
		}
	}
}

// TestTheorem15PairsInsufficient documents why the generalized distance
// matters: for ℓ ≥ 2 a pairs-only decider would wrongly accept the
// Theorem-15 condition at (x,ℓ).
func TestTheorem15PairsInsufficient(t *testing.T) {
	c, err := Theorem15Condition(6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	relabel := WithL(c, 2)
	members := relabel.Members()
	// Assignment sharing values pairwise: g(I_j) = {v_j, v_other}. Build
	// g(I_1)={1,2}, g(I_2)={2,1}… identical pairwise-compatible sets exist:
	// g(I_1)={1,2}, g(I_2)={2,1} are equal; g(I_3) must contain 3.
	gs := []vector.Set{
		vector.SetOf(1, 2),
		vector.SetOf(2, 1),
		vector.SetOf(3, 1),
	}
	for a := 0; a < len(members); a++ {
		for b := a + 1; b < len(members); b++ {
			v := condition.CheckDistanceInstance(
				[]vector.Vector{members[a], members[b]},
				[]vector.Set{gs[a], gs[b]}, 4)
			if a == 0 && b == 1 && v != nil {
				t.Errorf("pair (1,2) should pass: %v", v)
			}
		}
	}
	// Yet the full triple fails for every assignment (Theorem 15).
	if _, ok := condition.ExistsRecognizer(relabel, 4); ok {
		t.Error("triple-level failure not detected")
	}
}

func TestTheorem15Errors(t *testing.T) {
	if _, err := Theorem15Condition(6, 2, 2); err == nil {
		t.Error("want error for ℓ ≥ x")
	}
	if _, err := Theorem15Condition(4, 3, 1); err == nil {
		t.Error("want error for n < x+2")
	}
}

func TestVerifyFigure1AndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	facts, err := VerifyFigure1(4, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 9 {
		t.Fatalf("got %d cells, want 9", len(facts))
	}
	for _, f := range facts {
		if !f.Verified() {
			t.Errorf("cell (x=%d,ℓ=%d) not verified: %+v", f.X, f.L, f)
		}
		if f.AllLegal != (f.L > f.X) {
			t.Errorf("cell (x=%d,ℓ=%d): C_all legality %v, want %v",
				f.X, f.L, f.AllLegal, f.L > f.X)
		}
	}
	out := Render(facts)
	if !strings.Contains(out, "✓") || !strings.Contains(out, "∗") {
		t.Errorf("render lacks markers:\n%s", out)
	}
}

func TestVerifyFigure1Errors(t *testing.T) {
	if _, err := VerifyFigure1(3, 2, 3, 2); err == nil {
		t.Error("want error for xMax ≥ n")
	}
	if _, err := VerifyFigure1(3, 2, 1, 0); err == nil {
		t.Error("want error for lMax < 1")
	}
	if got := Render(nil); got == "" {
		t.Error("render of empty grid should describe itself")
	}
}

package lattice

import (
	"strings"
	"testing"

	"kset/internal/condition"
	"kset/internal/vector"
)

func TestAllVectorsConditionSize(t *testing.T) {
	c := AllVectorsCondition(3, 2, 1)
	if c.Size() != 8 { // 2^3
		t.Errorf("C_all size = %d, want 8", c.Size())
	}
	if !c.Contains(vector.OfInts(1, 2, 1)) {
		t.Error("C_all must contain everything")
	}
}

func TestWithLRelabels(t *testing.T) {
	c := Table1Condition()
	re := WithL(c, 2)
	if re.L() != 2 || re.Size() != c.Size() {
		t.Errorf("WithL: L=%d size=%d", re.L(), re.Size())
	}
	for _, i := range re.Members() {
		if got := re.Recognize(i); !got.Equal(i.TopL(2)) {
			t.Errorf("WithL recognizer = %v, want max_2 = %v", got, i.TopL(2))
		}
	}
}

func TestBoostLPreservesMembers(t *testing.T) {
	base := maxCompiled(4, 3, 1, 1)
	boosted, err := BoostL(base)
	if err != nil {
		t.Fatal(err)
	}
	if boosted.Size() != base.Size() {
		t.Errorf("boost changed membership: %d vs %d", boosted.Size(), base.Size())
	}
	for _, i := range base.Members() {
		h := base.Recognize(i)
		g := boosted.Recognize(i)
		if !h.SubsetOf(g) {
			t.Errorf("boost dropped values: h=%v g=%v", h, g)
		}
		want := 2
		if nv := i.Vals().Len(); nv < want {
			want = nv
		}
		if g.Len() != want {
			t.Errorf("boost size = %d, want %d for %v", g.Len(), want, i)
		}
	}
}

func TestCounterexampleFamilyErrors(t *testing.T) {
	// Theorem 5 needs x+1 ≤ n.
	if _, err := Theorem5Condition(3, 2, 3, 1); err == nil {
		t.Error("want error for x+1 > n")
	}
	// Theorem 7 family empty when every ℓ-mass bound is unsatisfiable.
	if _, err := Theorem7Condition(2, 2, 0, 1); err == nil {
		t.Error("want error for empty family")
	}
}

func TestVerifyCellSkipsAreHonest(t *testing.T) {
	// At x = n−1 = 2 with n = 3 Theorem 4's witness needs x+1 < n: skipped
	// but not failed.
	f := VerifyCell(3, 2, 2, 1)
	joined := strings.Join(f.Skipped, ";")
	if !strings.Contains(joined, "thm4") {
		t.Errorf("expected a thm4 skip, got %q", joined)
	}
	if !f.UpInclusion {
		t.Error("skipped checks must not fail the cell")
	}
}

func TestRenderMarksFailures(t *testing.T) {
	facts := []Fact{{X: 0, L: 1}} // zero-valued: nothing verified
	out := Render(facts)
	if !strings.Contains(out, "✗") {
		t.Errorf("unverified cell not marked:\n%s", out)
	}
}

func TestDensestMassEmpty(t *testing.T) {
	if got := densestMass(vector.New(3), 2); got != 0 {
		t.Errorf("densestMass of all-⊥ = %d", got)
	}
}

func TestTheorem15RecognizedUniform(t *testing.T) {
	c, err := Theorem15Condition(6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := vector.SetOf(1, 2, 3)
	for _, i := range c.Members() {
		if got := c.Recognize(i); !got.Equal(want) {
			t.Errorf("h(%v) = %v, want uniform %v", i, got, want)
		}
	}
	// The failure is sharp: at (x−1, ℓ) = (3,2) the weaker distance
	// requirement (α = 1 at the family's d_G = 3) admits a recognizer
	// again — only (x, ℓ) itself is refuted.
	if _, ok := condition.ExistsRecognizer(WithL(c, 2), 3); !ok {
		t.Error("family must be (x−1,ℓ)-legalizable")
	}
	if _, ok := condition.ExistsRecognizer(WithL(c, 2), 4); ok {
		t.Error("family must not be (x,ℓ)-legalizable")
	}
}

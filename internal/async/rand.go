package async

// prng is a splitmix64 generator: one word of state, allocation-free,
// statistically strong enough for scheduling draws, and trivially
// reseedable per run. It is the same generator the fault-injection
// transport uses, so every randomized plane of the repo shares one
// reproducibility story: identical seed, identical draws.
type prng struct{ s uint64 }

// reseed resets the generator to a deterministic function of seed.
func (p *prng) reseed(seed int64) { p.s = uint64(seed) }

// next returns the next 64-bit draw.
func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a draw in [0, n); n must be positive.
func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// shuffle permutes xs in place (Fisher–Yates).
func (p *prng) shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := p.intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

package async

import (
	"fmt"
	"sort"

	"kset/internal/condition"
	"kset/internal/kerr"
	"kset/internal/vector"
)

// CrashPoint says where in its execution a process crashes.
type CrashPoint int

// Crash points for the asynchronous adversary.
const (
	// NoCrash lets the process run to completion.
	NoCrash CrashPoint = iota
	// CrashBeforeWrite stops the process before it deposits its value: its
	// input-vector entry stays ⊥ forever. This is the adversary the
	// density property is built against.
	CrashBeforeWrite
	// CrashAfterWrite stops the process after its value is visible but
	// before it helps or decides.
	CrashAfterWrite
)

// MemoryKind selects the shared-memory substrate of a run.
type MemoryKind int

// Available substrates.
const (
	// MutexMemory is the lock-serialized snapshot simulation (default).
	MutexMemory MemoryKind = iota
	// WaitFreeMemory is the lock-free Afek-et-al atomic snapshot.
	WaitFreeMemory
	// MessagePassingMemory emulates the registers over an asynchronous
	// message-passing network with ABD quorum operations; it requires
	// x < n/2 (quorum intersection) and crashes also silence the crashed
	// process's replica.
	MessagePassingMemory
)

// Config describes one asynchronous execution.
type Config struct {
	// X is the crash resilience: the condition must be (x,ℓ)-legal and
	// views with more than x missing entries are not decoded.
	X int
	// Cond is the (x,ℓ)-legal condition instantiating the algorithm.
	Cond condition.Condition
	// Input is the full input vector (entry i proposed by process i+1).
	Input vector.Vector
	// Crashes maps 1-based process ids to crash points. At most one of
	// Crashes and CrashPoints may be set.
	Crashes map[int]CrashPoint
	// CrashPoints is the dense form of Crashes: entry i is the crash
	// point of process i+1. Batch drivers reuse one slice across runs and
	// skip the per-run map. When non-nil its length must be n.
	CrashPoints []CrashPoint
	// Seed drives the virtual scheduler: per-process start delays, the
	// per-pass step order and (for MessagePassingMemory) the quorum
	// draws. Executions are a pure function of (Config, Seed) — the same
	// seed replays the same interleaving, decisions and outcome.
	Seed int64
	// ScanBudget bounds how many unsuccessful re-scans an undecided
	// process performs before giving up (condition-based termination is
	// conditional; giving up is reported, not an error). 0 selects a
	// default generous enough that in-condition runs always decide well
	// within it. Replaces the former wall-clock Patience: the scheduler
	// is virtual, so waiting is counted in steps, not time.
	ScanBudget int
	// Memory selects the snapshot substrate; the algorithm is oblivious to
	// the choice (all are linearizable).
	Memory MemoryKind
	// Cancel, when non-nil, aborts the run early when it is closed (e.g. a
	// context's Done channel): undecided processes stop re-scanning and are
	// reported in Outcome.Undecided.
	Cancel <-chan struct{}
}

// Outcome reports one asynchronous execution. Both fields are plain
// arrays so pooled runners recycle them across runs; same-seed runs
// produce byte-identical outcomes.
type Outcome struct {
	// Decided holds the decisions as a vector: entry i is the value
	// process i+1 decided, ⊥ if it crashed or gave up.
	Decided vector.Vector
	// Undecided lists correct processes (1-based, ascending) that
	// exhausted their scan budget: with an input outside the condition
	// this is expected behavior.
	Undecided []int
}

// Decision returns the value process id (1-based) decided, if any.
func (o *Outcome) Decision(id int) (vector.Value, bool) {
	if id < 1 || id > len(o.Decided) || o.Decided[id-1] == vector.Bottom {
		return vector.Bottom, false
	}
	return o.Decided[id-1], true
}

// DecidedCount returns how many processes decided.
func (o *Outcome) DecidedCount() int {
	c := 0
	for _, v := range o.Decided {
		if v != vector.Bottom {
			c++
		}
	}
	return c
}

// DistinctDecisions returns the set of decided values.
func (o *Outcome) DistinctDecisions() vector.Set {
	return o.Decided.Vals()
}

// reset sizes the outcome for n processes and clears it.
func (o *Outcome) reset(n int) {
	if cap(o.Decided) < n {
		o.Decided = vector.New(n)
	} else {
		o.Decided = o.Decided[:n]
		for i := range o.Decided {
			o.Decided[i] = vector.Bottom
		}
	}
	o.Undecided = o.Undecided[:0]
}

// validate checks the configuration and returns n and the run's dense
// crash points (dst, resized and filled, when crashes are configured;
// nil for a crash-free run).
func (cfg *Config) validate(dst []CrashPoint) (int, []CrashPoint, error) {
	n := len(cfg.Input)
	if n < 2 {
		return 0, nil, fmt.Errorf("async: n=%d, want ≥ 2: %w", n, kerr.ErrBadParams)
	}
	if !cfg.Input.IsFull() {
		return 0, nil, fmt.Errorf("async: input %v has ⊥ entries: %w", cfg.Input, kerr.ErrBadInput)
	}
	if cfg.Cond == nil || cfg.Cond.N() != n {
		return 0, nil, fmt.Errorf("async: condition missing or sized %d, want %d: %w", condN(cfg.Cond), n, kerr.ErrBadParams)
	}
	if cfg.X < 0 || cfg.X >= n {
		return 0, nil, fmt.Errorf("async: x=%d, want 0 ≤ x < n: %w", cfg.X, kerr.ErrBadParams)
	}
	if cfg.ScanBudget < 0 {
		return 0, nil, fmt.Errorf("async: ScanBudget=%d, want ≥ 0: %w", cfg.ScanBudget, kerr.ErrBadParams)
	}
	if cfg.Crashes != nil && cfg.CrashPoints != nil {
		return 0, nil, fmt.Errorf("async: both Crashes and CrashPoints set: %w", kerr.ErrBadParams)
	}
	var crashes []CrashPoint
	switch {
	case cfg.CrashPoints != nil:
		if len(cfg.CrashPoints) != n {
			return 0, nil, fmt.Errorf("async: CrashPoints sized %d, want %d: %w", len(cfg.CrashPoints), n, kerr.ErrBadParams)
		}
		crashes = cfg.CrashPoints
	case len(cfg.Crashes) > 0:
		if cap(dst) < n {
			dst = make([]CrashPoint, n)
		}
		dst = dst[:n]
		for i := range dst {
			dst[i] = NoCrash
		}
		for id, cp := range cfg.Crashes {
			if id < 1 || id > n {
				return 0, nil, fmt.Errorf("async: crash of unknown process %d: %w", id, kerr.ErrBadParams)
			}
			dst[id-1] = cp
		}
		crashes = dst
	}
	numCrashes := 0
	for _, cp := range crashes {
		if cp != NoCrash {
			numCrashes++
		}
	}
	if numCrashes > cfg.X {
		return 0, nil, fmt.Errorf("async: %d crashes exceed x=%d: %w", numCrashes, cfg.X, kerr.ErrBadParams)
	}
	return n, crashes, nil
}

// Run executes the condition-based asynchronous ℓ-set agreement algorithm:
// every process deposits its value in the snapshot, re-scans until at most
// x entries are missing, and decides max(h_ℓ(view)) if the view can still
// belong to the condition (P); otherwise it adopts any value already
// decided by another process. Processes crash per the configured crash
// points. The execution is deterministic per seed (see Config.Seed).
//
// Run checks a pooled Runner out for the call; batch drivers should hold
// their own Runner and use RunInto to also recycle the Outcome.
func Run(cfg Config) (*Outcome, error) {
	r := runnerPool.Get().(*Runner)
	out := new(Outcome)
	err := r.RunInto(cfg, out)
	runnerPool.Put(r)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sortInts sorts a small int slice ascending. The undecided list is at
// most n entries, so insertion via sort.Ints is never a hot cost.
func sortInts(xs []int) { sort.Ints(xs) }

func condN(c condition.Condition) int {
	if c == nil {
		return 0
	}
	return c.N()
}

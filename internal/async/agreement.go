package async

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"kset/internal/condition"
	"kset/internal/kerr"
	"kset/internal/vector"
)

// CrashPoint says where in its execution a process crashes.
type CrashPoint int

// Crash points for the asynchronous adversary.
const (
	// NoCrash lets the process run to completion.
	NoCrash CrashPoint = iota
	// CrashBeforeWrite stops the process before it deposits its value: its
	// input-vector entry stays ⊥ forever. This is the adversary the
	// density property is built against.
	CrashBeforeWrite
	// CrashAfterWrite stops the process after its value is visible but
	// before it helps or decides.
	CrashAfterWrite
)

// MemoryKind selects the shared-memory substrate of a run.
type MemoryKind int

// Available substrates.
const (
	// MutexMemory is the lock-serialized snapshot simulation (default).
	MutexMemory MemoryKind = iota
	// WaitFreeMemory is the lock-free Afek-et-al atomic snapshot.
	WaitFreeMemory
	// MessagePassingMemory emulates the registers over an asynchronous
	// message-passing network with ABD quorum operations; it requires
	// x < n/2 (quorum intersection) and crashes also silence the crashed
	// process's replica.
	MessagePassingMemory
)

// Config describes one asynchronous execution.
type Config struct {
	// X is the crash resilience: the condition must be (x,ℓ)-legal and
	// views with more than x missing entries are not decoded.
	X int
	// Cond is the (x,ℓ)-legal condition instantiating the algorithm.
	Cond condition.Condition
	// Input is the full input vector (entry i proposed by process i+1).
	Input vector.Vector
	// Crashes maps 1-based process ids to crash points.
	Crashes map[int]CrashPoint
	// Seed drives the per-process scheduling jitter, making the
	// interleavings reproducible per seed.
	Seed int64
	// Patience bounds how long an undecided process keeps re-scanning
	// before giving up (condition-based termination is conditional; giving
	// up is reported, not an error). Defaults to 300ms.
	Patience time.Duration
	// Memory selects the snapshot substrate; the algorithm is oblivious to
	// the choice (both are linearizable).
	Memory MemoryKind
	// Cancel, when non-nil, aborts the run early when it is closed (e.g. a
	// context's Done channel): undecided processes stop re-scanning and are
	// reported in Outcome.Undecided.
	Cancel <-chan struct{}
}

// Outcome reports one asynchronous execution.
type Outcome struct {
	// Decisions maps 1-based process ids to decided values.
	Decisions map[int]vector.Value
	// Undecided lists correct processes that exhausted their patience:
	// with an input outside the condition this is expected behavior.
	Undecided []int
}

// DistinctDecisions returns the set of decided values.
func (o *Outcome) DistinctDecisions() vector.Set {
	var s vector.Set
	for _, v := range o.Decisions {
		s = s.Add(v)
	}
	return s
}

// Run executes the condition-based asynchronous ℓ-set agreement algorithm:
// every process deposits its value in the snapshot, re-scans until at most
// x entries are missing, and decides max(h_ℓ(view)) if the view can still
// belong to the condition (P); otherwise it adopts any value already
// decided by another process. Processes crash per cfg.Crashes.
func Run(cfg Config) (*Outcome, error) {
	n := len(cfg.Input)
	if n < 2 {
		return nil, fmt.Errorf("async: n=%d, want ≥ 2: %w", n, kerr.ErrBadParams)
	}
	if !cfg.Input.IsFull() {
		return nil, fmt.Errorf("async: input %v has ⊥ entries: %w", cfg.Input, kerr.ErrBadInput)
	}
	if cfg.Cond == nil || cfg.Cond.N() != n {
		return nil, fmt.Errorf("async: condition missing or sized %d, want %d: %w", condN(cfg.Cond), n, kerr.ErrBadParams)
	}
	if cfg.X < 0 || cfg.X >= n {
		return nil, fmt.Errorf("async: x=%d, want 0 ≤ x < n: %w", cfg.X, kerr.ErrBadParams)
	}
	if len(cfg.Crashes) > cfg.X {
		return nil, fmt.Errorf("async: %d crashes exceed x=%d: %w", len(cfg.Crashes), cfg.X, kerr.ErrBadParams)
	}
	patience := cfg.Patience
	if patience <= 0 {
		patience = 300 * time.Millisecond
	}

	var values, decisions Store // the emulated input vector; decided values
	var network *Network
	switch cfg.Memory {
	case WaitFreeMemory:
		values = NewAtomicSnapshot(n)
		decisions = NewAtomicSnapshot(n)
	case MessagePassingMemory:
		nw, err := NewNetwork(n, cfg.X, 2*n, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		valRegs, err := nw.Registers(0, n)
		if err != nil {
			nw.Close()
			return nil, err
		}
		decRegs, err := nw.Registers(n, n)
		if err != nil {
			nw.Close()
			return nil, err
		}
		network = nw
		values = NewSnapshotOver(valRegs)
		decisions = NewSnapshotOver(decRegs)
		defer nw.Close()
	default:
		values = NewSnapshot(n)
		decisions = NewSnapshot(n)
	}

	out := &Outcome{Decisions: make(map[int]vector.Value)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id := 1; id <= n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			jitter := func() { time.Sleep(time.Duration(r.Intn(200)) * time.Microsecond) }

			crash := cfg.Crashes[id]
			if crash == CrashBeforeWrite {
				if network != nil {
					network.Crash(id) // the replica dies with the process
				}
				return
			}
			jitter()
			values.Write(id-1, cfg.Input[id-1])
			if crash == CrashAfterWrite {
				if network != nil {
					network.Crash(id)
				}
				return
			}

			deadline := time.Now().Add(patience)
			for {
				jitter()
				view := values.Scan()
				if view.BottomCount() <= cfg.X {
					if condition.Predicate(cfg.Cond, view) {
						if h, ok := condition.DecodeView(cfg.Cond, view); ok && !h.Empty() {
							d := h.Max()
							decisions.Write(id-1, d)
							mu.Lock()
							out.Decisions[id] = d
							mu.Unlock()
							return
						}
					}
					// ¬P is stable under growing views (completions only
					// shrink): from here on only adoption can decide.
				}
				if d := decisions.AnyNonBottom(); d != vector.Bottom {
					mu.Lock()
					out.Decisions[id] = d
					mu.Unlock()
					return
				}
				cancelled := false
				if cfg.Cancel != nil {
					select {
					case <-cfg.Cancel:
						cancelled = true
					default:
					}
				}
				if cancelled || time.Now().After(deadline) {
					mu.Lock()
					out.Undecided = append(out.Undecided, id)
					mu.Unlock()
					return
				}
			}
		}(id)
	}
	wg.Wait()
	return out, nil
}

func condN(c condition.Condition) int {
	if c == nil {
		return 0
	}
	return c.N()
}

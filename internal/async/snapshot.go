package async

import (
	"sync"

	"kset/internal/vector"
)

// Snapshot is a linearizable single-writer-per-entry snapshot object: entry
// i is written by process i+1, and Scan returns an atomic view of the whole
// array. Scans are totally ordered by containment because entries are
// written at most once and grow monotonically.
//
// The implementation serializes operations with a mutex, which trivially
// linearizes them; it stands in for the wait-free construction of Afek et
// al. cited by the paper, whose interface and ordering guarantees are what
// the algorithm relies on. Like AtomicSnapshot it publishes epochs: the
// first Scan after a Write clones the array into an immutable published
// vector, and every further Scan returns that same vector allocation-free
// until the next Write invalidates it.
type Snapshot struct {
	mu   sync.Mutex
	regs vector.Vector
	pub  vector.Vector // published immutable copy; nil while stale
}

// NewSnapshot creates a snapshot object with n entries, all ⊥.
func NewSnapshot(n int) *Snapshot {
	return &Snapshot{regs: vector.New(n)}
}

// Reset restores the snapshot to n all-⊥ entries, reusing its register
// storage when the size allows. Pooled runners call it between runs.
func (s *Snapshot) Reset(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(s.regs) < n {
		s.regs = vector.New(n)
	} else {
		s.regs = s.regs[:n]
		for i := range s.regs {
			s.regs[i] = vector.Bottom
		}
	}
	s.pub = nil
}

// Write sets entry i (0-based) to v.
func (s *Snapshot) Write(i int, v vector.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regs[i] = v
	s.pub = nil
}

// Scan returns an atomic view of the array: an immutable epoch-published
// vector shared with every other Scan of the same state. Callers must not
// modify it.
func (s *Snapshot) Scan() vector.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pub == nil {
		s.pub = s.regs.Clone()
	}
	return s.pub
}

// AnyNonBottom returns the greatest non-⊥ entry of an atomic scan, or ⊥.
func (s *Snapshot) AnyNonBottom() vector.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regs.Max()
}

package async

import (
	"sync"

	"kset/internal/vector"
)

// Snapshot is a linearizable single-writer-per-entry snapshot object: entry
// i is written by process i+1, and Scan returns an atomic copy of the whole
// array. Scans are totally ordered by containment because entries are
// written at most once and grow monotonically.
//
// The implementation serializes operations with a mutex, which trivially
// linearizes them; it stands in for the wait-free construction of Afek et
// al. cited by the paper, whose interface and ordering guarantees are what
// the algorithm relies on.
type Snapshot struct {
	mu   sync.Mutex
	regs vector.Vector
}

// NewSnapshot creates a snapshot object with n entries, all ⊥.
func NewSnapshot(n int) *Snapshot {
	return &Snapshot{regs: vector.New(n)}
}

// Write sets entry i (0-based) to v.
func (s *Snapshot) Write(i int, v vector.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regs[i] = v
}

// Scan returns an atomic copy of the array.
func (s *Snapshot) Scan() vector.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regs.Clone()
}

// AnyNonBottom returns the greatest non-⊥ entry of an atomic scan, or ⊥.
func (s *Snapshot) AnyNonBottom() vector.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regs.Max()
}

// Package async implements the asynchronous side of the paper (Section 4):
// the condition-based ℓ-set agreement algorithm obtained by generalizing
// the consensus algorithm of Mostefaoui–Rajsbaum–Raynal [20] to
// (x,ℓ)-legal conditions, running over a wait-free atomic-snapshot shared
// memory (Afek et al. [1], the paper's reference for the view-containment
// structure its own synchronous round 1 emulates).
//
// The algorithm solves ℓ-set agreement among n asynchronous processes of
// which up to x may crash, whenever the input vector belongs to an
// (x,ℓ)-legal condition: every view scanned from the snapshot with at most
// x missing entries decodes (Definition 4 / Theorem 1) to between 1 and ℓ
// values, and because atomic snapshots are totally ordered by containment,
// the decoded sets are nested — at most ℓ values are ever decided, whatever
// the input. Termination, as always with the condition-based approach, is
// guaranteed only when the input belongs to the condition (or some process
// decides and its decision is adopted); the package reports processes that
// give up waiting, which is the executable face of the ℓ ≤ x impossibility.
package async

import (
	"sync"

	"kset/internal/vector"
)

// Snapshot is a linearizable single-writer-per-entry snapshot object: entry
// i is written by process i+1, and Scan returns an atomic copy of the whole
// array. Scans are totally ordered by containment because entries are
// written at most once and grow monotonically.
//
// The implementation serializes operations with a mutex, which trivially
// linearizes them; it stands in for the wait-free construction of Afek et
// al. cited by the paper, whose interface and ordering guarantees are what
// the algorithm relies on.
type Snapshot struct {
	mu   sync.Mutex
	regs vector.Vector
}

// NewSnapshot creates a snapshot object with n entries, all ⊥.
func NewSnapshot(n int) *Snapshot {
	return &Snapshot{regs: vector.New(n)}
}

// Write sets entry i (0-based) to v.
func (s *Snapshot) Write(i int, v vector.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regs[i] = v
}

// Scan returns an atomic copy of the array.
func (s *Snapshot) Scan() vector.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regs.Clone()
}

// AnyNonBottom returns the greatest non-⊥ entry of an atomic scan, or ⊥.
func (s *Snapshot) AnyNonBottom() vector.Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regs.Max()
}

package async

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"kset/internal/condition"
	"kset/internal/vector"
)

func TestSnapshotBasics(t *testing.T) {
	s := NewSnapshot(3)
	if got := s.Scan(); !got.Equal(vector.OfInts(0, 0, 0)) {
		t.Errorf("fresh scan = %v", got)
	}
	s.Write(1, 7)
	if got := s.Scan(); !got.Equal(vector.OfInts(0, 7, 0)) {
		t.Errorf("scan = %v", got)
	}
	if got := s.AnyNonBottom(); got != 7 {
		t.Errorf("AnyNonBottom = %v", got)
	}
	// Scan returns a copy: mutating it must not affect the object.
	v := s.Scan()
	v[0] = 9
	if got := s.Scan(); got[0] != vector.Bottom {
		t.Error("Scan leaked internal storage")
	}
}

// TestSnapshotScansContainmentOrdered is the property the agreement
// argument rests on: concurrent scans of a write-once array are totally
// ordered by containment.
func TestSnapshotScansContainmentOrdered(t *testing.T) {
	const n, scans = 8, 200
	s := NewSnapshot(n)
	var wg sync.WaitGroup
	views := make([]vector.Vector, scans)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			s.Write(i, vector.Value(i+1))
			time.Sleep(time.Microsecond)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * (scans / 4); i < (g+1)*(scans/4); i++ {
				views[i] = s.Scan()
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < scans; i++ {
		for j := 0; j < scans; j++ {
			if !views[i].ContainedIn(views[j]) && !views[j].ContainedIn(views[i]) {
				t.Fatalf("incomparable scans %v and %v", views[i], views[j])
			}
		}
	}
}

func TestRunConfigErrors(t *testing.T) {
	c := condition.MustNewMax(4, 3, 1, 1)
	ok := Config{X: 1, Cond: c, Input: vector.OfInts(3, 3, 1, 2)}
	tests := []struct {
		name   string
		mutate func(Config) Config
	}{
		{"short input", func(c Config) Config { c.Input = vector.OfInts(1, 2); return c }},
		{"bottom input", func(c Config) Config { c.Input = vector.OfInts(1, 0, 1, 1); return c }},
		{"nil condition", func(c Config) Config { c.Cond = nil; return c }},
		{"x negative", func(c Config) Config { c.X = -1; return c }},
		{"x = n", func(c Config) Config { c.X = 4; return c }},
		{"too many crashes", func(c Config) Config {
			c.Crashes = map[int]CrashPoint{1: CrashBeforeWrite, 2: CrashBeforeWrite}
			return c
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.mutate(ok)); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestTerminationInCondition: input ∈ C with up to x crashes ⟹ every
// correct process decides, at most ℓ values, all from h_ℓ(input).
func TestTerminationInCondition(t *testing.T) {
	n, m, x, l := 5, 3, 2, 2
	c := condition.MustNewMax(n, m, x, l)
	input := vector.OfInts(3, 3, 2, 1, 2)
	if !c.Contains(input) {
		t.Fatal("input must be in C")
	}
	for _, crashes := range []map[int]CrashPoint{
		nil,
		{5: CrashBeforeWrite},
		{4: CrashBeforeWrite, 5: CrashBeforeWrite},
		{2: CrashAfterWrite, 5: CrashBeforeWrite},
	} {
		out, err := Run(Config{X: x, Cond: c, Input: input, Crashes: crashes, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Undecided) != 0 {
			t.Fatalf("crashes=%v: undecided %v", crashes, out.Undecided)
		}
		for id := 1; id <= n; id++ {
			if crashes[id] != NoCrash {
				continue
			}
			if _, ok := out.Decisions[id]; !ok {
				t.Fatalf("crashes=%v: correct p%d did not decide", crashes, id)
			}
		}
		distinct := out.DistinctDecisions()
		if distinct.Len() > l {
			t.Fatalf("crashes=%v: %d distinct values %v > ℓ=%d", crashes, distinct.Len(), distinct, l)
		}
		if !distinct.SubsetOf(c.Recognize(input)) {
			t.Fatalf("crashes=%v: decided %v ⊄ h_ℓ(I)=%v", crashes, distinct, c.Recognize(input))
		}
	}
}

// TestSafetyOutsideCondition: with an input outside C the algorithm may
// block, but whatever is decided stays within ℓ values and validity.
func TestSafetyOutsideCondition(t *testing.T) {
	n, m, x, l := 5, 4, 2, 1
	c := condition.MustNewMax(n, m, x, l)
	input := vector.OfInts(4, 3, 2, 1, 1) // max appears once: outside C
	if c.Contains(input) {
		t.Fatal("input must be outside C")
	}
	for seed := int64(0); seed < 10; seed++ {
		out, err := Run(Config{
			X: x, Cond: c, Input: input, Seed: seed, Patience: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		distinct := out.DistinctDecisions()
		if distinct.Len() > l {
			t.Fatalf("seed=%d: %d distinct values %v", seed, distinct.Len(), distinct)
		}
		for id, v := range out.Decisions {
			if !input.Vals().Has(v) {
				t.Fatalf("seed=%d: p%d decided unproposed %v", seed, id, v)
			}
		}
	}
}

// TestBlockingOutsideCondition exhibits the conditional-termination face:
// an input every view of which proves I ∉ C leaves every process undecided.
// (A max_ℓ-generated condition can never block this way — a view missing
// exactly x entries can always be completed into it — so the witness is an
// explicit single-vector condition.)
func TestBlockingOutsideCondition(t *testing.T) {
	n, x := 4, 1
	c := condition.MustNewExplicit(n, 4, 1)
	c.MustAdd(vector.OfInts(1, 1, 2, 3), vector.SetOf(1))
	if v := condition.Check(c, x, condition.CheckOptions{}); v != nil {
		t.Fatalf("witness condition not (1,1)-legal: %v", v)
	}
	input := vector.OfInts(2, 2, 3, 1)
	if c.Contains(input) {
		t.Fatal("input must be outside C")
	}
	// Premise: every view of input with ≤ x missing entries fails P.
	allViewsFail := true
	vector.ForEachView(input, x, func(j vector.Vector) bool {
		if condition.Predicate(c, j) {
			allViewsFail = false
			return false
		}
		return true
	})
	if !allViewsFail {
		t.Fatal("premise broken: some view can still be completed into C")
	}
	out, err := Run(Config{X: x, Cond: c, Input: input, Seed: 3, Patience: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Decisions) != 0 {
		t.Fatalf("unexpected decisions %v", out.Decisions)
	}
	if len(out.Undecided) != n {
		t.Fatalf("undecided = %v, want all %d", out.Undecided, n)
	}
}

// TestPropertyRandom fuzzes inputs, conditions and crash sets: safety must
// hold on every interleaving, and termination whenever the input is in C.
func TestPropertyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(4)
		m := 2 + r.Intn(3)
		x := r.Intn(n - 1)
		l := 1 + r.Intn(2)
		c := condition.MustNewMax(n, m, x, l)
		input := vector.New(n)
		for i := range input {
			input[i] = vector.Value(1 + r.Intn(m))
		}
		crashes := map[int]CrashPoint{}
		perm := r.Perm(n)
		for i := 0; i < r.Intn(x+1); i++ {
			crashes[perm[i]+1] = CrashPoint(1 + r.Intn(2))
		}
		out, err := Run(Config{
			X: x, Cond: c, Input: input, Crashes: crashes,
			Seed: int64(trial), Patience: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if d := out.DistinctDecisions(); d.Len() > l {
			t.Fatalf("trial %d: %d values %v > ℓ=%d (input %v)", trial, d.Len(), d, l, input)
		}
		for id, v := range out.Decisions {
			if !input.Vals().Has(v) {
				t.Fatalf("trial %d: p%d decided unproposed %v", trial, id, v)
			}
		}
		if c.Contains(input) && len(out.Undecided) > 0 {
			t.Fatalf("trial %d: input in C but undecided %v", trial, out.Undecided)
		}
	}
}

package async

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"kset/internal/condition"
	"kset/internal/vector"
)

func TestSnapshotBasics(t *testing.T) {
	s := NewSnapshot(3)
	if got := s.Scan(); !got.Equal(vector.OfInts(0, 0, 0)) {
		t.Errorf("fresh scan = %v", got)
	}
	s.Write(1, 7)
	if got := s.Scan(); !got.Equal(vector.OfInts(0, 7, 0)) {
		t.Errorf("scan = %v", got)
	}
	if got := s.AnyNonBottom(); got != 7 {
		t.Errorf("AnyNonBottom = %v", got)
	}
	// Scans are epoch-published: a view returned before a write is an
	// immutable copy the write must not touch.
	before := s.Scan()
	s.Write(0, 9)
	if !before.Equal(vector.OfInts(0, 7, 0)) {
		t.Errorf("published epoch mutated by later write: %v", before)
	}
	// Warm scans share one published vector (no per-scan copy).
	a, b := s.Scan(), s.Scan()
	if &a[0] != &b[0] {
		t.Error("warm scans did not share the published epoch")
	}
	// Reset restores an all-⊥ array.
	s.Reset(3)
	if got := s.Scan(); !got.Equal(vector.OfInts(0, 0, 0)) {
		t.Errorf("scan after reset = %v", got)
	}
}

// TestSnapshotScansContainmentOrdered is the property the agreement
// argument rests on: concurrent scans of a write-once array are totally
// ordered by containment.
func TestSnapshotScansContainmentOrdered(t *testing.T) {
	const n, scans = 8, 200
	s := NewSnapshot(n)
	var wg sync.WaitGroup
	views := make([]vector.Vector, scans)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			s.Write(i, vector.Value(i+1))
			time.Sleep(time.Microsecond)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * (scans / 4); i < (g+1)*(scans/4); i++ {
				views[i] = s.Scan()
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < scans; i++ {
		for j := 0; j < scans; j++ {
			if !views[i].ContainedIn(views[j]) && !views[j].ContainedIn(views[i]) {
				t.Fatalf("incomparable scans %v and %v", views[i], views[j])
			}
		}
	}
}

func TestRunConfigErrors(t *testing.T) {
	c := condition.MustNewMax(4, 3, 1, 1)
	ok := Config{X: 1, Cond: c, Input: vector.OfInts(3, 3, 1, 2)}
	tests := []struct {
		name   string
		mutate func(Config) Config
	}{
		{"short input", func(c Config) Config { c.Input = vector.OfInts(1, 2); return c }},
		{"bottom input", func(c Config) Config { c.Input = vector.OfInts(1, 0, 1, 1); return c }},
		{"nil condition", func(c Config) Config { c.Cond = nil; return c }},
		{"x negative", func(c Config) Config { c.X = -1; return c }},
		{"x = n", func(c Config) Config { c.X = 4; return c }},
		{"negative budget", func(c Config) Config { c.ScanBudget = -1; return c }},
		{"too many crashes", func(c Config) Config {
			c.Crashes = map[int]CrashPoint{1: CrashBeforeWrite, 2: CrashBeforeWrite}
			return c
		}},
		{"crash of unknown process", func(c Config) Config {
			c.Crashes = map[int]CrashPoint{5: CrashBeforeWrite}
			return c
		}},
		{"crash points wrong length", func(c Config) Config {
			c.CrashPoints = []CrashPoint{NoCrash, CrashBeforeWrite}
			return c
		}},
		{"both crash forms", func(c Config) Config {
			c.Crashes = map[int]CrashPoint{1: CrashBeforeWrite}
			c.CrashPoints = []CrashPoint{CrashBeforeWrite, NoCrash, NoCrash, NoCrash}
			return c
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.mutate(ok)); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestTerminationInCondition: input ∈ C with up to x crashes ⟹ every
// correct process decides, at most ℓ values, all from h_ℓ(input).
func TestTerminationInCondition(t *testing.T) {
	n, m, x, l := 5, 3, 2, 2
	c := condition.MustNewMax(n, m, x, l)
	input := vector.OfInts(3, 3, 2, 1, 2)
	if !c.Contains(input) {
		t.Fatal("input must be in C")
	}
	for _, crashes := range []map[int]CrashPoint{
		nil,
		{5: CrashBeforeWrite},
		{4: CrashBeforeWrite, 5: CrashBeforeWrite},
		{2: CrashAfterWrite, 5: CrashBeforeWrite},
	} {
		out, err := Run(Config{X: x, Cond: c, Input: input, Crashes: crashes, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Undecided) != 0 {
			t.Fatalf("crashes=%v: undecided %v", crashes, out.Undecided)
		}
		for id := 1; id <= n; id++ {
			if crashes[id] != NoCrash {
				continue
			}
			if _, ok := out.Decision(id); !ok {
				t.Fatalf("crashes=%v: correct p%d did not decide", crashes, id)
			}
		}
		distinct := out.DistinctDecisions()
		if distinct.Len() > l {
			t.Fatalf("crashes=%v: %d distinct values %v > ℓ=%d", crashes, distinct.Len(), distinct, l)
		}
		if !distinct.SubsetOf(c.Recognize(input)) {
			t.Fatalf("crashes=%v: decided %v ⊄ h_ℓ(I)=%v", crashes, distinct, c.Recognize(input))
		}
	}
}

// TestSafetyOutsideCondition: with an input outside C the algorithm may
// block, but whatever is decided stays within ℓ values and validity.
func TestSafetyOutsideCondition(t *testing.T) {
	n, m, x, l := 5, 4, 2, 1
	c := condition.MustNewMax(n, m, x, l)
	input := vector.OfInts(4, 3, 2, 1, 1) // max appears once: outside C
	if c.Contains(input) {
		t.Fatal("input must be outside C")
	}
	for seed := int64(0); seed < 10; seed++ {
		out, err := Run(Config{X: x, Cond: c, Input: input, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		distinct := out.DistinctDecisions()
		if distinct.Len() > l {
			t.Fatalf("seed=%d: %d distinct values %v", seed, distinct.Len(), distinct)
		}
		for id := 1; id <= n; id++ {
			if v, ok := out.Decision(id); ok && !input.Vals().Has(v) {
				t.Fatalf("seed=%d: p%d decided unproposed %v", seed, id, v)
			}
		}
	}
}

// TestBlockingOutsideCondition exhibits the conditional-termination face:
// an input every view of which proves I ∉ C leaves every process undecided.
// (A max_ℓ-generated condition can never block this way — a view missing
// exactly x entries can always be completed into it — so the witness is an
// explicit single-vector condition.)
func TestBlockingOutsideCondition(t *testing.T) {
	n, x := 4, 1
	c := condition.MustNewExplicit(n, 4, 1)
	c.MustAdd(vector.OfInts(1, 1, 2, 3), vector.SetOf(1))
	if v := condition.Check(c, x, condition.CheckOptions{}); v != nil {
		t.Fatalf("witness condition not (1,1)-legal: %v", v)
	}
	input := vector.OfInts(2, 2, 3, 1)
	if c.Contains(input) {
		t.Fatal("input must be outside C")
	}
	// Premise: every view of input with ≤ x missing entries fails P.
	allViewsFail := true
	vector.ForEachView(input, x, func(j vector.Vector) bool {
		if condition.Predicate(c, j) {
			allViewsFail = false
			return false
		}
		return true
	})
	if !allViewsFail {
		t.Fatal("premise broken: some view can still be completed into C")
	}
	out, err := Run(Config{X: x, Cond: c, Input: input, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.DecidedCount() != 0 {
		t.Fatalf("unexpected decisions %v", out.Decided)
	}
	// The undecided list is sorted, so the blocked run reports exactly
	// 1..n in order.
	if len(out.Undecided) != n {
		t.Fatalf("undecided = %v, want all %d", out.Undecided, n)
	}
	for i, id := range out.Undecided {
		if id != i+1 {
			t.Fatalf("undecided not sorted: %v", out.Undecided)
		}
	}
}

// TestOutcomeDeterministic: a run is a pure function of (Config, Seed) —
// repeating a seed replays the identical outcome, on fresh and on reused
// runners alike, and the undecided list is byte-identical too.
func TestOutcomeDeterministic(t *testing.T) {
	n, m, x, l := 6, 4, 2, 2
	c := condition.MustNewMax(n, m, x, l)
	inC := vector.OfInts(4, 4, 4, 2, 1, 2)
	outC := vector.OfInts(4, 3, 2, 1, 1, 2) // outside C: some processes give up
	r := NewRunner()
	for _, tc := range []struct {
		name  string
		input vector.Vector
	}{{"in-condition", inC}, {"outside-condition", outC}} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				cfg := Config{
					X: x, Cond: c, Input: tc.input, Seed: seed,
					Crashes: map[int]CrashPoint{6: CrashAfterWrite},
				}
				first, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for rep := 0; rep < 3; rep++ {
					var got Outcome
					if err := r.RunInto(cfg, &got); err != nil {
						t.Fatal(err)
					}
					if !got.Decided.Equal(first.Decided) {
						t.Fatalf("seed %d rep %d: decisions %v != %v", seed, rep, got.Decided, first.Decided)
					}
					if len(got.Undecided) != len(first.Undecided) {
						t.Fatalf("seed %d rep %d: undecided %v != %v", seed, rep, got.Undecided, first.Undecided)
					}
					for i := range got.Undecided {
						if got.Undecided[i] != first.Undecided[i] {
							t.Fatalf("seed %d rep %d: undecided %v != %v", seed, rep, got.Undecided, first.Undecided)
						}
					}
				}
			}
		})
	}
}

// TestSubstrateGridIdentical is the substrate-interchangeability property
// test: for the same (seed, input, crashes), the mutex, wait-free and
// message-passing substrates produce identical outcomes — under the
// virtual scheduler every substrate serves each scan the exact register
// state, so the grid agrees not just on value sets but bit for bit.
func TestSubstrateGridIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	grid := []MemoryKind{MutexMemory, WaitFreeMemory, MessagePassingMemory}
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(4)
		m := 2 + r.Intn(3)
		x := r.Intn((n + 1) / 2) // x < n/2 so the grid includes message passing
		l := 1 + r.Intn(2)
		c := condition.MustNewMax(n, m, x, l)
		input := vector.New(n)
		for i := range input {
			input[i] = vector.Value(1 + r.Intn(m))
		}
		crashes := map[int]CrashPoint{}
		perm := r.Perm(n)
		for i := 0; i < r.Intn(x+1); i++ {
			crashes[perm[i]+1] = CrashPoint(1 + r.Intn(2))
		}
		var ref *Outcome
		for _, kind := range grid {
			out, err := Run(Config{
				X: x, Cond: c, Input: input, Crashes: crashes,
				Seed: int64(trial), Memory: kind,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = out
				continue
			}
			if !out.Decided.Equal(ref.Decided) {
				t.Fatalf("trial %d: %v decided %v, want %v (input %v crashes %v)",
					trial, kind, out.Decided, ref.Decided, input, crashes)
			}
			if len(out.Undecided) != len(ref.Undecided) {
				t.Fatalf("trial %d: %v undecided %v, want %v", trial, kind, out.Undecided, ref.Undecided)
			}
			for i := range out.Undecided {
				if out.Undecided[i] != ref.Undecided[i] {
					t.Fatalf("trial %d: %v undecided %v, want %v", trial, kind, out.Undecided, ref.Undecided)
				}
			}
		}
	}
}

// TestPropertyRandom fuzzes inputs, conditions and crash sets: safety must
// hold on every interleaving, and termination whenever the input is in C.
func TestPropertyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(4)
		m := 2 + r.Intn(3)
		x := r.Intn(n - 1)
		l := 1 + r.Intn(2)
		c := condition.MustNewMax(n, m, x, l)
		input := vector.New(n)
		for i := range input {
			input[i] = vector.Value(1 + r.Intn(m))
		}
		crashes := map[int]CrashPoint{}
		perm := r.Perm(n)
		for i := 0; i < r.Intn(x+1); i++ {
			crashes[perm[i]+1] = CrashPoint(1 + r.Intn(2))
		}
		out, err := Run(Config{
			X: x, Cond: c, Input: input, Crashes: crashes, Seed: int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if d := out.DistinctDecisions(); d.Len() > l {
			t.Fatalf("trial %d: %d values %v > ℓ=%d (input %v)", trial, d.Len(), d, l, input)
		}
		for id := 1; id <= n; id++ {
			if v, ok := out.Decision(id); ok && !input.Vals().Has(v) {
				t.Fatalf("trial %d: p%d decided unproposed %v", trial, id, v)
			}
		}
		if c.Contains(input) && len(out.Undecided) > 0 {
			t.Fatalf("trial %d: input in C but undecided %v", trial, out.Undecided)
		}
	}
}

package async

import (
	"sync"
	"testing"
	"time"

	"kset/internal/condition"
	"kset/internal/vector"
)

func TestAtomicSnapshotBasics(t *testing.T) {
	s := NewAtomicSnapshot(3)
	if got := s.Scan(); !got.Equal(vector.OfInts(0, 0, 0)) {
		t.Errorf("fresh scan = %v", got)
	}
	s.Write(1, 7)
	if got := s.Scan(); !got.Equal(vector.OfInts(0, 7, 0)) {
		t.Errorf("scan = %v", got)
	}
	if got := s.AnyNonBottom(); got != 7 {
		t.Errorf("AnyNonBottom = %v", got)
	}
	s.Write(1, 9) // multi-write: seq advances
	if got := s.Scan(); !got.Equal(vector.OfInts(0, 9, 0)) {
		t.Errorf("scan after rewrite = %v", got)
	}
	// Epoch publishing: a view returned before a write stays intact (the
	// write replaces the published epoch, never mutates it), and warm
	// scans share one vector with no copying.
	before := s.Scan()
	s.Write(0, 3)
	if !before.Equal(vector.OfInts(0, 9, 0)) {
		t.Errorf("published epoch mutated by later write: %v", before)
	}
	a, b := s.Scan(), s.Scan()
	if &a[0] != &b[0] {
		t.Error("warm scans did not share the published epoch")
	}
	s.Reset(3)
	if got := s.Scan(); !got.Equal(vector.OfInts(0, 0, 0)) {
		t.Errorf("scan after reset = %v", got)
	}
}

// TestAtomicSnapshotWriteOnceContainment checks the agreement-critical
// property under concurrency: with write-once entries, concurrent scans
// are totally ordered by containment.
func TestAtomicSnapshotWriteOnceContainment(t *testing.T) {
	const n, scans = 8, 400
	s := NewAtomicSnapshot(n)
	var wg sync.WaitGroup
	views := make([]vector.Vector, scans)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			s.Write(i, vector.Value(i+1))
			time.Sleep(time.Microsecond)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * (scans / 4); i < (g+1)*(scans/4); i++ {
				views[i] = s.Scan()
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < scans; i++ {
		for j := 0; j < scans; j++ {
			if !views[i].ContainedIn(views[j]) && !views[j].ContainedIn(views[i]) {
				t.Fatalf("incomparable scans %v and %v", views[i], views[j])
			}
		}
	}
}

// TestAtomicSnapshotMonotoneLinearizable stresses the helping path and
// the epoch cache together: every writer rewrites its entry with strictly
// increasing values while scanners hammer Scan, so executions mix warm
// fast-path hits, fresh double collects and borrowed embedded views.
// Linearizability of scans over per-entry-monotone registers implies
// every pair of scans is entrywise comparable — a property plain double
// collects without helping would not need, but borrowed views and cached
// epochs must also satisfy.
func TestAtomicSnapshotMonotoneLinearizable(t *testing.T) {
	const n, writesPer, scansPer, scanners = 4, 300, 300, 4
	s := NewAtomicSnapshot(n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 1; v <= writesPer; v++ {
				s.Write(w, vector.Value(v))
			}
		}(w)
	}
	views := make([][]vector.Vector, scanners)
	for g := 0; g < scanners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			views[g] = make([]vector.Vector, scansPer)
			for i := 0; i < scansPer; i++ {
				views[g][i] = s.Scan()
			}
		}(g)
	}
	wg.Wait()

	var all []vector.Vector
	for _, vs := range views {
		all = append(all, vs...)
	}
	leq := func(a, b vector.Vector) bool {
		for k := range a {
			if a[k] > b[k] {
				return false
			}
		}
		return true
	}
	for i := range all {
		for j := range all {
			if !leq(all[i], all[j]) && !leq(all[j], all[i]) {
				t.Fatalf("entrywise-incomparable scans %v and %v", all[i], all[j])
			}
		}
	}
	// A scanner's own scans must additionally be non-decreasing in order.
	for g := range views {
		for i := 1; i < len(views[g]); i++ {
			if !leq(views[g][i-1], views[g][i]) {
				t.Fatalf("scanner %d regressed: %v then %v", g, views[g][i-1], views[g][i])
			}
		}
	}
}

// TestAtomicSnapshotEpochStability pins the immutability contract the
// epoch cache rests on under concurrency: while a single writer advances
// one entry, a scanner's previously returned views never change value
// after the fact. Each view is fingerprinted (copied) the moment Scan
// returns; any later divergence means a published vector was mutated.
func TestAtomicSnapshotEpochStability(t *testing.T) {
	const n, writes, scans = 4, 500, 500
	s := NewAtomicSnapshot(n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 1; v <= writes; v++ {
			s.Write(v%n, vector.Value(v))
		}
	}()
	type snap struct{ view, copy vector.Vector }
	got := make([]snap, scans)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scans; i++ {
			v := s.Scan()
			got[i] = snap{view: v, copy: v.Clone()}
		}
	}()
	wg.Wait()
	for i, g := range got {
		if !g.view.Equal(g.copy) {
			t.Fatalf("scan %d mutated after return: now %v, was %v", i, g.view, g.copy)
		}
	}
}

// TestAgreementOnWaitFreeMemory runs the full asynchronous algorithm on
// the Afek-et-al substrate: outcomes must satisfy the same guarantees as
// on the mutex substrate.
func TestAgreementOnWaitFreeMemory(t *testing.T) {
	n, m, x, l := 5, 3, 2, 2
	c := condition.MustNewMax(n, m, x, l)
	input := vector.OfInts(3, 3, 2, 1, 2)
	for seed := int64(0); seed < 10; seed++ {
		out, err := Run(Config{
			X: x, Cond: c, Input: input,
			Crashes: map[int]CrashPoint{5: CrashBeforeWrite},
			Seed:    seed,
			Memory:  WaitFreeMemory,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Undecided) != 0 {
			t.Fatalf("seed %d: undecided %v", seed, out.Undecided)
		}
		d := out.DistinctDecisions()
		if d.Len() > l || !d.SubsetOf(input.Vals()) {
			t.Fatalf("seed %d: bad decisions %v", seed, d)
		}
	}
}

package async

import (
	"sync/atomic"

	"kset/internal/vector"
)

// Store is the shared-memory interface the asynchronous algorithm runs on:
// a single-writer-per-entry array with an atomic snapshot scan.
type Store interface {
	// Write sets entry i (0-based); only process i+1 may write it.
	Write(i int, v vector.Value)
	// Scan returns an atomic snapshot of the whole array.
	Scan() vector.Vector
	// AnyNonBottom returns the greatest non-⊥ entry visible, or ⊥.
	AnyNonBottom() vector.Value
}

var (
	_ Store = (*Snapshot)(nil)
	_ Store = (*AtomicSnapshot)(nil)
)

// AtomicSnapshot is the wait-free atomic snapshot object of Afek, Attiya,
// Dolev, Gafni, Merritt and Shavit (the paper's reference [1]), built from
// single-writer atomic registers with no locks:
//
//   - every register holds (value, sequence number, embedded view);
//   - Write first Scans, then publishes the new value together with that
//     scan (the "help" other scanners may borrow);
//   - Scan repeatedly collects all registers; two identical consecutive
//     collects form a clean double collect (nothing moved, so the collect
//     is an atomic snapshot); otherwise a register that is seen to move
//     twice was written entirely within this scan's interval, and its
//     embedded view — taken inside that interval — is returned instead.
//
// Each scan terminates after at most n+2 collects (n single moves force a
// double move), making both operations wait-free. Scans are linearizable,
// hence totally ordered by containment in the algorithm's write-once use —
// the property the agreement argument needs. The mutex-based Snapshot is
// the simulation stand-in; this is the real construction, and the two are
// interchangeable through Store (Config.Memory selects).
type AtomicSnapshot struct {
	regs RegisterArray
}

// snapReg is one single-writer register's contents.
type snapReg struct {
	value vector.Value
	seq   uint64
	view  vector.Vector // scan embedded by the write, borrowed by helpers
}

// RegisterArray abstracts the n single-writer atomic registers the
// snapshot construction runs over. The in-process implementation uses
// atomic pointers; the message-passing implementation (package-level
// NewQuorumArray) emulates each register with ABD-style quorums. The
// snapshot algorithm is oblivious to the choice — that layering is exactly
// how the shared-memory algorithms of the condition-based literature are
// ported to message passing.
type RegisterArray interface {
	// Len returns n.
	Len() int
	// Load returns the current contents of register i.
	Load(i int) *snapReg
	// Store overwrites register i (single-writer discipline: only process
	// i+1 stores to it).
	Store(i int, r *snapReg)
}

// localRegs is the in-process RegisterArray over atomic pointers.
type localRegs []atomic.Pointer[snapReg]

func (l localRegs) Len() int                { return len(l) }
func (l localRegs) Load(i int) *snapReg     { return l[i].Load() }
func (l localRegs) Store(i int, r *snapReg) { l[i].Store(r) }

// NewAtomicSnapshot creates a wait-free snapshot object with n entries
// over in-process atomic registers.
func NewAtomicSnapshot(n int) *AtomicSnapshot {
	regs := make(localRegs, n)
	for i := range regs {
		regs[i].Store(&snapReg{value: vector.Bottom, view: vector.New(n)})
	}
	return &AtomicSnapshot{regs: regs}
}

// NewSnapshotOver runs the snapshot construction over any register array
// (every register must be initialized non-nil).
func NewSnapshotOver(regs RegisterArray) *AtomicSnapshot {
	return &AtomicSnapshot{regs: regs}
}

// Write implements Store. Per the single-writer discipline, entry i must
// only ever be written by one goroutine at a time.
func (s *AtomicSnapshot) Write(i int, v vector.Value) {
	view := s.Scan()
	old := s.regs.Load(i)
	s.regs.Store(i, &snapReg{value: v, seq: old.seq + 1, view: view})
}

// collect reads every register once (not atomically as a whole).
func (s *AtomicSnapshot) collect() []*snapReg {
	out := make([]*snapReg, s.regs.Len())
	for i := range out {
		out[i] = s.regs.Load(i)
	}
	return out
}

// Scan implements Store with the double-collect-or-borrow loop.
func (s *AtomicSnapshot) Scan() vector.Vector {
	n := s.regs.Len()
	moved := make([]int, n)
	prev := s.collect()
	for {
		cur := s.collect()
		clean := true
		for i := 0; i < n; i++ {
			if cur[i].seq != prev[i].seq {
				clean = false
				moved[i]++
				if moved[i] >= 2 {
					// cur[i] was written entirely inside this scan: its
					// embedded view is an atomic snapshot within our
					// interval.
					return cur[i].view.Clone()
				}
			}
		}
		if clean {
			out := make(vector.Vector, n)
			for i := 0; i < n; i++ {
				out[i] = cur[i].value
			}
			return out
		}
		prev = cur
	}
}

// AnyNonBottom implements Store with a single collect (existence of a
// non-⊥ entry needs no atomicity across entries).
func (s *AtomicSnapshot) AnyNonBottom() vector.Value {
	best := vector.Bottom
	for i := 0; i < s.regs.Len(); i++ {
		if r := s.regs.Load(i); r.value > best {
			best = r.value
		}
	}
	return best
}

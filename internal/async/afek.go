package async

import (
	"sync"
	"sync/atomic"

	"kset/internal/vector"
)

// Store is the shared-memory interface the asynchronous algorithm runs on:
// a single-writer-per-entry array with an atomic snapshot scan.
//
// Scan returns an epoch-published vector: an immutable array shared by
// every caller that observes the same state. Callers must treat it as
// read-only and Clone it before mutating; in exchange, a warm Scan (no
// write since the last one) performs no allocation at all.
type Store interface {
	// Write sets entry i (0-based); only process i+1 may write it.
	Write(i int, v vector.Value)
	// Scan returns an atomic snapshot of the whole array. The returned
	// vector is immutable and shared; callers must not modify it.
	Scan() vector.Vector
	// AnyNonBottom returns the greatest non-⊥ entry visible, or ⊥.
	AnyNonBottom() vector.Value
}

var (
	_ Store = (*Snapshot)(nil)
	_ Store = (*AtomicSnapshot)(nil)
)

// AtomicSnapshot is the wait-free atomic snapshot object of Afek, Attiya,
// Dolev, Gafni, Merritt and Shavit (the paper's reference [1]), built from
// single-writer atomic registers with no locks:
//
//   - every register holds (value, sequence number, embedded view);
//   - Write first Scans, then publishes the new value together with that
//     scan (the "help" other scanners may borrow);
//   - Scan repeatedly collects all registers; two identical consecutive
//     collects form a clean double collect (nothing moved, so the collect
//     is an atomic snapshot); otherwise a register that is seen to move
//     twice was written entirely within this scan's interval, and its
//     embedded view — taken inside that interval — is returned instead.
//
// Each scan terminates after at most n+2 collects (n single moves force a
// double move), making both operations wait-free. Scans are linearizable,
// hence totally ordered by containment in the algorithm's write-once use —
// the property the agreement argument needs.
//
// On top of the classical construction, in-process instances publish
// epochs: a version counter is bumped after every register store, and the
// last clean double collect is cached as an immutable (version, vector)
// pair. A Scan that observes an unchanged version returns the cached
// vector with zero allocation and zero register reads; only the first
// scan after a write pays for a fresh double collect. The cache is
// conservative by construction — it is tagged with a version loaded
// before its confirming collects, so it contains every write whose
// version bump precedes the tag, and a fast-path hit therefore contains
// every completed write (registers are read-monotone, so containing more
// is always linearizable). Register arrays emulated over the
// message-passing network bypass the cache: their reads are quorum
// operations and stay that way.
//
// The mutex-based Snapshot is the serialized stand-in; this is the real
// construction, and the two are interchangeable through Store
// (Config.Memory selects).
type AtomicSnapshot struct {
	regs RegisterArray

	// local is non-nil when regs is the in-process array: only then are
	// version bumps and the clean-epoch cache meaningful (remote arrays
	// have no single memory to version).
	local   localRegs
	version atomic.Uint64
	clean   atomic.Pointer[epoch]

	// initial is the shared all-⊥ register every entry starts from;
	// registers are immutable once stored, so one value serves all n
	// entries and every Reset.
	initial *snapReg
}

// epoch is one published clean double collect: the snapshot state vec as
// of version ver. vec is immutable once published.
type epoch struct {
	ver uint64
	vec vector.Vector
}

// snapReg is one single-writer register's contents. A stored register is
// immutable: writers always store a fresh value, never mutate an old one.
type snapReg struct {
	value vector.Value
	seq   uint64
	view  vector.Vector // scan embedded by the write, borrowed by helpers
}

// RegisterArray abstracts the n single-writer atomic registers the
// snapshot construction runs over. The in-process implementation uses
// atomic pointers; the message-passing implementation (package-level
// NewQuorumArray) emulates each register with ABD-style quorums. The
// snapshot algorithm is oblivious to the choice — that layering is exactly
// how the shared-memory algorithms of the condition-based literature are
// ported to message passing.
type RegisterArray interface {
	// Len returns n.
	Len() int
	// Load returns the current contents of register i.
	Load(i int) *snapReg
	// Store overwrites register i (single-writer discipline: only process
	// i+1 stores to it).
	Store(i int, r *snapReg)
}

// localRegs is the in-process RegisterArray over atomic pointers.
type localRegs []atomic.Pointer[snapReg]

func (l localRegs) Len() int                { return len(l) }
func (l localRegs) Load(i int) *snapReg     { return l[i].Load() }
func (l localRegs) Store(i int, r *snapReg) { l[i].Store(r) }

// NewAtomicSnapshot creates a wait-free snapshot object with n entries
// over in-process atomic registers.
func NewAtomicSnapshot(n int) *AtomicSnapshot {
	s := &AtomicSnapshot{}
	s.Reset(n)
	return s
}

// Reset restores the snapshot to n all-⊥ entries, reusing its register
// array when the size allows. Pooled runners call it between runs; the
// version advances (never rewinds) so stale epoch caches can never serve
// a fast-path scan of the new run.
func (s *AtomicSnapshot) Reset(n int) {
	if len(s.local) != n {
		s.local = make(localRegs, n)
		s.regs = s.local
		s.initial = &snapReg{value: vector.Bottom, view: vector.New(n)}
	}
	for i := range s.local {
		s.local[i].Store(s.initial)
	}
	s.version.Add(1)
	s.clean.Store(&epoch{ver: s.version.Load(), vec: s.initial.view})
}

// NewSnapshotOver runs the snapshot construction over any register array
// (every register must be initialized non-nil). The epoch cache stays
// disabled: a remote array's registers have no shared version to publish.
func NewSnapshotOver(regs RegisterArray) *AtomicSnapshot {
	return &AtomicSnapshot{regs: regs}
}

// Write implements Store. Per the single-writer discipline, entry i must
// only ever be written by one goroutine at a time.
func (s *AtomicSnapshot) Write(i int, v vector.Value) {
	view := s.Scan()
	old := s.regs.Load(i)
	s.regs.Store(i, &snapReg{value: v, seq: old.seq + 1, view: view})
	if s.local != nil {
		// The bump after the store makes the epoch tag conservative: every
		// write counted by a version has already stored its register.
		s.version.Add(1)
	}
}

// scanScratch is the pooled per-scan working set: the two collect arrays
// of the double-collect loop and the per-entry move counters. Pooling it
// keeps concurrent scanners safe while charging the slow path zero
// steady-state allocations beyond the published vector itself.
type scanScratch struct {
	prev, cur []*snapReg
	moved     []uint8
}

var scanPool = sync.Pool{New: func() any { return new(scanScratch) }}

func getScratch(n int) *scanScratch {
	sc := scanPool.Get().(*scanScratch)
	if cap(sc.prev) < n {
		sc.prev = make([]*snapReg, n)
		sc.cur = make([]*snapReg, n)
		sc.moved = make([]uint8, n)
	}
	sc.prev = sc.prev[:n]
	sc.cur = sc.cur[:n]
	sc.moved = sc.moved[:n]
	for i := range sc.moved {
		sc.moved[i] = 0
	}
	return sc
}

// collectInto reads every register once (not atomically as a whole).
func (s *AtomicSnapshot) collectInto(dst []*snapReg) {
	for i := range dst {
		dst[i] = s.regs.Load(i)
	}
}

// Scan implements Store. The fast path serves the published epoch; the
// slow path runs the double-collect-or-borrow loop and republishes.
func (s *AtomicSnapshot) Scan() vector.Vector {
	if s.local != nil {
		if ep := s.clean.Load(); ep != nil && ep.ver == s.version.Load() {
			return ep.vec
		}
	}
	return s.scanSlow()
}

func (s *AtomicSnapshot) scanSlow() vector.Vector {
	n := s.regs.Len()
	sc := getScratch(n)
	defer scanPool.Put(sc)

	// ver tags the epoch a clean double collect publishes. It must be
	// loaded before the earlier collect of the confirming pair: then any
	// write whose bump precedes ver has stored its register before both
	// collects and is contained in the published vector. (The vector may
	// additionally contain in-flight stores whose bump lands later — a
	// superset is linearizable because registers only grow.)
	var ver uint64
	if s.local != nil {
		ver = s.version.Load()
	}
	prev, cur := sc.prev, sc.cur
	s.collectInto(prev)
	for {
		var verCur uint64
		if s.local != nil {
			verCur = s.version.Load()
		}
		s.collectInto(cur)
		clean := true
		for i := 0; i < n; i++ {
			if cur[i].seq != prev[i].seq {
				clean = false
				sc.moved[i]++
				if sc.moved[i] >= 2 {
					// cur[i] was written entirely inside this scan: its
					// embedded view is an atomic snapshot within our
					// interval, immutable and safe to share.
					return cur[i].view
				}
			}
		}
		if clean {
			out := make(vector.Vector, n)
			for i := 0; i < n; i++ {
				out[i] = cur[i].value
			}
			if s.local != nil {
				s.clean.Store(&epoch{ver: ver, vec: out})
			}
			return out
		}
		prev, cur = cur, prev
		ver = verCur
	}
}

// AnyNonBottom implements Store with a single collect (existence of a
// non-⊥ entry needs no atomicity across entries).
func (s *AtomicSnapshot) AnyNonBottom() vector.Value {
	best := vector.Bottom
	for i := 0; i < s.regs.Len(); i++ {
		if r := s.regs.Load(i); r.value > best {
			best = r.value
		}
	}
	return best
}

// Package async implements the asynchronous side of the paper (Section 4):
// the condition-based ℓ-set agreement algorithm obtained by generalizing
// the consensus algorithm of Mostefaoui–Rajsbaum–Raynal [20] to
// (x,ℓ)-legal conditions, running over a wait-free atomic-snapshot shared
// memory (Afek et al. [1], the paper's reference for the view-containment
// structure its own synchronous round 1 emulates).
//
// The algorithm solves ℓ-set agreement among n asynchronous processes of
// which up to x may crash, whenever the input vector belongs to an
// (x,ℓ)-legal condition: every view scanned from the snapshot with at most
// x missing entries decodes (Definition 4 / Theorem 1) to between 1 and ℓ
// values, and because atomic snapshots are totally ordered by containment,
// the decoded sets are nested — at most ℓ values are ever decided, whatever
// the input. Termination, as always with the condition-based approach, is
// guaranteed only when the input belongs to the condition (or some process
// decides and its decision is adopted); the package reports processes that
// give up waiting, which is the executable face of the ℓ ≤ x impossibility.
//
// Executions are driven by a deterministic virtual scheduler (see
// sched.go): processes are cooperative state machines advanced in seeded
// shuffled passes, waiting is counted in re-scan steps (Config.ScanBudget)
// rather than wall-clock time, and a run is a pure function of its Config
// and Seed — the same seed replays the same interleaving, decisions and
// Outcome bit for bit on any machine. Batch drivers reuse a Runner, which
// pools every piece of per-run state.
//
// Paper map:
//
//	Section 4     Run — the condition-based asynchronous algorithm
//	Definition 4  view decoding against the condition (via condition)
//	Theorems 8–9  the give-up path mirrors the ℓ ≤ x impossibility
//
// Three interchangeable linearizable memory substrates back the snapshot:
// the lock-serialized simulation (MutexMemory), the wait-free Afek et al.
// construction (WaitFreeMemory), and an ABD quorum emulation over a
// virtual asynchronous message-passing network (MessagePassingMemory,
// x < n/2). All three publish scans as immutable epoch vectors: a warm
// Scan — no write since the previous one — returns the published vector
// with no allocation, which is what lets the wait-free construction beat
// the mutex stand-in instead of losing to it. Under the virtual scheduler
// all three substrates observe identical register histories, so a run's
// outcome is identical across the whole substrate grid.
package async

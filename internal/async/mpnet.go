package async

import (
	"fmt"
	"sync"

	"kset/internal/vector"
)

// This file ports the shared-memory substrate to a crash-prone
// asynchronous message-passing system, the way the condition-based
// literature does ([20]'s message-passing protocols): each process also
// acts as a replica holding a copy of every register, a register write or
// read is an ABD-style quorum operation over n−x replicas, and the Afek
// snapshot construction runs unchanged on top through RegisterArray.
// Quorum intersection needs x < n/2 — the classical requirement for
// emulating registers under asynchrony — which Run enforces for this
// memory kind.
//
// The network is virtual: instead of replica goroutines, jittered sleeps
// and reply channels, each quorum operation picks a seeded pseudo-random
// quorum of live replicas — the adversary's choice of "which n−x replies
// arrive first" — and applies the protocol synchronously. The model is
// unchanged (any two quorums of size n−x intersect, reads write back the
// freshest value, crashed replicas stop responding), but an operation is
// now a few array reads instead of 2n goroutine handoffs, and a run's
// entire message schedule is a pure function of its seed.

// Network is an asynchronous message-passing system of n process-replicas
// emulating numRegs shared registers. Replica reply order is drawn from a
// seeded source; crashed replicas silently drop requests. A mutex guards
// the replica state so snapshots layered on top may be driven from
// concurrent goroutines; under the deterministic scheduler the lock is
// uncontended and the operation order — hence every draw — is a pure
// function of the seed.
type Network struct {
	mu      sync.Mutex
	n, x    int
	numRegs int
	viewLen int
	rng     prng
	// replicas[p][r] is replica p's copy of register r.
	replicas [][]*snapReg
	crashed  []bool
	quorum   []int // scratch: live replica ids, partially shuffled per op
	initial  *snapReg
}

// NewNetwork creates the n-replica virtual message-passing system
// tolerating x < n/2 crashes, emulating numRegs registers (each
// initialized to ⊥ with an empty embedded view of width viewLen).
func NewNetwork(n, x, numRegs, viewLen int, seed int64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("async: network n=%d, want ≥ 2", n)
	}
	if x < 0 || 2*x >= n {
		return nil, fmt.Errorf("async: quorum emulation needs x < n/2, got x=%d n=%d", x, n)
	}
	if numRegs < 1 || viewLen < 0 {
		return nil, fmt.Errorf("async: bad register space (numRegs=%d viewLen=%d)", numRegs, viewLen)
	}
	nw := &Network{}
	nw.reset(n, x, numRegs, viewLen, seed)
	return nw, nil
}

// reset reinitializes the network in place, reusing replica storage when
// the shape allows. Pooled runners reset one network per run instead of
// reallocating the n×numRegs replica matrix.
func (nw *Network) reset(n, x, numRegs, viewLen int, seed int64) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	sameShape := nw.n == n && nw.numRegs == numRegs && nw.viewLen == viewLen
	nw.n, nw.x, nw.numRegs, nw.viewLen = n, x, numRegs, viewLen
	nw.rng.reseed(seed)
	if !sameShape {
		nw.initial = &snapReg{value: vector.Bottom, view: vector.New(viewLen)}
		nw.replicas = make([][]*snapReg, n)
		for p := range nw.replicas {
			nw.replicas[p] = make([]*snapReg, numRegs)
		}
		nw.crashed = make([]bool, n)
		nw.quorum = make([]int, n)
	}
	for p := range nw.replicas {
		nw.crashed[p] = false
		for r := range nw.replicas[p] {
			nw.replicas[p][r] = nw.initial
		}
	}
}

// Crash makes replica id (1-based) stop responding; at most x replicas may
// crash or quorum operations lose their liveness guarantee.
func (nw *Network) Crash(id int) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if id >= 1 && id <= nw.n {
		nw.crashed[id-1] = true
	}
}

// Close releases the network. The virtual system holds no goroutines or
// sockets, so it is a no-op kept for interface compatibility with the
// former goroutine-backed implementation.
func (nw *Network) Close() {}

// drawQuorum fills nw.quorum with the live replicas and partially shuffles
// a prefix of size q = n−x: the adversary's choice of which replies arrive
// first. It returns that prefix (degraded to all live replicas if more
// than x have crashed — a state Run's validation makes unreachable).
// Callers hold nw.mu.
func (nw *Network) drawQuorum() []int {
	live := nw.quorum[:0]
	for p := 0; p < nw.n; p++ {
		if !nw.crashed[p] {
			live = append(live, p)
		}
	}
	q := nw.n - nw.x
	if q > len(live) {
		q = len(live)
	}
	for i := 0; i < q; i++ {
		j := i + nw.rng.intn(len(live)-i)
		live[i], live[j] = live[j], live[i]
	}
	return live[:q]
}

// quorumArray is a RegisterArray window [offset, offset+count) over the
// network's register space. Clients are stateless: one instance may be
// shared by every process.
type quorumArray struct {
	nw            *Network
	offset, count int
}

// Registers returns the RegisterArray window [offset, offset+count).
func (nw *Network) Registers(offset, count int) (RegisterArray, error) {
	if offset < 0 || count < 1 || offset+count > nw.numRegs {
		return nil, fmt.Errorf("async: register window [%d,%d) outside space of %d", offset, offset+count, nw.numRegs)
	}
	return &quorumArray{nw: nw, offset: offset, count: count}, nil
}

// Len implements RegisterArray.
func (q *quorumArray) Len() int { return q.count }

// Load implements RegisterArray with the two-phase ABD read: query a
// quorum for the copy with the greatest sequence number, then write that
// copy back to a quorum before returning it, so that once a read returns
// a value no later read returns an older one (atomicity).
func (q *quorumArray) Load(i int) *snapReg {
	nw := q.nw
	nw.mu.Lock()
	defer nw.mu.Unlock()
	idx := q.offset + i
	best := nw.initial
	for _, p := range nw.drawQuorum() {
		if r := nw.replicas[p][idx]; r.seq > best.seq {
			best = r
		}
	}
	nw.storeQuorum(idx, best)
	return best
}

// Store implements RegisterArray with a quorum write. Sequence numbers are
// chosen by the single writer (the snapshot layer increments them), so no
// timestamp round-trip is needed.
func (q *quorumArray) Store(i int, r *snapReg) {
	nw := q.nw
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.storeQuorum(q.offset+i, r)
}

// storeQuorum applies one quorum write: every replica of a fresh quorum
// adopts r unless it already holds a fresher copy. Callers hold nw.mu.
func (nw *Network) storeQuorum(idx int, r *snapReg) {
	for _, p := range nw.drawQuorum() {
		if r.seq > nw.replicas[p][idx].seq {
			nw.replicas[p][idx] = r
		}
	}
}

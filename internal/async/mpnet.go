package async

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"kset/internal/vector"
)

// This file ports the shared-memory substrate to a crash-prone
// asynchronous message-passing system, the way the condition-based
// literature does ([20]'s message-passing protocols): each process also
// acts as a replica holding a copy of every register, a register write or
// read is an ABD-style quorum operation over n−x replicas, and the Afek
// snapshot construction runs unchanged on top through RegisterArray.
// Quorum intersection needs x < n/2 — the classical requirement for
// emulating registers under asynchrony — which Run enforces for this
// memory kind.

// mpOp is the replica protocol operation.
type mpOp int

const (
	mpRead mpOp = iota
	mpWrite
)

// mpRequest is one replica-protocol message.
type mpRequest struct {
	op    mpOp
	idx   int
	reg   *snapReg // for writes
	reply chan *snapReg
}

// Network is an asynchronous message-passing system of n process-replicas
// emulating numRegs shared registers. Message handling is jittered by a
// seeded source per replica; crashed replicas silently drop requests.
type Network struct {
	n, x    int
	numRegs int
	viewLen int
	inboxes []chan mpRequest
	crashed []atomic.Bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewNetwork starts the n replica goroutines of a message-passing system
// tolerating x < n/2 crashes, emulating numRegs registers (each
// initialized to ⊥ with an empty embedded view of width viewLen).
func NewNetwork(n, x, numRegs, viewLen int, seed int64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("async: network n=%d, want ≥ 2", n)
	}
	if x < 0 || 2*x >= n {
		return nil, fmt.Errorf("async: quorum emulation needs x < n/2, got x=%d n=%d", x, n)
	}
	if numRegs < 1 || viewLen < 0 {
		return nil, fmt.Errorf("async: bad register space (numRegs=%d viewLen=%d)", numRegs, viewLen)
	}
	nw := &Network{
		n:       n,
		x:       x,
		numRegs: numRegs,
		viewLen: viewLen,
		inboxes: make([]chan mpRequest, n),
		crashed: make([]atomic.Bool, n),
		done:    make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		nw.inboxes[i] = make(chan mpRequest, 64)
		nw.wg.Add(1)
		go nw.replica(i, seed+int64(i))
	}
	return nw, nil
}

// replica serves one process's copy of the register space until Close.
func (nw *Network) replica(id int, seed int64) {
	defer nw.wg.Done()
	r := rand.New(rand.NewSource(seed))
	regs := make([]*snapReg, nw.numRegs)
	for i := range regs {
		regs[i] = &snapReg{value: vector.Bottom, view: vector.New(nw.viewLen)}
	}
	for {
		select {
		case <-nw.done:
			return
		case req := <-nw.inboxes[id]:
			if nw.crashed[id].Load() {
				continue // crashed replicas drain silently
			}
			if r.Intn(4) == 0 {
				time.Sleep(time.Duration(r.Intn(50)) * time.Microsecond)
			}
			switch req.op {
			case mpWrite:
				if req.reg.seq > regs[req.idx].seq {
					regs[req.idx] = req.reg
				}
				req.reply <- regs[req.idx]
			case mpRead:
				req.reply <- regs[req.idx]
			}
		}
	}
}

// Crash makes replica id (1-based) stop responding; at most x replicas may
// crash or quorum operations block.
func (nw *Network) Crash(id int) {
	if id >= 1 && id <= nw.n {
		nw.crashed[id-1].Store(true)
	}
}

// Close shuts the replicas down and waits for them.
func (nw *Network) Close() {
	close(nw.done)
	nw.wg.Wait()
}

// broadcast sends a request to every replica (each send in its own
// goroutine so a full inbox of a crashed replica never blocks the caller)
// and returns the reply channel, sized to never block repliers.
func (nw *Network) broadcast(op mpOp, idx int, reg *snapReg) chan *snapReg {
	reply := make(chan *snapReg, nw.n)
	req := mpRequest{op: op, idx: idx, reg: reg, reply: reply}
	for i := 0; i < nw.n; i++ {
		i := i
		go func() {
			select {
			case nw.inboxes[i] <- req:
			case <-nw.done:
			}
		}()
	}
	return reply
}

// await collects n−x replies and returns the one with the greatest
// sequence number.
func (nw *Network) await(reply chan *snapReg) *snapReg {
	var best *snapReg
	for got := 0; got < nw.n-nw.x; got++ {
		select {
		case r := <-reply:
			if best == nil || r.seq > best.seq {
				best = r
			}
		case <-nw.done:
			return best
		}
	}
	return best
}

// quorumArray is a RegisterArray window [offset, offset+count) over the
// network's register space. Clients are stateless: one instance may be
// shared by every process.
type quorumArray struct {
	nw            *Network
	offset, count int
}

// Registers returns the RegisterArray window [offset, offset+count).
func (nw *Network) Registers(offset, count int) (RegisterArray, error) {
	if offset < 0 || count < 1 || offset+count > nw.numRegs {
		return nil, fmt.Errorf("async: register window [%d,%d) outside space of %d", offset, offset+count, nw.numRegs)
	}
	return &quorumArray{nw: nw, offset: offset, count: count}, nil
}

// Len implements RegisterArray.
func (q *quorumArray) Len() int { return q.count }

// Load implements RegisterArray with the two-phase ABD read: query a
// quorum, then write the freshest value back to a quorum before returning
// it, so that once a read returns a value no later read returns an older
// one (atomicity).
func (q *quorumArray) Load(i int) *snapReg {
	best := q.nw.await(q.nw.broadcast(mpRead, q.offset+i, nil))
	if best == nil {
		return &snapReg{value: vector.Bottom, view: vector.New(q.count)}
	}
	q.nw.await(q.nw.broadcast(mpWrite, q.offset+i, best))
	return best
}

// Store implements RegisterArray with a quorum write. Sequence numbers are
// chosen by the single writer (the snapshot layer increments them), so no
// timestamp round-trip is needed.
func (q *quorumArray) Store(i int, r *snapReg) {
	q.nw.await(q.nw.broadcast(mpWrite, q.offset+i, r))
}

package async

import (
	"sync"
	"testing"

	"kset/internal/condition"
	"kset/internal/vector"
)

func TestNewNetworkValidation(t *testing.T) {
	for _, tc := range []struct{ n, x, regs, vl int }{
		{1, 0, 1, 1},  // n too small
		{4, 2, 4, 4},  // 2x ≥ n
		{4, -1, 4, 4}, // x negative
		{4, 1, 0, 4},  // no registers
		{4, 1, 4, -1}, // bad view length
	} {
		if _, err := NewNetwork(tc.n, tc.x, tc.regs, tc.vl, 1); err == nil {
			t.Errorf("NewNetwork(%+v): want error", tc)
		}
	}
	nw, err := NewNetwork(5, 2, 10, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if _, err := nw.Registers(0, 11); err == nil {
		t.Error("oversized window: want error")
	}
	if _, err := nw.Registers(-1, 2); err == nil {
		t.Error("negative offset: want error")
	}
}

func TestQuorumRegisterReadWrite(t *testing.T) {
	nw, err := NewNetwork(5, 2, 5, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	regs, err := nw.Registers(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := regs.Load(0); got.value != vector.Bottom || got.seq != 0 {
		t.Errorf("fresh register = %+v", got)
	}
	regs.Store(2, &snapReg{value: 9, seq: 1, view: vector.New(5)})
	if got := regs.Load(2); got.value != 9 || got.seq != 1 {
		t.Errorf("after write: %+v", got)
	}
	// Survives up to x crashed replicas.
	nw.Crash(1)
	nw.Crash(2)
	if got := regs.Load(2); got.value != 9 {
		t.Errorf("after crashes: %+v", got)
	}
	regs.Store(2, &snapReg{value: 4, seq: 2, view: vector.New(5)})
	if got := regs.Load(2); got.value != 4 || got.seq != 2 {
		t.Errorf("write under crashes: %+v", got)
	}
	// Stale sequence numbers never overwrite fresh state.
	regs.Store(2, &snapReg{value: 1, seq: 1, view: vector.New(5)})
	if got := regs.Load(2); got.value != 4 {
		t.Errorf("stale write took effect: %+v", got)
	}
}

// TestNetworkDeterministicQuorums: the virtual network's quorum draws are
// a pure function of the seed and the operation order, so two networks
// with the same seed serve identical register histories.
func TestNetworkDeterministicQuorums(t *testing.T) {
	run := func(seed int64) []vector.Value {
		nw, err := NewNetwork(5, 2, 5, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		regs, err := nw.Registers(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		var trace []vector.Value
		for i := 0; i < 5; i++ {
			regs.Store(i, &snapReg{value: vector.Value(i + 1), seq: 1, view: vector.New(5)})
			trace = append(trace, regs.Load(i).value)
		}
		nw.Crash(2)
		for i := 0; i < 5; i++ {
			trace = append(trace, regs.Load(i).value)
		}
		return trace
	}
	a, b := run(17), run(17)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed networks diverged at op %d: %v vs %v", i, a, b)
		}
	}
}

// TestQuorumSnapshotContainment runs the Afek construction over the
// message-passing registers and checks the containment ordering of
// concurrent scans with write-once entries.
func TestQuorumSnapshotContainment(t *testing.T) {
	const n = 5
	nw, err := NewNetwork(n, 2, n, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	regs, err := nw.Registers(0, n)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSnapshotOver(regs)

	var wg sync.WaitGroup
	const scans = 30
	views := make([]vector.Vector, scans)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.Write(w, vector.Value(w+1))
		}(w)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * (scans / 3); i < (g+1)*(scans/3); i++ {
				views[i] = s.Scan()
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < scans; i++ {
		for j := 0; j < scans; j++ {
			if !views[i].ContainedIn(views[j]) && !views[j].ContainedIn(views[i]) {
				t.Fatalf("incomparable scans %v and %v", views[i], views[j])
			}
		}
	}
}

// TestAgreementOverMessagePassing runs the Section-4 algorithm end to end
// on the quorum-emulated memory: agreement and validity always, and
// termination with in-condition inputs despite x crashes.
func TestAgreementOverMessagePassing(t *testing.T) {
	n, m, x, l := 5, 3, 2, 2
	c := condition.MustNewMax(n, m, x, l)
	input := vector.OfInts(3, 3, 2, 1, 2)
	if !c.Contains(input) {
		t.Fatal("input must be in C")
	}
	for _, crashes := range []map[int]CrashPoint{
		nil,
		{5: CrashBeforeWrite},
		{4: CrashAfterWrite, 5: CrashBeforeWrite},
	} {
		out, err := Run(Config{
			X: x, Cond: c, Input: input, Crashes: crashes,
			Seed: 13, Memory: MessagePassingMemory,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Undecided) != 0 {
			t.Fatalf("crashes=%v: undecided %v", crashes, out.Undecided)
		}
		d := out.DistinctDecisions()
		if d.Len() > l || !d.SubsetOf(input.Vals()) {
			t.Fatalf("crashes=%v: bad decisions %v", crashes, d)
		}
	}
}

// TestMessagePassingRequiresMinority: the quorum emulation needs x < n/2.
func TestMessagePassingRequiresMinority(t *testing.T) {
	c := condition.MustNewMax(4, 3, 2, 2)
	_, err := Run(Config{
		X: 2, Cond: c, Input: vector.OfInts(3, 3, 1, 2),
		Memory: MessagePassingMemory,
	})
	if err == nil {
		t.Fatal("x = n/2 must be rejected for message-passing memory")
	}
}

package async

import (
	"fmt"
	"sync"

	"kset/internal/condition"
	"kset/internal/vector"
)

// This file is the deterministic virtual scheduler behind Run: the
// asynchronous adversary as a seeded cooperative step machine instead of
// goroutines, sleep jitter and wall-clock patience.
//
// Every process is a little state machine — wait out a start delay, write
// the input value, then re-scan until it can decide, adopt or gives up —
// and the scheduler advances them in passes: each pass visits every live
// process once, in a fresh seeded shuffle (the adversary's interleaving
// choice). A step is one protocol action, so all asynchrony the algorithm
// can observe (who wrote before my scan? who decided first?) is still
// exercised, while the execution is single-goroutine, allocation-free and
// a pure function of (Config, Seed): the same seed replays the same
// interleaving bit for bit, whatever the host's core count or load.
//
// Termination is structural rather than temporal. Start delays are drawn
// from a bounded range, so by pass maxDelay+1 every non-crashed process
// has written; the next scan of any live process then sees at most x
// missing entries, and with an in-condition input it decides (P holds for
// every view of a condition member). The default scan budget covers that
// horizon with slack, so in-condition runs always decide within budget,
// while out-of-condition runs give up after a bounded number of re-scans
// — the same conditional-termination story the wall clock used to tell,
// minus the wall clock.

// schedDelayRange bounds the per-process start delay drawn for n
// processes: enough spread that writes interleave with scans in varied
// orders across seeds, small enough that the decision horizon — and with
// it the default scan budget — stays O(1).
func schedDelayRange(n int) int {
	if n < 2 {
		return 2
	}
	if n > 8 {
		return 8
	}
	return n
}

// defaultScanBudget is the ScanBudget applied when Config leaves it 0:
// twice the write horizon plus slack, so a decision that is structurally
// guaranteed (in-condition input, or another process's decision to adopt)
// is always reached.
func defaultScanBudget(n int) int { return 2*schedDelayRange(n) + 8 }

// procState is one process's position in its protocol state machine.
type procState uint8

const (
	procDelay procState = iota // waiting out its start delay
	procScan                   // value written; re-scanning to decide
)

// Runner executes asynchronous runs while reusing every piece of per-run
// state across calls: the snapshot substrates, the virtual network, the
// scheduler's process table and the outcome arrays. Batch drivers — the
// facade's campaign workers above all — hold one Runner per worker and
// drive millions of runs through RunInto with near-zero steady-state
// allocation. A Runner is not safe for concurrent use; the package-level
// Run checks Runners out of an internal pool.
type Runner struct {
	rng   prng
	delay []int
	scans []int
	state []procState
	live  []int // 0-based ids still stepping, compacted each pass
	acp   []CrashPoint

	mutexVals, mutexDecs *Snapshot
	wfVals, wfDecs       *AtomicSnapshot
	net                  *Network
}

// NewRunner returns a Runner with no state allocated yet; buffers grow to
// the largest run seen and are reused afterwards.
func NewRunner() *Runner { return &Runner{} }

// runnerPool backs the package-level Run.
var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

// Run executes one configuration and returns a freshly allocated Outcome
// that remains valid across further calls.
func (r *Runner) Run(cfg Config) (*Outcome, error) {
	out := new(Outcome)
	if err := r.RunInto(cfg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunInto is Run writing into a caller-provided Outcome, which is cleared
// and filled; its arrays are reused when large enough, so sweeps that
// read each outcome before the next run are allocation-free.
func (r *Runner) RunInto(cfg Config, out *Outcome) error {
	n, crashes, err := cfg.validate(r.acp)
	if err != nil {
		return err
	}
	if crashes != nil && cfg.CrashPoints == nil {
		r.acp = crashes // keep the scratch the validator may have grown
	}

	values, decisions, err := r.substrates(n, &cfg)
	if err != nil {
		return err
	}

	out.reset(n)
	r.reset(n, cfg.Seed)

	budget := cfg.ScanBudget
	if budget == 0 {
		budget = defaultScanBudget(n)
	}

	// Pass loop: shuffle the live processes, step each once, compact out
	// the ones that terminated. Every step strictly advances its process
	// (delay countdown, the write, or a counted scan), so the loop ends
	// after at most delayRange+budget+2 passes.
	live := r.live
	for len(live) > 0 {
		r.rng.shuffle(live)
		w := 0
		for _, id := range live {
			if !r.step(id, &cfg, crashes, budget, values, decisions, out) {
				live[w] = id
				w++
			}
		}
		live = live[:w]
	}
	sortInts(out.Undecided)
	return nil
}

// step advances process id (0-based) by one action and reports whether it
// terminated (decided, crashed or gave up).
func (r *Runner) step(id int, cfg *Config, crashes []CrashPoint, budget int, values, decisions Store, out *Outcome) bool {
	switch r.state[id] {
	case procDelay:
		cp := NoCrash
		if crashes != nil {
			cp = crashes[id]
		}
		if cp == CrashBeforeWrite {
			// The process dies before depositing its value; over message
			// passing its replica dies with it.
			if r.net != nil {
				r.net.Crash(id + 1)
			}
			return true
		}
		if r.delay[id] > 0 {
			r.delay[id]--
			return false
		}
		values.Write(id, cfg.Input[id])
		if cp == CrashAfterWrite {
			if r.net != nil {
				r.net.Crash(id + 1)
			}
			return true
		}
		r.state[id] = procScan
		return false

	default: // procScan
		if cfg.Cancel != nil {
			select {
			case <-cfg.Cancel:
				out.Undecided = append(out.Undecided, id+1)
				return true
			default:
			}
		}
		view := values.Scan()
		if view.BottomCount() <= cfg.X {
			if condition.Predicate(cfg.Cond, view) {
				if h, ok := condition.DecodeView(cfg.Cond, view); ok && !h.Empty() {
					d := h.Max()
					decisions.Write(id, d)
					out.Decided[id] = d
					return true
				}
			}
			// ¬P is stable under growing views (completions only
			// shrink): from here on only adoption can decide.
		}
		if d := decisions.AnyNonBottom(); d != vector.Bottom {
			out.Decided[id] = d
			return true
		}
		r.scans[id]++
		if r.scans[id] >= budget {
			out.Undecided = append(out.Undecided, id+1)
			return true
		}
		return false
	}
}

// substrates resolves the run's value and decision stores, resetting the
// Runner's pooled instances of the selected memory kind.
func (r *Runner) substrates(n int, cfg *Config) (values, decisions Store, err error) {
	switch cfg.Memory {
	case WaitFreeMemory:
		if r.wfVals == nil {
			r.wfVals, r.wfDecs = NewAtomicSnapshot(n), NewAtomicSnapshot(n)
		} else {
			r.wfVals.Reset(n)
			r.wfDecs.Reset(n)
		}
		return r.wfVals, r.wfDecs, nil
	case MessagePassingMemory:
		if r.net == nil {
			nw, err := NewNetwork(n, cfg.X, 2*n, n, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			r.net = nw
		} else {
			if n < 2 || cfg.X < 0 || 2*cfg.X >= n {
				return nil, nil, fmt.Errorf("async: quorum emulation needs x < n/2, got x=%d n=%d", cfg.X, n)
			}
			r.net.reset(n, cfg.X, 2*n, n, cfg.Seed)
		}
		valRegs, err := r.net.Registers(0, n)
		if err != nil {
			return nil, nil, err
		}
		decRegs, err := r.net.Registers(n, n)
		if err != nil {
			return nil, nil, err
		}
		return NewSnapshotOver(valRegs), NewSnapshotOver(decRegs), nil
	default:
		if r.mutexVals == nil {
			r.mutexVals, r.mutexDecs = NewSnapshot(n), NewSnapshot(n)
		} else {
			r.mutexVals.Reset(n)
			r.mutexDecs.Reset(n)
		}
		return r.mutexVals, r.mutexDecs, nil
	}
}

// reset prepares the scheduler's process table for a run of n processes.
func (r *Runner) reset(n int, seed int64) {
	r.rng.reseed(seed)
	if cap(r.delay) < n {
		r.delay = make([]int, n)
		r.scans = make([]int, n)
		r.state = make([]procState, n)
		r.live = make([]int, n)
	}
	r.delay = r.delay[:n]
	r.scans = r.scans[:n]
	r.state = r.state[:n]
	r.live = r.live[:n]
	dr := schedDelayRange(n)
	for i := 0; i < n; i++ {
		r.delay[i] = r.rng.intn(dr)
		r.scans[i] = 0
		r.state[i] = procDelay
		r.live[i] = i
	}
}

package stats

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// randObservation draws one observation from a seeded distribution that
// exercises every field, including errors and overflow rounds.
func randObservation(r *rand.Rand) Observation {
	o := Observation{
		Round:    r.Intn(HistogramBuckets + 8), // some past the bound
		Messages: int64(r.Intn(500)),
		Crashes:  r.Intn(5),
		Decided:  r.Intn(9),
		Executor: []string{"figure2", "early", "classical", ""}[r.Intn(4)],
		Label:    []string{"inC", "outC", ""}[r.Intn(3)],
	}
	o.InCondition = r.Intn(2) == 0
	if r.Intn(8) == 0 {
		o.Err = true
	}
	if r.Intn(2) == 0 {
		o.Verified = true
		o.Violation = r.Intn(16) == 0
	}
	// A minority of runs rode a fault-injecting transport.
	if r.Intn(4) == 0 {
		o.Lost = int64(r.Intn(20))
		o.Delayed = int64(r.Intn(10))
		o.Duplicated = int64(r.Intn(5))
		o.Undecided = r.Intn(3)
	}
	return o
}

// marshal renders an accumulator as canonical JSON for byte comparison.
func marshal(t *testing.T, a *Accumulator) string {
	t.Helper()
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMergeAssociative folds the same observation stream through many
// random shard groupings and merge orders: every grouping must produce a
// byte-identical accumulator. This is the invariant that makes campaign
// statistics independent of worker count and scheduling.
func TestMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	obs := make([]Observation, 4096)
	for i := range obs {
		obs[i] = randObservation(r)
	}

	sequential := &Accumulator{}
	for _, o := range obs {
		sequential.Observe(o)
	}
	want := marshal(t, sequential)

	for trial := 0; trial < 20; trial++ {
		shards := make([]*Accumulator, 1+r.Intn(16))
		for i := range shards {
			shards[i] = NewAccumulator()
		}
		// Random shard assignment (order within a shard preserved —
		// observe order must not matter either way).
		for _, o := range obs {
			shards[r.Intn(len(shards))].Observe(o)
		}
		// Random merge tree: repeatedly merge one shard into another
		// until one remains.
		for len(shards) > 1 {
			i := r.Intn(len(shards))
			j := r.Intn(len(shards) - 1)
			if j >= i {
				j++
			}
			shards[i].Merge(shards[j])
			shards = append(shards[:j], shards[j+1:]...)
		}
		if got := marshal(t, shards[0]); got != want {
			t.Fatalf("trial %d: sharded merge diverged from sequential fold\ngot:  %s\nwant: %s", trial, got, want)
		}
	}
}

// TestAccumulatorCounters pins the counter semantics on a hand-built
// stream.
func TestAccumulatorCounters(t *testing.T) {
	a := NewAccumulator()
	a.Observe(Observation{Round: 2, Messages: 10, Crashes: 1, InCondition: true, Verified: true, Executor: "figure2", Label: "x"})
	a.Observe(Observation{Round: 3, Messages: 30, Crashes: 0, Verified: true, Violation: true, Executor: "figure2"})
	a.Observe(Observation{Err: true, Executor: "early"})
	a.Observe(Observation{Round: 0, Messages: 2, Crashes: 2}) // nobody decided

	if a.Runs != 4 || a.Errors != 1 || a.ConditionHits != 1 || a.Verified != 2 || a.Violations != 1 {
		t.Fatalf("counters: %+v", a)
	}
	if got := a.MessagesDelivered(); got != 42 {
		t.Errorf("MessagesDelivered = %d, want 42", got)
	}
	if a.Messages.Min != 2 || a.Messages.Max != 30 || a.Messages.Mean() != 14 {
		t.Errorf("message summary: %+v", a.Messages)
	}
	if a.MaxDecisionRound() != 3 {
		t.Errorf("MaxDecisionRound = %d, want 3", a.MaxDecisionRound())
	}
	if a.MeanDecisionRound() != 2.5 {
		t.Errorf("MeanDecisionRound = %v, want 2.5", a.MeanDecisionRound())
	}
	if got := a.DecisionRounds(); len(got) != 4 || got[0] != 1 || got[2] != 1 || got[3] != 1 {
		t.Errorf("DecisionRounds = %v", got)
	}
	if a.HitRate() != 0.25 {
		t.Errorf("HitRate = %v, want 0.25", a.HitRate())
	}
	if got := a.ExecutorKeys(); len(got) != 2 || got[0] != "early" || got[1] != "figure2" {
		t.Errorf("ExecutorKeys = %v", got)
	}
	if g := a.ByExecutor["figure2"]; g.Runs != 2 || g.Violations != 1 || g.Rounds.Max != 3 {
		t.Errorf("figure2 group: %+v", g)
	}
	if g := a.ByExecutor["early"]; g.Runs != 1 || g.Errors != 1 {
		t.Errorf("early group: %+v", g)
	}
	if got := a.LabelKeys(); len(got) != 1 || got[0] != "x" {
		t.Errorf("LabelKeys = %v", got)
	}
	if got := a.CrashKeys(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("CrashKeys = %v", got)
	}
}

// TestHistogramOverflow checks that rounds past the bucket bound keep
// exact count, mean and max through the overflow summary.
func TestHistogramOverflow(t *testing.T) {
	var h Histogram
	h.Observe(2)
	h.Observe(HistogramBuckets + 10)
	h.Observe(HistogramBuckets + 20)
	if h.Decided() != 3 {
		t.Errorf("Decided = %d, want 3", h.Decided())
	}
	if want := HistogramBuckets + 20; h.Max() != want {
		t.Errorf("Max = %d, want %d", h.Max(), want)
	}
	if want := float64(2+HistogramBuckets+10+HistogramBuckets+20) / 3; h.Mean() != want {
		t.Errorf("Mean = %v, want %v", h.Mean(), want)
	}
	if got := h.Slice(); len(got) != 3 || got[2] != 1 {
		t.Errorf("Slice = %v", got)
	}
	var other Histogram
	other.Observe(HistogramBuckets + 30)
	h.Merge(&other)
	if h.Overflow.Count != 3 || h.Overflow.Max != int64(HistogramBuckets+30) {
		t.Errorf("merged overflow: %+v", h.Overflow)
	}
}

// TestObserveAllocFree pins the zero-alloc observe hot path: once the
// breakdown keys are warm, folding an observation allocates nothing.
func TestObserveAllocFree(t *testing.T) {
	a := NewAccumulator()
	o := Observation{Round: 2, Messages: 64, Crashes: 1, InCondition: true,
		Verified: true, Executor: "figure2", Label: "steady"}
	a.Observe(o) // warm the breakdown keys
	if got := testing.AllocsPerRun(200, func() {
		a.Observe(o)
	}); got != 0 {
		t.Errorf("Observe allocates %.1f/op, want 0", got)
	}
}

// TestReset clears totals while keeping the accumulator usable.
func TestReset(t *testing.T) {
	a := NewAccumulator()
	a.Observe(Observation{Round: 1, Executor: "figure2"})
	a.Reset()
	if a.Runs != 0 || len(a.ByExecutor) != 0 {
		t.Fatalf("after Reset: %+v", a)
	}
	a.Observe(Observation{Round: 1, Executor: "figure2"})
	if a.Runs != 1 || a.ByExecutor["figure2"].Runs != 1 {
		t.Fatalf("post-Reset observe: %+v", a)
	}
}

// TestFaultTallyLazy pins the fault plane's accumulator semantics: the
// tally stays nil (and absent from the JSON) for fault-free streams,
// materializes on the first faulty run, folds only faulty runs, and
// merges nil-safely in both directions alongside UndecidedRuns.
func TestFaultTallyLazy(t *testing.T) {
	clean := NewAccumulator()
	clean.Observe(Observation{Round: 2, Messages: 10})
	if clean.Faults != nil || clean.UndecidedRuns != 0 {
		t.Fatalf("fault-free stream materialized a tally: %+v", clean)
	}
	if s := marshal(t, clean); strings.Contains(s, "faults") || strings.Contains(s, "undecided") {
		t.Errorf("fault-free JSON mentions faults: %s", s)
	}

	faulty := NewAccumulator()
	faulty.Observe(Observation{Round: 2, Messages: 8, Lost: 3, Delayed: 1, Undecided: 2})
	faulty.Observe(Observation{Round: 3, Messages: 9, Duplicated: 4})
	faulty.Observe(Observation{Round: 2, Messages: 12}) // fault-free run: not folded
	ft := faulty.Faults
	if ft == nil {
		t.Fatal("faulty stream left a nil tally")
	}
	if ft.Lost.Count != 2 || ft.Lost.Sum != 3 || ft.Duplicated.Sum != 4 || ft.Delayed.Sum != 1 {
		t.Errorf("tally folded wrong runs: %+v", ft)
	}
	if faulty.UndecidedRuns != 1 {
		t.Errorf("UndecidedRuns = %d, want 1", faulty.UndecidedRuns)
	}

	// nil ← non-nil and non-nil ← nil merges.
	m := NewAccumulator()
	m.Merge(faulty)
	m.Merge(clean)
	if m.Faults == nil || m.Faults.Lost.Sum != 3 || m.UndecidedRuns != 1 {
		t.Errorf("merged tally wrong: %+v undecided=%d", m.Faults, m.UndecidedRuns)
	}
	if faulty.Faults == m.Faults {
		t.Error("merge aliased the source tally instead of copying into its own")
	}
}

package stats

import "encoding/json"

// This file is the accumulator's wire format: the JSON decode half that
// turns the deterministic MarshalJSON encoding back into a live,
// mergeable Accumulator, and the deep-copying Snapshot that lets one
// goroutine publish a consistent view of an accumulator another
// goroutine keeps folding into. Together they are the transport of the
// results plane — ksetd streams snapshot encodings as SSE progress
// events, and sharded or checkpointed campaigns decode persisted
// accumulators and Merge them as if the runs had happened locally.

// histogramJSON mirrors Histogram's MarshalJSON encoding: the tracked
// buckets trimmed to the highest non-empty round plus the exact overflow
// summary when present.
type histogramJSON struct {
	Counts   []int64  `json:"counts"`
	Overflow *Summary `json:"overflow,omitempty"`
}

// UnmarshalJSON decodes the trimmed-bucket encoding MarshalJSON emits.
// Decoding then re-encoding is byte-identical, and a decoded histogram
// merges exactly like the original: counts beyond the tracked range are
// rejected nowhere because MarshalJSON never emits more than
// HistogramBuckets tracked counts.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var raw histogramJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*h = Histogram{}
	copy(h.Buckets[:], raw.Counts)
	if raw.Overflow != nil {
		h.Overflow = *raw.Overflow
	}
	return nil
}

// Snapshot returns a deep copy of the accumulator: the fixed-size
// counters and histograms by value, the fault tally and every breakdown
// group freshly allocated. The copy shares no mutable state with a, so a
// progress publisher can hand it to encoders and subscribers while the
// original keeps observing. Snapshots merge like any accumulator.
func (a *Accumulator) Snapshot() *Accumulator {
	out := *a
	if a.Faults != nil {
		f := *a.Faults
		out.Faults = &f
	}
	out.ByExecutor = copyGroups(a.ByExecutor)
	out.ByCrashes = copyGroups(a.ByCrashes)
	out.ByLabel = copyGroups(a.ByLabel)
	return &out
}

// copyGroups deep-copies one breakdown map (nil stays nil).
func copyGroups[K comparable](m map[K]*Group) map[K]*Group {
	if m == nil {
		return nil
	}
	out := make(map[K]*Group, len(m))
	for k, g := range m {
		c := *g
		out[k] = &c
	}
	return out
}

// Package stats is the results plane of the library: mergeable,
// worker-shardable metric accumulators that every execution layer feeds
// and every consumer reads in machine-readable form.
//
// The unit of measurement is the Observation — one flat record per
// agreement run (decision round, messages delivered, crashes, condition
// membership, verdict). Runs emit Observations, a Collector receives
// them, and the Accumulator is the canonical collector: a bounded
// decision-round histogram with an overflow bucket, run/error/violation
// counters, min/mean/max summaries and per-executor, per-crash-count and
// per-label breakdowns.
//
// Two invariants shape the package:
//
//   - The observe hot path allocates nothing. The histogram is a fixed
//     array (rounds past its bound land in an exact overflow summary, so
//     aggregate accessors never lose precision), summaries are plain
//     integer folds, and the breakdown maps only allocate when a key is
//     first seen — amortized zero across a sweep.
//
//   - Merging is deterministic and order-insensitive. Every field is a
//     sum, a min or a max, so folding worker shards in any grouping or
//     order yields identical totals: campaign statistics are invariant
//     under worker count and scheduling, and a sharded sweep can be
//     reproduced byte-for-byte from the same seed.
//
// Paper map: the accumulator aggregates exactly the quantities the
// paper's evaluation reads off executions — decision rounds against the
// Theorem-10 bounds and the ⌊(d+ℓ−1)/k⌋+1 / ⌊t/k⌋+1 claims (§6, §8),
// message counts for the baseline comparison, condition-hit rates for
// the §5 size/speed trade-off, and specification verdicts for the
// exhaustive §6.2 safety sweeps.
package stats

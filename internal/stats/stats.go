package stats

import (
	"encoding/json"
	"sort"
)

// Observation is one run's flat metric record: the quantities every
// execution layer can report about a single agreement run without
// retaining the run's Result. Producers fill what they know — the round
// engine fills the execution facts, the campaign layer adds condition
// membership and the verdict — and collectors fold the rest.
type Observation struct {
	// Round is the latest round at which any process decided; 0 means no
	// round at all (an asynchronous run, or nobody decided).
	Round int
	// Messages is the number of messages delivered across the run.
	Messages int64
	// Crashes is the number of processes that crashed during the run.
	Crashes int
	// Decided is the number of processes that decided.
	Decided int
	// Undecided is the number of processes that neither decided nor
	// crashed within the run's round limit — the counted outcome of a
	// fault-injected run whose message losses starved a process of the
	// state it needed (0 on every fault-free synchronous run).
	Undecided int
	// Lost, Delayed and Duplicated count the message copies the run's
	// transport dropped, deferred and duplicated (all 0 under reliable
	// delivery).
	Lost, Delayed, Duplicated int64
	// InCondition reports whether the input vector belongs to the
	// system's condition.
	InCondition bool
	// Verified reports whether the run was checked against the k-set
	// agreement specification.
	Verified bool
	// Violation reports a verified run that failed the specification.
	// Meaningful only when Verified is set.
	Violation bool
	// Err marks a run that failed to execute; errored runs count toward
	// Runs and Errors and stay out of every other aggregate.
	Err bool
	// Executor is the short executor name ("figure2", "early", …), or
	// empty when unknown; it keys the per-executor breakdown.
	Executor string
	// Label is the scenario's label, or empty; it keys the per-label
	// breakdown.
	Label string
}

// Collector receives one Observation per run. A collector need not be
// safe for concurrent use: batch drivers give every worker a private
// shard (Fork) fed from a single goroutine, and fold the shards back in
// a deterministic order (Join) once the workers are done.
type Collector interface {
	// Observe folds one run into the collector.
	Observe(o Observation)
	// Fork returns a fresh, empty collector of the same kind, to be used
	// as a worker-local shard.
	Fork() Collector
	// Join folds a shard previously returned by this collector's Fork
	// back in. Implementations may panic when handed a foreign collector.
	Join(shard Collector)
}

// HistogramBuckets bounds the decision-round histogram: rounds 0 through
// HistogramBuckets−1 are counted individually, later rounds land in the
// exact overflow summary. Synchronous runs decide within ⌊t/k⌋+1 rounds,
// so any realistic configuration fits the tracked range; the bound is
// what keeps Observe free of append and allocation.
const HistogramBuckets = 64

// Histogram is the bounded decision-round histogram. Index 0 counts runs
// that decided in no round at all — asynchronous runs (which have no
// rounds) and runs where nobody decided.
type Histogram struct {
	// Buckets[r] counts runs whose latest decision came at round r.
	Buckets [HistogramBuckets]int64
	// Overflow summarizes the rounds ≥ HistogramBuckets exactly (count,
	// sum, min, max), so Mean and Max lose nothing to the bound.
	Overflow Summary
}

// Observe counts one run's latest decision round.
func (h *Histogram) Observe(round int) {
	switch {
	case round < 0:
		h.Buckets[0]++
	case round < HistogramBuckets:
		h.Buckets[round]++
	default:
		h.Overflow.Observe(int64(round))
	}
}

// Merge folds o into h. Merging is commutative and associative.
func (h *Histogram) Merge(o *Histogram) {
	for r, n := range o.Buckets {
		h.Buckets[r] += n
	}
	h.Overflow.Merge(o.Overflow)
}

// Decided returns the number of runs that decided in some round (≥ 1).
func (h *Histogram) Decided() int64 {
	n := h.Overflow.Count
	for r := 1; r < HistogramBuckets; r++ {
		n += h.Buckets[r]
	}
	return n
}

// Max returns the latest decision round observed (≥ 1), or 0 when every
// run decided in no round.
func (h *Histogram) Max() int {
	if h.Overflow.Count > 0 {
		return int(h.Overflow.Max)
	}
	for r := HistogramBuckets - 1; r >= 1; r-- {
		if h.Buckets[r] > 0 {
			return r
		}
	}
	return 0
}

// Mean returns the mean latest decision round over the runs that decided
// in some round, or 0 when none did.
func (h *Histogram) Mean() float64 {
	var runs, sum int64
	for r := 1; r < HistogramBuckets; r++ {
		runs += h.Buckets[r]
		sum += int64(r) * h.Buckets[r]
	}
	runs += h.Overflow.Count
	sum += h.Overflow.Sum
	if runs == 0 {
		return 0
	}
	return float64(sum) / float64(runs)
}

// Slice returns the tracked buckets as a slice trimmed to the highest
// non-empty index (index 0 included), or nil when the histogram is
// empty. Overflowed rounds are not representable positionally and are
// omitted; read them from Overflow.
func (h *Histogram) Slice() []int64 {
	top := -1
	for r := HistogramBuckets - 1; r >= 0; r-- {
		if h.Buckets[r] > 0 {
			top = r
			break
		}
	}
	if top < 0 {
		return nil
	}
	out := make([]int64, top+1)
	copy(out, h.Buckets[:top+1])
	return out
}

// MarshalJSON encodes the histogram as its trimmed bucket slice plus the
// overflow summary when non-empty, keeping reports compact and
// byte-deterministic.
func (h Histogram) MarshalJSON() ([]byte, error) {
	var overflow *Summary
	if h.Overflow.Count > 0 {
		overflow = &h.Overflow
	}
	return json.Marshal(struct {
		Counts   []int64  `json:"counts"`
		Overflow *Summary `json:"overflow,omitempty"`
	}{Counts: h.Slice(), Overflow: overflow})
}

// Summary is an exact min/mean/max fold of an integer quantity.
type Summary struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the total over all observations.
	Sum int64 `json:"sum"`
	// Min and Max are the extremes (0 when Count is 0).
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

// Observe folds one value.
func (s *Summary) Observe(v int64) {
	if s.Count == 0 || v < s.Min {
		s.Min = v
	}
	if s.Count == 0 || v > s.Max {
		s.Max = v
	}
	s.Count++
	s.Sum += v
}

// Merge folds o into s. Merging is commutative and associative.
func (s *Summary) Merge(o Summary) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.Count == 0 || o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Mean returns Sum/Count, or 0 when empty.
func (s Summary) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Group is one breakdown bucket of an Accumulator: the per-key slice of
// the same counters, keyed by executor, crash count or scenario label.
type Group struct {
	// Runs, Errors, ConditionHits and Violations count as in Accumulator.
	Runs          int64 `json:"runs"`
	Errors        int64 `json:"errors,omitempty"`
	ConditionHits int64 `json:"condition_hits,omitempty"`
	Violations    int64 `json:"violations,omitempty"`
	// Messages sums delivered messages across the group's successful runs.
	Messages int64 `json:"messages"`
	// Rounds summarizes the latest decision rounds of the group's runs
	// that decided in some round.
	Rounds Summary `json:"rounds"`
}

// observe folds one run into the group.
func (g *Group) observe(o Observation) {
	g.Runs++
	if o.Err {
		g.Errors++
		return
	}
	if o.InCondition {
		g.ConditionHits++
	}
	if o.Verified && o.Violation {
		g.Violations++
	}
	g.Messages += o.Messages
	if o.Round > 0 {
		g.Rounds.Observe(int64(o.Round))
	}
}

// merge folds o into g.
func (g *Group) merge(o *Group) {
	g.Runs += o.Runs
	g.Errors += o.Errors
	g.ConditionHits += o.ConditionHits
	g.Violations += o.Violations
	g.Messages += o.Messages
	g.Rounds.Merge(o.Rounds)
}

// FaultTally summarizes the transport faults of the runs that suffered
// any: one Summary per fault kind, each folding the per-run copy counts.
// An Accumulator materializes it lazily — fault-free campaigns keep a
// nil tally (and their JSON encoding unchanged).
type FaultTally struct {
	// Lost, Delayed and Duplicated summarize the per-run counts of
	// dropped, deferred and duplicated message copies over the runs with
	// at least one transport fault.
	Lost       Summary `json:"lost"`
	Delayed    Summary `json:"delayed"`
	Duplicated Summary `json:"duplicated"`
}

// observe folds one faulty run's copy counts.
func (t *FaultTally) observe(o Observation) {
	t.Lost.Observe(o.Lost)
	t.Delayed.Observe(o.Delayed)
	t.Duplicated.Observe(o.Duplicated)
}

// Merge folds o into t. Merging is commutative and associative.
func (t *FaultTally) Merge(o *FaultTally) {
	t.Lost.Merge(o.Lost)
	t.Delayed.Merge(o.Delayed)
	t.Duplicated.Merge(o.Duplicated)
}

// Accumulator is the canonical Collector: every aggregate the evaluation
// reads off a batch of runs, in mergeable form. All fields are sums,
// minima or maxima, so for a fixed multiset of observations the
// accumulator's value is independent of observe order, shard assignment
// and merge grouping — worker-count-invariant by construction.
//
// The zero Accumulator is ready to use. Observe allocates nothing once
// the breakdown keys have been seen; Merge never allocates beyond new
// breakdown keys.
type Accumulator struct {
	// Runs counts every observed run, errored ones included.
	Runs int64 `json:"runs"`
	// Errors counts runs whose execution returned an error.
	Errors int64 `json:"errors"`
	// ConditionHits counts successful runs whose input vector belongs to
	// the system's condition.
	ConditionHits int64 `json:"condition_hits"`
	// Verified counts runs checked against the specification; Violations
	// counts the checked runs that failed it.
	Verified   int64 `json:"verified"`
	Violations int64 `json:"violations"`
	// Rounds is the bounded decision-round histogram.
	Rounds Histogram `json:"rounds"`
	// Messages summarizes delivered messages per successful run.
	Messages Summary `json:"messages"`
	// Crashes summarizes crashed processes per successful run.
	Crashes Summary `json:"crashes"`
	// UndecidedRuns counts successful runs in which some process neither
	// decided nor crashed within the round limit — the bounded-rounds
	// outcome of fault-injected campaigns.
	UndecidedRuns int64 `json:"undecided_runs,omitempty"`
	// Faults summarizes transport faults over the runs that suffered any;
	// nil when every run was fault-free. Whether a run folds in depends
	// only on the run itself, so the tally stays worker-count-invariant.
	Faults *FaultTally `json:"faults,omitempty"`
	// ByExecutor, ByCrashes and ByLabel break the same counters down by
	// executor name, by the run's crash count and by scenario label.
	// Absent keys (empty executor or label) are not recorded.
	ByExecutor map[string]*Group `json:"by_executor,omitempty"`
	ByCrashes  map[int]*Group    `json:"by_crashes,omitempty"`
	ByLabel    map[string]*Group `json:"by_label,omitempty"`
}

// NewAccumulator returns an empty accumulator. The zero value works too;
// the constructor exists for use as a Collector-typed expression.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Observe folds one run into the accumulator. It never allocates beyond
// first-seen breakdown keys.
func (a *Accumulator) Observe(o Observation) {
	a.Runs++
	if o.Executor != "" {
		groupOf(&a.ByExecutor, o.Executor).observe(o)
	}
	if o.Label != "" {
		groupOf(&a.ByLabel, o.Label).observe(o)
	}
	if o.Err {
		a.Errors++
		return
	}
	groupOf(&a.ByCrashes, o.Crashes).observe(o)
	a.Rounds.Observe(o.Round)
	a.Messages.Observe(o.Messages)
	a.Crashes.Observe(int64(o.Crashes))
	if o.Undecided > 0 {
		a.UndecidedRuns++
	}
	if o.Lost != 0 || o.Delayed != 0 || o.Duplicated != 0 {
		if a.Faults == nil {
			a.Faults = &FaultTally{}
		}
		a.Faults.observe(o)
	}
	if o.InCondition {
		a.ConditionHits++
	}
	if o.Verified {
		a.Verified++
		if o.Violation {
			a.Violations++
		}
	}
}

// groupOf returns the group at key, creating map and group on first use.
func groupOf[K comparable](m *map[K]*Group, key K) *Group {
	g := (*m)[key]
	if g == nil {
		if *m == nil {
			*m = make(map[K]*Group, 8)
		}
		g = &Group{}
		(*m)[key] = g
	}
	return g
}

// Merge folds o into a. Merging is commutative and associative: any
// grouping of shards yields the same accumulator.
func (a *Accumulator) Merge(o *Accumulator) {
	a.Runs += o.Runs
	a.Errors += o.Errors
	a.ConditionHits += o.ConditionHits
	a.Verified += o.Verified
	a.Violations += o.Violations
	a.Rounds.Merge(&o.Rounds)
	a.Messages.Merge(o.Messages)
	a.Crashes.Merge(o.Crashes)
	a.UndecidedRuns += o.UndecidedRuns
	if o.Faults != nil {
		if a.Faults == nil {
			a.Faults = &FaultTally{}
		}
		a.Faults.Merge(o.Faults)
	}
	mergeGroups(&a.ByExecutor, o.ByExecutor)
	mergeGroups(&a.ByCrashes, o.ByCrashes)
	mergeGroups(&a.ByLabel, o.ByLabel)
}

// mergeGroups folds the groups of src into dst key-wise.
func mergeGroups[K comparable](dst *map[K]*Group, src map[K]*Group) {
	for key, g := range src {
		groupOf(dst, key).merge(g)
	}
}

// Fork implements Collector: worker shards are fresh accumulators.
func (a *Accumulator) Fork() Collector { return &Accumulator{} }

// Join implements Collector by merging a shard produced by Fork. It
// panics when handed a collector that is not an *Accumulator.
func (a *Accumulator) Join(shard Collector) { a.Merge(shard.(*Accumulator)) }

// Reset clears the accumulator for reuse, keeping breakdown map storage.
func (a *Accumulator) Reset() {
	clear(a.ByExecutor)
	clear(a.ByCrashes)
	clear(a.ByLabel)
	be, bc, bl := a.ByExecutor, a.ByCrashes, a.ByLabel
	*a = Accumulator{ByExecutor: be, ByCrashes: bc, ByLabel: bl}
}

// HitRate returns the fraction of runs whose input was in the condition.
func (a *Accumulator) HitRate() float64 {
	if a.Runs == 0 {
		return 0
	}
	return float64(a.ConditionHits) / float64(a.Runs)
}

// MessagesDelivered returns the total number of messages delivered
// across all successful runs.
func (a *Accumulator) MessagesDelivered() int64 { return a.Messages.Sum }

// MaxDecisionRound returns the latest decision round any run reached, or
// 0 when no run decided in a round.
func (a *Accumulator) MaxDecisionRound() int { return a.Rounds.Max() }

// MeanDecisionRound returns the mean latest decision round over the runs
// that decided in some round.
func (a *Accumulator) MeanDecisionRound() float64 { return a.Rounds.Mean() }

// DecisionRounds returns the decision-round histogram as a slice trimmed
// to the highest observed round (index 0 counts runs that decided in no
// round), or nil when no run succeeded.
func (a *Accumulator) DecisionRounds() []int64 { return a.Rounds.Slice() }

// ExecutorKeys returns the per-executor breakdown keys, sorted.
func (a *Accumulator) ExecutorKeys() []string { return sortedStrings(a.ByExecutor) }

// LabelKeys returns the per-label breakdown keys, sorted.
func (a *Accumulator) LabelKeys() []string { return sortedStrings(a.ByLabel) }

// CrashKeys returns the per-crash-count breakdown keys, ascending.
func (a *Accumulator) CrashKeys() []int {
	keys := make([]int, 0, len(a.ByCrashes))
	for k := range a.ByCrashes {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedStrings returns m's keys in sorted order.
func sortedStrings(m map[string]*Group) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

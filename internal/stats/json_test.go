package stats

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// randomObservation draws one observation exercising every accumulator
// field: errors, verdicts, faults, all three breakdowns, and rounds both
// inside and beyond the tracked histogram range.
func randomObservation(rng *rand.Rand) Observation {
	o := Observation{
		Round:    rng.Intn(HistogramBuckets + 20),
		Messages: int64(rng.Intn(500)),
		Crashes:  rng.Intn(4),
		Decided:  rng.Intn(8),
	}
	switch rng.Intn(4) {
	case 0:
		o.Executor = "figure2"
	case 1:
		o.Executor = "early"
	case 2:
		o.Executor = "classical"
	}
	if rng.Intn(3) == 0 {
		o.Label = "sweep"
	}
	if rng.Intn(10) == 0 {
		o.Err = true
	}
	if rng.Intn(2) == 0 {
		o.InCondition = true
	}
	if rng.Intn(3) == 0 {
		o.Verified = true
		o.Violation = rng.Intn(20) == 0
	}
	if rng.Intn(4) == 0 {
		o.Lost = int64(rng.Intn(5))
		o.Delayed = int64(rng.Intn(5))
		o.Undecided = rng.Intn(2)
	}
	return o
}

// fill feeds count random observations into a fresh accumulator.
func fill(seed int64, count int) *Accumulator {
	rng := rand.New(rand.NewSource(seed))
	acc := NewAccumulator()
	for i := 0; i < count; i++ {
		acc.Observe(randomObservation(rng))
	}
	return acc
}

// TestAccumulatorJSONRoundTrip checks the wire format is lossless:
// encode → decode → encode is byte-identical, for accumulators with
// overflowed rounds, fault tallies and all three breakdowns populated.
func TestAccumulatorJSONRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		acc := fill(seed, 400)
		first, err := json.Marshal(acc)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var decoded Accumulator
		if err := json.Unmarshal(first, &decoded); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		second, err := json.Marshal(&decoded)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("seed %d: round trip not byte-identical:\n first: %s\nsecond: %s", seed, first, second)
		}
	}
}

// TestHistogramJSONRoundTrip pins the trimmed-bucket encoding: tracked
// buckets, overflow summary and the empty histogram all survive decode.
func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, r := range []int{0, 1, 1, 7, HistogramBuckets - 1, HistogramBuckets + 5, 200} {
		h.Observe(r)
	}
	for _, hist := range []Histogram{h, {}} {
		raw, err := json.Marshal(hist)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Histogram
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if back != hist {
			t.Fatalf("round trip changed histogram: %+v != %+v", back, hist)
		}
	}
}

// TestMergeAfterDecode checks the checkpointing contract: decoding two
// shards from their wire form and merging them yields the same
// accumulator — byte for byte — as merging the originals in memory.
func TestMergeAfterDecode(t *testing.T) {
	a, b := fill(11, 300), fill(12, 500)

	direct := a.Snapshot()
	direct.Merge(b)

	var da, db Accumulator
	for _, pair := range []struct {
		src *Accumulator
		dst *Accumulator
	}{{a, &da}, {b, &db}} {
		raw, err := json.Marshal(pair.src)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := json.Unmarshal(raw, pair.dst); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
	}
	da.Merge(&db)

	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatalf("marshal direct: %v", err)
	}
	got, err := json.Marshal(&da)
	if err != nil {
		t.Fatalf("marshal decoded: %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("merge-after-decode diverged:\n want: %s\n  got: %s", want, got)
	}
}

// TestSnapshotIsolation checks a snapshot is a deep copy: observing into
// the original afterwards leaves the snapshot untouched.
func TestSnapshotIsolation(t *testing.T) {
	acc := fill(21, 100)
	snap := acc.Snapshot()
	before, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		acc.Observe(randomObservation(rng))
	}
	after, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("snapshot mutated by later observations:\nbefore: %s\n after: %s", before, after)
	}
	if snap.Runs == acc.Runs {
		t.Fatalf("original did not advance past the snapshot")
	}
}

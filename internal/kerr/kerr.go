// Package kerr holds the sentinel errors shared by every constructor and
// run entry point of the module. The internal packages wrap them with
// fmt.Errorf("...: %w", ...) so callers can classify failures with
// errors.Is while still reading a precise message; the root kset package
// re-exports them as kset.ErrBadParams, kset.ErrDomainTooLarge and
// kset.ErrBadInput.
package kerr

import "errors"

var (
	// ErrBadParams marks invalid problem or condition parameters
	// (n, t, k, d, ℓ, x, m ranges, mismatched dimensions, nil conditions).
	ErrBadParams = errors.New("invalid parameters")

	// ErrDomainTooLarge marks a value domain beyond the 64-value cap of
	// the bitmask value sets, or an input value past it.
	ErrDomainTooLarge = errors.New("value domain exceeds the 64-value cap")

	// ErrBadInput marks a malformed input vector for a run: wrong length,
	// ⊥ entries, or values outside the proposable range.
	ErrBadInput = errors.New("invalid input vector")
)

package kerr

import "errors"

var (
	// ErrBadParams marks invalid problem or condition parameters
	// (n, t, k, d, ℓ, x, m ranges, mismatched dimensions, nil conditions).
	ErrBadParams = errors.New("invalid parameters")

	// ErrDomainTooLarge marks a value domain beyond the 64-value cap of
	// the bitmask value sets, or an input value past it.
	ErrDomainTooLarge = errors.New("value domain exceeds the 64-value cap")

	// ErrBadInput marks a malformed input vector for a run: wrong length,
	// ⊥ entries, or values outside the proposable range.
	ErrBadInput = errors.New("invalid input vector")
)

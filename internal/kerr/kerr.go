package kerr

import "errors"

var (
	// ErrBadParams marks invalid problem or condition parameters
	// (n, t, k, d, ℓ, x, m ranges, mismatched dimensions, nil conditions).
	ErrBadParams = errors.New("invalid parameters")

	// ErrDomainTooLarge marks a value domain beyond the 64-value cap of
	// the bitmask value sets, or an input value past it.
	ErrDomainTooLarge = errors.New("value domain exceeds the 64-value cap")

	// ErrBadInput marks a malformed input vector for a run: wrong length,
	// ⊥ entries, or values outside the proposable range.
	ErrBadInput = errors.New("invalid input vector")

	// ErrBadFrame marks a malformed or non-canonical wire frame: wrong
	// version byte, unknown frame type or payload kind, out-of-range
	// round/process/value fields, truncated or trailing bytes. Every
	// error of the wire decoder wraps it, and the decoder never panics,
	// whatever the input bytes.
	ErrBadFrame = errors.New("malformed wire frame")
)

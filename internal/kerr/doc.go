// Package kerr holds the sentinel errors shared by every constructor and
// run entry point of the module. It implements no paper section — it is
// the error vocabulary the paper-mapped packages (condition, core, count,
// async) speak with one voice.
//
// The internal packages wrap the sentinels with fmt.Errorf("...: %w", ...)
// so callers can classify failures with errors.Is while still reading a
// precise message; the root kset package re-exports them as
// kset.ErrBadParams, kset.ErrDomainTooLarge and kset.ErrBadInput, whose
// doc comments enumerate exactly which entry points return each.
package kerr

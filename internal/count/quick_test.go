package count

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickParams derives a small valid (n, m, x, ℓ) tuple from a seed.
func quickParams(seed int64) (n, m, x, l int) {
	r := rand.New(rand.NewSource(seed))
	n = 2 + r.Intn(4)
	m = 1 + r.Intn(4)
	x = r.Intn(n)
	l = 1 + r.Intn(3)
	return n, m, x, l
}

// Property: NB equals brute force on random small parameters.
func TestQuickNBEqualsBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(71))}
	f := func(seed int64) bool {
		n, m, x, l := quickParams(seed)
		return MustNB(n, m, x, l).Int64() == BruteForce(n, m, x, l)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: 0 ≤ NB ≤ m^n, with equality to m^n iff ℓ > x or ℓ ≥ m.
func TestQuickNBBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(72))}
	f := func(seed int64) bool {
		n, m, x, l := quickParams(seed)
		nb := MustNB(n, m, x, l)
		total := new(big.Int).Exp(big.NewInt(int64(m)), big.NewInt(int64(n)), nil)
		if nb.Sign() < 0 || nb.Cmp(total) > 0 {
			return false
		}
		return (nb.Cmp(total) == 0) == (l > x || l >= m)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: NB is monotone non-increasing in x and non-decreasing in ℓ.
func TestQuickNBMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(73))}
	f := func(seed int64) bool {
		n, m, x, l := quickParams(seed)
		nb := MustNB(n, m, x, l)
		if x+1 < n && MustNB(n, m, x+1, l).Cmp(nb) > 0 {
			return false
		}
		return MustNB(n, m, x, l+1).Cmp(nb) >= 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

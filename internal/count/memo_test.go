package count

import (
	"math/big"
	"sync"
	"testing"
)

// refNB recomputes NB(x,ℓ) straight from the Appendix-A organization with
// plain big.Int arithmetic and no memo tables — the independent oracle for
// the memoized implementation.
func refNB(n, m, x, l int) *big.Int {
	comb := func(a, b int) *big.Int {
		if b < 0 || b > a {
			return big.NewInt(0)
		}
		return new(big.Int).Binomial(int64(a), int64(b))
	}
	p := func(b, e int) *big.Int {
		return new(big.Int).Exp(big.NewInt(int64(b)), big.NewInt(int64(e)), nil)
	}
	surj := func(s, j int) *big.Int {
		if j < 0 || s < j {
			return big.NewInt(0)
		}
		if j == 0 {
			if s == 0 {
				return big.NewInt(1)
			}
			return big.NewInt(0)
		}
		total := new(big.Int)
		for i := 0; i <= j; i++ {
			term := new(big.Int).Mul(p(j-i, s), comb(j, i))
			if i%2 == 0 {
				total.Add(total, term)
			} else {
				total.Sub(total, term)
			}
		}
		return total
	}
	a := new(big.Int)
	for j := 1; j < l; j++ {
		a.Add(a, new(big.Int).Mul(comb(m, j), surj(n, j)))
	}
	b := new(big.Int)
	sMin := max(x+1, l)
	for w := 1; w <= m; w++ {
		upper := comb(m-w, l-1)
		if upper.Sign() == 0 {
			continue
		}
		inner := new(big.Int)
		for s := sMin; s <= n; s++ {
			term := new(big.Int).Mul(comb(n, s), surj(s, l))
			inner.Add(inner, term.Mul(term, p(w-1, n-s)))
		}
		b.Add(b, inner.Mul(inner, upper))
	}
	return a.Add(a, b)
}

// TestMemoConcurrentNB hammers NB from many goroutines over a shared memo
// table; run under -race this pins the guard on the package-level
// Comb/Surj/pow tables, and every result must agree with the unmemoized
// reference computation — a poisoned memo entry fails the comparison.
func TestMemoConcurrentNB(t *testing.T) {
	type q struct{ n, m, x, l int }
	cases := []q{
		{12, 5, 3, 1}, {12, 5, 3, 2}, {12, 5, 7, 2}, {15, 6, 4, 3},
		{15, 6, 9, 1}, {20, 7, 10, 2}, {20, 7, 5, 3}, {9, 4, 2, 2},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				c := cases[(g+rep)%len(cases)]
				if _, err := NB(c.n, c.m, c.x, c.l); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for _, c := range cases {
		got := MustNB(c.n, c.m, c.x, c.l)
		want := refNB(c.n, c.m, c.x, c.l)
		if got.Cmp(want) != 0 {
			t.Errorf("NB(%d,%d,%d,%d) = %v, unmemoized reference %v", c.n, c.m, c.x, c.l, got, want)
		}
	}
}

// TestMemoSnapshotPromotion hammers one memo table with a stream of fresh
// keys from many goroutines, forcing repeated dirty-overlay promotions and
// atomic snapshot swaps while readers race on the published map. Run under
// -race this pins the copy-on-write discipline (a published snapshot is
// never mutated); the value checks pin that promotion loses no entries and
// never hands out two different canonical values for one key.
func TestMemoSnapshotPromotion(t *testing.T) {
	var wg sync.WaitGroup
	const goroutines, span = 8, 300
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < span; i++ {
				// Overlapping windows: half the keys are shared with the
				// neighbor goroutine (racing on insert), half are fresh.
				n := 200 + (g*span/2+i)%400
				k := n / 3
				got := Comb(n, k)
				want := new(big.Int).Binomial(int64(n), int64(k))
				if got.Cmp(want) != 0 {
					t.Errorf("C(%d,%d) = %v, want %v", n, k, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Sequential re-read: everything promoted or parked must still agree.
	for n := 200; n < 600; n++ {
		k := n / 3
		if got, want := Comb(n, k), new(big.Int).Binomial(int64(n), int64(k)); got.Cmp(want) != 0 {
			t.Fatalf("post-race C(%d,%d) = %v, want %v", n, k, got, want)
		}
	}
}

// TestExportedCopiesAreOwned pins the public contract that Comb and Surj
// return freshly owned values a caller may mutate without corrupting the
// memo tables.
func TestExportedCopiesAreOwned(t *testing.T) {
	a := Comb(10, 4)
	a.SetInt64(-1)
	if got := Comb(10, 4).Int64(); got != 210 {
		t.Errorf("memoized C(10,4) corrupted by caller mutation: %d", got)
	}
	s := Surj(5, 2)
	s.SetInt64(-1)
	if got := Surj(5, 2).Int64(); got != 30 {
		t.Errorf("memoized Surj(5,2) corrupted by caller mutation: %d", got)
	}
}

package count

import (
	"math/big"
	"testing"
)

func TestComb(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{5, 2, 10}, {5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0}, {0, 0, 1},
	}
	for _, tc := range tests {
		if got := Comb(tc.n, tc.k).Int64(); got != tc.want {
			t.Errorf("C(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestSurj(t *testing.T) {
	tests := []struct {
		s, j int
		want int64
	}{
		{3, 1, 1}, {3, 2, 6}, {3, 3, 6}, {4, 2, 14}, {2, 3, 0},
		{0, 0, 1}, {1, 0, 0}, {5, 2, 30},
	}
	for _, tc := range tests {
		if got := Surj(tc.s, tc.j).Int64(); got != tc.want {
			t.Errorf("Surj(%d,%d) = %d, want %d", tc.s, tc.j, got, tc.want)
		}
	}
	// Identity: Σ_j C(m,j)·Surj(n,j) over j=1..m = m^n.
	n, m := 5, 3
	sum := new(big.Int)
	for j := 1; j <= m; j++ {
		sum.Add(sum, new(big.Int).Mul(Comb(m, j), Surj(n, j)))
	}
	if want := pow(m, n); sum.Cmp(want) != 0 {
		t.Errorf("surjection partition identity: %v, want %v", sum, want)
	}
}

// TestNBConsensusTelescopes checks the paper's observation that NB(0,1) =
// m^n (every vector trivially satisfies the density property at x = 0).
func TestNBConsensusTelescopes(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{3, 2}, {4, 3}, {5, 5}, {7, 2}} {
		got := NBConsensus(tc.n, tc.m, 0)
		if want := pow(tc.m, tc.n); got.Cmp(want) != 0 {
			t.Errorf("NB(0,1) for n=%d m=%d = %v, want m^n = %v", tc.n, tc.m, got, want)
		}
	}
}

// TestNBConsensusVsBruteForce cross-checks Theorem 3 against enumeration.
func TestNBConsensusVsBruteForce(t *testing.T) {
	for n := 2; n <= 5; n++ {
		for m := 1; m <= 4; m++ {
			for x := 0; x < n; x++ {
				got := NBConsensus(n, m, x).Int64()
				want := BruteForce(n, m, x, 1)
				if got != want {
					t.Errorf("NB(x=%d,1) n=%d m=%d: formula %d, brute force %d", x, n, m, got, want)
				}
			}
		}
	}
}

// TestNBMatchesConsensusAtL1 checks that the general Theorem-13 count
// agrees with the Theorem-3 closed form at ℓ = 1.
func TestNBMatchesConsensusAtL1(t *testing.T) {
	for n := 2; n <= 6; n++ {
		for m := 1; m <= 5; m++ {
			for x := 0; x < n; x++ {
				general := MustNB(n, m, x, 1)
				consensus := NBConsensus(n, m, x)
				if general.Cmp(consensus) != 0 {
					t.Errorf("NB(%d,%d,x=%d,ℓ=1) = %v, consensus form %v", n, m, x, general, consensus)
				}
			}
		}
	}
}

// TestNBVsBruteForce is the headline cross-check of Theorem 13: the
// combinatorial count equals enumeration on a full small grid.
func TestNBVsBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration grid")
	}
	for n := 2; n <= 5; n++ {
		for m := 1; m <= 4; m++ {
			for x := 0; x < n; x++ {
				for l := 1; l <= 3; l++ {
					got := MustNB(n, m, x, l).Int64()
					want := BruteForce(n, m, x, l)
					if got != want {
						t.Errorf("NB(n=%d,m=%d,x=%d,ℓ=%d): formula %d, brute force %d",
							n, m, x, l, got, want)
					}
				}
			}
		}
	}
}

// TestNBMonotone checks the monotonicity the hierarchies of Section 5 rest
// on: NB grows when x shrinks (Theorem 4 direction) and when ℓ grows
// (Theorem 6 direction).
func TestNBMonotone(t *testing.T) {
	n, m := 6, 4
	for l := 1; l <= 3; l++ {
		for x := 1; x < n; x++ {
			lo := MustNB(n, m, x, l)
			hi := MustNB(n, m, x-1, l)
			if lo.Cmp(hi) > 0 {
				t.Errorf("NB not monotone in x: NB(x=%d)=%v > NB(x=%d)=%v (ℓ=%d)", x, lo, x-1, hi, l)
			}
		}
	}
	for x := 0; x < n; x++ {
		for l := 2; l <= 4; l++ {
			lo := MustNB(n, m, x, l-1)
			hi := MustNB(n, m, x, l)
			if lo.Cmp(hi) > 0 {
				t.Errorf("NB not monotone in ℓ: NB(ℓ=%d)=%v > NB(ℓ=%d)=%v (x=%d)", l-1, lo, l, hi, x)
			}
		}
	}
}

// TestNBFullConditionBoundary checks Theorems 8/9 in counting form: the
// max_ℓ condition contains all m^n vectors iff ℓ > x.
func TestNBFullConditionBoundary(t *testing.T) {
	n, m := 5, 3
	for x := 0; x < n; x++ {
		for l := 1; l <= n; l++ {
			nb := MustNB(n, m, x, l)
			all := pow(m, n)
			isAll := nb.Cmp(all) == 0
			// ℓ ≥ m also yields everything: with at most m distinct values
			// present, the top-ℓ covers every entry.
			want := l > x || l >= m
			if isAll != want {
				t.Errorf("NB(n=%d,m=%d,x=%d,ℓ=%d)=%v, all=%v: full=%v, want %v",
					n, m, x, l, nb, all, isAll, want)
			}
		}
	}
}

func TestNBErrors(t *testing.T) {
	for _, tc := range []struct{ n, m, x, l int }{
		{0, 3, 0, 1}, {3, 0, 0, 1}, {3, 3, -1, 1}, {3, 3, 3, 1}, {3, 3, 0, 0},
	} {
		if _, err := NB(tc.n, tc.m, tc.x, tc.l); err == nil {
			t.Errorf("NB(%+v): want error", tc)
		}
	}
	if _, err := Fraction(0, 1, 0, 1); err == nil {
		t.Error("Fraction: want error")
	}
}

func TestFraction(t *testing.T) {
	// At x=0 the fraction is 1.
	f, err := Fraction(4, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1.0 {
		t.Errorf("Fraction(x=0) = %v, want 1", f)
	}
	// Fractions decrease with x.
	prev := 1.1
	for x := 0; x < 4; x++ {
		f, err := Fraction(4, 3, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		if f > prev {
			t.Errorf("fraction increased at x=%d: %v > %v", x, f, prev)
		}
		prev = f
	}
}

package count

import (
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"

	"kset/internal/condition"
	"kset/internal/kerr"
	"kset/internal/vector"
)

// The combinatorial kernels — binomials, surjection counts and integer
// powers — recur with identical arguments throughout a Theorem-13 table
// sweep, so each is backed by a package-level memo table. The tables hand
// out *shared* big integers that callers inside this package only read;
// the exported Comb and Surj return defensive copies so the public
// contract (a freshly owned value) is unchanged.
//
// Concurrency: reads load an atomically-swapped immutable snapshot map —
// no lock, no contention — so NB-heavy sweeps fanning out across
// goroutines never serialize on a table once it is warm. Writes go through
// a mutex into a small dirty overlay; when the overlay outgrows a fraction
// of the snapshot it is merged into a fresh map and the pointer swapped,
// which keeps total copying linear-amortized in the number of distinct
// entries. A snapshot map is never mutated after it is published.
type memoTable struct {
	clean atomic.Pointer[map[uint64]*big.Int] // immutable published snapshot
	mu    sync.Mutex                          // guards dirty and promotion
	dirty map[uint64]*big.Int                 // entries newer than the snapshot
}

func (t *memoTable) get(key uint64) (*big.Int, bool) {
	if m := t.clean.Load(); m != nil {
		if v, ok := (*m)[key]; ok {
			return v, true
		}
	}
	// Not yet promoted: the entry may still sit in the dirty overlay.
	t.mu.Lock()
	v, ok := t.dirty[key]
	t.mu.Unlock()
	return v, ok
}

func (t *memoTable) put(key uint64, v *big.Int) *big.Int {
	t.mu.Lock()
	defer t.mu.Unlock()
	cleanLen := 0
	if m := t.clean.Load(); m != nil {
		if prior, ok := (*m)[key]; ok {
			return prior // another goroutine raced us; keep one canonical value
		}
		cleanLen = len(*m)
	}
	if prior, ok := t.dirty[key]; ok {
		return prior
	}
	if t.dirty == nil {
		t.dirty = make(map[uint64]*big.Int)
	}
	t.dirty[key] = v
	if len(t.dirty) >= 16+cleanLen/4 {
		next := make(map[uint64]*big.Int, cleanLen+len(t.dirty))
		if m := t.clean.Load(); m != nil {
			for k, vv := range *m {
				next[k] = vv
			}
		}
		for k, vv := range t.dirty {
			next[k] = vv
		}
		t.clean.Store(&next)
		t.dirty = make(map[uint64]*big.Int)
	}
	return v
}

func memoKey(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

var (
	combMemo memoTable
	surjMemo memoTable
	powMemo  memoTable
)

// combShared returns the memoized C(n,k); the result is shared and must
// not be mutated.
func combShared(n, k int) *big.Int {
	if k < 0 || k > n {
		return bigZero
	}
	key := memoKey(n, k)
	if v, ok := combMemo.get(key); ok {
		return v
	}
	return combMemo.put(key, new(big.Int).Binomial(int64(n), int64(k)))
}

// surjShared returns the memoized number of surjections from an s-element
// set onto a j-element set; the result is shared and must not be mutated.
func surjShared(s, j int) *big.Int {
	if j < 0 || s < j {
		return bigZero
	}
	if j == 0 {
		if s == 0 {
			return bigOne
		}
		return bigZero
	}
	key := memoKey(s, j)
	if v, ok := surjMemo.get(key); ok {
		return v
	}
	// Σ_i (−1)^i C(j,i)(j−i)^s, with big.Int scratch reused across terms.
	total := new(big.Int)
	term := new(big.Int)
	for i := 0; i <= j; i++ {
		term.Mul(powShared(j-i, s), combShared(j, i))
		if i%2 == 0 {
			total.Add(total, term)
		} else {
			total.Sub(total, term)
		}
	}
	return surjMemo.put(key, total)
}

// powShared returns the memoized b^e with the convention 0^0 = 1; the
// result is shared and must not be mutated.
func powShared(b, e int) *big.Int {
	key := memoKey(b, e)
	if v, ok := powMemo.get(key); ok {
		return v
	}
	p := new(big.Int).Exp(big.NewInt(int64(b)), big.NewInt(int64(e)), nil)
	return powMemo.put(key, p)
}

var (
	bigZero = big.NewInt(0)
	bigOne  = big.NewInt(1)
)

// Comb returns the binomial coefficient C(n,k) as a big integer; zero when
// k < 0 or k > n.
func Comb(n, k int) *big.Int {
	return new(big.Int).Set(combShared(n, k))
}

// Surj returns the number of surjections from an s-element set onto a
// j-element set: Σ_i (−1)^i C(j,i)(j−i)^s.
func Surj(s, j int) *big.Int {
	return new(big.Int).Set(surjShared(s, j))
}

// pow returns a freshly owned b^e with the convention 0^0 = 1.
func pow(b, e int) *big.Int {
	return new(big.Int).Set(powShared(b, e))
}

// NBConsensus returns NB(x,1) by Theorem 3's closed form:
//
//	NB(x,1) = Σ_{v=1..m} Σ_{β=x+1..n} C(n,β)·(v−1)^{n−β}.
//
// v ranges over the greatest value of the vector, β over its number of
// occurrences (the density property demands β > x), and (v−1)^{n−β} places
// the smaller values. At x = 0 the sum telescopes to m^n.
func NBConsensus(n, m, x int) *big.Int {
	total := new(big.Int)
	term := new(big.Int)
	for v := 1; v <= m; v++ {
		for beta := x + 1; beta <= n; beta++ {
			total.Add(total, term.Mul(combShared(n, beta), powShared(v-1, n-beta)))
		}
	}
	return total
}

// NB returns NB(x,ℓ), the number of vectors in the (x,ℓ)-legal condition
// generated by max_ℓ (Theorem 13). The count splits, as in Appendix A, into
//
//   - A: vectors with fewer than ℓ distinct values — all belong (their
//     recognized values occupy every entry, and x < n);
//
//   - B: vectors with at least ℓ distinct values whose ℓ greatest values
//     occupy s > x entries, enumerated over w (the smallest of the ℓ
//     greatest values; the remaining ℓ−1 top values are chosen above w and
//     the n−s other entries range below w):
//
//     B = Σ_{w=1..m} C(m−w, ℓ−1) · Σ_{s=max(x+1,ℓ)..n} C(n,s)·Surj(s,ℓ)·(w−1)^{n−s}.
func NB(n, m, x, l int) (*big.Int, error) {
	switch {
	case n < 1 || m < 1 || l < 1:
		return nil, fmt.Errorf("count: NB(n=%d, m=%d, x=%d, ℓ=%d): n, m, ℓ must be ≥ 1: %w", n, m, x, l, kerr.ErrBadParams)
	case x < 0 || x >= n:
		return nil, fmt.Errorf("count: NB(x=%d): want 0 ≤ x < n=%d: %w", x, n, kerr.ErrBadParams)
	}

	// A: fewer than ℓ distinct values: Σ_{j<ℓ} C(m,j)·Surj(n,j).
	a := new(big.Int)
	term := new(big.Int)
	for j := 1; j < l; j++ {
		a.Add(a, term.Mul(combShared(m, j), surjShared(n, j)))
	}

	// B: at least ℓ distinct values with dense top-ℓ.
	b := new(big.Int)
	sMin := max(x+1, l)
	// C(n,s)·Surj(s,ℓ) does not depend on w: hoist the table out of the w
	// loop so each entry is computed once per NB call (and, through the
	// memo tables, amortizes further across a swept table).
	table := make([]*big.Int, n+1)
	for s := sMin; s <= n; s++ {
		table[s] = new(big.Int).Mul(combShared(n, s), surjShared(s, l))
	}
	inner := new(big.Int)
	for w := 1; w <= m; w++ {
		upper := combShared(m-w, l-1)
		if upper.Sign() == 0 {
			continue
		}
		inner.SetInt64(0)
		for s := sMin; s <= n; s++ {
			inner.Add(inner, term.Mul(table[s], powShared(w-1, n-s)))
		}
		b.Add(b, inner.Mul(inner, upper))
	}

	return a.Add(a, b), nil
}

// MustNB is NB that panics on error.
func MustNB(n, m, x, l int) *big.Int {
	v, err := NB(n, m, x, l)
	if err != nil {
		panic(err)
	}
	return v
}

// BruteForce counts the members of the max_ℓ-generated (x,ℓ)-legal
// condition by enumerating {1..m}^n. It is exponential and exists to
// cross-check NB in tests and experiments.
func BruteForce(n, m, x, l int) int64 {
	c := condition.MustNewMax(n, m, x, l)
	var count int64
	vector.ForEach(n, m, func(i vector.Vector) bool {
		if c.Contains(i) {
			count++
		}
		return true
	})
	return count
}

// Fraction returns NB(x,ℓ)/m^n as a float: the share of all input vectors
// the max_ℓ condition admits. It quantifies the paper's size/speed
// tradeoff (Section 5): smaller x (larger condition degree d = t−x) admits
// more vectors.
func Fraction(n, m, x, l int) (float64, error) {
	nb, err := NB(n, m, x, l)
	if err != nil {
		return 0, err
	}
	total := pow(m, n)
	f, _ := new(big.Float).Quo(new(big.Float).SetInt(nb), new(big.Float).SetInt(total)).Float64()
	return f, nil
}

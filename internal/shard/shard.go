package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"kset/internal/stats"
)

// Version is the checkpoint wire-format version this build encodes, and
// the only one Decode accepts: a checkpoint written by an incompatible
// build must fail loudly at resume time, not merge garbage silently.
const Version = 1

// ErrBadCheckpoint marks a checkpoint or cursor that failed decoding or
// validation: malformed JSON, unknown fields, trailing bytes, a version
// this build does not read, or a cursor/progress pair that contradicts
// itself. Returned (wrapped) by Decode, Encode and the Validate methods.
var ErrBadCheckpoint = errors.New("shard: bad checkpoint")

// Plan is the deterministic partition of Total stream items into K
// contiguous, disjoint, collectively exhaustive index ranges. Shard
// sizes differ by at most one (the first Total mod K shards get the
// extra item), so the partition is balanced and depends only on
// (Total, K) — every process that computes the same plan agrees on
// every shard boundary without coordination.
type Plan struct {
	// Total is the number of items partitioned.
	Total int64 `json:"total"`
	// K is the number of shards.
	K int `json:"k"`
}

// NewPlan validates and returns the partition of total items into k
// shards. A negative total or k < 1 is an error; k may exceed total, in
// which case the surplus shards are empty.
func NewPlan(total int64, k int) (Plan, error) {
	if total < 0 || k < 1 {
		return Plan{}, fmt.Errorf("shard: bad plan: total=%d k=%d", total, k)
	}
	return Plan{Total: total, K: k}, nil
}

// Bounds returns shard i's half-open index range [lo, hi). It panics
// when i is outside [0, K) — plans are validated at construction, so an
// out-of-range shard index is a caller bug, not an input error.
func (p Plan) Bounds(i int) (lo, hi int64) {
	if i < 0 || i >= p.K {
		panic(fmt.Sprintf("shard: index %d outside plan of %d shards", i, p.K))
	}
	base, rem := p.Total/int64(p.K), p.Total%int64(p.K)
	lo = int64(i)*base + min(int64(i), rem)
	hi = lo + base
	if int64(i) < rem {
		hi++
	}
	return lo, hi
}

// Cursor returns shard i's range as a serializable cursor.
func (p Plan) Cursor(i int) Cursor {
	lo, hi := p.Bounds(i)
	return Cursor{Lo: lo, Hi: hi}
}

// Cursor addresses the half-open index range [Lo, Hi) of a deterministic
// scenario stream: the serializable identity of one campaign shard.
// Because every source in the root package is deterministic and
// re-iterable, a cursor plus the source's construction parameters fully
// determine the shard's scenarios — across processes and machines.
type Cursor struct {
	// Lo is the first stream index the cursor covers.
	Lo int64 `json:"lo"`
	// Hi is the first stream index past the cursor (exclusive).
	Hi int64 `json:"hi"`
}

// Len returns the number of stream items the cursor covers.
func (c Cursor) Len() int64 { return c.Hi - c.Lo }

// Validate checks the cursor's internal consistency: 0 ≤ Lo ≤ Hi.
func (c Cursor) Validate() error {
	if c.Lo < 0 || c.Hi < c.Lo {
		return fmt.Errorf("%w: cursor [%d, %d)", ErrBadCheckpoint, c.Lo, c.Hi)
	}
	return nil
}

// Checkpoint is the resumable state of a partially executed campaign
// shard: the shard's cursor, the number of runs already completed within
// it (always a prefix — chunked execution never checkpoints mid-chunk),
// and a snapshot of the results accumulated over exactly those runs.
// Resuming from a checkpoint and running to completion reproduces the
// uninterrupted run's accumulator byte for byte, because the remaining
// runs fold into the snapshot the same way they would have folded into
// the live accumulator.
type Checkpoint struct {
	// Version is the wire-format version (see Version).
	Version int `json:"version"`
	// Cursor is the shard this checkpoint belongs to.
	Cursor Cursor `json:"cursor"`
	// RunsDone is the number of runs completed: the shard's scenarios
	// with stream indices in [Cursor.Lo, Cursor.Lo+RunsDone) have run and
	// are covered by Stats.
	RunsDone int64 `json:"runs_done"`
	// Stats is the accumulator snapshot over the completed runs (nil
	// stands for the empty accumulator).
	Stats *stats.Accumulator `json:"stats,omitempty"`
}

// Validate checks the envelope's internal consistency: the version must
// be this build's, the cursor well-formed, and RunsDone within it.
func (c Checkpoint) Validate() error {
	if c.Version != Version {
		return fmt.Errorf("%w: version %d (this build reads version %d)",
			ErrBadCheckpoint, c.Version, Version)
	}
	if err := c.Cursor.Validate(); err != nil {
		return err
	}
	if c.RunsDone < 0 || c.RunsDone > c.Cursor.Len() {
		return fmt.Errorf("%w: runs_done %d outside cursor [%d, %d)",
			ErrBadCheckpoint, c.RunsDone, c.Cursor.Lo, c.Cursor.Hi)
	}
	return nil
}

// Encode renders the checkpoint as its canonical JSON encoding,
// validating first so a corrupt envelope can never be persisted. The
// encoding is byte-deterministic for a fixed checkpoint (struct field
// order; the accumulator's map keys are sorted by encoding/json).
func (c Checkpoint) Encode() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// Decode parses and validates a checkpoint encoding. Decoding is strict:
// malformed or truncated JSON, unknown fields (the shape version skew
// takes when a future build adds fields), trailing bytes and failed
// Validate checks all return errors wrapping ErrBadCheckpoint. Decode
// never panics, and allocates proportionally to the input, so arbitrary
// bytes — a corrupt checkpoint file — are safe to feed it.
func Decode(data []byte) (Checkpoint, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Checkpoint
	if err := dec.Decode(&c); err != nil {
		return Checkpoint{}, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return Checkpoint{}, fmt.Errorf("%w: trailing data after envelope", ErrBadCheckpoint)
	}
	if err := c.Validate(); err != nil {
		return Checkpoint{}, err
	}
	return c, nil
}

// Package shard is the wire layer of sharded, resumable campaigns: the
// deterministic arithmetic that partitions a scenario stream into K
// disjoint, collectively exhaustive contiguous ranges (Plan), the
// serializable address of one such range (Cursor), and the versioned
// checkpoint envelope (Checkpoint) pairing a cursor with the results
// accumulated so far and the number of runs they cover.
//
// The package deliberately knows nothing about scenario generation or
// execution — it only speaks indices and accumulator snapshots. The root
// package maps cursors onto live ScenarioSource streams (kset.Range and
// friends), runs them, and folds the per-shard accumulators back together
// with stats.Accumulator.Merge, whose commutativity is what makes any
// sharding of a campaign byte-identical to the single-process run.
//
// Checkpoint encoding is strict by construction: Decode rejects malformed
// JSON, unknown fields, trailing bytes, version skew and inconsistent
// cursors with errors wrapping ErrBadCheckpoint, and never panics —
// a checkpoint file is the one input a week-long sweep must survive
// re-reading after a crash.
package shard

package shard

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"kset/internal/stats"
)

// TestPlanPartition checks the partition law on a grid of (total, k):
// shard bounds are contiguous, disjoint, collectively exhaustive, and
// balanced to within one item.
func TestPlanPartition(t *testing.T) {
	for _, total := range []int64{0, 1, 2, 5, 7, 16, 100, 101, 1 << 40} {
		for _, k := range []int{1, 2, 3, 7, 16, 64} {
			p, err := NewPlan(total, k)
			if err != nil {
				t.Fatalf("NewPlan(%d, %d): %v", total, k, err)
			}
			next, minLen, maxLen := int64(0), int64(1)<<62, int64(0)
			for i := 0; i < k; i++ {
				lo, hi := p.Bounds(i)
				if lo != next || hi < lo {
					t.Fatalf("plan(%d,%d) shard %d = [%d,%d), want lo %d", total, k, i, lo, hi, next)
				}
				if c := p.Cursor(i); c.Lo != lo || c.Hi != hi {
					t.Fatalf("Cursor(%d) = %+v, want [%d,%d)", i, c, lo, hi)
				}
				minLen, maxLen = min(minLen, hi-lo), max(maxLen, hi-lo)
				next = hi
			}
			if next != total {
				t.Fatalf("plan(%d,%d) covers [0,%d), want [0,%d)", total, k, next, total)
			}
			if maxLen-minLen > 1 {
				t.Fatalf("plan(%d,%d) unbalanced: shard lengths span [%d,%d]", total, k, minLen, maxLen)
			}
		}
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(-1, 2); err == nil {
		t.Error("NewPlan(-1, 2) accepted a negative total")
	}
	if _, err := NewPlan(5, 0); err == nil {
		t.Error("NewPlan(5, 0) accepted k=0")
	}
	// More shards than items: the surplus shards are empty, not an error.
	p, err := NewPlan(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 5; i++ {
		if lo, hi := p.Bounds(i); lo != hi {
			t.Errorf("surplus shard %d = [%d,%d), want empty", i, lo, hi)
		}
	}
}

func TestBoundsPanicsOutsidePlan(t *testing.T) {
	p, _ := NewPlan(10, 3)
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bounds(%d) did not panic", i)
				}
			}()
			p.Bounds(i)
		}()
	}
}

// sampleCheckpoint builds a non-trivial, valid checkpoint: a cursor mid
// plan plus an accumulator with histogram, summaries and breakdowns.
func sampleCheckpoint() Checkpoint {
	acc := stats.NewAccumulator()
	acc.Observe(stats.Observation{Round: 2, Messages: 36, Decided: 6, InCondition: true, Executor: "figure2", Label: "a"})
	acc.Observe(stats.Observation{Round: 3, Messages: 30, Crashes: 1, Decided: 5, Executor: "early"})
	acc.Observe(stats.Observation{Err: true, Executor: "early"})
	return Checkpoint{Version: Version, Cursor: Cursor{Lo: 10, Hi: 30}, RunsDone: 3, Stats: acc}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	data, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	re, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, re) {
		t.Fatalf("decode→encode not byte-identical:\n%s\nvs\n%s", data, re)
	}
	if got.Cursor != cp.Cursor || got.RunsDone != cp.RunsDone || got.Stats.Runs != 3 {
		t.Fatalf("round-trip mangled the envelope: %+v", got)
	}
}

func TestCheckpointValidate(t *testing.T) {
	cases := []struct {
		name string
		cp   Checkpoint
		ok   bool
	}{
		{"valid empty", Checkpoint{Version: Version, Cursor: Cursor{Lo: 0, Hi: 0}}, true},
		{"valid full", Checkpoint{Version: Version, Cursor: Cursor{Lo: 2, Hi: 7}, RunsDone: 5}, true},
		{"version zero", Checkpoint{Cursor: Cursor{Lo: 0, Hi: 1}}, false},
		{"version future", Checkpoint{Version: Version + 1, Cursor: Cursor{Lo: 0, Hi: 1}}, false},
		{"negative lo", Checkpoint{Version: Version, Cursor: Cursor{Lo: -1, Hi: 1}}, false},
		{"hi below lo", Checkpoint{Version: Version, Cursor: Cursor{Lo: 3, Hi: 2}}, false},
		{"negative runs", Checkpoint{Version: Version, Cursor: Cursor{Lo: 0, Hi: 5}, RunsDone: -1}, false},
		{"runs past cursor", Checkpoint{Version: Version, Cursor: Cursor{Lo: 0, Hi: 5}, RunsDone: 6}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cp.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() accepted an invalid checkpoint")
				}
				if !errors.Is(err, ErrBadCheckpoint) {
					t.Fatalf("error %v does not wrap ErrBadCheckpoint", err)
				}
				if _, encErr := tc.cp.Encode(); encErr == nil {
					t.Fatal("Encode() persisted an invalid checkpoint")
				}
			}
		})
	}
}

// TestDecodeRejects pins the strict-decode contract: every malformed,
// skewed or inconsistent input errors with ErrBadCheckpoint.
func TestDecodeRejects(t *testing.T) {
	valid, err := sampleCheckpoint().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"garbage", "not json"},
		{"truncated", string(valid[:len(valid)/2])},
		{"trailing data", string(valid) + "{}"},
		{"trailing garbage", string(valid) + "x"},
		{"unknown field", `{"version":1,"cursor":{"lo":0,"hi":1},"runs_done":0,"surprise":1}`},
		{"version skew", strings.Replace(string(valid), `"version":1`, `"version":99`, 1)},
		{"bad cursor", `{"version":1,"cursor":{"lo":5,"hi":2},"runs_done":0}`},
		{"runs past cursor", `{"version":1,"cursor":{"lo":0,"hi":2},"runs_done":3}`},
		{"wrong type", `{"version":"1","cursor":{"lo":0,"hi":1},"runs_done":0}`},
		{"null", `null`},
		{"array", `[1,2]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode([]byte(tc.data)); !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("Decode(%q) = %v, want ErrBadCheckpoint", tc.data, err)
			}
		})
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("Decode(valid) = %v", err)
	}
}

package shard

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCheckpointDecode feeds the strict checkpoint decoder arbitrary
// bytes: it must never panic, reject everything invalid with
// ErrBadCheckpoint, and round-trip everything it accepts byte-
// identically — the crash-tolerance contract of a decoder whose one job
// is re-reading a possibly corrupt file after a crash.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := sampleCheckpoint().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"version":1,"cursor":{"lo":0,"hi":0},"runs_done":0}`))
	f.Add([]byte(`{"version":99,"cursor":{"lo":0,"hi":1},"runs_done":0}`))
	f.Add([]byte(`{"version":1,"cursor":{"lo":9,"hi":2},"runs_done":0}`))
	f.Add([]byte(`{"version":1,"cursor":{"lo":0,"hi":1},"runs_done":0,"extra":true}`))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte{}, valid...), '0'))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[{}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("Decode error %v does not wrap ErrBadCheckpoint", err)
			}
			return
		}
		// Whatever the decoder accepts must be valid and re-encodable,
		// and the re-encoding must decode to the same envelope bytes.
		enc, err := cp.Encode()
		if err != nil {
			t.Fatalf("accepted checkpoint fails Encode: %v", err)
		}
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoding fails Decode: %v", err)
		}
		re, err := again.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("encode→decode→encode not stable:\n%s\nvs\n%s", enc, re)
		}
	})
}

// Package rounds implements the synchronous round-based message-passing
// model of the paper's Section 6.2: computation proceeds in rounds made of
// a send phase, a receive phase and a compute phase; a message sent in
// round r is received in round r; processes fail by crashing.
//
// Crash semantics follow the paper's refinement of the standard model:
// every process sends its round messages in a predetermined order
// (p_1, …, p_n in round 1), and a process that crashes during its send
// phase delivers only a prefix of them. Round 1's fixed order is what makes
// the processes' views of the input vector totally ordered by containment —
// the property the Figure-2 algorithm's agreement argument builds on.
// In later rounds the adversary may reorder deliveries (the paper permits
// any order after round 1).
//
// Two executors with identical semantics are provided: a deterministic
// in-line executor used for exhaustive adversary model checking, and a
// goroutine-per-process executor exercised under the race detector.
//
// Paper map:
//
//	Section 6.2   the model: rounds, prefix-send crashes, FailurePattern
//	Section 6.3   the view-containment invariant round 1 establishes
//
// The Engine is the module's synchronous hot path: it reuses its n×n
// message matrix and per-round buffers across runs (RunInto + Result.Reset
// make stats-only campaign runs allocation-free), with a shared-row fast
// path for rounds in which no sender crashed.
//
// Message delivery itself sits behind the Transport seam: the engine
// applies the crash adversary to each round's sends (order and prefix
// length) and hands the surviving copies to a Transport, which decides
// what each destination receives. The canonical MatrixTransport is the
// reliable n×n matrix the model prescribes — Options.Transport == nil
// selects it, and crash-only runs bypass even its indirection on the
// shared-row fast path, so the seam costs nothing (gated at 0 allocs/run
// by BenchmarkEngineTransport in scripts/benchgate.sh). Package faultnet
// plugs in the lossy alternative: a transport may drop, delay by whole
// rounds, duplicate or reorder copies, report its tampering through the
// optional FaultCounter interface, and retain payloads past their send
// round by freezing them (Freezer) instead of aliasing sender-reused
// buffers.
package rounds

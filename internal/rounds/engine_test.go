package rounds

import (
	"math/rand"
	"testing"

	"kset/internal/vector"
)

func resultsEqual(a, b *Result) bool {
	if len(a.Decisions) != len(b.Decisions) || a.Rounds != b.Rounds ||
		a.MessagesDelivered != b.MessagesDelivered || len(a.Crashed) != len(b.Crashed) {
		return false
	}
	for id, v := range a.Decisions {
		if b.Decisions[id] != v || a.DecisionRound[id] != b.DecisionRound[id] {
			return false
		}
	}
	for id := range a.Crashed {
		if !b.Crashed[id] {
			return false
		}
	}
	return true
}

func randPattern(r *rand.Rand, n, t, maxRounds int) FailurePattern {
	fp := FailurePattern{Crashes: make(map[ProcessID]Crash)}
	perm := r.Perm(n)
	for i := 0; i < r.Intn(t+1); i++ {
		fp.Crashes[ProcessID(perm[i]+1)] = Crash{
			Round:      1 + r.Intn(maxRounds),
			AfterSends: r.Intn(n + 1),
		}
	}
	return fp
}

// TestEngineSharedRowMatchesMatrix cross-checks the shared-row fast path
// against the n×n-matrix executor (forced via tracing) and the concurrent
// executor over randomized failure patterns: all three must produce
// identical results.
func TestEngineSharedRowMatchesMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(6)
		maxRounds := 1 + r.Intn(4)
		fp := randPattern(r, n, n-1, maxRounds)
		vals := make([]vector.Value, n)
		for i := range vals {
			vals[i] = vector.Value(1 + r.Intn(5))
		}
		decideAt := 1 + r.Intn(maxRounds)

		fast, err := Run(newFloodRun(vals, decideAt), fp, Options{MaxRounds: maxRounds})
		if err != nil {
			t.Fatal(err)
		}
		var trace Trace
		matrix, err := Run(newFloodRun(vals, decideAt), fp, Options{MaxRounds: maxRounds, Trace: &trace})
		if err != nil {
			t.Fatal(err)
		}
		conc, err := Run(newFloodRun(vals, decideAt), fp, Options{MaxRounds: maxRounds, Concurrent: true})
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(fast, matrix) {
			t.Fatalf("row path diverged from matrix path: fp=%+v vals=%v\nrow:    %+v\nmatrix: %+v",
				fp, vals, fast, matrix)
		}
		if !resultsEqual(fast, conc) {
			t.Fatalf("row path diverged from concurrent executor: fp=%+v vals=%v\nrow:  %+v\nconc: %+v",
				fp, vals, fast, conc)
		}
	}
}

// TestEngineReuse runs one Engine across runs of different sizes and
// checks each result against a fresh one-shot Run.
func TestEngineReuse(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(12))
	for _, n := range []int{6, 2, 8, 3, 8, 5} {
		fp := randPattern(r, n, n-1, 3)
		vals := make([]vector.Value, n)
		for i := range vals {
			vals[i] = vector.Value(1 + r.Intn(4))
		}
		got, err := e.Run(newFloodRun(vals, 2), fp, Options{MaxRounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(newFloodRun(vals, 2), fp, Options{MaxRounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(got, want) {
			t.Fatalf("n=%d: reused engine %+v, fresh run %+v", n, got, want)
		}
	}
}

// TestEngineResultSurvivesReuse pins the Run contract that a returned
// Result is unaffected by later runs on the same engine.
func TestEngineResultSurvivesReuse(t *testing.T) {
	e := NewEngine()
	first, err := e.Run(newFloodRun([]vector.Value{3, 1, 2}, 1), FailurePattern{}, Options{MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(newFloodRun([]vector.Value{9, 9, 9, 9}, 1), FailurePattern{}, Options{MaxRounds: 2}); err != nil {
		t.Fatal(err)
	}
	if len(first.Decisions) != 3 || first.Decisions[1] != 1 {
		t.Fatalf("first result mutated by engine reuse: %+v", first)
	}
}

// TestEngineRoundAllocBudget pins the per-run allocation budget of a
// reused engine: one Result plus its three maps (whose bucket allocation
// brings the observed count to ~11 at n=16), nothing per round or per
// message — the old executor allocated the n×n matrix and a send order per
// sender every round.
func TestEngineRoundAllocBudget(t *testing.T) {
	const n = 16
	vals := make([]vector.Value, n)
	for i := range vals {
		vals[i] = vector.Value(1 + i%7)
	}
	e := NewEngine()
	procs := newFloodRun(vals, 1) // state reaches its fixpoint after run 1
	if _, err := e.Run(procs, FailurePattern{}, Options{MaxRounds: 1}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := e.Run(procs, FailurePattern{}, Options{MaxRounds: 1}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 12 {
		t.Errorf("engine round allocates %.1f times per run, want ≤ 12", avg)
	}
}

package rounds

import (
	"fmt"
	"sort"
	"strings"

	"kset/internal/vector"
)

// Trace records an execution round by round. Pass one in Options to have
// Run populate it; Render draws the paper-style round diagram that makes
// send prefixes, state flooding and decision points visible.
type Trace struct {
	// N is the number of processes (set by Run).
	N int
	// Rounds holds one entry per executed round.
	Rounds []RoundTrace
}

// RoundTrace is one round's events.
type RoundTrace struct {
	// Round is the 1-based round number.
	Round int
	// Sends maps each sender to its payload and delivery count.
	Sends map[ProcessID]SendTrace
	// Decisions maps deciders to decided values.
	Decisions map[ProcessID]vector.Value
	// Crashes lists the processes that crashed during this round.
	Crashes []ProcessID
}

// SendTrace is one process's send phase.
type SendTrace struct {
	// Payload is the rendered message content.
	Payload string
	// Delivered is how many of the n copies were delivered.
	Delivered int
}

// Render draws the trace as a per-round table.
func (tr *Trace) Render() string {
	var b strings.Builder
	for _, rt := range tr.Rounds {
		fmt.Fprintf(&b, "round %d\n", rt.Round)
		ids := make([]int, 0, len(rt.Sends))
		for id := range rt.Sends {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			st := rt.Sends[ProcessID(id)]
			status := ""
			if st.Delivered < tr.N {
				status = fmt.Sprintf("  [crashed after %d/%d sends]", st.Delivered, tr.N)
			}
			fmt.Fprintf(&b, "  p%-3d sends %s%s\n", id, st.Payload, status)
		}
		if len(rt.Crashes) > 0 {
			crashed := make([]string, 0, len(rt.Crashes))
			for _, id := range rt.Crashes {
				crashed = append(crashed, fmt.Sprintf("p%d", id))
			}
			sort.Strings(crashed)
			fmt.Fprintf(&b, "  crashed: %s\n", strings.Join(crashed, " "))
		}
		dids := make([]int, 0, len(rt.Decisions))
		for id := range rt.Decisions {
			dids = append(dids, int(id))
		}
		sort.Ints(dids)
		for _, id := range dids {
			fmt.Fprintf(&b, "  p%-3d DECIDES %v\n", id, rt.Decisions[ProcessID(id)])
		}
	}
	return b.String()
}

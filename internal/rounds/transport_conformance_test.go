package rounds_test

import (
	"testing"

	"kset/internal/rounds"
	"kset/internal/rounds/transporttest"
)

// TestMatrixTransportConformance pins the canonical reliable transport to
// the shared Reset/BeginRound/Send/Deliver contract every implementation
// must satisfy.
func TestMatrixTransportConformance(t *testing.T) {
	transporttest.Run(t, func(testing.TB, int) rounds.Transport {
		return &rounds.MatrixTransport{}
	})
}

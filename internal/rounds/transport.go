package rounds

// Transport abstracts how one round's sends reach their destinations. The
// engine owns the crash adversary — it decides who sends, in which order,
// and how long a crashing sender's delivery prefix is — and hands the
// resulting deliveries to the transport; the transport owns everything
// that happens to a message between send and receive. The canonical
// implementation is MatrixTransport (the paper's reliable synchronous
// network: every handed-over copy arrives in the same round); faultnet's
// Transport drops, delays, duplicates and reorders copies instead.
//
// The engine drives a transport in lock step, never concurrently:
// Reset(n) once per run, then per round one BeginRound, the round's Send
// calls (senders in ascending ID order), and one Deliver per live
// destination (in ascending ID order; crashed and halted destinations are
// skipped, so a transport must not require that every round's sends are
// drained). A transport may therefore reuse all of its internal scratch
// across rounds and runs. The same contract binds every implementation —
// MatrixTransport, faultnet's fault injector, and the wire plane's
// codec-backed transports — and is pinned by the shared conformance suite
// in internal/rounds/transporttest:
//
//   - Reset(n) clears all in-flight state and zeroes Delivered.
//   - A copy handed to Send for destination d in round r is observable
//     only through Deliver(r', d, …): reliable transports surface it at
//     r' = r exactly once; faulty ones may drop, delay or duplicate it,
//     but never mutate it, reorder it onto another destination, or leak
//     it into a Deliver row of a different destination.
//   - Deliver fills the whole row: entries of processes that sent this
//     destination nothing this round are nil, never stale.
//   - Deliver may block (a wire transport waiting on sockets), but must
//     return within its configured deadline and honor a cancel channel
//     installed via CancelAware — the engine's liveness rests on every
//     blocking wait being bounded.
type Transport interface {
	// Reset prepares the transport for a fresh run over n processes,
	// clearing in-flight state and counters.
	Reset(n int)
	// BeginRound opens round r (r ≥ 1, strictly increasing within a run),
	// before any of the round's Send calls.
	BeginRound(r int)
	// Send hands over one sender's broadcast of round r: one copy of
	// payload addressed to each of the first limit destinations of order
	// (the engine has already applied the crash adversary to compute
	// both). order must be treated as read-only; payload is valid for the
	// current round only — a transport that retains it longer must
	// Freeze it (see Freezer).
	Send(r int, src ProcessID, payload any, order []ProcessID, limit int)
	// Deliver fills row — row[i] is the payload arriving at dst from
	// process i+1, nil if none — with round r's arrivals for dst. The
	// engine calls it once per live destination per round; the filled row
	// is consumed by the destination's Step before the next Deliver on
	// the non-concurrent path, and before the next round either way.
	Deliver(r int, dst ProcessID, row []any)
	// Delivered returns the number of message copies the transport has
	// accepted for delivery since Reset. For MatrixTransport this is
	// exactly the number of copies delivered; a faulty transport counts
	// copies it accepted (losses excluded, duplicates included), even if
	// a delayed copy is still in flight when the run ends.
	Delivered() int64
}

// Freezer is implemented by payloads that are only valid for the round
// they were sent in (protocols reuse one message buffer per process).
// A Transport that retains a payload past its round — delaying or
// duplicating it into a later round — must call Freeze and retain the
// returned copy instead.
type Freezer interface {
	// Freeze returns a copy of the payload that remains valid
	// indefinitely.
	Freeze() any
}

// CancelAware is implemented by transports whose Deliver blocks on
// external progress — the wire plane's socket transports above all. The
// engine installs the run's Options.Cancel channel before the first round
// so that every blocking wait inside the transport can select on it and
// return early; the engine itself then observes the cancellation at the
// next round boundary. A nil channel must be accepted (and never waited
// on).
type CancelAware interface {
	// SetCancel installs the run's cancellation channel (nil for none).
	SetCancel(cancel <-chan struct{})
}

// FaultCounter is implemented by transports that inject faults; the
// engine reads the counters after a run into Result.Lost, Result.Delayed
// and Result.Duplicated.
type FaultCounter interface {
	// FaultCounts returns the number of message copies lost, delayed and
	// duplicated since Reset.
	FaultCounts() (lost, delayed, duplicated int64)
}

// MatrixTransport is the reliable synchronous network of the paper's
// model: every copy handed over by Send is delivered in the same round,
// stored in an n×n payload matrix. It is the engine's default transport
// and the baseline every fault-injecting transport degrades from. The
// zero value is ready to use; buffers grow to the largest n seen and are
// reused across runs, so a warm transport adds no per-run allocation.
type MatrixTransport struct {
	n         int
	mat       []any // mat[(dst-1)*n+(src-1)] = payload
	delivered int64
}

// Reset implements Transport.
func (t *MatrixTransport) Reset(n int) {
	if cap(t.mat) < n*n {
		t.mat = make([]any, n*n)
	}
	t.mat = t.mat[:n*n]
	t.n = n
	t.delivered = 0
	clear(t.mat)
}

// BeginRound implements Transport: the matrix is cleared, since every
// arrival of the previous round was consumed.
func (t *MatrixTransport) BeginRound(int) { clear(t.mat) }

// Send implements Transport: each of the limit copies lands in the
// destination's matrix row immediately.
func (t *MatrixTransport) Send(_ int, src ProcessID, payload any, order []ProcessID, limit int) {
	s := int(src) - 1
	for k := 0; k < limit; k++ {
		t.mat[(int(order[k])-1)*t.n+s] = payload
	}
	t.delivered += int64(limit)
}

// Deliver implements Transport by copying the destination's matrix row.
func (t *MatrixTransport) Deliver(_ int, dst ProcessID, row []any) {
	copy(row, t.mat[(int(dst)-1)*t.n:int(dst)*t.n])
}

// Delivered implements Transport.
func (t *MatrixTransport) Delivered() int64 { return t.delivered }

package rounds

import (
	"testing"

	"kset/internal/vector"
)

// floodMin is a minimal test protocol: processes flood the smallest value
// seen and decide it at a fixed round.
type floodMin struct {
	min      vector.Value
	decideAt int
}

func (f *floodMin) Send(int) any { return f.min }

func (f *floodMin) Step(round int, recv []any) (vector.Value, bool) {
	for _, p := range recv {
		if p == nil {
			continue
		}
		if v := p.(vector.Value); v < f.min {
			f.min = v
		}
	}
	return f.min, round >= f.decideAt
}

func newFloodRun(vals []vector.Value, decideAt int) []Process {
	procs := make([]Process, len(vals))
	for i, v := range vals {
		procs[i] = &floodMin{min: v, decideAt: decideAt}
	}
	return procs
}

func TestRunFailureFree(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		procs := newFloodRun([]vector.Value{4, 2, 7, 5}, 2)
		res, err := Run(procs, FailurePattern{}, Options{MaxRounds: 5, Concurrent: concurrent})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != 2 {
			t.Errorf("concurrent=%v: rounds = %d, want 2 (early stop)", concurrent, res.Rounds)
		}
		if len(res.Decisions) != 4 {
			t.Fatalf("concurrent=%v: %d decisions, want 4", concurrent, len(res.Decisions))
		}
		for id, v := range res.Decisions {
			if v != 2 {
				t.Errorf("concurrent=%v: p%d decided %v, want 2", concurrent, id, v)
			}
			if res.DecisionRound[id] != 2 {
				t.Errorf("concurrent=%v: p%d decided at round %d, want 2", concurrent, id, res.DecisionRound[id])
			}
		}
		if got := res.DistinctDecisions(); !got.Equal(vector.SetOf(2)) {
			t.Errorf("distinct = %v", got)
		}
		if res.MaxDecisionRound() != 2 {
			t.Errorf("MaxDecisionRound = %d", res.MaxDecisionRound())
		}
		// Round 1: 4 senders × 4 recipients; round 2 same.
		if res.MessagesDelivered != 32 {
			t.Errorf("messages = %d, want 32", res.MessagesDelivered)
		}
	}
}

func TestRunCrashPrefix(t *testing.T) {
	// p1 holds the minimum and crashes in round 1 after delivering to
	// exactly p1 and p2. Only p2 learns value 1 (p1 is crashed); everyone
	// else decides 2 — no further rounds spread it because p2 relays it
	// in round 2 to all.
	vals := []vector.Value{1, 2, 3, 4}
	fp := FailurePattern{Crashes: map[ProcessID]Crash{1: {Round: 1, AfterSends: 2}}}

	// Decide at round 1: p2 has 1, p3 and p4 have their own values
	// reduced only by what they received in round 1 (nothing from p1).
	procs := newFloodRun(vals, 1)
	res, err := Run(procs, fp, Options{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed[1] != true || len(res.Crashed) != 1 {
		t.Errorf("crashed = %v", res.Crashed)
	}
	if _, ok := res.Decisions[1]; ok {
		t.Error("crashed process decided")
	}
	want := map[ProcessID]vector.Value{2: 1, 3: 2, 4: 2}
	for id, v := range want {
		if res.Decisions[id] != v {
			t.Errorf("p%d decided %v, want %v", id, res.Decisions[id], v)
		}
	}

	// With one more round the min reaches everyone through p2.
	procs = newFloodRun(vals, 2)
	res, err = Run(procs, fp, Options{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []ProcessID{2, 3, 4} {
		if res.Decisions[id] != 1 {
			t.Errorf("round 2: p%d decided %v, want 1", id, res.Decisions[id])
		}
	}
}

func TestRunInitialCrashSendsNothing(t *testing.T) {
	vals := []vector.Value{1, 9, 9}
	fp := FailurePattern{Crashes: map[ProcessID]Crash{1: {Round: 1, AfterSends: 0}}}
	procs := newFloodRun(vals, 3)
	res, err := Run(procs, fp, Options{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []ProcessID{2, 3} {
		if res.Decisions[id] != 9 {
			t.Errorf("p%d decided %v, want 9 (p1's value must be lost)", id, res.Decisions[id])
		}
	}
}

func TestRunLaterRoundOrderOverride(t *testing.T) {
	// p1 gets a fresh minimum at round 2 (via its own state) and crashes in
	// round 2 after 1 send under a reversed order: only p4 receives it.
	vals := []vector.Value{1, 5, 6, 7}
	fp := FailurePattern{
		Crashes: map[ProcessID]Crash{1: {Round: 2, AfterSends: 1}},
		Orders:  map[ProcessID]map[int][]ProcessID{1: {2: {4, 3, 2, 1}}},
	}
	// Block round-1 spreading of p1's value: impossible with a round-2
	// crash (round 1 delivers everywhere), so instead verify the reversed
	// prefix by message counting: round 2 delivers 3×4 + 1 = 13 messages.
	procs := newFloodRun(vals, 2)
	res, err := Run(procs, fp, Options{MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MessagesDelivered; got != 16+13 {
		t.Errorf("messages = %d, want 29", got)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		fp      FailurePattern
		wantErr bool
	}{
		{"empty", FailurePattern{}, false},
		{"ok crash", FailurePattern{Crashes: map[ProcessID]Crash{2: {Round: 1, AfterSends: 3}}}, false},
		{"unknown process", FailurePattern{Crashes: map[ProcessID]Crash{9: {Round: 1}}}, true},
		{"bad round", FailurePattern{Crashes: map[ProcessID]Crash{1: {Round: 0}}}, true},
		{"bad sends", FailurePattern{Crashes: map[ProcessID]Crash{1: {Round: 1, AfterSends: 5}}}, true},
		{"order round 1", FailurePattern{Orders: map[ProcessID]map[int][]ProcessID{1: {1: {1, 2, 3, 4}}}}, true},
		{"order not a permutation", FailurePattern{Orders: map[ProcessID]map[int][]ProcessID{1: {2: {1, 1, 3, 4}}}}, true},
		{"order wrong length", FailurePattern{Orders: map[ProcessID]map[int][]ProcessID{1: {2: {1, 2}}}}, true},
		{"order unknown process", FailurePattern{Orders: map[ProcessID]map[int][]ProcessID{7: {2: {1, 2, 3, 4}}}}, true},
		{"ok order", FailurePattern{Orders: map[ProcessID]map[int][]ProcessID{1: {2: {4, 3, 2, 1}}}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.fp.Validate(4, 3)
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(nil, FailurePattern{}, Options{MaxRounds: 1}); err == nil {
		t.Error("want error for no processes")
	}
	if _, err := Run([]Process{nil}, FailurePattern{}, Options{MaxRounds: 1}); err == nil {
		t.Error("want error for nil process")
	}
	if _, err := Run(newFloodRun([]vector.Value{1}, 1), FailurePattern{}, Options{}); err == nil {
		t.Error("want error for MaxRounds < 1")
	}
}

func TestFailurePatternStats(t *testing.T) {
	fp := FailurePattern{Crashes: map[ProcessID]Crash{
		1: {Round: 1, AfterSends: 0},
		2: {Round: 1, AfterSends: 2},
		3: {Round: 3, AfterSends: 0},
	}}
	if got := fp.NumCrashes(); got != 3 {
		t.Errorf("NumCrashes = %d", got)
	}
	if got := fp.InitialCrashes(); got != 1 {
		t.Errorf("InitialCrashes = %d", got)
	}
	if got := fp.CrashesByEndOfRound(1); got != 2 {
		t.Errorf("CrashesByEndOfRound(1) = %d", got)
	}
	if got := fp.CrashesByEndOfRound(3); got != 3 {
		t.Errorf("CrashesByEndOfRound(3) = %d", got)
	}
}

func TestAllCrashStops(t *testing.T) {
	vals := []vector.Value{3, 4}
	fp := FailurePattern{Crashes: map[ProcessID]Crash{
		1: {Round: 1, AfterSends: 0},
		2: {Round: 1, AfterSends: 0},
	}}
	procs := newFloodRun(vals, 5)
	res, err := Run(procs, fp, Options{MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (everyone crashed)", res.Rounds)
	}
	if len(res.Decisions) != 0 {
		t.Errorf("decisions = %v, want none", res.Decisions)
	}
}

package rounds

import (
	"errors"
	"testing"

	"kset/internal/vector"
)

// cancelingProcess floods a constant value and closes the cancel channel
// during its send phase of closeAt, so the engine observes cancellation
// at the next round boundary.
type cancelingProcess struct {
	closeAt int
	cancel  chan struct{}
	rounds  int
}

func (p *cancelingProcess) Send(round int) any {
	if round == p.closeAt && p.cancel != nil {
		close(p.cancel)
		p.cancel = nil
	}
	return round
}

func (p *cancelingProcess) Step(round int, recv []any) (vector.Value, bool) {
	p.rounds = round
	return 0, false // never decides; only the round limit or Cancel stops the run
}

// TestRunCancelBeforeStart checks a run whose Cancel channel is already
// closed executes no round at all.
func TestRunCancelBeforeStart(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	procs := []Process{&cancelingProcess{}, &cancelingProcess{}}
	res, err := NewEngine().Run(procs, FailurePattern{}, Options{MaxRounds: 5, Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatalf("canceled run returned a result: %+v", res)
	}
	for i, p := range procs {
		if p.(*cancelingProcess).rounds != 0 {
			t.Fatalf("process %d stepped %d rounds after pre-run cancel", i+1, p.(*cancelingProcess).rounds)
		}
	}
}

// TestRunCancelMidRun checks cancellation closed during round 2 stops the
// run at the round-3 boundary: rounds 1 and 2 complete, round 3 never
// starts, and the engine reports ErrCanceled. Both the shared-row fast
// path and the transport path honor the bound.
func TestRunCancelMidRun(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		cancel := make(chan struct{})
		procs := []Process{
			&cancelingProcess{closeAt: 2, cancel: cancel},
			&cancelingProcess{},
			&cancelingProcess{},
		}
		_, err := NewEngine().Run(procs, FailurePattern{}, Options{MaxRounds: 50, Concurrent: concurrent, Cancel: cancel})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("concurrent=%v: err = %v, want ErrCanceled", concurrent, err)
		}
		for i, p := range procs {
			if got := p.(*cancelingProcess).rounds; got != 2 {
				t.Fatalf("concurrent=%v: process %d ran %d rounds, want exactly 2", concurrent, i+1, got)
			}
		}
	}
}

// TestRunNilCancelIsFree checks the nil channel changes nothing: the run
// completes to its round limit exactly as before the seam existed.
func TestRunNilCancelIsFree(t *testing.T) {
	procs := []Process{&cancelingProcess{}, &cancelingProcess{}}
	res, err := NewEngine().Run(procs, FailurePattern{}, Options{MaxRounds: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil {
		t.Fatalf("no result")
	}
	for i, p := range procs {
		if got := p.(*cancelingProcess).rounds; got != 4 {
			t.Fatalf("process %d ran %d rounds, want 4", i+1, got)
		}
	}
}

package rounds_test

import (
	"testing"

	"kset/internal/faultnet"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// benchFlood is the minimal flood protocol the engine benchmarks drive.
type benchFlood struct {
	min      vector.Value
	decideAt int
}

func (f *benchFlood) Send(int) any { return f.min }

func (f *benchFlood) Step(round int, recv []any) (vector.Value, bool) {
	for _, p := range recv {
		if v, ok := p.(vector.Value); ok && v < f.min {
			f.min = v
		}
	}
	return f.min, round >= f.decideAt
}

// BenchmarkEngineTransport measures the transport seam on a recycled
// engine + Result at n=16: the matrix arm is the campaign hot path and
// must stay allocation-free — the seam is an interface, not a cost — and
// the faultnet arm prices a warm zero-fault fault-injecting transport on
// the same workload.
func BenchmarkEngineTransport(b *testing.B) {
	const n, maxRounds = 16, 4
	fp := rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{
		3: {Round: 1, AfterSends: n / 2},
		7: {Round: 2, AfterSends: 1},
	}}
	procs := make([]rounds.Process, n)
	cells := make([]benchFlood, n)
	reset := func() {
		for i := range cells {
			cells[i] = benchFlood{min: vector.Value(1 + i%5), decideAt: maxRounds}
			procs[i] = &cells[i]
		}
	}

	run := func(b *testing.B, tr rounds.Transport) {
		var e rounds.Engine
		var res rounds.Result
		opts := rounds.Options{MaxRounds: maxRounds, Transport: tr}
		reset()
		if _, err := e.RunInto(&res, procs, fp, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reset()
			if _, err := e.RunInto(&res, procs, fp, opts); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("matrix", func(b *testing.B) { run(b, nil) })
	b.Run("faultnet", func(b *testing.B) {
		tr, err := faultnet.New(&faultnet.Plan{Seed: 3}, n)
		if err != nil {
			b.Fatal(err)
		}
		run(b, tr)
	})
	b.Run("faultnet-storm", func(b *testing.B) {
		tr, err := faultnet.New(&faultnet.Plan{
			Seed:    3,
			Default: faultnet.LinkFaults{Loss: 0.1, DelayProb: 0.1, MaxDelay: 2, Duplicate: 0.05},
			Reorder: 0.1,
		}, n)
		if err != nil {
			b.Fatal(err)
		}
		run(b, tr)
	})
}

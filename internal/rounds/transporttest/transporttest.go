// Package transporttest is the shared conformance suite of the
// rounds.Transport contract. Every transport implementation — the
// canonical MatrixTransport, faultnet's injector under a zero-fault plan,
// and the wire plane's codec-backed pipe and UDP loopback transports —
// runs the same scripted delivery scenarios, so the four stay pinned to
// one Reset/BeginRound/Send/Deliver semantics and a new implementation
// cannot silently diverge from the engine's expectations.
//
// The suite asserts the reliable contract: a transport under test must
// deliver every handed-over copy in its send round, exactly once, to
// exactly the prefix of the send order the engine requested. Fault
// injectors are therefore tested with faults disabled — their fault paths
// have their own property tests.
package transporttest

import (
	"testing"

	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// Factory builds a fresh transport for a system of n processes. Each
// subtest gets its own instance; transports holding external resources
// (sockets) may register cleanup on t.
type Factory func(t testing.TB, n int) rounds.Transport

// Run drives the conformance suite against the factory's transports.
func Run(t *testing.T, mk Factory) {
	t.Run("BroadcastRound", func(t *testing.T) { testBroadcastRound(t, mk) })
	t.Run("PrefixLimits", func(t *testing.T) { testPrefixLimits(t, mk) })
	t.Run("OrderOverride", func(t *testing.T) { testOrderOverride(t, mk) })
	t.Run("RoundIsolation", func(t *testing.T) { testRoundIsolation(t, mk) })
	t.Run("SkippedDestinations", func(t *testing.T) { testSkippedDestinations(t, mk) })
	t.Run("StatePayloads", func(t *testing.T) { testStatePayloads(t, mk) })
	t.Run("ResetReuse", func(t *testing.T) { testResetReuse(t, mk) })
}

// identity returns the fixed p_1..p_n send order.
func identity(n int) []rounds.ProcessID {
	order := make([]rounds.ProcessID, n)
	for i := range order {
		order[i] = rounds.ProcessID(i + 1)
	}
	return order
}

// deliver fetches dst's row of round r into a fresh slice.
func deliver(tr rounds.Transport, r int, dst rounds.ProcessID, n int) []any {
	row := make([]any, n)
	tr.Deliver(r, dst, row)
	return row
}

// wantValue asserts one row entry is the given value.
func wantValue(t *testing.T, row []any, src int, want vector.Value) {
	t.Helper()
	got, ok := row[src-1].(vector.Value)
	if !ok || got != want {
		t.Fatalf("row[%d] = %v (%T), want value %v", src-1, row[src-1], row[src-1], want)
	}
}

// wantNil asserts one row entry is empty.
func wantNil(t *testing.T, row []any, src int) {
	t.Helper()
	if row[src-1] != nil {
		t.Fatalf("row[%d] = %v, want nil", src-1, row[src-1])
	}
}

// testBroadcastRound: every process broadcasts a distinct value with the
// full delivery limit; every destination's row holds all n values at the
// sender's index and Delivered counts n² copies.
func testBroadcastRound(t *testing.T, mk Factory) {
	const n = 4
	tr := mk(t, n)
	tr.Reset(n)
	if got := tr.Delivered(); got != 0 {
		t.Fatalf("Delivered after Reset = %d, want 0", got)
	}
	order := identity(n)
	tr.BeginRound(1)
	for src := 1; src <= n; src++ {
		tr.Send(1, rounds.ProcessID(src), vector.Value(src*10), order, n)
	}
	for dst := 1; dst <= n; dst++ {
		row := deliver(tr, 1, rounds.ProcessID(dst), n)
		for src := 1; src <= n; src++ {
			wantValue(t, row, src, vector.Value(src*10))
		}
	}
	if got := tr.Delivered(); got != int64(n*n) {
		t.Fatalf("Delivered = %d, want %d", got, n*n)
	}
}

// testPrefixLimits: a sender with limit s delivers to exactly the first s
// destinations of its order — the crash adversary's prefix semantics.
func testPrefixLimits(t *testing.T, mk Factory) {
	const n = 4
	tr := mk(t, n)
	tr.Reset(n)
	order := identity(n)
	tr.BeginRound(1)
	tr.Send(1, 1, vector.Value(7), order, 2)  // reaches p1, p2 only
	tr.Send(1, 2, vector.Value(9), order, 0)  // crashes before any send
	tr.Send(1, 3, vector.Value(11), order, n) // full broadcast
	for dst := 1; dst <= n; dst++ {
		row := deliver(tr, 1, rounds.ProcessID(dst), n)
		if dst <= 2 {
			wantValue(t, row, 1, 7)
		} else {
			wantNil(t, row, 1)
		}
		wantNil(t, row, 2)
		wantValue(t, row, 3, 11)
		wantNil(t, row, 4)
	}
	if got := tr.Delivered(); got != 2+0+int64(n) {
		t.Fatalf("Delivered = %d, want %d", got, 2+n)
	}
}

// testOrderOverride: the delivery prefix follows the adversary's send
// order, not process IDs.
func testOrderOverride(t *testing.T, mk Factory) {
	const n = 4
	tr := mk(t, n)
	tr.Reset(n)
	tr.BeginRound(1)
	order := []rounds.ProcessID{3, 1, 4, 2}
	tr.Send(1, 2, vector.Value(5), order, 2) // reaches p3 and p1
	for dst := 1; dst <= n; dst++ {
		row := deliver(tr, 1, rounds.ProcessID(dst), n)
		if dst == 3 || dst == 1 {
			wantValue(t, row, 2, 5)
		} else {
			wantNil(t, row, 2)
		}
	}
}

// testRoundIsolation: a round's deliveries never leak into the next
// round's rows.
func testRoundIsolation(t *testing.T, mk Factory) {
	const n = 3
	tr := mk(t, n)
	tr.Reset(n)
	order := identity(n)
	tr.BeginRound(1)
	for src := 1; src <= n; src++ {
		tr.Send(1, rounds.ProcessID(src), vector.Value(src), order, n)
	}
	for dst := 1; dst <= n; dst++ {
		deliver(tr, 1, rounds.ProcessID(dst), n)
	}
	tr.BeginRound(2)
	tr.Send(2, 1, vector.Value(42), order, n)
	for dst := 1; dst <= n; dst++ {
		row := deliver(tr, 2, rounds.ProcessID(dst), n)
		wantValue(t, row, 1, 42)
		wantNil(t, row, 2)
		wantNil(t, row, 3)
	}
}

// testSkippedDestinations: the engine only delivers to live destinations;
// undrained copies for skipped ones must not corrupt later rounds.
func testSkippedDestinations(t *testing.T, mk Factory) {
	const n = 3
	tr := mk(t, n)
	tr.Reset(n)
	order := identity(n)
	tr.BeginRound(1)
	for src := 1; src <= n; src++ {
		tr.Send(1, rounds.ProcessID(src), vector.Value(src), order, n)
	}
	deliver(tr, 1, 1, n) // p2 crashed, p3 halted: never delivered to
	tr.BeginRound(2)
	tr.Send(2, 1, vector.Value(9), order, n)
	row := deliver(tr, 2, 2, n)
	wantValue(t, row, 1, 9)
	wantNil(t, row, 2)
	wantNil(t, row, 3)
}

// testStatePayloads: flood-round state triples survive the transport with
// their contents intact (wire transports re-materialize them through the
// codec, so equality is by value, not pointer identity).
func testStatePayloads(t *testing.T, mk Factory) {
	const n = 3
	tr := mk(t, n)
	tr.Reset(n)
	order := identity(n)
	tr.BeginRound(1)
	msgs := []*core.StateMsg{
		{Cond: 3, Out: 0, Tmf: 1},
		{Cond: 0, Out: 2, Tmf: 0},
		{Cond: 64, Out: 64, Tmf: 64}, // the value-domain cap, beyond Key64 packing
	}
	for src := 1; src <= n; src++ {
		tr.Send(1, rounds.ProcessID(src), msgs[src-1], order, n)
	}
	for dst := 1; dst <= n; dst++ {
		row := deliver(tr, 1, rounds.ProcessID(dst), n)
		for src := 1; src <= n; src++ {
			got, ok := row[src-1].(*core.StateMsg)
			if !ok {
				t.Fatalf("row[%d] = %v (%T), want *core.StateMsg", src-1, row[src-1], row[src-1])
			}
			if *got != *msgs[src-1] {
				t.Fatalf("row[%d] = %+v, want %+v", src-1, *got, *msgs[src-1])
			}
		}
	}
}

// testResetReuse: Reset rewinds counters and drops in-flight state, so one
// transport instance serves many runs.
func testResetReuse(t *testing.T, mk Factory) {
	const n = 3
	tr := mk(t, n)
	order := identity(n)
	for run := 0; run < 3; run++ {
		tr.Reset(n)
		if got := tr.Delivered(); got != 0 {
			t.Fatalf("run %d: Delivered after Reset = %d, want 0", run, got)
		}
		tr.BeginRound(1)
		tr.Send(1, 1, vector.Value(run+1), order, n)
		row := deliver(tr, 1, 2, n)
		wantValue(t, row, 1, vector.Value(run+1))
		wantNil(t, row, 2)
		if got := tr.Delivered(); got != int64(n) {
			t.Fatalf("run %d: Delivered = %d, want %d", run, got, n)
		}
	}
}

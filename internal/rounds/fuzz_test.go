package rounds

import (
	"testing"

	"kset/internal/vector"
)

// decodePattern deterministically maps raw fuzz bytes onto a
// FailurePattern over n processes — crashes (round, send prefix) and
// per-round order permutations — covering both the valid space and the
// malformed inputs Validate must reject.
func decodePattern(data []byte, n, maxRounds int) FailurePattern {
	fp := FailurePattern{}
	pop := func() int {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return int(b)
	}
	for c := pop() % 8; c > 0; c-- {
		if fp.Crashes == nil {
			fp.Crashes = make(map[ProcessID]Crash)
		}
		// Raw byte-derived values, deliberately allowed out of range.
		id := ProcessID(pop()%(n+3) - 1)
		fp.Crashes[id] = Crash{Round: pop()%(maxRounds+3) - 1, AfterSends: pop()%(n+4) - 2}
	}
	for o := pop() % 4; o > 0; o-- {
		if fp.Orders == nil {
			fp.Orders = make(map[ProcessID]map[int][]ProcessID)
		}
		id := ProcessID(pop()%(n+2) - 1)
		round := pop()%(maxRounds+2) - 1
		order := make([]ProcessID, pop()%(n+3))
		for i := range order {
			order[i] = ProcessID(pop()%(n+3) - 1)
		}
		if fp.Orders[id] == nil {
			fp.Orders[id] = make(map[int][]ProcessID)
		}
		fp.Orders[id][round] = order
	}
	return fp
}

// FuzzFailurePatternValidate throws byte-derived failure patterns —
// crashes and order permutations, valid and malformed — at Validate and
// runs the engine on whatever passes: Validate must never panic, must
// reject what the engine cannot execute, and every accepted pattern must
// drive a run to a bounded, crash-consistent result.
func FuzzFailurePatternValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 1, 3, 0})
	f.Add([]byte{2, 1, 1, 0, 4, 2, 4, 1, 0, 1, 4, 1, 2, 3, 4})
	f.Add([]byte{7, 9, 9, 9, 0, 0, 0, 3, 250, 250, 3, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n, maxRounds = 4, 3
		fp := decodePattern(data, n, maxRounds)
		if err := fp.Validate(n, maxRounds); err != nil {
			return
		}
		vals := make([]vector.Value, n)
		for i := range vals {
			vals[i] = vector.Value(i + 1)
		}
		res, err := Run(newFloodRun(vals, maxRounds), fp, Options{MaxRounds: maxRounds})
		if err != nil {
			t.Fatalf("validated pattern rejected by Run: %v\n%+v", err, fp)
		}
		if res.Rounds > maxRounds {
			t.Fatalf("run overran the round limit: %d > %d", res.Rounds, maxRounds)
		}
		for id := range res.Decisions {
			if res.Crashed[id] {
				t.Fatalf("p%d both decided and crashed", id)
			}
		}
		if len(res.Decisions)+len(res.Crashed) > n {
			t.Fatalf("%d decisions + %d crashes exceed n=%d", len(res.Decisions), len(res.Crashed), n)
		}
	})
}

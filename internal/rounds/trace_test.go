package rounds

import (
	"strings"
	"testing"

	"kset/internal/vector"
)

func TestTraceRecordsExecution(t *testing.T) {
	vals := []vector.Value{4, 2, 7, 5}
	fp := FailurePattern{Crashes: map[ProcessID]Crash{3: {Round: 1, AfterSends: 2}}}
	var tr Trace
	procs := newFloodRun(vals, 2)
	res, err := Run(procs, fp, Options{MaxRounds: 3, Trace: &tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 4 {
		t.Errorf("trace N = %d", tr.N)
	}
	if len(tr.Rounds) != res.Rounds {
		t.Fatalf("trace has %d rounds, result says %d", len(tr.Rounds), res.Rounds)
	}
	r1 := tr.Rounds[0]
	if len(r1.Sends) != 4 {
		t.Errorf("round 1 sends = %d, want 4", len(r1.Sends))
	}
	if got := r1.Sends[3].Delivered; got != 2 {
		t.Errorf("p3 delivered %d, want 2", got)
	}
	if len(r1.Crashes) != 1 || r1.Crashes[0] != 3 {
		t.Errorf("round-1 crashes = %v", r1.Crashes)
	}
	r2 := tr.Rounds[1]
	if len(r2.Sends) != 3 {
		t.Errorf("round 2 sends = %d, want 3 (p3 crashed)", len(r2.Sends))
	}
	if len(r2.Decisions) != 3 {
		t.Errorf("round 2 decisions = %d, want 3", len(r2.Decisions))
	}

	out := tr.Render()
	for _, want := range []string{"round 1", "round 2", "crashed after 2/4 sends", "crashed: p3", "DECIDES"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace lacks %q:\n%s", want, out)
		}
	}
}

func TestTraceReusedAcrossRuns(t *testing.T) {
	var tr Trace
	for i := 0; i < 2; i++ {
		procs := newFloodRun([]vector.Value{1, 2}, 1)
		if _, err := Run(procs, FailurePattern{}, Options{MaxRounds: 2, Trace: &tr}); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Rounds) != 1 {
		t.Errorf("trace not reset between runs: %d rounds", len(tr.Rounds))
	}
}

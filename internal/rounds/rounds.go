package rounds

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"kset/internal/vector"
)

// ErrCanceled reports a run aborted between rounds through Options.Cancel.
// Callers driving the engine under a context map it back to the context's
// error; the partially executed run produced no Result.
var ErrCanceled = errors.New("rounds: run canceled")

// ProcessID identifies a process; IDs are 1-based like the paper's p_1..p_n.
type ProcessID int

// Process is a deterministic round-based protocol instance for one process.
// The engine calls Send then Step once per round until Step reports a
// decision (the process then halts: it neither sends nor steps afterwards)
// or the engine's round limit is reached.
type Process interface {
	// Send returns the payload this process broadcasts in the given round.
	// The engine delivers it (subject to crashes) to every process,
	// including the sender itself.
	Send(round int) any
	// Step consumes the payloads received in the given round — recv[i]
	// holds the payload from process i+1, nil if none — and performs the
	// compute phase. It returns done=true with the decided value when the
	// process decides and halts.
	Step(round int, recv []any) (value vector.Value, done bool)
}

// Crash schedules the crash of one process.
type Crash struct {
	// Round is the round during whose send phase the process crashes
	// (≥ 1). The process makes no receive or compute step in that round.
	Round int
	// AfterSends is how many messages, counted along the process's send
	// order for that round, are delivered before the crash (0..n).
	AfterSends int
}

// FailurePattern is the adversary: which processes crash, when, after how
// many deliveries, and (for rounds after the first) in which order each
// process sends.
type FailurePattern struct {
	// Crashes maps a process to its crash schedule.
	Crashes map[ProcessID]Crash
	// Orders optionally overrides the send order of a process in rounds
	// ≥ 2 (the paper fixes round 1's order to p_1..p_n). Each order must
	// be a permutation of all processes.
	Orders map[ProcessID]map[int][]ProcessID
}

// NumCrashes returns the number of scheduled crashes.
func (fp FailurePattern) NumCrashes() int { return len(fp.Crashes) }

// InitialCrashes returns how many processes crash in round 1 before
// sending anything at all — the paper's "initially crashed" processes.
func (fp FailurePattern) InitialCrashes() int {
	c := 0
	for _, cr := range fp.Crashes {
		if cr.Round == 1 && cr.AfterSends == 0 {
			c++
		}
	}
	return c
}

// CrashesByEndOfRound returns how many processes have crashed by the end
// of round r.
func (fp FailurePattern) CrashesByEndOfRound(r int) int {
	c := 0
	for _, cr := range fp.Crashes {
		if cr.Round <= r {
			c++
		}
	}
	return c
}

// Validate checks the pattern against a system of n processes running at
// most maxRounds rounds.
func (fp FailurePattern) Validate(n, maxRounds int) error {
	for id, cr := range fp.Crashes {
		if id < 1 || int(id) > n {
			return fmt.Errorf("rounds: crash of unknown process %d", id)
		}
		if cr.Round < 1 {
			return fmt.Errorf("rounds: process %d crashes in round %d < 1", id, cr.Round)
		}
		if cr.AfterSends < 0 || cr.AfterSends > n {
			return fmt.Errorf("rounds: process %d delivers %d of %d messages", id, cr.AfterSends, n)
		}
	}
	for id, byRound := range fp.Orders {
		if id < 1 || int(id) > n {
			return fmt.Errorf("rounds: order for unknown process %d", id)
		}
		for r, order := range byRound {
			if r < 2 {
				return fmt.Errorf("rounds: process %d: round-%d order is fixed by the model", id, r)
			}
			if err := validatePermutation(order, n); err != nil {
				return fmt.Errorf("rounds: process %d round %d: %w", id, r, err)
			}
		}
	}
	return nil
}

func validatePermutation(order []ProcessID, n int) error {
	if len(order) != n {
		return fmt.Errorf("order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n+1)
	for _, id := range order {
		if id < 1 || int(id) > n || seen[id] {
			return fmt.Errorf("order %v is not a permutation of 1..%d", order, n)
		}
		seen[id] = true
	}
	return nil
}

// Result reports one synchronous execution.
type Result struct {
	// Decisions maps each process that decided to its decided value.
	Decisions map[ProcessID]vector.Value
	// DecisionRound maps each decided process to its decision round.
	DecisionRound map[ProcessID]int
	// Crashed is the set of processes that crashed.
	Crashed map[ProcessID]bool
	// Rounds is the number of rounds actually executed.
	Rounds int
	// MessagesDelivered counts the message copies the run's transport
	// accepted for delivery (for the default MatrixTransport: delivered
	// messages exactly).
	MessagesDelivered int64
	// Lost, Delayed and Duplicated count the message copies the run's
	// transport dropped, deferred to a later round and duplicated. They
	// are zero under the default MatrixTransport; a fault-injecting
	// transport (see FaultCounter) fills them.
	Lost, Delayed, Duplicated int64
}

// Reset clears the result for reuse, retaining its map storage. Batch
// drivers that only aggregate statistics pass a recycled Result to
// Engine.RunInto and skip the per-run map allocations entirely.
func (r *Result) Reset() {
	if r.Decisions == nil {
		r.Decisions = make(map[ProcessID]vector.Value)
	} else {
		clear(r.Decisions)
	}
	if r.DecisionRound == nil {
		r.DecisionRound = make(map[ProcessID]int)
	} else {
		clear(r.DecisionRound)
	}
	if r.Crashed == nil {
		r.Crashed = make(map[ProcessID]bool)
	} else {
		clear(r.Crashed)
	}
	r.Rounds = 0
	r.MessagesDelivered = 0
	r.Lost = 0
	r.Delayed = 0
	r.Duplicated = 0
}

// MaxDecisionRound returns the latest round at which any process decided
// (0 when nothing was decided).
func (r *Result) MaxDecisionRound() int {
	maxR := 0
	for _, round := range r.DecisionRound {
		if round > maxR {
			maxR = round
		}
	}
	return maxR
}

// DistinctDecisions returns the set of decided values.
func (r *Result) DistinctDecisions() vector.Set {
	var s vector.Set
	for _, v := range r.Decisions {
		s = s.Add(v)
	}
	return s
}

// Options configures an execution.
type Options struct {
	// MaxRounds caps the execution; the engine also stops as soon as every
	// live process has decided.
	MaxRounds int
	// Concurrent runs each round's compute phase on a bounded per-run
	// worker pool (min(GOMAXPROCS, 8) goroutines, spawned lazily at the
	// first concurrent round and retired at run end) instead of in-line.
	// Each worker computes a contiguous span of processes into
	// per-process outcome slots, so outcome order — and thus every
	// Result — is identical to the in-line executor's. The concurrent
	// executor exists to exercise protocol implementations under the
	// race detector and to model the paper's "n processes" faithfully.
	Concurrent bool
	// Trace, when non-nil, is filled with the round-by-round events of the
	// execution (rendering payloads with fmt).
	Trace *Trace
	// Transport, when non-nil, overrides how each round's sends reach
	// their destinations (message loss, delay, duplication, reordering —
	// see internal/faultnet). nil selects the engine's built-in
	// MatrixTransport: the paper's reliable crash-respecting delivery.
	Transport Transport
	// Cancel, when non-nil, aborts the run between rounds once the
	// channel is closed: the engine returns ErrCanceled instead of a
	// Result. Batch drivers pass a context's Done channel here so an
	// in-flight synchronous run stops at the next round boundary — at
	// most one round of work after cancellation — instead of running to
	// its MaxRounds bound. A nil channel costs nothing per round.
	Cancel <-chan struct{}
}

// Engine executes synchronous runs while reusing its internal buffers
// (the n×n delivery matrix, liveness bitmaps, the identity send order and
// the per-round outcome scratch) across calls. Sweeps that drive thousands
// of runs — exhaustive adversary model checking above all — should create
// one Engine and call its Run repeatedly; each call then costs only the
// small per-run Result (which the caller may retain freely).
//
// An Engine is not safe for concurrent use; Run itself may still use the
// concurrent per-process executor internally.
type Engine struct {
	recv     []any // n×n receive-row scratch; recv[(dst-1)*n:] is dst's row
	alive    []bool
	halted   []bool
	identity []ProcessID
	outcomes []outcome

	// mt is the built-in default transport, embedded so that runs without
	// an Options.Transport override reuse its matrix across runs.
	mt MatrixTransport

	// Row-sharing fast path (in-line executor, identity send orders): the
	// send phase records one payload and delivery limit per sender, and a
	// single receive row is patched incrementally as the destination
	// advances, instead of materializing the n×n matrix.
	pay     []any
	row     []any
	limits  []int
	partial []int // senders whose delivery prefix ends mid-row this round

	// Concurrent executor state: a per-run bounded worker pool fed
	// contiguous process spans over concWork, writing outcomes into
	// per-process slots of concOut (id 0 marks a skipped process).
	// Started lazily by the first concurrent round, stopped at run end.
	concWork chan concSpan
	concWG   sync.WaitGroup
	concOut  []outcome
}

type outcome struct {
	id    ProcessID
	value vector.Value
	done  bool
}

// NewEngine returns an Engine with no buffers allocated yet; they grow to
// the largest n seen and are reused afterwards.
func NewEngine() *Engine { return &Engine{} }

// reset sizes the scratch buffers for a run over n processes.
func (e *Engine) reset(n int) {
	if cap(e.recv) < n*n {
		e.recv = make([]any, n*n)
		e.alive = make([]bool, n+1)
		e.halted = make([]bool, n+1)
		e.identity = make([]ProcessID, n)
		for i := range e.identity {
			e.identity[i] = ProcessID(i + 1)
		}
		e.outcomes = make([]outcome, 0, n)
		e.pay = make([]any, n)
		e.row = make([]any, n)
		e.limits = make([]int, n)
		e.partial = make([]int, 0, n)
	}
	e.recv = e.recv[:n*n]
	e.alive = e.alive[:n+1]
	e.halted = e.halted[:n+1]
	e.pay = e.pay[:n]
	e.row = e.row[:n]
	e.limits = e.limits[:n]
	for i := 1; i <= n; i++ {
		e.alive[i] = true
		e.halted[i] = false
	}
}

// Run executes the processes lock-step under the failure pattern. procs[i]
// is process i+1. It returns an error only for malformed configurations;
// protocol outcomes (including nobody deciding) are reported in Result.
// The returned Result is freshly allocated and remains valid after further
// Run calls; only the engine's internal scratch is reused.
func (e *Engine) Run(procs []Process, fp FailurePattern, opts Options) (*Result, error) {
	return e.RunInto(nil, procs, fp, opts)
}

// RunInto is Run writing into a caller-provided Result, which is cleared
// (Reset) and returned; res == nil allocates a fresh one. Sweeps that only
// read each result before the next run recycle one Result and make the
// whole run allocation-free.
func (e *Engine) RunInto(res *Result, procs []Process, fp FailurePattern, opts Options) (*Result, error) {
	n := len(procs)
	if n == 0 {
		return nil, fmt.Errorf("rounds: no processes")
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("rounds: process %d is nil", i+1)
		}
	}
	if opts.MaxRounds < 1 {
		return nil, fmt.Errorf("rounds: MaxRounds = %d, want ≥ 1", opts.MaxRounds)
	}
	if err := fp.Validate(n, opts.MaxRounds); err != nil {
		return nil, err
	}

	e.reset(n)
	if res == nil {
		res = &Result{
			Decisions:     make(map[ProcessID]vector.Value, n),
			DecisionRound: make(map[ProcessID]int, n),
			Crashed:       make(map[ProcessID]bool, fp.NumCrashes()),
		}
	} else {
		res.Reset()
	}

	// Resolve the transport. The shared-row fast path applies only to the
	// default reliable delivery with the in-line executor, no tracing and
	// no send-order overrides; everything else — traced, concurrent,
	// order-overridden or fault-injected runs — flows through the
	// transport seam.
	tr := opts.Transport
	if tr == nil {
		tr = &e.mt
	}
	_, isMatrix := tr.(*MatrixTransport)
	fast := isMatrix && !opts.Concurrent && opts.Trace == nil && len(fp.Orders) == 0
	if !fast {
		tr.Reset(n)
		// Blocking transports (the wire plane) honor the run's cancel
		// channel inside Deliver; the engine still checks it at every
		// round boundary.
		if ca, ok := tr.(CancelAware); ok {
			ca.SetCancel(opts.Cancel)
		}
	}

	if opts.Trace != nil {
		opts.Trace.N = n
		opts.Trace.Rounds = opts.Trace.Rounds[:0]
	}
	// The concurrent executor's workers live at most until run end,
	// whichever way the round loop exits.
	defer e.stopConc()
	for r := 1; r <= opts.MaxRounds; r++ {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				return nil, ErrCanceled
			default:
			}
		}
		if fast {
			if e.runRoundShared(procs, fp, r, res) {
				break
			}
			continue
		}
		var rt *RoundTrace
		if opts.Trace != nil {
			opts.Trace.Rounds = append(opts.Trace.Rounds, RoundTrace{
				Round:     r,
				Sends:     make(map[ProcessID]SendTrace),
				Decisions: make(map[ProcessID]vector.Value),
			})
			rt = &opts.Trace.Rounds[len(opts.Trace.Rounds)-1]
		}
		if e.runRoundTransport(procs, fp, r, res, opts, tr, rt) {
			break
		}
	}
	if fc, ok := tr.(FaultCounter); ok {
		res.Lost, res.Delayed, res.Duplicated = fc.FaultCounts()
	}
	return res, nil
}

// runRoundTransport executes round r through the transport seam — the
// path of every traced, concurrent, order-overridden or fault-injected
// run — and reports whether the run should stop. With a MatrixTransport
// its results are identical to the shared-row fast path's.
func (e *Engine) runRoundTransport(procs []Process, fp FailurePattern, r int, res *Result, opts Options, tr Transport, rt *RoundTrace) (stop bool) {
	n := len(procs)
	tr.BeginRound(r)

	// Send phase: the engine applies the crash adversary (send order and
	// delivery prefix length) and hands each broadcast to the transport.
	active := false
	for src := 1; src <= n; src++ {
		if !e.alive[src] || e.halted[src] {
			continue
		}
		payload := procs[src-1].Send(r)
		order := e.sendOrder(fp, ProcessID(src), r)
		limit := n
		if cr, ok := fp.Crashes[ProcessID(src)]; ok && cr.Round == r {
			limit = cr.AfterSends
			e.alive[src] = false
			res.Crashed[ProcessID(src)] = true
			if rt != nil {
				rt.Crashes = append(rt.Crashes, ProcessID(src))
			}
		}
		tr.Send(r, ProcessID(src), payload, order, limit)
		if rt != nil {
			rt.Sends[ProcessID(src)] = SendTrace{
				Payload:   fmt.Sprintf("%v", payload),
				Delivered: limit,
			}
		}
		if e.alive[src] {
			active = true
		}
	}
	res.Rounds = r
	res.MessagesDelivered = tr.Delivered()

	// Receive + compute phase. Rows are delivered sequentially — the
	// transport may reuse internal scratch between Deliver calls — into
	// per-destination slices of the engine's receive scratch, so the
	// concurrent executor's Steps still run in parallel safely.
	outcomes := e.outcomes[:0]
	if opts.Concurrent {
		for id := 1; id <= n; id++ {
			if !e.alive[id] || e.halted[id] {
				continue
			}
			tr.Deliver(r, ProcessID(id), e.recv[(id-1)*n:id*n])
		}
		outcomes = e.stepConcurrent(procs, r, outcomes)
	} else {
		for id := 1; id <= n; id++ {
			if !e.alive[id] || e.halted[id] {
				continue
			}
			row := e.recv[(id-1)*n : id*n]
			tr.Deliver(r, ProcessID(id), row)
			v, done := procs[id-1].Step(r, row)
			outcomes = append(outcomes, outcome{ProcessID(id), v, done})
		}
	}
	e.outcomes = outcomes[:0]
	for _, o := range outcomes {
		if o.done {
			e.halted[o.id] = true
			res.Decisions[o.id] = o.value
			res.DecisionRound[o.id] = r
			if rt != nil {
				rt.Decisions[o.id] = o.value
			}
		}
	}

	if !active {
		return true // every process has crashed or halted
	}
	for id := 1; id <= n; id++ {
		if e.alive[id] && !e.halted[id] {
			return false
		}
	}
	return true
}

// concSpan is one unit of concurrent compute work: run round r's Step for
// the processes in [lo, hi] (1-based, inclusive).
type concSpan struct{ lo, hi, r int }

// concWorkers returns the concurrent executor's pool size for n
// processes: enough goroutines to exercise protocols under the race
// detector and saturate the cores, bounded so per-run spawn cost stays
// flat as n grows.
func concWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	if w > 8 {
		w = 8
	}
	if w > n {
		w = n
	}
	return w
}

// startConc spawns the run's compute workers. They live for one run —
// stepConcurrent feeds them a batch of spans per round — and exit when
// RunInto closes the work channel, so an Engine holds no goroutines
// between runs. Workers write each process's outcome into its own slot
// of concOut (no lock, no append), and the per-round channel/WaitGroup
// handoff orders those writes with the main goroutine's reads.
func (e *Engine) startConc(procs []Process) {
	n := len(procs)
	if cap(e.concOut) < n {
		e.concOut = make([]outcome, n)
	}
	e.concOut = e.concOut[:n]
	work := make(chan concSpan)
	e.concWork = work
	for i := 0; i < concWorkers(n); i++ {
		go func() {
			for sp := range work {
				for id := sp.lo; id <= sp.hi; id++ {
					if !e.alive[id] || e.halted[id] {
						e.concOut[id-1] = outcome{}
						continue
					}
					v, done := procs[id-1].Step(sp.r, e.recv[(id-1)*n:id*n])
					e.concOut[id-1] = outcome{ProcessID(id), v, done}
				}
				e.concWG.Done()
			}
		}()
	}
}

// stopConc shuts the run's compute workers down (no-op when the run never
// used the concurrent executor).
func (e *Engine) stopConc() {
	if e.concWork != nil {
		close(e.concWork)
		e.concWork = nil
	}
}

// stepConcurrent runs one round's receive/compute phase on the engine's
// bounded worker pool (started lazily on the round's first use) and
// returns the appended outcomes. Each worker computes a contiguous span
// of processes into per-process outcome slots; collecting the slots in id
// order afterwards makes the outcome order deterministic, unlike the
// former goroutine-per-process executor's completion-order append.
func (e *Engine) stepConcurrent(procs []Process, r int, outcomes []outcome) []outcome {
	if e.concWork == nil {
		e.startConc(procs)
	}
	n := len(procs)
	w := concWorkers(n)
	span := (n + w - 1) / w
	for lo := 1; lo <= n; lo += span {
		hi := lo + span - 1
		if hi > n {
			hi = n
		}
		e.concWG.Add(1)
		e.concWork <- concSpan{lo: lo, hi: hi, r: r}
	}
	e.concWG.Wait()
	for id := 1; id <= n; id++ {
		if o := e.concOut[id-1]; o.id != 0 {
			outcomes = append(outcomes, o)
		}
	}
	return outcomes
}

// runRoundShared executes round r on the shared-row fast path and reports
// whether the run should stop (every process crashed/halted, or everyone
// alive has decided). Semantics match the matrix path exactly: a sender
// crashing after s sends delivers to destinations p_1..p_s of the fixed
// identity order.
func (e *Engine) runRoundShared(procs []Process, fp FailurePattern, r int, res *Result) (stop bool) {
	n := len(procs)
	// Send phase: one payload and delivery limit per sender. limits[src-1]
	// is −1 for non-senders, otherwise the length of the delivery prefix.
	active := false
	e.partial = e.partial[:0]
	delivered := int64(0)
	for src := 1; src <= n; src++ {
		if !e.alive[src] || e.halted[src] {
			e.limits[src-1] = -1
			continue
		}
		e.pay[src-1] = procs[src-1].Send(r)
		limit := n
		if cr, ok := fp.Crashes[ProcessID(src)]; ok && cr.Round == r {
			limit = cr.AfterSends
			e.alive[src] = false
			res.Crashed[ProcessID(src)] = true
		}
		e.limits[src-1] = limit
		delivered += int64(limit)
		if limit < n {
			e.partial = append(e.partial, src)
		}
		if e.alive[src] {
			active = true
		}
	}
	res.MessagesDelivered += delivered
	res.Rounds = r

	// Receive + compute phase: the row for destination 1, then per
	// destination only the partial senders' entries can change (their
	// prefix ends at dst = limit).
	for src := 1; src <= n; src++ {
		if e.limits[src-1] >= 1 {
			e.row[src-1] = e.pay[src-1]
		} else {
			e.row[src-1] = nil
		}
	}
	outcomes := e.outcomes[:0]
	for dst := 1; dst <= n; dst++ {
		for _, src := range e.partial {
			if e.limits[src-1] == dst-1 {
				e.row[src-1] = nil // dst is past this sender's prefix
			}
		}
		if !e.alive[dst] || e.halted[dst] {
			continue
		}
		v, done := procs[dst-1].Step(r, e.row)
		outcomes = append(outcomes, outcome{ProcessID(dst), v, done})
	}
	e.outcomes = outcomes[:0]
	for _, o := range outcomes {
		if o.done {
			e.halted[o.id] = true
			res.Decisions[o.id] = o.value
			res.DecisionRound[o.id] = r
		}
	}

	if !active {
		return true // every process has crashed or halted
	}
	for id := 1; id <= n; id++ {
		if e.alive[id] && !e.halted[id] {
			return false
		}
	}
	return true
}

// Run executes the processes lock-step under the failure pattern with a
// one-shot engine. It is the convenience form of Engine.Run; loops over
// many runs should reuse an Engine instead.
func Run(procs []Process, fp FailurePattern, opts Options) (*Result, error) {
	return NewEngine().Run(procs, fp, opts)
}

// sendOrder resolves the send order of src in round r: round 1 is always
// the paper's fixed p_1..p_n (the engine's shared identity order); later
// rounds honor the adversary's override.
func (e *Engine) sendOrder(fp FailurePattern, src ProcessID, r int) []ProcessID {
	if r >= 2 {
		if byRound, ok := fp.Orders[src]; ok {
			if order, ok := byRound[r]; ok {
				return order
			}
		}
	}
	return e.identity
}

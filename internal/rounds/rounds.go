// Package rounds implements the synchronous round-based message-passing
// model of the paper's Section 6.2: computation proceeds in rounds made of
// a send phase, a receive phase and a compute phase; a message sent in
// round r is received in round r; processes fail by crashing.
//
// Crash semantics follow the paper's refinement of the standard model:
// every process sends its round messages in a predetermined order
// (p_1, …, p_n in round 1), and a process that crashes during its send
// phase delivers only a prefix of them. Round 1's fixed order is what makes
// the processes' views of the input vector totally ordered by containment —
// the property the Figure-2 algorithm's agreement argument builds on.
// In later rounds the adversary may reorder deliveries (the paper permits
// any order after round 1).
//
// Two executors with identical semantics are provided: a deterministic
// in-line executor used for exhaustive adversary model checking, and a
// goroutine-per-process executor exercised under the race detector.
package rounds

import (
	"fmt"
	"sync"

	"kset/internal/vector"
)

// ProcessID identifies a process; IDs are 1-based like the paper's p_1..p_n.
type ProcessID int

// Process is a deterministic round-based protocol instance for one process.
// The engine calls Send then Step once per round until Step reports a
// decision (the process then halts: it neither sends nor steps afterwards)
// or the engine's round limit is reached.
type Process interface {
	// Send returns the payload this process broadcasts in the given round.
	// The engine delivers it (subject to crashes) to every process,
	// including the sender itself.
	Send(round int) any
	// Step consumes the payloads received in the given round — recv[i]
	// holds the payload from process i+1, nil if none — and performs the
	// compute phase. It returns done=true with the decided value when the
	// process decides and halts.
	Step(round int, recv []any) (value vector.Value, done bool)
}

// Crash schedules the crash of one process.
type Crash struct {
	// Round is the round during whose send phase the process crashes
	// (≥ 1). The process makes no receive or compute step in that round.
	Round int
	// AfterSends is how many messages, counted along the process's send
	// order for that round, are delivered before the crash (0..n).
	AfterSends int
}

// FailurePattern is the adversary: which processes crash, when, after how
// many deliveries, and (for rounds after the first) in which order each
// process sends.
type FailurePattern struct {
	// Crashes maps a process to its crash schedule.
	Crashes map[ProcessID]Crash
	// Orders optionally overrides the send order of a process in rounds
	// ≥ 2 (the paper fixes round 1's order to p_1..p_n). Each order must
	// be a permutation of all processes.
	Orders map[ProcessID]map[int][]ProcessID
}

// NumCrashes returns the number of scheduled crashes.
func (fp FailurePattern) NumCrashes() int { return len(fp.Crashes) }

// InitialCrashes returns how many processes crash in round 1 before
// sending anything at all — the paper's "initially crashed" processes.
func (fp FailurePattern) InitialCrashes() int {
	c := 0
	for _, cr := range fp.Crashes {
		if cr.Round == 1 && cr.AfterSends == 0 {
			c++
		}
	}
	return c
}

// CrashesByEndOfRound returns how many processes have crashed by the end
// of round r.
func (fp FailurePattern) CrashesByEndOfRound(r int) int {
	c := 0
	for _, cr := range fp.Crashes {
		if cr.Round <= r {
			c++
		}
	}
	return c
}

// Validate checks the pattern against a system of n processes running at
// most maxRounds rounds.
func (fp FailurePattern) Validate(n, maxRounds int) error {
	for id, cr := range fp.Crashes {
		if id < 1 || int(id) > n {
			return fmt.Errorf("rounds: crash of unknown process %d", id)
		}
		if cr.Round < 1 {
			return fmt.Errorf("rounds: process %d crashes in round %d < 1", id, cr.Round)
		}
		if cr.AfterSends < 0 || cr.AfterSends > n {
			return fmt.Errorf("rounds: process %d delivers %d of %d messages", id, cr.AfterSends, n)
		}
	}
	for id, byRound := range fp.Orders {
		if id < 1 || int(id) > n {
			return fmt.Errorf("rounds: order for unknown process %d", id)
		}
		for r, order := range byRound {
			if r < 2 {
				return fmt.Errorf("rounds: process %d: round-%d order is fixed by the model", id, r)
			}
			if err := validatePermutation(order, n); err != nil {
				return fmt.Errorf("rounds: process %d round %d: %w", id, r, err)
			}
		}
	}
	return nil
}

func validatePermutation(order []ProcessID, n int) error {
	if len(order) != n {
		return fmt.Errorf("order has %d entries, want %d", len(order), n)
	}
	seen := make([]bool, n+1)
	for _, id := range order {
		if id < 1 || int(id) > n || seen[id] {
			return fmt.Errorf("order %v is not a permutation of 1..%d", order, n)
		}
		seen[id] = true
	}
	return nil
}

// Result reports one synchronous execution.
type Result struct {
	// Decisions maps each process that decided to its decided value.
	Decisions map[ProcessID]vector.Value
	// DecisionRound maps each decided process to its decision round.
	DecisionRound map[ProcessID]int
	// Crashed is the set of processes that crashed.
	Crashed map[ProcessID]bool
	// Rounds is the number of rounds actually executed.
	Rounds int
	// MessagesDelivered counts delivered messages across the run.
	MessagesDelivered int64
}

// MaxDecisionRound returns the latest round at which any process decided
// (0 when nothing was decided).
func (r *Result) MaxDecisionRound() int {
	maxR := 0
	for _, round := range r.DecisionRound {
		if round > maxR {
			maxR = round
		}
	}
	return maxR
}

// DistinctDecisions returns the set of decided values.
func (r *Result) DistinctDecisions() vector.Set {
	var s vector.Set
	for _, v := range r.Decisions {
		s = s.Add(v)
	}
	return s
}

// Options configures an execution.
type Options struct {
	// MaxRounds caps the execution; the engine also stops as soon as every
	// live process has decided.
	MaxRounds int
	// Concurrent runs each round's compute phase in per-process goroutines
	// instead of in-line. Semantics are identical; the concurrent executor
	// exists to exercise protocol implementations under the race detector
	// and to model the paper's "n processes" faithfully.
	Concurrent bool
	// Trace, when non-nil, is filled with the round-by-round events of the
	// execution (rendering payloads with fmt).
	Trace *Trace
}

// Run executes the processes lock-step under the failure pattern. procs[i]
// is process i+1. It returns an error only for malformed configurations;
// protocol outcomes (including nobody deciding) are reported in Result.
func Run(procs []Process, fp FailurePattern, opts Options) (*Result, error) {
	n := len(procs)
	if n == 0 {
		return nil, fmt.Errorf("rounds: no processes")
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("rounds: process %d is nil", i+1)
		}
	}
	if opts.MaxRounds < 1 {
		return nil, fmt.Errorf("rounds: MaxRounds = %d, want ≥ 1", opts.MaxRounds)
	}
	if err := fp.Validate(n, opts.MaxRounds); err != nil {
		return nil, err
	}

	res := &Result{
		Decisions:     make(map[ProcessID]vector.Value),
		DecisionRound: make(map[ProcessID]int),
		Crashed:       make(map[ProcessID]bool),
	}
	alive := make([]bool, n+1)  // not crashed
	halted := make([]bool, n+1) // decided and stopped
	for i := 1; i <= n; i++ {
		alive[i] = true
	}

	if opts.Trace != nil {
		opts.Trace.N = n
		opts.Trace.Rounds = opts.Trace.Rounds[:0]
	}
	for r := 1; r <= opts.MaxRounds; r++ {
		var rt *RoundTrace
		if opts.Trace != nil {
			opts.Trace.Rounds = append(opts.Trace.Rounds, RoundTrace{
				Round:     r,
				Sends:     make(map[ProcessID]SendTrace),
				Decisions: make(map[ProcessID]vector.Value),
			})
			rt = &opts.Trace.Rounds[len(opts.Trace.Rounds)-1]
		}
		// Send phase: collect deliveries. recv[dst-1][src-1] = payload.
		recv := make([][]any, n)
		for i := range recv {
			recv[i] = make([]any, n)
		}
		active := false
		for src := 1; src <= n; src++ {
			if !alive[src] || halted[src] {
				continue
			}
			payload := procs[src-1].Send(r)
			order := sendOrder(fp, ProcessID(src), r, n)
			limit := n
			if cr, ok := fp.Crashes[ProcessID(src)]; ok && cr.Round == r {
				limit = cr.AfterSends
				alive[src] = false
				res.Crashed[ProcessID(src)] = true
				if rt != nil {
					rt.Crashes = append(rt.Crashes, ProcessID(src))
				}
			}
			for k := 0; k < limit; k++ {
				dst := order[k]
				recv[dst-1][src-1] = payload
				res.MessagesDelivered++
			}
			if rt != nil {
				rt.Sends[ProcessID(src)] = SendTrace{
					Payload:   fmt.Sprintf("%v", payload),
					Delivered: limit,
				}
			}
			if alive[src] {
				active = true
			}
		}
		res.Rounds = r

		// Receive + compute phase.
		type outcome struct {
			id    ProcessID
			value vector.Value
			done  bool
		}
		outcomes := make([]outcome, 0, n)
		if opts.Concurrent {
			var mu sync.Mutex
			var wg sync.WaitGroup
			for id := 1; id <= n; id++ {
				if !alive[id] || halted[id] {
					continue
				}
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					v, done := procs[id-1].Step(r, recv[id-1])
					mu.Lock()
					outcomes = append(outcomes, outcome{ProcessID(id), v, done})
					mu.Unlock()
				}(id)
			}
			wg.Wait()
		} else {
			for id := 1; id <= n; id++ {
				if !alive[id] || halted[id] {
					continue
				}
				v, done := procs[id-1].Step(r, recv[id-1])
				outcomes = append(outcomes, outcome{ProcessID(id), v, done})
			}
		}
		for _, o := range outcomes {
			if o.done {
				halted[o.id] = true
				res.Decisions[o.id] = o.value
				res.DecisionRound[o.id] = r
				if rt != nil {
					rt.Decisions[o.id] = o.value
				}
			}
		}

		if !active {
			break // every process has crashed or halted
		}
		allDone := true
		for id := 1; id <= n; id++ {
			if alive[id] && !halted[id] {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}
	return res, nil
}

// sendOrder resolves the send order of src in round r: round 1 is always
// the paper's fixed p_1..p_n; later rounds honor the adversary's override.
func sendOrder(fp FailurePattern, src ProcessID, r, n int) []ProcessID {
	if r >= 2 {
		if byRound, ok := fp.Orders[src]; ok {
			if order, ok := byRound[r]; ok {
				return order
			}
		}
	}
	order := make([]ProcessID, n)
	for i := range order {
		order[i] = ProcessID(i + 1)
	}
	return order
}

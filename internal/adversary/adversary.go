package adversary

import (
	"fmt"
	"math/rand"

	"kset/internal/rounds"
)

// None returns the failure-free pattern.
func None() rounds.FailurePattern { return rounds.FailurePattern{} }

// Initial returns a pattern in which processes ids all crash in round 1
// before sending anything — the paper's "initially crashed" processes
// (their entries stay ⊥ in every view).
func Initial(ids ...rounds.ProcessID) rounds.FailurePattern {
	fp := rounds.FailurePattern{Crashes: make(map[rounds.ProcessID]rounds.Crash, len(ids))}
	for _, id := range ids {
		fp.Crashes[id] = rounds.Crash{Round: 1, AfterSends: 0}
	}
	return fp
}

// InitialLast returns Initial over the last count processes p_{n-count+1}..p_n.
func InitialLast(n, count int) rounds.FailurePattern {
	ids := make([]rounds.ProcessID, 0, count)
	for i := 0; i < count; i++ {
		ids = append(ids, rounds.ProcessID(n-i))
	}
	return Initial(ids...)
}

// Stagger returns the containment-chain adversary of the agreement proof's
// counting argument: in round 1, the last c1 processes crash with
// increasing send prefixes (the i-th delivers to only the first i
// processes), giving survivors views that differ as much as the model
// allows; from round 2 on, perRound further processes crash per round, each
// delivering only to the first process. Crashes stop when total crashes
// reach t.
func Stagger(n, t, c1, perRound, maxRounds int) rounds.FailurePattern {
	fp := rounds.FailurePattern{Crashes: make(map[rounds.ProcessID]rounds.Crash)}
	next := rounds.ProcessID(n) // crash from the highest id down
	crashed := 0
	for i := 0; i < c1 && crashed < t && next >= 1; i++ {
		fp.Crashes[next] = rounds.Crash{Round: 1, AfterSends: i % (n + 1)}
		next--
		crashed++
	}
	for r := 2; r <= maxRounds && crashed < t; r++ {
		for i := 0; i < perRound && crashed < t && next >= 1; i++ {
			fp.Crashes[next] = rounds.Crash{Round: r, AfterSends: 1}
			next--
			crashed++
		}
	}
	return fp
}

// MidRound returns a pattern in which each listed process crashes during
// its send phase of the given round, after delivering to the first ⌈n/2⌉
// processes: the mid-round adversary that splits a round's receivers into
// those that heard the crashed sender and those that did not.
func MidRound(n, round int, ids ...rounds.ProcessID) rounds.FailurePattern {
	fp := rounds.FailurePattern{Crashes: make(map[rounds.ProcessID]rounds.Crash, len(ids))}
	for _, id := range ids {
		fp.Crashes[id] = rounds.Crash{Round: round, AfterSends: (n + 1) / 2}
	}
	return fp
}

// Random returns a random pattern with at most t crashes within maxRounds
// rounds, with uniformly random crash rounds and send prefixes.
func Random(r *rand.Rand, n, t, maxRounds int) rounds.FailurePattern {
	fp := rounds.FailurePattern{Crashes: make(map[rounds.ProcessID]rounds.Crash)}
	count := r.Intn(t + 1)
	perm := r.Perm(n)
	for i := 0; i < count; i++ {
		fp.Crashes[rounds.ProcessID(perm[i]+1)] = rounds.Crash{
			Round:      1 + r.Intn(maxRounds),
			AfterSends: r.Intn(n + 1),
		}
	}
	return fp
}

// Enumerate calls fn on every prefix-send failure pattern with at most t
// crashes in rounds 1..maxRounds over n processes, including the
// failure-free pattern. Enumeration stops early if fn returns false.
//
// The pattern space is Σ_{f≤t} C(n,f)·(maxRounds·(n+1))^f: exhaustive model
// checking is practical for small n, t and round counts only — use Count
// to budget before running. The callback must not retain the pattern: one
// pattern and its Crashes map are reused across every step, so the
// enumeration itself allocates nothing after its single map. core.Exhaust
// couples this with a reused engine and Result for allocation-free safety
// sweeps.
func Enumerate(n, t, maxRounds int, fn func(rounds.FailurePattern) bool) error {
	if n < 1 || t < 0 || t > n || maxRounds < 1 {
		return fmt.Errorf("adversary: bad enumeration domain n=%d t=%d rounds=%d", n, t, maxRounds)
	}
	fp := rounds.FailurePattern{Crashes: make(map[rounds.ProcessID]rounds.Crash)}
	var rec func(firstID int) bool
	rec = func(firstID int) bool {
		if !fn(fp) {
			return false
		}
		if len(fp.Crashes) == t {
			return true
		}
		for id := firstID; id <= n; id++ {
			for r := 1; r <= maxRounds; r++ {
				for sends := 0; sends <= n; sends++ {
					fp.Crashes[rounds.ProcessID(id)] = rounds.Crash{Round: r, AfterSends: sends}
					if !rec(id + 1) {
						return false
					}
					delete(fp.Crashes, rounds.ProcessID(id))
				}
			}
		}
		return true
	}
	rec(1)
	return nil
}

// Count returns the number of patterns Enumerate generates.
func Count(n, t, maxRounds int) int64 {
	perProcess := int64(maxRounds) * int64(n+1)
	total := int64(0)
	// Σ_{f=0..t} C(n,f) · perProcess^f.
	comb := int64(1)
	pow := int64(1)
	for f := 0; f <= t; f++ {
		if f > 0 {
			comb = comb * int64(n-f+1) / int64(f)
			pow *= perProcess
		}
		total += comb * pow
	}
	return total
}

package adversary

import (
	"testing"

	"kset/internal/rounds"
)

func TestReversedOrder(t *testing.T) {
	got := reversedOrder(4)
	want := []rounds.ProcessID{4, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reversedOrder = %v, want %v", got, want)
		}
	}
}

func TestEnumerateWithOrdersMatchesCount(t *testing.T) {
	for _, tc := range []struct{ n, t, r int }{
		{2, 1, 2}, {3, 1, 2}, {3, 2, 2}, {4, 2, 2},
	} {
		var got int64
		err := EnumerateWithOrders(tc.n, tc.t, tc.r, func(fp rounds.FailurePattern) bool {
			got++
			if err := fp.Validate(tc.n, tc.r); err != nil {
				t.Fatalf("invalid pattern %+v: %v", fp, err)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := CountWithOrders(tc.n, tc.t, tc.r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("n=%d t=%d r=%d: enumerated %d, counted %d", tc.n, tc.t, tc.r, got, want)
		}
		// Strictly more patterns than the identity-only enumeration
		// whenever late partial crashes exist.
		if plain := Count(tc.n, tc.t, tc.r); got <= plain {
			t.Errorf("n=%d t=%d r=%d: with-orders %d ≤ plain %d", tc.n, tc.t, tc.r, got, plain)
		}
	}
}

func TestEnumerateWithOrdersEmitsReversals(t *testing.T) {
	seenReversed := false
	err := EnumerateWithOrders(3, 1, 2, func(fp rounds.FailurePattern) bool {
		if len(fp.Orders) > 0 {
			seenReversed = true
			for id, byRound := range fp.Orders {
				cr := fp.Crashes[id]
				if _, ok := byRound[cr.Round]; !ok {
					t.Fatalf("order for p%d not at its crash round", id)
				}
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seenReversed {
		t.Error("no reversed-order variant emitted")
	}
}

func TestEnumerateWithOrdersEarlyStop(t *testing.T) {
	count := 0
	if err := EnumerateWithOrders(3, 2, 2, func(rounds.FailurePattern) bool {
		count++
		return count < 7
	}); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Errorf("early stop after %d", count)
	}
}

func TestCountWithOrdersErrors(t *testing.T) {
	if _, err := CountWithOrders(0, 0, 1); err == nil {
		t.Error("want error")
	}
}

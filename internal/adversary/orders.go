package adversary

import (
	"fmt"

	"kset/internal/rounds"
)

// The paper's model fixes the send order only in round 1; from round 2 on
// the adversary may deliver a crashing process's prefix in any order. The
// plain Enumerate uses the identity order everywhere, which biases partial
// deliveries toward low process ids. EnumerateWithOrders additionally
// assigns each late-round partial crash the reversed order, covering the
// opposite knowledge distribution (high ids informed, low ids starved) and
// every mix of the two across crashers.

// reversedOrder returns p_n..p_1.
func reversedOrder(n int) []rounds.ProcessID {
	order := make([]rounds.ProcessID, n)
	for i := range order {
		order[i] = rounds.ProcessID(n - i)
	}
	return order
}

// EnumerateWithOrders calls fn on every pattern Enumerate generates, and
// additionally on every variant that reverses the send order of some
// subset of the late-round partial crashers (crashes in rounds ≥ 2 with
// 0 < AfterSends < n). The callback must not retain the pattern: like
// Enumerate, the variants reuse one Orders map (and one inner per-round
// map per crasher slot) across all steps instead of copying the pattern's
// maps per variant, so a sweep's order expansion allocates nothing after
// warm-up.
func EnumerateWithOrders(n, t, maxRounds int, fn func(rounds.FailurePattern) bool) error {
	rev := reversedOrder(n)
	partial := make([]rounds.ProcessID, 0, n)
	orders := make(map[rounds.ProcessID]map[int][]rounds.ProcessID, n)
	var inner []map[int][]rounds.ProcessID // reusable inner map per partial slot
	return Enumerate(n, t, maxRounds, func(fp rounds.FailurePattern) bool {
		// Collect the crashers whose delivery order matters, in id order
		// (the Crashes map iterates randomly; sorting keeps the variant
		// sequence deterministic).
		partial = partial[:0]
		for id, cr := range fp.Crashes {
			if cr.Round >= 2 && cr.AfterSends > 0 && cr.AfterSends < n {
				partial = append(partial, id)
			}
		}
		// Insertion sort: at most t elements, and it allocates nothing.
		for i := 1; i < len(partial); i++ {
			for j := i; j > 0 && partial[j] < partial[j-1]; j-- {
				partial[j], partial[j-1] = partial[j-1], partial[j]
			}
		}
		for len(inner) < len(partial) {
			inner = append(inner, make(map[int][]rounds.ProcessID, 1))
		}
		// Try every subset of them reversed (identity subset first).
		for mask := 0; mask < 1<<len(partial); mask++ {
			variant := fp
			if mask != 0 {
				clear(orders)
				for b, id := range partial {
					if mask&(1<<b) != 0 {
						m := inner[b]
						clear(m)
						m[fp.Crashes[id].Round] = rev
						orders[id] = m
					}
				}
				variant.Orders = orders
			}
			if !fn(variant) {
				return false
			}
		}
		return true
	})
}

// CountWithOrders returns the number of patterns EnumerateWithOrders
// generates. It enumerates crash placements (cheap: no protocol runs) to
// count the order variants exactly.
func CountWithOrders(n, t, maxRounds int) (int64, error) {
	if n < 1 || t < 0 || t > n || maxRounds < 1 {
		return 0, fmt.Errorf("adversary: bad enumeration domain n=%d t=%d rounds=%d", n, t, maxRounds)
	}
	var total int64
	err := Enumerate(n, t, maxRounds, func(fp rounds.FailurePattern) bool {
		partial := 0
		for _, cr := range fp.Crashes {
			if cr.Round >= 2 && cr.AfterSends > 0 && cr.AfterSends < n {
				partial++
			}
		}
		total += int64(1) << partial
		return true
	})
	return total, err
}

package adversary

import (
	"math/rand"

	"kset/internal/rounds"
)

// Family is a finite, deterministic, indexed family of failure patterns —
// the adversary-side counterpart of a scenario stream. A family is defined
// by its size and a pure index → pattern function, so enumeration is
// random-access and resumable: Pattern(i) always returns the same pattern
// for the same family, which is what keeps generator-fed campaigns
// reproducible run to run.
type Family struct {
	name string
	size int
	gen  func(i int) rounds.FailurePattern
}

// NewFamily builds a family from a name, a size and a pure index → pattern
// function. gen must be deterministic; it is called with indices 0..size-1.
func NewFamily(name string, size int, gen func(i int) rounds.FailurePattern) Family {
	if size < 0 {
		size = 0
	}
	return Family{name: name, size: size, gen: gen}
}

// Name returns the family's label, used in scenario and sweep keys.
func (f Family) Name() string { return f.name }

// Size returns the number of patterns in the family.
func (f Family) Size() int { return f.size }

// Pattern returns the i-th pattern. It panics when i is out of range.
func (f Family) Pattern(i int) rounds.FailurePattern {
	if i < 0 || i >= f.size {
		panic("adversary: family index out of range")
	}
	return f.gen(i)
}

// ForEach calls fn on every pattern of the family in index order, stopping
// early when fn returns false.
func (f Family) ForEach(fn func(i int, fp rounds.FailurePattern) bool) {
	for i := 0; i < f.size; i++ {
		if !fn(i, f.gen(i)) {
			return
		}
	}
}

// FixedFamily wraps an explicit pattern list as a family.
func FixedFamily(name string, fps ...rounds.FailurePattern) Family {
	return NewFamily(name, len(fps), func(i int) rounds.FailurePattern { return fps[i] })
}

// InitialFamily is the family {InitialLast(n, f) : f = 0..maxCrashes} —
// the f-sweep of the early-decision experiments: pattern i crashes the
// last i processes before they send anything.
func InitialFamily(n, maxCrashes int) Family {
	if maxCrashes > n {
		maxCrashes = n
	}
	return NewFamily("initial", maxCrashes+1, func(i int) rounds.FailurePattern {
		return InitialLast(n, i)
	})
}

// StaggerFamily is the family of containment-chain worst-case adversaries
// {Stagger(n, t, c1, 1, maxRounds) : c1 = 0..t}: pattern i spends i of the
// t crashes on round-1 staggered prefixes and the rest one per round.
func StaggerFamily(n, t, maxRounds int) Family {
	return NewFamily("stagger", t+1, func(i int) rounds.FailurePattern {
		return Stagger(n, t, i, 1, maxRounds)
	})
}

// RandomFamily is a family of count seeded random patterns (at most t
// crashes within maxRounds rounds each). Pattern i is drawn from its own
// source seeded with seed+i, so the family is random-access deterministic:
// the same (seed, n, t, maxRounds, count) always yields the same patterns.
func RandomFamily(seed int64, n, t, maxRounds, count int) Family {
	return NewFamily("random", count, func(i int) rounds.FailurePattern {
		return Random(rand.New(rand.NewSource(seed+int64(i))), n, t, maxRounds)
	})
}

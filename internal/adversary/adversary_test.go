package adversary

import (
	"math/rand"
	"testing"

	"kset/internal/rounds"
)

func TestNone(t *testing.T) {
	if got := None().NumCrashes(); got != 0 {
		t.Errorf("None has %d crashes", got)
	}
}

func TestInitialLast(t *testing.T) {
	fp := InitialLast(6, 2)
	if fp.NumCrashes() != 2 || fp.InitialCrashes() != 2 {
		t.Fatalf("bad pattern %+v", fp)
	}
	for _, id := range []rounds.ProcessID{5, 6} {
		cr, ok := fp.Crashes[id]
		if !ok || cr.Round != 1 || cr.AfterSends != 0 {
			t.Errorf("p%d crash = %+v, want initial", id, cr)
		}
	}
	if err := fp.Validate(6, 3); err != nil {
		t.Error(err)
	}
}

func TestStagger(t *testing.T) {
	n, tt := 8, 5
	fp := Stagger(n, tt, 3, 2, 4)
	if got := fp.NumCrashes(); got != tt {
		t.Errorf("crashes = %d, want %d", got, tt)
	}
	if err := fp.Validate(n, 4); err != nil {
		t.Error(err)
	}
	round1 := 0
	for _, cr := range fp.Crashes {
		if cr.Round == 1 {
			round1++
		}
	}
	if round1 != 3 {
		t.Errorf("round-1 crashes = %d, want 3", round1)
	}
	// Never exceeds t even when asked for more.
	fp = Stagger(4, 2, 3, 3, 5)
	if got := fp.NumCrashes(); got != 2 {
		t.Errorf("crashes = %d, want capped at 2", got)
	}
}

func TestRandomValid(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(6)
		tt := r.Intn(n)
		fp := Random(r, n, tt, 4)
		if fp.NumCrashes() > tt {
			t.Fatalf("too many crashes: %+v", fp)
		}
		if err := fp.Validate(n, 4); err != nil {
			t.Fatalf("invalid pattern: %v", err)
		}
	}
}

func TestEnumerateMatchesCount(t *testing.T) {
	for _, tc := range []struct{ n, t, r int }{
		{2, 1, 2}, {3, 1, 2}, {3, 2, 2}, {4, 2, 1},
	} {
		var got int64
		err := Enumerate(tc.n, tc.t, tc.r, func(fp rounds.FailurePattern) bool {
			got++
			if err := fp.Validate(tc.n, tc.r); err != nil {
				t.Fatalf("enumerated invalid pattern: %v", err)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := Count(tc.n, tc.t, tc.r); got != want {
			t.Errorf("Enumerate(n=%d,t=%d,r=%d) = %d patterns, Count = %d",
				tc.n, tc.t, tc.r, got, want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	var seen int
	if err := Enumerate(3, 2, 2, func(rounds.FailurePattern) bool {
		seen++
		return seen < 10
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Errorf("early stop after %d", seen)
	}
}

func TestEnumerateErrors(t *testing.T) {
	for _, tc := range []struct{ n, t, r int }{
		{0, 0, 1}, {3, -1, 1}, {3, 4, 1}, {3, 1, 0},
	} {
		if err := Enumerate(tc.n, tc.t, tc.r, func(rounds.FailurePattern) bool { return true }); err == nil {
			t.Errorf("Enumerate(%+v): want error", tc)
		}
	}
}

func TestCountSmall(t *testing.T) {
	// n=2, t=1, r=1: 1 + C(2,1)·(1·3) = 7.
	if got := Count(2, 1, 1); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
}

package adversary

import (
	"kset/internal/faultnet"
)

// FaultFamily is a finite, deterministic, indexed family of fault plans —
// the link-fault counterpart of Family. Like Family it is defined by a
// size and a pure index → plan function, so fault sweeps are
// random-access and reproducible; by convention index 0 is fault-free,
// anchoring every sweep to the reliable baseline.
//
// The generator caches nothing, so Plan(i) returns a fresh *faultnet.Plan
// each call; callers that need pointer-stable plans (the transport caches
// derived state by plan pointer) should materialize the family once per
// iteration, as the kset generators do.
type FaultFamily struct {
	name string
	size int
	gen  func(i int) *faultnet.Plan
}

// NewFaultFamily builds a family from a name, a size and a pure index →
// plan function. gen must be deterministic; it is called with indices
// 0..size-1.
func NewFaultFamily(name string, size int, gen func(i int) *faultnet.Plan) FaultFamily {
	if size < 0 {
		size = 0
	}
	return FaultFamily{name: name, size: size, gen: gen}
}

// Name returns the family's label, used in scenario and sweep keys.
func (f FaultFamily) Name() string { return f.name }

// Size returns the number of plans in the family.
func (f FaultFamily) Size() int { return f.size }

// Plan returns the i-th plan. It panics when i is out of range.
func (f FaultFamily) Plan(i int) *faultnet.Plan {
	if i < 0 || i >= f.size {
		panic("adversary: fault family index out of range")
	}
	return f.gen(i)
}

// frac returns i scaled into [0, 1] over a family of the given size
// (index 0 ↦ 0, the last index ↦ 1).
func frac(i, size int) float64 {
	if size <= 1 {
		return 0
	}
	return float64(i) / float64(size-1)
}

// LossSweep is the family of size uniform-loss plans ramping the
// every-link loss rate linearly from 0 (index 0: fault-free) to maxLoss —
// the loss axis of a fault trade-off grid.
func LossSweep(seed int64, size int, maxLoss float64) FaultFamily {
	return NewFaultFamily("loss", size, func(i int) *faultnet.Plan {
		p := &faultnet.Plan{Seed: seed + int64(i)}
		if rate := maxLoss * frac(i, size); rate > 0 {
			p.Default = faultnet.LinkFaults{Loss: rate}
		}
		return p
	})
}

// DelaySweep is the family of size uniform-delay plans: plan i defers
// each copy with probability prob by up to i rounds (index 0:
// fault-free) — the delay-bound axis of a fault trade-off grid.
func DelaySweep(seed int64, size int, prob float64) FaultFamily {
	return NewFaultFamily("delay", size, func(i int) *faultnet.Plan {
		p := &faultnet.Plan{Seed: seed + int64(i)}
		if i > 0 && prob > 0 {
			p.Default = faultnet.LinkFaults{DelayProb: prob, MaxDelay: i}
		}
		return p
	})
}

// Storm is the family of size everything-at-once plans: plan i scales
// loss, delay (up to maxDelay rounds), duplication and send-order
// reordering together from 0 (index 0: fault-free) to the given peak
// intensity — the stress axis that bounds how badly a protocol can
// degrade when every fault kind strikes at once.
func Storm(seed int64, size, maxDelay int, intensity float64) FaultFamily {
	if maxDelay < 1 {
		maxDelay = 1
	}
	return NewFaultFamily("storm", size, func(i int) *faultnet.Plan {
		p := &faultnet.Plan{Seed: seed + int64(i)}
		if x := intensity * frac(i, size); x > 0 {
			p.Default = faultnet.LinkFaults{
				Loss:      x,
				DelayProb: x,
				MaxDelay:  maxDelay,
				Duplicate: x,
			}
			p.Reorder = x
		}
		return p
	})
}

// Package adversary generates failure patterns for the synchronous model
// of the paper's Section 6.2 — the crash adversary that picks which
// processes crash, in which round, after delivering to which prefix of
// their send order.
//
// Three generation styles cover the module's workloads:
//
//   - canned scenarios: the failure-free pattern, initial crashes (the
//     paper's "initially crashed" processes whose entries stay ⊥), the
//     mid-round splitter, and the staggered containment-chain worst case
//     of the agreement proof's counting argument;
//   - deterministic, indexed Family values (fixed lists, the f-sweep
//     initial family, staggered and seeded-random families) — the
//     adversary side of the root package's scenario generators, where
//     random-access determinism keeps generated campaigns reproducible;
//   - exhaustive enumeration of every prefix-send crash pattern
//     (Enumerate, EnumerateWithOrders) for model checking small
//     configurations, with Count to budget the pattern space first.
//
// Beyond the paper's crash-only model, the package also builds the link
// adversary: deterministic indexed FaultFamily values over faultnet
// plans (LossSweep, DelaySweep, Storm) — the fault-plane counterpart of
// Family, feeding the root package's fault generators and sweeps.
package adversary

package wire

import (
	"encoding/binary"
	"fmt"

	"kset/internal/kerr"
	"kset/internal/rounds"
)

// Frame layout, big-endian, at most MaxFrame = 15 bytes per datagram:
//
//	offset  size  field
//	0       1     version byte (0x6B)
//	1       1     frame type (data=1 ack=2 fin=3 finack=4)
//	2       2     round number, uint16, ≥ 1
//	4       1     source process ID, 1..n
//	5       1     destination process ID, 1..n
//	6       1     payload kind byte        (data frames only)
//	7       …     payload                  (data frames only)
//
// The payload kind byte is a base kind in its low nibble plus flag bits:
//
//	0x01  value       1 byte: a proposal/estimate value 0..64
//	0x02  state       8 bytes: Key64 of the (cond, out, tmf) state triple
//	0x03  state-raw   3 bytes: one per field — canonical only when the
//	                  triple is not Key64-packable (some field is 64)
//	0x40  early       payload is wrapped in a core.EarlyMsg
//	0x80  decide      the EarlyMsg flag is set (requires 0x40)
//
// Bits 0x30 are reserved and must be zero. Every frame has exactly one
// valid length, so the decoder rejects both truncation and trailing
// garbage, and any accepted frame re-encodes byte-identically.

// Version is the first byte of every frame. A datagram that does not
// start with it is not ours and is dropped before any decoding.
const Version byte = 0x6B

// MaxFrame is the size of the largest encodable frame (a data frame
// carrying a Key64-packed state triple). Receive buffers of this size
// never truncate a valid frame.
const MaxFrame = 15

// MaxRound is the largest round number the 16-bit round field can carry —
// orders of magnitude above the protocols' t+1 bound.
const MaxRound = 1<<16 - 1

// headerSize is the fixed prefix shared by all frame types.
const headerSize = 6

// FrameType discriminates the four datagram kinds.
type FrameType byte

// The four frame types. Data frames carry one round payload; acks confirm
// receipt of one data frame (echoing its round and direction); fin frames
// announce the sender has left the round loop (decided, halted, or run
// out of rounds) so peers stop expecting payloads from it; finacks
// confirm a fin so the finished peer can stop lingering.
const (
	TypeData   FrameType = 1
	TypeAck    FrameType = 2
	TypeFin    FrameType = 3
	TypeFinAck FrameType = 4
)

// String names the frame type for errors and traces.
func (t FrameType) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypeFin:
		return "fin"
	case TypeFinAck:
		return "finack"
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// Frame is one decoded datagram. For data frames Payload holds the round
// payload exactly as the engine hands it to Transport.Send: a
// vector.Value, a *core.StateMsg, or a core.EarlyMsg wrapping one of
// those. For the other types Payload is nil and Round carries the frame's
// round context (for a fin: the last round the sender participated in).
type Frame struct {
	Type     FrameType
	Round    int
	Src, Dst rounds.ProcessID
	Payload  any
}

// badFrame builds a decode/encode error wrapping the codec sentinel.
func badFrame(format string, args ...any) error {
	return fmt.Errorf("wire: "+format+": %w", append(args, kerr.ErrBadFrame)...)
}

// EncodeFrame writes f into buf, which must hold at least MaxFrame bytes,
// and returns the encoded length. It allocates nothing on success; a
// frame that cannot be represented (unknown type, out-of-range field,
// unsupported payload) yields an error wrapping kerr.ErrBadFrame.
func EncodeFrame(buf []byte, f *Frame) (int, error) {
	if len(buf) < MaxFrame {
		return 0, badFrame("encode buffer holds %d bytes, need %d", len(buf), MaxFrame)
	}
	if f.Round < 1 || f.Round > MaxRound {
		return 0, badFrame("round %d outside 1..%d", f.Round, MaxRound)
	}
	if f.Src < 1 || f.Src > 255 || f.Dst < 1 || f.Dst > 255 {
		return 0, badFrame("process IDs (%d→%d) outside 1..255", f.Src, f.Dst)
	}
	buf[0] = Version
	buf[1] = byte(f.Type)
	binary.BigEndian.PutUint16(buf[2:4], uint16(f.Round))
	buf[4] = byte(f.Src)
	buf[5] = byte(f.Dst)
	switch f.Type {
	case TypeAck, TypeFin, TypeFinAck:
		if f.Payload != nil {
			return 0, badFrame("%v frame carries a payload", f.Type)
		}
		return headerSize, nil
	case TypeData:
		return encodePayload(buf, f.Payload)
	}
	return 0, badFrame("unknown frame type %d", byte(f.Type))
}

// DecodeFrame parses one datagram. It never panics: arbitrary input
// yields either a valid Frame or an error wrapping kerr.ErrBadFrame. The
// decoder is strict — exact lengths, reserved bits clear, fields in
// range, canonical payload encoding — so every accepted frame re-encodes
// to the same bytes.
func DecodeFrame(data []byte) (Frame, error) {
	var f Frame
	if len(data) < headerSize {
		return f, badFrame("short frame: %d bytes", len(data))
	}
	if data[0] != Version {
		return f, badFrame("version byte %#x, want %#x", data[0], Version)
	}
	f.Type = FrameType(data[1])
	f.Round = int(binary.BigEndian.Uint16(data[2:4]))
	if f.Round == 0 {
		return f, badFrame("round 0")
	}
	f.Src = rounds.ProcessID(data[4])
	f.Dst = rounds.ProcessID(data[5])
	if f.Src == 0 || f.Dst == 0 {
		return f, badFrame("process ID 0")
	}
	switch f.Type {
	case TypeAck, TypeFin, TypeFinAck:
		if len(data) != headerSize {
			return f, badFrame("%v frame has %d trailing bytes", f.Type, len(data)-headerSize)
		}
		return f, nil
	case TypeData:
		if len(data) < headerSize+1 {
			return f, badFrame("data frame without payload kind")
		}
		p, err := decodePayload(data[6:])
		if err != nil {
			return f, err
		}
		f.Payload = p
		return f, nil
	}
	return f, badFrame("unknown frame type %d", data[1])
}

// Peek is the cheap validity filter run on every received datagram before
// full decoding — the header fields are read, the payload is not touched.
// It reports the frame's type, round and direction so receivers can drop
// duplicates, stale rounds and misdirected frames without paying for
// payload decoding; n bounds the process IDs (0 skips that check). ok is
// false for anything DecodeFrame could not possibly accept.
func Peek(data []byte, n int) (t FrameType, round int, src, dst rounds.ProcessID, ok bool) {
	if len(data) < headerSize || data[0] != Version {
		return 0, 0, 0, 0, false
	}
	t = FrameType(data[1])
	switch t {
	case TypeData:
		if len(data) < headerSize+2 || len(data) > MaxFrame {
			return 0, 0, 0, 0, false
		}
	case TypeAck, TypeFin, TypeFinAck:
		if len(data) != headerSize {
			return 0, 0, 0, 0, false
		}
	default:
		return 0, 0, 0, 0, false
	}
	round = int(binary.BigEndian.Uint16(data[2:4]))
	src = rounds.ProcessID(data[4])
	dst = rounds.ProcessID(data[5])
	if round == 0 || src == 0 || dst == 0 {
		return 0, 0, 0, 0, false
	}
	if n > 0 && (int(src) > n || int(dst) > n) {
		return 0, 0, 0, 0, false
	}
	return t, round, src, dst, true
}

package wire

import (
	"testing"

	"kset/internal/core"
	"kset/internal/vector"
)

// BenchmarkWireEncode is the hot path of every transmission: one state
// triple packed into a fixed buffer. Budget: 0 allocs/op (enforced by
// scripts/benchgate.sh).
func BenchmarkWireEncode(b *testing.B) {
	var buf [MaxFrame]byte
	msg := &core.StateMsg{Cond: 3, Out: 0, Tmf: 12}
	f := Frame{Type: TypeData, Round: 2, Src: 1, Dst: 4, Payload: msg}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeFrame(buf[:], &f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecode round-trips the same frame back out; the one
// alloc/op is the re-materialized *StateMsg the protocol consumes.
func BenchmarkWireDecode(b *testing.B) {
	var buf [MaxFrame]byte
	f := Frame{Type: TypeData, Round: 2, Src: 1, Dst: 4, Payload: &core.StateMsg{Cond: 3, Out: 0, Tmf: 12}}
	n, err := EncodeFrame(buf[:], &f)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(buf[:n]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeValue covers the round-1 proposal shape.
func BenchmarkWireEncodeValue(b *testing.B) {
	var buf [MaxFrame]byte
	f := Frame{Type: TypeData, Round: 1, Src: 1, Dst: 4, Payload: vector.Value(7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeFrame(buf[:], &f); err != nil {
			b.Fatal(err)
		}
	}
}

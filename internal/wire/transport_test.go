package wire_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/vector"
	"kset/internal/wire"
)

// testScenario is the shared agreement instance of the equality tests:
// n=4, t=2, k=2 over a max condition with one mid-run crash.
func testScenario() (core.Params, condition.Condition, vector.Vector, rounds.FailurePattern) {
	p := core.Params{N: 4, T: 2, K: 2, D: 1, L: 1}
	c := condition.MustNewMax(p.N, 3, p.X(), p.L)
	input := vector.OfInts(2, 1, 3, 1)
	fp := rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{
		2: {Round: 1, AfterSends: 2},
	}}
	return p, c, input, fp
}

// pipeNetDial builds a Loopback dial hook over a fresh in-memory mesh.
func pipeNetDial(pn *wire.PipeNet) func(n int) ([]wire.PacketConn, error) {
	return func(n int) ([]wire.PacketConn, error) {
		conns := make([]wire.PacketConn, n)
		for i := range conns {
			conns[i] = pn.Conn(rounds.ProcessID(i + 1))
		}
		return conns, nil
	}
}

// runCond executes the shared scenario once over tr (nil = matrix).
func runCond(t *testing.T, tr rounds.Transport) *rounds.Result {
	t.Helper()
	p, c, input, fp := testScenario()
	res, err := core.NewRunner().RunCond(p, c, input, fp, false, tr, nil, nil)
	if err != nil {
		t.Fatalf("RunCond: %v", err)
	}
	return res
}

// TestPipeMatchesMatrix: a run through the codec harness is
// byte-identical to the reliable matrix run — decisions, rounds, crash
// set and message counts all equal.
func TestPipeMatchesMatrix(t *testing.T) {
	want := runCond(t, nil)
	pipe := &wire.PipeTransport{}
	got := runCond(t, pipe)
	if err := pipe.Err(); err != nil {
		t.Fatalf("pipe transport error: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("pipe result diverges from matrix:\n got %+v\nwant %+v", got, want)
	}
}

// TestPipeMatchesMatrixEarlyAndClassical covers the other two payload
// shapes crossing the codec: the early-deciding wrapper and the
// classical estimate flood.
func TestPipeMatchesMatrixEarlyAndClassical(t *testing.T) {
	p, c, input, fp := testScenario()
	r := core.NewRunner()
	wantE, err := r.RunEarly(p, c, input, fp, false, nil, nil, nil)
	if err != nil {
		t.Fatalf("RunEarly: %v", err)
	}
	pipe := &wire.PipeTransport{}
	gotE, err := r.RunEarly(p, c, input, fp, false, pipe, nil, nil)
	if err != nil {
		t.Fatalf("RunEarly over pipe: %v", err)
	}
	if err := pipe.Err(); err != nil {
		t.Fatalf("pipe transport error: %v", err)
	}
	if !reflect.DeepEqual(wantE, gotE) {
		t.Fatalf("early pipe result diverges:\n got %+v\nwant %+v", gotE, wantE)
	}

	wantC, err := r.RunClassical(p.N, p.T, p.K, input, fp, false, nil, nil, nil)
	if err != nil {
		t.Fatalf("RunClassical: %v", err)
	}
	gotC, err := r.RunClassical(p.N, p.T, p.K, input, fp, false, pipe, nil, nil)
	if err != nil {
		t.Fatalf("RunClassical over pipe: %v", err)
	}
	if err := pipe.Err(); err != nil {
		t.Fatalf("pipe transport error: %v", err)
	}
	if !reflect.DeepEqual(wantC, gotC) {
		t.Fatalf("classical pipe result diverges:\n got %+v\nwant %+v", gotC, wantC)
	}
}

// TestLoopbackLosslessMatchesMatrix: with no loss, a run over real UDP
// datagrams produces a byte-identical result to the matrix run.
func TestLoopbackLosslessMatchesMatrix(t *testing.T) {
	want := runCond(t, nil)
	p, _, _, _ := testScenario()
	lb, err := wire.NewLoopback(wire.LoopbackConfig{}, p.N)
	if err != nil {
		t.Fatalf("NewLoopback: %v", err)
	}
	defer lb.Close()
	got := runCond(t, lb)
	if err := lb.Err(); err != nil {
		t.Fatalf("loopback transport error: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("loopback result diverges from matrix:\n got %+v\nwant %+v", got, want)
	}
}

// TestLoopbackRetransmitRecovers: a network dropping the first
// transmission of every data frame still yields the matrix result — the
// retransmission path, not luck, carries the round.
func TestLoopbackRetransmitRecovers(t *testing.T) {
	want := runCond(t, nil)
	p, _, _, _ := testScenario()
	pn := wire.NewPipeNet(p.N)
	var mu sync.Mutex
	seen := map[[3]int]bool{}
	pn.SetDrop(func(src, dst rounds.ProcessID, frame []byte) bool {
		ft, r, _, _, ok := wire.Peek(frame, p.N)
		if !ok || ft != wire.TypeData {
			return false
		}
		key := [3]int{int(src), int(dst), r}
		mu.Lock()
		defer mu.Unlock()
		if !seen[key] {
			seen[key] = true
			return true
		}
		return false
	})
	lb, err := wire.NewLoopback(wire.LoopbackConfig{
		RoundTimeout: 5 * time.Second,
		Retransmit:   time.Millisecond,
		Dial:         pipeNetDial(pn),
	}, p.N)
	if err != nil {
		t.Fatalf("NewLoopback: %v", err)
	}
	defer lb.Close()
	got := runCond(t, lb)
	if err := lb.Err(); err != nil {
		t.Fatalf("loopback transport error: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("lossy loopback result diverges from matrix:\n got %+v\nwant %+v", got, want)
	}
}

// TestLoopbackGivesUpAtDeadline: a destination cut off from one sender
// forever terminates at the round deadline with the copies counted lost
// and folded into the stats plane via rounds.FaultCounter — never a
// hang.
func TestLoopbackGivesUpAtDeadline(t *testing.T) {
	p, _, _, _ := testScenario()
	pn := wire.NewPipeNet(p.N)
	pn.SetDrop(func(src, dst rounds.ProcessID, frame []byte) bool {
		return src == 3 && dst == 1 // p3's copies never reach p1
	})
	lb, err := wire.NewLoopback(wire.LoopbackConfig{
		RoundTimeout: 100 * time.Millisecond,
		Retransmit:   time.Millisecond,
		Dial:         pipeNetDial(pn),
	}, p.N)
	if err != nil {
		t.Fatalf("NewLoopback: %v", err)
	}
	defer lb.Close()
	start := time.Now()
	res := runCond(t, lb)
	if err := lb.Err(); err != nil {
		t.Fatalf("loopback transport error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("lossy run took %v, expected prompt deadline give-up", elapsed)
	}
	lost, _, _ := lb.FaultCounts()
	if lost == 0 || res.Lost != lost {
		t.Fatalf("lost = %d (result %d), want equal and > 0", lost, res.Lost)
	}
	if res.MessagesDelivered >= runCond(t, nil).MessagesDelivered {
		t.Fatalf("delivered count %d not reduced by losses", res.MessagesDelivered)
	}
}

// TestLoopbackCancelAborts: Options.Cancel unblocks a Deliver waiting on
// copies that will never arrive.
func TestLoopbackCancelAborts(t *testing.T) {
	p, c, input, fp := testScenario()
	pn := wire.NewPipeNet(p.N)
	pn.SetDrop(func(src, dst rounds.ProcessID, frame []byte) bool { return true })
	lb, err := wire.NewLoopback(wire.LoopbackConfig{
		RoundTimeout: time.Hour, // only cancellation can end the wait
		Retransmit:   10 * time.Millisecond,
		Dial:         pipeNetDial(pn),
	}, p.N)
	if err != nil {
		t.Fatalf("NewLoopback: %v", err)
	}
	defer lb.Close()
	cancel := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	_, err = core.NewRunner().RunCond(p, c, input, fp, false, lb, cancel, nil)
	if !errors.Is(err, rounds.ErrCanceled) {
		t.Fatalf("err = %v, want rounds.ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

package wire_test

import (
	"testing"

	"kset/internal/rounds"
	"kset/internal/rounds/transporttest"
	"kset/internal/wire"
)

// TestPipeTransportConformance pins the deterministic codec harness to
// the shared Transport contract.
func TestPipeTransportConformance(t *testing.T) {
	transporttest.Run(t, func(tb testing.TB, n int) rounds.Transport {
		p := &wire.PipeTransport{}
		tb.Cleanup(func() {
			if err := p.Err(); err != nil {
				tb.Fatalf("pipe transport error: %v", err)
			}
		})
		return p
	})
}

// TestLoopbackUDPConformance runs the contract over real UDP sockets on
// 127.0.0.1 — every copy crosses the kernel.
func TestLoopbackUDPConformance(t *testing.T) {
	transporttest.Run(t, func(tb testing.TB, n int) rounds.Transport {
		lb, err := wire.NewLoopback(wire.LoopbackConfig{}, n)
		if err != nil {
			tb.Fatalf("NewLoopback: %v", err)
		}
		tb.Cleanup(func() {
			if err := lb.Err(); err != nil {
				tb.Fatalf("loopback transport error: %v", err)
			}
			lb.Close()
		})
		return lb
	})
}

// TestLoopbackPipeNetConformance runs the same contract over the
// in-memory mesh, so the loopback state machine is covered even where
// the sandbox forbids sockets.
func TestLoopbackPipeNetConformance(t *testing.T) {
	transporttest.Run(t, func(tb testing.TB, n int) rounds.Transport {
		lb, err := wire.NewLoopback(wire.LoopbackConfig{
			Dial: func(n int) ([]wire.PacketConn, error) {
				pn := wire.NewPipeNet(n)
				conns := make([]wire.PacketConn, n)
				for i := range conns {
					conns[i] = pn.Conn(rounds.ProcessID(i + 1))
				}
				return conns, nil
			},
		}, n)
		if err != nil {
			tb.Fatalf("NewLoopback: %v", err)
		}
		tb.Cleanup(func() {
			if err := lb.Err(); err != nil {
				tb.Fatalf("loopback transport error: %v", err)
			}
			lb.Close()
		})
		return lb
	})
}

package wire

import (
	"bytes"
	"errors"
	"testing"

	"kset/internal/core"
	"kset/internal/kerr"
	"kset/internal/vector"
)

// mustEncode encodes f or fails the test.
func mustEncode(t *testing.T, f *Frame) []byte {
	t.Helper()
	var buf [MaxFrame]byte
	n, err := EncodeFrame(buf[:], f)
	if err != nil {
		t.Fatalf("EncodeFrame(%+v): %v", f, err)
	}
	return buf[:n]
}

// roundTripFrames is the shared corpus of valid frames: every type, every
// payload shape, both state encodings, the early wrapper with and without
// its flag, and the field extremes.
func roundTripFrames() []Frame {
	return []Frame{
		{Type: TypeAck, Round: 1, Src: 1, Dst: 2},
		{Type: TypeFin, Round: MaxRound, Src: 255, Dst: 1},
		{Type: TypeFinAck, Round: 7, Src: 3, Dst: 3},
		{Type: TypeData, Round: 1, Src: 2, Dst: 5, Payload: vector.Value(0)},
		{Type: TypeData, Round: 1, Src: 2, Dst: 5, Payload: vector.Value(17)},
		{Type: TypeData, Round: 9, Src: 1, Dst: 1, Payload: vector.MaxSetValue},
		{Type: TypeData, Round: 2, Src: 4, Dst: 2, Payload: &core.StateMsg{Cond: 3, Out: 0, Tmf: 1}},
		{Type: TypeData, Round: 2, Src: 4, Dst: 2, Payload: &core.StateMsg{}},
		{Type: TypeData, Round: 2, Src: 4, Dst: 2, Payload: &core.StateMsg{Cond: 63, Out: 63, Tmf: 63}},
		{Type: TypeData, Round: 3, Src: 1, Dst: 2, Payload: &core.StateMsg{Cond: 64, Out: 0, Tmf: 5}},
		{Type: TypeData, Round: 3, Src: 1, Dst: 2, Payload: &core.StateMsg{Cond: 64, Out: 64, Tmf: 64}},
		{Type: TypeData, Round: 1, Src: 5, Dst: 6, Payload: core.EarlyMsg{Payload: vector.Value(4), Flag: false}},
		{Type: TypeData, Round: 1, Src: 5, Dst: 6, Payload: core.EarlyMsg{Payload: vector.Value(4), Flag: true}},
		{Type: TypeData, Round: 4, Src: 6, Dst: 5, Payload: core.EarlyMsg{Payload: &core.StateMsg{Cond: 2, Out: 1, Tmf: 0}, Flag: true}},
		{Type: TypeData, Round: 4, Src: 6, Dst: 5, Payload: core.EarlyMsg{Payload: &core.StateMsg{Out: 64}, Flag: false}},
	}
}

// samePayload compares payloads by value (state messages cross the codec
// by content, not pointer).
func samePayload(a, b any) bool {
	if ea, ok := a.(core.EarlyMsg); ok {
		eb, ok := b.(core.EarlyMsg)
		return ok && ea.Flag == eb.Flag && samePayload(ea.Payload, eb.Payload)
	}
	if sa, ok := a.(*core.StateMsg); ok {
		sb, ok := b.(*core.StateMsg)
		return ok && *sa == *sb
	}
	return a == b
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range roundTripFrames() {
		enc := mustEncode(t, &f)
		got, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("DecodeFrame(%+v): %v", f, err)
		}
		if got.Type != f.Type || got.Round != f.Round || got.Src != f.Src || got.Dst != f.Dst {
			t.Fatalf("decode %+v: header mismatch: %+v", f, got)
		}
		if !samePayload(f.Payload, got.Payload) {
			t.Fatalf("decode %+v: payload %#v, want %#v", f, got.Payload, f.Payload)
		}
		re := mustEncode(t, &got)
		if !bytes.Equal(enc, re) {
			t.Fatalf("re-encode of %+v changed bytes: %x vs %x", f, re, enc)
		}
		pt, pr, psrc, pdst, ok := Peek(enc, 0)
		if !ok || pt != f.Type || pr != f.Round || psrc != f.Src || pdst != f.Dst {
			t.Fatalf("Peek disagrees with decode on %+v: %v %v %v %v %v", f, pt, pr, psrc, pdst, ok)
		}
	}
}

func TestEncodeRejects(t *testing.T) {
	cases := []struct {
		name string
		f    Frame
	}{
		{"unknown type", Frame{Type: 9, Round: 1, Src: 1, Dst: 2}},
		{"round zero", Frame{Type: TypeAck, Round: 0, Src: 1, Dst: 2}},
		{"round too big", Frame{Type: TypeAck, Round: MaxRound + 1, Src: 1, Dst: 2}},
		{"src zero", Frame{Type: TypeAck, Round: 1, Src: 0, Dst: 2}},
		{"dst overflow", Frame{Type: TypeAck, Round: 1, Src: 1, Dst: 256}},
		{"payload on ack", Frame{Type: TypeAck, Round: 1, Src: 1, Dst: 2, Payload: vector.Value(1)}},
		{"nil data payload", Frame{Type: TypeData, Round: 1, Src: 1, Dst: 2}},
		{"nil state", Frame{Type: TypeData, Round: 1, Src: 1, Dst: 2, Payload: (*core.StateMsg)(nil)}},
		{"value above cap", Frame{Type: TypeData, Round: 1, Src: 1, Dst: 2, Payload: vector.MaxSetValue + 1}},
		{"negative value", Frame{Type: TypeData, Round: 1, Src: 1, Dst: 2, Payload: vector.Value(-1)}},
		{"state field above cap", Frame{Type: TypeData, Round: 1, Src: 1, Dst: 2, Payload: &core.StateMsg{Cond: 65}}},
		{"unsupported payload", Frame{Type: TypeData, Round: 1, Src: 1, Dst: 2, Payload: "nope"}},
		{"nested early", Frame{Type: TypeData, Round: 1, Src: 1, Dst: 2,
			Payload: core.EarlyMsg{Payload: core.EarlyMsg{Payload: vector.Value(1)}}}},
	}
	var buf [MaxFrame]byte
	for _, tc := range cases {
		if _, err := EncodeFrame(buf[:], &tc.f); !errors.Is(err, kerr.ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", tc.name, err)
		}
	}
	ok := Frame{Type: TypeAck, Round: 1, Src: 1, Dst: 2}
	if _, err := EncodeFrame(buf[:5], &ok); !errors.Is(err, kerr.ErrBadFrame) {
		t.Errorf("short buffer: err = %v, want ErrBadFrame", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	value := func(v byte) []byte { return []byte{Version, 1, 0, 1, 1, 2, 0x01, v} }
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{Version, 1, 0}},
		{"bad version", []byte{0x00, 2, 0, 1, 1, 2}},
		{"unknown type", []byte{Version, 9, 0, 1, 1, 2}},
		{"round zero", []byte{Version, 2, 0, 0, 1, 2}},
		{"src zero", []byte{Version, 2, 0, 1, 0, 2}},
		{"dst zero", []byte{Version, 2, 0, 1, 1, 0}},
		{"ack trailing", []byte{Version, 2, 0, 1, 1, 2, 0}},
		{"data without kind", []byte{Version, 1, 0, 1, 1, 2}},
		{"data without body", []byte{Version, 1, 0, 1, 1, 2, 0x01}},
		{"unknown kind", []byte{Version, 1, 0, 1, 1, 2, 0x04, 1}},
		{"kind zero", []byte{Version, 1, 0, 1, 1, 2, 0x00, 1}},
		{"reserved bits", []byte{Version, 1, 0, 1, 1, 2, 0x11, 1}},
		{"decide without early", []byte{Version, 1, 0, 1, 1, 2, 0x81, 1}},
		{"value above cap", value(65)},
		{"value trailing", append(value(1), 0)},
		{"state short", []byte{Version, 1, 0, 1, 1, 2, 0x02, 0, 0, 0, 0, 0, 0, 0}},
		{"state key zero", []byte{Version, 1, 0, 1, 1, 2, 0x02, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"state key not a triple", []byte{Version, 1, 0, 1, 1, 2, 0x02, 0, 0, 0, 0, 0, 0, 0, 0x43}},
		{"raw state short", []byte{Version, 1, 0, 1, 1, 2, 0x03, 64, 0}},
		{"raw state above cap", []byte{Version, 1, 0, 1, 1, 2, 0x03, 65, 0, 0}},
		{"raw state packable", []byte{Version, 1, 0, 1, 1, 2, 0x03, 3, 0, 1}},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.data); !errors.Is(err, kerr.ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", tc.name, err)
		}
	}
}

func TestPeekBounds(t *testing.T) {
	f := Frame{Type: TypeData, Round: 3, Src: 4, Dst: 2, Payload: vector.Value(1)}
	enc := mustEncode(t, &f)
	if _, _, _, _, ok := Peek(enc, 4); !ok {
		t.Fatalf("Peek rejects src=4 with n=4")
	}
	if _, _, _, _, ok := Peek(enc, 3); ok {
		t.Fatalf("Peek accepts src=4 with n=3")
	}
	if _, _, _, _, ok := Peek(enc[:len(enc)-1], 0); ok {
		t.Fatalf("Peek accepts truncated data frame shorter than any payload")
	}
	ack := mustEncode(t, &Frame{Type: TypeAck, Round: 1, Src: 1, Dst: 2})
	if _, _, _, _, ok := Peek(append(ack, 0), 0); ok {
		t.Fatalf("Peek accepts oversized ack")
	}
}

// TestFrameTypeString pins the trace labels.
func TestFrameTypeString(t *testing.T) {
	for want, ft := range map[string]FrameType{
		"data": TypeData, "ack": TypeAck, "fin": TypeFin, "finack": TypeFinAck, "type(9)": 9,
	} {
		if got := ft.String(); got != want {
			t.Errorf("FrameType(%d).String() = %q, want %q", byte(ft), got, want)
		}
	}
}

// TestSlotHelpers covers the shared mailbox slot.
func TestSlotHelpers(t *testing.T) {
	var s mailSlot
	if s.bytes() != nil {
		t.Fatal("empty slot yields bytes")
	}
	s.len = 3
	if got := s.bytes(); len(got) != 3 {
		t.Fatalf("slot bytes = %d, want 3", len(got))
	}
}

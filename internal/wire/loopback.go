package wire

import (
	"errors"
	"os"
	"time"

	"kset/internal/rounds"
)

// LoopbackConfig parameterizes the Loopback transport. The zero value
// uses UDP sockets on 127.0.0.1 with the default pacing.
type LoopbackConfig struct {
	// RoundTimeout bounds each destination's Deliver wait: a copy still
	// missing when it expires is written off as lost (the destination's
	// row keeps nil, the loss is counted). Default DefaultRoundTimeout.
	RoundTimeout time.Duration
	// Retransmit is the initial retransmission interval for missing
	// copies; it doubles with jitter up to RoundTimeout/4. Default
	// DefaultRetransmit.
	Retransmit time.Duration
	// Seed seeds the retransmission jitter (0 picks a fixed default).
	Seed uint64
	// Dial builds the n-endpoint mesh; nil binds n UDP sockets on
	// 127.0.0.1. Tests inject a PipeNet here to exercise loss and
	// retransmission deterministically.
	Dial func(n int) ([]PacketConn, error)
}

// loopSlot tracks one in-flight copy of the current round.
type loopSlot struct {
	frame   mailSlot // encoded datagram, len 0 when no copy was sent
	payload any      // decoded arrival
	got     bool
}

// Loopback is a rounds.Transport that moves every copy through real
// datagrams: n mesh endpoints (UDP loopback sockets by default) live in
// one process, Send encodes and transmits each copy from its sender's
// endpoint, and Deliver blocks reading the destination's endpoint until
// the round's copies arrive — retransmitting missing ones with jittered
// exponential backoff — or the per-destination deadline expires, after
// which the stragglers are counted lost and the row keeps nil, exactly
// the shape a faultnet loss produces. Lossless runs are byte-identical
// to MatrixTransport runs; lossy ones fold into the same stats plane as
// faultnet campaigns via rounds.FaultCounter.
type Loopback struct {
	cfg       LoopbackConfig
	n         int
	conns     []PacketConn
	slots     []loopSlot // slots[(dst-1)*n+(src-1)]
	delivered int64
	lost      int64
	round     int
	cancel    <-chan struct{}
	rng       prng
	firstErr  error
	readBuf   [64]byte
}

// NewLoopback builds the transport and dials its n-endpoint mesh.
func NewLoopback(cfg LoopbackConfig, n int) (*Loopback, error) {
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = DefaultRoundTimeout
	}
	if cfg.Retransmit <= 0 {
		cfg.Retransmit = DefaultRetransmit
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x6B736574 // "kset"
	}
	if cfg.Dial == nil {
		cfg.Dial = dialUDPLoopback
	}
	t := &Loopback{cfg: cfg}
	if err := t.dial(n); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Loopback) dial(n int) error {
	conns, err := t.cfg.Dial(n)
	if err != nil {
		return err
	}
	if len(conns) != n {
		for _, c := range conns {
			c.Close()
		}
		return errors.New("wire: loopback dial returned wrong endpoint count")
	}
	t.closeConns()
	t.conns = conns
	t.n = n
	return nil
}

func (t *Loopback) closeConns() {
	for _, c := range t.conns {
		c.Close()
	}
	t.conns = nil
}

// Close releases the mesh endpoints.
func (t *Loopback) Close() error {
	t.closeConns()
	return nil
}

// Err returns the first internal error hit since Reset: a codec failure
// on an engine payload or a redial failure. Affected copies are dropped
// (indistinguishable from loss), so runs still terminate; tests assert
// Err is nil.
func (t *Loopback) Err() error { return t.firstErr }

func (t *Loopback) fail(err error) {
	if t.firstErr == nil && err != nil {
		t.firstErr = err
	}
}

// SetCancel implements rounds.CancelAware.
func (t *Loopback) SetCancel(cancel <-chan struct{}) { t.cancel = cancel }

// Reset implements rounds.Transport, redialing only when n changes.
func (t *Loopback) Reset(n int) {
	t.firstErr = nil
	if n != t.n || t.conns == nil {
		if err := t.dial(n); err != nil {
			t.fail(err)
			t.conns = nil
			t.n = n
		}
	}
	if cap(t.slots) < n*n {
		t.slots = make([]loopSlot, n*n)
	}
	t.slots = t.slots[:n*n]
	t.clearSlots()
	t.delivered = 0
	t.lost = 0
	t.round = 0
	t.rng = prng{s: t.cfg.Seed}
}

func (t *Loopback) clearSlots() {
	for i := range t.slots {
		t.slots[i] = loopSlot{}
	}
}

// BeginRound implements rounds.Transport.
func (t *Loopback) BeginRound(r int) {
	t.clearSlots()
	t.round = r
}

// Send implements rounds.Transport: each copy is encoded once and
// transmitted from the sender's endpoint; the encoded frame is kept for
// retransmission. Copies to the sender itself short-circuit through the
// codec without touching the network. Delivered counts at hand-over, as
// MatrixTransport does, and is decremented for copies later written off.
func (t *Loopback) Send(r int, src rounds.ProcessID, payload any, order []rounds.ProcessID, limit int) {
	f := Frame{Type: TypeData, Round: r, Src: src, Payload: payload}
	for k := 0; k < limit; k++ {
		f.Dst = order[k]
		slot := &t.slots[(int(f.Dst)-1)*t.n+(int(src)-1)]
		n, err := EncodeFrame(slot.frame.buf[:], &f)
		if err != nil {
			t.fail(err)
			continue
		}
		slot.frame.len = n
		if f.Dst == src {
			dec, err := DecodeFrame(slot.frame.bytes())
			if err != nil {
				t.fail(err)
				slot.frame.len = 0
				continue
			}
			slot.payload = dec.Payload
			slot.got = true
			continue
		}
		if t.conns != nil {
			if err := t.conns[int(src)-1].WriteTo(slot.frame.bytes(), f.Dst); err != nil {
				t.fail(err)
			}
		}
	}
	t.delivered += int64(limit)
}

// Deliver implements rounds.Transport: it drains the destination's
// endpoint until every copy sent to it this round has arrived, pacing
// retransmissions of the missing ones, and gives up at the deadline —
// counting each absentee as lost — so a Deliver can never hang. A run
// cancellation aborts the wait immediately.
func (t *Loopback) Deliver(r int, dst rounds.ProcessID, row []any) {
	base := (int(dst) - 1) * t.n
	pending := 0
	for src := 0; src < t.n; src++ {
		slot := &t.slots[base+src]
		if slot.frame.len > 0 && !slot.got {
			pending++
		}
	}
	if pending > 0 && t.conns != nil {
		t.await(r, dst, base, pending)
	}
	for src := 0; src < t.n; src++ {
		slot := &t.slots[base+src]
		if slot.got {
			row[src] = slot.payload
		} else {
			row[src] = nil
			if slot.frame.len > 0 {
				t.lost++
				t.delivered--
				slot.frame.len = 0 // never retransmitted again
			}
		}
	}
}

// await reads dst's endpoint until the round's pending copies arrive or
// the deadline passes.
func (t *Loopback) await(r int, dst rounds.ProcessID, base, pending int) {
	conn := t.conns[int(dst)-1]
	deadline := time.Now().Add(t.cfg.RoundTimeout)
	interval := t.cfg.Retransmit
	next := time.Now().Add(t.rng.jittered(interval))
	const pollTick = 100 * time.Millisecond
	for pending > 0 {
		select {
		case <-t.cancel:
			return
		default:
		}
		now := time.Now()
		if !now.Before(deadline) {
			return
		}
		if !now.Before(next) {
			for src := 0; src < t.n; src++ {
				slot := &t.slots[base+src]
				if slot.frame.len > 0 && !slot.got {
					if err := t.conns[src].WriteTo(slot.frame.bytes(), dst); err != nil {
						t.fail(err)
					}
				}
			}
			interval = backoff(interval, t.cfg.RoundTimeout/4)
			next = now.Add(t.rng.jittered(interval))
		}
		wait := minTime(deadline, next)
		if poll := now.Add(pollTick); poll.Before(wait) {
			wait = poll
		}
		conn.SetReadDeadline(wait)
		n, err := conn.ReadFrom(t.readBuf[:])
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				continue
			}
			t.fail(err)
			return
		}
		data := t.readBuf[:n]
		ft, fr, fsrc, fdst, ok := Peek(data, t.n)
		if !ok || ft != TypeData || fr != r || fdst != dst {
			continue // stale round, duplicate of a finished wait, or noise
		}
		slot := &t.slots[base+int(fsrc)-1]
		if slot.frame.len == 0 || slot.got {
			continue // unsolicited or duplicate
		}
		f, err := DecodeFrame(data)
		if err != nil {
			t.fail(err)
			continue
		}
		slot.payload = f.Payload
		slot.got = true
		pending--
	}
}

func minTime(a, b time.Time) time.Time {
	if b.Before(a) {
		return b
	}
	return a
}

// Delivered implements rounds.Transport.
func (t *Loopback) Delivered() int64 { return t.delivered }

// FaultCounts implements rounds.FaultCounter: copies written off at the
// deadline surface as losses in the run's stats, the same plane faultnet
// campaigns report into.
func (t *Loopback) FaultCounts() (lost, delayed, duplicated int64) {
	return t.lost, 0, 0
}

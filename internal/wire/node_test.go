package wire_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/wire"
)

// nodeOpts tweaks one multi-node run.
type nodeOpts struct {
	timeout time.Duration                        // round timeout (default 2s)
	skip    map[rounds.ProcessID]bool            // peers never started (pre-crashed)
	cancel  map[rounds.ProcessID]<-chan struct{} // per-peer cancel channels
}

// nodeOutcome is one peer's return from RunNode.
type nodeOutcome struct {
	res *wire.NodeResult
	err error
}

// runNodes starts one RunNode per unskipped process over a PipeNet mesh
// and waits for all of them, failing the test if the fleet does not
// terminate within a generous bound.
func runNodes(t *testing.T, pn *wire.PipeNet, procs []rounds.Process, maxRounds int, o nodeOpts) map[rounds.ProcessID]nodeOutcome {
	t.Helper()
	if o.timeout == 0 {
		o.timeout = 2 * time.Second
	}
	n := len(procs)
	out := make(map[rounds.ProcessID]nodeOutcome, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := rounds.ProcessID(i + 1)
		if o.skip[id] {
			continue
		}
		wg.Add(1)
		go func(id rounds.ProcessID, proc rounds.Process) {
			defer wg.Done()
			res, err := wire.RunNode(proc, wire.NodeConfig{
				ID:           id,
				N:            n,
				MaxRounds:    maxRounds,
				Conn:         pn.Conn(id),
				RoundTimeout: o.timeout,
				Retransmit:   time.Millisecond,
				Linger:       200 * time.Millisecond,
				Cancel:       o.cancel[id],
			})
			mu.Lock()
			out[id] = nodeOutcome{res, err}
			mu.Unlock()
		}(id, procs[i])
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Duration(maxRounds+2)*o.timeout + 30*time.Second):
		t.Fatal("node fleet did not terminate")
	}
	return out
}

// wantEngineMatch asserts every live peer's outcome equals the engine's
// matrix-transport run under fp: same decision, same round, and the
// engine's crashed set as the peers' suspicion set (minus peers the
// survivor never had to suspect because it heard from them first).
func wantEngineMatch(t *testing.T, out map[rounds.ProcessID]nodeOutcome, fp rounds.FailurePattern) {
	t.Helper()
	p, c, input, _ := testScenario()
	want, err := core.NewRunner().RunCond(p, c, input, fp, false, nil, nil, nil)
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	for id, o := range out {
		if o.err != nil {
			t.Fatalf("node %d: %v", id, o.err)
		}
		wv, decided := want.Decisions[id]
		if o.res.Decided != decided {
			t.Fatalf("node %d: decided=%v, engine says %v (%+v)", id, o.res.Decided, decided, o.res)
		}
		if decided && (o.res.Value != wv || o.res.Round != want.DecisionRound[id]) {
			t.Fatalf("node %d: decided %v@r%d, engine %v@r%d",
				id, o.res.Value, o.res.Round, wv, want.DecisionRound[id])
		}
	}
}

// TestNodesLossless: every peer of a 4-process mesh decides exactly what
// the in-process engine decides for the same instance, with no suspicion
// and no retransmissions on a lossless network.
func TestNodesLossless(t *testing.T) {
	p, c, input, _ := testScenario()
	procs, err := core.NewRun(p, c, input)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	pn := wire.NewPipeNet(p.N)
	out := runNodes(t, pn, procs, p.RMax(), nodeOpts{})
	wantEngineMatch(t, out, rounds.FailurePattern{})
	for id, o := range out {
		if len(o.res.Suspected) != 0 {
			t.Errorf("node %d suspected %v on a lossless network", id, o.res.Suspected)
		}
	}
}

// TestNodesRecoverFromLoss: dropping the first transmission of every
// data frame forces the ack/retransmit machinery to carry the run; the
// decisions still match the engine exactly.
func TestNodesRecoverFromLoss(t *testing.T) {
	p, c, input, _ := testScenario()
	procs, err := core.NewRun(p, c, input)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	pn := wire.NewPipeNet(p.N)
	var mu sync.Mutex
	seen := map[[3]int]bool{}
	pn.SetDrop(func(src, dst rounds.ProcessID, frame []byte) bool {
		ft, r, _, _, ok := wire.Peek(frame, p.N)
		if !ok || ft != wire.TypeData {
			return false
		}
		key := [3]int{int(src), int(dst), r}
		mu.Lock()
		defer mu.Unlock()
		if !seen[key] {
			seen[key] = true
			return true
		}
		return false
	})
	out := runNodes(t, pn, procs, p.RMax(), nodeOpts{timeout: 5 * time.Second})
	wantEngineMatch(t, out, rounds.FailurePattern{})
	var retrans int64
	for _, o := range out {
		retrans += o.res.Retransmits
	}
	if retrans == 0 {
		t.Error("loss injected but no retransmissions recorded")
	}
}

// TestNodesSuspectDeadPeer: a peer that never starts is suspected at the
// round-1 deadline and mapped into crash accounting — the survivors'
// outcome equals the engine run where that process crashes initially.
func TestNodesSuspectDeadPeer(t *testing.T) {
	p, c, input, _ := testScenario()
	procs, err := core.NewRun(p, c, input)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	pn := wire.NewPipeNet(p.N)
	const dead = rounds.ProcessID(3)
	out := runNodes(t, pn, procs, p.RMax(), nodeOpts{
		timeout: 300 * time.Millisecond,
		skip:    map[rounds.ProcessID]bool{dead: true},
	})
	wantEngineMatch(t, out, rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{
		dead: {Round: 1, AfterSends: 0},
	}})
	for id, o := range out {
		if len(o.res.Suspected) != 1 || o.res.Suspected[0] != dead {
			t.Errorf("node %d suspected %v, want [%d]", id, o.res.Suspected, dead)
		}
	}
}

// TestNodeCancel: a closed cancel channel unblocks a node waiting on a
// dead network.
func TestNodeCancel(t *testing.T) {
	p, c, input, _ := testScenario()
	procs, err := core.NewRun(p, c, input)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	pn := wire.NewPipeNet(p.N)
	pn.SetDrop(func(rounds.ProcessID, rounds.ProcessID, []byte) bool { return true })
	cancel := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	_, err = wire.RunNode(procs[0], wire.NodeConfig{
		ID: 1, N: p.N, MaxRounds: p.RMax(), Conn: pn.Conn(1),
		RoundTimeout: time.Hour, // only cancellation can end the round
		Retransmit:   10 * time.Millisecond,
		Cancel:       cancel,
	})
	if !errors.Is(err, rounds.ErrCanceled) {
		t.Fatalf("err = %v, want rounds.ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestNodeClosedConnFails: closing a node's endpoint mid-run surfaces as
// an error, not a hang — the failure mode of a peer whose socket dies.
func TestNodeClosedConnFails(t *testing.T) {
	p, c, input, _ := testScenario()
	procs, err := core.NewRun(p, c, input)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	pn := wire.NewPipeNet(p.N)
	pn.SetDrop(func(rounds.ProcessID, rounds.ProcessID, []byte) bool { return true })
	conn := pn.Conn(1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		conn.Close()
	}()
	_, err = wire.RunNode(procs[0], wire.NodeConfig{
		ID: 1, N: p.N, MaxRounds: p.RMax(), Conn: conn,
		RoundTimeout: time.Hour,
		Retransmit:   10 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("RunNode returned nil error on a closed conn")
	}
}

// TestNodeConfigValidation pins the constructor's precondition errors.
func TestNodeConfigValidation(t *testing.T) {
	p, c, input, _ := testScenario()
	procs, err := core.NewRun(p, c, input)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	bad := []wire.NodeConfig{
		{ID: 0, N: 4, MaxRounds: 2},
		{ID: 5, N: 4, MaxRounds: 2},
		{ID: 1, N: 4, MaxRounds: 0},
		{ID: 1, N: 4, MaxRounds: 2}, // no conn
	}
	for i, cfg := range bad {
		if _, err := wire.RunNode(procs[0], cfg); err == nil {
			t.Errorf("case %d: RunNode accepted invalid config %+v", i, cfg)
		}
	}
}

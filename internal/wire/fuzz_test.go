package wire

import (
	"bytes"
	"errors"
	"testing"

	"kset/internal/kerr"
)

// FuzzFrameDecode pins the decoder's three robustness properties on
// arbitrary input: it never panics, every rejection wraps the codec
// sentinel kerr.ErrBadFrame, and every accepted frame is canonical — it
// re-encodes to exactly the input bytes (so there is a bijection between
// valid frames and their encodings, and a receiver can cache or compare
// raw datagrams safely). Peek must never reject what DecodeFrame accepts.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range roundTripFrames() {
		var buf [MaxFrame]byte
		n, err := EncodeFrame(buf[:], &fr)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(buf[:n])
		// Corrupted siblings of each valid seed.
		for _, mut := range []int{0, 1, 2, 6, n - 1} {
			if mut >= n {
				continue
			}
			c := bytes.Clone(buf[:n])
			c[mut] ^= 0x80
			f.Add(c)
		}
		f.Add(buf[:n-1])
		f.Add(append(bytes.Clone(buf[:n]), 0))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, kerr.ErrBadFrame) {
				t.Fatalf("decode error %v does not wrap kerr.ErrBadFrame", err)
			}
			return
		}
		var buf [MaxFrame]byte
		n, err := EncodeFrame(buf[:], &fr)
		if err != nil {
			t.Fatalf("accepted frame %+v does not re-encode: %v", fr, err)
		}
		if !bytes.Equal(buf[:n], data) {
			t.Fatalf("accepted frame is not canonical: decoded %+v, re-encoded %x from %x", fr, buf[:n], data)
		}
		if _, _, _, _, ok := Peek(data, 0); !ok {
			t.Fatalf("Peek rejects a frame DecodeFrame accepts: %x", data)
		}
	})
}

package wire

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"kset/internal/rounds"
)

// PacketConn is the minimal unreliable-datagram surface the wire plane
// runs on: one endpoint of a full mesh, addressing peers by process ID.
// The UDP implementation backs cmd/ksetpeer and the Loopback transport;
// the in-memory PipeNet implementation gives tests a deterministic,
// optionally lossy network with no sockets.
type PacketConn interface {
	// WriteTo sends one datagram to the peer with the given process ID
	// (1..n). Delivery is best-effort — the datagram may be lost,
	// duplicated or reordered in transit — and WriteTo errors only when
	// the endpoint itself is broken or closed.
	WriteTo(b []byte, dst rounds.ProcessID) error
	// ReadFrom receives one datagram into b and returns its length,
	// honoring the read deadline: a timeout satisfies
	// errors.Is(err, os.ErrDeadlineExceeded).
	ReadFrom(b []byte) (int, error)
	// SetReadDeadline bounds future ReadFrom calls; the zero time means
	// no deadline.
	SetReadDeadline(t time.Time) error
	// Close releases the endpoint; blocked and future reads fail.
	Close() error
}

// udpConn adapts one *net.UDPConn plus a peer address table.
type udpConn struct {
	c     *net.UDPConn
	peers []*net.UDPAddr // peers[id-1]; nil entries are unreachable
}

// DialUDP binds a UDP socket on laddr and wires it into the mesh given
// by the peer address table: peers[i] is the address of process i+1 (the
// local process's own entry may be empty — a node never dials itself).
func DialUDP(laddr string, peers []string) (PacketConn, error) {
	local, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve local %q: %w", laddr, err)
	}
	c, err := net.ListenUDP("udp", local)
	if err != nil {
		return nil, fmt.Errorf("wire: bind %q: %w", laddr, err)
	}
	table := make([]*net.UDPAddr, len(peers))
	for i, p := range peers {
		if p == "" {
			continue
		}
		addr, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("wire: resolve peer %d %q: %w", i+1, p, err)
		}
		table[i] = addr
	}
	return &udpConn{c: c, peers: table}, nil
}

func (u *udpConn) WriteTo(b []byte, dst rounds.ProcessID) error {
	i := int(dst) - 1
	if i < 0 || i >= len(u.peers) || u.peers[i] == nil {
		return fmt.Errorf("wire: no address for process %d", dst)
	}
	_, err := u.c.WriteToUDP(b, u.peers[i])
	return err
}

func (u *udpConn) ReadFrom(b []byte) (int, error) {
	n, _, err := u.c.ReadFromUDP(b)
	return n, err
}

func (u *udpConn) SetReadDeadline(t time.Time) error { return u.c.SetReadDeadline(t) }

func (u *udpConn) Close() error { return u.c.Close() }

// dialUDPLoopback binds n ephemeral UDP sockets on 127.0.0.1 and wires
// them into a full mesh — the Loopback transport's default network.
func dialUDPLoopback(n int) ([]PacketConn, error) {
	socks := make([]*net.UDPConn, n)
	addrs := make([]*net.UDPAddr, n)
	fail := func(err error) ([]PacketConn, error) {
		for _, s := range socks {
			if s != nil {
				s.Close()
			}
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return fail(fmt.Errorf("wire: bind loopback socket %d: %w", i+1, err))
		}
		socks[i] = c
		addrs[i] = c.LocalAddr().(*net.UDPAddr)
	}
	conns := make([]PacketConn, n)
	for i := 0; i < n; i++ {
		conns[i] = &udpConn{c: socks[i], peers: addrs}
	}
	return conns, nil
}

// pipePacket is one in-flight datagram of a PipeNet.
type pipePacket struct {
	data [MaxFrame]byte
	len  int
}

// PipeNet is an in-memory datagram mesh: n endpoints with bounded queues
// and UDP semantics (a full queue drops, closing an endpoint fails its
// reads). An optional drop hook makes it a deterministic lossy network
// for exercising the retransmission and suspicion paths without real
// sockets or random timing.
type PipeNet struct {
	mu     sync.Mutex
	queues []chan pipePacket
	closed []chan struct{}
	drop   func(src, dst rounds.ProcessID, frame []byte) bool
}

// pipeQueueLen bounds each endpoint's receive queue, mimicking a socket
// buffer: writes to a full queue are silently dropped.
const pipeQueueLen = 4096

// NewPipeNet builds a mesh of n endpoints.
func NewPipeNet(n int) *PipeNet {
	pn := &PipeNet{
		queues: make([]chan pipePacket, n),
		closed: make([]chan struct{}, n),
	}
	for i := range pn.queues {
		pn.queues[i] = make(chan pipePacket, pipeQueueLen)
		pn.closed[i] = make(chan struct{})
	}
	return pn
}

// SetDrop installs the loss adversary: frames for which it returns true
// vanish in transit. A nil hook restores lossless delivery. Safe to call
// concurrently with traffic.
func (pn *PipeNet) SetDrop(drop func(src, dst rounds.ProcessID, frame []byte) bool) {
	pn.mu.Lock()
	pn.drop = drop
	pn.mu.Unlock()
}

// Conn returns the endpoint of process id (1..n).
func (pn *PipeNet) Conn(id rounds.ProcessID) PacketConn {
	return &pipeConn{net: pn, id: id}
}

// send routes one datagram from src to dst, applying the drop hook and
// full-queue loss.
func (pn *PipeNet) send(src, dst rounds.ProcessID, b []byte) error {
	i := int(dst) - 1
	if i < 0 || i >= len(pn.queues) {
		return fmt.Errorf("wire: no pipe endpoint for process %d", dst)
	}
	if len(b) > MaxFrame {
		return fmt.Errorf("wire: datagram of %d bytes exceeds MaxFrame", len(b))
	}
	pn.mu.Lock()
	drop := pn.drop
	pn.mu.Unlock()
	if drop != nil && drop(src, dst, b) {
		return nil
	}
	var pkt pipePacket
	pkt.len = copy(pkt.data[:], b)
	select {
	case pn.queues[i] <- pkt:
	default: // queue full: drop, like a UDP socket buffer
	}
	return nil
}

// pipeConn is one PipeNet endpoint.
type pipeConn struct {
	net      *PipeNet
	id       rounds.ProcessID
	mu       sync.Mutex
	deadline time.Time
}

func (c *pipeConn) WriteTo(b []byte, dst rounds.ProcessID) error {
	select {
	case <-c.net.closed[int(c.id)-1]:
		return net.ErrClosed
	default:
	}
	return c.net.send(c.id, dst, b)
}

func (c *pipeConn) ReadFrom(b []byte) (int, error) {
	c.mu.Lock()
	deadline := c.deadline
	c.mu.Unlock()
	queue := c.net.queues[int(c.id)-1]
	closed := c.net.closed[int(c.id)-1]
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		wait := time.Until(deadline)
		if wait <= 0 {
			// Drain anything already queued before reporting the timeout.
			select {
			case pkt := <-queue:
				return copy(b, pkt.data[:pkt.len]), nil
			default:
				return 0, os.ErrDeadlineExceeded
			}
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case pkt := <-queue:
		return copy(b, pkt.data[:pkt.len]), nil
	case <-timeout:
		return 0, os.ErrDeadlineExceeded
	case <-closed:
		return 0, net.ErrClosed
	}
}

func (c *pipeConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return nil
}

func (c *pipeConn) Close() error {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	ch := c.net.closed[int(c.id)-1]
	select {
	case <-ch:
	default:
		close(ch)
	}
	return nil
}

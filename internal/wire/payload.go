package wire

import (
	"encoding/binary"

	"kset/internal/core"
	"kset/internal/vector"
)

// Payload kind byte: base kinds in the low nibble, flags in the high
// bits. See the frame layout comment in frame.go.
const (
	kindValue      byte = 0x01
	kindStateKey   byte = 0x02
	kindStateBytes byte = 0x03
	kindBaseMask   byte = 0x0F
	kindReserved   byte = 0x30
	kindEarly      byte = 0x40
	kindDecide     byte = 0x80
)

// encodePayload writes the kind byte and payload of a data frame into
// buf[6:] and returns the full frame length. The payload must be one of
// the types the engine moves through Transport.Send.
func encodePayload(buf []byte, p any) (int, error) {
	var kind byte
	if em, ok := p.(core.EarlyMsg); ok {
		kind = kindEarly
		if em.Flag {
			kind |= kindDecide
		}
		p = em.Payload
		if _, nested := p.(core.EarlyMsg); nested {
			return 0, badFrame("nested early-deciding wrapper")
		}
	}
	switch m := p.(type) {
	case vector.Value:
		if m < 0 || m > vector.MaxSetValue {
			return 0, badFrame("value %d outside 0..%d", m, vector.MaxSetValue)
		}
		buf[6] = kind | kindValue
		buf[7] = byte(m)
		return 8, nil
	case *core.StateMsg:
		if m == nil {
			return 0, badFrame("nil state message")
		}
		return encodeState(buf, kind, *m)
	case core.StateMsg:
		return encodeState(buf, kind, m)
	case nil:
		return 0, badFrame("data frame without payload")
	}
	return 0, badFrame("unsupported payload type %T", p)
}

// encodeState packs the (cond, out, tmf) triple: as a single Key64 when
// every field fits 0..63, as three raw bytes otherwise (some field is the
// domain cap 64). Exactly one of the two encodings is canonical for any
// given triple.
func encodeState(buf []byte, kind byte, s core.StateMsg) (int, error) {
	triple := [3]vector.Value{s.Cond, s.Out, s.Tmf}
	for _, v := range triple {
		if v < 0 || v > vector.MaxSetValue {
			return 0, badFrame("state field %d outside 0..%d", v, vector.MaxSetValue)
		}
	}
	if key, ok := vector.Vector(triple[:]).Key64(); ok {
		buf[6] = kind | kindStateKey
		binary.BigEndian.PutUint64(buf[7:15], key)
		return 15, nil
	}
	buf[6] = kind | kindStateBytes
	buf[7] = byte(s.Cond)
	buf[8] = byte(s.Out)
	buf[9] = byte(s.Tmf)
	return 10, nil
}

// decodePayload parses the kind byte and payload body of a data frame
// (everything past the fixed header) back into the engine-level payload.
func decodePayload(data []byte) (any, error) {
	kind := data[0]
	body := data[1:]
	if kind&kindReserved != 0 {
		return nil, badFrame("reserved kind bits %#x set", kind&kindReserved)
	}
	early := kind&kindEarly != 0
	decide := kind&kindDecide != 0
	if decide && !early {
		return nil, badFrame("decide flag without early wrapper (kind %#x)", kind)
	}
	var inner any
	switch kind & kindBaseMask {
	case kindValue:
		if len(body) != 1 {
			return nil, badFrame("value payload is %d bytes, want 1", len(body))
		}
		v := vector.Value(body[0])
		if v > vector.MaxSetValue {
			return nil, badFrame("value %d outside 0..%d", v, vector.MaxSetValue)
		}
		inner = v
	case kindStateKey:
		if len(body) != 8 {
			return nil, badFrame("state payload is %d bytes, want 8", len(body))
		}
		var tmp [3]vector.Value
		vec, ok := vector.DecodeKey64(binary.BigEndian.Uint64(body), tmp[:0])
		if !ok || len(vec) != 3 {
			return nil, badFrame("state key does not unpack to a triple")
		}
		inner = &core.StateMsg{Cond: vec[0], Out: vec[1], Tmf: vec[2]}
	case kindStateBytes:
		if len(body) != 3 {
			return nil, badFrame("raw state payload is %d bytes, want 3", len(body))
		}
		s := core.StateMsg{
			Cond: vector.Value(body[0]),
			Out:  vector.Value(body[1]),
			Tmf:  vector.Value(body[2]),
		}
		packable := true
		for _, v := range [3]vector.Value{s.Cond, s.Out, s.Tmf} {
			if v > vector.MaxSetValue {
				return nil, badFrame("state field %d outside 0..%d", v, vector.MaxSetValue)
			}
			if v > 63 {
				packable = false
			}
		}
		if packable {
			return nil, badFrame("non-canonical raw state: triple is Key64-packable")
		}
		inner = &s
	default:
		return nil, badFrame("unknown payload kind %#x", kind)
	}
	if early {
		return core.EarlyMsg{Payload: inner, Flag: decide}, nil
	}
	return inner, nil
}

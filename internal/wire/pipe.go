package wire

import "kset/internal/rounds"

// mailSlot holds one encoded in-flight frame.
type mailSlot struct {
	buf [MaxFrame]byte
	len int
}

// bytes returns the encoded frame, nil if the slot is empty.
func (s *mailSlot) bytes() []byte {
	if s.len == 0 {
		return nil
	}
	return s.buf[:s.len]
}

// PipeTransport is the deterministic in-process wire harness: a
// rounds.Transport that routes every copy through the frame codec — Send
// encodes into a per-(src,dst) mailbox, Deliver decodes back out — with
// no sockets, goroutines or timing anywhere. A run over it exercises
// exactly the serialization the UDP transports use, so it pins down that
// the codec preserves round semantics (results byte-identical to
// MatrixTransport) independently of network behavior. The zero value is
// ready to use.
type PipeTransport struct {
	n         int
	delivered int64
	mail      []mailSlot // mail[(dst-1)*n+(src-1)]
	firstErr  error
}

// Reset implements rounds.Transport.
func (p *PipeTransport) Reset(n int) {
	if cap(p.mail) < n*n {
		p.mail = make([]mailSlot, n*n)
	}
	p.mail = p.mail[:n*n]
	p.n = n
	p.delivered = 0
	p.firstErr = nil
	p.clearMail()
}

func (p *PipeTransport) clearMail() {
	for i := range p.mail {
		p.mail[i].len = 0
	}
}

// BeginRound implements rounds.Transport: undrained frames of the
// previous round are discarded, as the matrix transport does.
func (p *PipeTransport) BeginRound(int) { p.clearMail() }

// Send implements rounds.Transport: one frame is encoded per copy into
// the destination's mailbox. Copies are counted here, exactly as
// MatrixTransport counts them, so lossless results stay byte-identical.
func (p *PipeTransport) Send(r int, src rounds.ProcessID, payload any, order []rounds.ProcessID, limit int) {
	f := Frame{Type: TypeData, Round: r, Src: src, Payload: payload}
	for k := 0; k < limit; k++ {
		f.Dst = order[k]
		slot := &p.mail[(int(f.Dst)-1)*p.n+(int(src)-1)]
		n, err := EncodeFrame(slot.buf[:], &f)
		if err != nil {
			p.fail(err)
			continue
		}
		slot.len = n
	}
	p.delivered += int64(limit)
}

// Deliver implements rounds.Transport by decoding the destination's
// mailbox row.
func (p *PipeTransport) Deliver(r int, dst rounds.ProcessID, row []any) {
	base := (int(dst) - 1) * p.n
	for src := 0; src < p.n; src++ {
		row[src] = nil
		slot := &p.mail[base+src]
		data := slot.bytes()
		if data == nil {
			continue
		}
		f, err := DecodeFrame(data)
		if err != nil || f.Type != TypeData || f.Round != r || int(f.Src) != src+1 || f.Dst != dst {
			p.fail(err)
			continue
		}
		row[src] = f.Payload
	}
}

// Delivered implements rounds.Transport.
func (p *PipeTransport) Delivered() int64 { return p.delivered }

// Err returns the first codec error hit since Reset. The engine-facing
// Transport methods cannot return errors, and a codec failure on
// engine-generated payloads is a wire bug, not a runtime condition — the
// copy is dropped (indistinguishable from loss) and the error is kept
// here for tests and diagnostics.
func (p *PipeTransport) Err() error { return p.firstErr }

func (p *PipeTransport) fail(err error) {
	if p.firstErr == nil && err != nil {
		p.firstErr = err
	}
}

package wire

import "time"

// prng is a splitmix64 stream — the same tiny generator faultnet uses —
// seeding the retransmission jitter. Deterministic per seed, allocation
// free, and unrelated to protocol randomness (there is none).
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// jittered spreads a retransmission interval over [d/2, 3d/2) so that
// colliding peers (or colliding destinations of one loopback process)
// decorrelate instead of retransmitting in lock step.
func (p *prng) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(p.next()%uint64(d))
}

// backoff doubles the retransmission interval up to the cap.
func backoff(cur, cap time.Duration) time.Duration {
	cur *= 2
	if cur > cap {
		return cap
	}
	return cur
}

// Default pacing: the first retransmission fires after DefaultRetransmit
// (doubling up to a quarter of the round deadline), and a destination that
// has produced nothing for DefaultRoundTimeout is written off. Loopback
// round trips are microseconds, so the defaults leave three orders of
// magnitude of slack while keeping lossy runs' termination prompt.
const (
	DefaultRoundTimeout = 2 * time.Second
	DefaultRetransmit   = 2 * time.Millisecond
)

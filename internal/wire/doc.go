// Package wire moves round payloads between OS processes over real
// sockets — the transport plane that takes the §6.2 synchronous protocol
// out of the in-memory delivery matrix and runs it across process
// boundaries, with the robustness layer an unreliable network demands:
// datagram framing, retransmission with exponential backoff and jitter,
// per-round deadlines, and crash suspicion for peers that go silent.
//
// The package has three layers:
//
//   - The frame codec (frame.go, payload.go): fixed-buffer datagram
//     framing with a version byte, a round/src/dst header and a
//     packed-Key64 payload encoding for the protocols' state triples.
//     Encoding into a caller-owned buffer allocates nothing; the decoder
//     is strict — every malformed or non-canonical input yields an error
//     wrapping kerr.ErrBadFrame, never a panic, and every accepted frame
//     re-encodes byte-identically (pinned by FuzzFrameDecode).
//
//   - Engine-driven transports: PipeTransport routes every copy through
//     the codec deterministically in-process (the test harness proving
//     the codec preserves round semantics), and Loopback implements
//     rounds.Transport over one UDP socket per simulated process, with
//     retransmit-until-arrival inside Deliver and a per-round deadline
//     after which a silent peer's copies are written off as lost. Both
//     plug into the engine through kset.WithTransport; a lossless run is
//     byte-identical to the MatrixTransport run of the same scenario.
//
//   - The peer plane: Node drives one process's protocol instance over a
//     PacketConn (UDP between OS processes via cmd/ksetpeer, or the
//     deterministic in-memory pipe net in tests), with per-destination
//     retransmit-until-ack, fin frames announcing decision or completion,
//     and a per-round deadline mapping unresponsive peers into the
//     protocol's crash accounting. A Node run always terminates —
//     decided or undecided — within MaxRounds round deadlines.
//
// Suspicion is sound only under the synchronous assumption the paper's
// model already makes: the round deadline is the synchrony parameter, and
// a peer that misses it is treated as crashed (crash-stop — it is never
// readmitted, though its stray frames are still acknowledged so the
// network quiesces). Choose deadlines comfortably above the link's round
// trip; the defaults suit loopback and LAN.
package wire

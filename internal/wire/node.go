package wire

import (
	"errors"
	"fmt"
	"os"
	"time"

	"kset/internal/rounds"
	"kset/internal/vector"
)

// NodeConfig parameterizes one peer of a multi-process agreement run.
type NodeConfig struct {
	// ID is this peer's process ID (1..N).
	ID rounds.ProcessID
	// N is the total number of processes in the run.
	N int
	// MaxRounds is the protocol's round bound (Params.RMax for the
	// condition-based algorithms): a peer that has not decided by then
	// returns undecided.
	MaxRounds int
	// Conn is the peer's mesh endpoint. The node owns it for the run but
	// does not close it.
	Conn PacketConn
	// RoundTimeout is the synchrony parameter: a peer that has produced
	// no round payload for this long is suspected crashed, permanently.
	// Default DefaultRoundTimeout.
	RoundTimeout time.Duration
	// Retransmit is the initial retransmission interval for unacked
	// frames; it doubles with jitter up to RoundTimeout/4. Default
	// DefaultRetransmit.
	Retransmit time.Duration
	// Linger bounds the courtesy phase after the peer finishes, during
	// which it keeps acking stray frames and retransmitting its final
	// round's frames for slower peers. Default RoundTimeout.
	Linger time.Duration
	// Seed seeds retransmission jitter (0 derives one from ID).
	Seed uint64
	// Cancel, when non-nil and closed, aborts the run: RunNode returns
	// rounds.ErrCanceled (or the result, if the peer had already
	// finished and was merely lingering).
	Cancel <-chan struct{}
	// OnRound, when non-nil, runs right after the round's payload is
	// first transmitted — a hook for progress markers and chaos tests.
	OnRound func(round int)
}

// NodeResult is the outcome of one peer's run.
type NodeResult struct {
	// Decided reports whether the protocol decided; Value is the decided
	// value when it did.
	Decided bool
	Value   vector.Value
	// Round is the decision round, or the last round run when undecided.
	Round int
	// Suspected lists the peers written off as crashed, in the order
	// they were suspected.
	Suspected []rounds.ProcessID
	// FramesSent, FramesReceived and Retransmits count datagrams written
	// (all types, including retransmissions), datagrams read, and data
	// retransmissions beyond each frame's first send.
	FramesSent, FramesReceived, Retransmits int64
}

// futKey addresses a buffered payload from a peer running ahead of us.
type futKey struct {
	round int
	src   rounds.ProcessID
}

// node is the run state of one peer.
type node struct {
	cfg NodeConfig
	rng prng
	res NodeResult

	suspected []bool // suspected[p-1]
	finished  []bool // finished[p-1]: peer sent fin
	finRound  []int  // its last participating round
	finAcked  []bool // peer finacked OUR fin
	future    map[futKey]any

	// Per-round state.
	round int
	got   []bool
	acked []bool
	recv  []any

	sendBuf mailSlot // this round's data frame; dst byte patched per write
	ctlBuf  [MaxFrame]byte
	readBuf [64]byte
}

// RunNode drives one process's protocol instance over the mesh until it
// decides, exhausts MaxRounds, or is canceled. Each round it broadcasts
// the payload with retransmit-until-ack, collects the round's payloads
// from every unsuspected peer, and at the round deadline maps peers that
// produced nothing into crash suspicion — so the run always terminates,
// decided or undecided, within MaxRounds round deadlines. Suspicion is
// crash-stop: a suspected peer's later frames are acked (so its
// retransmissions quiesce) but its payloads are ignored, which is
// exactly how the engine's crash adversary looks to the protocol.
func RunNode(proc rounds.Process, cfg NodeConfig) (*NodeResult, error) {
	if cfg.N < 1 || cfg.ID < 1 || int(cfg.ID) > cfg.N || cfg.N > 255 {
		return nil, fmt.Errorf("wire: node id %d of n=%d out of range", cfg.ID, cfg.N)
	}
	if cfg.MaxRounds < 1 {
		return nil, errors.New("wire: node needs MaxRounds ≥ 1")
	}
	if cfg.N > 1 && cfg.Conn == nil {
		return nil, errors.New("wire: node needs a conn")
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = DefaultRoundTimeout
	}
	if cfg.Retransmit <= 0 {
		cfg.Retransmit = DefaultRetransmit
	}
	if cfg.Linger <= 0 {
		cfg.Linger = cfg.RoundTimeout
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x6B736574 + uint64(cfg.ID)<<32
	}
	nd := &node{
		cfg:       cfg,
		rng:       prng{s: cfg.Seed},
		suspected: make([]bool, cfg.N),
		finished:  make([]bool, cfg.N),
		finRound:  make([]int, cfg.N),
		finAcked:  make([]bool, cfg.N),
		future:    make(map[futKey]any),
		got:       make([]bool, cfg.N),
		acked:     make([]bool, cfg.N),
		recv:      make([]any, cfg.N),
	}
	return nd.run(proc)
}

func (nd *node) run(proc rounds.Process) (*NodeResult, error) {
	for r := 1; ; r++ {
		if err := nd.beginRound(r, proc.Send(r)); err != nil {
			return nil, err
		}
		if err := nd.exchange(); err != nil {
			return nil, err
		}
		v, done := proc.Step(r, nd.recv)
		nd.res.Round = r
		if done {
			nd.res.Decided = true
			nd.res.Value = v
			return nd.finish()
		}
		if r >= nd.cfg.MaxRounds {
			return nd.finish()
		}
	}
}

// beginRound encodes the round's data frame and installs the round state,
// replaying payloads buffered from peers that ran ahead.
func (nd *node) beginRound(r int, payload any) error {
	nd.round = r
	me := int(nd.cfg.ID) - 1
	for i := range nd.got {
		nd.got[i] = false
		nd.acked[i] = false
		nd.recv[i] = nil
	}
	f := Frame{Type: TypeData, Round: r, Src: nd.cfg.ID, Dst: nd.cfg.ID, Payload: payload}
	n, err := EncodeFrame(nd.sendBuf.buf[:], &f)
	if err != nil {
		return err
	}
	nd.sendBuf.len = n
	// Self-delivery round-trips the codec, like every other copy.
	dec, err := DecodeFrame(nd.sendBuf.bytes())
	if err != nil {
		return err
	}
	nd.got[me] = true
	nd.acked[me] = true
	nd.recv[me] = dec.Payload
	for p := 1; p <= nd.cfg.N; p++ {
		if pay, ok := nd.future[futKey{r, rounds.ProcessID(p)}]; ok {
			delete(nd.future, futKey{r, rounds.ProcessID(p)})
			if nd.expect(rounds.ProcessID(p)) {
				nd.got[p-1] = true
				nd.recv[p-1] = pay
			}
		}
	}
	return nil
}

// expect reports whether peer p owes us this round's payload (and an ack
// for ours): not us, not suspected, not finished before this round.
func (nd *node) expect(p rounds.ProcessID) bool {
	if p == nd.cfg.ID || nd.suspected[p-1] {
		return false
	}
	if nd.finished[p-1] && nd.finRound[p-1] < nd.round {
		return false
	}
	return true
}

// roundComplete reports whether every expected payload arrived and every
// expected ack came back.
func (nd *node) roundComplete() bool {
	for p := 1; p <= nd.cfg.N; p++ {
		pid := rounds.ProcessID(p)
		if !nd.expect(pid) {
			continue
		}
		if !nd.got[p-1] || !nd.acked[p-1] {
			return false
		}
	}
	return true
}

// exchange runs one round's network phase: broadcast with
// retransmit-until-ack, collect payloads, suspect absentees at the
// deadline.
func (nd *node) exchange() error {
	deadline := time.Now().Add(nd.cfg.RoundTimeout)
	interval := nd.cfg.Retransmit
	next := time.Now() // first transmission is immediate
	first := true
	const pollTick = 100 * time.Millisecond
	for !nd.roundComplete() {
		if nd.canceled() {
			return rounds.ErrCanceled
		}
		now := time.Now()
		if !now.Before(deadline) {
			nd.suspectAbsentees()
			return nil
		}
		if !now.Before(next) {
			if err := nd.broadcast(first); err != nil {
				return err
			}
			if first && nd.cfg.OnRound != nil {
				nd.cfg.OnRound(nd.round)
			}
			first = false
			interval = backoff(interval, nd.cfg.RoundTimeout/4)
			next = now.Add(nd.rng.jittered(interval))
		}
		if err := nd.readOne(deadline, next, pollTick); err != nil {
			return err
		}
	}
	return nil
}

// broadcast (re)transmits the round's data frame to every expected peer
// that has not acked it yet.
func (nd *node) broadcast(first bool) error {
	for p := 1; p <= nd.cfg.N; p++ {
		pid := rounds.ProcessID(p)
		if !nd.expect(pid) || nd.acked[p-1] {
			continue
		}
		nd.sendBuf.buf[5] = byte(pid)
		if err := nd.write(nd.sendBuf.bytes(), pid); err != nil {
			return err
		}
		if !first {
			nd.res.Retransmits++
		}
	}
	return nil
}

// readOne waits for at most one datagram, bounded by the round deadline,
// the next retransmission and the cancel poll tick, and dispatches it.
func (nd *node) readOne(deadline, next time.Time, pollTick time.Duration) error {
	wait := minTime(deadline, next)
	if poll := time.Now().Add(pollTick); poll.Before(wait) {
		wait = poll
	}
	nd.cfg.Conn.SetReadDeadline(wait)
	n, err := nd.cfg.Conn.ReadFrom(nd.readBuf[:])
	if err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			return nil
		}
		return err
	}
	nd.res.FramesReceived++
	nd.handle(nd.readBuf[:n])
	return nil
}

// handle dispatches one datagram. Malformed or misdirected datagrams are
// dropped by the cheap header filter before any payload decoding.
func (nd *node) handle(data []byte) {
	t, r, src, dst, ok := Peek(data, nd.cfg.N)
	if !ok || dst != nd.cfg.ID || src == nd.cfg.ID {
		return
	}
	p := int(src) - 1
	switch t {
	case TypeData:
		nd.handleData(data, r, src)
	case TypeAck:
		if r == nd.round {
			nd.acked[p] = true
		}
	case TypeFin:
		nd.sendCtl(TypeFinAck, r, src)
		if !nd.finished[p] {
			nd.finished[p] = true
			nd.finRound[p] = r
		}
	case TypeFinAck:
		nd.finAcked[p] = true
	}
}

// handleData acks and records one data frame. Stale rounds are acked but
// discarded; future rounds are acked and buffered (the ack stops the
// sender's retransmissions, so the payload must be kept); suspected
// peers are acked but ignored — crash-stop.
func (nd *node) handleData(data []byte, r int, src rounds.ProcessID) {
	p := int(src) - 1
	if r < nd.round || nd.suspected[p] {
		nd.sendCtl(TypeAck, r, src)
		return
	}
	if r == nd.round {
		if !nd.got[p] {
			f, err := DecodeFrame(data)
			if err != nil {
				return // corrupt payload: no ack, let the sender retry
			}
			nd.got[p] = true
			nd.recv[p] = f.Payload
		}
		nd.sendCtl(TypeAck, r, src)
		return
	}
	// Future round: the peer is ahead of us.
	key := futKey{r, src}
	if _, dup := nd.future[key]; !dup {
		f, err := DecodeFrame(data)
		if err != nil {
			return
		}
		nd.future[key] = f.Payload
	}
	nd.sendCtl(TypeAck, r, src)
}

// suspectAbsentees writes off every peer whose round payload never
// arrived. Permanent: the protocol model is crash-stop, and the round
// deadline is the synchrony assumption that makes suspicion sound.
func (nd *node) suspectAbsentees() {
	for p := 1; p <= nd.cfg.N; p++ {
		pid := rounds.ProcessID(p)
		if nd.expect(pid) && !nd.got[p-1] {
			nd.suspected[p-1] = true
			nd.res.Suspected = append(nd.res.Suspected, pid)
		}
	}
}

// finish runs the bounded linger phase: announce fin, keep acking stray
// frames, retransmit the final round's unacked data and unacked fins,
// and leave once every live peer confirmed or the linger budget is
// spent. A canceled linger returns the (already final) result.
func (nd *node) finish() (*NodeResult, error) {
	deadline := time.Now().Add(nd.cfg.Linger)
	interval := nd.cfg.Retransmit
	next := time.Now()
	const pollTick = 100 * time.Millisecond
	for !nd.lingerComplete() {
		if nd.canceled() {
			return &nd.res, nil
		}
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		if !now.Before(next) {
			if err := nd.lingerTransmit(); err != nil {
				return &nd.res, nil
			}
			interval = backoff(interval, nd.cfg.Linger/4)
			next = now.Add(nd.rng.jittered(interval))
		}
		if err := nd.readOne(deadline, next, pollTick); err != nil {
			break
		}
	}
	return &nd.res, nil
}

// lingerComplete reports whether every peer we owed anything has
// confirmed: finack for our fin, ack for our final round's data.
func (nd *node) lingerComplete() bool {
	for p := 1; p <= nd.cfg.N; p++ {
		pid := rounds.ProcessID(p)
		if !nd.expect(pid) {
			continue
		}
		if !nd.finAcked[p-1] || !nd.acked[p-1] {
			return false
		}
	}
	return true
}

// lingerTransmit (re)sends the fin and the final round's data frame to
// peers that have not confirmed them.
func (nd *node) lingerTransmit() error {
	for p := 1; p <= nd.cfg.N; p++ {
		pid := rounds.ProcessID(p)
		if !nd.expect(pid) {
			continue
		}
		if !nd.acked[p-1] {
			nd.sendBuf.buf[5] = byte(pid)
			if err := nd.write(nd.sendBuf.bytes(), pid); err != nil {
				return err
			}
			nd.res.Retransmits++
		}
		if !nd.finAcked[p-1] {
			nd.sendCtl(TypeFin, nd.round, pid)
		}
	}
	return nil
}

// sendCtl emits one payload-free control frame.
func (nd *node) sendCtl(t FrameType, r int, dst rounds.ProcessID) {
	f := Frame{Type: t, Round: r, Src: nd.cfg.ID, Dst: dst}
	n, err := EncodeFrame(nd.ctlBuf[:], &f)
	if err != nil {
		return // unencodable control frame: nothing useful to do
	}
	nd.write(nd.ctlBuf[:n], dst)
}

// write transmits one datagram, counting it.
func (nd *node) write(b []byte, dst rounds.ProcessID) error {
	err := nd.cfg.Conn.WriteTo(b, dst)
	if err == nil {
		nd.res.FramesSent++
	}
	return err
}

func (nd *node) canceled() bool {
	if nd.cfg.Cancel == nil {
		return false
	}
	select {
	case <-nd.cfg.Cancel:
		return true
	default:
		return false
	}
}

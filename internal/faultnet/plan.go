package faultnet

import (
	"errors"
	"fmt"

	"kset/internal/rounds"
)

// errNilPlan rejects transport construction without a plan.
var errNilPlan = errors.New("faultnet: nil plan")

// Link identifies one directed channel of the system: messages From one
// process To another. The zero Link is never a valid channel (IDs are
// 1-based).
type Link struct {
	// From is the sender, To the receiver.
	From, To rounds.ProcessID
}

// LinkFaults is the random fault profile of one link (or of every link,
// as Plan.Default): per-copy probabilities drawn from the plan's seeded
// generator, so the same plan and seed always produce the same faults.
type LinkFaults struct {
	// Loss is the probability that a copy is dropped.
	Loss float64
	// DelayProb is the probability that a surviving copy is deferred by
	// 1..MaxDelay rounds (uniformly) instead of arriving in its send
	// round. Requires MaxDelay ≥ 1.
	DelayProb float64
	// MaxDelay bounds the delay, in rounds, of delayed and duplicated
	// copies on this link. Copies still in flight when the run's round
	// limit is reached are never delivered.
	MaxDelay int
	// Duplicate is the probability that a surviving copy is delivered
	// twice: once on time, once 1..MaxDelay rounds later. Requires
	// MaxDelay ≥ 1. (A same-round duplicate would be indistinguishable
	// from the original in a synchronous round model.)
	Duplicate float64
}

// zero reports whether the profile injects no faults at all.
func (lf LinkFaults) zero() bool {
	return lf.Loss == 0 && lf.DelayProb == 0 && lf.Duplicate == 0
}

// validate checks the profile's rates and delay bound.
func (lf LinkFaults) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Loss", lf.Loss}, {"DelayProb", lf.DelayProb}, {"Duplicate", lf.Duplicate}} {
		if p.v < 0 || p.v > 1 || p.v != p.v {
			return fmt.Errorf("faultnet: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if lf.MaxDelay < 0 {
		return fmt.Errorf("faultnet: MaxDelay = %d < 0", lf.MaxDelay)
	}
	if (lf.DelayProb > 0 || lf.Duplicate > 0) && lf.MaxDelay < 1 {
		return fmt.Errorf("faultnet: DelayProb/Duplicate require MaxDelay ≥ 1")
	}
	return nil
}

// Kind classifies a scheduled fault.
type Kind int

// The scheduled fault kinds.
const (
	// Drop discards the copy.
	Drop Kind = iota + 1
	// Delay defers the copy by Fault.Delay rounds.
	Delay
	// Duplicate delivers the copy on time and again Fault.Delay rounds
	// later.
	Duplicate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault schedules one explicit, deterministic fault: the copy sent in
// Round over the link From→To suffers Kind. Scheduled faults take
// precedence over the link's random profile, so a plan can pin a known
// adversarial cut while the rest of the network stays probabilistic.
type Fault struct {
	// Round is the send round the fault strikes (≥ 1).
	Round int
	// From and To name the link.
	From, To rounds.ProcessID
	// Kind selects drop, delay or duplicate.
	Kind Kind
	// Delay is the deferral in rounds for Delay and Duplicate faults
	// (≥ 1; ignored for Drop).
	Delay int
}

// Plan is a deterministic fault-injection plan: per-link random fault
// rates plus explicitly scheduled faults, all driven by one seed. A Plan
// is immutable once in use (Transport caches derived state by plan
// pointer); build a new Plan per sweep point instead of mutating one.
type Plan struct {
	// Seed is the base seed of the plan's random faults. Campaign runs
	// additionally mix in the scenario's seed and input fingerprint, so
	// each scenario's faults are deterministic regardless of worker count
	// or execution order.
	Seed int64
	// Default is the fault profile of every link without an entry in
	// Links. The zero profile — no loss, no delay, no duplication —
	// makes the transport behave exactly like the reliable matrix.
	Default LinkFaults
	// Links overrides the profile of individual links.
	Links map[Link]LinkFaults
	// Scheduled lists explicit faults; on a (round, link) collision the
	// last entry wins.
	Scheduled []Fault
	// Reorder is the probability that one sender's delivery order in one
	// round is shuffled before the crash adversary's delivery prefix is
	// applied. It changes which destinations a mid-round-crashing sender
	// reaches — against crash-free senders a within-round shuffle is
	// unobservable, since a round's arrivals carry no order.
	Reorder float64
}

// maxDelay returns the largest deferral, in rounds, any fault of the
// plan can impose — the depth of the transport's in-flight ring.
func (p *Plan) maxDelay() int {
	d := p.Default.MaxDelay
	for _, lf := range p.Links {
		if lf.MaxDelay > d {
			d = lf.MaxDelay
		}
	}
	for _, f := range p.Scheduled {
		if f.Kind != Drop && f.Delay > d {
			d = f.Delay
		}
	}
	return d
}

// Zero reports whether the plan injects no faults at all: zero profiles,
// no scheduled faults, no reordering. A zero plan's transport is
// behaviorally identical to the reliable delivery matrix.
func (p *Plan) Zero() bool {
	if !p.Default.zero() || p.Reorder != 0 || len(p.Scheduled) > 0 {
		return false
	}
	for _, lf := range p.Links {
		if !lf.zero() {
			return false
		}
	}
	return true
}

// Validate checks the plan's rates, delays and (when n > 0) process IDs
// against a system of n processes.
func (p *Plan) Validate(n int) error {
	if err := p.Default.validate(); err != nil {
		return fmt.Errorf("faultnet: default profile: %w", err)
	}
	if p.Reorder < 0 || p.Reorder > 1 || p.Reorder != p.Reorder {
		return fmt.Errorf("faultnet: Reorder = %v outside [0, 1]", p.Reorder)
	}
	for link, lf := range p.Links {
		if err := lf.validate(); err != nil {
			return fmt.Errorf("faultnet: link %d→%d: %w", link.From, link.To, err)
		}
		if err := validateLink(link.From, link.To, n); err != nil {
			return err
		}
	}
	for i, f := range p.Scheduled {
		if f.Round < 1 {
			return fmt.Errorf("faultnet: scheduled fault %d strikes round %d < 1", i, f.Round)
		}
		if f.Kind < Drop || f.Kind > Duplicate {
			return fmt.Errorf("faultnet: scheduled fault %d has unknown kind %d", i, int(f.Kind))
		}
		if f.Kind != Drop && f.Delay < 1 {
			return fmt.Errorf("faultnet: scheduled %v fault %d has delay %d < 1", f.Kind, i, f.Delay)
		}
		if err := validateLink(f.From, f.To, n); err != nil {
			return err
		}
	}
	return nil
}

// validateLink checks a link's endpoints against n processes; n ≤ 0
// skips the upper bound (plan validated before the system size is
// known).
func validateLink(from, to rounds.ProcessID, n int) error {
	for _, id := range []rounds.ProcessID{from, to} {
		if id < 1 || (n > 0 && int(id) > n) {
			return fmt.Errorf("faultnet: link %d→%d names a process outside 1..%d", from, to, n)
		}
	}
	return nil
}

package faultnet

import (
	"math"
	"math/rand"
	"testing"

	"kset/internal/rounds"
	"kset/internal/vector"
)

// floodMin floods the smallest value seen and decides at a fixed round —
// the same minimal protocol the rounds package tests use, with the
// type-tolerant receive a fault-injecting transport requires.
type floodMin struct {
	min      vector.Value
	decideAt int
}

func (f *floodMin) Send(int) any { return f.min }

func (f *floodMin) Step(round int, recv []any) (vector.Value, bool) {
	for _, p := range recv {
		if v, ok := p.(vector.Value); ok && v < f.min {
			f.min = v
		}
	}
	return f.min, round >= f.decideAt
}

func newFloodRun(vals []vector.Value, decideAt int) []rounds.Process {
	procs := make([]rounds.Process, len(vals))
	for i, v := range vals {
		procs[i] = &floodMin{min: v, decideAt: decideAt}
	}
	return procs
}

func randPattern(r *rand.Rand, n, t, maxRounds int) rounds.FailurePattern {
	fp := rounds.FailurePattern{Crashes: make(map[rounds.ProcessID]rounds.Crash)}
	perm := r.Perm(n)
	for i := 0; i < r.Intn(t+1); i++ {
		fp.Crashes[rounds.ProcessID(perm[i]+1)] = rounds.Crash{
			Round:      1 + r.Intn(maxRounds),
			AfterSends: r.Intn(n + 1),
		}
	}
	return fp
}

func resultsEqual(a, b *rounds.Result) bool {
	if len(a.Decisions) != len(b.Decisions) || a.Rounds != b.Rounds ||
		a.MessagesDelivered != b.MessagesDelivered || len(a.Crashed) != len(b.Crashed) {
		return false
	}
	for id, v := range a.Decisions {
		if b.Decisions[id] != v || a.DecisionRound[id] != b.DecisionRound[id] {
			return false
		}
	}
	for id := range a.Crashed {
		if !b.Crashed[id] {
			return false
		}
	}
	return true
}

// TestZeroFaultPlanMatchesMatrix is the refactor's equivalence property:
// under a fault-free plan the fault transport must reproduce the matrix
// transport's results — decisions, rounds, crash sets and the delivered-
// copies count — over randomized crash patterns, both inline and
// concurrent.
func TestZeroFaultPlanMatchesMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	plan := &Plan{Seed: 7}
	tr, err := New(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(6)
		maxRounds := 1 + r.Intn(4)
		fp := randPattern(r, n, n-1, maxRounds)
		vals := make([]vector.Value, n)
		for i := range vals {
			vals[i] = vector.Value(1 + r.Intn(5))
		}
		decideAt := 1 + r.Intn(maxRounds)
		concurrent := trial%3 == 0

		matrix, err := rounds.Run(newFloodRun(vals, decideAt), fp,
			rounds.Options{MaxRounds: maxRounds, Concurrent: concurrent})
		if err != nil {
			t.Fatal(err)
		}
		faulty, err := rounds.Run(newFloodRun(vals, decideAt), fp,
			rounds.Options{MaxRounds: maxRounds, Concurrent: concurrent, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(matrix, faulty) {
			t.Fatalf("trial %d (n=%d, rounds=%d, concurrent=%v):\nmatrix %+v\nfaultnet %+v",
				trial, n, maxRounds, concurrent, matrix, faulty)
		}
		if lost, delayed, dup := tr.FaultCounts(); lost != 0 || delayed != 0 || dup != 0 {
			t.Fatalf("zero-fault plan injected faults: %d/%d/%d", lost, delayed, dup)
		}
	}
}

// TestDeterminism: the same seed replays the same faults; a reseed
// changes them.
func TestDeterminism(t *testing.T) {
	plan := &Plan{Seed: 3, Default: LinkFaults{Loss: 0.3, DelayProb: 0.3, MaxDelay: 2, Duplicate: 0.2}, Reorder: 0.5}
	vals := []vector.Value{5, 3, 8, 1, 9, 2}
	run := func(seed uint64) (*rounds.Result, [3]int64) {
		tr, err := New(plan, len(vals))
		if err != nil {
			t.Fatal(err)
		}
		tr.Reseed(seed)
		res, err := rounds.Run(newFloodRun(vals, 4), rounds.FailurePattern{}, rounds.Options{MaxRounds: 4, Transport: tr})
		if err != nil {
			t.Fatal(err)
		}
		l, d, u := tr.FaultCounts()
		return res, [3]int64{l, d, u}
	}
	resA, cntA := run(99)
	resB, cntB := run(99)
	if !resultsEqual(resA, resB) || cntA != cntB {
		t.Fatalf("same seed diverged: %+v %v vs %+v %v", resA, cntA, resB, cntB)
	}
	if resA.Lost != cntA[0] || resA.Delayed != cntA[1] || resA.Duplicated != cntA[2] {
		t.Fatalf("Result counters %d/%d/%d don't match transport %v",
			resA.Lost, resA.Delayed, resA.Duplicated, cntA)
	}
	if cntA[0]+cntA[1]+cntA[2] == 0 {
		t.Fatal("stormy plan injected no faults at all")
	}
	_, cntC := run(100)
	if cntA == cntC {
		t.Fatalf("reseed produced identical fault counts %v (suspicious)", cntA)
	}
}

// TestTotalLoss: a loss-everything plan delivers nothing — every process
// decides its own value, and the accounting shows it.
func TestTotalLoss(t *testing.T) {
	tr, err := New(&Plan{Default: LinkFaults{Loss: 1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	vals := []vector.Value{4, 2, 7, 5}
	res, err := rounds.Run(newFloodRun(vals, 2), rounds.FailurePattern{}, rounds.Options{MaxRounds: 2, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesDelivered != 0 {
		t.Errorf("MessagesDelivered = %d, want 0", res.MessagesDelivered)
	}
	if res.Lost != 2*4*4 {
		t.Errorf("Lost = %d, want %d (every copy of 2 rounds × 4 senders × 4 dsts)", res.Lost, 2*4*4)
	}
	for id, v := range res.Decisions {
		if v != vals[id-1] {
			t.Errorf("p%d decided %v, want its own %v (nothing was delivered)", id, v, vals[id-1])
		}
	}
}

// TestScheduledDrop: a Drop pinned to (round, link) silences exactly that
// copy.
func TestScheduledDrop(t *testing.T) {
	tr, err := New(&Plan{Scheduled: []Fault{{Round: 1, From: 1, To: 2, Kind: Drop}}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// p1 holds the minimum; p2 misses it in round 1, hears it from p3 in
	// round 2 — so with decideAt 1 p2 decides late-high, with 2 all agree.
	res, err := rounds.Run(newFloodRun([]vector.Value{1, 5, 9}, 1), rounds.FailurePattern{}, rounds.Options{MaxRounds: 1, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[2] != 5 {
		t.Errorf("p2 decided %v, want 5 (p1's round-1 copy dropped)", res.Decisions[2])
	}
	if res.Decisions[1] != 1 || res.Decisions[3] != 1 {
		t.Errorf("p1/p3 decided %v/%v, want 1/1", res.Decisions[1], res.Decisions[3])
	}
	if res.Lost != 1 {
		t.Errorf("Lost = %d, want 1", res.Lost)
	}
}

// TestScheduledDelayArrives: a copy delayed by one round arrives the next
// round, surfacing only when no fresher copy shadows it (the sender
// crashed before resending).
func TestScheduledDelayArrives(t *testing.T) {
	plan := &Plan{Scheduled: []Fault{{Round: 1, From: 1, To: 2, Kind: Delay, Delay: 1}}}
	tr, err := New(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	// p1 crashes before sending anything in round 2, so p2's round-2 view
	// of p1 is exactly the delayed round-1 copy.
	fp := rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{1: {Round: 2, AfterSends: 0}}}
	res, err := rounds.Run(newFloodRun([]vector.Value{1, 5, 9}, 2), fp, rounds.Options{MaxRounds: 2, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[2] != 1 {
		t.Errorf("p2 decided %v, want 1 (delayed round-1 copy must arrive in round 2)", res.Decisions[2])
	}
	if res.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", res.Delayed)
	}
}

// TestScheduledDuplicate: a Duplicate delivers on time and again late,
// and counts once.
func TestScheduledDuplicate(t *testing.T) {
	plan := &Plan{Scheduled: []Fault{{Round: 1, From: 1, To: 2, Kind: Duplicate, Delay: 1}}}
	tr, err := New(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rounds.Run(newFloodRun([]vector.Value{1, 5}, 1), rounds.FailurePattern{}, rounds.Options{MaxRounds: 1, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[2] != 1 {
		t.Errorf("p2 decided %v, want 1 (on-time duplicate copy)", res.Decisions[2])
	}
	if res.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", res.Duplicated)
	}
	// Both copies were accepted for delivery.
	if res.MessagesDelivered != 2*2+1 {
		t.Errorf("MessagesDelivered = %d, want 5", res.MessagesDelivered)
	}
}

// frozenPayload exercises the Freezer contract: the sender mutates its
// buffer every round, so a delayed copy is correct only if frozen.
type frozenPayload struct{ round *int }

func (f frozenPayload) Freeze() any { r := *f.round; return frozenPayload{round: &r} }

type mutatingSender struct {
	round int
	seen  []int // what arrived from p1, per round
}

func (m *mutatingSender) Send(int) any { return frozenPayload{round: &m.round} }
func (m *mutatingSender) Step(round int, recv []any) (vector.Value, bool) {
	m.round = round + 1 // mutate the shared buffer for the next send
	if p, ok := recv[0].(frozenPayload); ok {
		m.seen = append(m.seen, *p.round)
	} else {
		m.seen = append(m.seen, -1)
	}
	return 1, round >= 3
}

// TestDelayedPayloadFrozen: a delayed copy must carry the payload as
// sent, not as later mutated — the transport freezes via rounds.Freezer.
func TestDelayedPayloadFrozen(t *testing.T) {
	plan := &Plan{Scheduled: []Fault{{Round: 1, From: 1, To: 2, Kind: Delay, Delay: 2}}}
	tr, err := New(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	procs := []rounds.Process{
		&mutatingSender{round: 1},
		&mutatingSender{round: 1},
	}
	// p1 crashes before its round-2/3 sends, so p2 sees only the delayed
	// round-1 copy, in round 3.
	fp := rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{1: {Round: 2, AfterSends: 0}}}
	if _, err := rounds.Run(procs, fp, rounds.Options{MaxRounds: 3, Transport: tr}); err != nil {
		t.Fatal(err)
	}
	p2 := procs[1].(*mutatingSender)
	if len(p2.seen) != 3 || p2.seen[0] != -1 || p2.seen[1] != -1 || p2.seen[2] != 1 {
		t.Fatalf("p2 saw %v from p1, want [-1 -1 1] (frozen round-1 payload arriving in round 3)", p2.seen)
	}
}

// TestReorderRespectsCrashPrefix: reordering shuffles who a crashing
// sender reaches, but never how many.
func TestReorderRespectsCrashPrefix(t *testing.T) {
	tr, err := New(&Plan{Seed: 5, Reorder: 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	fp := rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{1: {Round: 1, AfterSends: 3}}}
	vals := []vector.Value{1, 9, 9, 9, 9, 9}
	res, err := rounds.Run(newFloodRun(vals, 1), fp, rounds.Options{MaxRounds: 1, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly p1's 3-copy prefix was accepted (the shuffled prefix may
	// include p1 itself, so fewer live processes may hear it — but never
	// more than 3, and no copy is lost or gained).
	if want := int64(5*6 + 3); res.MessagesDelivered != want {
		t.Errorf("MessagesDelivered = %d, want %d (5 full broadcasts + p1's 3-send prefix)",
			res.MessagesDelivered, want)
	}
	got := 0
	for _, v := range res.Decisions {
		if v == 1 {
			got++
		}
	}
	if got > 3 {
		t.Errorf("%d live processes heard the crashed p1, want at most its 3-send prefix", got)
	}
	if lost, _, _ := tr.FaultCounts(); lost != 0 {
		t.Errorf("reorder lost %d copies, want 0", lost)
	}
}

// TestPlanValidate exercises the plan's validation surface.
func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"rates", Plan{Default: LinkFaults{Loss: 0.5, DelayProb: 0.1, MaxDelay: 2, Duplicate: 0.1}, Reorder: 0.3}, true},
		{"loss-high", Plan{Default: LinkFaults{Loss: 1.5}}, false},
		{"loss-neg", Plan{Default: LinkFaults{Loss: -0.1}}, false},
		{"loss-nan", Plan{Default: LinkFaults{Loss: math.NaN()}}, false},
		{"reorder-high", Plan{Reorder: 2}, false},
		{"delay-without-bound", Plan{Default: LinkFaults{DelayProb: 0.5}}, false},
		{"dup-without-bound", Plan{Default: LinkFaults{Duplicate: 0.5}}, false},
		{"neg-delay", Plan{Default: LinkFaults{MaxDelay: -1}}, false},
		{"link-bad-id", Plan{Links: map[Link]LinkFaults{{From: 1, To: 9}: {}}}, false},
		{"link-zero-id", Plan{Links: map[Link]LinkFaults{{From: 0, To: 1}: {}}}, false},
		{"link-ok", Plan{Links: map[Link]LinkFaults{{From: 1, To: 4}: {Loss: 1}}}, true},
		{"sched-bad-round", Plan{Scheduled: []Fault{{Round: 0, From: 1, To: 2, Kind: Drop}}}, false},
		{"sched-bad-kind", Plan{Scheduled: []Fault{{Round: 1, From: 1, To: 2}}}, false},
		{"sched-delay-zero", Plan{Scheduled: []Fault{{Round: 1, From: 1, To: 2, Kind: Delay}}}, false},
		{"sched-ok", Plan{Scheduled: []Fault{{Round: 1, From: 1, To: 2, Kind: Delay, Delay: 3}}}, true},
		{"sched-bad-id", Plan{Scheduled: []Fault{{Round: 1, From: 5, To: 2, Kind: Drop}}}, false},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(4)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	if _, err := New(nil, 4); err == nil {
		t.Error("New(nil) must fail")
	}
	if err := (&Transport{}).SetPlan(nil, 4); err == nil {
		t.Error("SetPlan(nil) must fail")
	}
}

// TestSetPlanPointerCache: reinstalling the same plan pointer is free and
// keeps state; a new pointer revalidates.
func TestSetPlanPointerCache(t *testing.T) {
	plan := &Plan{Default: LinkFaults{Loss: 0.5}}
	tr, err := New(plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr.Reseed(42)
	if err := tr.SetPlan(plan, 4); err != nil {
		t.Fatal(err)
	}
	if tr.seed != 42 {
		t.Error("reinstalling the same plan must not clobber the reseed")
	}
	bad := &Plan{Default: LinkFaults{Loss: 2}}
	if err := tr.SetPlan(bad, 4); err == nil {
		t.Error("invalid new plan must fail")
	}
	if tr.Plan() != plan {
		t.Error("failed SetPlan must leave the old plan installed")
	}
}

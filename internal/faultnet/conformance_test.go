package faultnet_test

import (
	"testing"

	"kset/internal/faultnet"
	"kset/internal/rounds"
	"kset/internal/rounds/transporttest"
)

// TestZeroFaultConformance runs the fault injector under the zero-fault
// plan through the shared transport conformance suite: with no faults
// drawn it must behave exactly like the reliable matrix transport. The
// fault paths themselves are covered by the package's property tests.
func TestZeroFaultConformance(t *testing.T) {
	transporttest.Run(t, func(tb testing.TB, n int) rounds.Transport {
		tr, err := faultnet.New(&faultnet.Plan{}, n)
		if err != nil {
			tb.Fatalf("faultnet.New: %v", err)
		}
		return tr
	})
}

// Package faultnet is the fault-injecting message transport of the round
// engine: a deterministic, seeded rounds.Transport that drops, delays
// (by whole rounds), duplicates and reorders the message copies the
// engine hands over, according to a declarative Plan of per-link rates
// and explicitly scheduled faults.
//
// The paper's §6.2 adversary controls only crashes — who stops, when,
// and after how many sends. faultnet adds an orthogonal adversary class,
// faulty links, composable with any crash FailurePattern: the engine
// still applies the crash adversary to each round's sends, and the
// transport then decides what happens to each surviving copy. The
// paper's algorithms are not designed for lossy links, which is the
// point — campaigns measure how the round bounds, agreement and
// termination degrade as loss and delay rates grow, with non-decision
// within the bounded rounds surfacing as a counted outcome rather than
// a hang.
//
// Determinism: every random fault is drawn from an allocation-free
// splitmix64 stream rewound on each Reset to a per-run seed (Reseed),
// which batch drivers derive from the plan seed, the scenario seed and
// the input vector — so a campaign's faults are byte-reproducible at
// any worker count. Delayed copies ride a ring of maxDelay+1 in-flight
// slots and are frozen (rounds.Freezer) when their payload would
// otherwise be reused by the sending protocol.
package faultnet

package faultnet

import (
	"kset/internal/rounds"
)

// message is one in-flight copy: who sent it and when, and the payload
// (frozen when retained past its send round).
type message struct {
	src       rounds.ProcessID
	sentRound int
	payload   any
}

// Transport is a deterministic fault-injecting rounds.Transport: it
// applies a Plan's scheduled faults and seeded random faults — loss,
// delay-by-rounds, duplication, send-order reordering — to every copy
// the engine hands over, composed on top of whatever crash adversary the
// engine already applied. The zero value is unusable; call SetPlan (or
// New) first.
//
// Delayed and duplicated copies ride a ring of maxDelay+1 in-flight
// slots indexed by arrival round, so a warm transport injects faults
// without allocating. Arrivals are resolved per (destination, sender)
// with a latest-send-round-wins rule: a round's own copy shadows a
// stale delayed one, and a delayed copy arriving alone surfaces as that
// round's payload from its sender — exactly the at-most-one-message-
// per-sender-per-round shape rounds.Process implementations expect,
// with stale payload types left to the protocol's receive filters.
//
// A Transport is driven by one engine at a time (see rounds.Transport)
// and reusable across runs: Reset rewinds the counters, the ring and
// the random stream (to the seed set by Reseed, or the plan's).
type Transport struct {
	plan     *Plan
	sched    map[schedKey]Fault
	maxDelay int

	seed uint64 // per-run base; rng rewinds to it on Reset
	rng  uint64

	n                                    int
	delivered, lost, delayed, duplicated int64

	// flight[slot][dst-1] holds the copies arriving at dst in rounds
	// ≡ slot (mod maxDelay+1); BeginRound retires the slot whose round
	// has passed before it is refilled for round r+maxDelay.
	flight [][][]message
	order  []rounds.ProcessID // reorder scratch
	latest []int              // per-sender latest send round seen by Deliver
}

// schedKey indexes the scheduled faults by (round, link).
type schedKey struct {
	round    int
	from, to rounds.ProcessID
}

var (
	_ rounds.Transport    = (*Transport)(nil)
	_ rounds.FaultCounter = (*Transport)(nil)
)

// New returns a Transport executing the given plan, validated against a
// system of n processes (n ≤ 0 defers the ID bound checks to the first
// run).
func New(plan *Plan, n int) (*Transport, error) {
	t := &Transport{}
	if err := t.SetPlan(plan, n); err != nil {
		return nil, err
	}
	return t, nil
}

// SetPlan installs a plan, validating it against n processes (n ≤ 0
// skips the ID bounds) and rebuilding the scheduled-fault index. The
// plan pointer is the cache key — installing the already-installed plan
// is free, and mutating an installed plan is undefined. The random
// stream reseeds to the plan's seed; override per run with Reseed.
func (t *Transport) SetPlan(plan *Plan, n int) error {
	if plan == nil {
		return errNilPlan
	}
	if plan == t.plan {
		return nil
	}
	if err := plan.Validate(n); err != nil {
		return err
	}
	t.plan = plan
	t.maxDelay = plan.maxDelay()
	t.sched = nil
	if len(plan.Scheduled) > 0 {
		t.sched = make(map[schedKey]Fault, len(plan.Scheduled))
		for _, f := range plan.Scheduled {
			t.sched[schedKey{f.Round, f.From, f.To}] = f
		}
	}
	t.seed = uint64(plan.Seed)
	return nil
}

// Plan returns the installed plan.
func (t *Transport) Plan() *Plan { return t.plan }

// Reseed fixes the base seed of the next runs' random fault stream.
// Batch drivers derive it per scenario (plan seed mixed with the
// scenario's seed and input), making every run's faults independent of
// worker count and execution order.
func (t *Transport) Reseed(seed uint64) { t.seed = seed }

// Reset implements rounds.Transport: counters to zero, ring emptied,
// random stream rewound to the base seed.
func (t *Transport) Reset(n int) {
	t.n = n
	t.rng = t.seed
	t.delivered, t.lost, t.delayed, t.duplicated = 0, 0, 0, 0
	slots := t.maxDelay + 1
	if cap(t.flight) < slots {
		t.flight = make([][][]message, slots)
	}
	t.flight = t.flight[:slots]
	for s := range t.flight {
		if cap(t.flight[s]) < n {
			t.flight[s] = make([][]message, n)
		}
		t.flight[s] = t.flight[s][:n]
		for d := range t.flight[s] {
			t.flight[s][d] = t.flight[s][d][:0]
		}
	}
	if cap(t.order) < n {
		t.order = make([]rounds.ProcessID, n)
		t.latest = make([]int, n)
	}
	t.order = t.order[:n]
	t.latest = t.latest[:n]
}

// BeginRound implements rounds.Transport: it retires the ring slot whose
// arrival round has passed, freeing it for round r+maxDelay arrivals.
func (t *Transport) BeginRound(r int) {
	slot := t.flight[(r+t.maxDelay)%(t.maxDelay+1)]
	for d := range slot {
		slot[d] = slot[d][:0]
	}
}

// Send implements rounds.Transport: each copy of the broadcast runs the
// link's fault gauntlet — scheduled fault first, then seeded loss,
// delay and duplication — and the survivors are filed under their
// arrival round. Copies retained past round r (delays, duplicates) are
// frozen (rounds.Freezer) so protocols may keep reusing their send
// buffers.
func (t *Transport) Send(r int, src rounds.ProcessID, payload any, order []rounds.ProcessID, limit int) {
	if limit <= 0 {
		return
	}
	if t.plan.Reorder > 0 && t.rand() < t.plan.Reorder {
		order = t.shuffled(order)
	}
	frozen := any(nil)
	for k := 0; k < limit; k++ {
		dst := order[k]
		if f, ok := t.sched[schedKey{r, src, dst}]; ok {
			switch f.Kind {
			case Drop:
				t.lost++
			case Delay:
				t.delayed++
				t.enqueue(r, f.Delay, src, dst, payload, &frozen)
			case Duplicate:
				t.duplicated++
				t.enqueue(r, 0, src, dst, payload, &frozen)
				t.enqueue(r, f.Delay, src, dst, payload, &frozen)
			}
			continue
		}
		lf := t.plan.Default
		if len(t.plan.Links) > 0 {
			if o, ok := t.plan.Links[Link{From: src, To: dst}]; ok {
				lf = o
			}
		}
		if lf.Loss > 0 && t.rand() < lf.Loss {
			t.lost++
			continue
		}
		d := 0
		if lf.DelayProb > 0 && t.rand() < lf.DelayProb {
			d = 1 + t.randN(lf.MaxDelay)
			t.delayed++
		}
		t.enqueue(r, d, src, dst, payload, &frozen)
		if lf.Duplicate > 0 && t.rand() < lf.Duplicate {
			t.duplicated++
			t.enqueue(r, 1+t.randN(lf.MaxDelay), src, dst, payload, &frozen)
		}
	}
}

// enqueue files one copy sent in round r for arrival d rounds later,
// freezing the payload (once per Send) when it outlives its round.
func (t *Transport) enqueue(r, d int, src, dst rounds.ProcessID, payload any, frozen *any) {
	if d > 0 {
		if *frozen == nil {
			if fz, ok := payload.(rounds.Freezer); ok {
				*frozen = fz.Freeze()
			} else {
				*frozen = payload
			}
		}
		payload = *frozen
	}
	row := t.flight[(r+d)%(t.maxDelay+1)]
	row[dst-1] = append(row[dst-1], message{src: src, sentRound: r, payload: payload})
	t.delivered++
}

// Deliver implements rounds.Transport: round r's arrivals for dst,
// resolved per sender by latest send round (an on-time copy shadows a
// stale delayed one; ties — duplicates of one copy — carry the same
// payload).
func (t *Transport) Deliver(r int, dst rounds.ProcessID, row []any) {
	for i := range row {
		row[i] = nil
	}
	for i := range t.latest {
		t.latest[i] = 0
	}
	for _, m := range t.flight[r%(t.maxDelay+1)][dst-1] {
		if m.sentRound >= t.latest[m.src-1] {
			t.latest[m.src-1] = m.sentRound
			row[m.src-1] = m.payload
		}
	}
}

// Delivered implements rounds.Transport: the copies accepted for
// delivery — losses excluded, duplicates included, delayed copies
// counted when accepted even if the run ends before they arrive.
func (t *Transport) Delivered() int64 { return t.delivered }

// FaultCounts implements rounds.FaultCounter.
func (t *Transport) FaultCounts() (lost, delayed, duplicated int64) {
	return t.lost, t.delayed, t.duplicated
}

// shuffled copies order into the transport's scratch and applies a
// seeded Fisher–Yates shuffle.
func (t *Transport) shuffled(order []rounds.ProcessID) []rounds.ProcessID {
	s := t.order[:len(order)]
	copy(s, order)
	for i := len(s) - 1; i > 0; i-- {
		j := t.randN(i + 1)
		s[i], s[j] = s[j], s[i]
	}
	return s
}

// next advances the splitmix64 stream — allocation-free, unlike a
// per-run math/rand source, and trivially reseedable per scenario.
func (t *Transport) next() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rand returns a uniform draw from [0, 1).
func (t *Transport) rand() float64 { return float64(t.next()>>11) / (1 << 53) }

// randN returns a uniform draw from {0, …, n−1}.
func (t *Transport) randN(n int) int {
	if n <= 1 {
		return 0
	}
	return int(t.next() % uint64(n))
}

package core

import (
	"testing"

	"kset/internal/adversary"
	"kset/internal/condition"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// TestExhaustiveWithOrderPermutations model-checks the Figure-2 algorithm
// and the early-deciding variant against the stronger adversary that also
// reverses the delivery order of late-round partial crashes (the paper
// allows any order after round 1). Every execution must satisfy
// termination, validity, agreement and the round-bound predictions.
func TestExhaustiveWithOrderPermutations(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check")
	}
	configs := []struct {
		p Params
		m int
	}{
		{Params{N: 4, T: 2, K: 2, D: 1, L: 1}, 2},
		{Params{N: 4, T: 3, K: 2, D: 1, L: 1}, 2},
		{Params{N: 4, T: 2, K: 1, D: 1, L: 1}, 2},
	}
	for _, cfg := range configs {
		p := cfg.p
		c := condition.MustNewMax(p.N, cfg.m, p.X(), p.L)
		runs := 0
		vector.ForEach(p.N, cfg.m, func(in vector.Vector) bool {
			input := in.Clone()
			inC := c.Contains(input)
			err := adversary.EnumerateWithOrders(p.N, p.T, p.RMax(), func(fp rounds.FailurePattern) bool {
				res, err := Run(p, c, input, fp, false)
				if err != nil {
					t.Fatalf("cfg %+v input %v: %v", p, input, err)
				}
				verdict := Verify(input, fp, res, p.K)
				if !verdict.OK() {
					t.Fatalf("cfg %+v input %v (inC=%v) fp %+v orders %+v: %v",
						p, input, inC, fp.Crashes, fp.Orders, verdict)
				}
				if bound := PredictRounds(p, inC, fp); verdict.MaxRound > bound {
					t.Fatalf("cfg %+v input %v fp %+v orders %+v: round %d > bound %d",
						p, input, fp.Crashes, fp.Orders, verdict.MaxRound, bound)
				}

				early, err := RunEarly(p, c, input, fp, false)
				if err != nil {
					t.Fatal(err)
				}
				ev := Verify(input, fp, early, p.K)
				if !ev.OK() {
					t.Fatalf("EARLY cfg %+v input %v (inC=%v) fp %+v orders %+v: %v",
						p, input, inC, fp.Crashes, fp.Orders, ev)
				}
				bound := PredictRounds(p, inC, fp)
				if eb := fp.NumCrashes()/p.K + 3; eb < bound {
					bound = eb
				}
				if ev.MaxRound > bound {
					t.Fatalf("EARLY cfg %+v input %v fp %+v orders %+v: round %d > bound %d",
						p, input, fp.Crashes, fp.Orders, ev.MaxRound, bound)
				}
				runs += 2
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			return true
		})
		t.Logf("cfg %+v m=%d: %d executions verified (incl. order permutations)", p, cfg.m, runs)
	}
}

package core

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/condition"
	"kset/internal/rounds"
	"kset/internal/vector"
)

func TestEarlyBound(t *testing.T) {
	tests := []struct {
		t, k, f, want int
	}{
		{6, 1, 0, 2}, {6, 1, 3, 5}, {6, 1, 6, 7},
		{6, 2, 0, 2}, {6, 2, 5, 4}, {6, 2, 6, 4},
		{6, 3, 6, 3}, {2, 3, 1, 1},
	}
	for _, tc := range tests {
		if got := EarlyBound(tc.t, tc.k, tc.f); got != tc.want {
			t.Errorf("EarlyBound(t=%d,k=%d,f=%d) = %d, want %d", tc.t, tc.k, tc.f, got, tc.want)
		}
	}
}

// TestEarlyClassicalFailureFree: with no crashes the early baseline decides
// in 2 rounds instead of ⌊t/k⌋+1.
func TestEarlyClassicalFailureFree(t *testing.T) {
	n, tt, k := 7, 6, 1
	input := vector.OfInts(1, 2, 3, 4, 5, 6, 7)
	res, err := RunEarlyClassical(n, tt, k, input, adversary.None(), false)
	if err != nil {
		t.Fatal(err)
	}
	verdict := Verify(input, adversary.None(), res, k)
	if !verdict.OK() {
		t.Fatal(verdict)
	}
	if verdict.MaxRound != 2 {
		t.Errorf("decided at %d, want 2 (t+1 would be %d)", verdict.MaxRound, tt+1)
	}
}

// TestEarlyClassicalExhaustive model-checks the early-deciding baseline:
// agreement, validity, termination and the min(⌊f/k⌋+2, ⌊t/k⌋+1) bound over
// every prefix-send failure pattern.
func TestEarlyClassicalExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check")
	}
	for _, cfg := range []struct{ n, t, k, m int }{
		{4, 2, 1, 2}, {4, 3, 1, 2}, {4, 3, 2, 2}, {4, 2, 2, 3},
	} {
		runs := 0
		vector.ForEach(cfg.n, cfg.m, func(in vector.Vector) bool {
			input := in.Clone()
			err := adversary.Enumerate(cfg.n, cfg.t, cfg.t/cfg.k+1, func(fp rounds.FailurePattern) bool {
				res, err := RunEarlyClassical(cfg.n, cfg.t, cfg.k, input, fp, false)
				if err != nil {
					t.Fatal(err)
				}
				verdict := Verify(input, fp, res, cfg.k)
				if !verdict.OK() {
					t.Fatalf("cfg %+v input %v fp %+v: %v", cfg, input, fp.Crashes, verdict)
				}
				if bound := EarlyBound(cfg.t, cfg.k, fp.NumCrashes()); verdict.MaxRound > bound {
					t.Fatalf("cfg %+v input %v fp %+v: decided at %d > early bound %d",
						cfg, input, fp.Crashes, verdict.MaxRound, bound)
				}
				runs++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			return true
		})
		t.Logf("cfg %+v: %d executions verified", cfg, runs)
	}
}

// TestEarlyCondExhaustive model-checks the early-deciding condition-based
// algorithm: all three agreement properties plus both round bounds (the
// Figure-2 bounds and the early bound) in every execution.
func TestEarlyCondExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check")
	}
	configs := []struct {
		p Params
		m int
	}{
		{Params{N: 4, T: 2, K: 2, D: 1, L: 1}, 2},
		{Params{N: 4, T: 3, K: 2, D: 1, L: 1}, 2},
		{Params{N: 4, T: 3, K: 1, D: 1, L: 1}, 2},
		{Params{N: 4, T: 2, K: 2, D: 1, L: 2}, 3},
	}
	for _, cfg := range configs {
		p := cfg.p
		c := condition.MustNewMax(p.N, cfg.m, p.X(), p.L)
		runs := 0
		vector.ForEach(p.N, cfg.m, func(in vector.Vector) bool {
			input := in.Clone()
			inC := c.Contains(input)
			err := adversary.Enumerate(p.N, p.T, p.RMax(), func(fp rounds.FailurePattern) bool {
				res, err := RunEarly(p, c, input, fp, false)
				if err != nil {
					t.Fatal(err)
				}
				verdict := Verify(input, fp, res, p.K)
				if !verdict.OK() {
					t.Fatalf("cfg %+v input %v (inC=%v) fp %+v: %v", p, input, inC, fp.Crashes, verdict)
				}
				// The stability guard costs one round over the classical
				// early bound: measured bound min(plain, ⌊f/k⌋+3).
				bound := PredictRounds(p, inC, fp)
				if eb := fp.NumCrashes()/p.K + 3; eb < bound {
					bound = eb
				}
				if verdict.MaxRound > bound {
					t.Fatalf("cfg %+v input %v (inC=%v) fp %+v: decided at %d > bound %d",
						p, input, inC, fp.Crashes, verdict.MaxRound, bound)
				}
				runs++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			return true
		})
		t.Logf("cfg %+v m=%d: %d executions verified", p, cfg.m, runs)
	}
}

// TestEarlyCondNeverSlower: the early extension decides no later than the
// plain algorithm, run for run.
func TestEarlyCondNeverSlower(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	p := Params{N: 6, T: 4, K: 2, D: 2, L: 1}
	c := condition.MustNewMax(p.N, 3, p.X(), p.L)
	for trial := 0; trial < 200; trial++ {
		input := vector.New(p.N)
		for i := range input {
			input[i] = vector.Value(1 + r.Intn(3))
		}
		fp := adversary.Random(r, p.N, p.T, p.RMax())
		plain, err := Run(p, c, input, fp, false)
		if err != nil {
			t.Fatal(err)
		}
		early, err := RunEarly(p, c, input, fp, false)
		if err != nil {
			t.Fatal(err)
		}
		if early.MaxDecisionRound() > plain.MaxDecisionRound() {
			t.Fatalf("early %d > plain %d for input %v fp %+v",
				early.MaxDecisionRound(), plain.MaxDecisionRound(), input, fp.Crashes)
		}
		if v := Verify(input, fp, early, p.K); !v.OK() {
			t.Fatalf("input %v fp %+v: %v", input, fp.Crashes, v)
		}
	}
}

func TestEarlyErrors(t *testing.T) {
	if _, err := NewEarlyClassicalRun(1, 1, 1, vector.OfInts(1)); err == nil {
		t.Error("want error")
	}
	if _, err := NewEarlyClassicalRun(4, 2, 1, vector.OfInts(1, 2, 3)); err == nil {
		t.Error("want error for short input")
	}
	p := Params{N: 4, T: 2, K: 2, D: 5, L: 1}
	if _, err := NewEarlyRun(p, condition.MustNewMax(4, 2, 1, 1), vector.OfInts(1, 1, 1, 1)); err == nil {
		t.Error("want error for invalid params")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package core

import (
	"kset/internal/condition"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// Section 8 of the paper observes that the ⌊t/k⌋+1 worst case is only paid
// when t processes actually crash, cites the early-deciding lower bound
// min(⌊f/k⌋+2, ⌊t/k⌋+1) of Gafni–Guerraoui–Pochon (f the number of actual
// crashes), and notes the algorithm can be extended with the technique of
// [22] to never exceed it. This file implements that extension for both
// the classical baseline and the condition-based algorithm.
//
// The early-decision machinery is the classical flag protocol: a process
// whose cumulative number of perceived crashes after round r is below k·r
// raises a flag, piggybacks it on its next round's message, and decides at
// the end of that next round — on the state it entered the round with, so
// the decided state (and the flag) were relayed before it halts. A process
// that receives a flag raises its own and decides one round after relaying
// in turn. Processes that went silent after sending a flag are deciders,
// not crashes, and are excluded from the perceived count. Every correct
// process perceives at most f crashes, so its own flag fires no later than
// round ⌊f/k⌋+1 and the classical variant decides by ⌊f/k⌋+2.
//
// The condition-based variant needs one further guard, found by model
// checking the naive combination: its three value classes (Cond, Tmf, Out)
// are decided by priority, and a process perceiving few crashes may hold
// only an Out value while higher-priority Cond values are still in flight —
// the plain algorithm protects against exactly this by making Out holders
// wait until round ⌊t/k⌋+1. The guard is state stability: the flag is only
// raised after a round whose merge changed nothing in the process's state
// triple, which costs one extra round on the ⌊f/k⌋+2 target (round 1
// always changes the state). Every value class a stable process is missing
// must then be hidden behind a crash chain its perceived-crash budget of
// k·r would have noticed. The paper only sketches this extension; the
// combination is validated by exhaustive model checking over small
// configurations (see early_test.go), which also pins its measured bound
// min(⌊f/k⌋+3, plain bound).

// EarlyMsg wraps a protocol payload with the early-decision flag.
type EarlyMsg struct {
	// Payload is the wrapped protocol message (a proposal value in round
	// 1, a StateMsg in later rounds of the condition algorithm, an
	// estimate value in the classical one).
	Payload any
	// Flag announces that the sender decides at the end of this round.
	Flag bool
}

// Freeze implements rounds.Freezer: the wrapper is a value, but its
// Payload may point into the sender's reused buffer, so a transport
// retaining the message past its round freezes recursively.
func (m EarlyMsg) Freeze() any {
	if fz, ok := m.Payload.(rounds.Freezer); ok {
		m.Payload = fz.Freeze()
	}
	return m
}

// earlyTracker holds the shared flag bookkeeping.
type earlyTracker struct {
	n, k      int
	flagged   []bool // sender announced a decision (never a crash suspect)
	flag      bool   // decide at the end of the next round
	decideNow bool   // this round's send carried the flag: decide this round
	clean     bool   // the perceived-crash rule held this round
}

func newEarlyTracker(n, k int) *earlyTracker {
	return &earlyTracker{n: n, k: k, flagged: make([]bool, n+1)}
}

// observe ingests one round's receptions and reports whether this process
// decides at the end of this round (its flag was already relayed in this
// round's send). Raising the process's own flag is split out into raise so
// that protocols can impose additional guards (state stability).
func (e *earlyTracker) observe(round int, recv []any) bool {
	e.decideNow = e.flag
	perceived := 0
	for i, payload := range recv {
		if payload == nil {
			if !e.flagged[i+1] {
				perceived++
			}
			continue
		}
		// A non-EarlyMsg payload (a stale copy from a fault-injecting
		// transport) still proves the sender alive; it just carries no
		// flag.
		if m, ok := payload.(EarlyMsg); ok && m.Flag {
			e.flagged[i+1] = true
			e.flag = true // relay next round, then decide
		}
	}
	e.clean = perceived < e.k*round
	return e.decideNow
}

// raise raises the process's own flag if this round's perceived-crash rule
// held and the protocol-specific guard (e.g. state stability) passed.
func (e *earlyTracker) raise(guard bool) {
	if e.clean && guard {
		e.flag = true
	}
}

// EarlyCondProcess is the condition-based algorithm extended with early
// decision. Its decisions never come later than the Figure-2 algorithm's
// and never later than round ⌊f/k⌋+2.
type EarlyCondProcess struct {
	inner *CondProcess
	early *earlyTracker

	// unwrapped is the reusable buffer Step unwraps each round's EarlyMsg
	// payloads into; the engine's lock-step structure (the inner Step
	// consumes it before Step returns) makes the reuse safe.
	unwrapped []any
}

var _ rounds.Process = (*EarlyCondProcess)(nil)

// NewEarlyRun builds the n early-deciding condition-based protocol
// instances for the input vector.
func NewEarlyRun(p Params, c condition.Condition, input vector.Vector) ([]rounds.Process, error) {
	base, err := NewRun(p, c, input)
	if err != nil {
		return nil, err
	}
	procs := make([]rounds.Process, len(base))
	for i, b := range base {
		procs[i] = &EarlyCondProcess{inner: b.(*CondProcess), early: newEarlyTracker(p.N, p.K)}
	}
	return procs, nil
}

// Send implements rounds.Process.
func (e *EarlyCondProcess) Send(round int) any {
	return EarlyMsg{Payload: e.inner.Send(round), Flag: e.early.flag}
}

// Step implements rounds.Process.
func (e *EarlyCondProcess) Step(round int, recv []any) (vector.Value, bool) {
	decideNow := e.early.observe(round, recv)
	if cap(e.unwrapped) < len(recv) {
		e.unwrapped = make([]any, len(recv))
	}
	unwrapped := e.unwrapped[:len(recv)]
	for i, payload := range recv {
		if m, ok := payload.(EarlyMsg); ok {
			unwrapped[i] = m.Payload
		} else {
			unwrapped[i] = nil
		}
	}
	if round == 1 {
		e.inner.stepFirstRound(unwrapped)
		// Round 1 always changes the state triple: no stability, no flag.
		e.early.raise(false)
		return vector.Bottom, false
	}
	// The state below was the payload of this round's send.
	sent := StateMsg{Cond: e.inner.vCond, Out: e.inner.vOut, Tmf: e.inner.vTmf}
	if v, done := e.inner.stepFloodRound(round, unwrapped); done {
		return v, true
	}
	if decideNow {
		// Early decision with the algorithm's priority, on the state as
		// sent (so the decided state was relayed to everyone this round;
		// sent.Cond is ⊥ here, otherwise line 14 decided above). At least
		// one branch variable is non-⊥ from round 1 on under reliable
		// links; an all-⊥ state (total message loss) has nothing to
		// decide and falls through undecided.
		if sent.Tmf != vector.Bottom {
			return sent.Tmf, true
		}
		if sent.Out != vector.Bottom {
			return sent.Out, true
		}
	}
	stable := sent == StateMsg{Cond: e.inner.vCond, Out: e.inner.vOut, Tmf: e.inner.vTmf}
	e.early.raise(stable)
	return vector.Bottom, false
}

// RunEarly executes the early-deciding condition-based algorithm on a
// pooled Runner, reusing its process cells, trackers and view storage.
func RunEarly(p Params, c condition.Condition, input vector.Vector, fp rounds.FailurePattern, concurrent bool) (*rounds.Result, error) {
	if err := p.ValidateWith(c); err != nil {
		return nil, err
	}
	r := GetRunner()
	res, err := r.RunEarly(p, c, input, fp, concurrent, nil, nil, nil)
	PutRunner(r)
	return res, err
}

// EarlyClassicalProcess is the classical flood algorithm extended with the
// same early-decision machinery: it decides by round
// min(⌊f/k⌋+2, ⌊t/k⌋+1).
type EarlyClassicalProcess struct {
	est       vector.Value
	lastRound int
	early     *earlyTracker
}

var _ rounds.Process = (*EarlyClassicalProcess)(nil)

// NewEarlyClassicalRun builds the n early-deciding baseline instances.
func NewEarlyClassicalRun(n, t, k int, input vector.Vector) ([]rounds.Process, error) {
	if err := ValidateClassical(n, t, k); err != nil {
		return nil, err
	}
	if err := ValidateInput(n, input); err != nil {
		return nil, err
	}
	procs := make([]rounds.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = &EarlyClassicalProcess{
			est:       input[i],
			lastRound: t/k + 1,
			early:     newEarlyTracker(n, k),
		}
	}
	return procs, nil
}

// Send implements rounds.Process.
func (e *EarlyClassicalProcess) Send(int) any {
	return EarlyMsg{Payload: e.est, Flag: e.early.flag}
}

// Step implements rounds.Process.
func (e *EarlyClassicalProcess) Step(round int, recv []any) (vector.Value, bool) {
	decideNow := e.early.observe(round, recv)
	for _, payload := range recv {
		m, ok := payload.(EarlyMsg)
		if !ok {
			continue
		}
		if v, ok := m.Payload.(vector.Value); ok && v > e.est {
			e.est = v
		}
	}
	if decideNow || round >= e.lastRound {
		return e.est, true
	}
	// A single max-flooded estimate has no cross-class priority, so no
	// stability guard is needed; the perceived-crash rule alone is safe
	// (exhaustively model checked).
	e.early.raise(true)
	return vector.Bottom, false
}

// RunEarlyClassical executes the early-deciding baseline.
func RunEarlyClassical(n, t, k int, input vector.Vector, fp rounds.FailurePattern, concurrent bool) (*rounds.Result, error) {
	procs, err := NewEarlyClassicalRun(n, t, k, input)
	if err != nil {
		return nil, err
	}
	return runPooled(procs, fp, rounds.Options{MaxRounds: t/k + 1, Concurrent: concurrent})
}

// EarlyBound returns the early-deciding round bound min(⌊f/k⌋+2, ⌊t/k⌋+1)
// of [12], where f is the number of crashes that actually occur.
func EarlyBound(t, k, f int) int {
	b := f/k + 2
	if m := t/k + 1; m < b {
		b = m
	}
	return b
}

package core

import (
	"kset/internal/rounds"
	"kset/internal/stats"
)

// Observe emits the flat results-plane record of one finished run: the
// execution facts a rounds.Result carries (latest decision round,
// messages delivered, crashes, deciders), ready for a stats.Collector.
// The campaign layer fills in what the engine cannot know — condition
// membership, the verdict, executor and label — before folding the
// observation into its collectors. Observe reads the Result without
// retaining it, so it composes with recycled Results (RunInto, Exhaust).
func Observe(res *rounds.Result) stats.Observation {
	return stats.Observation{
		Round:      res.MaxDecisionRound(),
		Messages:   res.MessagesDelivered,
		Crashes:    len(res.Crashed),
		Decided:    len(res.Decisions),
		Lost:       res.Lost,
		Delayed:    res.Delayed,
		Duplicated: res.Duplicated,
	}
}

package core

import (
	"kset/internal/adversary"
	"kset/internal/condition"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// Exhaust drives the Figure-2 condition-based algorithm over every pattern
// adversary.Enumerate generates — the §6.2 exhaustive safety sweep — with
// one pooled runner and one recycled Result for the whole sweep, so each
// of the Σ_{f≤t} C(n,f)·(r·(n+1))^f executions allocates nothing: the
// buffer-reusing companion of the enumeration (which itself reuses one
// pattern and its crash map across steps). fn receives each pattern with
// its run result and may stop the sweep by returning false; both
// arguments are reused across steps and must not be retained
// (Result.Reset clears the previous run's maps in place).
//
// Parameters and the condition are validated once up front; the per-run
// hot path only revalidates the input vector, exactly like a System run.
func Exhaust(p Params, c condition.Condition, input vector.Vector, fn func(fp rounds.FailurePattern, res *rounds.Result) bool) error {
	if err := p.ValidateWith(c); err != nil {
		return err
	}
	r := GetRunner()
	defer PutRunner(r)
	var res rounds.Result
	var runErr error
	err := adversary.Enumerate(p.N, p.T, p.RMax(), func(fp rounds.FailurePattern) bool {
		out, err := r.RunCond(p, c, input, fp, false, nil, nil, &res)
		if err != nil {
			runErr = err
			return false
		}
		return fn(fp, out)
	})
	if err != nil {
		return err
	}
	return runErr
}

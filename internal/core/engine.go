package core

import (
	"sync"

	"kset/internal/rounds"
	"kset/internal/vector"
)

// enginePool shares rounds.Engine scratch across the package's Run
// helpers, so sweeps that call Run/RunEarly/RunClassical thousands of
// times (exhaustive adversary model checking, experiment tables) reuse the
// delivery-matrix and bookkeeping buffers instead of reallocating them per
// run. Results stay freshly allocated, so callers may retain them.
var enginePool = sync.Pool{New: func() any { return rounds.NewEngine() }}

// runPooled executes one run on a pooled engine.
func runPooled(procs []rounds.Process, fp rounds.FailurePattern, opts rounds.Options) (*rounds.Result, error) {
	e := enginePool.Get().(*rounds.Engine)
	res, err := e.Run(procs, fp, opts)
	enginePool.Put(e)
	return res, err
}

// condRunState is the pooled per-run protocol state of the Figure-2
// algorithm: the n process cells and one flat backing array for their n
// views. Run re-initializes every field before use, so recycling a state
// never leaks one execution into the next.
type condRunState struct {
	procs []rounds.Process
	cells []CondProcess
	views []vector.Value // n views of n entries each
}

var condRunPool sync.Pool

// newCondRunState returns a pooled state sized for n processes.
func newCondRunState(n int) *condRunState {
	st, _ := condRunPool.Get().(*condRunState)
	if st == nil || cap(st.cells) < n || cap(st.views) < n*n {
		st = &condRunState{
			procs: make([]rounds.Process, n),
			cells: make([]CondProcess, n),
			views: make([]vector.Value, n*n),
		}
	}
	st.procs = st.procs[:n]
	st.cells = st.cells[:n]
	st.views = st.views[:n*n]
	clear(st.views)
	return st
}

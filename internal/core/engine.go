package core

import (
	"sync"

	"kset/internal/condition"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// Runner executes synchronous agreement runs while owning every piece of
// reusable state a run needs: the rounds.Engine scratch (delivery matrix,
// liveness bitmaps) plus per-algorithm process cells, view storage and
// early-decision bookkeeping. A batch driver creates one Runner per worker
// and calls its Run* methods millions of times; each call then allocates
// nothing beyond the Result — and not even that when a recycled Result is
// passed in.
//
// The Run* methods do NOT re-validate parameters or the condition: the
// caller establishes Params.ValidateWith / ValidateClassical once (e.g. at
// System construction) and the hot path only checks the per-run input
// vector. A Runner is not safe for concurrent use.
type Runner struct {
	eng *rounds.Engine

	// Figure-2 state: n process cells over one flat n×n view array.
	procs []rounds.Process
	cells []CondProcess
	views []vector.Value

	// Early-deciding state: wrappers, trackers and their flag arrays.
	eprocs []rounds.Process
	ecells []EarlyCondProcess
	einner []CondProcess
	etrk   []earlyTracker
	eflags []bool         // n trackers × (n+1) flags
	eviews []vector.Value // n views of n entries

	// Classical state.
	cprocs []rounds.Process
	ccells []ClassicalProcess
}

// NewRunner returns an empty Runner; its buffers grow to the largest n
// seen and are reused afterwards.
func NewRunner() *Runner { return &Runner{eng: rounds.NewEngine()} }

// condState sizes the Figure-2 state for n processes and zeroes the views.
func (r *Runner) condState(n int) {
	if cap(r.cells) < n || cap(r.views) < n*n {
		r.procs = make([]rounds.Process, n)
		r.cells = make([]CondProcess, n)
		r.views = make([]vector.Value, n*n)
	}
	r.procs = r.procs[:n]
	r.cells = r.cells[:n]
	r.views = r.views[:n*n]
	clear(r.views)
}

// earlyState sizes the early-deciding state for n processes.
func (r *Runner) earlyState(n int) {
	if cap(r.ecells) < n || cap(r.eviews) < n*n {
		r.eprocs = make([]rounds.Process, n)
		r.ecells = make([]EarlyCondProcess, n)
		r.einner = make([]CondProcess, n)
		r.etrk = make([]earlyTracker, n)
		r.eflags = make([]bool, n*(n+1))
		r.eviews = make([]vector.Value, n*n)
	}
	r.eprocs = r.eprocs[:n]
	r.ecells = r.ecells[:n]
	r.einner = r.einner[:n]
	r.etrk = r.etrk[:n]
	r.eflags = r.eflags[:n*(n+1)]
	r.eviews = r.eviews[:n*n]
	clear(r.eflags)
	clear(r.eviews)
}

// RunCond executes one Figure-2 condition-based run. The caller has
// already validated p against c (Params.ValidateWith); only the input
// vector is checked. res, when non-nil, is cleared and reused. tr, when
// non-nil, overrides the engine's message transport (fault injection —
// see internal/faultnet); nil is the reliable delivery matrix. cancel,
// when non-nil, aborts the run between rounds once closed (the engine
// returns rounds.ErrCanceled); batch drivers pass a context's Done
// channel so cancellation stops in-flight synchronous work.
func (r *Runner) RunCond(p Params, c condition.Condition, input vector.Vector, fp rounds.FailurePattern, concurrent bool, tr rounds.Transport, cancel <-chan struct{}, res *rounds.Result) (*rounds.Result, error) {
	if err := ValidateInput(p.N, input); err != nil {
		return nil, err
	}
	r.condState(p.N)
	for i := 0; i < p.N; i++ {
		r.cells[i] = newCondProcess(p, c, input, i, r.views[i*p.N:(i+1)*p.N])
		r.procs[i] = &r.cells[i]
	}
	return r.eng.RunInto(res, r.procs, fp, rounds.Options{MaxRounds: p.RMax(), Concurrent: concurrent, Transport: tr, Cancel: cancel})
}

// RunEarly executes one early-deciding condition-based run under the same
// contract as RunCond.
func (r *Runner) RunEarly(p Params, c condition.Condition, input vector.Vector, fp rounds.FailurePattern, concurrent bool, tr rounds.Transport, cancel <-chan struct{}, res *rounds.Result) (*rounds.Result, error) {
	if err := ValidateInput(p.N, input); err != nil {
		return nil, err
	}
	r.earlyState(p.N)
	for i := 0; i < p.N; i++ {
		r.einner[i] = newCondProcess(p, c, input, i, r.eviews[i*p.N:(i+1)*p.N])
		r.etrk[i] = earlyTracker{n: p.N, k: p.K, flagged: r.eflags[i*(p.N+1) : (i+1)*(p.N+1)]}
		r.ecells[i] = EarlyCondProcess{inner: &r.einner[i], early: &r.etrk[i], unwrapped: r.ecells[i].unwrapped}
		r.eprocs[i] = &r.ecells[i]
	}
	return r.eng.RunInto(res, r.eprocs, fp, rounds.Options{MaxRounds: p.RMax(), Concurrent: concurrent, Transport: tr, Cancel: cancel})
}

// RunClassical executes one classical flood run. The caller has already
// validated (n, t, k) via ValidateClassical; only the input is checked.
func (r *Runner) RunClassical(n, t, k int, input vector.Vector, fp rounds.FailurePattern, concurrent bool, tr rounds.Transport, cancel <-chan struct{}, res *rounds.Result) (*rounds.Result, error) {
	if err := ValidateInput(n, input); err != nil {
		return nil, err
	}
	if cap(r.ccells) < n {
		r.cprocs = make([]rounds.Process, n)
		r.ccells = make([]ClassicalProcess, n)
	}
	r.cprocs = r.cprocs[:n]
	r.ccells = r.ccells[:n]
	for i := 0; i < n; i++ {
		r.ccells[i] = ClassicalProcess{n: n, t: t, k: k, est: input[i], lastRound: t/k + 1}
		r.cprocs[i] = &r.ccells[i]
	}
	return r.eng.RunInto(res, r.cprocs, fp, rounds.Options{MaxRounds: t/k + 1, Concurrent: concurrent, Transport: tr, Cancel: cancel})
}

// runnerPool shares Runners across the package's one-shot Run helpers, so
// sweeps that call Run/RunEarly/RunClassical thousands of times
// (exhaustive adversary model checking, experiment tables) reuse the
// engine and protocol buffers instead of reallocating them per run.
// Results stay freshly allocated there, so callers may retain them.
var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

// GetRunner checks a Runner out of the shared pool; return it with
// PutRunner. Long-lived workers should prefer NewRunner.
func GetRunner() *Runner { return runnerPool.Get().(*Runner) }

// PutRunner returns a Runner to the shared pool.
func PutRunner(r *Runner) { runnerPool.Put(r) }

// runPooled executes one run of caller-built processes on a pooled
// runner's engine.
func runPooled(procs []rounds.Process, fp rounds.FailurePattern, opts rounds.Options) (*rounds.Result, error) {
	r := GetRunner()
	res, err := r.eng.Run(procs, fp, opts)
	PutRunner(r)
	return res, err
}

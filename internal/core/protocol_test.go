package core

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/condition"
	"kset/internal/rounds"
	"kset/internal/vector"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"ok", Params{N: 5, T: 2, K: 2, D: 1, L: 1}, false},
		{"consensus", Params{N: 4, T: 3, K: 1, D: 2, L: 1}, false},
		{"n too small", Params{N: 1, T: 0, K: 1, D: 0, L: 1}, true},
		{"t zero", Params{N: 4, T: 0, K: 1, D: 0, L: 1}, true},
		{"t = n", Params{N: 4, T: 4, K: 1, D: 1, L: 1}, true},
		{"k zero", Params{N: 4, T: 2, K: 0, D: 1, L: 1}, true},
		{"l zero", Params{N: 4, T: 2, K: 2, D: 1, L: 0}, true},
		{"l > k", Params{N: 4, T: 2, K: 1, D: 1, L: 2}, true},
		{"d negative", Params{N: 4, T: 2, K: 2, D: -1, L: 1}, true},
		{"d > t", Params{N: 4, T: 2, K: 2, D: 3, L: 1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); (err != nil) != tc.wantErr {
				t.Errorf("Validate(%+v) = %v, wantErr %v", tc.p, err, tc.wantErr)
			}
		})
	}
}

// TestRoundFormulas pins the reconstructed bounds to the paper's special
// cases.
func TestRoundFormulas(t *testing.T) {
	tests := []struct {
		name        string
		p           Params
		rCond, rMax int
	}{
		// k = ℓ = 1: condition-based consensus decides in d+1 rounds [22].
		{"consensus d=3", Params{N: 8, T: 5, K: 1, D: 3, L: 1}, 4, 6},
		{"consensus d=1", Params{N: 8, T: 5, K: 1, D: 1, L: 1}, 2, 6},
		// d = 0: two rounds (clamp), matching "two rounds when d ≤ 1".
		{"consensus d=0", Params{N: 8, T: 5, K: 1, D: 0, L: 1}, 2, 6},
		// d = t, ℓ = 1: the classical ⌊t/k⌋+1 bound.
		{"classical k=2", Params{N: 9, T: 6, K: 2, D: 6, L: 1}, 4, 4},
		{"classical k=3", Params{N: 9, T: 6, K: 3, D: 6, L: 1}, 3, 3},
		// Generic: ⌊(d+ℓ−1)/k⌋+1.
		{"generic", Params{N: 10, T: 7, K: 2, D: 4, L: 2}, 3, 4},
		{"dividing by k", Params{N: 12, T: 9, K: 3, D: 6, L: 2}, 3, 4},
		// k > d+ℓ−1: clamp to 2.
		{"clamp", Params{N: 10, T: 6, K: 5, D: 2, L: 1}, 2, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.RCond(); got != tc.rCond {
				t.Errorf("RCond = %d, want %d", got, tc.rCond)
			}
			if got := tc.p.RMax(); got != tc.rMax {
				t.Errorf("RMax = %d, want %d", got, tc.rMax)
			}
		})
	}
	p := Params{N: 8, T: 5, K: 2, D: 2, L: 1}
	if !p.ConditionHelps() {
		t.Error("ℓ=1 ≤ t−d=3 must help")
	}
	if (Params{N: 8, T: 5, K: 2, D: 5, L: 1}).ConditionHelps() {
		t.Error("ℓ=1 > t−d=0 must not help")
	}
}

func TestNewRunErrors(t *testing.T) {
	p := Params{N: 4, T: 2, K: 2, D: 1, L: 1}
	c := condition.MustNewMax(4, 3, p.X(), 1)
	if _, err := NewRun(p, c, vector.OfInts(1, 2, 3)); err == nil {
		t.Error("want error for short input")
	}
	if _, err := NewRun(p, c, vector.OfInts(1, 2, 0, 3)); err == nil {
		t.Error("want error for ⊥ input")
	}
	if _, err := NewRun(p, nil, vector.OfInts(1, 2, 3, 3)); err == nil {
		t.Error("want error for nil condition")
	}
	wrongL := condition.MustNewMax(4, 3, p.X(), 2)
	if _, err := NewRun(p, wrongL, vector.OfInts(1, 2, 3, 3)); err == nil {
		t.Error("want error for ℓ mismatch")
	}
	wrongN := condition.MustNewMax(5, 3, p.X(), 1)
	if _, err := NewRun(p, wrongN, vector.OfInts(1, 2, 3, 3)); err == nil {
		t.Error("want error for n mismatch")
	}
}

// TestLemma1FastPath: input ∈ C and no more than t−d crashes by the end of
// round 1 ⟹ every correct process decides in exactly two rounds on a
// condition value.
func TestLemma1FastPath(t *testing.T) {
	p := Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	c := condition.MustNewMax(p.N, 4, p.X(), p.L)
	input := vector.OfInts(4, 4, 4, 2, 1, 2) // top value 4 occupies 3 > x=2 entries
	if !c.Contains(input) {
		t.Fatal("input must be in C")
	}
	for _, fp := range []rounds.FailurePattern{
		adversary.None(),
		adversary.InitialLast(p.N, 2),
		{Crashes: map[rounds.ProcessID]rounds.Crash{2: {Round: 1, AfterSends: 3}}},
	} {
		res, err := Run(p, c, input, fp, false)
		if err != nil {
			t.Fatal(err)
		}
		verdict := Verify(input, fp, res, p.K)
		if !verdict.OK() {
			t.Fatalf("fp=%+v: %v", fp, verdict)
		}
		if verdict.MaxRound != 2 {
			t.Errorf("fp=%+v: decided at round %d, want 2", fp, verdict.MaxRound)
		}
		// The decided value comes from the condition: it is input's max.
		if !verdict.Distinct.Equal(vector.SetOf(4)) {
			t.Errorf("fp=%+v: decided %v, want {4}", fp, verdict.Distinct)
		}
	}
}

// TestLemma1SlowPath: input ∈ C with more than t−d round-1 crashes still
// decides by RCond.
func TestLemma1SlowPath(t *testing.T) {
	p := Params{N: 6, T: 4, K: 2, D: 2, L: 1}
	c := condition.MustNewMax(p.N, 4, p.X(), p.L)
	input := vector.OfInts(4, 4, 4, 4, 1, 2)
	if !c.Contains(input) {
		t.Fatal("input must be in C")
	}
	// x = 2; crash 3 processes in round 1 with staggered prefixes so some
	// survivor sees > 2 bottoms.
	fp := adversary.Stagger(p.N, 3, 3, 0, p.RMax())
	res, err := Run(p, c, input, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	verdict := Verify(input, fp, res, p.K)
	if !verdict.OK() {
		t.Fatalf("%v", verdict)
	}
	if verdict.MaxRound > p.RCond() {
		t.Errorf("decided at round %d, want ≤ RCond=%d", verdict.MaxRound, p.RCond())
	}
}

// TestLemma2: input ∉ C decides by RMax; with more than t−d initial
// crashes it decides by RCond.
func TestLemma2(t *testing.T) {
	p := Params{N: 6, T: 4, K: 2, D: 2, L: 1}
	c := condition.MustNewMax(p.N, 4, p.X(), p.L)
	input := vector.OfInts(4, 3, 2, 1, 1, 2) // max occupies 1 ≤ x entries
	if c.Contains(input) {
		t.Fatal("input must be outside C")
	}

	res, err := Run(p, c, input, adversary.None(), false)
	if err != nil {
		t.Fatal(err)
	}
	verdict := Verify(input, adversary.None(), res, p.K)
	if !verdict.OK() {
		t.Fatalf("%v", verdict)
	}
	if verdict.MaxRound != p.RMax() {
		t.Errorf("failure-free out-of-C decision at round %d, want RMax=%d", verdict.MaxRound, p.RMax())
	}

	fp := adversary.InitialLast(p.N, 3) // > x = 2 initial crashes
	res, err = Run(p, c, input, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	verdict = Verify(input, fp, res, p.K)
	if !verdict.OK() {
		t.Fatalf("%v", verdict)
	}
	if verdict.MaxRound > p.RCond() {
		t.Errorf("initial-crash out-of-C decision at round %d, want ≤ RCond=%d", verdict.MaxRound, p.RCond())
	}
}

// TestConsensusSpecialCase: k = ℓ = 1 must solve consensus in d+1 rounds
// when the input is in the condition (the [22] behavior).
func TestConsensusSpecialCase(t *testing.T) {
	p := Params{N: 5, T: 3, K: 1, D: 2, L: 1}
	c := condition.MustNewMax(p.N, 3, p.X(), p.L)
	input := vector.OfInts(3, 3, 1, 2, 1)
	if !c.Contains(input) {
		t.Fatal("input must be in C")
	}
	fp := adversary.Stagger(p.N, p.T, 2, 1, p.RMax())
	res, err := Run(p, c, input, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	verdict := Verify(input, fp, res, 1)
	if !verdict.OK() {
		t.Fatalf("%v", verdict)
	}
	if verdict.MaxRound > p.RCond() {
		t.Errorf("decided at %d, want ≤ d+1 = %d", verdict.MaxRound, p.RCond())
	}
}

// TestExhaustiveSmall model-checks the algorithm over every prefix-send
// failure pattern and every input vector of a small configuration:
// termination, validity, agreement and the Theorem-10 round bounds must
// hold in every execution.
func TestExhaustiveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check")
	}
	configs := []struct {
		p Params
		m int
	}{
		{Params{N: 4, T: 2, K: 2, D: 1, L: 1}, 2},
		{Params{N: 4, T: 3, K: 2, D: 1, L: 1}, 2},
		{Params{N: 4, T: 2, K: 2, D: 1, L: 2}, 3},
		{Params{N: 4, T: 3, K: 3, D: 2, L: 2}, 2},
	}
	for _, cfg := range configs {
		p := cfg.p
		c := condition.MustNewMax(p.N, cfg.m, p.X(), p.L)
		runs := 0
		vector.ForEach(p.N, cfg.m, func(in vector.Vector) bool {
			input := in.Clone()
			inC := c.Contains(input)
			err := adversary.Enumerate(p.N, p.T, p.RMax(), func(fp rounds.FailurePattern) bool {
				res, err := Run(p, c, input, fp, false)
				if err != nil {
					t.Fatalf("cfg %+v input %v: %v", p, input, err)
				}
				verdict := Verify(input, fp, res, p.K)
				if !verdict.OK() {
					t.Fatalf("cfg %+v input %v (inC=%v) fp %+v: %v", p, input, inC, fp.Crashes, verdict)
				}
				if bound := PredictRounds(p, inC, fp); verdict.MaxRound > bound {
					t.Fatalf("cfg %+v input %v (inC=%v) fp %+v: decided at %d > bound %d",
						p, input, inC, fp.Crashes, verdict.MaxRound, bound)
				}
				runs++
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			return true
		})
		t.Logf("cfg %+v m=%d: %d executions verified", p, cfg.m, runs)
	}
}

// TestPropertyRandomRuns fuzzes larger configurations with random inputs
// and adversaries, on both executors.
func TestPropertyRandomRuns(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		n := 4 + r.Intn(5)
		tt := 1 + r.Intn(n-1)
		k := 1 + r.Intn(3)
		l := 1 + r.Intn(k)
		d := r.Intn(tt + 1)
		p := Params{N: n, T: tt, K: k, D: d, L: l}
		if err := p.Validate(); err != nil {
			t.Fatalf("generated invalid params %+v: %v", p, err)
		}
		m := 2 + r.Intn(3)
		c := condition.MustNewMax(n, m, p.X(), l)
		input := vector.New(n)
		for i := range input {
			input[i] = vector.Value(1 + r.Intn(m))
		}
		fp := adversary.Random(r, n, tt, p.RMax())
		res, err := Run(p, c, input, fp, trial%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		verdict := Verify(input, fp, res, k)
		if !verdict.OK() {
			t.Fatalf("params %+v m=%d input %v fp %+v: %v", p, m, input, fp.Crashes, verdict)
		}
		if bound := PredictRounds(p, c.Contains(input), fp); verdict.MaxRound > bound {
			t.Fatalf("params %+v input %v fp %+v: round %d > bound %d",
				p, input, fp.Crashes, verdict.MaxRound, bound)
		}
	}
}

// TestExecutorsAgree runs identical scenarios on the sequential and
// concurrent executors and requires identical outcomes.
func TestExecutorsAgree(t *testing.T) {
	p := Params{N: 6, T: 3, K: 2, D: 2, L: 2}
	c := condition.MustNewMax(p.N, 3, p.X(), p.L)
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		input := vector.New(p.N)
		for i := range input {
			input[i] = vector.Value(1 + r.Intn(3))
		}
		fp := adversary.Random(r, p.N, p.T, p.RMax())
		seq, err := Run(p, c, input, fp, false)
		if err != nil {
			t.Fatal(err)
		}
		con, err := Run(p, c, input, fp, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Decisions) != len(con.Decisions) {
			t.Fatalf("decision counts differ: %v vs %v", seq.Decisions, con.Decisions)
		}
		for id, v := range seq.Decisions {
			if con.Decisions[id] != v {
				t.Fatalf("p%d: sequential %v, concurrent %v", id, v, con.Decisions[id])
			}
			if seq.DecisionRound[id] != con.DecisionRound[id] {
				t.Fatalf("p%d: rounds differ", id)
			}
		}
	}
}

func TestClassicalBaseline(t *testing.T) {
	n, tt, k := 6, 4, 2
	input := vector.OfInts(1, 5, 2, 4, 3, 1)
	for _, fp := range []rounds.FailurePattern{
		adversary.None(),
		adversary.Stagger(n, tt, 2, 1, tt/k+1),
	} {
		res, err := RunClassical(n, tt, k, input, fp, false)
		if err != nil {
			t.Fatal(err)
		}
		verdict := Verify(input, fp, res, k)
		if !verdict.OK() {
			t.Fatalf("fp=%+v: %v", fp.Crashes, verdict)
		}
		if verdict.MaxRound != tt/k+1 {
			t.Errorf("classical decided at %d, want exactly ⌊t/k⌋+1 = %d", verdict.MaxRound, tt/k+1)
		}
	}
	if _, err := NewClassicalRun(1, 1, 1, vector.OfInts(1)); err == nil {
		t.Error("want error for n too small")
	}
	if _, err := NewClassicalRun(4, 2, 2, vector.OfInts(1, 0, 1, 1)); err == nil {
		t.Error("want error for ⊥ input")
	}
}

// TestClassicalExhaustive model-checks the baseline too.
func TestClassicalExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check")
	}
	n, tt, k, m := 4, 2, 2, 2
	vector.ForEach(n, m, func(in vector.Vector) bool {
		input := in.Clone()
		err := adversary.Enumerate(n, tt, tt/k+1, func(fp rounds.FailurePattern) bool {
			res, err := RunClassical(n, tt, k, input, fp, false)
			if err != nil {
				t.Fatal(err)
			}
			if verdict := Verify(input, fp, res, k); !verdict.OK() {
				t.Fatalf("input %v fp %+v: %v", input, fp.Crashes, verdict)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return true
	})
}

func TestVerifyReportsViolations(t *testing.T) {
	input := vector.OfInts(1, 2, 3)
	res := &rounds.Result{
		Decisions:     map[rounds.ProcessID]vector.Value{1: 1, 2: 9, 3: 2},
		DecisionRound: map[rounds.ProcessID]int{1: 2, 2: 2, 3: 3},
	}
	v := Verify(input, rounds.FailurePattern{}, res, 1)
	if v.Validity {
		t.Error("validity must fail (9 not proposed)")
	}
	if v.Agreement {
		t.Error("agreement must fail (3 values > k=1)")
	}
	if !v.Termination {
		t.Error("termination holds (everyone decided)")
	}
	if v.OK() || v.String() == "" {
		t.Error("verdict misreported")
	}
	res2 := &rounds.Result{Decisions: map[rounds.ProcessID]vector.Value{}, DecisionRound: map[rounds.ProcessID]int{}}
	v2 := Verify(input, rounds.FailurePattern{}, res2, 1)
	if v2.Termination {
		t.Error("termination must fail (nobody decided)")
	}
}

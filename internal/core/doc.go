// Package core implements the paper's primary contribution (Section 6): the
// synchronous condition-based k-set agreement algorithm of Figure 2,
// together with the classical flood-based k-set agreement baseline it
// generalizes, the early-deciding extension sketched in Section 8, and a
// verifier for the termination/validity/agreement properties and round
// bounds.
//
// Paper map:
//
//	Section 6.1   Params (n, t, k and the class S^d_t[ℓ], x = t−d)
//	Figure 2      Run / Runner.RunCond — decide by round RCond when I ∈ C
//	Theorem 10    the max(2, ⌊(d+ℓ−1)/k⌋+1) vs ⌊t/k⌋+1 round bounds
//	Section 8     RunEarly — never later than min(⌊f/k⌋+3, the bounds)
//	(baseline)    RunClassical — condition-free flood, exactly ⌊t/k⌋+1
//	(spec)        Verify — termination, validity, agreement, round bounds
//
// The Runner is the per-worker execution handle: it owns a rounds.Engine
// plus the per-run protocol state for all three synchronous algorithms,
// so a campaign worker re-running scenarios validates nothing and
// allocates nothing per run.
package core

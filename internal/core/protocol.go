package core

import (
	"fmt"

	"kset/internal/condition"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// StateMsg is the triple a process floods from round 2 on: its current
// candidate decision values from the condition branch, the
// outside-the-condition branch, and the too-many-failures branch. The
// paper's priority for deciding is Cond > Tmf > Out.
type StateMsg struct {
	Cond, Out, Tmf vector.Value
}

// String implements fmt.Stringer (used by execution traces).
func (s StateMsg) String() string {
	return fmt.Sprintf("(cond=%v tmf=%v out=%v)", s.Cond, s.Tmf, s.Out)
}

// CondProcess is one process of the Figure-2 condition-based synchronous
// k-set agreement algorithm. Create the n processes of a run with NewRun.
type CondProcess struct {
	id   rounds.ProcessID
	p    Params
	cond condition.Condition

	proposal vector.Value
	view     vector.Vector
	vCond    vector.Value
	vOut     vector.Value
	vTmf     vector.Value
}

var _ rounds.Process = (*CondProcess)(nil)

// NewRun builds the n protocol instances for input vector input (entry i
// is p_{i+1}'s proposal; it must be a full vector of proposable values).
func NewRun(p Params, c condition.Condition, input vector.Vector) ([]rounds.Process, error) {
	if err := p.ValidateWith(c); err != nil {
		return nil, err
	}
	if len(input) != p.N {
		return nil, fmt.Errorf("core: input vector has %d entries, want %d", len(input), p.N)
	}
	if !input.IsFull() {
		return nil, fmt.Errorf("core: input vector %v has ⊥ entries", input)
	}
	procs := make([]rounds.Process, p.N)
	for i := 0; i < p.N; i++ {
		procs[i] = &CondProcess{
			id:       rounds.ProcessID(i + 1),
			p:        p,
			cond:     c,
			proposal: input[i],
			view:     vector.New(p.N),
		}
	}
	return procs, nil
}

// Send implements rounds.Process: round 1 broadcasts the proposal (the
// engine enforces the fixed p_1..p_n order that makes views
// containment-ordered); later rounds broadcast the state triple.
func (c *CondProcess) Send(round int) any {
	if round == 1 {
		return c.proposal
	}
	return StateMsg{Cond: c.vCond, Out: c.vOut, Tmf: c.vTmf}
}

// Step implements rounds.Process: the compute phases of Figure 2.
func (c *CondProcess) Step(round int, recv []any) (vector.Value, bool) {
	if round == 1 {
		c.stepFirstRound(recv)
		return vector.Bottom, false
	}
	return c.stepFloodRound(round, recv)
}

// stepFirstRound is lines 4–9: build the view V_i and classify it.
func (c *CondProcess) stepFirstRound(recv []any) {
	for j, payload := range recv {
		if payload != nil {
			c.view[j] = payload.(vector.Value)
		}
	}
	if c.view.BottomCount() <= c.p.X() {
		if condition.Predicate(c.cond, c.view) {
			// Line 6: the input vector may belong to the condition; decode
			// a candidate value from the view (Definition 4 / Theorem 1).
			if h, ok := condition.DecodeView(c.cond, c.view); ok && !h.Empty() {
				c.vCond = h.Max()
				return
			}
			// Unreachable for conditions whose P agrees with Contains and
			// that are (t−d,ℓ)-legal; degrade to the out branch so that
			// validity and termination survive a misbehaving condition.
		}
		// Line 7: the view proves the input vector is outside C.
		c.vOut = c.view.Max()
		return
	}
	// Line 8: too many failures witnessed to tell.
	c.vTmf = c.view.Max()
}

// stepFloodRound is lines 13–22 for rounds 2..⌊t/k⌋+1. The payload of this
// round was already sent (line 13); deciding at line 14 therefore uses the
// value as sent, before merging this round's received states.
func (c *CondProcess) stepFloodRound(round int, recv []any) (vector.Value, bool) {
	if c.vCond != vector.Bottom {
		return c.vCond, true // line 14
	}
	// Lines 15–17: max-merge received states (the sender's own message is
	// always among them while it is alive).
	for _, payload := range recv {
		if payload == nil {
			continue
		}
		s := payload.(StateMsg)
		c.vCond = maxValue(c.vCond, s.Cond)
		c.vOut = maxValue(c.vOut, s.Out)
		c.vTmf = maxValue(c.vTmf, s.Tmf)
	}
	// Line 18: decide at the condition round (when some process witnessed
	// more than t−d crashes and none disproved the condition) or at the
	// classical last round.
	if (round == c.p.RCond() && c.vTmf != vector.Bottom && c.vOut == vector.Bottom) ||
		round == c.p.RMax() {
		switch {
		case c.vCond != vector.Bottom:
			return c.vCond, true // line 19
		case c.vTmf != vector.Bottom:
			return c.vTmf, true // line 20
		default:
			return c.vOut, true // line 21
		}
	}
	return vector.Bottom, false
}

func maxValue(a, b vector.Value) vector.Value {
	if a >= b {
		return a
	}
	return b
}

// Run executes one complete instance of the algorithm and returns the
// engine result. It is a convenience wrapper over rounds.Run with the
// protocol's own round bound.
func Run(p Params, c condition.Condition, input vector.Vector, fp rounds.FailurePattern, concurrent bool) (*rounds.Result, error) {
	procs, err := NewRun(p, c, input)
	if err != nil {
		return nil, err
	}
	return rounds.Run(procs, fp, rounds.Options{MaxRounds: p.RMax(), Concurrent: concurrent})
}

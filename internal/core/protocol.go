package core

import (
	"fmt"

	"kset/internal/condition"
	"kset/internal/kerr"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// StateMsg is the triple a process floods from round 2 on: its current
// candidate decision values from the condition branch, the
// outside-the-condition branch, and the too-many-failures branch. The
// paper's priority for deciding is Cond > Tmf > Out.
type StateMsg struct {
	Cond, Out, Tmf vector.Value
}

// String implements fmt.Stringer (used by execution traces).
func (s StateMsg) String() string {
	return fmt.Sprintf("(cond=%v tmf=%v out=%v)", s.Cond, s.Tmf, s.Out)
}

// CondProcess is one process of the Figure-2 condition-based synchronous
// k-set agreement algorithm. Create the n processes of a run with NewRun.
type CondProcess struct {
	id   rounds.ProcessID
	p    Params
	cond condition.Condition

	proposal vector.Value
	view     vector.Vector
	vCond    vector.Value
	vOut     vector.Value
	vTmf     vector.Value

	// msg is the reusable flood payload: Send repopulates it and hands out
	// its address, so a round's broadcast costs no allocation. The engine's
	// lock-step structure (all sends of a round complete before any step
	// reads them) makes the reuse safe; a transport that retains the
	// payload past its round copies it first (StateMsg.Freeze).
	msg StateMsg
}

// Freeze implements rounds.Freezer: a transport delaying or duplicating
// the flood payload past its send round retains this copy instead of the
// sender's reused buffer.
func (s *StateMsg) Freeze() any {
	c := *s
	return &c
}

var _ rounds.Process = (*CondProcess)(nil)

// validateRun checks the shared preconditions of every condition-based
// run constructor.
func validateRun(p Params, c condition.Condition, input vector.Vector) error {
	if err := p.ValidateWith(c); err != nil {
		return err
	}
	return ValidateInput(p.N, input)
}

// ValidateInput checks a run's input vector: n entries, no ⊥, and every
// value within the bitmask domain cap. It is the only check the Runner hot
// paths perform per run — everything else is established at construction.
func ValidateInput(n int, input vector.Vector) error {
	if len(input) != n {
		return fmt.Errorf("core: input vector has %d entries, want %d: %w", len(input), n, kerr.ErrBadInput)
	}
	if !input.IsFull() {
		return fmt.Errorf("core: input vector %v has ⊥ entries: %w", input, kerr.ErrBadInput)
	}
	return validateInputDomain(input)
}

// validateInputDomain rejects input values the bitmask value sets cannot
// represent, so runs error out instead of panicking deep in a Set op.
func validateInputDomain(input vector.Vector) error {
	for _, v := range input {
		if v > vector.MaxSetValue {
			return fmt.Errorf("core: input value %v beyond the value-domain cap %d: %w", v, vector.MaxSetValue, kerr.ErrDomainTooLarge)
		}
	}
	return nil
}

// newCondProcess initializes the protocol instance of process i+1 over the
// given (zeroed) view storage. Both the allocating and the pooled
// construction paths go through it.
func newCondProcess(p Params, c condition.Condition, input vector.Vector, i int, view vector.Vector) CondProcess {
	return CondProcess{
		id:       rounds.ProcessID(i + 1),
		p:        p,
		cond:     c,
		proposal: input[i],
		view:     view,
	}
}

// NewRun builds the n protocol instances for input vector input (entry i
// is p_{i+1}'s proposal; it must be a full vector of proposable values).
func NewRun(p Params, c condition.Condition, input vector.Vector) ([]rounds.Process, error) {
	if err := validateRun(p, c, input); err != nil {
		return nil, err
	}
	procs := make([]rounds.Process, p.N)
	for i := 0; i < p.N; i++ {
		cp := newCondProcess(p, c, input, i, vector.New(p.N))
		procs[i] = &cp
	}
	return procs, nil
}

// Send implements rounds.Process: round 1 broadcasts the proposal (the
// engine enforces the fixed p_1..p_n order that makes views
// containment-ordered); later rounds broadcast the state triple.
func (c *CondProcess) Send(round int) any {
	if round == 1 {
		return c.proposal
	}
	c.msg = StateMsg{Cond: c.vCond, Out: c.vOut, Tmf: c.vTmf}
	return &c.msg
}

// Step implements rounds.Process: the compute phases of Figure 2.
func (c *CondProcess) Step(round int, recv []any) (vector.Value, bool) {
	if round == 1 {
		c.stepFirstRound(recv)
		return vector.Bottom, false
	}
	return c.stepFloodRound(round, recv)
}

// stepFirstRound is lines 4–9: build the view V_i and classify it.
func (c *CondProcess) stepFirstRound(recv []any) {
	for j, payload := range recv {
		if v, ok := payload.(vector.Value); ok {
			c.view[j] = v
		}
	}
	if c.view.BottomCount() <= c.p.X() {
		// Lines 6–7 fused: DecodeView reports ok exactly when P(J) holds
		// (some member contains the view) on both the closed-form and the
		// enumeration path, so one decode answers the predicate and yields
		// the candidate value (Definition 4 / Theorem 1) in a single pass.
		if h, ok := condition.DecodeView(c.cond, c.view); ok && !h.Empty() {
			c.vCond = h.Max()
			return
		}
		// Line 7: the view proves the input vector is outside C (or the
		// condition misbehaved and decoded an empty set; degrade to the
		// out branch so that validity and termination survive it).
		c.vOut = c.view.Max()
		return
	}
	// Line 8: too many failures witnessed to tell.
	c.vTmf = c.view.Max()
}

// stepFloodRound is lines 13–22 for rounds 2..⌊t/k⌋+1. The payload of this
// round was already sent (line 13); deciding at line 14 therefore uses the
// value as sent, before merging this round's received states.
func (c *CondProcess) stepFloodRound(round int, recv []any) (vector.Value, bool) {
	if c.vCond != vector.Bottom {
		return c.vCond, true // line 14
	}
	// Lines 15–17: max-merge received states (the sender's own message is
	// always among them while it is alive). A faulty transport can delay
	// a round-1 proposal into a flood round; such stale payloads are not
	// StateMsgs and are discarded — flood rounds ignore late proposals.
	for _, payload := range recv {
		if payload == nil {
			continue
		}
		s, ok := payload.(*StateMsg)
		if !ok {
			continue
		}
		c.vCond = maxValue(c.vCond, s.Cond)
		c.vOut = maxValue(c.vOut, s.Out)
		c.vTmf = maxValue(c.vTmf, s.Tmf)
	}
	// Line 18: decide at the condition round (when some process witnessed
	// more than t−d crashes and none disproved the condition) or at the
	// classical last round.
	if (round == c.p.RCond() && c.vTmf != vector.Bottom && c.vOut == vector.Bottom) ||
		round == c.p.RMax() {
		switch {
		case c.vCond != vector.Bottom:
			return c.vCond, true // line 19
		case c.vTmf != vector.Bottom:
			return c.vTmf, true // line 20
		case c.vOut != vector.Bottom:
			return c.vOut, true // line 21
		}
		// All three classes are ⊥: the process received nothing in any
		// round, not even its own echo — impossible under the paper's
		// reliable links, possible under a fault-injecting transport that
		// lost every copy. There is no value to decide; halt undecided
		// (a counted outcome) rather than emit ⊥.
	}
	return vector.Bottom, false
}

func maxValue(a, b vector.Value) vector.Value {
	if a >= b {
		return a
	}
	return b
}

// Run executes one complete instance of the algorithm and returns the
// engine result. It is a convenience wrapper over Runner.RunCond on a
// pooled Runner; sweeps with a dedicated worker should hold their own
// Runner instead.
func Run(p Params, c condition.Condition, input vector.Vector, fp rounds.FailurePattern, concurrent bool) (*rounds.Result, error) {
	if err := p.ValidateWith(c); err != nil {
		return nil, err
	}
	r := GetRunner()
	res, err := r.RunCond(p, c, input, fp, concurrent, nil, nil, nil)
	PutRunner(r)
	return res, err
}

package core

import (
	"kset/internal/rounds"
	"kset/internal/vector"
)

// ClassicalProcess is the classical synchronous k-set agreement algorithm
// (Chaudhuri et al.): flood the largest value seen and decide it at round
// ⌊t/k⌋ + 1. It is the baseline the paper's algorithm collapses to when
// instantiated with d = t and ℓ = 1, and the comparison point for every
// round-complexity experiment.
//
// (Flooding max rather than the more customary min keeps the decision rule
// aligned with the condition-based algorithm, which decides max values;
// either choice satisfies the specification.)
type ClassicalProcess struct {
	n, t, k   int
	est       vector.Value
	lastRound int
}

var _ rounds.Process = (*ClassicalProcess)(nil)

// NewClassicalRun builds the n baseline protocol instances for the input
// vector.
func NewClassicalRun(n, t, k int, input vector.Vector) ([]rounds.Process, error) {
	if err := ValidateClassical(n, t, k); err != nil {
		return nil, err
	}
	if err := ValidateInput(n, input); err != nil {
		return nil, err
	}
	procs := make([]rounds.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = &ClassicalProcess{n: n, t: t, k: k, est: input[i], lastRound: t/k + 1}
	}
	return procs, nil
}

// Send implements rounds.Process.
func (c *ClassicalProcess) Send(int) any { return c.est }

// Step implements rounds.Process.
func (c *ClassicalProcess) Step(round int, recv []any) (vector.Value, bool) {
	// Non-Value payloads (possible only under a fault-injecting transport
	// mixing in stale copies) are discarded.
	for _, payload := range recv {
		if v, ok := payload.(vector.Value); ok && v > c.est {
			c.est = v
		}
	}
	if round >= c.lastRound {
		return c.est, true
	}
	return vector.Bottom, false
}

// RunClassical executes the baseline to completion on a pooled Runner.
func RunClassical(n, t, k int, input vector.Vector, fp rounds.FailurePattern, concurrent bool) (*rounds.Result, error) {
	if err := ValidateClassical(n, t, k); err != nil {
		return nil, err
	}
	r := GetRunner()
	res, err := r.RunClassical(n, t, k, input, fp, concurrent, nil, nil, nil)
	PutRunner(r)
	return res, err
}

package core

import (
	"math/rand"
	"testing"

	"kset/internal/adversary"
	"kset/internal/condition"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// TestMinConditionProtocol runs the algorithm instantiated with a min_ℓ
// condition: the decided values come from the low end of the input.
func TestMinConditionProtocol(t *testing.T) {
	p := Params{N: 6, T: 3, K: 2, D: 1, L: 1}
	c := condition.MustNewMin(p.N, 4, p.X(), p.L)
	input := vector.OfInts(1, 1, 1, 3, 4, 3) // min value 1 on 3 > x=2 entries
	if !c.Contains(input) {
		t.Fatal("input must be in the min condition")
	}
	res, err := Run(p, c, input, adversary.InitialLast(p.N, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	verdict := Verify(input, adversary.InitialLast(p.N, 2), res, p.K)
	if !verdict.OK() {
		t.Fatal(verdict)
	}
	if verdict.MaxRound != 2 {
		t.Errorf("decided at %d, want 2", verdict.MaxRound)
	}
	if !verdict.Distinct.Equal(vector.SetOf(1)) {
		t.Errorf("decided %v, want the dense minimum {1}", verdict.Distinct)
	}
}

// TestMinConditionExhaustive model-checks the min-condition instantiation.
func TestMinConditionExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check")
	}
	p := Params{N: 4, T: 2, K: 2, D: 1, L: 1}
	c := condition.MustNewMin(p.N, 2, p.X(), p.L)
	vector.ForEach(p.N, 2, func(in vector.Vector) bool {
		input := in.Clone()
		inC := c.Contains(input)
		err := adversary.Enumerate(p.N, p.T, p.RMax(), func(fp rounds.FailurePattern) bool {
			res, err := Run(p, c, input, fp, false)
			if err != nil {
				t.Fatal(err)
			}
			verdict := Verify(input, fp, res, p.K)
			if !verdict.OK() || verdict.MaxRound > PredictRounds(p, inC, fp) {
				t.Fatalf("input %v (inC=%v) fp %+v: %v", input, inC, fp.Crashes, verdict)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return true
	})
}

func TestPredictRounds(t *testing.T) {
	p := Params{N: 8, T: 5, K: 2, D: 3, L: 1} // x=2, RCond=2, RMax=3
	tests := []struct {
		name string
		inC  bool
		fp   rounds.FailurePattern
		want int
	}{
		{"inC few crashes", true, adversary.InitialLast(8, 2), 2},
		{"inC many round-1 crashes", true, adversary.Stagger(8, 5, 3, 1, 3), p.RCond()},
		{"inC late crashes only", true,
			rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{1: {Round: 2, AfterSends: 0}}}, 2},
		{"outC plain", false, adversary.None(), p.RMax()},
		{"outC many initial", false, adversary.InitialLast(8, 3), p.RCond()},
		{"outC partial round-1 crashes are not initial", false,
			rounds.FailurePattern{Crashes: map[rounds.ProcessID]rounds.Crash{
				1: {Round: 1, AfterSends: 1},
				2: {Round: 1, AfterSends: 1},
				3: {Round: 1, AfterSends: 1},
			}}, p.RMax()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := PredictRounds(p, tc.inC, tc.fp); got != tc.want {
				t.Errorf("PredictRounds = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestScale sanity-checks the protocol at a size far beyond the
// model-checking regime (n = 48) on both executors.
func TestScale(t *testing.T) {
	p := Params{N: 48, T: 24, K: 3, D: 8, L: 2}
	c := condition.MustNewMax(p.N, 6, p.X(), p.L)
	r := rand.New(rand.NewSource(51))
	input := vector.New(p.N)
	for i := range input {
		if i < 20 {
			input[i] = 6
		} else {
			input[i] = vector.Value(1 + r.Intn(5))
		}
	}
	if !c.Contains(input) {
		t.Fatal("input must be in C")
	}
	for _, concurrent := range []bool{false, true} {
		fp := adversary.Random(r, p.N, p.T, p.RMax())
		res, err := Run(p, c, input, fp, concurrent)
		if err != nil {
			t.Fatal(err)
		}
		verdict := Verify(input, fp, res, p.K)
		if !verdict.OK() {
			t.Fatalf("concurrent=%v: %v", concurrent, verdict)
		}
		if bound := PredictRounds(p, true, fp); verdict.MaxRound > bound {
			t.Fatalf("concurrent=%v: round %d > bound %d", concurrent, verdict.MaxRound, bound)
		}
	}
}

// TestMessageComplexity pins the message counts: the condition-based
// algorithm stops flooding after deciding, so on in-condition inputs it
// delivers fewer messages than the classical baseline whenever
// ⌊t/k⌋+1 > 2.
func TestMessageComplexity(t *testing.T) {
	n, m, tt, k := 8, 4, 6, 2
	p := Params{N: n, T: tt, K: k, D: 2, L: 1}
	c := condition.MustNewMax(n, m, p.X(), p.L)
	input := vector.OfInts(4, 4, 4, 4, 4, 1, 2, 3)
	if !c.Contains(input) {
		t.Fatal("input must be in C")
	}
	cond, err := Run(p, c, input, adversary.None(), false)
	if err != nil {
		t.Fatal(err)
	}
	classical, err := RunClassical(n, tt, k, input, adversary.None(), false)
	if err != nil {
		t.Fatal(err)
	}
	if cond.MessagesDelivered >= classical.MessagesDelivered {
		t.Errorf("condition run delivered %d messages, classical %d: want fewer",
			cond.MessagesDelivered, classical.MessagesDelivered)
	}
}

package core

import (
	"fmt"

	"kset/internal/condition"
	"kset/internal/kerr"
)

// Params fixes one instance of the synchronous k-set agreement problem and
// the condition class the algorithm is instantiated with: n processes, at
// most t crashes, at most k decided values, and a condition C ∈ S^d_t[ℓ]
// (that is, a (t−d, ℓ)-legal condition).
type Params struct {
	// N is the number of processes.
	N int
	// T is the maximum number of crashes tolerated (1 ≤ T < N).
	T int
	// K is the agreement degree: at most K distinct values decided.
	K int
	// D is the condition degree: the condition is (T−D, ℓ)-legal. Larger D
	// means a larger (weaker) condition and more rounds.
	D int
	// L is the ℓ of the condition: how many values one of its vectors may
	// encode. The paper requires ℓ ≤ k (otherwise the condition cannot
	// bound the decided values by k) and notes the condition only helps
	// when ℓ ≤ t−d.
	L int
}

// Validate checks the parameter ranges of Section 6.1.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("core: n=%d, want ≥ 2: %w", p.N, kerr.ErrBadParams)
	case p.T < 1 || p.T >= p.N:
		return fmt.Errorf("core: t=%d, want 1 ≤ t < n=%d: %w", p.T, p.N, kerr.ErrBadParams)
	case p.K < 1:
		return fmt.Errorf("core: k=%d, want ≥ 1: %w", p.K, kerr.ErrBadParams)
	case p.L < 1 || p.L > p.K:
		return fmt.Errorf("core: ℓ=%d, want 1 ≤ ℓ ≤ k=%d: %w", p.L, p.K, kerr.ErrBadParams)
	case p.D < 0 || p.D > p.T:
		return fmt.Errorf("core: d=%d, want 0 ≤ d ≤ t=%d: %w", p.D, p.T, kerr.ErrBadParams)
	}
	return nil
}

// X returns the legality parameter of the instantiating condition class:
// x = t − d.
func (p Params) X() int { return p.T - p.D }

// ConditionHelps reports the paper's ℓ ≤ t−d requirement: when it fails,
// S^d_t[ℓ] contains the all-vectors condition and the algorithm cannot beat
// the classical bound (footnote 6).
func (p Params) ConditionHelps() bool { return p.L <= p.T-p.D }

// RCond is the round at which processes decide when the input vector
// belongs to the condition (or when more than t−d processes crashed
// initially): ⌊(d+ℓ−1)/k⌋ + 1, clamped to at least 2 because the algorithm
// can only decide from round 2 on, and to at most RMax.
//
// Special cases: k = ℓ = 1 gives d+1, the condition-based consensus bound
// of [22]; d = t, ℓ = 1 gives ⌊t/k⌋+1, the classical bound.
func (p Params) RCond() int {
	r := (p.D+p.L-1)/p.K + 1
	if r < 2 {
		r = 2
	}
	if m := p.RMax(); r > m {
		r = m
	}
	return r
}

// RMax is the classical worst-case decision round ⌊t/k⌋ + 1, reached when
// the input vector is outside the condition. Like RCond it is clamped to at
// least 2: Figure 2's flood loop runs from round 2 and cannot decide
// earlier, so when k > t (where a one-round classical algorithm exists)
// this algorithm still needs its single state-exchange round.
func (p Params) RMax() int {
	r := p.T/p.K + 1
	if r < 2 {
		r = 2
	}
	return r
}

// ValidateWith additionally checks that the condition's dimensions match
// the parameters.
func (p Params) ValidateWith(c condition.Condition) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if c == nil {
		return fmt.Errorf("core: nil condition: %w", kerr.ErrBadParams)
	}
	if c.N() != p.N {
		return fmt.Errorf("core: condition over n=%d vectors, params have n=%d: %w", c.N(), p.N, kerr.ErrBadParams)
	}
	if c.L() != p.L {
		return fmt.Errorf("core: condition has ℓ=%d, params have ℓ=%d: %w", c.L(), p.L, kerr.ErrBadParams)
	}
	return nil
}

// ValidateClassical checks the parameter ranges of the classical
// (condition-free) baseline.
func ValidateClassical(n, t, k int) error {
	if n < 2 || t < 1 || t >= n || k < 1 {
		return fmt.Errorf("core: classical: bad parameters n=%d t=%d k=%d: %w", n, t, k, kerr.ErrBadParams)
	}
	return nil
}

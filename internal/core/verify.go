package core

import (
	"fmt"

	"kset/internal/rounds"
	"kset/internal/vector"
)

// Verdict is the outcome of checking one execution against the k-set
// agreement specification and, optionally, against predicted round bounds.
type Verdict struct {
	// Termination: every correct (non-crashed) process decided.
	Termination bool
	// Validity: every decided value was proposed.
	Validity bool
	// Agreement: at most k distinct values were decided.
	Agreement bool
	// MaxRound is the latest decision round (0 when nobody decided).
	MaxRound int
	// Distinct is the set of decided values.
	Distinct vector.Set
	// Violations describes each failed property.
	Violations []string
}

// OK reports whether all three agreement properties hold.
func (v Verdict) OK() bool { return v.Termination && v.Validity && v.Agreement }

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v.OK() {
		return fmt.Sprintf("ok (decided %v by round %d)", v.Distinct, v.MaxRound)
	}
	return fmt.Sprintf("FAILED %v", v.Violations)
}

// Verify checks one execution result against the k-set agreement
// specification for the given input vector and failure pattern.
func Verify(input vector.Vector, fp rounds.FailurePattern, res *rounds.Result, k int) Verdict {
	v := Verdict{Termination: true, Validity: true, Agreement: true}

	for id := 1; id <= len(input); id++ {
		pid := rounds.ProcessID(id)
		if _, crashed := fp.Crashes[pid]; crashed {
			continue
		}
		if _, decided := res.Decisions[pid]; !decided {
			v.Termination = false
			v.Violations = append(v.Violations, fmt.Sprintf("termination: correct p%d did not decide", id))
		}
	}

	// One pass over the decisions collects validity, the distinct value
	// set and the latest decision round together.
	proposed := input.Vals()
	for id, val := range res.Decisions {
		if !proposed.Has(val) {
			v.Validity = false
			v.Violations = append(v.Violations, fmt.Sprintf("validity: p%d decided unproposed %v", id, val))
		}
		v.Distinct = v.Distinct.Add(val)
		if r := res.DecisionRound[id]; r > v.MaxRound {
			v.MaxRound = r
		}
	}
	if v.Distinct.Len() > k {
		v.Agreement = false
		v.Violations = append(v.Violations, fmt.Sprintf("agreement: %d distinct values %v > k=%d", v.Distinct.Len(), v.Distinct, k))
	}
	return v
}

// PredictRounds returns the paper's round-bound prediction (Theorem 10 and
// Lemmas 1–2) for an execution of the Figure-2 algorithm:
//
//   - input ∈ C and at most t−d crashes by the end of round 1: 2 rounds;
//   - input ∈ C otherwise: RCond rounds;
//   - input ∉ C with more than t−d initial crashes: RCond rounds;
//   - input ∉ C otherwise: RMax rounds.
//
// The predictions are upper bounds on the latest decision round.
func PredictRounds(p Params, inCondition bool, fp rounds.FailurePattern) int {
	switch {
	case inCondition && fp.CrashesByEndOfRound(1) <= p.X():
		return 2
	case inCondition:
		return p.RCond()
	case fp.InitialCrashes() > p.X():
		return p.RCond()
	default:
		return p.RMax()
	}
}

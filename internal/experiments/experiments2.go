package experiments

import (
	"fmt"
	"strings"
	"time"

	"kset/internal/adversary"
	"kset/internal/async"
	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// E6Dividing measures the introduction's "dividing power" claim: for a
// fixed condition degree d, moving from consensus to k-set agreement
// divides the condition-based round complexity by k, realizing the pairs
// (k, ⌊(d+ℓ−1)/k⌋+1).
func E6Dividing() Report {
	r := Report{ID: "E6", Title: "Introduction — the (k, ⌊(d+ℓ−1)/k⌋+1) pairs", OK: true}
	var b strings.Builder
	n, m, t, d, l := 12, 4, 9, 6, 1
	fmt.Fprintf(&b, "n=%d m=%d t=%d d=%d ℓ=%d; input ∈ C, t−d+1 initial crashes (RCond-forcing)\n\n", n, m, t, d, l)
	fmt.Fprintf(&b, "%-4s %-7s %-7s %-9s\n", "k", "RCond", "RMax", "measured")
	input := vector.New(n)
	for i := range input {
		input[i] = 4
	}
	for k := 1; k <= 4; k++ {
		p := core.Params{N: n, T: t, K: k, D: d, L: l}
		c := condition.MustNewMax(n, m, p.X(), l)
		fp := adversary.InitialLast(n, p.X()+1)
		res, err := core.Run(p, c, input, fp, false)
		if err != nil {
			return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
		}
		verdict := core.Verify(input, fp, res, k)
		if !verdict.OK() || verdict.MaxRound != p.RCond() {
			r.OK = false
		}
		fmt.Fprintf(&b, "%-4d %-7d %-7d %-9d\n", k, p.RCond(), p.RMax(), verdict.MaxRound)
	}
	b.WriteString("\n(shape: measured rounds meet ⌊(d+ℓ−1)/k⌋+1 exactly and divide by k;\n")
	b.WriteString(" k=1 recovers the d+1 consensus bound of [22])\n")
	r.Body = b.String()
	return r
}

// E7Early measures the early-deciding extension (Section 8): decision
// rounds as a function of the number of actual crashes f.
func E7Early() Report {
	r := Report{ID: "E7", Title: "Section 8 — early decision: rounds vs actual crashes f", OK: true}
	var b strings.Builder
	n, m, k := 8, 4, 1
	t := 6
	p := core.Params{N: n, T: t, K: k, D: t, L: 1} // d=t: condition-free regime
	c := condition.MustNewMax(n, m, p.X(), p.L)
	input := vector.OfInts(4, 3, 2, 1, 1, 2, 3, 1)
	fmt.Fprintf(&b, "n=%d t=%d k=%d, input ∉ help range (d=t): plain bound %d\n\n", n, t, k, p.RMax())
	fmt.Fprintf(&b, "%-4s %-22s %-14s %-14s\n", "f", "early measured", "early bound", "plain measured")
	for f := 0; f <= t; f++ {
		fp := adversary.InitialLast(n, f)
		early, err := core.RunEarly(p, c, input, fp, false)
		if err != nil {
			return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
		}
		plain, err := core.Run(p, c, input, fp, false)
		if err != nil {
			return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
		}
		ev := core.Verify(input, fp, early, k)
		pv := core.Verify(input, fp, plain, k)
		bound := f/k + 3
		if m := core.PredictRounds(p, c.Contains(input), fp); m < bound {
			bound = m
		}
		if !ev.OK() || !pv.OK() || ev.MaxRound > bound || ev.MaxRound > pv.MaxRound {
			r.OK = false
		}
		fmt.Fprintf(&b, "%-4d %-22d ≤%-13d %-14d\n", f, ev.MaxRound, bound, pv.MaxRound)
	}
	b.WriteString("\n(shape: early decision tracks f, not t; the plain algorithm pays the worst case)\n")
	r.Body = b.String()
	return r
}

// E8Baseline compares the condition-based algorithm against the classical
// baseline: who wins and where they coincide (abstract's special cases).
func E8Baseline() Report {
	r := Report{ID: "E8", Title: "Abstract — condition-based vs classical baseline", OK: true}
	var b strings.Builder
	n, m, t, k := 8, 4, 6, 2
	inC := vector.OfInts(4, 4, 4, 4, 4, 4, 3, 1)  // dense enough for every d ≥ 1 (x ≤ 5)
	outC := vector.OfInts(4, 3, 2, 1, 1, 2, 3, 1) // top value once: outside C for d < t
	fmt.Fprintf(&b, "n=%d m=%d t=%d k=%d, failure-free; msgs = messages delivered\n\n", n, m, t, k)
	fmt.Fprintf(&b, "%-6s %-12s %-12s %-12s %-12s %-12s\n",
		"d", "cond (I∈C)", "msgs", "cond (I∉C)", "classical", "msgs")
	for _, d := range []int{1, 2, 4, 6} {
		p := core.Params{N: n, T: t, K: k, D: d, L: 1}
		c := condition.MustNewMax(n, m, p.X(), p.L)
		rows := [2]int{}
		var condMsgs int64
		for i, input := range []vector.Vector{inC, outC} {
			if d < t && c.Contains(input) != (i == 0) {
				return Report{ID: r.ID, Title: r.Title, Body: "input misclassified"}
			}
			res, err := core.Run(p, c, input, adversary.None(), false)
			if err != nil {
				return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
			}
			v := core.Verify(input, adversary.None(), res, k)
			if !v.OK() {
				r.OK = false
			}
			rows[i] = v.MaxRound
			if i == 0 {
				condMsgs = res.MessagesDelivered
			}
		}
		classical, err := core.RunClassical(n, t, k, inC, adversary.None(), false)
		if err != nil {
			return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
		}
		cr := classical.MaxDecisionRound()
		fmt.Fprintf(&b, "%-6d %-12d %-12d %-12d %-12d %-12d\n",
			d, rows[0], condMsgs, rows[1], cr, classical.MessagesDelivered)
		// Shape: with I∈C the condition algorithm never loses to the
		// classical one — in rounds or in messages — and wins strictly
		// when the classical bound exceeds two rounds.
		if rows[0] > cr || condMsgs > classical.MessagesDelivered {
			r.OK = false
		}
	}
	b.WriteString("\n(shape: I∈C decides in 2 rounds — and ~2n² messages — at every d;\n")
	b.WriteString(" I∉C pays ⌊t/k⌋+1 like the baseline; at d=t, ℓ=1 the bounds collapse)\n")
	r.Body = b.String()
	return r
}

// E9Tightness searches adversaries for the latest reachable decision round
// (tightness of the bounds) and model-checks a small configuration
// exhaustively.
func E9Tightness() Report {
	r := Report{ID: "E9", Title: "Worst cases — adversaries meeting the bounds; exhaustive safety", OK: true}
	var b strings.Builder

	// Tightness: out-of-condition inputs under chain adversaries reach
	// ⌊t/k⌋+1 exactly (the classical lower bound [7] applies).
	n, m, t, k, d := 6, 4, 4, 1, 2
	p := core.Params{N: n, T: t, K: k, D: d, L: 1}
	c := condition.MustNewMax(n, m, p.X(), p.L)
	outC := vector.OfInts(4, 3, 2, 1, 1, 2)
	worst := 0
	var worstFP rounds.FailurePattern
	for c1 := 0; c1 <= t; c1++ {
		for per := 0; per <= k+1; per++ {
			fp := adversary.Stagger(n, t, c1, per, p.RMax())
			res, err := core.Run(p, c, outC, fp, false)
			if err != nil {
				return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
			}
			v := core.Verify(outC, fp, res, k)
			if !v.OK() {
				r.OK = false
			}
			if v.MaxRound > worst {
				worst, worstFP = v.MaxRound, fp
			}
		}
	}
	fmt.Fprintf(&b, "n=%d t=%d k=%d d=%d, I∉C: latest decision over chain adversaries = %d (bound %d)\n",
		n, t, k, d, worst, p.RMax())
	fmt.Fprintf(&b, "worst adversary: %d crashes, %d initial\n", worstFP.NumCrashes(), worstFP.InitialCrashes())
	if worst != p.RMax() {
		r.OK = false
	}

	// Exhaustive safety: every pattern × every input on a small instance,
	// on the buffer-reusing sweep (one engine, one Result for all runs).
	sp := core.Params{N: 4, T: 2, K: 2, D: 1, L: 1}
	sc := condition.MustNewMax(sp.N, 2, sp.X(), sp.L)
	runs, violations := 0, 0
	vector.ForEach(sp.N, 2, func(in vector.Vector) bool {
		input := in.Clone()
		inC := sc.Contains(input)
		err := core.Exhaust(sp, sc, input, func(fp rounds.FailurePattern, res *rounds.Result) bool {
			v := core.Verify(input, fp, res, sp.K)
			if !v.OK() || v.MaxRound > core.PredictRounds(sp, inC, fp) {
				violations++
			}
			runs++
			return true
		})
		if err != nil {
			violations++
		}
		return true
	})
	fmt.Fprintf(&b, "\nexhaustive model check (n=%d t=%d k=%d d=%d, m=2): %d executions, %d violations\n",
		sp.N, sp.T, sp.K, sp.D, runs, violations)
	if violations > 0 {
		r.OK = false
	}
	r.Body = b.String()
	return r
}

// E10Async exercises the Section-4 asynchronous algorithm: termination
// with inputs in the condition under up to x crashes, safety always, and
// the expected blocking outside the condition.
func E10Async() Report {
	r := Report{ID: "E10", Title: "Section 4 — asynchronous condition-based ℓ-set agreement", OK: true}
	var b strings.Builder
	n, m, x, l := 6, 4, 2, 2
	c := condition.MustNewMax(n, m, x, l)
	inC := vector.OfInts(4, 4, 4, 2, 1, 2)
	fmt.Fprintf(&b, "n=%d m=%d x=%d ℓ=%d (max_ℓ condition)\n\n", n, m, x, l)
	fmt.Fprintf(&b, "%-28s %-10s %-10s %-8s\n", "scenario", "decided", "values", "blocked")
	for _, sc := range []struct {
		name    string
		input   vector.Vector
		crashes map[int]async.CrashPoint
	}{
		{"I∈C, no crashes", inC, nil},
		{"I∈C, x silent processes", inC, map[int]async.CrashPoint{5: async.CrashBeforeWrite, 6: async.CrashBeforeWrite}},
		{"I∈C, mixed crashes", inC, map[int]async.CrashPoint{2: async.CrashAfterWrite, 6: async.CrashBeforeWrite}},
	} {
		out, err := async.Run(async.Config{
			X: x, Cond: c, Input: sc.input, Crashes: sc.crashes, Seed: 11, Patience: 2 * time.Second,
		})
		if err != nil {
			return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
		}
		distinct := out.DistinctDecisions()
		ok := len(out.Undecided) == 0 && distinct.Len() <= l && distinct.SubsetOf(sc.input.Vals())
		if !ok {
			r.OK = false
		}
		fmt.Fprintf(&b, "%-28s %-10d %-10s %-8d\n", sc.name, len(out.Decisions), distinct.String(), len(out.Undecided))
	}

	// The same algorithm over the message-passing substrate (ABD quorum
	// registers, x < n/2): identical guarantees with no shared memory at
	// all.
	outMP, err := async.Run(async.Config{
		X: x, Cond: c, Input: inC, Seed: 19,
		Memory: async.MessagePassingMemory, Patience: 10 * time.Second,
	})
	if err != nil {
		return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
	}
	mpOK := len(outMP.Undecided) == 0 && outMP.DistinctDecisions().Len() <= l
	if !mpOK {
		r.OK = false
	}
	fmt.Fprintf(&b, "%-28s %-10d %-10s %-8d\n",
		"I∈C, message passing", len(outMP.Decisions), outMP.DistinctDecisions().String(), len(outMP.Undecided))

	// Blocking face: an explicit condition none of whose members matches
	// any view of the input.
	blocker := condition.MustNewExplicit(4, 4, 1)
	blocker.MustAdd(vector.OfInts(1, 1, 2, 3), vector.SetOf(1))
	out, err := async.Run(async.Config{
		X: 1, Cond: blocker, Input: vector.OfInts(2, 2, 3, 1), Seed: 5, Patience: 100 * time.Millisecond,
	})
	if err != nil {
		return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
	}
	fmt.Fprintf(&b, "%-28s %-10d %-10s %-8d (expected: all blocked)\n",
		"I∉C, unmatchable views", len(out.Decisions), out.DistinctDecisions().String(), len(out.Undecided))
	if len(out.Decisions) != 0 || len(out.Undecided) != 4 {
		r.OK = false
	}
	b.WriteString("\n(the asynchronous algorithm terminates iff the condition can still hold —\n")
	b.WriteString(" the executable face of the ℓ ≤ x impossibility and of Theorems 8/9)\n")
	r.Body = b.String()
	return r
}

// All runs every experiment with its default configuration.
func All() []Report {
	return []Report{
		E1Lattice(4, 3, 2, 3),
		E2Table1(),
		E3Counting(8, 4, 3),
		E4Bounds(),
		E5Tradeoff(),
		E6Dividing(),
		E7Early(),
		E8Baseline(),
		E9Tightness(),
		E10Async(),
	}
}

package experiments

import (
	"context"
	"fmt"

	"kset"
	"kset/internal/adversary"
	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/stats"
	"kset/internal/vector"
)

// runE6 measures the introduction's "dividing power" claim on a sweep
// grid: for a fixed condition degree d, moving from consensus to k-set
// agreement divides the condition-based round complexity by k, realizing
// the pairs (k, ⌊(d+ℓ−1)/k⌋+1). One grid point per k.
func runE6(cfg Params) Report {
	r := begin("E6", cfg)
	n, m, t, d, l := cfg["n"], cfg["m"], cfg["t"], cfg["d"], cfg["l"]
	input := denseVec(n, m, n)

	points := make([]kset.SweepPoint, 0, cfg["kmax"])
	for k := 1; k <= cfg["kmax"]; k++ {
		p := core.Params{N: n, T: t, K: k, D: d, L: l}
		c, err := condition.NewMax(n, m, p.X(), l)
		if err != nil {
			return r.Fail(err)
		}
		points = append(points, kset.SweepPoint{
			Key:     fmt.Sprintf("k=%d", k),
			Options: []kset.Option{kset.WithParams(p), kset.WithCondition(c)},
			Source:  kset.CrossFailures(kset.Inputs(input), adversary.InitialLast(n, p.X()+1)),
		})
	}
	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		return r.Fail(err)
	}

	sweep := r.Section("dividing")
	sweep.Note("n=%d m=%d t=%d d=%d ℓ=%d; input ∈ C, t−d+1 initial crashes (RCond-forcing)", n, m, t, d, l)
	tbl := sweep.AddTable("k", "RCond", "RMax", "measured")
	curve := sweep.AddSeries("measured-by-k")
	for _, res := range results {
		p := res.Params
		measured := res.Stats.MaxDecisionRound()
		r.Check(res.Stats.Errors == 0 && res.Stats.Violations == 0 && measured == p.RCond())
		tbl.Row(fmt.Sprint(p.K), fmt.Sprint(p.RCond()), fmt.Sprint(p.RMax()), fmt.Sprint(measured))
		curve.Add(float64(p.K), float64(measured))
	}
	sweep.Note("(shape: measured rounds meet ⌊(d+ℓ−1)/k⌋+1 exactly and divide by k;")
	sweep.Note(" k=1 recovers the d+1 consensus bound of [22])")
	return r
}

// runE7 measures the early-deciding extension (Section 8) on the
// faultstorm grid: one base point expanded along the f-axis by
// SweepFailures and along the algorithm axis by SweepExecutors; decision
// rounds as a function of the number of actual crashes f.
func runE7(cfg Params) Report {
	r := begin("E7", cfg)
	n, m, t, k := cfg["n"], cfg["m"], cfg["t"], cfg["k"]
	p := core.Params{N: n, T: t, K: k, D: t, L: 1} // d=t: condition-free regime
	c, err := condition.NewMax(n, m, p.X(), p.L)
	if err != nil {
		return r.Fail(err)
	}
	input := sparseVec(n, m)

	base := kset.SweepPoint{
		Options: []kset.Option{kset.WithParams(p), kset.WithCondition(c)},
		Source:  kset.Inputs(input),
	}
	points := kset.SweepExecutors(
		kset.SweepFailures(base, kset.InitialCrashFamily(n, t)),
		kset.Figure2, kset.EarlyDeciding)
	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		return r.Fail(err)
	}
	rounds := make(map[string]int, len(results))
	for _, res := range results {
		if !r.Check(res.Stats.Errors == 0 && res.Stats.Violations == 0) {
			return r.Failf("%s: %d errors, %d violations", res.Key, res.Stats.Errors, res.Stats.Violations)
		}
		rounds[res.Key] = res.Stats.MaxDecisionRound()
	}

	early := r.Section("early-decision")
	early.Note("n=%d t=%d k=%d, input ∉ help range (d=t): plain bound %d", n, t, k, p.RMax())
	tbl := early.AddTable("f", "early measured", "early bound", "plain measured")
	curve := early.AddSeries("early-rounds-by-f")
	for f := 0; f <= t; f++ {
		ev := rounds[fmt.Sprintf("early/initial=%d", f)]
		pv := rounds[fmt.Sprintf("figure2/initial=%d", f)]
		bound := f/k + 3
		if b := core.PredictRounds(p, c.Contains(input), adversary.InitialLast(n, f)); b < bound {
			bound = b
		}
		r.Check(ev <= bound && ev <= pv)
		tbl.Row(fmt.Sprint(f), fmt.Sprint(ev), fmt.Sprintf("≤%d", bound), fmt.Sprint(pv))
		curve.Add(float64(f), float64(ev))
	}
	early.Note("(shape: early decision tracks f, not t; the plain algorithm pays the worst case)")
	return r
}

// runE8 compares the condition-based algorithm against the classical
// baseline (the abstract's special cases) with one labeled campaign per
// degree: the per-label breakdown of the campaign's accumulator carries
// each arm's rounds and message counts.
func runE8(cfg Params) Report {
	r := begin("E8", cfg)
	n, m, t, k := cfg["n"], cfg["m"], cfg["t"], cfg["k"]
	inC := denseVec(n, m, n-2) // dense enough for every d ≥ 1 (x ≤ t−1)
	outC := sparseVec(n, m)    // top value once: outside C for d < t
	ctx := context.Background()

	sec := r.Section("baseline")
	sec.Note("n=%d m=%d t=%d k=%d, failure-free; msgs = messages delivered", n, m, t, k)
	tbl := sec.AddTable("d", "cond (I∈C)", "msgs", "cond (I∉C)", "classical", "msgs")
	for _, d := range []int{1, 2, 4, 6} {
		if d > t {
			continue
		}
		p := core.Params{N: n, T: t, K: k, D: d, L: 1}
		c, err := condition.NewMax(n, m, p.X(), p.L)
		if err != nil {
			return r.Fail(err)
		}
		if d < t && (!c.Contains(inC) || c.Contains(outC)) {
			return r.Failf("d=%d: input misclassified", d)
		}
		sys, err := kset.New(kset.WithParams(p), kset.WithCondition(c))
		if err != nil {
			return r.Fail(err)
		}
		scs := []kset.Scenario{
			{Label: "cond-inC", Input: inC},
			{Label: "cond-outC", Input: outC},
			{Label: "classical", Input: inC, Executor: kset.Classical},
		}
		st, err := sys.RunCampaign(ctx, scs, kset.VerifyRuns())
		if err != nil {
			return r.Fail(err)
		}
		if st.Errors > 0 || st.Violations > 0 {
			return r.Failf("d=%d: %d errors, %d violations", d, st.Errors, st.Violations)
		}
		group := func(label string) *stats.Group { return st.Metrics.ByLabel[label] }
		condIn, condOut, classical := group("cond-inC"), group("cond-outC"), group("classical")
		// Shape: with I∈C the condition algorithm never loses to the
		// classical one — in rounds or in messages — and wins strictly
		// when the classical bound exceeds two rounds.
		r.Check(condIn.Rounds.Max <= classical.Rounds.Max && condIn.Messages <= classical.Messages)
		tbl.Row(fmt.Sprint(d),
			fmt.Sprint(condIn.Rounds.Max), fmt.Sprint(condIn.Messages),
			fmt.Sprint(condOut.Rounds.Max),
			fmt.Sprint(classical.Rounds.Max), fmt.Sprint(classical.Messages))
	}
	sec.Note("(shape: I∈C decides in 2 rounds — and ~2n² messages — at every d;")
	sec.Note(" I∉C pays ⌊t/k⌋+1 like the baseline; at d=t, ℓ=1 the bounds collapse)")
	return r
}

// runE9 searches adversaries for the latest reachable decision round
// (tightness of the bounds) via a labeled campaign over the chain grid,
// and model-checks a small configuration exhaustively with core.Exhaust
// feeding a results-plane accumulator.
func runE9(cfg Params) Report {
	r := begin("E9", cfg)
	n, m, t, k, d := cfg["n"], cfg["m"], cfg["t"], cfg["k"], cfg["d"]
	p := core.Params{N: n, T: t, K: k, D: d, L: 1}
	c, err := condition.NewMax(n, m, p.X(), p.L)
	if err != nil {
		return r.Fail(err)
	}
	outC := sparseVec(n, m)
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(c))
	if err != nil {
		return r.Fail(err)
	}

	// Tightness: out-of-condition inputs under chain adversaries reach
	// ⌊t/k⌋+1 exactly (the classical lower bound [7] applies).
	var scs []kset.Scenario
	fps := make(map[string]kset.FailurePattern)
	for c1 := 0; c1 <= t; c1++ {
		for per := 0; per <= k+1; per++ {
			label := fmt.Sprintf("c1=%d,per=%d", c1, per)
			fp := adversary.Stagger(n, t, c1, per, p.RMax())
			fps[label] = fp
			scs = append(scs, kset.Scenario{Label: label, Input: outC, FP: fp})
		}
	}
	st, err := sys.RunCampaign(context.Background(), scs, kset.VerifyRuns())
	if err != nil {
		return r.Fail(err)
	}
	worst := st.MaxDecisionRound()
	worstLabel := ""
	for _, label := range st.Metrics.LabelKeys() {
		if st.Metrics.ByLabel[label].Rounds.Max == int64(worst) {
			worstLabel = label
			break
		}
	}
	tight := r.Section("tightness")
	tight.Note("n=%d t=%d k=%d d=%d, I∉C: latest decision over %d chain adversaries = %d (bound %d)",
		n, t, k, d, len(scs), worst, p.RMax())
	worstFP := fps[worstLabel]
	tight.Note("a worst adversary (%s): %d crashes, %d initial",
		worstLabel, worstFP.NumCrashes(), worstFP.InitialCrashes())
	r.Check(st.Errors == 0 && st.Violations == 0 && worst == p.RMax())

	// Exhaustive safety: every pattern × every input on a small instance,
	// on the buffer-reusing sweep (one engine, one Result for all runs),
	// folded into one accumulator through the same observation pipeline.
	sp := core.Params{N: 4, T: 2, K: 2, D: 1, L: 1}
	sc, err := condition.NewMax(sp.N, 2, sp.X(), sp.L)
	if err != nil {
		return r.Fail(err)
	}
	acc := stats.NewAccumulator()
	vector.ForEach(sp.N, 2, func(in vector.Vector) bool {
		input := in.Clone()
		inCond := sc.Contains(input)
		err := core.Exhaust(sp, sc, input, func(fp kset.FailurePattern, res *kset.Result) bool {
			o := core.Observe(res)
			o.InCondition = inCond
			v := core.Verify(input, fp, res, sp.K)
			o.Verified = true
			o.Violation = !v.OK() || v.MaxRound > core.PredictRounds(sp, inCond, fp)
			acc.Observe(o)
			return true
		})
		if err != nil {
			acc.Observe(stats.Observation{Err: true})
		}
		return true
	})
	exh := r.Section("exhaustive")
	exh.Note("exhaustive model check (n=%d t=%d k=%d d=%d, m=2): %d executions, %d violations, max round %d",
		sp.N, sp.T, sp.K, sp.D, acc.Runs, acc.Violations, acc.MaxDecisionRound())
	r.Check(acc.Errors == 0 && acc.Violations == 0)
	return r
}

// runE10 exercises the Section-4 asynchronous algorithm as campaigns on
// the Asynchronous executor: termination with inputs in the condition
// under up to x crashes, safety always, and the expected blocking outside
// the condition.
func runE10(cfg Params) Report {
	r := begin("E10", cfg)
	n, m, x, l := cfg["n"], cfg["m"], cfg["x"], cfg["l"]
	c, err := condition.NewMax(n, m, x, l)
	if err != nil {
		return r.Fail(err)
	}
	// An async instance is parameterized by x = t−d and ℓ alone; any
	// Params with that X validates (k = ℓ keeps the ranges legal).
	p := core.Params{N: n, T: x, K: l, D: 0, L: l}
	inC := denseVec(n, m, n-x)
	if !c.Contains(inC) {
		return r.Failf("input misclassified")
	}
	ctx := context.Background()

	sec := r.Section("async")
	sec.Note("n=%d m=%d x=%d ℓ=%d (max_ℓ condition)", n, m, x, l)
	tbl := sec.AddTable("scenario", "decided", "values", "blocked")

	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(c),
		kset.WithExecutor(kset.Asynchronous))
	if err != nil {
		return r.Fail(err)
	}
	scs := []kset.Scenario{
		{Label: "I∈C, no crashes", Input: inC, Seed: 11},
		{Label: "I∈C, x silent processes", Input: inC, Seed: 11,
			AsyncCrashes: map[int]kset.CrashPoint{n - 1: kset.CrashBeforeWrite, n: kset.CrashBeforeWrite}},
		{Label: "I∈C, mixed crashes", Input: inC, Seed: 11,
			AsyncCrashes: map[int]kset.CrashPoint{2: kset.CrashAfterWrite, n: kset.CrashBeforeWrite}},
	}
	camp := sys.NewCampaign(ctx, kset.CollectResults(len(scs)))
	if err := camp.SubmitAll(scs); err != nil {
		return r.Fail(err)
	}
	camp.Close()
	outcomes := make(map[string]kset.Outcome, len(scs))
	for out := range camp.Results() {
		outcomes[out.Scenario.Label] = out
	}
	if _, err := camp.Wait(); err != nil {
		return r.Fail(err)
	}
	for _, sc := range scs {
		out := outcomes[sc.Label]
		if out.Err != nil {
			return r.Fail(out.Err)
		}
		res := out.Result
		decided, crashed := len(res.Decisions), len(res.Crashed)
		blocked := n - decided - crashed
		distinct := res.DistinctDecisions()
		r.Check(blocked == 0 && distinct.Len() <= l && distinct.SubsetOf(sc.Input.Vals()))
		tbl.Row(sc.Label, fmt.Sprint(decided), distinct.String(), fmt.Sprint(blocked))
	}

	// The same algorithm over the message-passing substrate (ABD quorum
	// registers, x < n/2): identical guarantees with no shared memory at
	// all.
	mpSys, err := kset.New(kset.WithParams(p), kset.WithCondition(c),
		kset.WithExecutor(kset.Asynchronous),
		kset.WithAsyncMemory(kset.MessagePassingMemory))
	if err != nil {
		return r.Fail(err)
	}
	mpRes, err := mpSys.RunScenario(ctx, kset.Scenario{Input: inC, Seed: 19})
	if err != nil {
		return r.Fail(err)
	}
	mpBlocked := n - len(mpRes.Decisions)
	r.Check(mpBlocked == 0 && mpRes.DistinctDecisions().Len() <= l)
	tbl.Row("I∈C, message passing", fmt.Sprint(len(mpRes.Decisions)),
		mpRes.DistinctDecisions().String(), fmt.Sprint(mpBlocked))

	// Blocking face: an explicit condition none of whose members matches
	// any view of the input.
	blocker, err := condition.NewExplicit(4, 4, 1)
	if err != nil {
		return r.Fail(err)
	}
	if err := blocker.Add(vector.OfInts(1, 1, 2, 3), vector.SetOf(1)); err != nil {
		return r.Fail(err)
	}
	bp := core.Params{N: 4, T: 1, K: 1, D: 0, L: 1} // x = 1
	bSys, err := kset.New(kset.WithParams(bp), kset.WithCondition(blocker),
		kset.WithExecutor(kset.Asynchronous), kset.WithAsyncBudget(8))
	if err != nil {
		return r.Fail(err)
	}
	bRes, err := bSys.RunScenario(ctx, kset.Scenario{Input: vector.OfInts(2, 2, 3, 1), Seed: 5})
	if err != nil {
		return r.Fail(err)
	}
	r.Check(len(bRes.Decisions) == 0)
	tbl.Row("I∉C, unmatchable views", fmt.Sprint(len(bRes.Decisions)),
		bRes.DistinctDecisions().String(), fmt.Sprint(4-len(bRes.Decisions)))
	sec.Note("(the asynchronous algorithm terminates iff the condition can still hold —")
	sec.Note(" the executable face of the ℓ ≤ x impossibility and of Theorems 8/9)")
	return r
}

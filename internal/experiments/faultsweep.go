package experiments

import (
	"context"
	"fmt"

	"kset"
	"kset/internal/adversary"
	"kset/internal/condition"
	"kset/internal/core"
)

// e11Losses and e11Delays are E11's fault grid axes: uniform per-copy
// loss rates crossed with delay bounds in rounds (delayed copies drawn
// with probability 0.25 whenever the bound is nonzero). The 0×0 corner
// is the fault-free baseline the paper's reliable-link model assumes.
var (
	e11Losses = []float64{0, 0.01, 0.05, 0.1}
	e11Delays = []int{0, 1, 2}
)

// runE11 stresses the Figure-2 algorithm beyond the paper's model: its
// correctness proof assumes reliable synchronous links (§6.2 — only
// processes fail, by crashing mid-send), and E11 measures what actually
// breaks when the links themselves lose or delay message copies. Each
// fault grid point is one sweep point whose scenarios cross seeded
// random inputs with crash patterns and carry that point's FaultPlan;
// safety violations and non-termination within the round limit are
// counted outcomes (never hangs or panics), and the fault-free corner is
// checked to behave exactly like the reliable engine: zero violations,
// zero undecided processes, zero fault counters.
func runE11(cfg Params) Report {
	r := begin("E11", cfg)
	n, m, t, k, d, l := cfg["n"], cfg["m"], cfg["t"], cfg["k"], cfg["d"], cfg["l"]
	trials, seed := cfg["trials"], cfg["seed"]
	p := core.Params{N: n, T: t, K: k, D: d, L: l}
	c, err := condition.NewMax(n, m, p.X(), l)
	if err != nil {
		return r.Fail(err)
	}
	// Faults compose with the crash adversary: every input runs both
	// crash-free and under a one-crash pattern.
	inputs := kset.CrossFailures(
		kset.RandomInputs(int64(seed), n, m, trials),
		kset.FailurePattern{}, adversary.InitialLast(n, 1),
	)

	points := make([]kset.SweepPoint, 0, len(e11Losses)*len(e11Delays))
	for _, loss := range e11Losses {
		for _, delay := range e11Delays {
			plan := &kset.FaultPlan{Seed: int64(seed)}
			plan.Default.Loss = loss
			if delay > 0 {
				plan.Default.DelayProb = 0.25
				plan.Default.MaxDelay = delay
			}
			points = append(points, kset.SweepPoint{
				Key:     fmt.Sprintf("loss=%g/delay=%d", loss, delay),
				Options: []kset.Option{kset.WithParams(p), kset.WithCondition(c)},
				Source:  kset.CrossFaults(inputs, plan),
			})
		}
	}
	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		return r.Fail(err)
	}

	sweep := r.Section("fault-sweep")
	sweep.Note("n=%d m=%d t=%d k=%d d=%d ℓ=%d; %d seeded inputs × {no crash, 1 initial crash} per point",
		n, m, t, k, d, l, trials)
	tbl := sweep.AddTable("point", "runs", "violations", "undecided", "lost", "delayed", "mean round")
	curve := sweep.AddSeries("violations-by-loss-delay2")
	for _, res := range results {
		st := res.Stats
		if !r.Check(st.Errors == 0) {
			return r.Failf("%s: %d run errors", res.Key, st.Errors)
		}
		var lost, delayed int64
		if ft := st.Metrics.Faults; ft != nil {
			lost, delayed = ft.Lost.Sum, ft.Delayed.Sum
		}
		if res.Key == "loss=0/delay=0" {
			// The fault-free corner must be indistinguishable from the
			// reliable engine.
			r.Check(st.Violations == 0 && st.UndecidedRuns == 0 && lost == 0 && delayed == 0)
		}
		tbl.Row(res.Key, fmt.Sprint(st.Runs), fmt.Sprint(st.Violations),
			fmt.Sprint(st.UndecidedRuns), fmt.Sprint(lost), fmt.Sprint(delayed),
			fmt.Sprintf("%.2f", st.MeanDecisionRound()))
		if len(res.Key) > 8 && res.Key[len(res.Key)-8:] == "/delay=2" {
			var loss float64
			fmt.Sscanf(res.Key, "loss=%g/", &loss)
			curve.Add(loss, float64(st.Violations))
		}
	}
	sweep.Note("(shape: the 0×0 corner matches the reliable model exactly; rising loss and")
	sweep.Note(" delay trade decisions for counted violations/undecided runs, never hangs)")
	return r
}

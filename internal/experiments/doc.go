// Package experiments regenerates every evaluation artifact of the paper
// (see DESIGN.md's experiment index): the Figure-1 lattice, the Table-1
// counterexample, the NB(x,ℓ) condition sizes, the round-complexity
// claims of Theorem 10 and Lemmas 1–2, the size/speed tradeoff, the
// dividing power of k, the early-deciding extension, baseline comparisons,
// worst-case tightness, and the asynchronous algorithm. Each experiment
// returns a human-readable report whose tables mirror what the paper
// states; cmd/experiments prints them and EXPERIMENTS.md records them.
//
// Paper map (experiment → claim):
//
//	E1  Figure 1 lattice arrows        E6  the dividing power of k
//	E2  Table 1 / Theorem 14           E7  early deciding (Section 8)
//	E3  Theorems 3 and 13 sizes        E8  classical baseline contrast
//	E4  Theorem 10 round bounds        E9  exhaustive adversary safety
//	E5  the d size/speed tradeoff      E10 the Section-4 asynchronous run
package experiments

// Package experiments is the declarative registry of the paper's
// evaluation artifacts: each experiment is a Spec — identifier, paper
// anchor, default parameters and a runner — and each run produces a
// structured, JSON-marshalable Report whose sections hold named tables,
// series and notes instead of preformatted strings. cmd/experiments
// enumerates the registry (-list), renders reports as text or JSON
// (-json), and CI diffs the JSON structurally.
//
// The runners execute on the library's batch infrastructure — System
// campaigns with labeled scenarios, SweepDegrees/SweepFailures/
// SweepExecutors grids under RunSweep, and core.Exhaust for exhaustive
// model checks — and read their measurements off the results plane
// (internal/stats): campaign accumulators, per-label/per-crash-count
// breakdowns and decision-round histograms.
//
// Paper map (experiment → claim):
//
//	E1  Figure 1 lattice arrows        E6  the dividing power of k
//	E2  Table 1 / Theorem 14           E7  early deciding (Section 8)
//	E3  Theorems 3 and 13 sizes        E8  classical baseline contrast
//	E4  Theorem 10 round bounds        E9  exhaustive adversary safety
//	E5  the d size/speed tradeoff      E10 the Section-4 asynchronous run
//
// E11 steps beyond the paper's model: the loss × delay fault-injection
// sweep over faultnet link adversaries (faultsweep.go).
package experiments

package experiments

import "fmt"

// Params is an experiment's declarative parameter set: named integers
// ("n", "m", "t", "k", "d", "l", "trials", "seed", …) a Spec's runner
// reads. Parameters marshal as a JSON object with sorted keys, so a
// report's provenance is machine-diffable alongside its data.
type Params map[string]int

// With returns a copy of p with the overrides applied; p is unchanged.
// Use it to run a registered experiment off its defaults.
func (p Params) With(overrides Params) Params {
	out := make(Params, len(p)+len(overrides))
	for k, v := range p {
		out[k] = v
	}
	for k, v := range overrides {
		out[k] = v
	}
	return out
}

// Spec is one registered experiment: identity, paper anchor, default
// parameters and the runner that produces its Report. The registry of
// Specs is the declarative face of the evaluation — consumers enumerate
// it (cmd/experiments -list), parameterize it (Defaults.With) and execute
// it on the Campaign/Sweep/Exhaust infrastructure via Run.
type Spec struct {
	// ID is the experiment identifier ("E1".."E11").
	ID string `json:"id"`
	// Title describes the paper artifact reproduced.
	Title string `json:"title"`
	// Paper anchors the experiment to the paper's sections and theorems.
	Paper string `json:"paper"`
	// Defaults are the parameters All and cmd/experiments run with.
	Defaults Params `json:"defaults,omitempty"`
	// Run executes the experiment with the given parameters.
	Run func(Params) Report `json:"-"`
}

// registry lists every experiment in presentation order. Runners live in
// experiments.go (E1–E5), experiments2.go (E6–E10) and faultsweep.go
// (E11). It is populated
// by init: the runners call back into Lookup (via begin), so a composite
// literal would form an initialization cycle.
var registry []Spec

func init() {
	registry = []Spec{
		{
			ID: "E1", Title: "Figure 1 — the lattice of (x,ℓ)-legal condition sets",
			Paper:    "§3, Theorems 4–9",
			Defaults: Params{"n": 4, "m": 3, "xmax": 2, "lmax": 3},
			Run:      runE1,
		},
		{
			ID: "E2", Title: "Table 1 + Theorems 14/15 — (x,ℓ) vs (x+1,ℓ+1) incomparability",
			Paper: "§3 Table 1, Appendix B",
			Run:   runE2,
		},
		{
			ID: "E3", Title: "Theorems 3/13 — condition sizes NB(x,ℓ)",
			Paper:    "§5, §7",
			Defaults: Params{"n": 8, "m": 4, "lmax": 3},
			Run:      runE3,
		},
		{
			ID: "E4", Title: "Theorem 10 / Lemmas 1–2 — round bounds by scenario",
			Paper:    "§6, Theorem 10",
			Defaults: Params{"n": 8, "m": 4, "t": 5, "k": 2, "d": 3, "l": 1, "trials": 500, "seed": 17},
			Run:      runE4,
		},
		{
			ID: "E5", Title: "Section 5 — condition size vs decision rounds across d",
			Paper:    "§5",
			Defaults: Params{"n": 8, "m": 4, "t": 5, "k": 1, "l": 1},
			Run:      runE5,
		},
		{
			ID: "E6", Title: "Introduction — the (k, ⌊(d+ℓ−1)/k⌋+1) pairs",
			Paper:    "§1",
			Defaults: Params{"n": 12, "m": 4, "t": 9, "d": 6, "l": 1, "kmax": 4},
			Run:      runE6,
		},
		{
			ID: "E7", Title: "Section 8 — early decision: rounds vs actual crashes f",
			Paper:    "§8",
			Defaults: Params{"n": 8, "m": 4, "t": 6, "k": 1},
			Run:      runE7,
		},
		{
			ID: "E8", Title: "Abstract — condition-based vs classical baseline",
			Paper:    "abstract, §6",
			Defaults: Params{"n": 8, "m": 4, "t": 6, "k": 2},
			Run:      runE8,
		},
		{
			ID: "E9", Title: "Worst cases — adversaries meeting the bounds; exhaustive safety",
			Paper:    "§6.2",
			Defaults: Params{"n": 6, "m": 4, "t": 4, "k": 1, "d": 2},
			Run:      runE9,
		},
		{
			ID: "E10", Title: "Section 4 — asynchronous condition-based ℓ-set agreement",
			Paper:    "§4, Theorems 8/9",
			Defaults: Params{"n": 6, "m": 4, "x": 2, "l": 2},
			Run:      runE10,
		},
		{
			ID: "E11", Title: "Beyond the model — fault-injected links: loss × delay sweep",
			Paper:    "§6.2 (model), stressed beyond it",
			Defaults: Params{"n": 8, "m": 4, "t": 5, "k": 2, "d": 3, "l": 1, "trials": 12, "seed": 41},
			Run:      runE11,
		},
	}
}

// Registry returns the experiment specs in presentation order. The slice
// is a copy; the specs' Defaults are shared and must not be mutated (use
// Params.With).
func Registry() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the spec with the given ID.
func Lookup(id string) (Spec, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// Run executes the experiments with the given IDs, in registry order,
// each with its default parameters; an empty id list runs them all. An
// unknown ID is an error.
func Run(ids []string) ([]Report, error) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := Lookup(id); !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		want[id] = true
	}
	reports := make([]Report, 0, len(registry))
	for _, s := range registry {
		if len(want) > 0 && !want[s.ID] {
			continue
		}
		reports = append(reports, s.Run(s.Defaults))
	}
	return reports, nil
}

// All runs every experiment with its default configuration.
func All() []Report {
	reports, _ := Run(nil)
	return reports
}

// begin stamps a fresh, OK report with the spec's identity and the
// parameters this run uses.
func begin(id string, p Params) Report {
	s, _ := Lookup(id)
	return Report{ID: s.ID, Title: s.Title, Paper: s.Paper, Params: p, OK: true}
}

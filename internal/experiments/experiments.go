package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"kset/internal/adversary"
	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/count"
	"kset/internal/lattice"
	"kset/internal/rounds"
	"kset/internal/vector"
)

// Report is one experiment's output.
type Report struct {
	// ID is the experiment identifier (E1..E10).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Body is the rendered report.
	Body string
	// OK reports whether every checked claim held.
	OK bool
}

// String implements fmt.Stringer.
func (r Report) String() string {
	status := "VERIFIED"
	if !r.OK {
		status = "FAILED"
	}
	return fmt.Sprintf("=== %s: %s [%s]\n%s", r.ID, r.Title, status, r.Body)
}

// E1Lattice verifies and renders the Figure-1 inclusion lattice of the
// sets of (x,ℓ)-legal conditions over {1..m}^n.
func E1Lattice(n, m, xMax, lMax int) Report {
	r := Report{ID: "E1", Title: "Figure 1 — the lattice of (x,ℓ)-legal condition sets", OK: true}
	facts, err := lattice.VerifyFigure1(n, m, xMax, lMax)
	if err != nil {
		return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "domain {1..%d}^%d\n%s\n", m, n, lattice.Render(facts))
	fmt.Fprintf(&b, "%-8s %-6s %-6s %-6s %-6s %-10s %s\n",
		"cell", "thm4", "thm5", "thm6", "thm7", "C_all", "skipped")
	for _, f := range facts {
		if !f.Verified() {
			r.OK = false
		}
		allCell := fmt.Sprintf("%v(want %v)", f.AllLegal, f.AllExpected)
		fmt.Fprintf(&b, "(%d,%d)    %-6v %-6v %-6v %-6v %-10s %s\n",
			f.X, f.L, f.UpInclusion, f.UpStrict, f.RightInclusion, f.RightStrict,
			allCell, strings.Join(f.Skipped, "; "))
	}
	r.Body = b.String()
	return r
}

// E2Table1 reproduces Table 1 and both Appendix-B diagonals (Theorems 14
// and 15).
func E2Table1() Report {
	r := Report{ID: "E2", Title: "Table 1 + Theorems 14/15 — (x,ℓ) vs (x+1,ℓ+1) incomparability", OK: true}
	var b strings.Builder

	c := lattice.Table1Condition()
	b.WriteString("Table 1 condition (a,b,c,d = 1,2,3,4):\n")
	for k, i := range c.Members() {
		fmt.Fprintf(&b, "  I%d = %v   h_1(I%d) = %v\n", k+1, i, k+1, c.Recognize(i))
	}
	legal11 := condition.Check(c, 1, condition.CheckOptions{}) == nil
	_, legal22 := condition.ExistsRecognizer(lattice.WithL(c, 2), 2)
	fmt.Fprintf(&b, "(1,1)-legal: %v (want true)\n(2,2)-legal: %v (want false — Theorem 14)\n",
		legal11, legal22)
	r.OK = r.OK && legal11 && !legal22

	b.WriteString("\nTheorem 15 family ((x+1,ℓ+1)-legal, not (x,ℓ)-legal):\n")
	for _, tc := range []struct{ n, x, l int }{{5, 3, 1}, {6, 4, 2}, {7, 4, 3}} {
		c15, err := lattice.Theorem15Condition(tc.n, tc.x, tc.l)
		if err != nil {
			fmt.Fprintf(&b, "  n=%d x=%d ℓ=%d: %v\n", tc.n, tc.x, tc.l, err)
			r.OK = false
			continue
		}
		up := condition.Check(c15, tc.x+1, condition.CheckOptions{}) == nil
		_, down := condition.ExistsRecognizer(lattice.WithL(c15, tc.l), tc.x)
		fmt.Fprintf(&b, "  n=%d x=%d ℓ=%d: (x+1,ℓ+1)-legal=%v (want true), (x,ℓ)-legal=%v (want false)\n",
			tc.n, tc.x, tc.l, up, down)
		r.OK = r.OK && up && !down
	}
	r.Body = b.String()
	return r
}

// E3Counting tabulates NB(x,ℓ) (Theorems 3 and 13) and cross-checks the
// formulas against brute-force enumeration where affordable.
func E3Counting(n, m, lMax int) Report {
	r := Report{ID: "E3", Title: "Theorems 3/13 — condition sizes NB(x,ℓ)", OK: true}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d; NB(x,ℓ) and fraction of all %d^%d vectors\n", n, m, m, n)
	fmt.Fprintf(&b, "%-4s", "x")
	for l := 1; l <= lMax; l++ {
		fmt.Fprintf(&b, " %22s", fmt.Sprintf("ℓ=%d", l))
	}
	b.WriteByte('\n')
	for x := 0; x < n; x++ {
		fmt.Fprintf(&b, "%-4d", x)
		for l := 1; l <= lMax; l++ {
			nb := count.MustNB(n, m, x, l)
			f, _ := count.Fraction(n, m, x, l)
			fmt.Fprintf(&b, " %14s (%5.3f)", nb.String(), f)
			if n <= 6 {
				if bf := count.BruteForce(n, m, x, l); nb.Int64() != bf {
					fmt.Fprintf(&b, " MISMATCH(bf=%d)", bf)
					r.OK = false
				}
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("(NB grows as x shrinks or ℓ grows — the hierarchy directions of Section 5;\n")
	b.WriteString(" ℓ=1 column additionally matches the Theorem-3 closed form)\n")
	for x := 0; x < n; x++ {
		if count.MustNB(n, m, x, 1).Cmp(count.NBConsensus(n, m, x)) != 0 {
			r.OK = false
			b.WriteString("Theorem-3 form DISAGREES\n")
		}
	}
	r.Body = b.String()
	return r
}

// boundScenario is one row of the E4 table.
type boundScenario struct {
	name    string
	input   vector.Vector
	fp      rounds.FailurePattern
	inC     bool
	predict int
}

// E4Bounds measures decision rounds for every scenario class of Theorem 10
// and Lemmas 1–2 and compares them with the predictions.
func E4Bounds() Report {
	r := Report{ID: "E4", Title: "Theorem 10 / Lemmas 1–2 — round bounds by scenario", OK: true}
	var b strings.Builder

	p := core.Params{N: 8, T: 5, K: 2, D: 3, L: 1}
	m := 4
	c := condition.MustNewMax(p.N, m, p.X(), p.L)
	inC := vector.OfInts(4, 4, 4, 2, 1, 2, 3, 1)  // top value on 3 > x=2 entries
	outC := vector.OfInts(4, 3, 2, 1, 1, 2, 3, 1) // top value once
	if !c.Contains(inC) || c.Contains(outC) {
		return Report{ID: r.ID, Title: r.Title, Body: "scenario inputs misclassified"}
	}
	fmt.Fprintf(&b, "params n=%d t=%d k=%d d=%d ℓ=%d (x=%d): RCond=%d RMax=%d\n\n",
		p.N, p.T, p.K, p.D, p.L, p.X(), p.RCond(), p.RMax())

	scenarios := []boundScenario{
		{"I∈C, failure-free", inC, adversary.None(), true, 2},
		{"I∈C, f≤t−d crashes", inC, adversary.InitialLast(p.N, p.X()), true, 2},
		{"I∈C, f>t−d staggered", inC, adversary.Stagger(p.N, p.T, p.X()+1, p.K, p.RMax()), true, p.RCond()},
		{"I∉C, failure-free", outC, adversary.None(), false, p.RMax()},
		{"I∉C, staggered", outC, adversary.Stagger(p.N, p.T, p.X()+1, p.K, p.RMax()), false, p.RMax()},
		{"I∉C, >t−d initial", outC, adversary.InitialLast(p.N, p.X()+1), false, p.RCond()},
	}
	fmt.Fprintf(&b, "%-26s %-9s %-9s %-9s %s\n", "scenario", "predicted", "measured", "values", "spec")
	for _, sc := range scenarios {
		res, err := core.Run(p, c, sc.input, sc.fp, false)
		if err != nil {
			return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
		}
		verdict := core.Verify(sc.input, sc.fp, res, p.K)
		ok := verdict.OK() && verdict.MaxRound <= sc.predict
		if !ok {
			r.OK = false
		}
		fmt.Fprintf(&b, "%-26s ≤%-8d %-9d %-9s %v\n",
			sc.name, sc.predict, verdict.MaxRound, verdict.Distinct.String(), verdict.OK())
	}

	// Random sweep: predictions are upper bounds across random adversaries.
	rng := rand.New(rand.NewSource(17))
	worst := 0
	for trial := 0; trial < 500; trial++ {
		fp := adversary.Random(rng, p.N, p.T, p.RMax())
		input := inC
		isIn := true
		if trial%2 == 1 {
			input, isIn = outC, false
		}
		res, err := core.Run(p, c, input, fp, false)
		if err != nil {
			return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
		}
		verdict := core.Verify(input, fp, res, p.K)
		bound := core.PredictRounds(p, isIn, fp)
		if !verdict.OK() || verdict.MaxRound > bound {
			r.OK = false
			fmt.Fprintf(&b, "RANDOM VIOLATION trial %d: %v (bound %d)\n", trial, verdict, bound)
		}
		if verdict.MaxRound > worst {
			worst = verdict.MaxRound
		}
	}
	fmt.Fprintf(&b, "\n500 random adversaries: all within predicted bounds; worst observed round %d\n", worst)
	r.Body = b.String()
	return r
}

// E5Tradeoff produces the paper's central size/speed series: as the degree
// d grows, the condition admits more input vectors but decides later.
func E5Tradeoff() Report {
	r := Report{ID: "E5", Title: "Section 5 — condition size vs decision rounds across d", OK: true}
	var b strings.Builder
	n, m, t, k, l := 8, 4, 5, 1, 1
	fmt.Fprintf(&b, "n=%d m=%d t=%d k=%d ℓ=%d; input ∈ C, min(t, t−d+1) initial crashes —\n", n, m, t, k, l)
	b.WriteString("the adversary that forces the Tmf branch, making RCond tight\n\n")
	fmt.Fprintf(&b, "%-4s %-4s %-14s %-10s %-7s %-9s\n", "d", "x", "NB(x,ℓ)", "fraction", "RCond", "measured")
	prevNB := int64(-1)
	prevR := 0
	for d := 0; d <= t-l; d++ {
		p := core.Params{N: n, T: t, K: k, D: d, L: l}
		x := p.X()
		c := condition.MustNewMax(n, m, x, l)
		nb := count.MustNB(n, m, x, l)
		frac, _ := count.Fraction(n, m, x, l)
		// An input in every condition of the sweep: top value everywhere.
		input := vector.OfInts(4, 4, 4, 4, 4, 4, 4, 4)
		crashes := x + 1
		if crashes > t {
			crashes = t // the >t−d premise is unreachable at d=0
		}
		fp := adversary.InitialLast(n, crashes)
		res, err := core.Run(p, c, input, fp, false)
		if err != nil {
			return Report{ID: r.ID, Title: r.Title, Body: err.Error()}
		}
		verdict := core.Verify(input, fp, res, k)
		// With >t−d initial crashes every survivor is in the Tmf branch
		// and decides exactly at RCond; at d=0 the premise is unreachable
		// and the two-round fast path applies instead.
		want := p.RCond()
		if crashes <= x {
			want = 2
		}
		if !verdict.OK() || verdict.MaxRound != want {
			r.OK = false
		}
		fmt.Fprintf(&b, "%-4d %-4d %-14s %-10.4f %-7d %-9d\n",
			d, x, nb.String(), frac, p.RCond(), verdict.MaxRound)
		if nb.Int64() < prevNB {
			r.OK = false // size must grow with d
		}
		if p.RCond() < prevR {
			r.OK = false // rounds must not shrink with d
		}
		prevNB, prevR = nb.Int64(), p.RCond()
	}
	b.WriteString("\n(shape: NB and fraction grow with d while RCond grows — the inherent tradeoff;\n")
	b.WriteString(" measured rounds meet RCond exactly under the forcing adversary)\n")
	r.Body = b.String()
	return r
}

package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"kset"
	"kset/internal/adversary"
	"kset/internal/condition"
	"kset/internal/core"
	"kset/internal/count"
	"kset/internal/lattice"
	"kset/internal/vector"
)

// denseVec builds a vector with the top value m on its first top entries
// and small varied values elsewhere: the canonical member of every
// max_ℓ-generated condition with x < top.
func denseVec(n, m, top int) vector.Vector {
	v := vector.New(n)
	for i := range v {
		switch {
		case i < top:
			v[i] = vector.Value(m)
		case m > 2:
			v[i] = vector.Value(1 + i%(m-1))
		default:
			v[i] = 1
		}
	}
	return v
}

// sparseVec builds a vector carrying the top value exactly once — outside
// every max_1-generated condition with x ≥ 1.
func sparseVec(n, m int) vector.Vector {
	v := denseVec(n, m, 1)
	return v
}

// fmtBool renders a verified boolean cell as "value(want expected)".
func fmtBool(got, want bool) string {
	if got == want {
		return fmt.Sprintf("%v", got)
	}
	return fmt.Sprintf("%v(want %v)", got, want)
}

// runE1 verifies and renders the Figure-1 inclusion lattice of the sets
// of (x,ℓ)-legal conditions over {1..m}^n.
func runE1(cfg Params) Report {
	r := begin("E1", cfg)
	n, m, xMax, lMax := cfg["n"], cfg["m"], cfg["xmax"], cfg["lmax"]
	facts, err := lattice.VerifyFigure1(n, m, xMax, lMax)
	if err != nil {
		return r.Fail(err)
	}
	diagram := r.Section("diagram")
	diagram.Note("domain {1..%d}^%d", m, n)
	diagram.NoteBlock(lattice.Render(facts))
	cells := r.Section("cells")
	tbl := cells.AddTable("cell", "thm4", "thm5", "thm6", "thm7", "C_all", "skipped")
	for _, f := range facts {
		r.Check(f.Verified())
		tbl.Row(
			fmt.Sprintf("(%d,%d)", f.X, f.L),
			fmt.Sprintf("%v", f.UpInclusion),
			fmt.Sprintf("%v", f.UpStrict),
			fmt.Sprintf("%v", f.RightInclusion),
			fmt.Sprintf("%v", f.RightStrict),
			fmtBool(f.AllLegal, f.AllExpected),
			strings.Join(f.Skipped, "; "),
		)
	}
	return r
}

// runE2 reproduces Table 1 and both Appendix-B diagonals (Theorems 14
// and 15).
func runE2(cfg Params) Report {
	r := begin("E2", cfg)

	c := lattice.Table1Condition()
	members := r.Section("table-1")
	members.Note("Table 1 condition (a,b,c,d = 1,2,3,4)")
	mtbl := members.AddTable("member", "vector", "h_1")
	for k, i := range c.Members() {
		mtbl.Row(fmt.Sprintf("I%d", k+1), fmt.Sprintf("%v", i), c.Recognize(i).String())
	}
	legal11 := condition.Check(c, 1, condition.CheckOptions{}) == nil
	_, legal22 := condition.ExistsRecognizer(lattice.WithL(c, 2), 2)
	members.Note("(1,1)-legal: %s", fmtBool(legal11, true))
	members.Note("(2,2)-legal: %s (Theorem 14)", fmtBool(legal22, false))
	r.Check(legal11 && !legal22)

	t15 := r.Section("theorem-15")
	t15.Note("family ((x+1,ℓ+1)-legal, not (x,ℓ)-legal)")
	ttbl := t15.AddTable("n", "x", "ℓ", "(x+1,ℓ+1)-legal", "(x,ℓ)-legal")
	for _, tc := range []struct{ n, x, l int }{{5, 3, 1}, {6, 4, 2}, {7, 4, 3}} {
		c15, err := lattice.Theorem15Condition(tc.n, tc.x, tc.l)
		if err != nil {
			ttbl.Row(fmt.Sprint(tc.n), fmt.Sprint(tc.x), fmt.Sprint(tc.l), "error: "+err.Error(), "")
			r.OK = false
			continue
		}
		up := condition.Check(c15, tc.x+1, condition.CheckOptions{}) == nil
		_, down := condition.ExistsRecognizer(lattice.WithL(c15, tc.l), tc.x)
		r.Check(up && !down)
		ttbl.Row(fmt.Sprint(tc.n), fmt.Sprint(tc.x), fmt.Sprint(tc.l),
			fmtBool(up, true), fmtBool(down, false))
	}
	return r
}

// runE3 tabulates NB(x,ℓ) (Theorems 3 and 13) and cross-checks the
// formulas against brute-force enumeration where affordable.
func runE3(cfg Params) Report {
	r := begin("E3", cfg)
	n, m, lMax := cfg["n"], cfg["m"], cfg["lmax"]

	sizes := r.Section("sizes")
	sizes.Note("n=%d m=%d; NB(x,ℓ) and fraction of all %d^%d vectors", n, m, m, n)
	cols := []string{"x"}
	for l := 1; l <= lMax; l++ {
		cols = append(cols, fmt.Sprintf("NB(ℓ=%d)", l), fmt.Sprintf("frac(ℓ=%d)", l))
	}
	tbl := sizes.AddTable(cols...)
	for l := 1; l <= lMax; l++ {
		curve := sizes.AddSeries(fmt.Sprintf("fraction-l%d", l))
		for x := 0; x < n; x++ {
			f, err := count.Fraction(n, m, x, l)
			if err != nil {
				return r.Fail(err)
			}
			curve.Add(float64(x), f)
		}
	}
	for x := 0; x < n; x++ {
		row := []string{fmt.Sprint(x)}
		for l := 1; l <= lMax; l++ {
			nb, err := count.NB(n, m, x, l)
			if err != nil {
				return r.Fail(err)
			}
			f, _ := count.Fraction(n, m, x, l)
			cell := nb.String()
			if n <= 6 {
				if bf := count.BruteForce(n, m, x, l); nb.Int64() != bf {
					cell = fmt.Sprintf("%s(bf=%d!)", cell, bf)
					r.OK = false
				}
			}
			row = append(row, cell, fmt.Sprintf("%.3f", f))
		}
		tbl.Row(row...)
	}
	sizes.Note("(NB grows as x shrinks or ℓ grows — the hierarchy directions of Section 5)")
	for x := 0; x < n; x++ {
		if !r.Check(count.MustNB(n, m, x, 1).Cmp(count.NBConsensus(n, m, x)) == 0) {
			sizes.Note("Theorem-3 closed form DISAGREES at x=%d", x)
		}
	}
	return r
}

// runE4 measures decision rounds for every scenario class of Theorem 10
// and Lemmas 1–2 and compares them with the predictions: the named
// scenarios as one labeled campaign (per-outcome verdicts streamed over
// CollectResults), then a seeded random-adversary sweep whose bound
// checks ride the same pipeline.
func runE4(cfg Params) Report {
	r := begin("E4", cfg)
	p := core.Params{N: cfg["n"], T: cfg["t"], K: cfg["k"], D: cfg["d"], L: cfg["l"]}
	m := cfg["m"]
	c, err := condition.NewMax(p.N, m, p.X(), p.L)
	if err != nil {
		return r.Fail(err)
	}
	inC := denseVec(p.N, m, p.X()+1)
	outC := sparseVec(p.N, m)
	if !c.Contains(inC) || c.Contains(outC) {
		return r.Failf("scenario inputs misclassified")
	}
	sys, err := kset.New(kset.WithParams(p), kset.WithCondition(c))
	if err != nil {
		return r.Fail(err)
	}
	ctx := context.Background()

	head := r.Section("parameters")
	head.Note("params n=%d t=%d k=%d d=%d ℓ=%d (x=%d): RCond=%d RMax=%d",
		p.N, p.T, p.K, p.D, p.L, p.X(), p.RCond(), p.RMax())

	scenarios := []struct {
		label   string
		input   vector.Vector
		fp      kset.FailurePattern
		predict int
	}{
		{"I∈C, failure-free", inC, adversary.None(), 2},
		{"I∈C, f≤t−d crashes", inC, adversary.InitialLast(p.N, p.X()), 2},
		{"I∈C, f>t−d staggered", inC, adversary.Stagger(p.N, p.T, p.X()+1, p.K, p.RMax()), p.RCond()},
		{"I∉C, failure-free", outC, adversary.None(), p.RMax()},
		{"I∉C, staggered", outC, adversary.Stagger(p.N, p.T, p.X()+1, p.K, p.RMax()), p.RMax()},
		{"I∉C, >t−d initial", outC, adversary.InitialLast(p.N, p.X()+1), p.RCond()},
	}
	scs := make([]kset.Scenario, len(scenarios))
	for i, sc := range scenarios {
		scs[i] = kset.Scenario{Label: sc.label, Input: sc.input, FP: sc.fp}
	}
	camp := sys.NewCampaign(ctx, kset.CollectResults(len(scs)), kset.VerifyRuns())
	if err := camp.SubmitAll(scs); err != nil {
		return r.Fail(err)
	}
	camp.Close()
	outcomes := make(map[string]kset.Outcome, len(scs))
	for out := range camp.Results() {
		outcomes[out.Scenario.Label] = out
	}
	if _, err := camp.Wait(); err != nil {
		return r.Fail(err)
	}

	named := r.Section("scenarios")
	tbl := named.AddTable("scenario", "predicted", "measured", "values", "spec")
	for _, sc := range scenarios {
		out := outcomes[sc.label]
		if out.Err != nil {
			return r.Fail(out.Err)
		}
		v := out.Verdict
		r.Check(v.OK() && v.MaxRound <= sc.predict)
		tbl.Row(sc.label, fmt.Sprintf("≤%d", sc.predict), fmt.Sprint(v.MaxRound),
			v.Distinct.String(), fmt.Sprintf("%v", v.OK()))
	}

	// Random sweep: predictions are upper bounds across random
	// adversaries. The scenario list is generated from the seed up front
	// (deterministic), the campaign runs it concurrently, and the
	// per-crash-count breakdown of the campaign's accumulator yields the
	// rounds-vs-f curve.
	trials, seed := cfg["trials"], int64(cfg["seed"])
	rng := rand.New(rand.NewSource(seed))
	sweep := make([]kset.Scenario, trials)
	for trial := range sweep {
		input, label := inC, "inC"
		if trial%2 == 1 {
			input, label = outC, "outC"
		}
		sweep[trial] = kset.Scenario{Label: label, Input: input, FP: adversary.Random(rng, p.N, p.T, p.RMax())}
	}
	camp = sys.NewCampaign(ctx, kset.CollectResults(trials), kset.VerifyRuns())
	if err := camp.SubmitAll(sweep); err != nil {
		return r.Fail(err)
	}
	camp.Close()
	worst, bad := 0, 0
	for out := range camp.Results() {
		if out.Err != nil {
			return r.Fail(out.Err)
		}
		bound := core.PredictRounds(p, out.Scenario.Label == "inC", out.Scenario.FP)
		if !out.Verdict.OK() || out.Verdict.MaxRound > bound {
			bad++
		}
		if out.Verdict.MaxRound > worst {
			worst = out.Verdict.MaxRound
		}
	}
	stats, err := camp.Wait()
	if err != nil {
		return r.Fail(err)
	}
	random := r.Section("random-sweep")
	r.Check(bad == 0 && stats.Violations == 0)
	random.Note("%d random adversaries: %d bound violations; worst observed round %d",
		trials, bad, worst)
	curve := random.AddSeries("mean-round-by-crashes")
	for _, f := range stats.Metrics.CrashKeys() {
		curve.Add(float64(f), stats.Metrics.ByCrashes[f].Rounds.Mean())
	}
	return r
}

// runE5 produces the paper's central size/speed series on the sweep
// infrastructure: one SweepDegrees grid point per degree d, each running
// the RCond-forcing adversary through a verified campaign; as d grows the
// condition admits more input vectors but decides later.
func runE5(cfg Params) Report {
	r := begin("E5", cfg)
	n, m := cfg["n"], cfg["m"]
	base := core.Params{N: n, T: cfg["t"], K: cfg["k"], L: cfg["l"]}
	// An input in every condition of the sweep: the top value everywhere.
	input := denseVec(n, m, n)
	points, err := kset.SweepDegrees(base, m, func(pp kset.Params, c *kset.MaxCondition) kset.ScenarioSource {
		// The forcing adversary: more than t−d initial crashes (capped at
		// t; the >t−d premise is unreachable at d=0).
		return kset.CrossFailures(kset.Inputs(input), adversary.InitialLast(n, min(pp.X()+1, pp.T)))
	})
	if err != nil {
		return r.Fail(err)
	}
	results, err := kset.RunSweep(context.Background(), points, kset.VerifyRuns())
	if err != nil {
		return r.Fail(err)
	}

	sweep := r.Section("tradeoff")
	sweep.Note("n=%d m=%d t=%d k=%d ℓ=%d; input ∈ C, min(t, t−d+1) initial crashes —", n, m, base.T, base.K, base.L)
	sweep.Note("the adversary that forces the Tmf branch, making RCond tight")
	tbl := sweep.AddTable("d", "x", "NB(x,ℓ)", "fraction", "RCond", "measured")
	sizeCurve := sweep.AddSeries("fraction-by-d")
	prevNB, prevR := int64(-1), 0
	for _, res := range results {
		p := res.Params
		nb := count.MustNB(n, m, p.X(), p.L)
		frac, _ := count.Fraction(n, m, p.X(), p.L)
		measured := res.Stats.MaxDecisionRound()
		// With >t−d initial crashes every survivor is in the Tmf branch
		// and decides exactly at RCond; at d=0 the premise is unreachable
		// and the two-round fast path applies instead.
		want := p.RCond()
		if min(p.X()+1, p.T) <= p.X() {
			want = 2
		}
		r.Check(res.Stats.Errors == 0 && res.Stats.Violations == 0 && measured == want)
		r.Check(nb.Int64() >= prevNB) // size must grow with d
		r.Check(p.RCond() >= prevR)   // rounds must not shrink with d
		prevNB, prevR = nb.Int64(), p.RCond()
		tbl.Row(fmt.Sprint(p.D), fmt.Sprint(p.X()), nb.String(), fmt.Sprintf("%.4f", frac),
			fmt.Sprint(p.RCond()), fmt.Sprint(measured))
		sizeCurve.Add(float64(p.D), frac)
	}
	sweep.Note("(shape: NB and fraction grow with d while RCond grows — the inherent tradeoff;")
	sweep.Note(" measured rounds meet RCond exactly under the forcing adversary)")
	return r
}

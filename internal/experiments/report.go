package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report is one experiment's structured output: named sections of tables,
// series and notes instead of preformatted strings. Reports are
// JSON-marshalable with deterministic byte output (cell values are
// pre-formatted strings, so float rendering is fixed at build time), which
// is what lets CI diff two runs structurally; String renders the same
// structure as the human-readable text the CLI prints.
type Report struct {
	// ID is the experiment identifier ("E1".."E10", or a consumer-chosen
	// tag for ad-hoc reports like the CLI's campaign mode).
	ID string `json:"id"`
	// Title describes the paper artifact reproduced.
	Title string `json:"title"`
	// Paper anchors the report to the paper ("§3, Theorems 4–9").
	Paper string `json:"paper,omitempty"`
	// Params echoes the parameters the experiment ran with.
	Params Params `json:"params,omitempty"`
	// OK reports whether every checked claim held.
	OK bool `json:"ok"`
	// Err carries a fatal setup or execution error; when set, OK is false
	// and the sections may be incomplete.
	Err string `json:"err,omitempty"`
	// Sections are the report's named blocks, in presentation order.
	Sections []*Section `json:"sections,omitempty"`
	// Metrics optionally carries the run's raw stats-accumulator
	// encoding. Reports that set it (the CLI's campaign mode) are
	// directly foldable by ksetd's POST /v1/merge, whose shard decoder
	// unwraps a top-level "metrics" field — so K sharded campaign
	// reports merge back into the single-process result without any
	// extraction step. Registry experiments leave it unset.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// Section is one named block of a report: an optional table, optional
// series, and free-form note lines.
type Section struct {
	// Name labels the section ("scenarios", "random-sweep", …).
	Name string `json:"name"`
	// Table is the section's table, when it has one.
	Table *Table `json:"table,omitempty"`
	// Series are named numeric curves for machine consumers (plots,
	// dashboards, regression diffs).
	Series []Series `json:"series,omitempty"`
	// Notes are free-form commentary lines (the "shape" remarks of the
	// original reports).
	Notes []string `json:"notes,omitempty"`
}

// Table is a named-column grid of pre-formatted cells.
type Table struct {
	// Columns are the header labels.
	Columns []string `json:"columns"`
	// Rows hold one cell per column, formatted for display.
	Rows [][]string `json:"rows"`
}

// Series is one named numeric curve.
type Series struct {
	// Name labels the curve ("NB-fraction", "measured-rounds", …).
	Name string `json:"name"`
	// Points are the curve's (x, y) samples, in x order.
	Points []Point `json:"points"`
}

// Point is one sample of a Series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Section appends a new named section to the report and returns it for
// population.
func (r *Report) Section(name string) *Section {
	s := &Section{Name: name}
	r.Sections = append(r.Sections, s)
	return s
}

// Check folds one verified claim into the report: a false ok clears
// Report.OK. It returns ok so call sites can branch on the same value.
func (r *Report) Check(ok bool) bool {
	if !ok {
		r.OK = false
	}
	return ok
}

// Fail records a fatal error: Err is set, OK cleared, and the report
// returned for use as the experiment's result.
func (r *Report) Fail(err error) Report {
	r.Err = err.Error()
	r.OK = false
	return *r
}

// Failf is Fail with formatting.
func (r *Report) Failf(format string, args ...any) Report {
	r.Err = fmt.Sprintf(format, args...)
	r.OK = false
	return *r
}

// AddTable gives the section a table with the given columns and returns
// it for row population.
func (s *Section) AddTable(columns ...string) *Table {
	s.Table = &Table{Columns: columns}
	return s.Table
}

// AddSeries appends a named curve to the section and returns it so
// callers can append points. The returned pointer is invalidated by a
// later AddSeries on the same section; populate one curve at a time.
func (s *Section) AddSeries(name string) *Series {
	s.Series = append(s.Series, Series{Name: name})
	return &s.Series[len(s.Series)-1]
}

// Note appends one formatted commentary line to the section.
func (s *Section) Note(format string, args ...any) {
	s.Notes = append(s.Notes, fmt.Sprintf(format, args...))
}

// NoteBlock appends a multi-line string (a rendered diagram, say) as one
// note per line, dropping a trailing newline.
func (s *Section) NoteBlock(text string) {
	s.Notes = append(s.Notes, strings.Split(strings.TrimRight(text, "\n"), "\n")...)
}

// Row appends one row of pre-formatted cells to the table.
func (t *Table) Row(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Add appends one (x, y) sample to the series.
func (sr *Series) Add(x, y float64) {
	sr.Points = append(sr.Points, Point{X: x, Y: y})
}

// WriteJSON writes v — a Report, a []Report, a []Spec, anything in the
// report encoding — as indented JSON with a trailing newline: the one
// emitter every -json CLI shares, so the byte format cannot drift
// between tools.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// String renders the report as the human-readable text form: a status
// header, then each section's table (column-aligned), series and notes.
func (r Report) String() string {
	var b strings.Builder
	status := "VERIFIED"
	if !r.OK {
		status = "FAILED"
	}
	fmt.Fprintf(&b, "=== %s: %s [%s]\n", r.ID, r.Title, status)
	if r.Err != "" {
		fmt.Fprintf(&b, "error: %s\n", r.Err)
	}
	for _, s := range r.Sections {
		fmt.Fprintf(&b, "-- %s\n", s.Name)
		if s.Table != nil {
			renderTable(&b, s.Table)
		}
		for _, sr := range s.Series {
			fmt.Fprintf(&b, "series %s:", sr.Name)
			for _, pt := range sr.Points {
				fmt.Fprintf(&b, " (%g, %g)", pt.X, pt.Y)
			}
			b.WriteByte('\n')
		}
		for _, n := range s.Notes {
			b.WriteString(n)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// renderTable writes the table with columns padded to their widest cell.
func renderTable(b *strings.Builder, t *Table) {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len([]rune(cell)) > width[i] {
				width[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				for pad := len([]rune(cell)); pad < width[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
}

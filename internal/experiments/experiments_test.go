package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestAllExperimentsVerify runs the full suite: every report must come back
// with every checked claim holding, sections populated, and a JSON
// encoding that round-trips the identity fields.
func TestAllExperimentsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	reports := All()
	if want := len(Registry()); len(reports) != want {
		t.Fatalf("All returned %d reports, registry has %d", len(reports), want)
	}
	for _, r := range reports {
		if !r.OK {
			t.Errorf("%s (%s) failed:\n%s", r.ID, r.Title, r.String())
		}
		if len(r.Sections) == 0 {
			t.Errorf("%s produced no sections", r.ID)
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Errorf("%s: String() lacks the id", r.ID)
		}
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("%s: marshal: %v", r.ID, err)
		}
		var back Report
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", r.ID, err)
		}
		if back.ID != r.ID || back.Title != r.Title || back.OK != r.OK ||
			len(back.Sections) != len(r.Sections) {
			t.Errorf("%s: JSON round-trip mutated the report", r.ID)
		}
	}
}

// TestRegistryShape pins the registry's identity invariants: stable E1..E11
// order, unique IDs, resolvable lookups, runnable specs.
func TestRegistryShape(t *testing.T) {
	specs := Registry()
	if len(specs) != 11 {
		t.Fatalf("registry has %d specs, want 11", len(specs))
	}
	seen := make(map[string]bool)
	for i, s := range specs {
		if want := "E" + string(rune('1'+i)); i < 9 && s.ID != want {
			t.Errorf("spec %d has ID %s, want %s", i, s.ID, want)
		}
		if seen[s.ID] {
			t.Errorf("duplicate ID %s", s.ID)
		}
		seen[s.ID] = true
		if s.Title == "" || s.Paper == "" || s.Run == nil {
			t.Errorf("%s: incomplete spec %+v", s.ID, s)
		}
		got, ok := Lookup(s.ID)
		if !ok || got.Title != s.Title {
			t.Errorf("Lookup(%s) = %+v, %v", s.ID, got, ok)
		}
	}
	if specs[9].ID != "E10" || specs[10].ID != "E11" {
		t.Errorf("last specs are %s, %s, want E10, E11", specs[9].ID, specs[10].ID)
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("Lookup(E99) unexpectedly succeeded")
	}
}

// TestRunSelection checks the id-list execution path.
func TestRunSelection(t *testing.T) {
	reports, err := Run([]string{"E2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].ID != "E2" {
		t.Fatalf("Run([E2]) = %v", reports)
	}
	if _, err := Run([]string{"E2", "nope"}); err == nil {
		t.Error("Run with unknown id must error")
	}
}

// TestReportString pins the status markers and table rendering.
func TestReportString(t *testing.T) {
	ok := Report{ID: "EX", Title: "t", OK: true}
	s := ok.Section("demo")
	tbl := s.AddTable("col-a", "b")
	tbl.Row("1", "2")
	s.Note("a note")
	text := ok.String()
	for _, want := range []string{"VERIFIED", "col-a", "a note", "-- demo"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() lacks %q:\n%s", want, text)
		}
	}
	bad := Report{ID: "EX", Title: "t"}
	if !strings.Contains(bad.String(), "FAILED") {
		t.Error("want FAILED marker")
	}
}

// TestExperimentConfigErrors exercises the error paths of parameterized
// experiments: a bad grid must fail the report, not panic.
func TestExperimentConfigErrors(t *testing.T) {
	spec, ok := Lookup("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	r := spec.Run(spec.Defaults.With(Params{"n": 3, "m": 2, "xmax": 5})) // xMax ≥ n
	if r.OK {
		t.Error("E1 with bad grid must not verify")
	}
	if r.Params["xmax"] != 5 {
		t.Errorf("report params = %v, want the override echoed", r.Params)
	}
}

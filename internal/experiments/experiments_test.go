package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsVerify runs the full suite: every report must come back
// with every checked claim holding.
func TestAllExperimentsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	for _, r := range All() {
		if !r.OK {
			t.Errorf("%s (%s) failed:\n%s", r.ID, r.Title, r.Body)
		}
		if r.Body == "" {
			t.Errorf("%s produced no body", r.ID)
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Errorf("%s: String() lacks the id", r.ID)
		}
	}
}

func TestReportString(t *testing.T) {
	ok := Report{ID: "EX", Title: "t", Body: "b", OK: true}
	if !strings.Contains(ok.String(), "VERIFIED") {
		t.Error("want VERIFIED marker")
	}
	bad := Report{ID: "EX", Title: "t", Body: "b"}
	if !strings.Contains(bad.String(), "FAILED") {
		t.Error("want FAILED marker")
	}
}

// TestExperimentConfigErrors exercises the error paths of parameterized
// experiments.
func TestExperimentConfigErrors(t *testing.T) {
	r := E1Lattice(3, 2, 5, 2) // xMax ≥ n
	if r.OK {
		t.Error("E1 with bad grid must not verify")
	}
}

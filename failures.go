package kset

import (
	"math/rand"

	"kset/internal/adversary"
)

// CrashSpec schedules one crash for Crashes: process ID crashes during its
// send phase of Round, after delivering to the first AfterSends processes
// of its send order.
type CrashSpec struct {
	ID         ProcessID
	Round      int
	AfterSends int
}

// Crashes builds a failure pattern from explicit crash schedules, so
// campaigns can sweep hand-written adversaries without touching the
// FailurePattern maps directly:
//
//	fp := kset.Crashes(
//		kset.CrashSpec{ID: 6, Round: 1, AfterSends: 2},
//		kset.CrashSpec{ID: 7, Round: 2},
//	)
func Crashes(specs ...CrashSpec) FailurePattern {
	fp := FailurePattern{Crashes: make(map[ProcessID]Crash, len(specs))}
	for _, s := range specs {
		fp.Crashes[s.ID] = Crash{Round: s.Round, AfterSends: s.AfterSends}
	}
	return fp
}

// MidRoundCrashes returns a pattern in which each listed process crashes
// during its send phase of the given round after delivering to the first
// ⌈n/2⌉ processes — the adversary that splits a round's receivers into
// those that heard the crashed sender and those that did not.
func MidRoundCrashes(n, round int, ids ...ProcessID) FailurePattern {
	return adversary.MidRound(n, round, ids...)
}

// RandomCrashes returns a random pattern with at most t crashes within
// maxRounds rounds, drawn from the seeded source: uniformly random crash
// subjects, rounds and send prefixes. The same *rand.Rand state yields the
// same pattern, so seeded sweeps are reproducible.
func RandomCrashes(r *rand.Rand, n, t, maxRounds int) FailurePattern {
	return adversary.Random(r, n, t, maxRounds)
}

// StaggeredCrashes returns the containment-chain worst-case adversary of
// the agreement proof's counting argument: c1 round-1 crashes with
// increasing send prefixes, then perRound further crashes per round, until
// t crashes are spent.
func StaggeredCrashes(n, t, c1, perRound, maxRounds int) FailurePattern {
	return adversary.Stagger(n, t, c1, perRound, maxRounds)
}

// FailureFamily is a finite, deterministic, indexed family of failure
// patterns: Size patterns, Pattern(i) always the same for the same i.
// Families are the adversary side of the generator subsystem — cross one
// with an input source via FailureSchedules, or expand a sweep grid point
// per pattern via SweepFailures.
type FailureFamily = adversary.Family

// FailuresOf wraps an explicit pattern list as a family.
func FailuresOf(fps ...FailurePattern) FailureFamily {
	return adversary.FixedFamily("fixed", fps...)
}

// InitialCrashFamily is the family {InitialCrashes(n, f) : f = 0..maxF} —
// the f-sweep of the early-decision experiments. Pattern i crashes the
// last i processes before they send anything.
func InitialCrashFamily(n, maxF int) FailureFamily {
	return adversary.InitialFamily(n, maxF)
}

// StaggeredCrashFamily is the family {StaggeredCrashes(n, t, c1, 1,
// maxRounds) : c1 = 0..t} of containment-chain worst cases, one per
// round-1 crash budget.
func StaggeredCrashFamily(n, t, maxRounds int) FailureFamily {
	return adversary.StaggerFamily(n, t, maxRounds)
}

// RandomCrashFamily is a family of count seeded random patterns with at
// most t crashes within maxRounds rounds. Pattern i is drawn from its own
// source seeded with seed+i, so the family is deterministic and
// random-access: unlike RandomCrashes it does not thread one *rand.Rand
// through the sweep.
func RandomCrashFamily(seed int64, n, t, maxRounds, count int) FailureFamily {
	return adversary.RandomFamily(seed, n, t, maxRounds, count)
}

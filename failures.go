package kset

import (
	"math/rand"

	"kset/internal/adversary"
)

// CrashSpec schedules one crash for Crashes: process ID crashes during its
// send phase of Round, after delivering to the first AfterSends processes
// of its send order.
type CrashSpec struct {
	ID         ProcessID
	Round      int
	AfterSends int
}

// Crashes builds a failure pattern from explicit crash schedules, so
// campaigns can sweep hand-written adversaries without touching the
// FailurePattern maps directly:
//
//	fp := kset.Crashes(
//		kset.CrashSpec{ID: 6, Round: 1, AfterSends: 2},
//		kset.CrashSpec{ID: 7, Round: 2},
//	)
func Crashes(specs ...CrashSpec) FailurePattern {
	fp := FailurePattern{Crashes: make(map[ProcessID]Crash, len(specs))}
	for _, s := range specs {
		fp.Crashes[s.ID] = Crash{Round: s.Round, AfterSends: s.AfterSends}
	}
	return fp
}

// MidRoundCrashes returns a pattern in which each listed process crashes
// during its send phase of the given round after delivering to the first
// ⌈n/2⌉ processes — the adversary that splits a round's receivers into
// those that heard the crashed sender and those that did not.
func MidRoundCrashes(n, round int, ids ...ProcessID) FailurePattern {
	return adversary.MidRound(n, round, ids...)
}

// RandomCrashes returns a random pattern with at most t crashes within
// maxRounds rounds, drawn from the seeded source: uniformly random crash
// subjects, rounds and send prefixes. The same *rand.Rand state yields the
// same pattern, so seeded sweeps are reproducible.
func RandomCrashes(r *rand.Rand, n, t, maxRounds int) FailurePattern {
	return adversary.Random(r, n, t, maxRounds)
}

// StaggeredCrashes returns the containment-chain worst-case adversary of
// the agreement proof's counting argument: c1 round-1 crashes with
// increasing send prefixes, then perRound further crashes per round, until
// t crashes are spent.
func StaggeredCrashes(n, t, c1, perRound, maxRounds int) FailurePattern {
	return adversary.Stagger(n, t, c1, perRound, maxRounds)
}

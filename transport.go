package kset

import (
	"time"

	"kset/internal/rounds"
	"kset/internal/wire"
)

// Transport is the message plane of a synchronous run: the seam between
// the engine's crash adversary (who sends, in which order, how far a
// crashing sender's broadcast gets) and whatever happens to a message
// copy between hand-over and receipt. The module ships three planes —
// the default in-memory delivery matrix, the fault injector installed by
// WithFaultPlan, and the wire plane installed by WithTransport, which
// moves every copy through encoded datagrams (and, for the UDP
// transports, through real sockets). All satisfy one contract, pinned by
// a shared conformance suite, so a scenario produces the same decisions
// on any lossless plane.
type Transport = rounds.Transport

// TransportFactory builds one Transport instance for a system of n
// processes. A System hands each of its pooled workers its own instance
// (transports are not concurrency-safe), created lazily on the worker's
// first run and reused for every run after it.
type TransportFactory func(n int) (Transport, error)

// WithTransport makes every synchronous run of the System move its round
// payloads through transports built by the factory — see PipeWire and
// UDPLoopback. It is mutually exclusive with WithFaultPlan and with
// Scenario.Faults: the wire transports own their loss accounting (a copy
// that misses its delivery deadline is counted into Result.Lost, the
// same stats plane faultnet campaigns report into), so composing the two
// fault planes would double-inject. Asynchronous runs have no message
// plane and ignore it.
func WithTransport(f TransportFactory) Option {
	return func(s *System) { s.wireFactory = f }
}

// PipeWire returns a factory for the deterministic in-process wire
// harness: every copy is encoded to datagram bytes and decoded back with
// no sockets or timing anywhere. A lossless run over it is
// byte-identical to the default matrix run — it exists to keep the wire
// codec honest against the in-memory semantics, and as the fastest way
// to exercise the serialization in tests and campaigns.
func PipeWire() TransportFactory {
	return func(int) (Transport, error) { return &wire.PipeTransport{}, nil }
}

// WireConfig tunes the UDP loopback wire transport.
type WireConfig struct {
	// RoundTimeout bounds how long a destination waits for a round's
	// copies before the stragglers are written off as lost (default 2s).
	RoundTimeout time.Duration
	// Retransmit is the initial retransmission interval for missing
	// copies, doubling with jitter up to RoundTimeout/4 (default 2ms).
	Retransmit time.Duration
	// Seed seeds the retransmission jitter (0 picks a fixed default).
	Seed uint64
}

// UDPLoopback returns a factory for the UDP wire transport: n loopback
// sockets in this process, one per simulated process, with every copy
// crossing the kernel as a real datagram — retransmitted with backoff
// until it arrives or the round deadline writes it off as lost. Lossless
// runs decide identically to the matrix; runs with losses fold them into
// Result.Lost. For agreement between separate OS processes, see
// cmd/ksetpeer.
func UDPLoopback(cfg WireConfig) TransportFactory {
	return func(n int) (Transport, error) {
		return wire.NewLoopback(wire.LoopbackConfig{
			RoundTimeout: cfg.RoundTimeout,
			Retransmit:   cfg.Retransmit,
			Seed:         cfg.Seed,
		}, n)
	}
}

// transportErr surfaces a wire transport's deferred internal error (the
// Transport interface itself cannot return one mid-run).
func transportErr(tr rounds.Transport) error {
	if e, ok := tr.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

package kset

import (
	"fmt"

	"kset/internal/adversary"
	"kset/internal/faultnet"
)

// This file is the public surface of the fault-injection transport plane:
// link-fault plans, their indexed families, and the generator combinators
// that cross them with inputs and executors. The paper's model (Section
// 6.2) assumes reliable links and admits only process crashes; fault
// plans go beyond it, probing how the algorithms degrade when the network
// itself drops, delays, duplicates or reorders message copies. Faults
// compose with any crash FailurePattern and apply only to synchronous
// executors — Asynchronous runs model delay through scheduling jitter
// already and ignore the plan.

// FaultPlan is a deterministic link-fault plan: per-link loss, delay and
// duplication rates plus explicitly scheduled faults, replayed
// identically for a given seed. A plan is immutable once installed on a
// System or Scenario. The zero plan injects no faults.
type FaultPlan = faultnet.Plan

// LinkFaults is the per-link fault profile of a FaultPlan: loss, delay
// and duplication probabilities and the delay bound in rounds.
type LinkFaults = faultnet.LinkFaults

// FaultLink is a directed sender→receiver link, the key of a FaultPlan's
// per-link profile overrides.
type FaultLink = faultnet.Link

// ScheduledFault is one explicitly scheduled fault of a FaultPlan: a
// drop, delay or duplication pinned to a round and link.
type ScheduledFault = faultnet.Fault

// FaultKind discriminates scheduled faults: FaultDrop, FaultDelay or
// FaultDuplicate.
type FaultKind = faultnet.Kind

// The scheduled-fault kinds.
const (
	// FaultDrop loses the copy.
	FaultDrop = faultnet.Drop
	// FaultDelay defers the copy by the fault's Delay rounds.
	FaultDelay = faultnet.Delay
	// FaultDuplicate delivers the copy twice: on time and Delay rounds
	// late.
	FaultDuplicate = faultnet.Duplicate
)

// UniformLoss returns the plan that loses every message copy, on every
// link, with the given probability.
func UniformLoss(seed int64, rate float64) *FaultPlan {
	return &FaultPlan{Seed: seed, Default: LinkFaults{Loss: rate}}
}

// UniformDelay returns the plan that defers every message copy, on every
// link, with the given probability by a uniform 1..maxDelay rounds.
func UniformDelay(seed int64, prob float64, maxDelay int) *FaultPlan {
	return &FaultPlan{Seed: seed, Default: LinkFaults{DelayProb: prob, MaxDelay: maxDelay}}
}

// FaultFamily is a finite, deterministic, indexed family of fault plans:
// Size plans, Plan(i) equivalent for the same i, index 0 fault-free by
// convention. Families are the fault-plane counterpart of FailureFamily —
// cross one with an input source via FaultSchedules, or expand a sweep
// grid point per plan via SweepFaults.
type FaultFamily = adversary.FaultFamily

// FaultPlansOf wraps an explicit plan list as a family.
func FaultPlansOf(plans ...*FaultPlan) FaultFamily {
	return adversary.NewFaultFamily("plans", len(plans), func(i int) *FaultPlan { return plans[i] })
}

// LossSweepFamily is the family of size plans ramping the uniform loss
// rate linearly from 0 (plan 0: fault-free) to maxLoss — the loss axis of
// a fault trade-off grid.
func LossSweepFamily(seed int64, size int, maxLoss float64) FaultFamily {
	return adversary.LossSweep(seed, size, maxLoss)
}

// DelaySweepFamily is the family of size plans raising the uniform delay
// bound: plan i defers copies with probability prob by up to i rounds
// (plan 0: fault-free).
func DelaySweepFamily(seed int64, size int, prob float64) FaultFamily {
	return adversary.DelaySweep(seed, size, prob)
}

// StormFamily is the family of size plans scaling loss, delay (up to
// maxDelay rounds), duplication and reordering together from 0 (plan 0:
// fault-free) to the peak intensity — the everything-at-once stress axis.
func StormFamily(seed int64, size, maxDelay int, intensity float64) FaultFamily {
	return adversary.Storm(seed, size, maxDelay, intensity)
}

// CrossFaults takes the cross product of a source with an explicit
// fault-plan list: each scenario is yielded once per plan, with that plan
// installed. A nil plan entry yields the scenario fault-free, so a
// reliable baseline can ride in the same product.
func CrossFaults(src ScenarioSource, plans ...*FaultPlan) ScenarioSource {
	size, sized := scaled(src, len(plans))
	return funcSource{size: size, sized: sized, each: func(yield func(Scenario) bool) {
		src.ForEach(func(sc Scenario) bool {
			for _, p := range plans {
				sc.Faults = p
				if !yield(sc) {
					return false
				}
			}
			return true
		})
	}}
}

// FaultSchedules takes the cross product of a source with a fault family:
// each scenario is yielded once per family plan. The family's plans are
// materialized once per iteration, not once per input scenario, so every
// scenario sharing plan i carries the same *FaultPlan pointer and the
// transport's per-plan caches stay warm.
func FaultSchedules(src ScenarioSource, fam FaultFamily) ScenarioSource {
	size, sized := scaled(src, fam.Size())
	return funcSource{size: size, sized: sized, each: func(yield func(Scenario) bool) {
		plans := make([]*FaultPlan, fam.Size())
		for i := range plans {
			plans[i] = fam.Plan(i)
		}
		src.ForEach(func(sc Scenario) bool {
			for i := range plans {
				sc.Faults = plans[i]
				if !yield(sc) {
					return false
				}
			}
			return true
		})
	}}
}

// SweepFaults expands one grid point into one point per plan of the
// family, keyed "<key>/<family>=<i>" (or "<family>=<i>" when the base key
// is empty) — the fault axis of a trade-off grid. Each point's source is
// the base source crossed with that single plan.
func SweepFaults(base SweepPoint, fam FaultFamily) []SweepPoint {
	points := make([]SweepPoint, 0, fam.Size())
	for i := 0; i < fam.Size(); i++ {
		key := fmt.Sprintf("%s=%d", fam.Name(), i)
		if base.Key != "" {
			key = base.Key + "/" + key
		}
		points = append(points, SweepPoint{
			Key:     key,
			Options: base.Options,
			Source:  CrossFaults(base.Source, fam.Plan(i)),
		})
	}
	return points
}

// faultSeed derives the per-run transport seed: an FNV-1a mix of the
// plan's seed, the scenario's seed and the input values. Tying the seed
// to the scenario (not to a worker-local stream) is what keeps campaign
// fault draws independent of worker count and submission order.
func faultSeed(plan *FaultPlan, sc *Scenario) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(plan.Seed))
	mix(uint64(sc.Seed))
	for _, v := range sc.Input {
		mix(uint64(v))
	}
	return h
}

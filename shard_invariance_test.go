package kset_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kset"
)

// sig renders a scenario as a canonical comparison key: input, executor
// and the sorted crash schedule. Map iteration order never leaks in, so
// equal scenarios always collide.
func sig(sc kset.Scenario) string {
	s := "in=" + sc.Input.String()
	if sc.Executor != nil {
		s += " ex=" + sc.Executor.Name()
	}
	if len(sc.FP.Crashes) > 0 {
		ids := make([]int, 0, len(sc.FP.Crashes))
		for id := range sc.FP.Crashes {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			cr := sc.FP.Crashes[kset.ProcessID(id)]
			s += fmt.Sprintf(" c%d@%d.%d", id, cr.Round, cr.AfterSends)
		}
	}
	return s
}

// sigs collects a source's full stream as signature sequence.
func sigs(src kset.ScenarioSource) []string {
	var out []string
	src.ForEach(func(sc kset.Scenario) bool {
		out = append(out, sig(sc))
		return true
	})
	return out
}

// shardKinds builds one source of every kind the sharding plane must
// split correctly: exhaustive enumeration, seeded random, condition
// members, literal lists, cross products and concatenations.
func shardKinds(t *testing.T) map[string]kset.ScenarioSource {
	t.Helper()
	cond, err := kset.NewMaxCondition(4, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lit := []kset.Vector{
		kset.VectorOf(1, 2, 3, 1), kset.VectorOf(2, 2, 2, 2),
		kset.VectorOf(3, 1, 1, 3), kset.VectorOf(1, 1, 1, 1), kset.VectorOf(3, 3, 3, 3),
	}
	return map[string]kset.ScenarioSource{
		"exhaustive": kset.ExhaustiveInputs(3, 3),
		"random":     kset.RandomInputs(7, 4, 3, 25),
		"members":    kset.ConditionMembers(cond),
		"literal":    kset.Inputs(lit...),
		"cross": kset.CrossExecutors(
			kset.FailureSchedules(
				kset.RandomInputs(3, 4, 3, 4),
				kset.RandomCrashFamily(5, 4, 2, 3, 3),
			),
			kset.Figure2, kset.EarlyDeciding,
		),
		"concat": kset.Concat(
			kset.ExhaustiveInputs(2, 2),
			kset.RandomInputs(9, 2, 2, 5),
			kset.Inputs(lit[0][:2], lit[1][:2]),
		),
	}
}

// TestShardStreamUnion pins the partition law on real sources: for every
// source kind and K, the shard streams concatenated in shard order are
// exactly the unsharded stream — each scenario once, in order, no seams.
func TestShardStreamUnion(t *testing.T) {
	for name, src := range shardKinds(t) {
		t.Run(name, func(t *testing.T) {
			want := sigs(src)
			for _, k := range []int{1, 2, 3, 7, 16} {
				var got []string
				for i := 0; i < k; i++ {
					sh, err := kset.ShardSource(src, i, k)
					if err != nil {
						t.Fatalf("ShardSource(%d, %d): %v", i, k, err)
					}
					part := sigs(sh)
					if n, ok := sh.Size(); !ok || int(n) != len(part) {
						t.Fatalf("shard %d/%d Size() = %d, %v; yielded %d", i, k, n, ok, len(part))
					}
					got = append(got, part...)
				}
				if len(got) != len(want) {
					t.Fatalf("K=%d: %d scenarios, want %d", k, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("K=%d: scenario %d = %q, want %q", k, j, got[j], want[j])
					}
				}
			}
		})
	}
}

// TestShardStreamUnionRandomized fuzzes the same law over random domain
// shapes, source kinds and shard counts with a fixed seed.
func TestShardStreamUnionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n, m := 1+rng.Intn(4), 1+rng.Intn(3)
		k := 1 + rng.Intn(16)
		var src kset.ScenarioSource
		kind := rng.Intn(4)
		switch kind {
		case 0:
			src = kset.ExhaustiveInputs(n, m)
		case 1:
			src = kset.RandomInputs(rng.Int63(), n, m, rng.Intn(40))
		case 2:
			vecs := make([]kset.Vector, rng.Intn(10))
			for i := range vecs {
				v := make(kset.Vector, n)
				for j := range v {
					v[j] = kset.Value(1 + rng.Intn(m))
				}
				vecs[i] = v
			}
			src = kset.Inputs(vecs...)
		default:
			src = kset.CrossExecutors(
				kset.RandomInputs(rng.Int63(), n, m, 1+rng.Intn(10)),
				kset.Figure2, kset.EarlyDeciding, kset.Classical)
		}
		want := sigs(src)
		var got []string
		for i := 0; i < k; i++ {
			sh, err := kset.ShardSource(src, i, k)
			if err != nil {
				t.Fatalf("trial %d (kind %d): %v", trial, kind, err)
			}
			got = append(got, sigs(sh)...)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d m=%d kind=%d K=%d): %d scenarios, want %d",
				trial, n, m, kind, k, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d (n=%d m=%d kind=%d K=%d): scenario %d = %q, want %q",
					trial, n, m, kind, k, j, got[j], want[j])
			}
		}
	}
}

// TestRangeSemantics pins Range's clamping and composition.
func TestRangeSemantics(t *testing.T) {
	src := kset.ExhaustiveInputs(2, 3) // 9 scenarios
	full := sigs(src)
	cases := []struct {
		lo, hi   int64
		from, to int // expected slice of full
	}{
		{0, 9, 0, 9}, {2, 5, 2, 5}, {0, 0, 0, 0}, {5, 5, 5, 5},
		{-3, 2, 0, 2}, {7, 99, 7, 9}, {4, 2, 4, 4}, {99, 120, 9, 9},
	}
	for _, tc := range cases {
		r := kset.Range(src, tc.lo, tc.hi)
		got := sigs(r)
		want := full[tc.from:tc.to]
		if n, ok := r.Size(); !ok || int(n) != len(want) {
			t.Fatalf("Range(%d,%d).Size() = %d, %v; want %d", tc.lo, tc.hi, n, ok, len(want))
		}
		if len(got) != len(want) {
			t.Fatalf("Range(%d,%d) yielded %d, want %d", tc.lo, tc.hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Range(%d,%d)[%d] = %q, want %q", tc.lo, tc.hi, i, got[i], want[i])
			}
		}
	}
	// Ranges of ranges compose: offsets are relative to the outer range.
	inner := sigs(kset.Range(kset.Range(src, 2, 8), 1, 3))
	if len(inner) != 2 || inner[0] != full[3] || inner[1] != full[4] {
		t.Fatalf("Range(Range(2,8),1,3) = %v, want full[3:5]", inner)
	}
	// A cursor is just a serializable range address.
	cur := kset.Cursor{Lo: 3, Hi: 6}
	if got := sigs(kset.CursorSource(src, cur)); len(got) != 3 || got[0] != full[3] {
		t.Fatalf("CursorSource(%+v) = %v", cur, got)
	}
}

// TestShardUnsizedSource pins the ErrUnsizedSource contract: streams of
// unknown length cannot be index-partitioned.
func TestShardUnsizedSource(t *testing.T) {
	unsized := kset.ExhaustiveInputs(64, 4) // m^n overflows int64: size unknown
	if _, ok := unsized.Size(); ok {
		t.Fatal("test premise broken: source is sized")
	}
	if _, err := kset.NewShardPlan(unsized, 4); !errors.Is(err, kset.ErrUnsizedSource) {
		t.Fatalf("NewShardPlan on unsized source: %v, want ErrUnsizedSource", err)
	}
	if _, err := kset.ShardSource(unsized, 0, 4); !errors.Is(err, kset.ErrUnsizedSource) {
		t.Fatalf("ShardSource on unsized source: %v, want ErrUnsizedSource", err)
	}
	sized := kset.ExhaustiveInputs(2, 2)
	if _, err := kset.ShardSource(sized, 4, 4); err == nil {
		t.Fatal("ShardSource accepted an out-of-range shard index")
	}
	if _, err := kset.ShardSource(sized, -1, 4); err == nil {
		t.Fatal("ShardSource accepted a negative shard index")
	}
}

// statsJSON runs src through sys and renders the campaign stats JSON.
func statsJSON(t *testing.T, sys *kset.System, src kset.ScenarioSource, workers int) []byte {
	t.Helper()
	st, err := sys.RunSource(context.Background(), src,
		kset.VerifyRuns(), kset.CampaignWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardedStatsByteIdentical is the acceptance matrix: for exhaustive,
// random, member and cross-product sources, a K-way sharded campaign —
// each shard run separately, accumulators folded with Merge — produces
// byte-identical stats JSON to the single-process run, for K ∈ {1,3,16}
// and worker counts {1,4,16}.
func TestShardedStatsByteIdentical(t *testing.T) {
	p := kset.Params{N: 4, T: 2, K: 2, D: 1, L: 1}
	cond, err := kset.NewMaxCondition(p.N, 3, p.X(), p.L)
	if err != nil {
		t.Fatal(err)
	}
	sys := testSystem(t, kset.WithParams(p), kset.WithCondition(cond))

	sources := map[string]kset.ScenarioSource{
		"exhaustive": kset.ExhaustiveInputs(p.N, 3),
		"random":     kset.RandomInputs(11, p.N, 3, 60),
		"members":    kset.ConditionMembers(cond),
		"cross": kset.CrossExecutors(
			kset.FailureSchedules(
				kset.RandomInputs(13, p.N, 3, 5),
				kset.RandomCrashFamily(17, p.N, p.T, p.RMax(), 4),
			),
			kset.Figure2, kset.EarlyDeciding, kset.Classical,
		),
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			baseline := statsJSON(t, sys, src, 1)
			for _, workers := range []int{1, 4, 16} {
				for _, k := range []int{1, 3, 16} {
					merged := &kset.Accumulator{}
					for i := 0; i < k; i++ {
						sh, err := kset.ShardSource(src, i, k)
						if err != nil {
							t.Fatal(err)
						}
						st, err := sys.RunSource(context.Background(), sh,
							kset.VerifyRuns(), kset.CampaignWorkers(workers))
						if err != nil {
							t.Fatal(err)
						}
						merged.Merge(st.Metrics)
					}
					got, err := json.Marshal(kset.CampaignStatsOf(merged))
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(baseline) {
						t.Fatalf("workers=%d K=%d: merged stats differ from single run\n%s\nvs\n%s",
							workers, k, got, baseline)
					}
				}
			}
		})
	}
}
